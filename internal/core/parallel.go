package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// This file is the parallel execution layer for workflow runs. Every run is
// a fully self-contained single-threaded simulation — it owns its engine,
// cluster, backend, and RNG streams — so independent runs can execute on
// separate OS threads without any coordination, and a parallel batch is
// byte-identical to a serial one. The paper's evaluation is an ensemble
// study (10 repetitions x many configurations), which makes fanning runs
// across cores the dominant wall-clock win for regenerating it.

// DefaultWorkers is the worker count RunMany uses when workers <= 0: the
// number of OS threads available to the process.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// RunMany executes every configuration through Run, fanning the independent
// runs across workers goroutines (workers <= 0 means DefaultWorkers).
//
// The output slice preserves input order: results[i] is cfgs[i]'s result,
// or nil if that run failed. Unlike a serial loop, a failing run does not
// abort the batch — every run executes, and the returned error joins every
// per-run error (each prefixed with its batch index). Results are
// deterministic: each run owns its engine and RNG streams, so the worker
// count affects only wall-clock time, never measurements.
func RunMany(cfgs []Config, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	if workers <= 1 {
		pool := &runPool{}
		for i, cfg := range cfgs {
			results[i], errs[i] = runIndexed(i, cfg, pool)
		}
		return results, errors.Join(errs...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool := &runPool{}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				results[i], errs[i] = runIndexed(i, cfgs[i], pool)
			}
		}()
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// runPool recycles the expensive parts of a rig — engine (event queue,
// process table, RNG streams), cluster (nodes, device resources, queue
// backing arrays), and metrics registry (series sample vectors) — across
// the runs one worker executes. Batch repetitions share shape, so after the
// first run a repetition allocates O(1) rig state instead of rebuilding the
// whole kernel (DESIGN.md §3h). Pooling is strictly per worker (never
// shared), and reuse is observationally invisible: Engine.Reset,
// Cluster.Reset, and Registry.Reset restore the exact just-built state, so
// pooled batches stay byte-identical to unpooled ones.
//
// Hand-out is one-shot: take clears the stored state, and retire is called
// only after a successful collect — a run that fails or panics mid-flight
// can never leak a dirty engine into the next run.
type runPool struct {
	eng    *sim.Engine
	cl     *cluster.Cluster
	clSpec cluster.Spec
	reg    *metrics.Registry
}

// take hands out pooled state compatible with cfg, or nils where the pool
// cannot help. The engine is reusable when its shard-worker shape matches;
// the cluster additionally needs the same hardware spec (Spec is a value
// type, so == compares the full profile) and always rides on its own
// engine. The registry is handed out only to runs that will stream it to a
// MetricsSink — buffered runs retain their registry on Result.Metrics, so
// those registries never enter the pool in the first place. Nil-safe.
func (pl *runPool) take(cfg Config, spec cluster.Spec) (*sim.Engine, *cluster.Cluster, *metrics.Registry) {
	if pl == nil {
		return nil, nil, nil
	}
	var eng *sim.Engine
	var cl *cluster.Cluster
	var reg *metrics.Registry
	want := 0
	if cfg.ShardWorkers > 1 {
		want = cfg.ShardWorkers
	}
	if pl.eng != nil && pl.eng.ShardWorkers() == want {
		eng = pl.eng
		eng.Reset(cfg.Seed)
		if pl.cl != nil && pl.clSpec == spec {
			cl = pl.cl
			cl.Reset()
		}
	}
	if cfg.MetricsInterval > 0 && cfg.MetricsSink != nil {
		reg = pl.reg
	}
	pl.eng, pl.cl, pl.reg = nil, nil, nil
	return eng, cl, reg
}

// retire stores a successfully collected rig's state for the next take.
// The registry is kept only when the run streamed it (otherwise the Result
// retains it and it must not be reused).
func (pl *runPool) retire(r *rig) {
	if pl == nil {
		return
	}
	pl.eng = r.eng
	pl.cl = r.cl
	pl.clSpec = r.cl.Spec
	if r.reg != nil && r.cfg.MetricsSink != nil {
		pl.reg = r.reg
	}
}

// runPooled is Run with an optional per-worker state pool.
func runPooled(cfg Config, pool *runPool) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := newRig(cfg, pool)
	r.spawnAll()
	if err := r.eng.Run(); err != nil {
		return nil, fmt.Errorf("core: %s: %w", cfg.Label(), err)
	}
	res, err := r.collect()
	if err != nil {
		return nil, err
	}
	pool.retire(r)
	return res, nil
}

// runIndexed runs one batch entry, tagging errors with the batch index and
// converting panics into errors so one broken run cannot take down the
// workers of an otherwise healthy batch. A failed or panicked run retires
// nothing, so the pool stays clean.
func runIndexed(i int, cfg Config, pool *runPool) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("core: run %d (%s): panic: %v", i, cfg.Label(), r)
		}
	}()
	res, err = runPooled(cfg, pool)
	if err != nil {
		return nil, fmt.Errorf("core: run %d: %w", i, err)
	}
	return res, nil
}

// RepeatConfigs expands cfg into reps copies with the repetition seed
// schedule (seed + i*golden-ratio increment) — the same schedule Repeat and
// RepeatWorkers use. Callers that need to adjust individual repetitions
// (e.g. enable span tracing on one) can edit the slice before RunMany.
func RepeatConfigs(cfg Config, reps int) []Config {
	cfgs := make([]Config, reps)
	for i := range cfgs {
		cfgs[i] = cfg
		cfgs[i].Seed = cfg.Seed + uint64(i)*0x9e3779b9
	}
	return cfgs
}

// RepeatWorkers runs cfg reps times with distinct seeds, fanning the
// repetitions across workers goroutines (workers <= 0 means
// DefaultWorkers). Seeds and therefore results are identical to serial
// execution for any worker count.
func RepeatWorkers(cfg Config, reps, workers int) ([]*Result, error) {
	if reps < 1 {
		return nil, fmt.Errorf("core: reps %d < 1", reps)
	}
	return RunMany(RepeatConfigs(cfg, reps), workers)
}
