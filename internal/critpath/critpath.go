// Package critpath records the causal dependency graph of a workflow run
// and extracts answers from it: the critical path that gated the makespan
// (with per-component/per-class blame totals), per-frame provenance
// lineages (produce → write → commit → fetch → transfer → cache → consume),
// and differential reports that attribute the makespan gap between two
// backends to named graph edges.
//
// The recorder is a thin hook layer threaded through the sim kernel
// (proc spawn/wake/block edges), cluster (transfer/RPC regions), kvs
// (commit→lookup tokens), the backends (write→read tokens, lineage hops),
// and capacity (back-pressure, eviction/spill hops). Every hook is
// nil-guarded at the call site, so a run without a recorder pays one
// pointer compare and zero allocations (TestCritpathZeroAllocs).
//
// Determinism contract: recorder methods are only called from event
// execution, which the kernel serializes on one goroutine even under PDES
// sharding (DESIGN.md §3g). Node identity is positional — a segment is
// (proc, append index), an edge's id is its append index, both stamped in
// execution order, which the (at, seq) event tie-break makes identical at
// any -j / -pdes-j. No map is ever iterated to produce output.
package critpath

import (
	"time"

	"repro/internal/trace"
)

// Time mirrors sim.Time (virtual nanoseconds) without importing sim —
// sim imports this package, not the other way around.
type Time = time.Duration

// Label identifies a blame bucket: a named region of proc execution.
// Class is the *effective* class — a ClassDetail region nested inside a
// classed region inherits the enclosing class, so per-class totals on the
// critical path reproduce the paper's movement/idle/compute split even
// when blame lands on fine-grained inner labels.
type Label struct {
	Component string
	Name      string
	Class     trace.Class
}

// Kind distinguishes segment flavours on a proc timeline.
type Kind uint8

const (
	// Run is time the proc was executing (including virtual-time sleeps,
	// which model compute, not blocking).
	Run Kind = iota
	// Wait is time the proc was blocked on another proc or resource.
	Wait
)

func (k Kind) String() string {
	if k == Wait {
		return "wait"
	}
	return "run"
}

// Segment is one interval of a proc's timeline. Segments tile each proc's
// lifetime: every instant between spawn and completion is in exactly one
// segment.
type Segment struct {
	Kind  Kind
	Label int32 // index into Graph.Labels, -1 when unlabeled
	Start Time
	End   Time
	Edge  int32 // wait segments: index of the releasing edge, -1 if external
}

// Edge is a causal release: proc From woke proc To at time At. From is -1
// when the wake came from a kernel timer callback rather than a proc (the
// wait was then gated by time, not by another proc's work).
type Edge struct {
	From int32
	To   int32
	At   Time
}

// Dep is a recorded data dependency on a produced token (a frame path):
// the consumer observed at ConsumedAt a value produced at ProducedAt.
// ConsumedAt-ProducedAt is the dependency's slack — how close the
// dependency came to gating the consumer.
type Dep struct {
	Token      string
	Kind       string // "fetch", "consume", ...
	Producer   int32
	Consumer   int32
	ProducedAt Time
	ConsumedAt Time
	Bytes      int64
}

// Hop is one stage of a frame's provenance lineage.
type Hop struct {
	Name  string // "write", "kvs_commit", "sync_wait", "transfer", ...
	Proc  string // acting proc name, "" for proc-less events
	Start Time
	End   Time
	Bytes int64
}

// FrameLineage is the ordered provenance record of one frame: every hop
// the payload took from production to consumption.
type FrameLineage struct {
	Key  string
	Hops []Hop
}

// ProcTimeline is one proc's recorded history.
type ProcTimeline struct {
	Name       string
	Parent     int32 // spawning proc, -1 when spawned from the driver
	Background bool  // excluded as a critical-path root (e.g. noise procs)
	Segments   []Segment
}

// Graph is the finished dependency graph of one run.
type Graph struct {
	Makespan Time
	Labels   []Label
	Procs    []ProcTimeline
	Edges    []Edge
	Deps     []Dep
	Lineages []FrameLineage
}

// Summary bundles the per-run artifacts a Result retains: the extracted
// critical path and the frame lineages (the raw graph is dropped).
type Summary struct {
	Path   *CritPath
	Frames []FrameLineage
}

type procState struct {
	name       string
	parent     int32
	background bool
	started    bool
	ended      bool
	waiting    bool
	segStart   Time
	pending    int32 // edge awaiting this proc's wait close, -1 none
	stack      []int32
	segs       []Segment
}

type tokenInfo struct {
	proc  int32
	at    Time
	bytes int64
}

// Recorder accumulates the dependency graph while a run executes. Methods
// are not safe for concurrent use; the sim kernel's serialized event
// execution is the required synchronization. Hooks must nil-check the
// recorder before calling (the zero-cost-when-off contract lives at the
// call sites, not here).
type Recorder struct {
	labelIdx map[Label]int32
	labels   []Label
	procs    []procState
	edges    []Edge
	deps     []Dep
	tokens   map[string]tokenInfo
	lineIdx  map[string]int32
	lineages []FrameLineage

	// OnDep, when set, observes every dependency's slack (age of the
	// token at consumption) keyed by dep kind. OnHop observes every
	// lineage hop's duration keyed by hop name. Both let core feed
	// metrics histograms without this package importing metrics.
	OnDep func(kind string, slack Time)
	OnHop func(hop string, d Time)
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		labelIdx: make(map[Label]int32),
		tokens:   make(map[string]tokenInfo),
		lineIdx:  make(map[string]int32),
	}
}

func (r *Recorder) ps(idx int32) *procState {
	for int(idx) >= len(r.procs) {
		r.procs = append(r.procs, procState{parent: -1, pending: -1})
	}
	return &r.procs[idx]
}

func (r *Recorder) intern(l Label) int32 {
	if id, ok := r.labelIdx[l]; ok {
		return id
	}
	id := int32(len(r.labels))
	r.labels = append(r.labels, l)
	r.labelIdx[l] = id
	return id
}

func (ps *procState) top() int32 {
	if n := len(ps.stack); n > 0 {
		return ps.stack[n-1]
	}
	return -1
}

// closeRun ends the proc's open run segment at `at`. Zero-length run
// segments are dropped — they carry no blame and no edge.
func (ps *procState) closeRun(at Time) {
	if at > ps.segStart {
		ps.segs = append(ps.segs, Segment{Kind: Run, Label: ps.top(), Start: ps.segStart, End: at, Edge: -1})
	}
	ps.segStart = at
}

// StartProc records a proc's creation. parent is the spawning proc's index
// (-1 when spawned from the driver before Run); the extractor walks
// through spawn edges when a proc's timeline begins mid-path.
func (r *Recorder) StartProc(idx int32, name string, parent int32, at Time) {
	ps := r.ps(idx)
	ps.name = name
	ps.parent = parent
	ps.started = true
	ps.segStart = at
	ps.pending = -1
}

// EndProc records a proc's completion, closing its open run segment.
func (r *Recorder) EndProc(idx int32, at Time) {
	ps := r.ps(idx)
	ps.closeRun(at)
	ps.ended = true
}

// SetBackground excludes the proc from critical-path root selection: the
// run is not "complete" when it finishes (noise procs wind down on their
// own timers after the workflow ends).
func (r *Recorder) SetBackground(idx int32) { r.ps(idx).background = true }

// Begin pushes a labeled region on the proc's stack. ClassDetail regions
// inherit the enclosing region's class (see Label).
func (r *Recorder) Begin(idx int32, component, name string, class trace.Class, at Time) {
	ps := r.ps(idx)
	ps.closeRun(at)
	if class == trace.ClassDetail {
		if top := ps.top(); top >= 0 {
			class = r.labels[top].Class
		}
	}
	ps.stack = append(ps.stack, r.intern(Label{Component: component, Name: name, Class: class}))
}

// End pops the proc's innermost labeled region. Unbalanced Ends are
// ignored (a run that dies mid-region may unwind past its Begins).
func (r *Recorder) End(idx int32, at Time) {
	ps := r.ps(idx)
	ps.closeRun(at)
	if n := len(ps.stack); n > 0 {
		ps.stack = ps.stack[:n-1]
	}
}

// BeginWait marks the proc blocked (sim.Proc.Block). The wait inherits the
// innermost open label.
func (r *Recorder) BeginWait(idx int32, at Time) {
	ps := r.ps(idx)
	ps.closeRun(at)
	ps.waiting = true
}

// EndWait closes the proc's open wait segment, attaching the pending
// release edge if a proc-sourced wake was recorded.
func (r *Recorder) EndWait(idx int32, at Time) {
	ps := r.ps(idx)
	ps.segs = append(ps.segs, Segment{Kind: Wait, Label: ps.top(), Start: ps.segStart, End: at, Edge: ps.pending})
	ps.pending = -1
	ps.waiting = false
	ps.segStart = at
}

// Release records that proc `from` (or a kernel callback, from = -1) woke
// proc `to` at time `at`. The edge is bound to the wait segment `to`
// closes at its next EndWait.
func (r *Recorder) Release(from, to int32, at Time) {
	ps := r.ps(to)
	ps.pending = int32(len(r.edges))
	r.edges = append(r.edges, Edge{From: from, To: to, At: at})
}

// Produce registers a token (a frame path) as available from `at`. Only
// the first registration counts: the token's birth is its first durable
// write; later copies (mirror, cache) are hops, not new births.
func (r *Recorder) Produce(token string, proc int32, at Time, bytes int64) {
	if _, ok := r.tokens[token]; ok {
		return
	}
	r.tokens[token] = tokenInfo{proc: proc, at: at, bytes: bytes}
}

// Depend records that proc consumed the token at `at`. Unknown tokens
// (reads of files the recorder never saw produced) are ignored.
func (r *Recorder) Depend(token, kind string, proc int32, at Time) {
	t, ok := r.tokens[token]
	if !ok {
		return
	}
	r.deps = append(r.deps, Dep{
		Token: token, Kind: kind,
		Producer: t.proc, Consumer: proc,
		ProducedAt: t.at, ConsumedAt: at, Bytes: t.bytes,
	})
	if r.OnDep != nil {
		r.OnDep(kind, at-t.at)
	}
}

// Hop appends one provenance hop to the frame's lineage. Lineages are
// ordered by first appearance; hops within a lineage by recording order.
func (r *Recorder) Hop(key, hop string, proc int32, start, end Time, bytes int64) {
	li, ok := r.lineIdx[key]
	if !ok {
		li = int32(len(r.lineages))
		r.lineIdx[key] = li
		r.lineages = append(r.lineages, FrameLineage{Key: key})
	}
	name := ""
	if proc >= 0 && int(proc) < len(r.procs) {
		name = r.procs[proc].name
	}
	r.lineages[li].Hops = append(r.lineages[li].Hops, Hop{Name: hop, Proc: name, Start: start, End: end, Bytes: bytes})
	if r.OnHop != nil {
		r.OnHop(hop, end-start)
	}
}

// Finish closes every open segment at `at` (the engine's final time) and
// returns the completed graph. The recorder must not be used afterwards.
func (r *Recorder) Finish(at Time) *Graph {
	g := &Graph{
		Makespan: at,
		Labels:   r.labels,
		Edges:    r.edges,
		Deps:     r.deps,
		Lineages: r.lineages,
	}
	g.Procs = make([]ProcTimeline, len(r.procs))
	for i := range r.procs {
		ps := &r.procs[i]
		if ps.started && !ps.ended {
			if ps.waiting {
				// A proc stranded in Block at engine finish (aborted or
				// deadlocked): keep the open wait so its time is visible.
				ps.segs = append(ps.segs, Segment{Kind: Wait, Label: ps.top(), Start: ps.segStart, End: at, Edge: ps.pending})
			} else {
				ps.closeRun(at)
			}
		}
		g.Procs[i] = ProcTimeline{Name: ps.name, Parent: ps.parent, Background: ps.background, Segments: ps.segs}
	}
	return g
}
