package repro_test

import (
	"fmt"

	"repro"
)

// ExampleRun executes a small DYAD workflow and reports conservation
// facts (times are simulation outputs; see EXPERIMENTS.md for those).
func ExampleRun() {
	model, err := repro.CustomModel("demo", 10_000, 1_000, 0)
	if err != nil {
		panic(err)
	}
	res, err := repro.Run(repro.Config{
		Backend: repro.DYAD,
		Model:   model,
		Pairs:   2,
		Frames:  4,
		Seed:    1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("frames consumed:", res.FramesRead)
	fmt.Println("bytes conserved:", res.BytesRead == int64(res.FramesRead)*model.FrameBytes())
	fmt.Println("producer ever idle:", res.Producer.Idle > 0)
	// Output:
	// frames consumed: 8
	// bytes conserved: true
	// producer ever idle: false
}

// ExampleModels lists the paper's Table I registry.
func ExampleModels() {
	for _, m := range repro.Models() {
		fmt.Println(m.Name, m.Atoms)
	}
	// Output:
	// JAC 23558
	// ApoA1 92224
	// F1 ATPase 327506
	// STMV 1066628
}
