package dyad

import "repro/internal/metrics"

// RegisterMetrics registers the deployment's sampled series: cache hit
// rate, staging-read rate, outstanding remote fetches, and the
// fault-recovery counters mirroring faults.Metrics on the dashboard, plus
// produce/fetch rates, the KVS service series, and produce/fetch latency
// histograms. System-level aggregates only — brokers are created lazily
// inside running processes, after registration time. Nil-safe on a nil
// registry (histogram handles stay nil, so the client paths keep their
// zero-cost-when-off budget).
func (s *System) RegisterMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Ratio("dyad/cache_hit_rate",
		func() float64 { return float64(s.CacheHits) },
		func() float64 { return float64(s.CacheHits + s.CacheMisses) },
	).OnDashboard()
	reg.Rate("dyad/staging_reads", func() float64 { return float64(s.StagingReads) }).OnDashboard()
	reg.Gauge("dyad/outstanding_fetches", func() float64 { return float64(s.InflightFetches) }).OnDashboard()
	reg.Counter("dyad/timeouts", func() float64 { return float64(s.Recovery.Timeouts) }).OnDashboard()

	reg.Rate("dyad/produce_rate", func() float64 { return float64(s.Produced) })
	reg.Rate("dyad/fetch_rate", func() float64 { return float64(s.Fetched) })
	reg.Counter("dyad/retries", func() float64 { return float64(s.Recovery.Retries) })
	reg.Counter("dyad/degraded_reads", func() float64 { return float64(s.Recovery.DegradedReads) })
	reg.Counter("dyad/broker_restarts", func() float64 { return float64(s.Recovery.BrokerRestarts) })

	s.kvs.RegisterMetrics(reg, "dyad/kvs")

	s.produceLat = reg.Histogram("dyad/produce_lat")
	s.fetchLat = reg.Histogram("dyad/fetch_lat")
}
