package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// A headline ratio over a fault-killed or zero baseline is undefined; the
// note must say "n/a", never leak fmt's "NaNx"/"+Infx" into a report.
func TestRatioNoteUndefinedRendersNA(t *testing.T) {
	for _, r := range []float64{math.NaN(), math.Inf(1)} {
		note := ratioNote("XFS/DYAD overall consumption", 192.9, r)
		if !strings.Contains(note, "measured n/a") {
			t.Errorf("ratioNote(%v) = %q, want measured n/a", r, note)
		}
		if strings.Contains(note, "NaN") || strings.Contains(note, "Inf") {
			t.Errorf("ratioNote(%v) leaks the undefined value: %q", r, note)
		}
	}
	// Defined ratios keep the historical format byte-for-byte.
	if got := ratioNote("x", 1.4, 1.37); got != "x: paper 1.4x, measured 1.4x" {
		t.Errorf("ratioNote defined = %q", got)
	}
}

// MeasureCalibration is the calibration objective's data source: its names
// and order must be stable, and two identical invocations byte-identical.
func TestMeasureCalibrationDeterministicNames(t *testing.T) {
	o := Options{Reps: 1, Frames: 4, Quick: true}
	first, err := MeasureCalibration(o, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	second, err := MeasureCalibration(o, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("measurement %d differs: %+v vs %+v", i, first[i], second[i])
		}
	}
	want := []string{
		"table1.frame_kib.JAC",
		"table2.freq_s.JAC",
		"fig5.prod_total.dyad_over_xfs",
		"fig5.cons_move.dyad_over_xfs",
		"fig5.cons_total.xfs_over_dyad",
		"fig6.prod_move.lustre_over_dyad",
		"fig6.cons_move.lustre_over_dyad",
		"fig6.cons_total.lustre_over_dyad",
	}
	have := map[string]bool{}
	for _, m := range first {
		have[m.Name] = true
		if strings.HasPrefix(m.Name, "fig7.") {
			t.Errorf("fig7 measurement %s present without full", m.Name)
		}
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("missing measurement %s", name)
		}
	}
}

// The tune hook must reach every run: a head start fitted by calibration
// shrinks the DYAD idle column, so the Fig 5 consumption ratio must move.
func TestMeasureCalibrationTuneTakesEffect(t *testing.T) {
	o := Options{Reps: 1, Frames: 8, Quick: true}
	base, err := MeasureCalibration(o, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := MeasureCalibration(o, func(c core.Config) core.Config {
		c.ConsumerHeadStart = 200 * time.Millisecond
		return c
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	pick := func(ms []CalibMeasurement, name string) float64 {
		for _, m := range ms {
			if m.Name == name {
				return m.Value
			}
		}
		t.Fatalf("measurement %s missing", name)
		return 0
	}
	const headline = "fig5.cons_total.xfs_over_dyad"
	if b, tu := pick(base, headline), pick(tuned, headline); !(tu > b) {
		t.Errorf("head start did not raise %s: base %.2f, tuned %.2f", headline, b, tu)
	}
	// The workload-derivation measurements never move with hardware tuning.
	if pick(base, "table2.freq_s.JAC") != pick(tuned, "table2.freq_s.JAC") {
		t.Error("table2 measurement moved under a hardware tune")
	}
}
