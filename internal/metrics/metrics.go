// Package metrics is the deterministic virtual-time metrics pipeline of
// the simulation substrate: a registry of sampled resource series
// (counters, gauges, rates, utilizations, ratios) plus log-bucket latency
// histograms, driven by the sim engine's fixed-interval virtual-clock
// sampler. No wall clock is ever read — every sample is stamped from the
// virtual timeline, and probes only read component state — so a run's
// sampled series are a pure function of (config, seed): byte-identical
// across worker counts and across hosts.
//
// Like span tracing (package trace), metrics are a zero-cost abstraction
// when disabled: every registration and observation method is nil-safe on
// a nil *Registry / nil *Histogram, instrumented components keep plain
// counter fields that cost one add whether or not a registry is attached,
// and no sampler means the engine pays one nil check per event. The
// sampling determinism contract is documented in DESIGN.md §3f.
//
// Three consumers sit on top: WriteCSV (per-interval time series),
// WriteProm (end-of-run Prometheus text-format snapshot), and
// CounterTracks (Chrome trace counter rows for Perfetto). The experiments
// layer adds a fourth, the ASCII utilization dashboard, via Sparkline and
// the per-series sample vectors.
package metrics

import (
	"bufio"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/trace"
)

// Kind is the sampling semantic of a registered series.
type Kind uint8

const (
	// KindGauge samples an instantaneous value at each boundary (queue
	// depth, in-flight requests, journal backlog).
	KindGauge Kind = iota
	// KindCounter samples a cumulative total at each boundary (timeouts,
	// retries — the faults.Metrics mirror).
	KindCounter
	// KindRate samples the per-second increase of a cumulative total over
	// the elapsed interval (bytes read -> read bandwidth).
	KindRate
	// KindUtil samples the busy fraction of a capacity over the interval:
	// delta(busy-unit-nanos) / (capacity * interval).
	KindUtil
	// KindRatio samples delta(numerator)/delta(denominator) over the
	// interval (cache hits over cache accesses), 0 when the denominator
	// did not move.
	KindRatio
)

// String returns the kind name used in the CSV header comment and docs.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindRate:
		return "rate"
	case KindUtil:
		return "util"
	case KindRatio:
		return "ratio"
	default:
		return "gauge"
	}
}

// Series is one registered metric: a name, a sampling kind, and the value
// sampled at every interval boundary. Registration order is the stable
// column order of the CSV export and the row order of the dashboard.
type Series struct {
	Name string
	Kind Kind
	// Dash marks the series for the condensed consumers: the per-backend
	// ASCII dashboard and the Chrome counter tracks. Per-device series
	// stay CSV-only so large ensembles do not flood the dashboard.
	Dash bool
	// Samples holds one value per elapsed interval, in boundary order.
	Samples []float64

	probe   func() float64
	den     func() float64 // KindRatio denominator probe
	unitCap float64        // KindUtil: capacity units
	prev    float64        // last cumulative probe value (rate/util/ratio/counter)
	prevDen float64
	totNum  float64 // KindRatio: cumulative numerator/denominator deltas
	totDen  float64
	// Vector-free snapshot state, maintained at every boundary so the
	// Prometheus snapshot never needs the Samples vector — what keeps
	// WriteProm exact for sink-streamed runs that retain no samples.
	last    float64 // most recent sampled value (gauge snapshot)
	utilSum float64 // KindUtil: running sum of sampled fractions
	n       int64   // boundaries sampled
}

// OnDashboard marks the series for the dashboard and Chrome counter
// consumers and returns it. Nil-safe (no-op on a nil series).
func (s *Series) OnDashboard() *Series {
	if s != nil {
		s.Dash = true
	}
	return s
}

// Histogram is a log-bucket duration histogram sharing trace.OpStat's
// power-of-four-microseconds bucketing, so the same percentile estimator
// serves span aggregates and sampled metrics. A nil *Histogram is valid
// and inert: Observe on it is one nil check, which is what instrumented
// components pay when no registry is attached.
type Histogram struct {
	Name  string
	Count int64
	Sum   time.Duration
	Min   time.Duration
	Max   time.Duration
	// Buckets follows trace.OpStat.Hist: bucket i counts durations d with
	// 4^(i-1)µs <= d < 4^i µs (bucket 0 is d < 1µs, the last unbounded).
	Buckets [trace.HistBuckets]int64
}

// Observe records one duration. No-op on a nil histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if h.Count == 0 || d < h.Min {
		h.Min = d
	}
	if d > h.Max {
		h.Max = d
	}
	h.Count++
	h.Sum += d
	h.Buckets[trace.HistBucket(d)]++
}

// Percentile estimates the p-th percentile (0-100) from the log-scale
// buckets via trace.HistogramPercentile — the same estimator OpStat uses.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h == nil {
		return 0
	}
	return trace.HistogramPercentile(&h.Buckets, h.Count, h.Min, h.Max, p)
}

// P50 estimates the median observation.
func (h *Histogram) P50() time.Duration { return h.Percentile(50) }

// P99 estimates the 99th-percentile observation.
func (h *Histogram) P99() time.Duration { return h.Percentile(99) }

// Registry holds one run's registered series and histograms. Components
// register probes once at wiring time; the engine sampler calls Sample at
// every interval boundary the event timeline reaches. A nil *Registry is
// valid and inert: every method is nil-safe, so wiring code registers
// unconditionally and pays nothing when metrics are off.
type Registry struct {
	interval time.Duration
	times    []time.Duration
	series   []*Series
	hists    []*Histogram

	// sink, when bound by CSVSink.StartRun, streams one CSV row per sample
	// boundary instead of growing the per-series Samples vectors.
	sink *CSVSink

	// spool/hpool hold the structs retired by Reset, handed back out in
	// registration order so a pooled run's re-registration wave reuses them
	// (Samples capacity included) instead of allocating.
	spool []*Series
	hpool []*Histogram
}

// New creates a registry sampling at the given fixed virtual interval.
func New(interval time.Duration) *Registry {
	if interval <= 0 {
		panic("metrics: nonpositive sample interval")
	}
	return &Registry{interval: interval}
}

// Interval returns the sampling interval (0 on a nil registry).
func (r *Registry) Interval() time.Duration {
	if r == nil {
		return 0
	}
	return r.interval
}

// Reset returns the registry to its just-created state under a (possibly
// new) interval, retiring every registered series and histogram into the
// reuse pools: the next registration wave — the same deterministic wiring
// code — gets the retired structs back in order, Samples capacity intact,
// so pooled runs (core's RunMany rig pool, DESIGN.md §3h) re-register
// without reallocating. Only registries the caller owns exclusively may be
// reset; a registry retained by a run's Result must never be pooled.
func (r *Registry) Reset(interval time.Duration) {
	if interval <= 0 {
		panic("metrics: nonpositive sample interval")
	}
	r.interval = interval
	r.times = r.times[:0]
	r.sink = nil
	r.spool = append(r.spool[:0], r.series...)
	r.series = r.series[:0]
	r.hpool = append(r.hpool[:0], r.hists...)
	r.hists = r.hists[:0]
}

// add registers s, reusing a pool-retired struct when one is available at
// this registration position.
func (r *Registry) add(s Series) *Series {
	if n := len(r.series); n < len(r.spool) {
		p := r.spool[n]
		s.Samples = p.Samples[:0]
		*p = s
		r.series = append(r.series, p)
		return p
	}
	p := new(Series)
	*p = s
	r.series = append(r.series, p)
	return p
}

// Gauge registers an instantaneous-value series.
func (r *Registry) Gauge(name string, probe func() float64) *Series {
	if r == nil {
		return nil
	}
	return r.add(Series{Name: name, Kind: KindGauge, probe: probe})
}

// Counter registers a cumulative-total series.
func (r *Registry) Counter(name string, probe func() float64) *Series {
	if r == nil {
		return nil
	}
	return r.add(Series{Name: name, Kind: KindCounter, probe: probe})
}

// Rate registers a series sampling the per-second increase of the
// cumulative total returned by probe.
func (r *Registry) Rate(name string, probe func() float64) *Series {
	if r == nil {
		return nil
	}
	return r.add(Series{Name: name, Kind: KindRate, probe: probe})
}

// Util registers a utilization series over a capacity: probe returns the
// cumulative busy integral in unit-nanoseconds (sim.Resource.BusyUnitNanos
// or an equivalent accumulator) and each sample is the busy fraction of
// capacity*interval.
func (r *Registry) Util(name string, capacity int, probe func() float64) *Series {
	if r == nil {
		return nil
	}
	if capacity < 1 {
		capacity = 1
	}
	return r.add(Series{Name: name, Kind: KindUtil, probe: probe, unitCap: float64(capacity)})
}

// Ratio registers a windowed ratio series: delta(num)/delta(den) per
// interval, 0 when the denominator did not move.
func (r *Registry) Ratio(name string, num, den func() float64) *Series {
	if r == nil {
		return nil
	}
	return r.add(Series{Name: name, Kind: KindRatio, probe: num, den: den})
}

// Histogram registers a named duration histogram and returns its handle
// for instrumented components to Observe into (nil, and therefore inert,
// on a nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	var h *Histogram
	if n := len(r.hists); n < len(r.hpool) {
		h = r.hpool[n]
		*h = Histogram{Name: name}
	} else {
		h = &Histogram{Name: name}
	}
	r.hists = append(r.hists, h)
	return h
}

// Sample records one value per registered series at virtual time t. The
// engine sampler calls it at every interval boundary; probes must only
// read state (no event scheduling, no RNG draws), which keeps sampling
// observation-only. A sink-bound registry (CSVSink.StartRun) writes the
// boundary as one CSV row instead of growing the Samples vectors, so
// registry memory stays O(series count) on runs of any length.
func (r *Registry) Sample(t time.Duration) {
	if r == nil {
		return
	}
	sec := r.interval.Seconds()
	if r.sink != nil {
		bw := r.sink.bw
		bw.WriteString(fmtF(t.Seconds()))
		for _, s := range r.series {
			bw.WriteByte(',')
			bw.WriteString(fmtF(s.sample(r.interval, sec)))
		}
		bw.WriteByte('\n')
		return
	}
	r.times = append(r.times, t)
	for _, s := range r.series {
		s.Samples = append(s.Samples, s.sample(r.interval, sec))
	}
}

// sample computes the series' value at one boundary and advances its
// cursors and vector-free snapshot state — shared by the buffered and
// sink-streamed paths so both produce identical values and snapshots.
func (s *Series) sample(interval time.Duration, sec float64) float64 {
	var v float64
	switch s.Kind {
	case KindGauge:
		v = s.probe()
	case KindCounter:
		cur := s.probe()
		s.prev = cur
		v = cur
	case KindRate:
		cur := s.probe()
		v = (cur - s.prev) / sec
		s.prev = cur
	case KindUtil:
		cur := s.probe()
		v = (cur - s.prev) / (s.unitCap * float64(interval))
		s.prev = cur
	case KindRatio:
		n, d := s.probe(), s.den()
		dn, dd := n-s.prev, d-s.prevDen
		s.prev, s.prevDen = n, d
		s.totNum += dn
		s.totDen += dd
		if dd != 0 {
			v = dn / dd
		}
	}
	s.last = v
	if s.Kind == KindUtil {
		s.utilSum += v
	}
	s.n++
	return v
}

// Len returns the number of samples taken (0 on a nil registry).
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.times)
}

// Times returns the virtual time of every sample, in order. Owned by the
// registry.
func (r *Registry) Times() []time.Duration {
	if r == nil {
		return nil
	}
	return r.times
}

// Series returns the registered series in registration order — the stable
// column order of every exporter. Owned by the registry.
func (r *Registry) Series() []*Series {
	if r == nil {
		return nil
	}
	return r.series
}

// Histograms returns the registered histograms in registration order.
func (r *Registry) Histograms() []*Histogram {
	if r == nil {
		return nil
	}
	return r.hists
}

// Run pairs a label with one sampled run's registry, for the file-level
// exporters (several runs share one CSV / Prometheus document).
type Run struct {
	Label string
	Reg   *Registry
}

// fmtF renders a float64 with strconv's shortest round-trip formatting —
// fixed, locale-free, and deterministic, the property the -j1 vs -j8
// byte-identity check relies on.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeCSVRunHeader writes one run's "# label" comment and header row —
// shared by WriteCSV and CSVSink so buffered and streamed exports of the
// same runs are byte-identical by construction.
func writeCSVRunHeader(bw *bufio.Writer, label string, series []*Series) {
	bw.WriteString("# ")
	bw.WriteString(csvComment(label))
	bw.WriteByte('\n')
	bw.WriteString("time_s")
	for _, s := range series {
		bw.WriteByte(',')
		bw.WriteString(s.Name)
	}
	bw.WriteByte('\n')
}

// WriteCSV writes the sampled time series of every run: per run, a "# label"
// comment line, a header (time_s then series names in registration order),
// and one row per elapsed sample interval. Runs are separated by one blank
// line. Column order and number formatting are fixed, so deterministic
// samples serialize to deterministic bytes.
func WriteCSV(w io.Writer, runs []Run) error {
	bw := bufio.NewWriter(w)
	for ri, run := range runs {
		if ri > 0 {
			bw.WriteByte('\n')
		}
		writeCSVRunHeader(bw, run.Label, run.Reg.Series())
		for i, t := range run.Reg.Times() {
			bw.WriteString(fmtF(t.Seconds()))
			for _, s := range run.Reg.Series() {
				bw.WriteByte(',')
				bw.WriteString(fmtF(s.Samples[i]))
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// CSVSink streams sampled metrics as they are taken: StartRun binds a
// run's registry to the sink, and every subsequent sample boundary writes
// one CSV row through the sink's buffer instead of growing the registry's
// sample vectors. The byte stream is identical to WriteCSV over the same
// runs (shared header and row formatting), while memory stays O(series
// count + one I/O buffer) on runs of any length. A sink serializes one run
// at a time: concurrently executing sampled runs must not share it.
type CSVSink struct {
	bw   *bufio.Writer
	runs int
}

// NewCSVSink returns a sink streaming CSV rows to w.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{bw: bufio.NewWriter(w)}
}

// StartRun opens the next run on the sink: it writes the run separator,
// the "# label" comment, and the header row — so every series must already
// be registered — and redirects the registry's subsequent Sample calls
// into the sink.
func (k *CSVSink) StartRun(label string, reg *Registry) {
	if k.runs > 0 {
		k.bw.WriteByte('\n')
	}
	k.runs++
	writeCSVRunHeader(k.bw, label, reg.Series())
	reg.sink = k
}

// Flush forces buffered rows to the underlying writer. Call it before
// closing the file the sink streams into.
func (k *CSVSink) Flush() error { return k.bw.Flush() }

// snapshot reduces a series' sampled window to one end-of-run value and
// its Prometheus type. Counters and rates export the cumulative total at
// the last boundary; gauges the last sample; utilizations the mean busy
// fraction; ratios the delta-weighted whole-run ratio. Pure: it reads the
// vector-free snapshot state only (maintained identically by the buffered
// and sink-streamed paths) and never calls probes, so exporting is safe at
// any point after the run, idempotent, and exact for streamed runs that
// retain no sample vectors.
func (s *Series) snapshot() (promType string, v float64) {
	switch s.Kind {
	case KindCounter, KindRate:
		return "counter", s.prev
	case KindUtil:
		sum := s.utilSum
		if s.n > 0 {
			sum /= float64(s.n)
		}
		return "gauge", sum
	case KindRatio:
		if s.totDen == 0 {
			return "gauge", 0
		}
		return "gauge", s.totNum / s.totDen
	default:
		return "gauge", s.last
	}
}

// promName sanitizes a series name into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("repro_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the Prometheus text exposition
// format: backslash first (so the escapes it introduces are not
// re-escaped), then quote, then newline.
func promLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// csvComment escapes a run label for the single-line "# label" comment of
// the CSV export: embedded line breaks become visible \n / \r escapes so a
// hostile label cannot inject rows into the data block.
func csvComment(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, "\r", `\r`)
}

// histUpper returns bucket b's inclusive upper bound in seconds for the
// Prometheus le label ("+Inf" for the unbounded last bucket).
func histUpper(b int) string {
	if b >= trace.HistBuckets-1 {
		return "+Inf"
	}
	us := int64(1) << (2 * uint(b)) // 4^b microseconds
	return fmtF(float64(us) * 1e-6)
}

// WriteProm writes an end-of-run snapshot of every run in the Prometheus
// text exposition format. Scalar series become one sample per run, keyed
// by a run label; counters get the conventional _total suffix. Histograms
// export cumulative le buckets in seconds plus _sum and _count. Samples of
// one metric are grouped under a single # TYPE line across runs, in first-
// appearance order, and all formatting is fixed — deterministic samples
// serialize to deterministic bytes.
func WriteProm(w io.Writer, runs []Run) error {
	bw := bufio.NewWriter(w)

	type entry struct {
		run string
		s   *Series
	}
	var order []string
	byName := make(map[string][]entry)
	for _, run := range runs {
		for _, s := range run.Reg.Series() {
			if _, ok := byName[s.Name]; !ok {
				order = append(order, s.Name)
			}
			byName[s.Name] = append(byName[s.Name], entry{run.Label, s})
		}
	}
	for _, name := range order {
		entries := byName[name]
		promType, _ := entries[0].s.snapshot()
		metric := promName(name)
		if promType == "counter" {
			metric += "_total"
		}
		bw.WriteString("# TYPE " + metric + " " + promType + "\n")
		for _, e := range entries {
			_, v := e.s.snapshot()
			bw.WriteString(metric + `{run="` + promLabel(e.run) + `"} ` + fmtF(v) + "\n")
		}
	}

	type hentry struct {
		run string
		h   *Histogram
	}
	var horder []string
	hByName := make(map[string][]hentry)
	for _, run := range runs {
		for _, h := range run.Reg.Histograms() {
			if _, ok := hByName[h.Name]; !ok {
				horder = append(horder, h.Name)
			}
			hByName[h.Name] = append(hByName[h.Name], hentry{run.Label, h})
		}
	}
	for _, name := range horder {
		metric := promName(name) + "_seconds"
		bw.WriteString("# TYPE " + metric + " histogram\n")
		for _, e := range hByName[name] {
			var cum int64
			for b := 0; b < trace.HistBuckets; b++ {
				cum += e.h.Buckets[b]
				bw.WriteString(metric + `_bucket{run="` + promLabel(e.run) + `",le="` + histUpper(b) + `"} ` +
					strconv.FormatInt(cum, 10) + "\n")
			}
			bw.WriteString(metric + `_sum{run="` + promLabel(e.run) + `"} ` + fmtF(e.h.Sum.Seconds()) + "\n")
			bw.WriteString(metric + `_count{run="` + promLabel(e.run) + `"} ` + strconv.FormatInt(e.h.Count, 10) + "\n")
		}
	}
	return bw.Flush()
}

// CounterTracks converts the registry's dashboard-marked series into
// Chrome trace counter tracks, so a traced+sampled run shows utilization
// curves under its span rows in Perfetto.
func CounterTracks(r *Registry) []trace.Counter {
	if r == nil {
		return nil
	}
	var out []trace.Counter
	for _, s := range r.Series() {
		if !s.Dash {
			continue
		}
		out = append(out, trace.Counter{Name: s.Name, Times: r.Times(), Values: s.Samples})
	}
	return out
}

// sparkLevels are the 9 activity glyphs of Sparkline, dimmest to densest.
var sparkLevels = []byte(" .:-=+*#@")

// Sparkline renders a sample vector as a fixed-width ASCII activity strip:
// samples are bucketed to width cells (mean per cell) and scaled from the
// series floor (min(0, min)) to its peak. A flat series renders as all
// floor glyphs; an empty one as an empty string.
func Sparkline(samples []float64, width int) string {
	if width <= 0 || len(samples) == 0 {
		return ""
	}
	if len(samples) < width {
		width = len(samples)
	}
	lo, hi := samples[0], samples[0]
	for _, v := range samples[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > 0 {
		lo = 0 // nonnegative series scale from zero, not their min
	}
	out := make([]byte, width)
	for i := 0; i < width; i++ {
		a, b := i*len(samples)/width, (i+1)*len(samples)/width
		if b <= a {
			b = a + 1
		}
		var mean float64
		for _, v := range samples[a:b] {
			mean += v
		}
		mean /= float64(b - a)
		level := 0
		if hi > lo {
			level = int((mean - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		if level < 0 {
			level = 0
		}
		if level > len(sparkLevels)-1 {
			level = len(sparkLevels) - 1
		}
		out[i] = sparkLevels[level]
	}
	return string(out)
}
