package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("singleton summary %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
}

func TestDurationHelpers(t *testing.T) {
	ds := []time.Duration{time.Second, 3 * time.Second}
	if MeanDuration(ds) != 2*time.Second {
		t.Fatalf("mean %v", MeanDuration(ds))
	}
	if MeanDuration(nil) != 0 {
		t.Fatal("empty mean")
	}
	s := SummarizeDurations(ds)
	if s.Mean != 2 {
		t.Fatalf("duration summary mean %v", s.Mean)
	}
}

func TestRatioAndFormat(t *testing.T) {
	if Ratio(10, 2) != 5 {
		t.Fatal("ratio")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Fatal("zero denominator should be NaN")
	}
	if FormatRatio(5.25) != "5.2x" && FormatRatio(5.25) != "5.3x" {
		t.Fatalf("FormatRatio = %q", FormatRatio(5.25))
	}
	if FormatRatio(math.NaN()) != "n/a" {
		t.Fatal("NaN ratio format")
	}
}

func TestFormatRatioPrec(t *testing.T) {
	if got := FormatRatioPrec(1.2345, 2); got != "1.23x" {
		t.Fatalf("FormatRatioPrec(1.2345, 2) = %q", got)
	}
	if got := FormatRatioPrec(192.9, 1); got != "192.9x" {
		t.Fatalf("FormatRatioPrec(192.9, 1) = %q", got)
	}
	for _, r := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := FormatRatioPrec(r, 2); got != "n/a" {
			t.Fatalf("FormatRatioPrec(%v, 2) = %q, want n/a", r, got)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		5e-6:    "5.0µs",
		1.5e-3:  "1.50ms",
		2.25:    "2.250s",
		0.04861: "48.61ms",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}

// Property: mean lies within [min, max], and percentiles are monotone.
func TestSummaryInvariantsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true // skip inputs whose sum overflows float64
			}
		}
		s := Summarize(xs)
		if s.N == 0 {
			return true
		}
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		last := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(sorted, p)
			if v < last-1e-9 {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Regression: one NaN observation used to poison the whole summary — the
// running sum made Mean and Std NaN, and sort.Float64s' undefined NaN
// ordering corrupted Min/Max/Median. NaNs must be filtered and counted.
func TestSummarizeFiltersNaNs(t *testing.T) {
	nan := math.NaN()
	s := Summarize([]float64{nan, 1, 2, nan, 3, 4, 5, nan})
	if s.N != 5 || s.NaNs != 3 {
		t.Fatalf("N=%d NaNs=%d, want 5 and 3", s.N, s.NaNs)
	}
	if s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("stats over defined values wrong: %+v", s)
	}
	if math.IsNaN(s.Std) || s.Std == 0 {
		t.Fatalf("Std = %v, want finite nonzero", s.Std)
	}
}

// An all-NaN sample has nothing to summarize: zeros plus the NaN count.
func TestSummarizeAllNaNs(t *testing.T) {
	nan := math.NaN()
	s := Summarize([]float64{nan, nan})
	if s.N != 0 || s.NaNs != 2 {
		t.Fatalf("N=%d NaNs=%d, want 0 and 2", s.N, s.NaNs)
	}
	if s.Mean != 0 || s.Std != 0 || s.Min != 0 || s.Max != 0 || s.Median != 0 {
		t.Fatalf("all-NaN summary not zero: %+v", s)
	}
}

// A NaN-free sample must summarize exactly as before the NaN filter —
// same N, no spurious NaNs counter, identical float accumulation order.
func TestSummarizeNaNFreeUnchanged(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.3, 0.4}
	s := Summarize(xs)
	if s.NaNs != 0 || s.N != 4 {
		t.Fatalf("NaN-free sample: N=%d NaNs=%d", s.N, s.NaNs)
	}
	want := (0.1 + 0.2 + 0.3 + 0.4) / 4 // same left-to-right summation
	if s.Mean != want {
		t.Fatalf("Mean = %v, want %v (bit-exact)", s.Mean, want)
	}
}

func TestPercentileNaNP(t *testing.T) {
	if got := Percentile([]float64{1, 2, 3}, math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Percentile with NaN p = %v, want NaN", got)
	}
}
