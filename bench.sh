#!/bin/sh
# bench.sh — measured benchmark run recorded into a JSON ledger.
#
# Runs the kernel microbenchmarks plus the end-to-end figure benchmarks the
# perf acceptance criteria track, and merges ns/op, B/op, and allocs/op
# into BENCH_PR10.json under the given label (default: "current"). With a
# baseline label already present in the ledger, benchrec prints deltas.
#
# Usage:
#   ./bench.sh            # record under label "current"
#   ./bench.sh mylabel    # record under "mylabel"
set -eu

cd "$(dirname "$0")"

LABEL="${1:-current}"
LEDGER="BENCH_PR10.json"

go build -o /tmp/benchrec ./cmd/benchrec

{
	go test -run=NONE -bench='BenchmarkSleepEvents|BenchmarkManyProcs|BenchmarkWakeBlock|BenchmarkHeapChurn10k|BenchmarkResourceContention|BenchmarkSharded' \
		-benchtime=200000x ./internal/sim/
	go test -run=NONE -bench='BenchmarkScaleEvents' -benchtime=100000x ./internal/sim/
	go test -run=NONE -bench='BenchmarkCapacityEvict' -benchtime=200000x ./internal/capacity/
	go test -run=NONE -bench='BenchmarkCalibrateEval' -benchtime=2x ./internal/calib/
	go test -run=NONE -bench='BenchmarkCritpathExtract' -benchtime=20000x ./internal/critpath/
	go test -run=NONE -bench='BenchmarkProvenanceRecord' -benchtime=500x ./internal/critpath/
	go test -run=NONE -bench='BenchmarkFig5$|BenchmarkFig6$|BenchmarkWorkflowLargePairs$|BenchmarkRepeatPooled$' -benchtime=2x .
} | tee /dev/stderr | /tmp/benchrec -label "$LABEL" -o "$LEDGER"

echo "bench.sh: recorded under label \"$LABEL\" in $LEDGER"
