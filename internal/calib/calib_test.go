package calib

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
)

func TestDefaultSpaceValid(t *testing.T) {
	if err := DefaultSpace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceValidationRejects(t *testing.T) {
	cases := []struct {
		name  string
		space Space
		want  string
	}{
		{"empty", Space{}, "empty"},
		{"unknown name", Space{Params: []Param{{Name: "ssd.rpm", Lo: 0, Hi: 1}}}, "unknown"},
		{"duplicate", Space{Params: []Param{
			{Name: ParamHeadStart, Lo: 0, Hi: 1},
			{Name: ParamHeadStart, Lo: 0, Hi: 2}}}, "duplicate"},
		{"inverted", Space{Params: []Param{{Name: ParamHeadStart, Lo: 2, Hi: 1}}}, "inverted"},
		{"empty interval", Space{Params: []Param{{Name: ParamHeadStart, Lo: 1, Hi: 1}}}, "inverted"},
		{"nan lo", Space{Params: []Param{{Name: ParamHeadStart, Lo: math.NaN(), Hi: 1}}}, "finite"},
		{"inf hi", Space{Params: []Param{{Name: ParamHeadStart, Lo: 0, Hi: math.Inf(1)}}}, "finite"},
		{"negative levels", Space{Params: []Param{{Name: ParamHeadStart, Lo: 0, Hi: 1, Levels: -2}}}, "levels"},
	}
	for _, tc := range cases {
		err := tc.space.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
	// Calibrate must refuse an invalid space before simulating anything.
	if _, err := Calibrate(Space{}, Options{}); err == nil {
		t.Error("Calibrate accepted an empty space")
	}
}

// The tentpole guarantee: a fit report is byte-identical between -j 1 and
// -j 8 (and any -pdes-j), because every layer under the optimizer is
// deterministic and the optimizer itself never consults the worker count.
func TestFitDeterministicAcrossWorkers(t *testing.T) {
	base := Options{Quick: true, Reps: 1, Frames: 16, Budget: 6}
	render := func(o Options) string {
		fit, err := Calibrate(DefaultSpace(), o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		fit.Render(&buf)
		return buf.String()
	}
	serial := base
	serial.Workers = 1
	parallel := base
	parallel.Workers = 8
	a, b := render(serial), render(parallel)
	if a != b {
		t.Fatalf("fit reports differ between -j 1 and -j 8:\n--- j1 ---\n%s--- j8 ---\n%s", a, b)
	}
	sharded := base
	sharded.Workers = 1
	sharded.ShardWorkers = 8
	if c := render(sharded); c != a {
		t.Fatalf("fit reports differ between -pdes-j 1 and -pdes-j 8:\n%s\nvs\n%s", a, c)
	}
}

// Every target name must be producible by MeasureCalibration, or the
// objective would silently score a flat penalty for a typo.
func TestTargetsJoinMeasurements(t *testing.T) {
	ms, err := experiments.MeasureCalibration(
		experiments.Options{Reps: 1, Frames: 4, Quick: true}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, m := range ms {
		have[m.Name] = true
	}
	for _, tg := range Targets(false) {
		if !have[tg.Name] {
			t.Errorf("quick target %s has no measurement", tg.Name)
		}
	}
	fig7 := 0
	for _, tg := range Targets(true) {
		if strings.HasPrefix(tg.Name, "fig7.") {
			fig7++
		}
	}
	if fig7 != 3 {
		t.Errorf("full targets carry %d fig7 entries, want 3", fig7)
	}
}

func TestObjectiveScoring(t *testing.T) {
	targets := []Target{{Name: "a", Paper: 10, Weight: 1}}
	perfect := []experiments.CalibMeasurement{{Name: "a", Value: 10}}
	if v := objective(perfect, targets); v != 0 {
		t.Errorf("perfect match scored %g", v)
	}
	// |ln| is symmetric: half and double cost the same.
	half := objective([]experiments.CalibMeasurement{{Name: "a", Value: 5}}, targets)
	double := objective([]experiments.CalibMeasurement{{Name: "a", Value: 20}}, targets)
	if math.Abs(half-double) > 1e-12 {
		t.Errorf("asymmetric objective: half %g, double %g", half, double)
	}
	// Undefined measurement: flat penalty, missing measurement the same.
	undef := objective([]experiments.CalibMeasurement{{Name: "a", Value: math.NaN()}}, targets)
	if undef != 5 {
		t.Errorf("NaN measurement scored %g, want 5", undef)
	}
	if missing := objective(nil, targets); missing != 5 {
		t.Errorf("missing measurement scored %g, want 5", missing)
	}
	// NaN drops surcharge even a perfect value.
	dropped := objective([]experiments.CalibMeasurement{{Name: "a", Value: 10, NaNs: 3}}, targets)
	if math.Abs(dropped-0.3) > 1e-12 {
		t.Errorf("3 NaN drops scored %g, want 0.3", dropped)
	}
}

func TestTuneAppliesEveryLayer(t *testing.T) {
	space := Space{Params: []Param{
		{Name: cluster.ParamSSDReadLat, Lo: 20e-6, Hi: 240e-6},
		{Name: ParamKVSCommit, Lo: 35e-6, Hi: 560e-6},
		{Name: ParamHeadStart, Lo: 0, Hi: 1},
	}}
	if err := space.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := space.Tune([]float64{100e-6, 200e-6, 0.25})(core.Config{})
	if cfg.SpecTune == nil {
		t.Fatal("SpecTune not installed")
	}
	spec := cluster.CoronaProfile(1)
	cfg.SpecTune(&spec)
	if v, _ := spec.Param(cluster.ParamSSDReadLat); math.Abs(v-100e-6) > 1e-9 {
		t.Errorf("ssd.read_lat = %g, want 100µs", v)
	}
	if cfg.DYADOverride == nil || cfg.DYADOverride.KVS.CommitService != 200*time.Microsecond {
		t.Errorf("kvs.commit not applied: %+v", cfg.DYADOverride)
	}
	if cfg.ConsumerHeadStart != 250*time.Millisecond {
		t.Errorf("headstart = %v, want 250ms", cfg.ConsumerHeadStart)
	}
}

func TestFitParamLookup(t *testing.T) {
	f := &Fit{Space: Space{Params: []Param{{Name: ParamHeadStart}}}, Best: []float64{0.375}}
	if v, ok := f.Param(ParamHeadStart); !ok || v != 0.375 {
		t.Errorf("Param = %g, %v", v, ok)
	}
	if _, ok := f.Param("no.such"); ok {
		t.Error("Param found an absent name")
	}
	if hs := f.HeadStart(); hs != 375*time.Millisecond {
		t.Errorf("HeadStart = %v", hs)
	}
	if hs := (&Fit{}).HeadStart(); hs != 0 {
		t.Errorf("HeadStart without the param = %v", hs)
	}
}

func TestRunGoalUnknown(t *testing.T) {
	_, err := RunGoal("no-such-goal", Options{})
	if err == nil {
		t.Fatal("unknown goal accepted")
	}
	for _, g := range Goals() {
		if !strings.Contains(err.Error(), g.ID) {
			t.Errorf("error %q does not list goal %s", err, g.ID)
		}
	}
}
