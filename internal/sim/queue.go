package sim

// This file is the pending-event queue behind the kernel: an adaptive
// two-mode structure that starts as the inlined 4-ary min-heap (exactly the
// PR 2 kernel) and migrates to a ladder queue — a multi-resolution calendar
// of time buckets — once the pending set grows past ladderThreshold events.
//
// Why two modes (DESIGN.md §3h): the heap pays O(log n) sift work per
// operation, which is unbeatable below ~1k pending events but dominates the
// kernel at fleet scale (ROADMAP item 2: thousands of nodes, millions of
// pending timers). The ladder pays amortized O(1) per operation by spreading
// events into buckets so fine that ordering inside one bucket is nearly
// free. Below the threshold the ladder's constant factors lose, so small
// paper-sized runs keep the heap bit-for-bit.
//
// Ordering contract: pop returns pending events in exactly ascending
// (at, seq) — the same total order the heap yields — for ANY interleaving
// of pushes and pops, including pushes of events earlier than everything
// pending. Both modes therefore produce identical timelines, and the mode
// switch is invisible to the engine, the shards, and the merge path (one
// eventq implementation serves all three). queue_test.go locks the contract
// against a container/heap reference over tie-heavy randomized workloads.
//
// Structure of the ladder mode:
//
//   - bottom: the earliest band of events, sorted ascending (at, seq) and
//     consumed from the front (bpos). Pushes that land inside the bottom's
//     range are sorted-inserted (binary search + copy) — they are rare and
//     near the front, because the engine never schedules into the past.
//   - rungs[0..nr-1]: calendars of time buckets, from coarse (rung 0, whose
//     span abuts the top band) to fine (rung nr-1, covering the imminent
//     range). A push lands in the first rung whose unconsumed span contains
//     its time: one comparison per rung and one divide, O(1).
//   - top: unsorted overflow for events at or beyond topStart (later than
//     every bucketed event). When the rungs drain, the whole top band is
//     spread into a fresh rung 0 sized to its time span.
//
// A refill moves the next non-empty bucket of the deepest rung into bottom
// and sorts it; oversized buckets spanning more than one instant are first
// spread across a new, finer rung (spawn), so sort cost per event stays
// bounded. Every band keeps its backing arrays when it empties: after the
// high-water mark the ladder allocates nothing (the steady-state zero-alloc
// contract of DESIGN.md §3c), and bench_test.go's churn benchmarks assert
// 0 B/op across both modes.

const (
	// ladderThreshold is the pending-event count at which a queue migrates
	// from heap to ladder mode. Measured on BenchmarkScaleEvents (see
	// DESIGN.md §3h): the ladder wins clearly at 100k+ pending, is near par
	// at ~1k, and loses below — 1024 keeps every paper-sized run on the
	// exact PR 2 heap.
	ladderThreshold = 1024
	// maxRungs bounds spread recursion; a bucket that is still oversized at
	// the deepest rung is sorted directly (correct, just not O(1) for that
	// pathological band).
	maxRungs = 8
	// spawnThreshold is the bucket size above which a refill spreads the
	// bucket across a finer rung instead of sorting it into bottom.
	spawnThreshold = 48
	// minBuckets / maxBuckets clamp the bucket count of a rung; the target
	// is bucketTarget events per bucket for the observed band population.
	minBuckets   = 16
	maxBuckets   = 8192
	bucketTarget = 8
)

// minTime is the topStart sentinel before the first transfer: every event
// routes to the top band (virtual time is never negative).
const minTime = Time(-1 << 62)

// rung is one calendar: nb buckets of width-wide time slices starting at
// start. Buckets before cur have been consumed (or spread) and are empty.
//
// Events live in one shared append-only slab per rung; each bucket is an
// intrusive chain (head/tail plus next links) through it. Per-bucket slices
// would ratchet capacity forever — every band spreads differently, so some
// bucket always outgrows its history — while the slab's high-water mark is
// simply the rung's maximum resident count, which the warm-up of a
// steady-state run (or Prealloc) reaches once. That is what makes ladder
// mode hold the kernel's zero-allocs-in-steady-state contract.
type rung struct {
	start Time
	width Time
	cur   int
	nb    int
	slab  []event // events of this band, insertion order
	next  []int32 // chain link per slab slot (-1 ends a chain)
	head  []int32 // first slab index per bucket (-1 = empty)
	tail  []int32 // last slab index per bucket
	cnt   []int32 // events per bucket
}

// curStart is the lower edge of the rung's unconsumed span.
func (r *rung) curStart() Time { return r.start + Time(r.cur)*r.width }

// reset re-arms the rung for a new band, reusing every backing array.
func (r *rung) reset(start, width Time, nb int) {
	r.start, r.width, r.cur, r.nb = start, width, 0, nb
	r.slab = r.slab[:0]
	r.next = r.next[:0]
	for len(r.head) < nb {
		r.head = append(r.head, -1)
		r.tail = append(r.tail, -1)
		r.cnt = append(r.cnt, 0)
	}
	for i := 0; i < nb; i++ {
		r.head[i], r.tail[i], r.cnt[i] = -1, -1, 0
	}
}

// place inserts ev into its bucket (clamped to the last: the last bucket of
// a rung may span a larger range, and is re-spread on consumption if big).
func (r *rung) place(ev event) {
	b := int((ev.at - r.start) / r.width)
	if b >= r.nb {
		b = r.nb - 1
	}
	r.slab = append(r.slab, ev)
	r.next = append(r.next, -1)
	i := int32(len(r.slab) - 1)
	if t := r.tail[b]; t >= 0 {
		r.next[t] = i
	} else {
		r.head[b] = i
	}
	r.tail[b] = i
	r.cnt[b]++
}

// takeBucket walks bucket b's chain, appending its events to dst in
// insertion order and zeroing the vacated slab slots. The bucket is left
// empty.
func (r *rung) takeBucket(b int, dst []event) []event {
	for i := r.head[b]; i >= 0; i = r.next[i] {
		dst = append(dst, r.slab[i])
		r.slab[i] = event{}
	}
	r.head[b], r.tail[b], r.cnt[b] = -1, -1, 0
	return dst
}

// bucketSpread reports the earliest and latest event time of bucket b,
// which must be non-empty.
func (r *rung) bucketSpread(b int) (mn, mx Time) {
	i := r.head[b]
	mn, mx = r.slab[i].at, r.slab[i].at
	for i = r.next[i]; i >= 0; i = r.next[i] {
		at := r.slab[i].at
		if at < mn {
			mn = at
		}
		if at > mx {
			mx = at
		}
	}
	return mn, mx
}

// eventq is the adaptive pending-event queue. The zero value is an empty
// queue in heap mode. Not safe for concurrent use; in sharded runs each
// shard owns one and the phase barriers hand ownership around (shard.go).
type eventq struct {
	heap   []event // heap-mode storage (donated to top on migration)
	size   int     // pending events, both modes
	ladder bool    // ladder mode active (sticky until reset)
	thresh int     // migration threshold; 0 = ladderThreshold (test hook)

	bottom   []event // earliest band, ascending (at, seq)
	bpos     int     // bottom consumption cursor
	top      []event // unsorted overflow: events with at >= topStart
	topStart Time
	rungs    [maxRungs]rung
	nr       int // active rungs; rungs[nr-1] is the finest/earliest
}

// len returns the number of pending events.
func (q *eventq) len() int { return q.size }

// grow reserves capacity for n simultaneously pending events (Prealloc).
// The reserved array serves heap mode directly and becomes the top band on
// migration, so the hint covers the churn depth of both modes.
func (q *eventq) grow(n int) {
	if q.ladder {
		if n > cap(q.top) {
			grown := make([]event, len(q.top), n)
			copy(grown, q.top)
			q.top = grown
		}
		return
	}
	if n > cap(q.heap) {
		grown := make([]event, len(q.heap), n)
		copy(grown, q.heap)
		q.heap = grown
	}
}

// push inserts ev.
func (q *eventq) push(ev event) {
	q.size++
	if !q.ladder {
		q.heap = heapPush(q.heap, ev)
		th := q.thresh
		if th == 0 {
			th = ladderThreshold
		}
		if len(q.heap) > th {
			q.migrate()
		}
		return
	}
	q.enqueue(ev)
}

// pop removes and returns the earliest pending event. The queue must be
// non-empty.
func (q *eventq) pop() event {
	q.size--
	if !q.ladder {
		var top event
		top, q.heap = heapPop(q.heap)
		return top
	}
	if q.bpos >= len(q.bottom) {
		q.refill()
	}
	ev := q.bottom[q.bpos]
	q.bottom[q.bpos] = event{} // do not pin fired callbacks
	q.bpos++
	if q.bpos == len(q.bottom) {
		q.bottom = q.bottom[:0]
		q.bpos = 0
	}
	return ev
}

// peek returns the earliest pending event without removing it. The queue
// must be non-empty. In ladder mode a peek may prime the bottom band.
func (q *eventq) peek() event {
	if !q.ladder {
		return q.heap[0]
	}
	if q.bpos >= len(q.bottom) {
		q.refill()
	}
	return q.bottom[q.bpos]
}

// reset empties the queue, zeroes every slot (so no callback outlives the
// run), keeps all backing arrays for reuse, and reverts to heap mode.
func (q *eventq) reset() {
	for i := range q.heap {
		q.heap[i] = event{}
	}
	q.heap = q.heap[:0]
	for i := range q.bottom {
		q.bottom[i] = event{}
	}
	q.bottom = q.bottom[:0]
	q.bpos = 0
	for i := range q.top {
		q.top[i] = event{}
	}
	q.top = q.top[:0]
	for i := 0; i < q.nr; i++ {
		r := &q.rungs[i]
		for j := range r.slab {
			r.slab[j] = event{}
		}
		r.slab = r.slab[:0]
		r.next = r.next[:0]
		for b := 0; b < r.nb; b++ {
			r.head[b], r.tail[b], r.cnt[b] = -1, -1, 0
		}
	}
	q.nr = 0
	q.size = 0
	if q.ladder {
		q.ladder = false
		// The migration donated the heap array to the top band; take the
		// larger array back so the next run's heap phase keeps its capacity.
		if cap(q.top) > cap(q.heap) {
			q.heap, q.top = q.top[:0], q.heap[:0]
		}
	}
}

// migrate switches the queue from heap to ladder mode, donating the heap
// array to the top band (heap order is irrelevant there: the band is sorted
// as it is spread into rungs and bottom).
func (q *eventq) migrate() {
	q.ladder = true
	q.heap, q.top = q.top[:0], q.heap
	q.topStart = minTime
	q.bpos = 0
}

// enqueue inserts ev in ladder mode: top band, first rung whose unconsumed
// span contains it, or sorted into bottom.
func (q *eventq) enqueue(ev event) {
	if ev.at >= q.topStart {
		q.top = append(q.top, ev)
		return
	}
	for i := 0; i < q.nr; i++ {
		r := &q.rungs[i]
		if ev.at >= r.curStart() {
			r.place(ev)
			return
		}
	}
	q.bottomInsert(ev)
}

// bottomInsert sorted-inserts ev into the pending run bottom[bpos:]. The
// engine never schedules before the clock, so the insertion point is at or
// near bpos; the binary search keeps pathological interleavings correct.
func (q *eventq) bottomInsert(ev event) {
	if len(q.bottom) == cap(q.bottom) && q.bpos > 0 {
		// Compact the consumed prefix instead of growing the array.
		n := copy(q.bottom, q.bottom[q.bpos:])
		for i := n; i < len(q.bottom); i++ {
			q.bottom[i] = event{}
		}
		q.bottom = q.bottom[:n]
		q.bpos = 0
	}
	lo, hi := q.bpos, len(q.bottom)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.bottom[mid].before(&ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.bottom = append(q.bottom, event{})
	copy(q.bottom[lo+1:], q.bottom[lo:])
	q.bottom[lo] = ev
}

// refill loads the next band of events into bottom, sorted: the next
// non-empty bucket of the deepest rung, spreading oversized multi-instant
// buckets across a finer rung first, or — when every rung has drained —
// the top band spread into a fresh rung 0. The queue must be non-empty.
func (q *eventq) refill() {
	q.bottom = q.bottom[:0]
	q.bpos = 0
	for {
		if q.nr == 0 {
			q.transfer()
			continue
		}
		r := &q.rungs[q.nr-1]
		for r.cur < r.nb && r.cnt[r.cur] == 0 {
			r.cur++
		}
		if r.cur == r.nb {
			// A rung is retired only once truly empty. Buckets behind the
			// cursor cannot be repopulated (enqueue admits only
			// at >= curStart(), which maps at or ahead of the cursor), so a
			// non-zero count here means the no-hole invariant broke — fail
			// loudly rather than drop events.
			for b := 0; b < r.nb; b++ {
				if r.cnt[b] != 0 {
					panic("sim: eventq rung retired with pending events")
				}
			}
			q.nr-- // arrays kept for the next band
			continue
		}
		if int(r.cnt[r.cur]) > spawnThreshold && q.nr < maxRungs {
			if mn, mx := r.bucketSpread(r.cur); mn != mx {
				q.spawn(r)
				continue
			}
		}
		q.bottom = r.takeBucket(r.cur, q.bottom)
		r.cur++
		sortEvents(q.bottom)
		return
	}
}

// spawn spreads the current bucket of parent across a new, finer rung
// covering the bucket's FULL nominal span [bucketStart, bucketStart+width),
// ceil-divided so the child's last bucket edge is at or past the parent's.
// Sizing the child to the events' observed span instead would leave a
// coverage hole at the tail of the bucket: a later push inside the hole is
// too late for the child's nominal range but too early for the parent
// (whose cursor has moved past the bucket), and once the child's cursor
// reaches the end the clamped placement lands BEHIND it — the event would
// be silently dropped when the drained rung is retired. Full-span children
// keep the no-hole invariant: every event admitted by enqueue's
// at >= curStart() check maps to a bucket at or ahead of the cursor.
func (q *eventq) spawn(parent *rung) {
	start := parent.curStart()
	nb := int(parent.cnt[parent.cur]) / bucketTarget
	if nb < minBuckets {
		nb = minBuckets
	} else if nb > maxBuckets {
		nb = maxBuckets
	}
	child := &q.rungs[q.nr]
	q.nr++
	child.reset(start, (parent.width-1)/Time(nb)+1, nb)
	b := parent.cur
	for i := parent.head[b]; i >= 0; i = parent.next[i] {
		child.place(parent.slab[i])
		parent.slab[i] = event{}
	}
	parent.head[b], parent.tail[b], parent.cnt[b] = -1, -1, 0
	parent.cur++
}

// transfer spreads the whole top band into a fresh rung 0 sized to its time
// span and advances topStart past it. Called only when no rungs remain; the
// band is non-empty because the queue is.
func (q *eventq) transfer() {
	mn, mx := q.top[0].at, q.top[0].at
	for i := 1; i < len(q.top); i++ {
		at := q.top[i].at
		if at < mn {
			mn = at
		}
		if at > mx {
			mx = at
		}
	}
	nb := len(q.top) / bucketTarget
	if nb < minBuckets {
		nb = minBuckets
	} else if nb > maxBuckets {
		nb = maxBuckets
	}
	width := (mx-mn)/Time(nb) + 1
	r := &q.rungs[0]
	q.nr = 1
	r.reset(mn, width, nb)
	for _, ev := range q.top {
		r.place(ev)
	}
	for i := range q.top {
		q.top[i] = event{}
	}
	q.top = q.top[:0]
	q.topStart = mn + Time(nb)*width
}

// sortEvents sorts a band ascending (at, seq) without allocating: insertion
// sort for small bands, median-of-three quicksort above. (sort.Slice would
// allocate its reflect-based swapper on every refill.)
func sortEvents(a []event) {
	for len(a) > 24 {
		// Median-of-three pivot, moved to the end.
		m := len(a) / 2
		hi := len(a) - 1
		if a[m].before(&a[0]) {
			a[m], a[0] = a[0], a[m]
		}
		if a[hi].before(&a[0]) {
			a[hi], a[0] = a[0], a[hi]
		}
		if a[hi].before(&a[m]) {
			a[hi], a[m] = a[m], a[hi]
		}
		a[m], a[hi-1] = a[hi-1], a[m]
		pivot := a[hi-1]
		i, j := 0, hi-1
		for {
			for i++; a[i].before(&pivot); i++ {
			}
			for j--; pivot.before(&a[j]); j-- {
			}
			if i >= j {
				break
			}
			a[i], a[j] = a[j], a[i]
		}
		a[i], a[hi-1] = a[hi-1], a[i]
		// Recurse into the smaller half, loop on the larger.
		if i < len(a)-i {
			sortEvents(a[:i])
			a = a[i+1:]
		} else {
			sortEvents(a[i+1:])
			a = a[:i]
		}
	}
	for i := 1; i < len(a); i++ {
		ev := a[i]
		j := i - 1
		for j >= 0 && ev.before(&a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = ev
	}
}
