package trajectory

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/frame"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/xfs"
)

func newFS(e *sim.Engine) *xfs.FS {
	cl := cluster.New(e, cluster.CoronaProfile(1))
	return xfs.New(cl.Node(0), xfs.DefaultParams())
}

func TestWriteReadRoundTrip(t *testing.T) {
	e := sim.NewEngine(1)
	fs := newFS(e)
	const frames = 5
	e.Spawn("io", func(p *sim.Proc) {
		w, err := Create(p, fs, "/traj.mdtr", "LJ", 100)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		var want []*frame.Frame
		for i := 0; i < frames; i++ {
			f := frame.NewSynthetic("LJ", int64(i), 100, uint64(i+1))
			want = append(want, f)
			if err := w.AppendFrame(p, f); err != nil {
				t.Errorf("append %d: %v", i, err)
			}
		}
		if w.Frames() != frames {
			t.Errorf("writer frames %d", w.Frames())
		}
		if err := w.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}

		r, err := Open(p, fs, "/traj.mdtr")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if r.Len() != frames || r.Model != "LJ" || r.Atoms != 100 {
			t.Errorf("reader header: len=%d model=%q atoms=%d", r.Len(), r.Model, r.Atoms)
		}
		// Random access, out of order.
		for _, i := range []int{3, 0, 4, 2, 1} {
			got, err := r.Frame(p, i)
			if err != nil {
				t.Errorf("frame %d: %v", i, err)
				continue
			}
			if !got.Equal(want[i]) {
				t.Errorf("frame %d mismatch", i)
			}
		}
		if _, err := r.Frame(p, frames); err == nil {
			t.Error("out-of-range frame accepted")
		}
		_ = r.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMismatchedFrameRejected(t *testing.T) {
	e := sim.NewEngine(1)
	fs := newFS(e)
	e.Spawn("io", func(p *sim.Proc) {
		w, _ := Create(p, fs, "/t", "A", 10)
		if err := w.AppendFrame(p, frame.NewSynthetic("B", 0, 10, 1)); err == nil {
			t.Error("wrong model accepted")
		}
		if err := w.AppendFrame(p, frame.NewSynthetic("A", 0, 11, 1)); err == nil {
			t.Error("wrong atom count accepted")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	e := sim.NewEngine(1)
	fs := newFS(e)
	e.Spawn("io", func(p *sim.Proc) {
		if _, err := Open(p, fs, "/missing"); err == nil {
			t.Error("open of missing file accepted")
		}
		_ = fs.WriteFile(p, "/junk", vfs.BytesPayload([]byte("not a trajectory at all")))
		if _, err := Open(p, fs, "/junk"); err == nil {
			t.Error("garbage accepted")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexScanCheaperThanFullRead(t *testing.T) {
	// Opening (index scan over length prefixes) must cost far less device
	// time than reading every frame payload.
	e := sim.NewEngine(1)
	fs := newFS(e)
	var openTime, readAllTime time.Duration
	e.Spawn("io", func(p *sim.Proc) {
		w, _ := Create(p, fs, "/t", "LJ", 100_000)
		for i := 0; i < 10; i++ {
			_ = w.AppendFrame(p, frame.NewSynthetic("LJ", int64(i), 100_000, 1))
		}
		_ = w.Close(p)
		t0 := p.Now()
		r, err := Open(p, fs, "/t")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		openTime = p.Now() - t0
		t1 := p.Now()
		for i := 0; i < r.Len(); i++ {
			if _, err := r.Frame(p, i); err != nil {
				t.Errorf("frame %d: %v", i, err)
			}
		}
		readAllTime = p.Now() - t1
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if openTime*5 > readAllTime {
		t.Fatalf("index scan %v not ≪ full read %v", openTime, readAllTime)
	}
}
