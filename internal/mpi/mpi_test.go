package mpi

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestBarrierSynchronizesRanks(t *testing.T) {
	e := sim.NewEngine(1)
	cl := cluster.New(e, cluster.CoronaProfile(2))
	comm := NewComm(cl, []*cluster.Node{cl.Node(0), cl.Node(1)})
	var wait0, wait1 time.Duration
	var exit0, exit1 sim.Time
	e.Spawn("rank0", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		wait0 = comm.Barrier(p, 0)
		exit0 = p.Now()
	})
	e.Spawn("rank1", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		wait1 = comm.Barrier(p, 1)
		exit1 = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Rank 0 arrived 9ms early: its wait must absorb that gap.
	if wait0 < 9*time.Millisecond {
		t.Fatalf("early rank waited %v, want >= 9ms", wait0)
	}
	if wait1 > time.Millisecond {
		t.Fatalf("late rank waited %v, want ~0", wait1)
	}
	if exit0 < 10*time.Millisecond || exit1 < 10*time.Millisecond {
		t.Fatalf("ranks exited at %v/%v before the last arrival", exit0, exit1)
	}
	if comm.Barriers != 1 {
		t.Fatalf("barrier count %d", comm.Barriers)
	}
}

func TestBarrierReusableAcrossRounds(t *testing.T) {
	e := sim.NewEngine(1)
	cl := cluster.New(e, cluster.CoronaProfile(2))
	comm := NewComm(cl, []*cluster.Node{cl.Node(0), cl.Node(1)})
	rounds := 5
	counts := make([]int, 2)
	for rank := 0; rank < 2; rank++ {
		e.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				p.Sleep(time.Duration(1+rank) * time.Millisecond)
				comm.Barrier(p, idxOf(p))
				counts[idxOf(p)]++
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if counts[0] != rounds || counts[1] != rounds {
		t.Fatalf("rounds completed %v, want %d each", counts, rounds)
	}
	if comm.Barriers != int64(rounds) {
		t.Fatalf("barrier rounds %d, want %d", comm.Barriers, rounds)
	}
}

// idxOf maps the test's process names rank0/rank1 to ranks.
func idxOf(p *sim.Proc) int {
	if p.Name() == "rank0" {
		return 0
	}
	return 1
}

func TestNotifyWaitSeq(t *testing.T) {
	e := sim.NewEngine(1)
	cl := cluster.New(e, cluster.CoronaProfile(2))
	n := NewNotify(cl, cl.Node(0), cl.Node(1))
	var waited time.Duration
	e.Spawn("consumer", func(p *sim.Proc) {
		waited = n.WaitSeq(p, 3) // needs three posts
		if p.Now() < 3*time.Millisecond {
			t.Errorf("woke at %v before third post", p.Now())
		}
	})
	e.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Millisecond)
			n.Post(p)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if waited < 3*time.Millisecond {
		t.Fatalf("consumer waited %v, want >= 3ms", waited)
	}
}

func TestNotifyWaitSeqAlreadyPosted(t *testing.T) {
	e := sim.NewEngine(1)
	cl := cluster.New(e, cluster.CoronaProfile(2))
	n := NewNotify(cl, cl.Node(0), cl.Node(1))
	e.Spawn("producer", func(p *sim.Proc) {
		n.Post(p)
		n.Post(p)
	})
	e.Spawn("consumer", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		w := n.WaitSeq(p, 2)
		if w != 0 {
			t.Errorf("wait on already-posted seq took %v", w)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendChargesWire(t *testing.T) {
	e := sim.NewEngine(1)
	cl := cluster.New(e, cluster.CoronaProfile(2))
	comm := NewComm(cl, []*cluster.Node{cl.Node(0), cl.Node(1)})
	e.Spawn("s", func(p *sim.Proc) {
		comm.Send(p, 0, 1, 1<<20)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if cl.BytesOnWire < 1<<20 {
		t.Fatalf("wire bytes %d, want >= 1 MiB", cl.BytesOnWire)
	}
}
