package locks

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSharedLocksCoexist(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewManager(DefaultParams())
	holders := 0
	maxHolders := 0
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			m.Lock(p, "/f", Shared)
			holders++
			if holders > maxHolders {
				maxHolders = holders
			}
			p.Sleep(time.Millisecond)
			holders--
			m.Unlock(p, "/f", Shared)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxHolders != 4 {
		t.Fatalf("max concurrent shared holders %d, want 4", maxHolders)
	}
	// All shared: total time ~1ms + syscall costs, not 4ms.
	if e.Now() > 2*time.Millisecond {
		t.Fatalf("shared locks serialized: end %v", e.Now())
	}
}

func TestExclusiveExcludes(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewManager(DefaultParams())
	inside := 0
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			m.WithExclusive(p, "/f", func() {
				inside++
				if inside != 1 {
					t.Errorf("two exclusive holders at once")
				}
				p.Sleep(time.Millisecond)
				inside--
			})
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() < 3*time.Millisecond {
		t.Fatalf("exclusive sections overlapped: end %v", e.Now())
	}
	if m.Contended != 2 {
		t.Fatalf("contended %d, want 2", m.Contended)
	}
}

func TestSharedBlockedBehindQueuedExclusive(t *testing.T) {
	// r1 holds shared; w queues exclusive; r2 arriving later must NOT jump
	// the queue (FIFO prevents writer starvation).
	e := sim.NewEngine(1)
	m := NewManager(DefaultParams())
	var order []string
	e.Spawn("r1", func(p *sim.Proc) {
		m.Lock(p, "/f", Shared)
		p.Sleep(10 * time.Millisecond)
		m.Unlock(p, "/f", Shared)
		order = append(order, "r1")
	})
	e.Spawn("w", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		m.Lock(p, "/f", Exclusive)
		order = append(order, "w")
		p.Sleep(time.Millisecond)
		m.Unlock(p, "/f", Exclusive)
	})
	e.Spawn("r2", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		m.Lock(p, "/f", Shared)
		order = append(order, "r2")
		m.Unlock(p, "/f", Shared)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"r1", "w", "r2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestDistinctPathsIndependent(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewManager(DefaultParams())
	for i := 0; i < 2; i++ {
		path := fmt.Sprintf("/f%d", i)
		e.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			m.WithExclusive(p, path, func() { p.Sleep(5 * time.Millisecond) })
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() > 6*time.Millisecond {
		t.Fatalf("independent paths serialized: end %v", e.Now())
	}
}

func TestPathSpellingNormalized(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewManager(DefaultParams())
	var got []string
	e.Spawn("a", func(p *sim.Proc) {
		m.Lock(p, "/d//f", Exclusive)
		p.Sleep(2 * time.Millisecond)
		got = append(got, "a-done")
		m.Unlock(p, "/d/f", Exclusive)
	})
	e.Spawn("b", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		m.Lock(p, "d/f", Exclusive) // same lock, different spelling
		got = append(got, "b-in")
		m.Unlock(p, "/d/f", Exclusive)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a-done" || got[1] != "b-in" {
		t.Fatalf("order %v: path spellings mapped to different locks", got)
	}
}
