package dyad

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/caliper"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// rig builds a DYAD deployment on an n-node cluster with KVS on node 0.
func rig(e *sim.Engine, n int) (*cluster.Cluster, *System) {
	cl := cluster.New(e, cluster.CoronaProfile(n))
	return cl, New(cl, cl.Node(0), DefaultParams())
}

func annotator(p *sim.Proc) *caliper.Annotator {
	return caliper.New(p.Name(), func() time.Duration { return p.Now() })
}

func TestProduceConsumeSameNode(t *testing.T) {
	e := sim.NewEngine(1)
	cl, sys := rig(e, 1)
	payload := []byte("frame-0-bytes")
	var got vfs.Payload
	e.Spawn("prod", func(p *sim.Proc) {
		sys.NewClient(cl.Node(0)).Produce(p, nil, "/flow/f0", vfs.BytesPayload(payload))
	})
	e.Spawn("cons", func(p *sim.Proc) {
		got, _ = sys.NewClient(cl.Node(0)).Consume(p, nil, "/flow/f0")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("consumed %q, want %q", got.Bytes(), payload)
	}
	if sys.Fetched != 0 {
		t.Fatalf("same-node consume used %d remote fetches", sys.Fetched)
	}
}

func TestProduceConsumeCrossNode(t *testing.T) {
	e := sim.NewEngine(1)
	cl, sys := rig(e, 2)
	payload := bytes.Repeat([]byte("x"), 1<<20)
	var got vfs.Payload
	e.Spawn("prod", func(p *sim.Proc) {
		sys.NewClient(cl.Node(0)).Produce(p, nil, "/flow/f0", vfs.BytesPayload(payload))
	})
	e.Spawn("cons", func(p *sim.Proc) {
		got, _ = sys.NewClient(cl.Node(1)).Consume(p, nil, "/flow/f0")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("cross-node payload mismatch")
	}
	if sys.Fetched != 1 {
		t.Fatalf("remote fetches %d, want 1", sys.Fetched)
	}
	// The consumer's node now has a cached copy in its RAM cache.
	if _, ok := sys.Broker(cl.Node(1)).Cache().Get("/flow/f0"); !ok {
		t.Fatal("consumer-side cache copy missing")
	}
}

func TestConsumerBlocksUntilProduced(t *testing.T) {
	e := sim.NewEngine(1)
	cl, sys := rig(e, 2)
	var consumedAt sim.Time
	e.Spawn("cons", func(p *sim.Proc) {
		sys.NewClient(cl.Node(1)).Consume(p, nil, "/flow/f0")
		consumedAt = p.Now()
	})
	e.Spawn("prod", func(p *sim.Proc) {
		p.Sleep(100 * time.Millisecond)
		sys.NewClient(cl.Node(0)).Produce(p, nil, "/flow/f0", vfs.BytesPayload([]byte("late")))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if consumedAt < 100*time.Millisecond {
		t.Fatalf("consumed at %v, before production", consumedAt)
	}
}

func TestProducerNeverBlocksOnConsumer(t *testing.T) {
	// Loose coupling: production time must be independent of whether any
	// consumer exists.
	timeProduction := func(withConsumer bool) time.Duration {
		e := sim.NewEngine(1)
		cl, sys := rig(e, 2)
		var prodTime time.Duration
		e.Spawn("prod", func(p *sim.Proc) {
			c := sys.NewClient(cl.Node(0))
			t0 := p.Now()
			for i := 0; i < 10; i++ {
				c.Produce(p, nil, fmt.Sprintf("/flow/f%d", i), vfs.SizeOnly(1<<16))
			}
			prodTime = p.Now() - t0
		})
		if withConsumer {
			e.Spawn("cons", func(p *sim.Proc) {
				c := sys.NewClient(cl.Node(1))
				for i := 0; i < 10; i++ {
					c.Consume(p, nil, fmt.Sprintf("/flow/f%d", i))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return prodTime
	}
	alone := timeProduction(false)
	paired := timeProduction(true)
	// Allow small interference through shared KVS/fabric queues, but no
	// synchronization-scale stalls.
	if paired > alone*2 {
		t.Fatalf("production with consumer %v vs alone %v: producer blocked", paired, alone)
	}
}

func TestAdaptiveSyncSwitchesProtocols(t *testing.T) {
	// First consume of a flow pays the KVS watch; subsequent consumes of
	// already-produced frames must be far cheaper in dyad_fetch.
	e := sim.NewEngine(1)
	cl, sys := rig(e, 2)
	n := 8
	e.Spawn("prod", func(p *sim.Proc) {
		c := sys.NewClient(cl.Node(0))
		for i := 0; i < n; i++ {
			c.Produce(p, nil, fmt.Sprintf("/flow/f%d", i), vfs.SizeOnly(1<<18))
			p.Sleep(10 * time.Millisecond)
		}
	})
	var fetchFirst, fetchRest time.Duration
	e.Spawn("cons", func(p *sim.Proc) {
		c := sys.NewClient(cl.Node(1))
		for i := 0; i < n; i++ {
			ann := annotator(p)
			// Consume lags production by half a period so data is ready
			// for every frame after the first.
			c.Consume(p, ann, fmt.Sprintf("/flow/f%d", i))
			prof := ann.Profile()
			ft := prof.TotalOf("dyad_fetch")
			if i == 0 {
				fetchFirst = ft
			} else {
				fetchRest += ft
			}
			p.Sleep(10 * time.Millisecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.KVS().Waits != 1 {
		t.Fatalf("KVS watch-waits %d, want exactly 1 (first touch)", sys.KVS().Waits)
	}
	meanRest := fetchRest / time.Duration(n-1)
	if meanRest*5 > fetchFirst {
		t.Fatalf("fast-path fetch %v not ≪ first-touch fetch %v", meanRest, fetchFirst)
	}
}

func TestAnnotationsMatchDyadRegions(t *testing.T) {
	e := sim.NewEngine(1)
	cl, sys := rig(e, 2)
	var prof *caliper.Profile
	e.Spawn("prod", func(p *sim.Proc) {
		sys.NewClient(cl.Node(0)).Produce(p, nil, "/flow/f0", vfs.SizeOnly(4096))
	})
	e.Spawn("cons", func(p *sim.Proc) {
		ann := annotator(p)
		sys.NewClient(cl.Node(1)).Consume(p, ann, "/flow/f0")
		prof = ann.Profile()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, region := range []string{"dyad_consume", "dyad_fetch", "dyad_get_data", "dyad_cons_store", "read_single_buf"} {
		if prof.Root.Find(region) == nil {
			t.Errorf("region %s missing from consumer profile", region)
		}
	}
	// Structure: fetch/get_data/cons_store/read nested under dyad_consume.
	consume := prof.Root.Find("dyad_consume")
	if consume.Find("dyad_get_data") == nil {
		t.Error("dyad_get_data not nested under dyad_consume")
	}
}

func TestSameNodeConsumeSkipsTransferRegions(t *testing.T) {
	e := sim.NewEngine(1)
	cl, sys := rig(e, 1)
	var prof *caliper.Profile
	e.Spawn("prod", func(p *sim.Proc) {
		sys.NewClient(cl.Node(0)).Produce(p, nil, "/flow/f0", vfs.SizeOnly(4096))
	})
	e.Spawn("cons", func(p *sim.Proc) {
		ann := annotator(p)
		sys.NewClient(cl.Node(0)).Consume(p, ann, "/flow/f0")
		prof = ann.Profile()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if prof.Root.Find("dyad_get_data") != nil || prof.Root.Find("dyad_cons_store") != nil {
		t.Fatal("same-node consume should not transfer or re-store")
	}
	if prof.Root.Find("read_single_buf") == nil {
		t.Fatal("local read region missing")
	}
}

func TestFlowOf(t *testing.T) {
	cases := map[string]string{
		"/a/b/f0.pb": "/a/b",
		"/f0":        "/",
		"/a/f":       "/a",
	}
	for in, want := range cases {
		if got := flowOf(in); got != want {
			t.Errorf("flowOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestManyPairsConserveBytes(t *testing.T) {
	e := sim.NewEngine(3)
	cl, sys := rig(e, 2)
	pairs, frames := 4, 6
	size := 1 << 16
	consumedBytes := 0
	for pair := 0; pair < pairs; pair++ {
		pair := pair
		e.Spawn(fmt.Sprintf("prod%d", pair), func(p *sim.Proc) {
			c := sys.NewClient(cl.Node(0))
			for f := 0; f < frames; f++ {
				c.Produce(p, nil, fmt.Sprintf("/flow%d/f%d", pair, f), vfs.SizeOnly(int64(size)))
				p.Sleep(time.Duration(p.Rand().Intn(5)) * time.Millisecond)
			}
		})
		e.Spawn(fmt.Sprintf("cons%d", pair), func(p *sim.Proc) {
			c := sys.NewClient(cl.Node(1))
			for f := 0; f < frames; f++ {
				got, _ := c.Consume(p, nil, fmt.Sprintf("/flow%d/f%d", pair, f))
				consumedBytes += int(got.Size())
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if consumedBytes != pairs*frames*size {
		t.Fatalf("consumed %d bytes, want %d", consumedBytes, pairs*frames*size)
	}
	if sys.Produced != int64(pairs*frames) {
		t.Fatalf("produced %d, want %d", sys.Produced, pairs*frames)
	}
}

func TestMultipleConsumersSameFlow(t *testing.T) {
	// DYAD's global namespace lets any number of consumers read the same
	// produced files (broadcast); each gets the full payload.
	e := sim.NewEngine(1)
	cl, sys := rig(e, 3)
	n := 5
	payload := vfs.SizeOnly(1 << 16)
	e.Spawn("prod", func(p *sim.Proc) {
		c := sys.NewClient(cl.Node(0))
		for i := 0; i < n; i++ {
			c.Produce(p, nil, fmt.Sprintf("/flow/f%d", i), payload)
			p.Sleep(time.Millisecond)
		}
	})
	got := make([]int, 2)
	for ci := 0; ci < 2; ci++ {
		ci := ci
		node := cl.Node(1 + ci)
		e.Spawn(fmt.Sprintf("cons%d", ci), func(p *sim.Proc) {
			c := sys.NewClient(node)
			for i := 0; i < n; i++ {
				data, _ := c.Consume(p, nil, fmt.Sprintf("/flow/f%d", i))
				got[ci] += int(data.Size())
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for ci, bytes := range got {
		if bytes != n*(1<<16) {
			t.Fatalf("consumer %d got %d bytes, want %d", ci, bytes, n*(1<<16))
		}
	}
	if sys.Fetched != int64(2*n) {
		t.Fatalf("remote fetches %d, want %d", sys.Fetched, 2*n)
	}
}
