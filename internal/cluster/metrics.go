package cluster

import (
	"fmt"

	"repro/internal/metrics"
)

// RegisterMetrics registers the cluster's sampled hardware series:
// cluster-wide SSD/NIC utilization, queue depths, read/write/wire bandwidth
// and link-stall fraction on the dashboard, plus per-node breakdowns
// (CSV-only) and shared SSD latency histograms. Nil-safe: a nil registry
// registers nothing and the per-SSD histogram handles stay nil, so the I/O
// paths keep their zero-cost-when-off budget.
func (c *Cluster) RegisterMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	nodes := c.nodes
	channels := c.Spec.SSD.Channels

	reg.Util("cluster/ssd/util", channels*len(nodes), func() float64 {
		var sum int64
		for _, n := range nodes {
			sum += n.SSD.dev.BusyUnitNanos()
		}
		return float64(sum)
	}).OnDashboard()
	reg.Gauge("cluster/ssd/queue", func() float64 {
		var sum int
		for _, n := range nodes {
			sum += n.SSD.dev.QueueLen()
		}
		return float64(sum)
	}).OnDashboard()
	reg.Rate("cluster/ssd/read_bw", func() float64 {
		var sum int64
		for _, n := range nodes {
			sum += n.SSD.BytesRead
		}
		return float64(sum)
	}).OnDashboard()
	reg.Rate("cluster/ssd/write_bw", func() float64 {
		var sum int64
		for _, n := range nodes {
			sum += n.SSD.BytesWritten
		}
		return float64(sum)
	}).OnDashboard()
	reg.Util("cluster/nic/util", len(nodes), func() float64 {
		var sum int64
		for _, n := range nodes {
			sum += n.nic.BusyUnitNanos()
		}
		return float64(sum)
	}).OnDashboard()
	reg.Rate("cluster/net/wire_bw", func() float64 {
		return float64(c.BytesOnWire)
	}).OnDashboard()
	// Whole-cluster fraction of wall time lost to link outages: the stall
	// integral is normalized per node so a fully stalled fabric reads 1.
	reg.Util("cluster/net/link_stall_frac", len(nodes), func() float64 {
		var sum float64
		for _, n := range nodes {
			sum += float64(n.stallTime)
		}
		return sum
	}).OnDashboard()

	reg.Counter("cluster/ssd/failed_ops", func() float64 {
		var sum int64
		for _, n := range nodes {
			sum += n.SSD.FailedOps
		}
		return float64(sum)
	})
	reg.Rate("cluster/net/transfers", func() float64 { return float64(c.Transfers) })
	reg.Counter("cluster/net/link_stalls", func() float64 { return float64(c.LinkStalls) })
	reg.Gauge("cluster/nic/queue", func() float64 {
		var sum int
		for _, n := range nodes {
			sum += n.nic.QueueLen()
		}
		return float64(sum)
	})

	for _, n := range nodes {
		n := n
		pfx := fmt.Sprintf("cluster/node%d", n.ID)
		reg.Util(pfx+"/ssd/util", channels, func() float64 { return float64(n.SSD.dev.BusyUnitNanos()) })
		reg.Gauge(pfx+"/ssd/queue", func() float64 { return float64(n.SSD.dev.QueueLen()) })
		reg.Rate(pfx+"/ssd/read_bw", func() float64 { return float64(n.SSD.BytesRead) })
		reg.Rate(pfx+"/ssd/write_bw", func() float64 { return float64(n.SSD.BytesWritten) })
		reg.Util(pfx+"/nic/util", 1, func() float64 { return float64(n.nic.BusyUnitNanos()) })
		reg.Gauge(pfx+"/nic/queue", func() float64 { return float64(n.nic.QueueLen()) })
		reg.Util(pfx+"/link_stall_frac", 1, func() float64 { return float64(n.stallTime) })
	}

	// All SSDs share one pair of latency histograms: the dashboard wants
	// the device-class distribution, the per-device split already exists in
	// the bandwidth/utilization series.
	readLat := reg.Histogram("cluster/ssd/read_lat")
	writeLat := reg.Histogram("cluster/ssd/write_lat")
	for _, n := range nodes {
		n.SSD.readLat = readLat
		n.SSD.writeLat = writeLat
	}
}
