//go:build !race

package trace

// raceEnabled reports whether the race detector is active; heap-accounting
// assertions are skipped under it (instrumentation allocates).
const raceEnabled = false
