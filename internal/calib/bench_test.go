package calib

import (
	"testing"

	"repro/internal/experiments"
)

// BenchmarkCalibrateEval times one objective evaluation — the unit the
// fit budget is denominated in — on a reduced protocol (1 rep, 8 frames)
// so the ledger tracks optimizer-loop cost, not paper-scale simulation.
func BenchmarkCalibrateEval(b *testing.B) {
	space := DefaultSpace()
	o := Options{Quick: true, Reps: 1, Frames: 8}.Defaults()
	eo := experiments.Options{Reps: o.Reps, Frames: o.Frames, Seed: o.Seed, Quick: true}
	tune := space.Tune(space.defaults())
	targets := Targets(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := experiments.MeasureCalibration(eo, tune, false)
		if err != nil {
			b.Fatal(err)
		}
		objective(ms, targets)
	}
}
