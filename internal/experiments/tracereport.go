package experiments

import (
	"strconv"
	"strings"

	"repro/internal/caliper"
	"repro/internal/core"
	"repro/internal/critpath"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/thicket"
	"repro/internal/trace"
)

// Collector gathers the span traces emitted by traced repetitions across an
// experiment sweep. It keeps every traced run verbatim for Chrome trace
// export and folds each into paper-style time-breakdown rows: per role
// (producer/consumer), the per-process mean±std of movement, idle, compute,
// and recovery time, derived from the span stream through the same
// caliper/thicket ensemble path the Fig. 9/10 analysis uses.
//
// Pass one through Options.Trace to enable tracing: each experiment then
// records spans on one repetition per configuration (recording is
// observation-only, so measurements are unchanged) and the driver drains
// the breakdown rows into a report after each experiment.
type Collector struct {
	// Runs holds every traced run in collection order, ready for
	// trace.WriteChrome.
	Runs []trace.Run

	rows [][]string
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// breakdownCols is the column set of the drained breakdown report. total is
// movement+idle (the paper's production/consumption time); compute is the
// modeled application time between them; recovery overlaps the others and
// is zero on healthy runs, as is backpressure (producer stalls waiting for
// burst-buffer space) on runs without a finite capacity budget.
var breakdownCols = []string{"config", "role", "procs", "movement", "idle", "compute", "recovery", "backpressure", "total"}

// Add records every result in the batch that carries spans: one Chrome run
// each, plus one producer and one consumer breakdown row. Results without
// spans (untraced repetitions, runs killed by an injected fault) are
// skipped.
func (c *Collector) Add(label string, results []*core.Result) {
	for _, res := range results {
		if res == nil || len(res.Spans) == 0 {
			continue
		}
		run := trace.Run{Label: label, Spans: res.Spans}
		// A repetition that was also metrics-sampled carries its registry;
		// its dashboard series become Perfetto counter tracks under the
		// run's span rows.
		run.Counters = metrics.CounterTracks(res.Metrics)
		// A repetition that also recorded the dependency graph carries frame
		// lineages; each becomes a Chrome flow chaining the frame's
		// provenance hops across proc tracks.
		if res.Crit != nil {
			run.Flows = critpath.FlowEvents(res.Crit.Frames)
		}
		c.Runs = append(c.Runs, run)
		profiles := trace.Profiles(res.Spans)
		var prod, cons []*caliper.Profile
		for _, p := range profiles {
			switch {
			case strings.HasPrefix(p.Proc, "producer"):
				prod = append(prod, p)
			case strings.HasPrefix(p.Proc, "consumer"):
				cons = append(cons, p)
			}
		}
		c.rows = append(c.rows, breakdownRow(label, "producer", prod))
		c.rows = append(c.rows, breakdownRow(label, "consumer", cons))
	}
}

// breakdownRow ensembles one role's span-derived profiles and renders its
// class totals (mean±std across the role's processes).
func breakdownRow(label, role string, profs []*caliper.Profile) []string {
	ens := thicket.FromProfiles(profs)
	classMean := func(class string) float64 {
		if n := ens.Find(class); n != nil {
			return n.Total.Mean
		}
		return 0
	}
	cell := func(class string) string {
		if n := ens.Find(class); n != nil {
			return fmtMS(n.Total)
		}
		return fmtMS(stats.Summary{})
	}
	total := classMean("movement") + classMean("idle")
	return []string{
		label, role, strconv.Itoa(len(profs)),
		cell("movement"), cell("idle"), cell("compute"), cell("recovery"),
		cell("backpressure"),
		stats.FormatSeconds(total),
	}
}

// Drain returns the breakdown rows accumulated since the last call as a
// report, or nil if no traced run contributed. The pending rows are
// cleared; the Chrome runs are kept.
func (c *Collector) Drain(id string) *Report {
	if c == nil || len(c.rows) == 0 {
		return nil
	}
	r := &Report{
		ID:      id + "-trace",
		Title:   "span-trace time breakdown (per process, movement vs idle, Fig. 4-7 methodology)",
		Columns: breakdownCols,
		Rows:    c.rows,
	}
	c.rows = nil
	return r
}
