package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/critpath"
	"repro/internal/stats"
)

// CritCollector gathers the critical-path summaries recorded on one
// repetition per configuration across an experiment sweep. It folds each
// into blame rows (which labeled regions the gating chain executed, and
// which synchronization waits it flowed through) and keeps every run's
// frame lineages for waterfall CSV export.
//
// Pass one through Options.CritPath to enable recording: each experiment
// then records the dependency graph on one repetition per configuration
// (recording is observation-only, so measurements are unchanged) and the
// driver drains the blame rows into a report after each experiment.
type CritCollector struct {
	// Lineages holds every recorded run's frame provenance in collection
	// order, ready for critpath.WriteWaterfall.
	Lineages []critpath.LineageSet

	rows  [][]string
	notes []string
}

// NewCritCollector returns an empty collector.
func NewCritCollector() *CritCollector { return &CritCollector{} }

// critCols is the column set of the drained critical-path report. Rows of
// kind run/wait are blame buckets (time the gating chain executed under
// that label); rows of kind gated are the synchronization waits the chain
// flowed through before a release redirected it to the releaser (their
// time is blamed on the releaser's rows, not double-counted).
var critCols = []string{"config", "class", "component", "name", "kind", "total", "steps", "share"}

// critShare renders d as a percentage of the makespan.
func critShare(d, makespan time.Duration) string {
	if makespan <= 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(d)/float64(makespan))
}

// Add records every result in the batch that carries a critical-path
// summary: its blame rows, gated-wait rows, and frame lineages. Results
// without one (unrecorded repetitions, runs killed by an injected fault)
// are skipped.
func (c *CritCollector) Add(label string, results []*core.Result) {
	for _, res := range results {
		if res == nil || res.Crit == nil {
			continue
		}
		p := res.Crit.Path
		for _, row := range p.Rows {
			c.rows = append(c.rows, []string{
				label, row.Class.String(), row.Component, row.Name, row.Kind,
				fmtDur(row.Total), fmt.Sprintf("%d", row.Steps), critShare(row.Total, p.Makespan),
			})
		}
		for _, w := range p.Waits {
			c.rows = append(c.rows, []string{
				label, w.Class.String(), w.Component, w.Name, "gated",
				fmtDur(w.Gated), fmt.Sprintf("%d", w.Count), critShare(w.Gated, p.Makespan),
			})
		}
		c.notes = append(c.notes, fmt.Sprintf(
			"%s: makespan %s, attributed %s (%s), untracked %s, %d path steps over %d release edges",
			label, fmtDur(p.Makespan), fmtDur(p.Attributed), critShare(p.Attributed, p.Makespan),
			fmtDur(p.Untracked), p.Steps, p.Edges))
		c.Lineages = append(c.Lineages, critpath.LineageSet{Label: label, Frames: res.Crit.Frames})
	}
}

// Drain returns the blame rows accumulated since the last call as a
// report, or nil if no recorded run contributed. The pending rows are
// cleared; the lineages are kept.
func (c *CritCollector) Drain(id string) *Report {
	if c == nil || len(c.rows) == 0 {
		return nil
	}
	r := &Report{
		ID:      id + "-critpath",
		Title:   "critical-path blame (gating chain per config; gated rows flow through, not added)",
		Columns: critCols,
		Rows:    c.rows,
		Notes:   c.notes,
	}
	c.rows, c.notes = nil, nil
	return r
}

// WriteWaterfall writes every collected run's frame lineages as a
// long-format waterfall CSV (one row per provenance hop).
func (c *CritCollector) WriteWaterfall(w io.Writer) error {
	return critpath.WriteWaterfall(w, c.Lineages)
}

// ExplainTarget is one workload the explain subcommand can diff: the same
// configuration run under DYAD and under a traditional backend.
type ExplainTarget struct {
	ID    string
	Title string
	// Base is the workload; Explain runs it once with Backend DYAD and once
	// with Other, critical-path recording on.
	Base  core.Config
	Other core.Backend
}

// ExplainTargets lists the available differential workloads: the largest
// ensemble of the single-node Fig 5 comparison (DYAD vs XFS) and of the
// two-node Fig 6 comparison (DYAD vs Lustre).
func ExplainTargets() []ExplainTarget {
	jac := mustModel("JAC")
	return []ExplainTarget{
		{
			ID:    "fig5",
			Title: "single-node 4-pair JAC workload, DYAD vs XFS (Fig 5 largest ensemble)",
			Base:  core.Config{Model: jac, Pairs: 4, SingleNode: true},
			Other: core.XFS,
		},
		{
			ID:    "fig6",
			Title: "two-node 8-pair JAC workload, DYAD vs Lustre (Fig 6 largest ensemble)",
			Base:  core.Config{Model: jac, Pairs: 8},
			Other: core.Lustre,
		},
	}
}

// critConfig applies runAgg's per-run option plumbing to one explain side
// and turns critical-path recording on.
func critConfig(cfg core.Config, o Options) core.Config {
	cfg.Frames = o.Frames
	cfg.Seed = o.Seed
	cfg.ShardWorkers = o.ShardWorkers
	if cfg.ConsumerHeadStart == 0 {
		cfg.ConsumerHeadStart = o.ConsumerHeadStart
	}
	cfg.ComputeJitter = 0.004
	if cfg.Backend == core.Lustre {
		cfg.LustreNoise = true
	}
	cfg.CritPath = true
	return cfg
}

// Explain runs one workload under DYAD and under the target's traditional
// backend with critical-path recording on, extracts both gating chains,
// and diffs them edge-by-edge: every makespan-gap contribution is
// attributed to a named graph edge (blame bucket), so the report answers
// "where exactly does the ratio come from?" rather than only "how big is
// it?". Single run per side — the graphs are deterministic, so repetition
// adds nothing but jitter in the compute rows.
func Explain(targetID string, o Options) (*Report, error) {
	o = o.Defaults()
	var target ExplainTarget
	found := false
	for _, t := range ExplainTargets() {
		if t.ID == targetID {
			target, found = t, true
			break
		}
	}
	if !found {
		var ids []string
		for _, t := range ExplainTargets() {
			ids = append(ids, t.ID)
		}
		return nil, fmt.Errorf("experiments: unknown explain target %q (have %v)", targetID, ids)
	}

	a := target.Base
	a.Backend = core.DYAD
	b := target.Base
	b.Backend = target.Other
	cfgs := []core.Config{critConfig(a, o), critConfig(b, o)}
	results, err := core.RunMany(cfgs, o.Workers)
	if err != nil {
		return nil, err
	}
	labelA, labelB := core.DYAD.String(), target.Other.String()
	diff := critpath.Diff(labelA, results[0].Crit.Path, labelB, results[1].Crit.Path)

	r := &Report{
		ID:      "explain:" + target.ID,
		Title:   "differential critical path — " + target.Title,
		Columns: []string{"class", "component", "name", "kind", labelA, labelB, "delta", "gap_share"},
	}
	for _, row := range diff.Rows {
		share := "n/a"
		if diff.Gap != 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(row.Delta)/float64(diff.Gap))
		}
		r.Rows = append(r.Rows, []string{
			row.Class.String(), row.Component, row.Name, row.Kind,
			fmtDur(row.A), fmtDur(row.B), fmtDur(row.Delta), share,
		})
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"makespan: %s %s vs %s %s — gap %s (%s of %s makespan)",
		labelA, fmtDur(diff.MakespanA), labelB, fmtDur(diff.MakespanB),
		fmtDur(diff.Gap), critShare(diff.Gap, diff.MakespanB), labelB))
	r.Notes = append(r.Notes, fmt.Sprintf(
		"attribution: %.1f%% of the gap is on named graph edges (untracked: %s %s, %s %s)",
		diff.AttributionPct(), labelA, fmtDur(diff.UntrackedA), labelB, fmtDur(diff.UntrackedB)))
	if len(diff.Rows) > 0 && diff.Gap > 0 {
		top := diff.Rows[0]
		r.Notes = append(r.Notes, fmt.Sprintf(
			"top edge: %s %s/%s %s explains %.1f%% of the gap (%s -> %s)",
			top.Class, top.Component, top.Name, top.Kind,
			100*float64(top.Delta)/float64(diff.Gap), fmtDur(top.A), fmtDur(top.B)))
	}
	// The consumption-ratio headline next to the edge it decomposes into:
	// the paper's "how big", this report's "where from".
	consA := results[0].Consumer.Sum().Seconds()
	consB := results[1].Consumer.Sum().Seconds()
	r.Notes = append(r.Notes, fmt.Sprintf(
		"%s/%s overall consumption: %s (paper Fig 5-6 headline ratio decomposed above)",
		labelB, labelA, stats.FormatRatioPrec(stats.Ratio(consB, consA), 1)))
	return r, nil
}
