package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/models"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// TestMixedRunGolden locks the simulation's observable measurements against
// a committed fixture. The event-kernel and payload-handle internals are
// free to change, but a mixed DYAD/XFS/Lustre batch must keep producing
// byte-identical reports: virtual time is the product of this repository,
// and a perf refactor that shifts it is a correctness bug, not a speedup.
// Regenerate deliberately with: go test ./internal/core -run MixedRunGolden -update
func TestMixedRunGolden(t *testing.T) {
	jac, err := models.ByName("JAC")
	if err != nil {
		t.Fatal(err)
	}
	stmv, err := models.ByName("STMV")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		{Backend: DYAD, Model: jac, Pairs: 4, Frames: 12, Seed: 11, ComputeJitter: 0.05},
		{Backend: XFS, Model: jac, Pairs: 2, Frames: 12, Seed: 22, SingleNode: true, ComputeJitter: 0.05},
		{Backend: Lustre, Model: stmv, Pairs: 4, Frames: 8, Seed: 33, LustreNoise: true},
		{Backend: DYAD, Model: stmv, Pairs: 2, Frames: 8, Seed: 44, RealFrames: true},
	}
	results, err := RunMany(cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "%s\n", r.Cfg.Label())
		fmt.Fprintf(&b, "  makespan=%v\n", r.Makespan)
		fmt.Fprintf(&b, "  producer %v\n", r.Producer)
		fmt.Fprintf(&b, "  consumer %v\n", r.Consumer)
		fmt.Fprintf(&b, "  frames=%d bytes=%d\n", r.FramesRead, r.BytesRead)
	}
	got := b.String()

	golden := filepath.Join("testdata", "mixed_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden fixture (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("mixed-run report drifted from golden fixture:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
