// Command benchrec parses `go test -bench` output on stdin and merges the
// results into a JSON benchmark ledger, so performance work on the
// simulator leaves an auditable before/after trail (see bench.sh).
//
// Usage:
//
//	go test -run=NONE -bench=. -benchtime=2x ./... | benchrec -label pr2 -o BENCH_PR2.json
//
// Each invocation appends (or replaces, when the label already exists) one
// labeled record set. When the ledger holds two or more labels, the tool
// prints per-benchmark deltas of the last label against the first.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name     string  `json:"name"`
	Package  string  `json:"package,omitempty"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"b_per_op,omitempty"`
	AllocsOp float64 `json:"allocs_per_op,omitempty"`
	MBPerSec float64 `json:"mb_per_s,omitempty"`
}

// RecordSet is all results from one labeled run.
type RecordSet struct {
	Label   string   `json:"label"`
	Results []Result `json:"results"`
}

// Ledger is the on-disk shape of the JSON file.
type Ledger struct {
	Records []RecordSet `json:"records"`
}

// benchLine matches e.g.
//
//	BenchmarkSleepEvents-8   100000   486.0 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	label := flag.String("label", "", "label for this record set (required)")
	outPath := flag.String("o", "BENCH.json", "benchmark ledger to update")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchrec: -label is required")
		os.Exit(2)
	}

	set := RecordSet{Label: *label}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		r := Result{Name: m[1], Package: pkg, Iters: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BPerOp = v
			case "allocs/op":
				r.AllocsOp = v
			case "MB/s":
				r.MBPerSec = v
			}
		}
		set.Results = append(set.Results, r)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(set.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchrec: no benchmark lines on stdin")
		os.Exit(1)
	}

	ledger := Ledger{}
	if raw, err := os.ReadFile(*outPath); err == nil {
		if err := json.Unmarshal(raw, &ledger); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *outPath, err))
		}
	}
	replaced := false
	for i := range ledger.Records {
		if ledger.Records[i].Label == *label {
			ledger.Records[i] = set
			replaced = true
			break
		}
	}
	if !replaced {
		ledger.Records = append(ledger.Records, set)
	}

	out, err := json.MarshalIndent(&ledger, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*outPath, append(out, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchrec: %s: recorded %d results under %q\n", *outPath, len(set.Results), *label)

	if len(ledger.Records) >= 2 {
		printDeltas(ledger.Records[0], ledger.Records[len(ledger.Records)-1])
	}
}

// printDeltas reports the last record set against the baseline, benchmark
// by benchmark.
func printDeltas(base, cur RecordSet) {
	byName := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		byName[r.Package+"."+r.Name] = r
	}
	fmt.Printf("%-32s %12s %12s %9s %12s %12s %9s\n",
		"benchmark", base.Label+" ns/op", cur.Label+" ns/op", "Δns", base.Label+" B/op", cur.Label+" B/op", "ΔB")
	for _, r := range cur.Results {
		b, ok := byName[r.Package+"."+r.Name]
		if !ok {
			continue
		}
		fmt.Printf("%-32s %12.0f %12.0f %8.1f%% %12.0f %12.0f %8.1f%%\n",
			r.Name, b.NsPerOp, r.NsPerOp, pct(b.NsPerOp, r.NsPerOp),
			b.BPerOp, r.BPerOp, pct(b.BPerOp, r.BPerOp))
	}
}

func pct(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrec:", err)
	os.Exit(1)
}
