package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quickOpts keeps experiment tests fast while exercising the full paths.
func quickOpts() Options {
	return Options{Quick: true, Reps: 1, Frames: 6}
}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(quickOpts())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Errorf("report id %q, want %q", rep.ID, e.ID)
			}
			if len(rep.Rows) == 0 {
				t.Error("no rows")
			}
			for _, row := range rep.Rows {
				if len(row) != len(rep.Columns) {
					t.Errorf("row width %d, columns %d", len(row), len(rep.Columns))
				}
			}
			var buf bytes.Buffer
			rep.Render(&buf)
			if !strings.Contains(buf.String(), e.ID) {
				t.Error("render missing experiment id")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig5"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTable1MatchesRegistryOrder(t *testing.T) {
	rep, err := Table1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 || rep.Rows[0][0] != "JAC" || rep.Rows[3][0] != "STMV" {
		t.Fatalf("table1 rows %v", rep.Rows)
	}
}

func TestTable2FrequenciesEqualized(t *testing.T) {
	rep, err := Table2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		freq := row[len(row)-1]
		if !strings.HasPrefix(freq, "0.8") && !strings.HasPrefix(freq, "0.79") {
			t.Errorf("%s frequency %s, want ~0.82", row[0], freq)
		}
	}
}

func TestFig5RowsCoverBothBackendsAndSizes(t *testing.T) {
	rep, err := Fig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 { // 3 sizes x 2 backends
		t.Fatalf("fig5 rows %d, want 6", len(rep.Rows))
	}
	if len(rep.Notes) < 3 {
		t.Fatalf("fig5 notes %d, want >= 3 headline ratios", len(rep.Notes))
	}
}

func TestFig9ProducesTrees(t *testing.T) {
	rep, err := Fig9(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trees) != 3 {
		t.Fatalf("fig9 trees %d, want 3", len(rep.Trees))
	}
	for _, tree := range rep.Trees {
		for _, region := range []string{"dyad_consume", "dyad_fetch", "read_single_buf"} {
			if !strings.Contains(tree, region) {
				t.Errorf("tree missing region %s", region)
			}
		}
	}
}

func TestFig10TreesShowExplicitSync(t *testing.T) {
	rep, err := Fig10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, tree := range rep.Trees {
		if !strings.Contains(tree, "explicit_sync") {
			t.Error("tree missing explicit_sync")
		}
	}
}

func TestQuickShrinksFig7(t *testing.T) {
	rep, err := Fig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row[1] == "128" || row[1] == "256" {
			t.Fatal("quick mode ran a large ensemble")
		}
	}
}

func TestReportWriteCSV(t *testing.T) {
	rep, err := Table1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // header + 4 models
		t.Fatalf("csv lines %d, want 5:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "Name,") {
		t.Fatalf("csv header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "JAC,") {
		t.Fatalf("csv first row %q", lines[1])
	}
}

func TestStragglerReportShape(t *testing.T) {
	rep, err := Straggler(Options{Quick: true, Reps: 1, Frames: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 { // {DYAD,Lustre} x {healthy,injected}
		t.Fatalf("straggler rows %d, want 4", len(rep.Rows))
	}
	if len(rep.Notes) < 3 {
		t.Fatalf("straggler notes %d", len(rep.Notes))
	}
}

func TestAblationReportShape(t *testing.T) {
	rep, err := Ablation(Options{Quick: true, Reps: 1, Frames: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 7 { // 5 DYAD variants + coarse-sync + Lustre
		t.Fatalf("ablation rows %d, want 7", len(rep.Rows))
	}
}

// Regression: a row wider than Columns used to panic in Render's writeRow
// (the width computation guarded the index, the writer did not). Ragged
// reports must render and serialize, not crash.
func TestReportRaggedRowRenders(t *testing.T) {
	rep := &Report{
		ID:      "ragged",
		Title:   "ragged rows",
		Columns: []string{"a", "b"},
		Rows: [][]string{
			{"1", "2"},
			{"1", "2", "extra"}, // wider than Columns
			{"only"},            // narrower than Columns
		},
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	for _, want := range []string{"extra", "only"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render output missing cell %q:\n%s", want, buf.String())
		}
	}

	var csvBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatalf("WriteCSV on ragged report: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("csv lines %d, want 4:\n%s", len(lines), csvBuf.String())
	}
	if lines[2] != "1,2,extra" {
		t.Errorf("csv ragged row %q, want %q", lines[2], "1,2,extra")
	}
}
