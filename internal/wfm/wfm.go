// Package wfm is a workflow manager substrate: a DAG task scheduler over
// the simulation kernel, in the style of the batch workflow systems
// (Pegasus and kin) the paper's §III cites as the way traditional
// MD workflows chain producer and consumer tasks. Tasks declare
// dependencies; the manager launches each task (after a scheduling
// latency) once all of its dependencies complete.
//
// The coarse-grained, serialized producer/consumer coupling that the
// study measures for XFS and Lustre is exactly a chain in this model:
// sim_k -> analysis_k -> sim_(k+1) -> ... The wfm tests validate that the
// chain's timing matches the workflow harness's gate-based implementation.
package wfm

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Params configures scheduler behaviour.
type Params struct {
	// SubmitLatency is the delay between a task becoming eligible and its
	// process starting (scheduler dispatch, job launch).
	SubmitLatency time.Duration
}

// DefaultParams returns a fast in-situ scheduler profile (milliseconds,
// not the minutes of a real batch queue, so workflows stay comparable to
// the paper's tightly looped harness).
func DefaultParams() Params {
	return Params{SubmitLatency: 200 * time.Microsecond}
}

// Task is one node of the workflow DAG.
type Task struct {
	Name string

	run  func(p *sim.Proc)
	deps []*Task
	done sim.Latch

	// Scheduling metadata, filled as the workflow runs.
	EligibleAt time.Duration
	StartedAt  time.Duration
	FinishedAt time.Duration
	started    bool
}

// Done reports whether the task has completed.
func (t *Task) Done() bool { return t.done.Fired() }

// Await blocks the calling process until the task completes. It lets
// simulated processes outside the DAG synchronize with workflow progress.
func (t *Task) Await(p *sim.Proc) { t.done.Wait(p) }

// Manager owns a DAG and schedules it.
type Manager struct {
	e      *sim.Engine
	params Params
	tasks  []*Task

	Launched int
}

// New creates an empty workflow on the engine.
func New(e *sim.Engine, params Params) *Manager {
	return &Manager{e: e, params: params}
}

// Task adds a task running fn after all deps complete.
func (m *Manager) Task(name string, fn func(p *sim.Proc), deps ...*Task) *Task {
	t := &Task{Name: name, run: fn, deps: deps}
	m.tasks = append(m.tasks, t)
	return t
}

// Chain adds a linear sequence of tasks, each depending on the previous
// one (and on extra head dependencies for the first). It returns the
// tasks in order.
func (m *Manager) Chain(prefix string, n int, fn func(i int, p *sim.Proc), headDeps ...*Task) []*Task {
	var out []*Task
	prev := headDeps
	for i := 0; i < n; i++ {
		i := i
		t := m.Task(fmt.Sprintf("%s%d", prefix, i), func(p *sim.Proc) { fn(i, p) }, prev...)
		out = append(out, t)
		prev = []*Task{t}
	}
	return out
}

// Validate checks the DAG for cycles and foreign dependencies.
func (m *Manager) Validate() error {
	index := make(map[*Task]int, len(m.tasks))
	for i, t := range m.tasks {
		index[t] = i
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(m.tasks))
	var visit func(t *Task) error
	visit = func(t *Task) error {
		i, ok := index[t]
		if !ok {
			return fmt.Errorf("wfm: task %q depends on a task from another workflow", t.Name)
		}
		switch color[i] {
		case gray:
			return fmt.Errorf("wfm: dependency cycle through %q", t.Name)
		case black:
			return nil
		}
		color[i] = gray
		for _, d := range t.deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		color[i] = black
		return nil
	}
	for _, t := range m.tasks {
		if err := visit(t); err != nil {
			return err
		}
	}
	return nil
}

// Start validates the DAG and arms the scheduler: every task launches
// (as its own simulated process) SubmitLatency after its dependencies
// complete. Call before Engine.Run; returns the terminal "all done" latch.
func (m *Manager) Start() (*sim.Latch, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	all := &sim.Latch{}
	remaining := len(m.tasks)
	if remaining == 0 {
		all.Fire()
		return all, nil
	}
	for _, t := range m.tasks {
		t := t
		m.e.Spawn("wfm/"+t.Name, func(p *sim.Proc) {
			for _, d := range t.deps {
				d.done.Wait(p)
			}
			t.EligibleAt = p.Now()
			p.Sleep(m.params.SubmitLatency)
			t.StartedAt = p.Now()
			t.started = true
			m.Launched++
			t.run(p)
			t.FinishedAt = p.Now()
			t.done.Fire()
			remaining--
			if remaining == 0 {
				all.Fire()
			}
		})
	}
	return all, nil
}

// Tasks returns the workflow's tasks in creation order.
func (m *Manager) Tasks() []*Task { return m.tasks }
