package sim

import (
	"math"
	"time"
)

// RNG is a small, fast, deterministic random stream (splitmix64 state
// update feeding an xorshift-star output). Each process owns one, derived
// from the engine seed and the process identity, so simulations are
// reproducible regardless of goroutine scheduling.
type RNG struct {
	state uint64
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed uint64) RNG {
	// Avoid the all-zero state.
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a value in [0, n). n must be > 0.
//
// The reduction is a plain modulo, which carries the classic bias: values
// below 2^64 mod n are favored by at most n/2^64 — under 10^-13 even for
// n around one hour in nanoseconds, far below anything the simulation's
// statistics can resolve. It stays (rather than rejection sampling or
// Lemire's method) deliberately: an unbiased reduction consumes a
// data-dependent number of stream draws, which would shift every seeded
// timeline ever published by this repo. TestRNGStreamPinned locks the
// exact mapping.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample (Box-Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Jitter returns d scaled by a positive multiplicative noise factor with
// the given relative standard deviation (lognormal-ish; clamped at ±4σ).
// It models per-step compute-time variability.
//
// Nonpositive d or relStd return d unchanged without consuming the stream
// (callers sweep relStd down to zero; drawing for the no-op case would
// shift every downstream sample). The result is clamped to [0, MaxInt64]
// after the draw: huge d with a high-σ factor must saturate, not wrap to a
// negative duration the kernel would reject. Clamping happens after the
// stream is consumed, so enabling it never moved any seeded timeline.
func (r *RNG) Jitter(d time.Duration, relStd float64) time.Duration {
	if relStd <= 0 || d <= 0 {
		return d
	}
	z := r.Norm()
	if z > 4 {
		z = 4
	} else if z < -4 {
		z = -4
	}
	f := math.Exp(relStd*z - relStd*relStd/2)
	return clampDuration(float64(d) * f)
}

// Exp returns an exponential sample with the given mean.
//
// A nonpositive mean returns 0 without consuming the stream — the sensible
// degenerate distribution (previously it produced a negative duration,
// which no caller could schedule). Valid means draw exactly as before and
// clamp the result to [0, MaxInt64] after the draw, so overflow saturates
// instead of wrapping negative and seeded streams are unchanged.
func (r *RNG) Exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return clampDuration(-float64(mean) * math.Log(u))
}

// clampDuration converts a float sample to a Duration, saturating at the
// representable range instead of wrapping on overflow. NaN maps to 0.
func clampDuration(f float64) time.Duration {
	if f >= math.MaxInt64 {
		return math.MaxInt64
	}
	if f > 0 {
		return time.Duration(f)
	}
	return 0
}
