package lustre

import (
	"fmt"

	"repro/internal/metrics"
)

// RegisterMetrics registers the filesystem's sampled series: in-flight MDS
// RPCs, aggregate OST bandwidth, and the OST load-imbalance factor on the
// dashboard, plus MDS utilization, per-OST breakdowns (CSV-only), recovery
// counters, and RPC latency histograms. Nil-safe on a nil registry.
func (f *FS) RegisterMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("lustre/mds/inflight", func() float64 {
		return float64(f.mds.InUse() + f.mds.QueueLen())
	}).OnDashboard()
	reg.Rate("lustre/ost/bw", func() float64 {
		var sum int64
		for _, o := range f.osts {
			sum += o.bytes
		}
		return float64(sum)
	}).OnDashboard()
	// Imbalance factor: busiest OST's cumulative busy time over the mean
	// (1 = perfectly balanced, len(osts) = one OST does all the work).
	reg.Gauge("lustre/ost/imbalance", func() float64 {
		var sum, max int64
		for _, o := range f.osts {
			b := o.srv.BusyUnitNanos()
			sum += b
			if b > max {
				max = b
			}
		}
		if sum == 0 {
			return 0
		}
		return float64(max) * float64(len(f.osts)) / float64(sum)
	}).OnDashboard()

	reg.Util("lustre/mds/util", 1, func() float64 { return float64(f.mds.BusyUnitNanos()) })
	reg.Rate("lustre/mds/op_rate", func() float64 { return float64(f.MDSOps) })
	reg.Rate("lustre/ost/op_rate", func() float64 { return float64(f.OSTOps) })
	reg.Counter("lustre/timeouts", func() float64 { return float64(f.Recovery.Timeouts) })
	reg.Counter("lustre/retries", func() float64 { return float64(f.Recovery.Retries) })
	reg.Counter("lustre/failovers", func() float64 { return float64(f.Recovery.Failovers) })

	for i, o := range f.osts {
		o := o
		pfx := fmt.Sprintf("lustre/ost%d", i)
		reg.Util(pfx+"/util", 1, func() float64 { return float64(o.srv.BusyUnitNanos()) })
		reg.Rate(pfx+"/bw", func() float64 { return float64(o.bytes) })
	}

	f.mdsLat = reg.Histogram("lustre/mds_rpc_lat")
	f.ostLat = reg.Histogram("lustre/ost_rpc_lat")
}
