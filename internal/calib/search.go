package calib

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dyad"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/models"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Goal is one predicate the scenario search can chase. Goals generalize
// calibration: instead of minimizing distance to the paper's numbers,
// they look for qualitative reversals of them.
type Goal struct {
	ID    string
	Title string
	Run   func(Options) (*experiments.Report, error)
}

// Goals returns every search goal.
func Goals() []Goal {
	return []Goal{
		{"xfs-beats-dyad",
			"find a configuration where XFS consumption beats DYAD's",
			searchXFSBeatsDYAD},
		{"fault-breaks-10x",
			"minimum fault rate that breaks DYAD's 10x consumption win over Lustre",
			searchFaultBreaks10x},
	}
}

// RunGoal runs the goal with the given id.
func RunGoal(id string, o Options) (*experiments.Report, error) {
	for _, g := range Goals() {
		if g.ID == id {
			return g.Run(o)
		}
	}
	var ids []string
	for _, g := range Goals() {
		ids = append(ids, g.ID)
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("calib: unknown search goal %q (have %s)", id, strings.Join(ids, ", "))
}

// searchXFSBeatsDYAD scans a deterministic scenario grid — output stride
// (the frame-frequency axis), forced coarse-grained synchronization (the
// loose-coupling axis), and the all-mechanisms ablation (the transport
// axis) — for single-node JAC configurations where XFS's overall
// consumption is faster than DYAD's. The paper's Finding 1 predicts where
// the reversal lives: take away the loose coupling and DYAD pays its
// metadata overhead (dyad_produce > raw XFS write) with nothing left to
// buy.
func searchXFSBeatsDYAD(o Options) (*experiments.Report, error) {
	o = o.Defaults()
	noAll := dyad.DefaultParams()
	noAll.NoAdaptiveSync = true
	noAll.NoBurstBuffer = true
	noAll.NoDirectTransfer = true

	jac, err := models.ByName("JAC")
	if err != nil {
		return nil, err
	}
	type scenario struct {
		stride  int
		coarse  bool
		ablated bool
	}
	var scenarios []scenario
	for _, stride := range []int{220, 880, 3520} {
		for _, coarse := range []bool{false, true} {
			for _, ablated := range []bool{false, true} {
				scenarios = append(scenarios, scenario{stride, coarse, ablated})
			}
		}
	}
	// One flat batch: per scenario a DYAD variant and an XFS reference on
	// the same strided model.
	var cfgs []core.Config
	for _, sc := range scenarios {
		m := jac
		m.Stride = sc.stride
		dyCfg := core.Config{
			Backend: core.DYAD, Model: m, Pairs: 4, SingleNode: true,
			Frames: o.Frames, Seed: o.Seed, ComputeJitter: 0.004,
			ShardWorkers:    o.ShardWorkers,
			ForceCoarseSync: sc.coarse,
		}
		if sc.ablated {
			params := noAll
			dyCfg.DYADOverride = &params
		}
		xfCfg := core.Config{
			Backend: core.XFS, Model: m, Pairs: 4, SingleNode: true,
			Frames: o.Frames, Seed: o.Seed, ComputeJitter: 0.004,
			ShardWorkers: o.ShardWorkers,
		}
		cfgs = append(cfgs, dyCfg, xfCfg)
	}
	results, err := core.RunMany(cfgs, o.Workers)
	if err != nil {
		return nil, err
	}

	r := &experiments.Report{
		ID:      "search:xfs-beats-dyad",
		Title:   "Scenario search: where does XFS consumption beat DYAD? (JAC, 4 pairs, single node)",
		Columns: []string{"stride", "coarse_sync", "ablated", "dyad_cons", "xfs_cons", "xfs/dyad", "winner"},
	}
	type hit struct {
		scenario
		ratio float64
	}
	var hits []hit
	for i, sc := range scenarios {
		dy, xf := results[2*i], results[2*i+1]
		dyCons := dy.Consumer.Sum().Seconds()
		xfCons := xf.Consumer.Sum().Seconds()
		ratio := stats.Ratio(xfCons, dyCons)
		winner := "DYAD"
		if ratio < 1 {
			winner = "XFS"
			hits = append(hits, hit{sc, ratio})
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", sc.stride),
			fmt.Sprintf("%v", sc.coarse),
			fmt.Sprintf("%v", sc.ablated),
			stats.FormatSeconds(dyCons),
			stats.FormatSeconds(xfCons),
			stats.FormatRatioPrec(ratio, 3),
			winner,
		})
	}
	if len(hits) == 0 {
		r.Notes = append(r.Notes,
			"predicate unsatisfied on this grid: DYAD's consumption wins every scenario — the loose coupling survives every stride and ablation tested")
	} else {
		best := hits[0]
		for _, h := range hits[1:] {
			if h.ratio < best.ratio {
				best = h
			}
		}
		r.Notes = append(r.Notes, fmt.Sprintf(
			"predicate satisfied in %d of %d scenarios; strongest reversal at stride=%d coarse_sync=%v ablated=%v (XFS %s of DYAD's consumption)",
			len(hits), len(scenarios), best.stride, best.coarse, best.ablated,
			stats.FormatRatioPrec(best.ratio, 3)),
			"mechanism: forcing coarse-grained synchronization removes the idle-time gap that DYAD's loose coupling buys, leaving DYAD's per-frame metadata commit (dyad_produce > raw XFS write) as pure overhead — the paper's Finding 1 run in reverse")
	}
	r.Notes = append(r.Notes, "scenario grid and verdicts are deterministic: byte-identical for any -j / -pdes-j")
	return r, nil
}

// searchFaultBreaks10x bisects the fault-rate axis for the smallest rate
// at which DYAD's overall-consumption win over a clean Lustre baseline
// drops below 10x (or DYAD stops surviving at all). The fault mix is the
// fault sweep's DYAD mix; recovery runs with the Lustre fallback mirror
// deployed, so what breaks first is time, not data.
func searchFaultBreaks10x(o Options) (*experiments.Report, error) {
	o = o.Defaults()
	jac, err := models.ByName("JAC")
	if err != nil {
		return nil, err
	}
	const pairs = 8
	base := faults.Spec{DeviceStalls: 1, LinkDegrades: 2, LinkOutages: 1, BrokerCrashes: 1}

	// meanCons runs reps of cfg on the RepeatWorkers seed schedule and
	// returns the mean consumption over survivors (NaN if none survive).
	meanCons := func(cfg core.Config) (float64, int, error) {
		cfgs := make([]core.Config, o.Reps)
		for rep := range cfgs {
			cfgs[rep] = cfg
			cfgs[rep].Seed = o.Seed + uint64(rep)*0x9e3779b9
		}
		results, err := core.RunMany(cfgs, o.Workers)
		if err := tolerateKills(err); err != nil {
			return 0, 0, err
		}
		sum, ok := 0.0, 0
		for _, res := range results {
			if res == nil {
				continue
			}
			ok++
			sum += res.Consumer.Sum().Seconds()
		}
		return stats.Ratio(sum, float64(ok)), o.Reps - ok, nil
	}

	luCfg := core.Config{
		Backend: core.Lustre, Model: jac, Pairs: pairs, Frames: o.Frames,
		ComputeJitter: 0.004, ShardWorkers: o.ShardWorkers, LustreNoise: true,
	}
	luCons, _, err := meanCons(luCfg)
	if err != nil {
		return nil, err
	}

	r := &experiments.Report{
		ID: "search:fault-breaks-10x",
		Title: fmt.Sprintf(
			"Scenario search: minimum fault rate breaking DYAD's 10x win over Lustre (JAC, %d pairs, Lustre mirror deployed)", pairs),
		Columns: []string{"rate", "dyad_cons", "win_vs_lustre", "killed", "verdict"},
	}
	probe := func(rate float64) (broken bool, err error) {
		spec := base.Scale(rate)
		cfg := core.Config{
			Backend: core.DYAD, Model: jac, Pairs: pairs, Frames: o.Frames,
			ComputeJitter: 0.004, ShardWorkers: o.ShardWorkers,
			LustreFallback: true,
		}
		if rate > 0 {
			cfg.Faults = &spec
		}
		dyCons, killed, err := meanCons(cfg)
		if err != nil {
			return false, err
		}
		win := stats.Ratio(luCons, dyCons)
		broken = killed == o.Reps || win < 10
		verdict := "holds"
		if broken {
			verdict = "broken"
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.3gx", rate),
			stats.FormatSeconds(dyCons),
			stats.FormatRatioPrec(win, 1),
			fmt.Sprintf("%d/%d", killed, o.Reps),
			verdict,
		})
		return broken, nil
	}

	lo, hi := 0.0, 64.0
	atLo, err := probe(lo)
	if err != nil {
		return nil, err
	}
	atHi, err := probe(hi)
	if err != nil {
		return nil, err
	}
	switch {
	case atLo:
		r.Notes = append(r.Notes, "the 10x win is already broken with no faults injected — nothing to bisect")
	case !atHi:
		r.Notes = append(r.Notes, fmt.Sprintf(
			"predicate unsatisfied: DYAD keeps a >=10x consumption win over Lustre up to %gx the fault-sweep mix — recovery (timeout+backoff, staging refetch, mirror reads) absorbs the whole axis", hi))
	default:
		// Deterministic bisection: fixed midpoints, budget-capped depth.
		iters := 8
		if o.Budget > 0 && o.Budget < iters {
			iters = o.Budget
		}
		for i := 0; i < iters; i++ {
			mid := (lo + hi) / 2
			broken, err := probe(mid)
			if err != nil {
				return nil, err
			}
			if broken {
				hi = mid
			} else {
				lo = mid
			}
		}
		r.Notes = append(r.Notes, fmt.Sprintf(
			"minimum breaking rate: %.3gx the fault-sweep DYAD mix (bracketed to [%.3g, %.3g] in %d bisection probes); below it recovery absorbs the faults, above it recovery time itself erodes the win",
			hi, lo, hi, iters))
	}
	r.Notes = append(r.Notes,
		"fault plans are pure functions of (spec, seed): the bisection path and every cell are byte-identical for any -j / -pdes-j")
	return r, nil
}

// tolerateKills filters a RunMany batch error down to the sentinels an
// injected fault can legitimately kill a run with; anything else aborts
// the search.
func tolerateKills(err error) error {
	if err == nil {
		return nil
	}
	errs := []error{err}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		errs = joined.Unwrap()
	}
	for _, e := range errs {
		if !errors.Is(e, faults.ErrDeviceFailed) && !errors.Is(e, faults.ErrExhausted) &&
			!errors.Is(e, sim.ErrWatchdog) {
			return e
		}
	}
	return nil
}
