package critpath

import (
	"fmt"
	"io"

	"repro/internal/trace"
)

// LineageSet is one run's frame lineages tagged with the run's label, the
// unit the waterfall CSV is grouped by.
type LineageSet struct {
	Label  string
	Frames []FrameLineage
}

// WriteWaterfall writes frame provenance as a long-format CSV: one row per
// lineage hop, ordered by run, then frame first appearance, then hop
// recording order — a plotting-ready waterfall.
func WriteWaterfall(w io.Writer, runs []LineageSet) error {
	if _, err := io.WriteString(w, "run,frame,hop,proc,start_us,dur_us,bytes\n"); err != nil {
		return err
	}
	for _, set := range runs {
		for _, fl := range set.Frames {
			for _, h := range fl.Hops {
				_, err := fmt.Fprintf(w, "%s,%s,%s,%s,%s,%s,%d\n",
					set.Label, fl.Key, h.Name, h.Proc, us(h.Start), us(h.End-h.Start), h.Bytes)
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// us renders a duration in microseconds: integer when whole, three
// fractional digits otherwise (the same fixed formatting trace uses, so
// artifacts stay byte-stable across platforms).
func us(d Time) string {
	micros := d.Nanoseconds() / 1000
	if rem := d.Nanoseconds() % 1000; rem != 0 {
		return fmt.Sprintf("%d.%03d", micros, rem)
	}
	return fmt.Sprintf("%d", micros)
}

// FlowEvents converts frame lineages into Chrome flow events: one flow per
// frame, starting (ph "s") at the frame's first proc-bound hop and
// stepping (ph "f", binding point "e") through each subsequent hop — the
// arrows that stitch a frame's journey across proc tracks in a trace
// viewer. Frames whose lineage touches fewer than two procs' worth of
// hops draw no arrow and are skipped.
func FlowEvents(frames []FrameLineage) []trace.Flow {
	var out []trace.Flow
	id := int64(0)
	for _, fl := range frames {
		first := -1
		n := 0
		for i, h := range fl.Hops {
			if h.Proc == "" {
				continue
			}
			if first < 0 {
				first = i
			}
			n++
		}
		if n < 2 {
			continue
		}
		id++
		start := fl.Hops[first]
		out = append(out, trace.Flow{Name: fl.Key, ID: id, Proc: start.Proc, At: start.End, Start: true})
		for _, h := range fl.Hops[first+1:] {
			if h.Proc == "" {
				continue
			}
			out = append(out, trace.Flow{Name: fl.Key, ID: id, Proc: h.Proc, At: h.Start})
		}
	}
	return out
}
