package frame

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodedSizeMatchesTableI(t *testing.T) {
	// The paper's Table I frame sizes derive from ~28 bytes/atom; check the
	// wire format lands within 0.1% of the published figures.
	cases := []struct {
		model string
		atoms int
		wantK float64 // KiB
	}{
		{"JAC", 23_558, 644.21},
		{"ApoA1", 92_224, 2.46 * 1024},
		{"F1 ATPase", 327_506, 8.75 * 1024},
		{"STMV", 1_066_628, 28.48 * 1024},
	}
	for _, c := range cases {
		gotK := float64(EncodedSize(c.model, c.atoms)) / 1024
		if math.Abs(gotK-c.wantK)/c.wantK > 0.005 {
			t.Errorf("%s: %0.2f KiB, want ~%0.2f KiB", c.model, gotK, c.wantK)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	f := NewSynthetic("JAC", 880, 1000, 42)
	buf := f.Encode()
	if int64(len(buf)) != EncodedSize("JAC", 1000) {
		t.Fatalf("encoded %d bytes, want %d", len(buf), EncodedSize("JAC", 1000))
	}
	g, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatal("decode(encode(f)) != f")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("short")); err == nil {
		t.Error("short buffer accepted")
	}
	f := NewSynthetic("X", 1, 10, 1)
	buf := f.Encode()
	buf[0] ^= 0xff // corrupt magic
	if _, err := Decode(buf); err == nil {
		t.Error("bad magic accepted")
	}
	buf = f.Encode()
	if _, err := Decode(buf[:len(buf)-4]); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := NewSynthetic("JAC", 1, 100, 7)
	b := NewSynthetic("JAC", 1, 100, 7)
	if !a.Equal(b) {
		t.Fatal("same-seed frames differ")
	}
	c := NewSynthetic("JAC", 1, 100, 8)
	if a.Equal(c) {
		t.Fatal("different-seed frames identical")
	}
}

func TestSyntheticPositionsInBox(t *testing.T) {
	f := NewSynthetic("JAC", 1, 500, 3)
	for _, x := range f.Pos {
		if x < 0 || x >= 100 {
			t.Fatalf("position %v outside 100 Å box", x)
		}
	}
}

// Property: round trip preserves arbitrary frames.
func TestRoundTripProperty(t *testing.T) {
	f := func(model string, step int64, atomsRaw uint16, seed uint64) bool {
		atoms := int(atomsRaw % 2048)
		fr := NewSynthetic(model, step, atoms, seed)
		got, err := Decode(fr.Encode())
		return err == nil && fr.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
