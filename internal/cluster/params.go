package cluster

// This file gives the hardware profile a reflective parameter surface: every
// scalar of the cost model is addressable by a stable dotted name in SI units
// (seconds, bytes per second). The calibration harness (internal/calib)
// perturbs specs through SetParam inside its optimization loop, and
// EncodeParams gives fit reports a deterministic serialization of a profile —
// sorted name order, %g rendering — so two fits that landed on the same spec
// produce byte-identical output.

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Spec parameter names, sorted. Bandwidths are bytes per second; latencies
// and overheads are seconds.
const (
	ParamFabricHopLat = "fabric.hop_lat"
	ParamNICBandwidth = "nic.bw"
	ParamNICOverhead  = "nic.overhead"
	ParamSSDReadBW    = "ssd.read_bw"
	ParamSSDReadLat   = "ssd.read_lat"
	ParamSSDWriteBW   = "ssd.write_bw"
	ParamSSDWriteLat  = "ssd.write_lat"
)

var specParamNames = []string{
	ParamFabricHopLat,
	ParamNICBandwidth,
	ParamNICOverhead,
	ParamSSDReadBW,
	ParamSSDReadLat,
	ParamSSDWriteBW,
	ParamSSDWriteLat,
}

// SpecParamNames returns every named Spec parameter in sorted order.
func SpecParamNames() []string {
	return append([]string(nil), specParamNames...)
}

// IsSpecParam reports whether name addresses a Spec parameter.
func IsSpecParam(name string) bool {
	i := sort.SearchStrings(specParamNames, name)
	return i < len(specParamNames) && specParamNames[i] == name
}

// Param returns the named parameter's current value in SI units.
func (s *Spec) Param(name string) (float64, error) {
	switch name {
	case ParamFabricHopLat:
		return s.Fabric.HopLatency.Seconds(), nil
	case ParamNICBandwidth:
		return s.NIC.Bandwidth, nil
	case ParamNICOverhead:
		return s.NIC.Overhead.Seconds(), nil
	case ParamSSDReadBW:
		return s.SSD.ReadBandwidth, nil
	case ParamSSDReadLat:
		return s.SSD.ReadLatency.Seconds(), nil
	case ParamSSDWriteBW:
		return s.SSD.WriteBandwidth, nil
	case ParamSSDWriteLat:
		return s.SSD.WriteLatency.Seconds(), nil
	}
	return 0, fmt.Errorf("cluster: unknown spec parameter %q (have %s)", name, strings.Join(specParamNames, ", "))
}

// SetParam sets the named parameter from an SI-unit value. Bandwidths must
// be positive and finite; latencies must be non-negative and finite —
// invalid values are rejected before they can corrupt a running model
// (bwTime panics on non-positive bandwidth).
func (s *Spec) SetParam(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("cluster: %s = %v: value must be finite", name, v)
	}
	switch name {
	case ParamNICBandwidth, ParamSSDReadBW, ParamSSDWriteBW:
		if v <= 0 {
			return fmt.Errorf("cluster: %s = %g: bandwidth must be > 0", name, v)
		}
	case ParamFabricHopLat, ParamNICOverhead, ParamSSDReadLat, ParamSSDWriteLat:
		if v < 0 {
			return fmt.Errorf("cluster: %s = %g: latency must be >= 0", name, v)
		}
	default:
		return fmt.Errorf("cluster: unknown spec parameter %q (have %s)", name, strings.Join(specParamNames, ", "))
	}
	switch name {
	case ParamFabricHopLat:
		s.Fabric.HopLatency = secsToDur(v)
	case ParamNICBandwidth:
		s.NIC.Bandwidth = v
	case ParamNICOverhead:
		s.NIC.Overhead = secsToDur(v)
	case ParamSSDReadBW:
		s.SSD.ReadBandwidth = v
	case ParamSSDReadLat:
		s.SSD.ReadLatency = secsToDur(v)
	case ParamSSDWriteBW:
		s.SSD.WriteBandwidth = v
	case ParamSSDWriteLat:
		s.SSD.WriteLatency = secsToDur(v)
	}
	return nil
}

// EncodeParams serializes the profile's named parameters deterministically:
// sorted name order, space-separated name=value pairs, %g values.
func (s *Spec) EncodeParams() string {
	var b strings.Builder
	for i, name := range specParamNames {
		if i > 0 {
			b.WriteByte(' ')
		}
		v, _ := s.Param(name)
		fmt.Fprintf(&b, "%s=%g", name, v)
	}
	return b.String()
}

// secsToDur converts SI seconds to a duration, rounding to the nanosecond
// tick so that a value and its re-read round-trip stably.
func secsToDur(v float64) time.Duration {
	return time.Duration(math.Round(v * float64(time.Second)))
}
