package core

import (
	"fmt"
	"time"

	"repro/internal/caliper"
	"repro/internal/capacity"
	"repro/internal/critpath"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Totals is one role's time decomposition for a whole run (all frames),
// averaged over the ensemble's pairs — the quantity the paper's bar charts
// plot, split into red (data movement) and blue (idle) components.
type Totals struct {
	Movement time.Duration
	Idle     time.Duration
}

// Sum returns movement + idle.
func (t Totals) Sum() time.Duration { return t.Movement + t.Idle }

// PerFrame scales the totals to one frame.
func (t Totals) PerFrame(frames int) Totals {
	if frames < 1 {
		return t
	}
	return Totals{Movement: t.Movement / time.Duration(frames), Idle: t.Idle / time.Duration(frames)}
}

func (t Totals) String() string {
	return fmt.Sprintf("movement=%v idle=%v", t.Movement, t.Idle)
}

// Result is the measurement of one workflow run.
type Result struct {
	Cfg Config

	// Producer and Consumer are mean-over-pairs whole-run decompositions.
	Producer Totals
	Consumer Totals

	// Makespan is the end-to-end virtual duration of the run.
	Makespan time.Duration

	// FramesRead and BytesRead are conservation counters.
	FramesRead int
	BytesRead  int64

	// Recovery records the run's fault-injection and recovery activity
	// (timeouts, retries, failovers, degraded-mode traffic). All zero on
	// healthy runs.
	Recovery faults.Metrics

	// Capacity records the run's capacity-pressure activity (evictions,
	// spills, drops, back-pressure stalls). All zero when Config.Capacity
	// is off or the budgets were never pressured.
	Capacity capacity.Metrics

	// ProducerProfiles / ConsumerProfiles hold per-pair Caliper profiles
	// when Config.KeepProfiles is set.
	ProducerProfiles []*caliper.Profile
	ConsumerProfiles []*caliper.Profile

	// Spans holds the run's virtual-time span trace when Config.RecordSpans
	// is set (nil otherwise); emission order is event-execution order.
	Spans []trace.Span
	// SpanStats are per-operation counters and latency histograms derived
	// from Spans. Nil when tracing is off.
	SpanStats []trace.OpStat

	// Metrics holds the run's sampled resource registry when
	// Config.MetricsInterval is set (nil otherwise).
	Metrics *metrics.Registry

	// Crit holds the run's extracted critical path and per-frame provenance
	// lineages when Config.CritPath is set (nil otherwise).
	Crit *critpath.Summary
}

// collect derives the Result from the rig's profiles and counters.
func (r *rig) collect() (*Result, error) {
	if len(r.decodeErrs) > 0 {
		return nil, fmt.Errorf("core: %d frame verification failures, first: %w", len(r.decodeErrs), r.decodeErrs[0])
	}
	wantFrames := r.cfg.Pairs * r.cfg.Frames
	if r.framesRead != wantFrames {
		return nil, fmt.Errorf("core: consumed %d frames, want %d", r.framesRead, wantFrames)
	}
	wantBytes := int64(wantFrames) * r.cfg.frameSize
	if !r.cfg.RealFrames && r.bytesRead != wantBytes {
		return nil, fmt.Errorf("core: consumed %d bytes, want %d", r.bytesRead, wantBytes)
	}

	res := &Result{
		Cfg:        r.cfg.Config,
		Makespan:   r.eng.Now(),
		FramesRead: r.framesRead,
		BytesRead:  r.bytesRead,
	}
	res.Recovery = r.recovery
	if r.capMet != nil {
		res.Capacity = *r.capMet
	}
	if r.dy != nil {
		res.Recovery.Add(r.dy.Recovery)
	}
	if r.lfs != nil {
		res.Recovery.Add(r.lfs.Recovery)
	}
	res.Recovery.LinkStalls += r.cl.LinkStalls
	res.Recovery.RecoveryTime += r.cl.LinkStallTime
	for _, prof := range r.prodProfiles {
		t := SplitProducer(r.cfg.Backend, prof)
		res.Producer.Movement += t.Movement
		res.Producer.Idle += t.Idle
	}
	for _, prof := range r.consProfiles {
		t := SplitConsumer(r.cfg.Backend, prof)
		res.Consumer.Movement += t.Movement
		res.Consumer.Idle += t.Idle
	}
	n := time.Duration(r.cfg.Pairs)
	res.Producer.Movement /= n
	res.Producer.Idle /= n
	res.Consumer.Movement /= n
	res.Consumer.Idle /= n

	if r.cfg.KeepProfiles {
		res.ProducerProfiles = r.prodProfiles
		res.ConsumerProfiles = r.consProfiles
	}
	if r.rec != nil {
		if r.rec.Streaming() {
			// Streamed spans were serialized on emission and never retained;
			// the per-operation statistics were folded incrementally.
			res.SpanStats = r.rec.Stats()
		} else {
			res.Spans = r.rec.Spans()
			res.SpanStats = trace.Aggregate(res.Spans)
		}
	}
	if r.cp != nil {
		g := r.cp.Finish(r.eng.Now())
		res.Crit = &critpath.Summary{Path: critpath.Extract(g), Frames: g.Lineages}
	}
	if r.reg != nil && r.cfg.MetricsSink == nil {
		// A streamed registry's samples are already on disk and its series
		// are pool-recycled, so only buffered runs retain the registry.
		res.Metrics = r.reg
	}
	if r.rec != nil && r.rec.Streaming() {
		// Close out the run in the shared Chrome stream, appending counter
		// tracks when this run also buffered metrics (nil-safe otherwise).
		r.cfg.TraceStream.EndRun(r.rec, metrics.CounterTracks(res.Metrics))
	}
	return res, nil
}

// SplitProducer decomposes a producer profile into data movement and idle
// time exactly as §IV-C describes: for DYAD, all time inside the DYAD
// produce path counts as movement (including metadata management — the
// source of DYAD's production overhead); for XFS/Lustre, movement is the
// POSIX write and idle is the explicit synchronization.
func SplitProducer(b Backend, prof *caliper.Profile) Totals {
	if b == DYAD {
		return Totals{
			Movement: prof.TotalOf("dyad_produce"),
			// Zero in normal runs; nonzero only under ForceCoarseSync.
			Idle: prof.TotalOf("explicit_sync"),
		}
	}
	return Totals{
		Movement: prof.TotalOf("write_single_buf"),
		Idle:     prof.TotalOf("explicit_sync"),
	}
}

// SplitConsumer decomposes a consumer profile: for DYAD, idle is the KVS
// synchronization (dyad_fetch) and movement is the rest of dyad_consume;
// for XFS/Lustre, movement is the POSIX read and idle is explicit_sync.
func SplitConsumer(b Backend, prof *caliper.Profile) Totals {
	if b == DYAD {
		consume := prof.TotalOf("dyad_consume")
		fetch := prof.TotalOf("dyad_fetch")
		// explicit_sync is zero in normal DYAD runs; it appears only when
		// ForceCoarseSync layers the coarse coupling over DYAD transport.
		return Totals{Movement: consume - fetch, Idle: fetch + prof.TotalOf("explicit_sync")}
	}
	return Totals{
		Movement: prof.TotalOf("read_single_buf"),
		Idle:     prof.TotalOf("explicit_sync"),
	}
}

// Repeat runs cfg reps times with distinct seeds and returns all results.
// Repetitions execute in parallel across DefaultWorkers goroutines (the
// results are deterministic regardless; see RunMany). Use RepeatWorkers to
// control the worker count.
func Repeat(cfg Config, reps int) ([]*Result, error) {
	return RepeatWorkers(cfg, reps, 0)
}

// Aggregate summarizes repeated runs of one configuration.
type Aggregate struct {
	Cfg  Config
	Reps int

	ProdMovement stats.Summary // seconds
	ProdIdle     stats.Summary
	ConsMovement stats.Summary
	ConsIdle     stats.Summary
	Makespan     stats.Summary
}

// Aggregated computes the cross-run summary of results (all from the same
// configuration).
func Aggregated(results []*Result) Aggregate {
	agg := Aggregate{Reps: len(results)}
	if len(results) == 0 {
		return agg
	}
	agg.Cfg = results[0].Cfg
	var pm, pi, cm, ci, mk []float64
	for _, r := range results {
		pm = append(pm, r.Producer.Movement.Seconds())
		pi = append(pi, r.Producer.Idle.Seconds())
		cm = append(cm, r.Consumer.Movement.Seconds())
		ci = append(ci, r.Consumer.Idle.Seconds())
		mk = append(mk, r.Makespan.Seconds())
	}
	agg.ProdMovement = stats.Summarize(pm)
	agg.ProdIdle = stats.Summarize(pi)
	agg.ConsMovement = stats.Summarize(cm)
	agg.ConsIdle = stats.Summarize(ci)
	agg.Makespan = stats.Summarize(mk)
	return agg
}

// ProdTotalMean returns mean production time (movement + idle) in seconds.
func (a Aggregate) ProdTotalMean() float64 { return a.ProdMovement.Mean + a.ProdIdle.Mean }

// ConsTotalMean returns mean consumption time (movement + idle) in seconds.
func (a Aggregate) ConsTotalMean() float64 { return a.ConsMovement.Mean + a.ConsIdle.Mean }
