package kvs

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func newStore(e *sim.Engine, nodes int) (*cluster.Cluster, *Store) {
	cl := cluster.New(e, cluster.CoronaProfile(nodes))
	return cl, New(cl, cl.Node(0), DefaultParams())
}

func TestCommitThenLookup(t *testing.T) {
	e := sim.NewEngine(1)
	cl, s := newStore(e, 2)
	e.Spawn("c", func(p *sim.Proc) {
		s.Commit(p, cl.Node(1), "k", []byte("v"))
		v, err := s.Lookup(p, cl.Node(1), "k")
		if err != nil || string(v) != "v" {
			t.Errorf("lookup = %q, %v", v, err)
		}
		if _, err := s.Lookup(p, cl.Node(1), "missing"); !errors.Is(err, ErrNoSuchKey) {
			t.Errorf("missing key: err = %v, want ErrNoSuchKey", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Commits != 1 || s.Lookups != 2 {
		t.Fatalf("counters commits=%d lookups=%d", s.Commits, s.Lookups)
	}
}

func TestWaitForBlocksUntilCommit(t *testing.T) {
	e := sim.NewEngine(1)
	cl, s := newStore(e, 3)
	var consumerGot sim.Time
	e.Spawn("consumer", func(p *sim.Proc) {
		v := s.WaitFor(p, cl.Node(2), "frame0")
		consumerGot = p.Now()
		if string(v) != "meta" {
			t.Errorf("WaitFor value %q", v)
		}
	})
	e.Spawn("producer", func(p *sim.Proc) {
		p.Sleep(50 * time.Millisecond)
		s.Commit(p, cl.Node(1), "frame0", []byte("meta"))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if consumerGot < 50*time.Millisecond {
		t.Fatalf("consumer resumed at %v, before the commit", consumerGot)
	}
	if s.Waits != 1 {
		t.Fatalf("waits %d, want 1", s.Waits)
	}
}

func TestWaitForPresentKeyIsCheap(t *testing.T) {
	e := sim.NewEngine(1)
	cl, s := newStore(e, 2)
	var waitCost time.Duration
	e.Spawn("c", func(p *sim.Proc) {
		s.Commit(p, cl.Node(1), "k", []byte("v"))
		t0 := p.Now()
		s.WaitFor(p, cl.Node(1), "k")
		waitCost = p.Now() - t0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Waits != 0 {
		t.Fatalf("present key registered a watch")
	}
	if waitCost > time.Millisecond {
		t.Fatalf("WaitFor on present key cost %v", waitCost)
	}
}

func TestMultipleWatchersAllWake(t *testing.T) {
	e := sim.NewEngine(1)
	cl, s := newStore(e, 4)
	woke := 0
	for i := 1; i <= 3; i++ {
		node := cl.Node(i)
		e.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			s.WaitFor(p, node, "k")
			woke++
		})
	}
	e.Spawn("producer", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		s.Commit(p, cl.Node(0), "k", []byte("v"))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3 {
		t.Fatalf("woke %d watchers, want 3", woke)
	}
}

func TestServerQueuesConcurrentCommits(t *testing.T) {
	// Many simultaneous commits serialize at the single KVS server, so the
	// end-to-end time is at least n * CommitService.
	e := sim.NewEngine(1)
	cl, s := newStore(e, 2)
	n := 16
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		e.Spawn(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
			s.Commit(p, cl.Node(1), key, []byte("v"))
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	min := time.Duration(n) * DefaultParams().CommitService
	if e.Now() < min {
		t.Fatalf("end %v, want >= %v (server serialization)", e.Now(), min)
	}
	if s.Len() != n {
		t.Fatalf("stored %d keys, want %d", s.Len(), n)
	}
}

func TestWatchWaitAlwaysPaysRegistration(t *testing.T) {
	e := sim.NewEngine(1)
	cl, s := newStore(e, 2)
	var adaptive, always time.Duration
	e.Spawn("c", func(p *sim.Proc) {
		s.Commit(p, cl.Node(1), "k", []byte("v"))
		t0 := p.Now()
		s.WaitFor(p, cl.Node(1), "k") // adaptive: present key -> cheap lookup
		adaptive = p.Now() - t0
		t1 := p.Now()
		s.WatchWait(p, cl.Node(1), "k") // non-adaptive: registration + notify
		always = p.Now() - t1
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if always <= adaptive {
		t.Fatalf("WatchWait (%v) should cost more than adaptive WaitFor (%v)", always, adaptive)
	}
}

func TestWatchWaitBlocksUntilCommit(t *testing.T) {
	e := sim.NewEngine(1)
	cl, s := newStore(e, 2)
	var got []byte
	var at sim.Time
	e.Spawn("c", func(p *sim.Proc) {
		got = s.WatchWait(p, cl.Node(1), "late")
		at = p.Now()
	})
	e.Spawn("p", func(p *sim.Proc) {
		p.Sleep(30 * time.Millisecond)
		s.Commit(p, cl.Node(0), "late", []byte("v"))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "v" || at < 30*time.Millisecond {
		t.Fatalf("WatchWait got %q at %v", got, at)
	}
}
