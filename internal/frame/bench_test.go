package frame

import "testing"

// BenchmarkEncodeJAC measures serializing a JAC-sized frame (23,558 atoms).
func BenchmarkEncodeJAC(b *testing.B) {
	b.ReportAllocs()
	f := NewSynthetic("JAC", 1, 23_558, 7)
	b.SetBytes(EncodedSize("JAC", 23_558))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Encode()
	}
}

// BenchmarkDecodeJAC measures parsing a JAC-sized frame.
func BenchmarkDecodeJAC(b *testing.B) {
	b.ReportAllocs()
	buf := NewSynthetic("JAC", 1, 23_558, 7).Encode()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
