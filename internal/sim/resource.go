package sim

import (
	"fmt"
	"time"
)

// Resource is a FIFO-queued server with a fixed number of capacity units.
// It models contended hardware and services: an SSD channel, a NIC, a
// metadata server's request queue. Grants are strictly FIFO: a small request
// cannot overtake a large one, which mirrors the in-order queue pairs and
// request queues of the real devices being modelled.
type Resource struct {
	name  string
	cap   int
	inUse int
	// queue[qhead:] are the live waiters, stored by value so queueing
	// allocates nothing beyond amortized slice growth. Vacated slots are
	// zeroed so a drained queue never pins finished processes, and the
	// backing array is compacted once the dead prefix dominates.
	queue     []resWaiter
	qhead     int
	queueHint int // pre-size applied on first enqueue (0 = none)

	// Busy accumulates total grant-duration (units * time) for utilization
	// accounting; see Utilization.
	busyUnitNanos int64
	lastChange    Time
	createdAt     Time
	e             *Engine
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource creates a resource with the given capacity (>= 1).
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{name: name, cap: capacity, e: e, createdAt: e.Now()}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total capacity units.
func (r *Resource) Capacity() int { return r.cap }

// InUse returns the currently granted units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting for a grant.
func (r *Resource) QueueLen() int { return len(r.queue) - r.qhead }

// SetQueueHint sizes the wait queue's first allocation for an expected
// number of concurrent waiters. Applied lazily, so uncontended resources
// still allocate nothing.
func (r *Resource) SetQueueHint(n int) { r.queueHint = n }

// Reset returns the resource to its just-created state at the engine's
// current instant, keeping the wait queue's backing array and the queue
// hint — the pooled-reuse contract (Engine.Reset, DESIGN.md §3h): a reset
// resource on a reset engine is observationally identical to a fresh
// NewResource. Call only between runs; any waiters a failed run left
// behind are dropped.
func (r *Resource) Reset() {
	for i := range r.queue {
		r.queue[i] = resWaiter{}
	}
	r.queue = r.queue[:0]
	r.qhead = 0
	r.inUse = 0
	r.busyUnitNanos = 0
	r.lastChange = r.e.Now()
	r.createdAt = r.e.Now()
}

func (r *Resource) account() {
	now := r.e.Now()
	r.busyUnitNanos += int64(r.inUse) * int64(now-r.lastChange)
	r.lastChange = now
}

// BusyUnitNanos returns the cumulative busy integral up to the current
// virtual instant, in unit-nanoseconds: a grant of n units for d nanoseconds
// adds n*d. Metrics samplers difference it across a sample interval to get
// the windowed busy fraction (see internal/metrics).
func (r *Resource) BusyUnitNanos() int64 {
	r.account()
	return r.busyUnitNanos
}

// Utilization returns mean busy fraction (0..1) since creation.
func (r *Resource) Utilization() float64 {
	r.account()
	elapsed := r.e.Now() - r.createdAt
	if elapsed <= 0 {
		return 0
	}
	return float64(r.busyUnitNanos) / (float64(r.cap) * float64(elapsed))
}

// Acquire blocks p until n units are granted. n must be in [1, capacity].
func (r *Resource) Acquire(p *Proc, n int) {
	if n < 1 || n > r.cap {
		panic(fmt.Sprintf("sim: acquire %d of resource %q with capacity %d", n, r.name, r.cap))
	}
	if r.qhead == len(r.queue) && r.inUse+n <= r.cap {
		r.account()
		r.inUse += n
		return
	}
	if r.queue == nil && r.queueHint > 0 {
		r.queue = make([]resWaiter, 0, r.queueHint)
	}
	r.queue = append(r.queue, resWaiter{p: p, n: n})
	p.Block()
}

// Release returns n units and grants the queue head(s) in FIFO order.
func (r *Resource) Release(n int) {
	if n < 1 || n > r.inUse {
		panic(fmt.Sprintf("sim: release %d of resource %q with %d in use", n, r.name, r.inUse))
	}
	r.account()
	r.inUse -= n
	for r.qhead < len(r.queue) && r.inUse+r.queue[r.qhead].n <= r.cap {
		w := r.queue[r.qhead]
		r.queue[r.qhead] = resWaiter{} // release the proc reference
		r.qhead++
		r.inUse += w.n
		w.p.Wake()
	}
	switch {
	case r.qhead == len(r.queue):
		// Drained: reuse the backing array from the start.
		r.queue = r.queue[:0]
		r.qhead = 0
	case r.qhead > 64 && r.qhead >= len(r.queue)/2:
		// Dead prefix dominates: compact live waiters to the front so a
		// long-lived queue's memory stays proportional to its depth.
		live := copy(r.queue, r.queue[r.qhead:])
		for i := live; i < len(r.queue); i++ {
			r.queue[i] = resWaiter{}
		}
		r.queue = r.queue[:live]
		r.qhead = 0
	}
}

// Use acquires one unit, holds it for the service duration d, and releases
// it. It returns the total time spent (queueing + service).
func (r *Resource) Use(p *Proc, d time.Duration) time.Duration {
	start := p.Now()
	r.Acquire(p, 1)
	p.Sleep(d)
	r.Release(1)
	return p.Now() - start
}

// UseN is Use with n capacity units held during service.
func (r *Resource) UseN(p *Proc, n int, d time.Duration) time.Duration {
	start := p.Now()
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
	return p.Now() - start
}
