package sim

// Signal is a reusable broadcast synchronization point. Processes block in
// Wait; Broadcast wakes every current waiter at the current virtual time.
// Waiters that arrive after a Broadcast wait for the next one.
type Signal struct {
	waiters []*Proc
}

// Wait blocks the calling process until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.Block()
}

// Broadcast wakes all processes currently blocked in Wait, in arrival order.
// Wake only schedules delivery — no waiter resumes (or re-Waits) until the
// kernel regains control — so the slice can be cleared and reused in place.
func (s *Signal) Broadcast() {
	for i, w := range s.waiters {
		w.Wake()
		s.waiters[i] = nil
	}
	s.waiters = s.waiters[:0]
}

// Pending returns the number of processes blocked on the signal.
func (s *Signal) Pending() int { return len(s.waiters) }

// Latch is a one-way gate: once fired, every past and future Wait returns
// immediately. It models "data has been published" conditions such as a
// key appearing in a key-value store.
type Latch struct {
	fired bool
	sig   Signal
}

// Fired reports whether the latch has fired.
func (l *Latch) Fired() bool { return l.fired }

// Wait blocks until the latch fires; it returns immediately if it already has.
func (l *Latch) Wait(p *Proc) {
	if l.fired {
		return
	}
	l.sig.Wait(p)
}

// Fire opens the latch, waking all waiters. Firing twice is a no-op.
func (l *Latch) Fire() {
	if l.fired {
		return
	}
	l.fired = true
	l.sig.Broadcast()
}
