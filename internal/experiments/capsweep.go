package experiments

import (
	"errors"
	"fmt"

	"repro/internal/capacity"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
)

// CapSweep is a robustness extension: it bounds the burst buffer that the
// paper's DYAD deployment treats as infinite and measures how each
// data-management solution degrades as the budget shrinks. Budgets are
// expressed in units of the per-node in-flight working set
//
//	W = 2 x pairs-per-node x frame size
//
// (one frame in flight plus one of cushion per local pair). Consumers keep
// no files of their own and producers never unlink, so any finite budget
// evicts steadily as frame history accumulates; the interesting regimes
// start when the budget dips below the in-flight set itself:
//
//   - DYAD with the Lustre mirror (LustreFallback) spills evicted-but-
//     unconsumed frames: consumers find them on the shared filesystem via
//     the degraded-read path, so runs survive at any budget but give back
//     the node-local advantage one mirror read at a time — down toward the
//     Lustre baseline.
//   - The consumed-drop policy refuses to evict unconsumed frames, so an
//     overfull buffer back-pressures producers instead (capacity stalls);
//     runs survive without a mirror at the cost of idle producer time.
//   - XFS under LRU has no mirror below it: once the budget is small
//     enough that a victim scan reaches an unconsumed frame, the consumer's
//     read fails and the run is killed (the chain wraps
//     capacity.ErrEvicted) — counted, like faultsweep's device kills,
//     instead of aborting the sweep.
//   - A budget smaller than one frame cannot stage anything: every write
//     fails fast with capacity.ErrNoSpace (graceful ENOSPC, never a hang).
//
// Eviction order, spill decisions, and stall accounting are all
// event-serialized, so every cell is byte-identical for any -j / -pdes-j.
func CapSweep(o Options) (*Report, error) {
	o = o.Defaults()
	jac := mustModel("JAC")
	pairsMulti, pairsXFS := 8, 4
	if o.Quick {
		pairsMulti, pairsXFS = 4, 2
	}
	frame := jac.FrameBytes()
	wMulti := 2 * int64(pairsMulti) * frame // both DYAD node groups hold 8 procs/node
	wXFS := 2 * int64(pairsXFS) * frame

	const inf = float64(0) // multiplier 0 = unbounded (Spec zero value)
	type setup struct {
		name    string // row label: backend+policy
		backend core.Backend
		pairs   int
		single  bool
		policy  string
		mirror  bool      // DYAD only: deploy the Lustre fallback mirror
		working int64     // W for this placement
		caps    []float64 // budget multipliers of W (0 = unbounded)
	}
	setups := []setup{
		// Lustre stages nothing node-locally: the capacity-free reference
		// the DYAD rows degrade toward.
		{"Lustre", core.Lustre, pairsMulti, false, "", false, wMulti, []float64{inf}},
		// 0.25W is one in-flight frame per local pair; 0.0625W is a single
		// frame slot for the whole node — the deep-starvation regimes where
		// most of a production burst is evicted before its consumer reads.
		{"DYAD+mirror lru", core.DYAD, pairsMulti, false, capacity.PolicyLRU, true, wMulti,
			[]float64{inf, 2, 1, 0.5, 0.25, 0.125, 0.0625}},
		{"DYAD consumed-drop", core.DYAD, pairsMulti, false, capacity.PolicyConsumedDrop, false, wMulti,
			[]float64{1, 0.5, 0.25, 0.125, 0.0625}},
		{"XFS lru", core.XFS, pairsXFS, true, capacity.PolicyLRU, false, wXFS,
			[]float64{inf, 0.5, 0.25}},
		{"XFS consumed-drop", core.XFS, pairsXFS, true, capacity.PolicyConsumedDrop, false, wXFS,
			[]float64{0.5, 0.25}},
	}

	capLabel := func(mult float64) string {
		if mult == inf {
			return "inf"
		}
		return fmt.Sprintf("%gW", mult)
	}

	// One flat batch over (setup, cap, rep), exactly like faultsweep: every
	// run is independent and fans across the worker pool at once, with the
	// RepeatWorkers seed schedule per repetition index.
	type key struct{ setup, cap int }
	var keys []key
	var cfgs []core.Config
	var traceLabels []string
	addCell := func(k key, cfg core.Config, label string) {
		for rep := 0; rep < o.Reps; rep++ {
			c := cfg
			c.Seed = o.Seed + uint64(rep)*0x9e3779b9
			lbl := ""
			if rep == 0 && (o.Trace != nil || o.Metrics != nil || o.CritPath != nil) {
				lbl = label
				if o.Trace != nil {
					c.RecordSpans = true
				}
				if o.Metrics != nil {
					c.MetricsInterval = o.Metrics.SampleInterval()
				}
				if o.CritPath != nil {
					c.CritPath = true
				}
			}
			keys = append(keys, k)
			cfgs = append(cfgs, c)
			traceLabels = append(traceLabels, lbl)
		}
	}
	for si, s := range setups {
		for ci, mult := range s.caps {
			cfg := core.Config{
				Backend: s.backend, Model: jac, Pairs: s.pairs,
				SingleNode: s.single, Frames: o.Frames,
				ComputeJitter:     0.004,
				ShardWorkers:      o.ShardWorkers,
				ConsumerHeadStart: o.ConsumerHeadStart,
			}
			switch s.backend {
			case core.Lustre:
				cfg.LustreNoise = true
			case core.DYAD:
				cfg.LustreFallback = s.mirror
				// The mirror is the same busy shared filesystem the Lustre
				// baseline runs on: spilled frames are fetched through the
				// background interference too.
				cfg.LustreNoise = s.mirror
			}
			if mult != inf || s.policy != "" {
				cfg.Capacity = &capacity.Spec{
					StagingBytes: int64(mult * float64(s.working)),
					Policy:       s.policy,
				}
			}
			addCell(key{si, ci}, cfg, fmt.Sprintf("cap %s %s", s.name, capLabel(mult)))
		}
	}
	// The ENOSPC cell: a budget smaller than a single frame can never stage
	// anything; every producer write fails fast with capacity.ErrNoSpace.
	nospaceKey := key{len(setups), 0}
	addCell(nospaceKey, core.Config{
		Backend: core.XFS, Model: jac, Pairs: pairsXFS, SingleNode: true,
		Frames: o.Frames, ComputeJitter: 0.004, ShardWorkers: o.ShardWorkers,
		ConsumerHeadStart: o.ConsumerHeadStart,
		Capacity:          &capacity.Spec{StagingBytes: frame / 2},
	}, "cap XFS half-frame")

	results, err := core.RunMany(cfgs, o.Workers)
	if err := tolerateCapacityKills(err); err != nil {
		return nil, err
	}
	for i, label := range traceLabels {
		if label == "" {
			continue
		}
		if o.Trace != nil {
			o.Trace.Add(label, results[i:i+1])
		}
		if o.Metrics != nil {
			o.Metrics.Add(label, results[i:i+1])
		}
		if o.CritPath != nil {
			o.CritPath.Add(label, results[i:i+1])
		}
	}

	r := &Report{
		ID: "capsweep",
		Title: fmt.Sprintf(
			"Extension: finite burst-buffer capacity sweep (JAC, budgets in units of W = in-flight working set, W=%.1f MiB multi / %.1f MiB single)",
			float64(wMulti)/(1<<20), float64(wXFS)/(1<<20)),
		Columns: []string{"system", "cap", "makespan", "prod_move", "cons_move", "speedup", "evict",
			"spill_mb", "degraded_mb", "stall_s", "failed"},
	}

	type cell struct {
		ok, failed                            int
		makespan, prodMove, consMove          float64
		evict, spillMB, degradedMB, stallSecs float64
		readMB                                float64
	}
	cells := map[key]*cell{}
	for i, res := range results {
		c := cells[keys[i]]
		if c == nil {
			c = &cell{}
			cells[keys[i]] = c
		}
		if res == nil {
			c.failed++
			continue
		}
		c.ok++
		c.makespan += res.Makespan.Seconds()
		c.prodMove += res.Producer.Movement.Seconds()
		c.consMove += res.Consumer.Movement.Seconds()
		c.evict += float64(res.Capacity.Evictions + res.Capacity.CacheEvictions)
		c.spillMB += float64(res.Capacity.SpilledBytes) / (1 << 20)
		c.degradedMB += float64(res.Recovery.DegradedBytes) / (1 << 20)
		c.stallSecs += res.Capacity.StallTime().Seconds()
		c.readMB += float64(res.BytesRead) / (1 << 20)
	}
	mean := func(c *cell, sum float64) float64 { return sum / float64(c.ok) }
	lustre := cells[key{0, 0}]
	baseCons := 0.0
	if lustre.ok > 0 {
		baseCons = mean(lustre, lustre.consMove)
	}
	row := func(name, cap string, c *cell) {
		out := []string{name, cap}
		if c.ok == 0 {
			out = append(out, "-", "-", "-", "-", "-", "-", "-", "-")
		} else {
			speedup := "-"
			if cons := mean(c, c.consMove); baseCons > 0 && cons > 0 {
				// The paper's Fig 6 headline metric: consumer data-movement
				// speedup over the Lustre baseline. This — not the
				// idle-dominated total — is what capacity starvation attacks.
				speedup = fmt.Sprintf("%.1fx", baseCons/cons)
			}
			out = append(out,
				stats.FormatSeconds(mean(c, c.makespan)),
				stats.FormatSeconds(mean(c, c.prodMove)),
				stats.FormatSeconds(mean(c, c.consMove)),
				speedup,
				fmt.Sprintf("%.1f", mean(c, c.evict)),
				fmt.Sprintf("%.2f", mean(c, c.spillMB)),
				fmt.Sprintf("%.2f", mean(c, c.degradedMB)),
				stats.FormatSeconds(mean(c, c.stallSecs)),
			)
		}
		out = append(out, fmt.Sprintf("%d/%d", c.failed, o.Reps))
		r.Rows = append(r.Rows, out)
	}
	for si, s := range setups {
		for ci, mult := range s.caps {
			row(s.name, capLabel(mult), cells[key{si, ci}])
		}
	}
	row("XFS lru", "0.5frame", cells[nospaceKey])

	// Headlines: how fast does the consumer data-movement speedup decay as
	// the budget shrinks, and where does DYAD's data movement cross over to
	// the shared filesystem?
	dySetup := setups[1]
	last := len(dySetup.caps) - 1
	c0, c1 := cells[key{1, 0}], cells[key{1, last}]
	if baseCons > 0 && c0.ok > 0 && c1.ok > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"DYAD+mirror consumer data-movement speedup decays monotonically from %.1fx (inf) to %.1fx (%s) as spills push reads to the mirror — the capacity axis erodes the node-local term of DYAD's advantage; the synchronization term (idle time) survives starvation",
			baseCons/mean(c0, c0.consMove), baseCons/mean(c1, c1.consMove), capLabel(dySetup.caps[last])))
	}
	if lustre.ok > 0 && c1.ok > 0 {
		if pm, pl := mean(c1, c1.prodMove), mean(lustre, lustre.prodMove); pm > pl {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"producer crossover: DYAD+mirror at %s spends %.2fx the Lustre baseline's producer data-movement time (staging writes that mostly evict unread, plus the mirror write-through) — the first regime on-model where DYAD moves data for longer than Lustre",
				capLabel(dySetup.caps[last]), pm/pl))
		}
	}
	for ci := range dySetup.caps {
		c := cells[key{1, ci}]
		if c.ok == 0 || c.readMB == 0 {
			continue
		}
		if frac := mean(c, c.degradedMB) / mean(c, c.readMB); frac > 0.5 {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"movement crossover at %s: %.0f%% of consumed bytes are served by the Lustre mirror rather than node-local staging",
				capLabel(dySetup.caps[ci]), 100*frac))
			break
		}
	}
	r.Notes = append(r.Notes,
		"consumed-drop never evicts an unconsumed frame: overfull buffers back-pressure producers (stall_s) instead of dropping data, so runs survive without a mirror",
		"XFS under LRU dies once victims reach unconsumed frames (reads fail with capacity.ErrEvicted); under a sub-frame budget every write fails fast with capacity.ErrNoSpace — counted above, never a hang or panic",
		"budgets and eviction order are event-serialized state: this table is byte-identical for any -j / -pdes-j",
		"extends the paper: finite burst-buffer capacity; not a paper figure",
	)
	return r, nil
}

// tolerateCapacityKills filters a RunMany batch error: runs killed by
// capacity starvation (their chains wrap capacity.ErrNoSpace or
// capacity.ErrEvicted, the latter possibly via faults.ErrExhausted after
// the degraded-read ladder) are expected sweep outcomes; anything else is a
// real failure and aborts.
func tolerateCapacityKills(err error) error {
	if err == nil {
		return nil
	}
	errs := []error{err}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		errs = joined.Unwrap()
	}
	for _, e := range errs {
		if !errors.Is(e, capacity.ErrNoSpace) && !errors.Is(e, capacity.ErrEvicted) &&
			!errors.Is(e, faults.ErrExhausted) {
			return e
		}
	}
	return nil
}
