// Package cluster models the hardware of an HPC system: compute nodes with
// node-local NVMe SSDs and NICs, connected by a switched fabric. The models
// are queueing models over the sim kernel: each device is a FIFO resource
// and each operation charges latency plus size/bandwidth service time, so
// contention between concurrent processes emerges naturally.
//
// The default parameters (CoronaProfile) approximate LLNL's Corona system
// used in the paper: AMD EPYC nodes with 3.5 TB NVMe SSDs on an InfiniBand
// QDR interconnect.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SSDSpec parameterizes a node-local NVMe device.
type SSDSpec struct {
	ReadBandwidth  float64       // bytes per second
	WriteBandwidth float64       // bytes per second
	ReadLatency    time.Duration // fixed per-operation latency
	WriteLatency   time.Duration
	Channels       int // concurrent operations served at full speed
}

// NICSpec parameterizes a node's network interface.
type NICSpec struct {
	Bandwidth float64 // bytes per second on the wire
	Overhead  time.Duration
}

// FabricSpec parameterizes the switched interconnect.
type FabricSpec struct {
	HopLatency time.Duration // propagation + switching per message
}

// Spec is a full cluster hardware profile.
type Spec struct {
	Nodes  int
	SSD    SSDSpec
	NIC    NICSpec
	Fabric FabricSpec

	// QueueHint pre-sizes each device's wait queue for the expected number
	// of concurrently blocked processes (0 = size on demand). Purely a
	// host-memory optimization; it never changes simulated behavior.
	QueueHint int
}

// MinLinkLatency returns the minimum latency any cross-node interaction
// pays on this hardware: NIC overhead plus one fabric hop. Sharded runs
// (sim.Engine.SetLookahead) use it as the conservative lookahead bound —
// no event scheduled on another node can land sooner than this floor.
func (s Spec) MinLinkLatency() time.Duration {
	return s.NIC.Overhead + s.Fabric.HopLatency
}

// ShardForNode deterministically assigns a node to one of shards event
// shards. Nodes are striped round-robin so producer/consumer pairs placed
// on consecutive nodes spread across shards.
func ShardForNode(nodeID, shards int) int {
	if shards < 1 {
		return 0
	}
	if nodeID < 0 {
		nodeID = -nodeID
	}
	return nodeID % shards
}

// CoronaProfile returns a profile approximating LLNL Corona (the paper's
// testbed): 3.5 TB NVMe node-local SSDs and an InfiniBand QDR fabric.
// Bandwidths are effective application-level figures, not datasheet peaks.
func CoronaProfile(nodes int) Spec {
	return Spec{
		Nodes: nodes,
		SSD: SSDSpec{
			ReadBandwidth:  3.0e9,
			WriteBandwidth: 2.0e9,
			ReadLatency:    60 * time.Microsecond,
			WriteLatency:   80 * time.Microsecond,
			Channels:       4,
		},
		NIC: NICSpec{
			Bandwidth: 3.2e9, // IB QDR 4x ~ 32 Gbit/s usable
			Overhead:  3 * time.Microsecond,
		},
		Fabric: FabricSpec{
			HopLatency: 1200 * time.Nanosecond,
		},
	}
}

// SSD is a node-local storage device.
type SSD struct {
	spec SSDSpec
	dev  *sim.Resource

	// degrade multiplies service times (fault injection; 1 = healthy).
	degrade float64
	// failed makes every operation return ErrDeviceFailed (fault
	// injection; repaired devices serve again).
	failed bool

	BytesRead    int64
	BytesWritten int64
	Reads        int64
	Writes       int64
	FailedOps    int64

	// readLat/writeLat are sampled latency histograms, shared across the
	// cluster's SSDs (nil when no metrics registry is attached — Observe on
	// nil is free).
	readLat  *metrics.Histogram
	writeLat *metrics.Histogram
}

// Degrade multiplies all subsequent service times by factor (>= 1).
// It models a failing or throttled device for straggler studies.
func (s *SSD) Degrade(factor float64) {
	if factor < 1 {
		panic("cluster: SSD degradation factor < 1")
	}
	s.degrade = factor
}

// DegradeFactor returns the current service-time multiplier (1 = healthy).
func (s *SSD) DegradeFactor() float64 {
	if s.degrade < 1 {
		return 1
	}
	return s.degrade
}

// Fail makes every subsequent operation return an error wrapping
// faults.ErrDeviceFailed until Repair is called.
func (s *SSD) Fail() { s.failed = true }

// Repair returns a failed device to service.
func (s *SSD) Repair() { s.failed = false }

// Failed reports whether the device is currently failed.
func (s *SSD) Failed() bool { return s.failed }

// fail charges the caller the device's fixed latency (the time a request
// takes to come back with EIO) and returns the wrapped sentinel.
func (s *SSD) fail(p *sim.Proc, op string, lat time.Duration) error {
	s.FailedOps++
	p.Sleep(lat)
	p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "ssd", Name: "io_error",
		Class: trace.ClassRecovery, Start: p.Now() - lat, Dur: lat, Attr: s.dev.Name()})
	return fmt.Errorf("cluster: %s %s: %w", s.dev.Name(), op, faults.ErrDeviceFailed)
}

// Read charges the device for an n-byte read and returns time spent. A
// failed device returns an error wrapping faults.ErrDeviceFailed instead.
func (s *SSD) Read(p *sim.Proc, n int64) (time.Duration, error) {
	if n < 0 {
		panic("cluster: negative read size")
	}
	if s.failed {
		return 0, s.fail(p, "read", s.spec.ReadLatency)
	}
	s.Reads++
	s.BytesRead += n
	service := s.scale(s.spec.ReadLatency + bwTime(n, s.spec.ReadBandwidth))
	elapsed := s.dev.Use(p, service)
	s.readLat.Observe(elapsed)
	p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "ssd", Name: "read",
		Start: p.Now() - elapsed, Dur: elapsed, Bytes: n, Attr: s.dev.Name()})
	return elapsed, nil
}

// Write charges the device for an n-byte write and returns time spent. A
// failed device returns an error wrapping faults.ErrDeviceFailed instead.
func (s *SSD) Write(p *sim.Proc, n int64) (time.Duration, error) {
	if n < 0 {
		panic("cluster: negative write size")
	}
	if s.failed {
		return 0, s.fail(p, "write", s.spec.WriteLatency)
	}
	s.Writes++
	s.BytesWritten += n
	service := s.scale(s.spec.WriteLatency + bwTime(n, s.spec.WriteBandwidth))
	elapsed := s.dev.Use(p, service)
	s.writeLat.Observe(elapsed)
	p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "ssd", Name: "write",
		Start: p.Now() - elapsed, Dur: elapsed, Bytes: n, Attr: s.dev.Name()})
	return elapsed, nil
}

// Device exposes the underlying queued resource (for utilization stats).
func (s *SSD) Device() *sim.Resource { return s.dev }

func (s *SSD) scale(d time.Duration) time.Duration {
	if s.degrade > 1 {
		return time.Duration(float64(d) * s.degrade)
	}
	return d
}

// Node is one compute node: an SSD and a NIC.
type Node struct {
	ID  int
	SSD *SSD
	nic *sim.Resource

	// nicDegrade multiplies this NIC's wire service times (fault
	// injection; values <= 1 mean healthy).
	nicDegrade float64
	// linkDownUntil stalls transfers touching this node until the given
	// virtual time (fault injection; zero means the link is up).
	linkDownUntil sim.Time
	// stallTime accumulates this node's share of link-outage waits (the
	// per-node split of Cluster.LinkStallTime).
	stallTime time.Duration

	cl *Cluster
}

// DegradeNIC multiplies all subsequent wire service time at this node's
// NIC by factor (>= 1), modelling a flaky link or misbehaving HCA.
func (n *Node) DegradeNIC(factor float64) {
	if factor < 1 {
		panic("cluster: NIC degradation factor < 1")
	}
	n.nicDegrade = factor
}

// NICDegradeFactor returns the current wire-time multiplier (1 = healthy).
func (n *Node) NICDegradeFactor() float64 {
	if n.nicDegrade < 1 {
		return 1
	}
	return n.nicDegrade
}

// FailLinkUntil takes the node's link down until the given virtual time.
// Transfers touching the node during the outage stall until it ends — the
// InfiniBand-style retransmission view: the fabric hides the loss from the
// application, which only sees the lost time (recorded in LinkStalls /
// LinkStallTime on the cluster).
func (n *Node) FailLinkUntil(t sim.Time) {
	if t > n.linkDownUntil {
		n.linkDownUntil = t
	}
}

// LinkDown reports whether the node's link is down at the current time.
func (n *Node) LinkDown() bool { return n.cl.e.Now() < n.linkDownUntil }

// awaitLink stalls p until the node's link is back up, charging the wait to
// the cluster's recovery accounting. Healthy links cost one comparison.
func (n *Node) awaitLink(p *sim.Proc) {
	if n.linkDownUntil == 0 {
		return
	}
	if wait := n.linkDownUntil - p.Now(); wait > 0 {
		n.cl.LinkStalls++
		n.cl.LinkStallTime += wait
		n.stallTime += wait
		p.Sleep(wait)
		if rec := p.Rec(); rec != nil {
			rec.Emit(trace.Span{Proc: p.Name(), Component: "net", Name: "link_stall",
				Class: trace.ClassRecovery, Start: p.Now() - wait, Dur: wait, Attr: n.Name()})
		}
	}
}

func (n *Node) nicScale(d time.Duration) time.Duration {
	if n.nicDegrade > 1 {
		return time.Duration(float64(d) * n.nicDegrade)
	}
	return d
}

// Name returns a stable display name.
func (n *Node) Name() string { return fmt.Sprintf("node%d", n.ID) }

// NIC exposes the node's NIC resource.
func (n *Node) NIC() *sim.Resource { return n.nic }

// Cluster is a set of nodes joined by a fabric.
type Cluster struct {
	Spec  Spec
	nodes []*Node
	e     *sim.Engine

	BytesOnWire int64
	Transfers   int64

	// LinkStalls / LinkStallTime account transfers that had to wait out a
	// link outage (fault injection; both zero on healthy fabrics).
	LinkStalls    int64
	LinkStallTime time.Duration
}

// New builds a cluster on the given engine.
func New(e *sim.Engine, spec Spec) *Cluster {
	if spec.Nodes < 1 {
		panic("cluster: need at least one node")
	}
	if spec.SSD.Channels < 1 {
		spec.SSD.Channels = 1
	}
	c := &Cluster{Spec: spec, e: e}
	c.nodes = make([]*Node, 0, spec.Nodes)
	for i := 0; i < spec.Nodes; i++ {
		n := &Node{
			ID: i,
			SSD: &SSD{
				spec: spec.SSD,
				dev:  sim.NewResource(e, fmt.Sprintf("node%d/ssd", i), spec.SSD.Channels),
			},
			nic: sim.NewResource(e, fmt.Sprintf("node%d/nic", i), 1),
			cl:  c,
		}
		if spec.QueueHint > 0 {
			n.SSD.dev.SetQueueHint(spec.QueueHint)
			n.nic.SetQueueHint(spec.QueueHint)
		}
		c.nodes = append(c.nodes, n)
	}
	return c
}

// Engine returns the simulation engine the cluster runs on.
func (c *Cluster) Engine() *sim.Engine { return c.e }

// Reset returns the cluster to its just-built state: traffic counters,
// fault-injection state (degradation factors, link outages, failed
// devices), and every device resource are cleared, while the node and
// resource structures — including their queue backing arrays — are kept.
// The pooled-reuse contract (DESIGN.md §3h): a reset cluster on a reset
// engine is observationally identical to cluster.New with the same spec.
// Call only between runs, after the engine itself has been reset.
func (c *Cluster) Reset() {
	c.BytesOnWire = 0
	c.Transfers = 0
	c.LinkStalls = 0
	c.LinkStallTime = 0
	for _, n := range c.nodes {
		n.nicDegrade = 0
		n.linkDownUntil = 0
		n.stallTime = 0
		n.nic.Reset()
		s := n.SSD
		s.degrade = 0
		s.failed = false
		s.BytesRead = 0
		s.BytesWritten = 0
		s.Reads = 0
		s.Writes = 0
		s.FailedOps = 0
		s.readLat = nil
		s.writeLat = nil
		s.dev.Reset()
	}
}

// Node returns node i.
func (c *Cluster) Node(i int) *Node {
	if i < 0 || i >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", i, len(c.nodes)))
	}
	return c.nodes[i]
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Transfer moves n bytes from src to dst over the fabric, charging both
// endpoints' NICs (FIFO) and the hop latency. Same-node transfers cost a
// memcpy-like fraction of NIC time with no hop latency. It returns the
// total elapsed time.
func (c *Cluster) Transfer(p *sim.Proc, src, dst *Node, n int64) time.Duration {
	if n < 0 {
		panic("cluster: negative transfer size")
	}
	start := p.Now()
	c.Transfers++
	// Detail class: the critical-path blame inherits whatever workflow
	// region the transfer runs inside (movement for data, idle for sync).
	p.CritBegin("net", "transfer", trace.ClassDetail)
	defer p.CritEnd()
	if src == dst {
		// Loopback: no wire, just a cheap copy at memory speed.
		p.Sleep(bwTime(n, 8*c.Spec.NIC.Bandwidth))
		p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "net", Name: "transfer",
			Start: start, Dur: p.Now() - start, Bytes: n, Attr: "loopback"})
		return p.Now() - start
	}
	c.BytesOnWire += n
	// A link outage at either endpoint stalls the transfer until the link
	// returns: the fabric retransmits below the application, which sees
	// only the lost time.
	src.awaitLink(p)
	dst.awaitLink(p)
	wireStart := p.Now()
	// The sender serializes the message onto the wire in segments (the
	// fabric is packet-switched: a small control message never waits for a
	// whole multi-megabyte transfer ahead of it, only for the segment in
	// flight), the message crosses the fabric, and the receiver's NIC
	// completion posts in FIFO order. Acquiring the two NICs sequentially
	// (never holding both) keeps the model deadlock-free while still
	// producing incast and fan-out contention at shared endpoints.
	rest := n
	first := true
	for rest > 0 || first {
		seg := rest
		if seg > wireSegment {
			seg = wireSegment
		}
		wire := bwTime(seg, c.Spec.NIC.Bandwidth)
		if first {
			wire += c.Spec.NIC.Overhead
			first = false
		}
		src.nic.Use(p, src.nicScale(wire))
		rest -= seg
	}
	p.Sleep(c.Spec.Fabric.HopLatency)
	dst.nic.Use(p, 0) // receive completion posts in FIFO order behind local sends
	// The transfer span covers the wire time only; link-outage stalls are
	// separate recovery spans emitted by awaitLink.
	p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "net", Name: "transfer",
		Start: wireStart, Dur: p.Now() - wireStart, Bytes: n})
	return p.Now() - start
}

// wireSegment is the interleaving granularity of the fabric model.
const wireSegment = 256 << 10

// RPC models a small request/response exchange between nodes: one message
// each way plus the remote service time, which is executed while holding
// the given service resource (if non-nil).
func (c *Cluster) RPC(p *sim.Proc, src, dst *Node, reqBytes, respBytes int64, server *sim.Resource, service time.Duration) time.Duration {
	start := p.Now()
	p.CritBegin("net", "rpc", trace.ClassDetail)
	defer p.CritEnd()
	c.Transfer(p, src, dst, reqBytes)
	svcStart := p.Now()
	if server != nil {
		server.Use(p, service)
	} else {
		p.Sleep(service)
	}
	if rec := p.Rec(); rec != nil {
		attr := ""
		if server != nil {
			attr = server.Name()
		}
		rec.Emit(trace.Span{Proc: p.Name(), Component: "net", Name: "rpc_service",
			Start: svcStart, Dur: p.Now() - svcStart, Attr: attr})
	}
	c.Transfer(p, dst, src, respBytes)
	return p.Now() - start
}

// bwTime converts size at a bandwidth into a duration.
func bwTime(n int64, bytesPerSec float64) time.Duration {
	if bytesPerSec <= 0 {
		panic("cluster: nonpositive bandwidth")
	}
	return time.Duration(float64(n) / bytesPerSec * float64(time.Second))
}
