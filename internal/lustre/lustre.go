// Package lustre models a Lustre-like parallel filesystem: a metadata
// server (MDS), a set of object storage targets (OSTs) holding striped file
// data, and per-node clients that translate POSIX calls into RPCs over the
// cluster fabric.
//
// The model captures the costs that dominate the paper's Lustre results:
// every metadata operation is a queued MDS round trip, every byte crosses
// the network to a shared server, small files cannot exploit striping
// parallelism, and many concurrent clients contend at the MDS and OSTs
// (plus optional background "other jobs" interference).
package lustre

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Params is the Lustre cost model.
type Params struct {
	StripeSize  int64 // bytes per stripe chunk (Lustre default: 1 MiB)
	StripeCount int   // OSTs a file is striped over (Lustre default: 1)

	MDSService time.Duration // MDS time per metadata op
	OSTService time.Duration // OST per-RPC overhead (request processing)

	// PerFileWriteOverhead / PerFileReadOverhead model the per-file OST
	// costs that dominate small-file I/O on Lustre (object layout
	// instantiation, extent-lock acquisition, grant negotiation); charged
	// once per file on the first chunk's OST.
	PerFileWriteOverhead time.Duration
	PerFileReadOverhead  time.Duration

	OSTWriteBandwidth float64 // bytes/s of one OST's backing storage
	OSTReadBandwidth  float64

	// Background interference ("other jobs" on a shared center-wide
	// filesystem). When BackgroundLoad > 0, StartNoise spawns per-OST noise
	// processes that keep roughly that fraction of each OST busy.
	BackgroundLoad float64

	// RPCTimeout is the client's deadline on an RPC to a down MDS/OSS;
	// Lustre clients see no reply and resend. Zero defaults to 200ms.
	RPCTimeout time.Duration
	// Retry is the capped-exponential backoff between resends; exhausted
	// retries trigger failover. A zero policy defaults to
	// {Base: 25ms, Cap: 400ms, Max: 4}.
	Retry faults.Backoff
	// FailoverDelay is the one-time cost of switching to the standby
	// MDS/OSS (import re-establishment, lock recovery). Zero defaults
	// to 800ms.
	FailoverDelay time.Duration
}

// DefaultParams returns a model of a mid-size production Lustre system as
// seen from one job: fast in aggregate, but with per-stream costs far above
// node-local NVMe.
func DefaultParams() Params {
	return Params{
		StripeSize:           1 << 20,
		StripeCount:          1,
		MDSService:           220 * time.Microsecond,
		OSTService:           1400 * time.Microsecond,
		PerFileWriteOverhead: 1800 * time.Microsecond,
		PerFileReadOverhead:  2400 * time.Microsecond,
		OSTWriteBandwidth:    1.15e9,
		OSTReadBandwidth:     1.3e9,
		BackgroundLoad:       0.12,
		RPCTimeout:           200 * time.Millisecond,
		Retry:                faults.Backoff{Base: 25 * time.Millisecond, Cap: 400 * time.Millisecond, Max: 4},
		FailoverDelay:        800 * time.Millisecond,
	}
}

// ost is one object storage target: a service queue on a server node.
type ost struct {
	node *cluster.Node
	srv  *sim.Resource

	// bytes accumulates payload moved through this OST (request + response),
	// for the sampled per-OST bandwidth and imbalance series.
	bytes int64

	// downUntil marks the serving OSS down until the given virtual time
	// (fault injection); failedOver means clients have switched to the
	// standby OSS, which serves at normal cost for the rest of the run.
	downUntil  sim.Time
	failedOver bool
}

// FS is the Lustre filesystem instance (servers + file table).
type FS struct {
	cl      *cluster.Cluster
	params  Params
	mdsNode *cluster.Node
	mds     *sim.Resource
	osts    []*ost
	tree    *vfs.Tree
	layout  map[string]int // path -> index of first OST
	nextOST int

	noiseStop bool

	// MDS outage state, mirroring the per-OST fields.
	mdsDownUntil  sim.Time
	mdsFailedOver bool

	MDSOps int64
	OSTOps int64

	// mdsLat/ostLat are sampled RPC latency histograms (nil when no metrics
	// registry is attached — Observe on nil is free).
	mdsLat *metrics.Histogram
	ostLat *metrics.Histogram

	// Recovery accumulates the run's fault-recovery activity (timeouts,
	// resends, failovers); all zero on healthy runs.
	Recovery faults.Metrics
}

// New builds a Lustre instance with its MDS on mdsNode and one OST on each
// of ostNodes. Server nodes should be distinct from compute nodes, as in a
// real center.
func New(cl *cluster.Cluster, mdsNode *cluster.Node, ostNodes []*cluster.Node, params Params) *FS {
	if len(ostNodes) == 0 {
		panic("lustre: need at least one OST")
	}
	if params.StripeSize <= 0 {
		panic("lustre: stripe size must be positive")
	}
	if params.StripeCount < 1 {
		params.StripeCount = 1
	}
	if params.StripeCount > len(ostNodes) {
		params.StripeCount = len(ostNodes)
	}
	// Recovery knobs only matter when a server is actually down, so
	// defaulting them here cannot change healthy-run timelines.
	if params.RPCTimeout <= 0 {
		params.RPCTimeout = 200 * time.Millisecond
	}
	if params.Retry == (faults.Backoff{}) {
		params.Retry = faults.Backoff{Base: 25 * time.Millisecond, Cap: 400 * time.Millisecond, Max: 4}
	}
	if params.FailoverDelay <= 0 {
		params.FailoverDelay = 800 * time.Millisecond
	}
	f := &FS{
		cl:      cl,
		params:  params,
		mdsNode: mdsNode,
		mds:     sim.NewResource(cl.Engine(), mdsNode.Name()+"/mds", 1),
		tree:    vfs.NewTree(),
		layout:  make(map[string]int),
	}
	for i, n := range ostNodes {
		f.osts = append(f.osts, &ost{
			node: n,
			srv:  sim.NewResource(cl.Engine(), fmt.Sprintf("%s/ost%d", n.Name(), i), 1),
		})
	}
	return f
}

// Params returns the active cost model.
func (f *FS) Params() Params { return f.params }

// Tree exposes the file table (for invariant checks in tests).
func (f *FS) Tree() *vfs.Tree { return f.tree }

// OSTs returns the number of object storage targets.
func (f *FS) OSTs() int { return len(f.osts) }

// MDSQueue exposes the MDS service queue.
func (f *FS) MDSQueue() *sim.Resource { return f.mds }

// StartNoise spawns background-interference processes, one per OST, that
// keep ~BackgroundLoad of each OST busy with bursty foreign I/O. Call once
// per engine before Run if interference is wanted.
func (f *FS) StartNoise() {
	if f.params.BackgroundLoad <= 0 {
		return
	}
	for i, o := range f.osts {
		o := o
		f.cl.Engine().Spawn(fmt.Sprintf("lustre-noise-%d", i), func(p *sim.Proc) {
			// Busy bursts of mean 2 ms separated by idle gaps sized to hit
			// the target utilization. Call StopNoise when the measured
			// workload has drained so the engine can finish.
			// Background for the critical-path extractor: the run is over
			// when the workflow finishes, not when noise winds down.
			p.CritBackground()
			p.CritBegin("lustre", "background_noise", trace.ClassDetail)
			burst := 2 * time.Millisecond
			gap := time.Duration(float64(burst) * (1 - f.params.BackgroundLoad) / f.params.BackgroundLoad)
			for n := 0; n < 1_000_000; n++ {
				p.Sleep(p.Rand().Exp(gap))
				o.srv.Use(p, p.Rand().Exp(burst))
				if f.noiseStop {
					return
				}
			}
		})
	}
}

// StopNoise asks noise processes to exit at their next wakeup.
func (f *FS) StopNoise() { f.noiseStop = true }

// FailOST takes OST i's serving OSS down for d of virtual time. Clients
// whose RPCs hit the outage time out, resend under backoff, and eventually
// fail over to the standby OSS.
func (f *FS) FailOST(i int, d time.Duration) {
	o := f.osts[i%len(f.osts)]
	if until := f.cl.Engine().Now() + d; until > o.downUntil {
		o.downUntil = until
	}
}

// FailMDS takes the metadata server down for d of virtual time.
func (f *FS) FailMDS(d time.Duration) {
	if until := f.cl.Engine().Now() + d; until > f.mdsDownUntil {
		f.mdsDownUntil = until
	}
}

// await applies the Lustre client recovery policy for a server that may be
// down: an RPC sent to it gets no reply within RPCTimeout and is resent
// under the Retry backoff; exhausted resends trigger failover to the standby
// (FailoverDelay once, then normal service for the rest of the run). When
// the server is up — the only case on healthy runs — this is two compares.
func (f *FS) await(p *sim.Proc, downUntil *sim.Time, failedOver *bool) {
	if *failedOver || p.Now() >= *downUntil {
		return
	}
	for attempt := 0; ; attempt++ {
		f.Recovery.Timeouts++
		f.Recovery.RecoveryTime += f.params.RPCTimeout
		p.Sleep(f.params.RPCTimeout)
		p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "lustre", Name: "rpc_timeout",
			Class: trace.ClassRecovery, Start: p.Now() - f.params.RPCTimeout, Dur: f.params.RPCTimeout})
		if attempt >= f.params.Retry.Max {
			break
		}
		f.Recovery.Retries++
		delay := f.params.Retry.Delay(attempt)
		f.Recovery.RecoveryTime += delay
		p.Sleep(delay)
		p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "lustre", Name: "rpc_backoff",
			Class: trace.ClassRecovery, Start: p.Now() - delay, Dur: delay})
		if p.Now() >= *downUntil {
			// The server came back during backoff; the resend succeeds.
			return
		}
	}
	*failedOver = true
	f.Recovery.Failovers++
	f.Recovery.RecoveryTime += f.params.FailoverDelay
	p.Sleep(f.params.FailoverDelay)
	p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "lustre", Name: "failover",
		Class: trace.ClassRecovery, Start: p.Now() - f.params.FailoverDelay, Dur: f.params.FailoverDelay})
}

// mdsRPC charges one metadata round trip from the client node, waiting out
// an MDS outage first.
func (f *FS) mdsRPC(p *sim.Proc, from *cluster.Node) {
	f.await(p, &f.mdsDownUntil, &f.mdsFailedOver)
	f.MDSOps++
	start := p.Now()
	f.cl.RPC(p, from, f.mdsNode, 256, 128, f.mds, f.params.MDSService)
	f.mdsLat.Observe(p.Now() - start)
	p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "lustre", Name: "mds_rpc",
		Start: start, Dur: p.Now() - start})
}

// ostRPC charges one OST round trip, waiting out an OSS outage first.
func (f *FS) ostRPC(p *sim.Proc, from *cluster.Node, o *ost, reqBytes, respBytes int64, service time.Duration) {
	f.await(p, &o.downUntil, &o.failedOver)
	f.OSTOps++
	o.bytes += reqBytes + respBytes
	start := p.Now()
	f.cl.RPC(p, from, o.node, reqBytes, respBytes, o.srv, service)
	f.ostLat.Observe(p.Now() - start)
	p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "lustre", Name: "ost_rpc",
		Start: start, Dur: p.Now() - start, Bytes: reqBytes + respBytes, Attr: o.srv.Name()})
}

// ostFor returns the OST index for chunk k of a file whose layout starts
// at first.
func (f *FS) ostFor(first, k int) *ost {
	return f.osts[(first+k)%len(f.osts)]
}

// chunks splits n bytes into stripe-size pieces.
func (f *FS) chunks(n int64) []int64 {
	if n == 0 {
		return []int64{0}
	}
	var out []int64
	for n > 0 {
		c := f.params.StripeSize
		if n < c {
			c = n
		}
		out = append(out, c)
		n -= c
	}
	return out
}

// writeChunks pushes data chunks to the file's OSTs in order (RPC pipeline
// depth 1, as a single POSIX writer sees). The first chunk carries the
// per-file object setup overhead.
func (f *FS) writeChunks(p *sim.Proc, from *cluster.Node, first int, n int64) {
	for k, c := range f.chunks(n) {
		o := f.ostFor(first, k%f.params.StripeCount)
		service := f.params.OSTService + bwTime(c, f.params.OSTWriteBandwidth)
		if k == 0 {
			service += f.params.PerFileWriteOverhead
		}
		f.ostRPC(p, from, o, c, 64, service)
	}
}

// readChunks pulls data chunks from the file's OSTs in order.
func (f *FS) readChunks(p *sim.Proc, from *cluster.Node, first int, n int64) {
	for k, c := range f.chunks(n) {
		o := f.ostFor(first, k%f.params.StripeCount)
		service := f.params.OSTService + bwTime(c, f.params.OSTReadBandwidth)
		if k == 0 {
			service += f.params.PerFileReadOverhead
		}
		f.ostRPC(p, from, o, 256, c, service)
	}
}

func bwTime(n int64, bw float64) time.Duration {
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// Client returns a vfs.FS view of the filesystem for processes on node.
func (f *FS) Client(node *cluster.Node) *Client {
	return &Client{fs: f, node: node}
}

// Client is a per-node Lustre mount.
type Client struct {
	fs   *FS
	node *cluster.Node
}

// Name implements vfs.FS.
func (c *Client) Name() string { return "lustre" }

// Node returns the client's node.
func (c *Client) Node() *cluster.Node { return c.node }

// WriteFile implements vfs.FS: MDS create + striped OST writes + MDS close.
// The payload is stored by reference, never copied.
func (c *Client) WriteFile(p *sim.Proc, path string, pl vfs.Payload) error {
	f := c.fs
	path = vfs.Clean(path)
	wStart := p.Now()
	p.CritBegin("lustre", "write", trace.ClassDetail)
	defer p.CritEnd()
	f.mdsRPC(p, c.node) // open/create with layout allocation
	first, ok := f.layout[path]
	if !ok {
		first = f.nextOST
		f.nextOST = (f.nextOST + 1) % len(f.osts)
		f.layout[path] = first
	}
	f.writeChunks(p, c.node, first, pl.Size())
	f.mdsRPC(p, c.node) // close: size/attr update at the MDS
	f.tree.Put(path, pl)
	p.CritProduce(path, pl.Size())
	p.CritHop(path, "write", wStart, pl.Size())
	return nil
}

// ReadFile implements vfs.FS: MDS lookup + striped OST reads.
func (c *Client) ReadFile(p *sim.Proc, path string) (vfs.Payload, error) {
	f := c.fs
	path = vfs.Clean(path)
	rStart := p.Now()
	p.CritBegin("lustre", "read", trace.ClassDetail)
	defer p.CritEnd()
	f.mdsRPC(p, c.node)
	pl, ok := f.tree.Get(path)
	if !ok {
		return vfs.Payload{}, vfs.PathError("read", path, vfs.ErrNotExist)
	}
	f.readChunks(p, c.node, f.layout[path], pl.Size())
	p.CritDepend(path, "read")
	p.CritHop(path, "read", rStart, pl.Size())
	return pl, nil
}

// Stat implements vfs.FS: one MDS round trip.
func (c *Client) Stat(p *sim.Proc, path string) (vfs.FileInfo, error) {
	f := c.fs
	path = vfs.Clean(path)
	f.mdsRPC(p, c.node)
	sz, ok := f.tree.Size(path)
	if !ok {
		return vfs.FileInfo{}, vfs.PathError("stat", path, vfs.ErrNotExist)
	}
	return vfs.FileInfo{Path: path, Size: sz}, nil
}

// Unlink implements vfs.FS: MDS unlink + object destroy on the first OST.
func (c *Client) Unlink(p *sim.Proc, path string) error {
	f := c.fs
	path = vfs.Clean(path)
	f.mdsRPC(p, c.node)
	first, had := f.layout[path]
	if !f.tree.Remove(path) {
		return vfs.PathError("unlink", path, vfs.ErrNotExist)
	}
	if had {
		f.ostRPC(p, c.node, f.osts[first], 256, 64, f.params.OSTService/4)
		delete(f.layout, path)
	}
	return nil
}

var _ vfs.FS = (*Client)(nil)
