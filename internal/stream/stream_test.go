package stream

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestProduceThenConsume(t *testing.T) {
	s := NewStore()
	s.Produce("/f0", []byte("data"))
	got, err := s.Consume(context.Background(), "/f0")
	if err != nil || !bytes.Equal(got, []byte("data")) {
		t.Fatalf("consume = %q, %v", got, err)
	}
	p, c := s.Stats()
	if p != 1 || c != 1 {
		t.Fatalf("stats %d/%d", p, c)
	}
}

func TestConsumeBlocksUntilProduce(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	var err error
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		got, err = s.Consume(context.Background(), "/late")
	}()
	<-started
	time.Sleep(10 * time.Millisecond)
	s.Produce("/late", []byte("finally"))
	wg.Wait()
	if err != nil || string(got) != "finally" {
		t.Fatalf("consume = %q, %v", got, err)
	}
}

func TestConsumeContextCancel(t *testing.T) {
	s := NewStore()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Consume(ctx, "/never"); err == nil {
		t.Fatal("consume of never-produced path returned without error")
	}
}

func TestManyConcurrentPairs(t *testing.T) {
	s := NewStore()
	const pairs, frames = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, pairs)
	for p := 0; p < pairs; p++ {
		p := p
		wg.Add(2)
		go func() { // producer
			defer wg.Done()
			for f := 0; f < frames; f++ {
				s.Produce(fmt.Sprintf("/p%d/f%d", p, f), []byte{byte(p), byte(f)})
			}
		}()
		go func() { // consumer
			defer wg.Done()
			for f := 0; f < frames; f++ {
				got, err := s.Consume(context.Background(), fmt.Sprintf("/p%d/f%d", p, f))
				if err != nil || got[0] != byte(p) || got[1] != byte(f) {
					errs <- fmt.Errorf("pair %d frame %d: %v %v", p, f, got, err)
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	for p := 0; p < pairs; p++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	produced, consumed := s.Stats()
	if produced != pairs*frames || consumed != pairs*frames {
		t.Fatalf("stats %d/%d, want %d each", produced, consumed, pairs*frames)
	}
}

func TestTryConsumeAndDiscard(t *testing.T) {
	s := NewStore()
	if _, ok := s.TryConsume("/x"); ok {
		t.Fatal("TryConsume hit on empty store")
	}
	s.Produce("/x", []byte("v"))
	if got, ok := s.TryConsume("/x"); !ok || string(got) != "v" {
		t.Fatalf("TryConsume = %q, %v", got, ok)
	}
	s.Discard("/x")
	if s.Len() != 0 {
		t.Fatalf("len %d after discard", s.Len())
	}
}

func TestReplaceKeepsConsumersUnblocked(t *testing.T) {
	s := NewStore()
	s.Produce("/x", []byte("v1"))
	s.Produce("/x", []byte("v2"))
	got, err := s.Consume(context.Background(), "/x")
	if err != nil || string(got) != "v2" {
		t.Fatalf("consume = %q, %v", got, err)
	}
}
