package analytics_test

import (
	"fmt"

	"repro/internal/analytics"
)

// ExampleChangeDetector shows online detection of a conformational event
// in a streamed scalar series.
func ExampleChangeDetector() {
	detector := &analytics.ChangeDetector{Threshold: 4, MinSample: 6}
	series := []float64{5.0, 5.1, 4.9, 5.05, 4.95, 5.02, 4.98, 5.01, 9.5}
	for i, v := range series {
		if detector.Observe(v) {
			fmt.Printf("sudden change at index %d (value %.1f)\n", i, v)
		}
	}
	// Output:
	// sudden change at index 8 (value 9.5)
}
