// Insitu runs a real, wall-clock in situ analytics pipeline — the workflow
// of the paper's Figure 1 — entirely in process:
//
//	mini MD engine (Lennard-Jones, velocity Verlet)
//	  -> frames serialized every stride
//	  -> DYAD-lite staged store with automatic producer/consumer sync
//	  -> in situ analytics: per-region gyration-tensor eigenvalues,
//	     radius of gyration, RMSD to the first frame, and an online
//	     sudden-change detector.
//
// Midway through the run the producer heats the system sharply, and the
// consumer's change detector flags the conformational event as it streams.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/analytics"
	"repro/internal/frame"
	"repro/internal/md"
	"repro/internal/stream"
)

const (
	atoms   = 343 // 7^3 lattice
	strideN = 20  // MD steps per frame
	frames  = 30
	heatAt  = 20 // frame index where the producer heats the system
)

func main() {
	store := stream.NewStore()
	done := make(chan error, 1)

	// Producer: real MD, publishing a frame every strideN steps.
	go func() {
		sys := md.NewLattice(atoms, 0.75, 0.8, 42)
		for f := 0; f < frames; f++ {
			for s := 0; s < strideN; s++ {
				sys.Step()
				sys.Berendsen(temperatureSchedule(f), 20)
			}
			store.Produce(framePath(f), sys.Frame("LJ343").Encode())
		}
		done <- nil
	}()

	// Consumer: in situ analytics as frames arrive.
	var ref *frame.Frame
	// Two "secondary structure" regions, as in the paper's helix example.
	regionA := rangeInts(0, atoms/2)
	regionB := rangeInts(atoms/2, atoms)
	detector := &analytics.ChangeDetector{Threshold: 3.5, MinSample: 8}

	fmt.Printf("%-6s %-10s %-12s %-12s %-10s %s\n", "frame", "Rg", "eigA", "eigB", "RMSD", "event")
	for f := 0; f < frames; f++ {
		payload, err := store.Consume(context.Background(), framePath(f))
		if err != nil {
			log.Fatal(err)
		}
		fr, err := frame.Decode(payload)
		if err != nil {
			log.Fatal(err)
		}
		if ref == nil {
			ref = fr
		}
		rg := analytics.RadiusOfGyration(fr)
		eigA := analytics.LargestEigenvalue(fr, regionA)
		eigB := analytics.LargestEigenvalue(fr, regionB)
		rmsd, err := analytics.RMSD(ref, fr)
		if err != nil {
			log.Fatal(err)
		}
		event := ""
		if detector.Observe(eigA) {
			event = fmt.Sprintf("SUDDEN CHANGE (z=%.1f)", detector.ZScore())
		}
		fmt.Printf("%-6d %-10.4f %-12.4f %-12.4f %-10.4f %s\n", f, rg, eigA, eigB, rmsd, event)
		store.Discard(framePath(f))
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	produced, consumed := store.Stats()
	fmt.Printf("\npipeline complete: %d frames produced, %d consumed, %d staged\n",
		produced, consumed, store.Len())
}

// temperatureSchedule heats the system sharply at frame heatAt to create
// the conformational event the analytics should detect.
func temperatureSchedule(f int) float64 {
	if f >= heatAt {
		return 4.0
	}
	return 0.8
}

func framePath(f int) string { return fmt.Sprintf("/lj/frame%04d.pb", f) }

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}
