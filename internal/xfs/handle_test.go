package xfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/vfs"
)

func TestHandleRangeIO(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFS(e)
	e.Spawn("io", func(p *sim.Proc) {
		h, err := f.CreateFile(p, "/h")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := h.Append(p, []byte("hello ")); err != nil {
			t.Errorf("append: %v", err)
		}
		if err := h.Append(p, []byte("world")); err != nil {
			t.Errorf("append: %v", err)
		}
		if h.Size() != 11 {
			t.Errorf("size %d", h.Size())
		}
		got, err := h.ReadAt(p, 6, 5)
		if err != nil || string(got) != "world" {
			t.Errorf("ReadAt = %q, %v", got, err)
		}
		if err := h.WriteAt(p, 0, []byte("HELLO")); err != nil {
			t.Errorf("WriteAt: %v", err)
		}
		got, _ = h.ReadAt(p, 0, 11)
		if string(got) != "HELLO world" {
			t.Errorf("after WriteAt: %q", got)
		}
		if err := h.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := h.Close(p); err == nil {
			t.Error("double close accepted")
		}
		if _, err := h.ReadAt(p, 0, 1); err == nil {
			t.Error("read after close accepted")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHandleErrors(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFS(e)
	e.Spawn("io", func(p *sim.Proc) {
		if _, err := f.Open(p, "/missing"); err == nil {
			t.Error("open missing accepted")
		}
		h, _ := f.CreateFile(p, "/h")
		_ = h.Append(p, []byte("abc"))
		if _, err := h.ReadAt(p, 2, 5); err == nil {
			t.Error("read past EOF accepted")
		}
		if err := h.WriteAt(p, 10, []byte("x")); err == nil {
			t.Error("hole-creating write accepted")
		}
		if _, err := h.ReadAt(p, -1, 1); err == nil {
			t.Error("negative offset accepted")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHandleVisibleToWholeFileAPI(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFS(e)
	e.Spawn("io", func(p *sim.Proc) {
		h, _ := f.CreateFile(p, "/mixed")
		_ = h.Append(p, []byte("via-handle"))
		_ = h.Close(p)
		got, err := f.ReadFile(p, "/mixed")
		if err != nil || string(got.Bytes()) != "via-handle" {
			t.Errorf("whole-file read = %q, %v", got.Bytes(), err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: a sequence of random appends then ReadAt(0, size) equals the
// concatenation.
func TestHandleAppendProperty(t *testing.T) {
	fn := func(blobs [][]byte) bool {
		e := sim.NewEngine(1)
		f := newTestFS(e)
		ok := true
		e.Spawn("io", func(p *sim.Proc) {
			h, err := f.CreateFile(p, "/prop")
			if err != nil {
				ok = false
				return
			}
			var want []byte
			for _, b := range blobs {
				if err := h.Append(p, b); err != nil {
					ok = false
					return
				}
				want = append(want, b...)
			}
			got, err := h.ReadAt(p, 0, int64(len(want)))
			ok = err == nil && bytes.Equal(got, want)
		})
		return e.Run() == nil && ok
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSplicePayload(t *testing.T) {
	got := vfs.SplicePayload(vfs.BytesPayload([]byte("abcdef")), 2, vfs.BytesPayload([]byte("XY")))
	if string(got.Bytes()) != "abXYef" {
		t.Fatalf("splice mid = %q", got.Bytes())
	}
	got = vfs.SplicePayload(vfs.BytesPayload([]byte("abc")), 3, vfs.BytesPayload([]byte("def")))
	if string(got.Bytes()) != "abcdef" {
		t.Fatalf("splice extend = %q", got.Bytes())
	}
	got = vfs.SplicePayload(vfs.Payload{}, 0, vfs.BytesPayload([]byte("x")))
	if string(got.Bytes()) != "x" {
		t.Fatalf("splice empty = %q", got.Bytes())
	}
	// Original must be untouched (copy-on-write).
	orig := []byte("abcdef")
	_ = vfs.SplicePayload(vfs.BytesPayload(orig), 0, vfs.BytesPayload([]byte("ZZZZZZ")))
	if string(orig) != "abcdef" {
		t.Fatal("SplicePayload mutated its input")
	}
	// A size-only side degrades the result to size-only of the right size.
	got = vfs.SplicePayload(vfs.SizeOnly(10), 8, vfs.BytesPayload([]byte("abcd")))
	if got.HasBytes() || got.Size() != 12 {
		t.Fatalf("size-only splice = hasBytes=%v size=%d", got.HasBytes(), got.Size())
	}
}

func TestHandleSizeOnlyRangeRead(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFS(e)
	e.Spawn("io", func(p *sim.Proc) {
		_ = f.WriteFile(p, "/so", vfs.SizeOnly(64))
		h, err := f.Open(p, "/so")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if _, err := h.ReadAt(p, 0, 8); !errors.Is(err, vfs.ErrSizeOnly) {
			t.Errorf("ReadAt on size-only file: %v, want ErrSizeOnly", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
