package thicket_test

import (
	"fmt"
	"time"

	"repro/internal/caliper"
	"repro/internal/thicket"
)

// ExampleEnsemble_Query builds a two-member ensemble and queries it with
// the Hatchet-style path language.
func ExampleEnsemble_Query() {
	mkProfile := func(proc string, fetch time.Duration) *caliper.Profile {
		var now time.Duration
		a := caliper.New(proc, func() time.Duration { return now })
		a.Begin("dyad_consume")
		a.Begin("dyad_fetch")
		now += fetch
		a.End("dyad_fetch")
		a.End("dyad_consume")
		return a.Profile()
	}
	ens := thicket.FromProfiles([]*caliper.Profile{
		mkProfile("consumer0", 10*time.Millisecond),
		mkProfile("consumer1", 30*time.Millisecond),
	})
	for _, n := range ens.MustQuery("//dyad_consume/dyad_fetch[mean>1ms]") {
		fmt.Printf("%s mean=%.0fms members=%d\n", n.Name, n.Total.Mean*1000, n.Total.N)
	}
	// Output:
	// dyad_fetch mean=20ms members=2
}
