package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeRunAndAggregate(t *testing.T) {
	jac, err := ModelByName("JAC")
	if err != nil {
		t.Fatal(err)
	}
	results, err := Repeat(Config{Backend: DYAD, Model: jac, Pairs: 2, Frames: 8, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	agg := Aggregated(results)
	if agg.Reps != 2 || agg.ConsTotalMean() <= 0 {
		t.Fatalf("aggregate %+v", agg)
	}
}

func TestFacadeModels(t *testing.T) {
	if len(Models()) != 4 {
		t.Fatalf("models %d", len(Models()))
	}
	if _, err := ModelByName("STMV"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseBackend("Lustre"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"} {
		if !ids[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
	rep, err := RunExperiment("table1", ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderReport(&buf, rep)
	if !strings.Contains(buf.String(), "JAC") {
		t.Fatal("rendered table1 missing JAC")
	}
	if _, err := RunExperiment("nope", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
