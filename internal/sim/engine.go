// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock over a priority queue of events and
// runs simulated processes as goroutine coroutines: at any instant at most
// one process goroutine executes, and control passes between the kernel and
// the running process through unbuffered channels ("baton passing"). Given
// the same seed and the same spawn order, a simulation is fully
// deterministic and independent of wall-clock scheduling.
//
// The kernel is the substrate for every simulated subsystem in this
// repository: storage devices, network fabrics, filesystems, the Lustre and
// DYAD services, and the MD workflow processes themselves.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Time is a point in virtual time, expressed as the elapsed duration since
// the start of the simulation (t=0).
type Time = time.Duration

// event is a scheduled callback. Events with equal time fire in schedule
// order (seq), which makes runs deterministic.
type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// ErrStranded is reported by Run when the event queue drains while one or
// more processes are still blocked on a signal or resource that can never
// be granted. Stranded processes are aborted so no goroutines leak.
var ErrStranded = errors.New("sim: processes stranded at end of run")

// Engine is a discrete-event simulation instance. Create one with NewEngine,
// spawn processes with Spawn, then call Run. Engines are not safe for use
// from multiple OS threads; all interaction must happen either before Run or
// from within simulated processes.
type Engine struct {
	now      Time
	seq      int64
	pq       eventHeap
	kernelCh chan struct{} // procs hand the baton back on this channel
	procs    []*Proc
	live     int // procs spawned and not yet finished
	blocked  int // procs blocked on signals/resources (not timed events)
	seed     uint64
	failure  error
	tracer   func(t Time, procName, msg string)
}

// NewEngine returns an engine with its virtual clock at zero. The seed
// drives every per-process random stream; two engines with equal seeds and
// equal workloads produce identical event timelines.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		kernelCh: make(chan struct{}),
		seed:     seed,
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() uint64 { return e.seed }

// SetTracer installs a callback invoked by Proc.Tracef. A nil tracer (the
// default) makes tracing free.
func (e *Engine) SetTracer(fn func(t Time, procName, msg string)) { e.tracer = fn }

// schedule enqueues fn to run at absolute virtual time at. Scheduling in
// the past is a programming error.
func (e *Engine) schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.pq, &event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now. It may be called before Run or from
// within a process.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.schedule(e.now+d, fn)
}

// Run executes events until the queue is empty or a process panics.
// It returns the first process failure, or ErrStranded if processes remain
// blocked with no pending events (a lost-signal deadlock). All stranded
// processes are aborted before Run returns, so no goroutines leak.
func (e *Engine) Run() error {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*event)
		e.now = ev.at
		ev.fn()
		if e.failure != nil {
			break
		}
	}
	var stranded []string
	for _, p := range e.procs {
		if !p.done && p.waiting {
			stranded = append(stranded, p.name)
			p.abort()
		}
	}
	// Drain any events scheduled by aborting procs (there should be none,
	// but be safe against user cleanup code). Like the main loop, stop at
	// the first failure: a panic during cleanup must not keep executing
	// subsequent events against now-inconsistent state.
	for len(e.pq) > 0 && e.failure == nil {
		ev := heap.Pop(&e.pq).(*event)
		e.now = ev.at
		ev.fn()
	}
	e.pq = nil
	if e.failure != nil {
		return e.failure
	}
	if len(stranded) > 0 {
		return fmt.Errorf("%w: %v", ErrStranded, stranded)
	}
	return nil
}
