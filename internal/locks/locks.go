// Package locks provides an advisory, flock-style file lock manager. DYAD
// uses shared/exclusive path locks as its cheap synchronization protocol
// once data is known to be available (the "much less costly file lock-based
// synchronization" of the paper's multi-protocol scheme).
package locks

import (
	"time"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// Mode is the lock mode requested.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

// Params is the lock-path cost model.
type Params struct {
	// SyscallLatency is charged per lock/unlock call (a local flock).
	SyscallLatency time.Duration
}

// DefaultParams returns a local-flock cost model.
func DefaultParams() Params {
	return Params{SyscallLatency: 1500 * time.Nanosecond}
}

// Manager grants advisory locks keyed by cleaned path.
type Manager struct {
	params Params
	locks  map[string]*pathLock

	// Contended counts acquisitions that had to wait.
	Contended int64
	Acquired  int64
}

type pathLock struct {
	sharedHolders int
	exclusive     bool
	queue         []waiter // by value; vacated slots are zeroed on grant
}

type waiter struct {
	p    *sim.Proc
	mode Mode
}

// NewManager returns an empty lock table.
func NewManager(params Params) *Manager {
	return &Manager{params: params, locks: make(map[string]*pathLock)}
}

func (m *Manager) lockFor(path string) *pathLock {
	p := vfs.Clean(path)
	l, ok := m.locks[p]
	if !ok {
		l = &pathLock{}
		m.locks[p] = l
	}
	return l
}

// Lock blocks until the lock on path is granted in the requested mode.
// Grants are FIFO: a shared request queued behind an exclusive one waits.
func (m *Manager) Lock(p *sim.Proc, path string, mode Mode) {
	p.Sleep(m.params.SyscallLatency)
	l := m.lockFor(path)
	if l.grantable(mode) && len(l.queue) == 0 {
		l.grant(mode)
		m.Acquired++
		return
	}
	m.Contended++
	l.queue = append(l.queue, waiter{p: p, mode: mode})
	p.Block()
	m.Acquired++
}

// Unlock releases one holder of the lock on path.
func (m *Manager) Unlock(p *sim.Proc, path string, mode Mode) {
	p.Sleep(m.params.SyscallLatency)
	l := m.lockFor(path)
	switch mode {
	case Shared:
		if l.sharedHolders <= 0 {
			panic("locks: shared unlock with no shared holders")
		}
		l.sharedHolders--
	case Exclusive:
		if !l.exclusive {
			panic("locks: exclusive unlock while not exclusively held")
		}
		l.exclusive = false
	}
	// Grant in FIFO order; consecutive shared requests are granted together.
	// Queues here are short (per-path contention only), so granted slots are
	// copied down rather than kept as a dead prefix.
	granted := 0
	for granted < len(l.queue) && l.grantable(l.queue[granted].mode) {
		w := l.queue[granted]
		granted++
		l.grant(w.mode)
		w.p.Wake()
		if w.mode == Exclusive {
			break
		}
	}
	if granted > 0 {
		live := copy(l.queue, l.queue[granted:])
		for i := live; i < len(l.queue); i++ {
			l.queue[i] = waiter{} // release the proc reference
		}
		l.queue = l.queue[:live]
	}
}

// WithExclusive runs fn while holding the exclusive lock on path.
func (m *Manager) WithExclusive(p *sim.Proc, path string, fn func()) {
	m.Lock(p, path, Exclusive)
	defer m.Unlock(p, path, Exclusive)
	fn()
}

// WithShared runs fn while holding a shared lock on path.
func (m *Manager) WithShared(p *sim.Proc, path string, fn func()) {
	m.Lock(p, path, Shared)
	defer m.Unlock(p, path, Shared)
	fn()
}

func (l *pathLock) grantable(mode Mode) bool {
	switch mode {
	case Shared:
		return !l.exclusive
	case Exclusive:
		return !l.exclusive && l.sharedHolders == 0
	}
	panic("locks: unknown mode")
}

func (l *pathLock) grant(mode Mode) {
	if mode == Shared {
		l.sharedHolders++
	} else {
		l.exclusive = true
	}
}
