package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Run is one traced workflow run: a label (config + repetition), its span
// stream, and optional sampled counter tracks (utilization curves from
// internal/metrics). WriteChrome renders each run as one Chrome trace
// process.
type Run struct {
	Label    string
	Spans    []Span
	Counters []Counter
}

// Counter is one sampled counter track: a value per virtual sample time.
// Perfetto renders counter tracks as line charts under the span rows.
type Counter struct {
	Name   string
	Times  []time.Duration
	Values []float64
}

// WriteChrome serializes traced runs in the Chrome trace-event JSON format
// (the "JSON Object Format" with a traceEvents array), loadable in
// Perfetto and chrome://tracing. Each run becomes one process (pid = run
// index + 1) named by its label; each simulated proc becomes one thread
// (tid = order of first appearance). Spans are complete events (ph "X")
// with ts/dur in virtual microseconds at nanosecond resolution; zero-length
// spans become instant events (ph "i").
//
// The output is written with a fixed field order and fixed number
// formatting, so a deterministic span stream serializes to deterministic
// bytes — the property the -j1 vs -j8 trace identity check relies on.
func WriteChrome(w io.Writer, runs []Run) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	for ri, run := range runs {
		pid := ri + 1
		emit(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":%s}}",
			pid, quote(run.Label)))
		tids := make(map[string]int)
		for _, s := range run.Spans {
			tid, ok := tids[s.Proc]
			if !ok {
				tid = len(tids) + 1
				tids[s.Proc] = tid
				emit(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}",
					pid, tid, quote(s.Proc)))
			}
			args := ""
			if s.Bytes != 0 {
				args = fmt.Sprintf(",\"args\":{\"bytes\":%d}", s.Bytes)
			}
			if s.Attr != "" {
				if args == "" {
					args = fmt.Sprintf(",\"args\":{\"attr\":%s}", quote(s.Attr))
				} else {
					args = fmt.Sprintf(",\"args\":{\"bytes\":%d,\"attr\":%s}", s.Bytes, quote(s.Attr))
				}
			}
			if s.Dur == 0 {
				emit(fmt.Sprintf("{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"s\":\"t\",\"name\":%s,\"cat\":%s%s}",
					pid, tid, us(s.Start), quote(s.Name), quote(s.Component+","+s.Class.String()), args))
				continue
			}
			emit(fmt.Sprintf("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":%s,\"cat\":%s%s}",
				pid, tid, us(s.Start), us(s.Dur), quote(s.Name), quote(s.Component+","+s.Class.String()), args))
		}
		for _, c := range run.Counters {
			for i, t := range c.Times {
				emit(fmt.Sprintf("{\"ph\":\"C\",\"pid\":%d,\"tid\":0,\"ts\":%s,\"name\":%s,\"args\":{\"value\":%s}}",
					pid, us(t), quote(c.Name), strconv.FormatFloat(c.Values[i], 'g', -1, 64)))
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// us renders a virtual duration as microseconds at nanosecond resolution:
// an integer when whole, otherwise exactly three fractional digits. Fixed
// formatting keeps the serialized trace byte-stable.
func us(d time.Duration) string {
	ns := int64(d)
	if ns%1000 == 0 {
		return strconv.FormatInt(ns/1000, 10)
	}
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// quote JSON-escapes a string (names and labels are ASCII identifiers, but
// escaping keeps arbitrary attributes safe).
func quote(s string) string { return strconv.Quote(s) }
