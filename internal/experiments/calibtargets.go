package experiments

import (
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/stats"
)

// CalibMeasurement is one named scalar the calibration objective compares
// against its paper target: a Table I/II derivation or a Fig 5–7 headline
// ratio.
type CalibMeasurement struct {
	// Name identifies the measurement ("fig5.cons_total.xfs_over_dyad").
	// Names are stable across builds: calibration targets join on them.
	Name string
	// Value is the measured number — KiB for table1, seconds for table2,
	// a dimensionless ratio for the figure headlines. NaN when the ratio's
	// baseline is zero.
	Value float64
	// NaNs counts NaN observations dropped from the aggregates behind
	// Value; the calibration objective penalizes drops.
	NaNs int
}

// MeasureCalibration replays the calibration protocol under tune and
// returns the named measurements in deterministic order. The protocol is
// the paper comparison set that internal/calib fits against: the Table I/II
// derivations (pure model arithmetic — they pin the workload, not the
// hardware) plus the headline ratios of Fig 5 (single-node DYAD vs XFS,
// 4 pairs) and Fig 6 (two-node DYAD vs Lustre, 8 pairs). When full is set
// the Fig 7 headline is measured too, on the 64-pair ensemble — the
// largest size whose cost still tolerates being inside an optimizer loop;
// the paper's per-pair breakdowns are scale-stable, so the 256-pair
// headline ratio transfers.
//
// tune is applied to every Config before it runs (nil means unmodified);
// it is where calibration installs SpecTune, DYADOverride, and the
// consumer head start. Everything downstream is the ordinary runAgg path,
// so measurements here match the figures' own notes byte-for-byte given
// the same Options.
func MeasureCalibration(o Options, tune func(core.Config) core.Config, full bool) ([]CalibMeasurement, error) {
	o = o.Defaults()
	if tune == nil {
		tune = func(c core.Config) core.Config { return c }
	}
	var ms []CalibMeasurement
	for _, m := range models.Registry() {
		ms = append(ms, CalibMeasurement{
			Name: "table1.frame_kib." + m.Name, Value: float64(m.FrameBytes()) / 1024})
	}
	for _, m := range models.Registry() {
		ms = append(ms, CalibMeasurement{
			Name: "table2.freq_s." + m.Name, Value: m.DefaultFrequency().Seconds()})
	}

	jac := mustModel("JAC")
	run := func(cfg core.Config) (core.Aggregate, error) { return runAgg(tune(cfg), o) }
	ratio := func(name string, num, den float64, nans int) {
		ms = append(ms, CalibMeasurement{Name: name, Value: stats.Ratio(num, den), NaNs: nans})
	}

	dy5, err := run(core.Config{Backend: core.DYAD, Model: jac, Pairs: 4, SingleNode: true})
	if err != nil {
		return nil, err
	}
	xf5, err := run(core.Config{Backend: core.XFS, Model: jac, Pairs: 4, SingleNode: true})
	if err != nil {
		return nil, err
	}
	totalNaNs := func(a, b core.Aggregate) int {
		return a.ConsMovement.NaNs + a.ConsIdle.NaNs + b.ConsMovement.NaNs + b.ConsIdle.NaNs
	}
	ratio("fig5.prod_total.dyad_over_xfs", dy5.ProdTotalMean(), xf5.ProdTotalMean(),
		dy5.ProdMovement.NaNs+dy5.ProdIdle.NaNs+xf5.ProdMovement.NaNs+xf5.ProdIdle.NaNs)
	ratio("fig5.cons_move.dyad_over_xfs", dy5.ConsMovement.Mean, xf5.ConsMovement.Mean,
		dy5.ConsMovement.NaNs+xf5.ConsMovement.NaNs)
	ratio("fig5.cons_total.xfs_over_dyad", xf5.ConsTotalMean(), dy5.ConsTotalMean(), totalNaNs(xf5, dy5))

	dy6, err := run(core.Config{Backend: core.DYAD, Model: jac, Pairs: 8})
	if err != nil {
		return nil, err
	}
	lu6, err := run(core.Config{Backend: core.Lustre, Model: jac, Pairs: 8})
	if err != nil {
		return nil, err
	}
	ratio("fig6.prod_move.lustre_over_dyad", lu6.ProdMovement.Mean, dy6.ProdMovement.Mean,
		lu6.ProdMovement.NaNs+dy6.ProdMovement.NaNs)
	ratio("fig6.cons_move.lustre_over_dyad", lu6.ConsMovement.Mean, dy6.ConsMovement.Mean,
		lu6.ConsMovement.NaNs+dy6.ConsMovement.NaNs)
	ratio("fig6.cons_total.lustre_over_dyad", lu6.ConsTotalMean(), dy6.ConsTotalMean(), totalNaNs(lu6, dy6))

	if full {
		dy7, err := run(core.Config{Backend: core.DYAD, Model: jac, Pairs: 64})
		if err != nil {
			return nil, err
		}
		lu7, err := run(core.Config{Backend: core.Lustre, Model: jac, Pairs: 64})
		if err != nil {
			return nil, err
		}
		ratio("fig7.prod_move.lustre_over_dyad", lu7.ProdMovement.Mean, dy7.ProdMovement.Mean,
			lu7.ProdMovement.NaNs+dy7.ProdMovement.NaNs)
		ratio("fig7.cons_move.lustre_over_dyad", lu7.ConsMovement.Mean, dy7.ConsMovement.Mean,
			lu7.ConsMovement.NaNs+dy7.ConsMovement.NaNs)
		ratio("fig7.cons_total.lustre_over_dyad", lu7.ConsTotalMean(), dy7.ConsTotalMean(), totalNaNs(lu7, dy7))
	}
	return ms, nil
}
