package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// BenchmarkSleepEvents measures kernel throughput: one process sleeping
// b.N times (schedule + heap + baton passing per event). The steady-state
// allocation budget is zero: deliver events carry a proc index, not a
// closure, and the heap slice is reused.
func BenchmarkSleepEvents(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkManyProcs measures baton passing across 100 interleaved procs.
func BenchmarkManyProcs(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	const procs = 100
	steps := b.N/procs + 1
	e.Prealloc(procs, procs+1)
	for i := 0; i < procs; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for s := 0; s < steps; s++ {
				p.Sleep(time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSharded measures the sharded engine's per-event cost against the
// serial loop on the same workload (100 procs, interleaved sleeps), at 1
// (serial), 2, and 8 shards. On a single-core host the delta IS the PDES
// overhead budget: window barriers plus merge-heap churn, with no cores to
// win the heap maintenance back. DESIGN.md §3g records the measurements.
func BenchmarkSharded(b *testing.B) {
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("shards=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			e := NewEngine(1)
			if workers > 1 {
				e.SetShardWorkers(workers)
				e.SetLookahead(4 * time.Microsecond)
			}
			const procs = 100
			steps := b.N/procs + 1
			e.Prealloc(procs, procs+1)
			for i := 0; i < procs; i++ {
				e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
					for s := 0; s < steps; s++ {
						p.Sleep(time.Duration(1+i%7) * time.Microsecond)
					}
				})
			}
			b.ResetTimer()
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkResourceContention measures queued grants under contention.
func BenchmarkResourceContention(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	r := NewResource(e, "dev", 1)
	const procs = 16
	steps := b.N/procs + 1
	for i := 0; i < procs; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for s := 0; s < steps; s++ {
				r.Use(p, 100*time.Nanosecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWakeBlock measures the Block/Wake baton-passing fast path: two
// processes handing control back and forth with no timer events involved.
func BenchmarkWakeBlock(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	var pa, pb *Proc
	rounds := b.N/2 + 1
	pa = e.Spawn("a", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			p.Block()
			pb.Wake()
		}
	})
	pb = e.Spawn("b", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			pa.Wake()
			p.Block()
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHeapChurn10k measures push/pop throughput with 10k+ events
// resident in the queue: every proc keeps one pending timer, so each Sleep
// churns a deep pending set (ladder mode at this depth). This is the
// paper-scale regime (thousands of concurrent producer/consumer/server
// processes). A warm run grows every queue structure and runtime pool to
// its high-water mark before the timer, and the timed region asserts the
// steady-state zero-allocation contract: 0 B/op.
func BenchmarkHeapChurn10k(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	const procs = 10_000
	spawn := func(steps int) {
		for i := 0; i < procs; i++ {
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for s := 0; s < steps; s++ {
					// Spread wakeups so the queue stays full and ordering
					// work is non-trivial (random keys, not FIFO).
					p.Sleep(time.Duration(1+p.Rand().Intn(1000)) * time.Microsecond)
				}
			})
		}
	}
	steps := b.N/procs + 1
	// Warm run: the identical workload (same seed, same length), so every
	// queue structure and runtime pool reaches the exact high-water mark of
	// the measured run, which then allocates nothing.
	e.Prealloc(procs, procs+1)
	spawn(steps)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	e.Reset(1)
	e.Prealloc(procs, procs+1)
	spawn(steps)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	events := float64(procs) * float64(steps)
	if avg := float64(m1.TotalAlloc-m0.TotalAlloc) / events; avg >= 1 {
		b.Fatalf("steady-state churn allocated %.2f B/op, want 0", avg)
	}
}

// BenchmarkScaleEvents is the macro queue ladder: steady-state hold-model
// churn (pop the earliest event, push its successor a random hold later) at
// 1k, 100k, and 1M resident events, for the 4-ary heap, the ladder queue,
// and the adaptive default. The heap-vs-ladder spread at each depth is what
// fixed ladderThreshold (DESIGN.md §3h); BENCH_PR7.json records the ledger.
func BenchmarkScaleEvents(b *testing.B) {
	depths := []struct {
		name    string
		pending int
	}{
		{"1k", 1_000},
		{"100k", 100_000},
		{"1M", 1_000_000},
	}
	modes := []struct {
		name   string
		thresh int
	}{
		{"heap", 1 << 30},
		{"ladder", 1},
		{"adaptive", 0},
	}
	for _, d := range depths {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("pending=%s/q=%s", d.name, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				q := eventq{thresh: mode.thresh}
				q.grow(d.pending + 1)
				rng := NewRNG(9)
				hold := func() Time { return Time(1 + rng.Intn(1_000_000)) } // 1ns..1ms
				var seq int64
				push := func(at Time) {
					q.push(event{at: at, seq: seq, proc: noProc})
					seq++
				}
				for i := 0; i < d.pending; i++ {
					push(hold())
				}
				// Churn to the steady-state high-water mark before timing:
				// at least one full band-recycle of the queue, and no
				// shorter than the measured run itself.
				warm := 2 * d.pending
				if warm < b.N {
					warm = b.N
				}
				for i := 0; i < warm; i++ {
					ev := q.pop()
					push(ev.at + hold())
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev := q.pop()
					push(ev.at + hold())
				}
			})
		}
	}
}

// BenchmarkRNG measures the deterministic random stream.
func BenchmarkRNG(b *testing.B) {
	b.ReportAllocs()
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
