package lustre

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/vfs"
)

func TestHandleRangeReadTouchesOnlyCoveredStripes(t *testing.T) {
	e := sim.NewEngine(1)
	cl, fs := testRig(e, 1, 4)
	c := fs.Client(cl.Node(0))
	payload := vfs.BytesPayload(bytes.Repeat([]byte("x"), 4<<20)) // 4 chunks of 1 MiB
	e.Spawn("io", func(p *sim.Proc) {
		if err := c.WriteFile(p, "/f", payload); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		before := fs.OSTOps
		h, err := c.Open(p, "/f")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		// A read inside one stripe must cost exactly one OST RPC.
		if _, err := h.ReadAt(p, 100, 1000); err != nil {
			t.Errorf("ReadAt: %v", err)
		}
		if got := fs.OSTOps - before; got != 1 {
			t.Errorf("1 KB intra-stripe read used %d OST RPCs, want 1", got)
		}
		// A read spanning a stripe boundary costs two.
		before = fs.OSTOps
		if _, err := h.ReadAt(p, 1<<20-512, 1024); err != nil {
			t.Errorf("ReadAt: %v", err)
		}
		if got := fs.OSTOps - before; got != 2 {
			t.Errorf("boundary-spanning read used %d OST RPCs, want 2", got)
		}
		_ = h.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHandlePartialReadCheaperThanFull(t *testing.T) {
	e := sim.NewEngine(1)
	cl, fs := testRig(e, 1, 4)
	c := fs.Client(cl.Node(0))
	payload := vfs.BytesPayload(bytes.Repeat([]byte("y"), 8<<20))
	var partial, full time.Duration
	e.Spawn("io", func(p *sim.Proc) {
		_ = c.WriteFile(p, "/f", payload)
		h, _ := c.Open(p, "/f")
		t0 := p.Now()
		if _, err := h.ReadAt(p, 0, 64<<10); err != nil {
			t.Errorf("partial: %v", err)
		}
		partial = p.Now() - t0
		t1 := p.Now()
		if _, err := c.ReadFile(p, "/f"); err != nil {
			t.Errorf("full: %v", err)
		}
		full = p.Now() - t1
		_ = h.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if partial*3 > full {
		t.Fatalf("64 KiB partial read (%v) not ≪ 8 MiB full read (%v)", partial, full)
	}
}

func TestHandleWriteAtUpdatesStripes(t *testing.T) {
	e := sim.NewEngine(1)
	cl, fs := testRig(e, 1, 2)
	c := fs.Client(cl.Node(0))
	e.Spawn("io", func(p *sim.Proc) {
		h, err := c.CreateFile(p, "/n")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := h.Append(p, bytes.Repeat([]byte("a"), 2<<20)); err != nil {
			t.Errorf("append: %v", err)
		}
		if err := h.WriteAt(p, 1<<20, []byte("MARK")); err != nil {
			t.Errorf("WriteAt: %v", err)
		}
		got, err := h.ReadAt(p, 1<<20, 4)
		if err != nil || string(got) != "MARK" {
			t.Errorf("read back %q, %v", got, err)
		}
		if err := h.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHandleCreateVisibleAcrossClients(t *testing.T) {
	e := sim.NewEngine(1)
	cl, fs := testRig(e, 2, 2)
	writer := fs.Client(cl.Node(0))
	reader := fs.Client(cl.Node(1))
	e.Spawn("w", func(p *sim.Proc) {
		h, _ := writer.CreateFile(p, "/shared")
		_ = h.Append(p, []byte("cross-node"))
		_ = h.Close(p)
	})
	e.Spawn("r", func(p *sim.Proc) {
		p.Sleep(time.Second)
		got, err := reader.ReadFile(p, "/shared")
		if err != nil || string(got.Bytes()) != "cross-node" {
			t.Errorf("cross-node read %q, %v", got.Bytes(), err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
