// Command thicketql loads Caliper profiles (JSON, as written by
// caliper.Profile.WriteJSON), ensembles them, renders the statistical call
// tree, and optionally runs call-path queries against it.
//
// Examples:
//
//	thicketql profiles/*.json
//	thicketql -q '//dyad_consume/dyad_fetch' profiles/*.json
//	thicketql -q '//read_single_buf[mean>1ms]' profiles/*.json
//	thicketql -demo -q '//dyad_consume/*'
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/caliper"
	"repro/internal/stats"
	"repro/internal/thicket"
)

func main() {
	var (
		query = flag.String("q", "", "call-path query to run (e.g. //dyad_fetch[mean>1ms])")
		demo  = flag.Bool("demo", false, "generate profiles from a small built-in DYAD run instead of reading files")
		role  = flag.String("role", "consumer", "with -demo: which role's profiles to analyze (producer or consumer)")
	)
	flag.Parse()

	var profiles []*caliper.Profile
	if *demo {
		profiles = demoProfiles(*role)
	} else {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "thicketql: no profile files given (or use -demo)")
			os.Exit(2)
		}
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			p, err := caliper.ReadJSON(f)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			profiles = append(profiles, p)
		}
	}

	ens := thicket.FromProfiles(profiles)
	fmt.Printf("ensemble of %d profiles\n\n", ens.Members())
	ens.Render(os.Stdout)

	if *query != "" {
		nodes, err := ens.Query(*query)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nquery %s -> %d match(es)\n", *query, len(nodes))
		for _, n := range nodes {
			fmt.Printf("  %-28s mean=%-12s std=%-12s visits=%.0f\n",
				n.Name, stats.FormatSeconds(n.Total.Mean), stats.FormatSeconds(n.Total.Std), n.Visits.Mean)
		}
	}
}

// demoProfiles runs a small DYAD workflow and returns its profiles.
func demoProfiles(role string) []*caliper.Profile {
	jac, err := repro.ModelByName("JAC")
	if err != nil {
		fatal(err)
	}
	res, err := repro.Run(repro.Config{
		Backend: repro.DYAD, Model: jac, Pairs: 4, Frames: 16,
		Seed: uint64(time.Now().UnixNano()), KeepProfiles: true,
	})
	if err != nil {
		fatal(err)
	}
	if role == "producer" {
		return res.ProducerProfiles
	}
	return res.ConsumerProfiles
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thicketql:", err)
	os.Exit(1)
}
