package md

import (
	"math"
	"testing"
)

func TestLatticeConstruction(t *testing.T) {
	s := NewLattice(100, 0.8, 1.0, 7) // rounds up to 5^3 = 125
	if s.N != 125 {
		t.Fatalf("N = %d, want 125", s.N)
	}
	wantBox := math.Cbrt(125 / 0.8)
	if math.Abs(s.Box-wantBox) > 1e-12 {
		t.Fatalf("box %v, want %v", s.Box, wantBox)
	}
	for i, p := range s.Pos {
		if p < 0 || p >= s.Box {
			t.Fatalf("pos[%d]=%v outside box", i, p)
		}
	}
}

func TestInitialTemperatureNearTarget(t *testing.T) {
	s := NewLattice(512, 0.8, 1.5, 3)
	temp := s.Temperature()
	if math.Abs(temp-1.5)/1.5 > 0.15 {
		t.Fatalf("initial temperature %v, want ~1.5", temp)
	}
}

func TestMomentumConserved(t *testing.T) {
	s := NewLattice(125, 0.7, 1.0, 11)
	m0 := s.Momentum()
	for d := 0; d < 3; d++ {
		if math.Abs(m0[d]) > 1e-9 {
			t.Fatalf("initial momentum %v not removed", m0)
		}
	}
	s.Run(50)
	m := s.Momentum()
	for d := 0; d < 3; d++ {
		if math.Abs(m[d]) > 1e-6 {
			t.Fatalf("momentum drifted to %v after 50 steps", m)
		}
	}
}

func TestEnergyConservationNVE(t *testing.T) {
	s := NewLattice(125, 0.7, 0.8, 5)
	// Let the lattice relax briefly before measuring drift.
	s.Run(50)
	e0 := s.TotalEnergy()
	s.Run(400)
	e1 := s.TotalEnergy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 0.02 {
		t.Fatalf("NVE energy drift %.4f over 400 steps (E %v -> %v)", drift, e0, e1)
	}
}

func TestPositionsStayInBox(t *testing.T) {
	s := NewLattice(64, 0.6, 2.0, 9)
	s.Run(200)
	for i, p := range s.Pos {
		if p < 0 || p >= s.Box {
			t.Fatalf("pos[%d]=%v escaped box [0,%v)", i, p, s.Box)
		}
	}
}

func TestBerendsenPullsTemperature(t *testing.T) {
	s := NewLattice(216, 0.8, 2.0, 13)
	target := 0.5
	for i := 0; i < 300; i++ {
		s.Step()
		s.Berendsen(target, 10)
	}
	temp := s.Temperature()
	if math.Abs(temp-target)/target > 0.25 {
		t.Fatalf("thermostatted temperature %v, want ~%v", temp, target)
	}
}

func TestStepCountAdvances(t *testing.T) {
	s := NewLattice(27, 0.5, 1.0, 1)
	if s.StepCount() != 0 {
		t.Fatal("fresh system has nonzero step count")
	}
	s.Run(17)
	if s.StepCount() != 17 {
		t.Fatalf("step count %d, want 17", s.StepCount())
	}
}

func TestFrameExportRoundTrips(t *testing.T) {
	s := NewLattice(64, 0.7, 1.0, 21)
	s.Run(5)
	f := s.Frame("LJ64")
	if f.Atoms() != s.N || f.Step != 5 || f.Model != "LJ64" {
		t.Fatalf("frame header wrong: %d atoms step %d model %q", f.Atoms(), f.Step, f.Model)
	}
	for i := 0; i < 3*s.N; i++ {
		if f.Pos[i] != s.Pos[i] {
			t.Fatal("frame positions differ from system")
		}
	}
	// Mutating the system must not change the exported frame.
	s.Run(1)
	if f.Step == s.StepCount() {
		t.Fatal("frame step aliased to system")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := NewLattice(64, 0.7, 1.0, 42)
	b := NewLattice(64, 0.7, 1.0, 42)
	a.Run(50)
	b.Run(50)
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatal("same-seed trajectories diverged")
		}
	}
}

func TestForcesAreFinite(t *testing.T) {
	s := NewLattice(125, 0.9, 1.2, 17)
	s.Run(100)
	for i, f := range s.Force {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("force[%d] = %v", i, f)
		}
	}
}

func TestPressureFinitePositiveForDenseFluid(t *testing.T) {
	s := NewLattice(216, 0.8, 1.5, 31)
	s.Run(100)
	s.PotentialEnergy() // refresh forces/virial
	p := s.Pressure()
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("pressure %v", p)
	}
	// A dense warm LJ fluid has positive pressure.
	if p <= 0 {
		t.Fatalf("pressure %v, want > 0 at density 0.8, T 1.5", p)
	}
}

func TestPressureIncreasesWithDensity(t *testing.T) {
	measure := func(density float64) float64 {
		s := NewLattice(216, density, 1.5, 7)
		s.Run(100)
		s.PotentialEnergy()
		return s.Pressure()
	}
	lo, hi := measure(0.4), measure(0.9)
	if hi <= lo {
		t.Fatalf("pressure at density 0.9 (%v) not above density 0.4 (%v)", hi, lo)
	}
}
