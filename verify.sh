#!/bin/sh
# verify.sh — the repo's full verification gate.
#
# Runs the tier-1 gate (build + tests) plus static vetting and the
# race-enabled suite that locks in the parallel runner's no-shared-state
# guarantee (see DESIGN.md §3b). Referenced from ROADMAP.md.
set -eu

cd "$(dirname "$0")"

echo "== tier-1: go build ./... =="
go build ./...

echo "== tier-1: go test ./... =="
go test ./...

echo "== go vet ./... =="
go vet ./...

echo "== go test -race ./... =="
go test -race ./...

echo "== fault-matrix smoke: experiments faultsweep -quick (race) =="
# The injected-failure matrix must complete — every run either recovers or
# dies with a wrapped sentinel; no panics, hangs, or data races.
go run -race ./cmd/experiments -quick -q faultsweep

echo "== traced-sweep determinism: -trace at -j1 vs -j8 (race) =="
# Span tracing must be observation-only and worker-count-independent:
# the traced sweep's report and Chrome trace file are byte-identical for
# any -j, and the report without -trace matches the traced report's
# leading experiment table (DESIGN.md §3e).
TRACETMP="$(mktemp -d)"
trap 'rm -rf "$TRACETMP"' EXIT
go build -race -o "$TRACETMP/experiments" ./cmd/experiments
"$TRACETMP/experiments" -quick -q -j 1 -trace "$TRACETMP/t1.json" fig5 faultsweep > "$TRACETMP/out1.txt"
"$TRACETMP/experiments" -quick -q -j 8 -trace "$TRACETMP/t8.json" fig5 faultsweep > "$TRACETMP/out8.txt"
cmp "$TRACETMP/t1.json" "$TRACETMP/t8.json"
cmp "$TRACETMP/out1.txt" "$TRACETMP/out8.txt"

echo "== metrics determinism: -metrics/-metrics-prom at -j1 vs -j8 (race) =="
# Metrics sampling must be observation-only and worker-count-independent:
# the time-series CSV, the Prometheus snapshot, and the dashboard report
# are byte-identical for any -j, on clean (fig5) and faulted (faultsweep)
# seeds alike (DESIGN.md §3f).
"$TRACETMP/experiments" -quick -q -j 1 -metrics "$TRACETMP/m1.csv" -metrics-prom "$TRACETMP/p1.prom" fig5 faultsweep > "$TRACETMP/mout1.txt"
"$TRACETMP/experiments" -quick -q -j 8 -metrics "$TRACETMP/m8.csv" -metrics-prom "$TRACETMP/p8.prom" fig5 faultsweep > "$TRACETMP/mout8.txt"
cmp "$TRACETMP/m1.csv" "$TRACETMP/m8.csv"
cmp "$TRACETMP/p1.prom" "$TRACETMP/p8.prom"
cmp "$TRACETMP/mout1.txt" "$TRACETMP/mout8.txt"

echo "== PDES determinism: -pdes-j 1 vs -pdes-j 8 (race, clean + faulted) =="
# The sharded intra-run engine must be invisible in the output: report,
# Chrome trace, metrics CSV, and Prometheus snapshot bytes are identical at
# any shard count, for clean (fig5) and faulted (faultsweep) seeds alike
# (DESIGN.md §3g).
"$TRACETMP/experiments" -quick -q -pdes-j 1 -trace "$TRACETMP/pt1.json" -metrics "$TRACETMP/pm1.csv" -metrics-prom "$TRACETMP/pp1.prom" fig5 faultsweep > "$TRACETMP/pout1.txt"
"$TRACETMP/experiments" -quick -q -pdes-j 8 -trace "$TRACETMP/pt8.json" -metrics "$TRACETMP/pm8.csv" -metrics-prom "$TRACETMP/pp8.prom" fig5 faultsweep > "$TRACETMP/pout8.txt"
cmp "$TRACETMP/pout1.txt" "$TRACETMP/pout8.txt"
cmp "$TRACETMP/pt1.json" "$TRACETMP/pt8.json"
cmp "$TRACETMP/pm1.csv" "$TRACETMP/pm8.csv"
cmp "$TRACETMP/pp1.prom" "$TRACETMP/pp8.prom"

echo "== serial-mode invisibility: default vs -pdes-j 1 =="
# ShardWorkers <= 1 must be the untouched serial engine: the default run
# (no -pdes-j) and an explicit -pdes-j 1 produce identical bytes. (The PR
# that introduced the sharded engine additionally checked this output
# against the preserved pre-PR binary; that binary is not archived in-repo,
# so the ongoing gate is default-vs-explicit plus the golden fixtures,
# which pin the serial timeline against the pre-PR state.)
"$TRACETMP/experiments" -quick -q fig5 faultsweep > "$TRACETMP/sout_default.txt"
"$TRACETMP/experiments" -quick -q -pdes-j 1 fig5 faultsweep > "$TRACETMP/sout_serial.txt"
cmp "$TRACETMP/sout_default.txt" "$TRACETMP/sout_serial.txt"

echo "== streaming-sink determinism: -trace-stream / -metrics-stream vs buffered =="
# The bounded-memory streaming sinks must be byte-identical to buffered
# collection: the Chrome trace streamed span-by-span equals the buffered
# export, and the metrics CSV streamed row-by-row equals WriteCSV over the
# retained registries (DESIGN.md §3h). Gated on a clean sweep (fig5):
# faulted runs die mid-stream by design, leaving a valid but intentionally
# longer streamed document than post-hoc collection of surviving runs.
"$TRACETMP/experiments" -quick -q -trace "$TRACETMP/bt.json" -metrics "$TRACETMP/bm.csv" fig5 > "$TRACETMP/bout.txt"
"$TRACETMP/experiments" -quick -q -trace-stream "$TRACETMP/st.json" -metrics-stream "$TRACETMP/sm.csv" fig5 > "$TRACETMP/sout.txt"
cmp "$TRACETMP/bm.csv" "$TRACETMP/sm.csv"
# Counter tracks need retained metrics, so compare the trace bytes from a
# stream paired with buffered metrics (same trace path, same counters).
"$TRACETMP/experiments" -quick -q -trace-stream "$TRACETMP/st2.json" -metrics "$TRACETMP/bm2.csv" fig5 > /dev/null
cmp "$TRACETMP/bt.json" "$TRACETMP/st2.json"
cmp "$TRACETMP/bm.csv" "$TRACETMP/bm2.csv"

echo "== capacity smoke: experiments capsweep -quick (race) =="
# The finite burst-buffer matrix must complete — every starved run either
# spills, stalls, or dies with a wrapped capacity sentinel; no panics,
# hangs, or data races (DESIGN.md §3i).
go run -race ./cmd/experiments -quick -q capsweep

echo "== capacity invisibility: capacities off are byte-identical at any -j/-pdes-j =="
# With every capacity infinite (the default), the capacity layer must be
# invisible: the full quick sweep produces identical bytes serial, parallel,
# and sharded. (The PR that introduced the capacity layer additionally
# checked these bytes against the preserved pre-PR binary via cmp; that
# binary is not archived in-repo, so the ongoing gate is cross-worker
# identity plus the golden fixtures, which pin the capacity-off timeline.)
"$TRACETMP/experiments" -quick -q -j 1 all > "$TRACETMP/cap_j1.txt"
"$TRACETMP/experiments" -quick -q -j 8 all > "$TRACETMP/cap_j8.txt"
"$TRACETMP/experiments" -quick -q -j 8 -pdes-j 8 all > "$TRACETMP/cap_pdes8.txt"
cmp "$TRACETMP/cap_j1.txt" "$TRACETMP/cap_j8.txt"
cmp "$TRACETMP/cap_j1.txt" "$TRACETMP/cap_pdes8.txt"

echo "== head-start invisibility: default vs explicit -headstart 0 =="
# With the consumer head start off (the default), the knob must be
# invisible: a run with no -headstart flag and one with an explicit
# -headstart 0 produce identical bytes. (The PR that introduced the knob
# additionally checked these bytes against the preserved pre-PR binary at
# -j1, -j8, and -pdes-j 8; that binary is not archived in-repo, so the
# ongoing gate is default-vs-explicit plus the golden fixtures.)
"$TRACETMP/experiments" -quick -q fig5 ablation > "$TRACETMP/hs_default.txt"
"$TRACETMP/experiments" -quick -q -headstart 0 fig5 ablation > "$TRACETMP/hs_zero.txt"
cmp "$TRACETMP/hs_default.txt" "$TRACETMP/hs_zero.txt"

echo "== calibration determinism: calibrate -j1 vs -j8 vs -pdes-j 8 (race) =="
# The fit report must be byte-identical for any run-worker and PDES-shard
# fan-out: same evaluations, same optimizer path, same fitted parameters
# (DESIGN.md §3j).
"$TRACETMP/experiments" -q -quick -reps 1 -frames 16 -budget 6 -j 1 calibrate > "$TRACETMP/cal_j1.txt"
"$TRACETMP/experiments" -q -quick -reps 1 -frames 16 -budget 6 -j 8 calibrate > "$TRACETMP/cal_j8.txt"
"$TRACETMP/experiments" -q -quick -reps 1 -frames 16 -budget 6 -j 8 -pdes-j 8 calibrate > "$TRACETMP/cal_pdes8.txt"
cmp "$TRACETMP/cal_j1.txt" "$TRACETMP/cal_j8.txt"
cmp "$TRACETMP/cal_j1.txt" "$TRACETMP/cal_pdes8.txt"

echo "== critpath determinism: explain + -critpath artifacts at -j1/-j8/-pdes-j 8 (race) =="
# The causal-graph recorder must be worker-count-independent end to end:
# the differential critical-path report, the per-experiment blame reports,
# the frame-provenance waterfall CSV, and the flow-merged Chrome trace are
# byte-identical at any -j and -pdes-j, on clean (fig5) and faulted
# (faultsweep) seeds alike (DESIGN.md §3k).
"$TRACETMP/experiments" -q -quick -reps 1 -frames 16 -j 1 explain fig5 fig6 > "$TRACETMP/ex_j1.txt"
"$TRACETMP/experiments" -q -quick -reps 1 -frames 16 -j 8 explain fig5 fig6 > "$TRACETMP/ex_j8.txt"
"$TRACETMP/experiments" -q -quick -reps 1 -frames 16 -j 8 -pdes-j 8 explain fig5 fig6 > "$TRACETMP/ex_pdes8.txt"
cmp "$TRACETMP/ex_j1.txt" "$TRACETMP/ex_j8.txt"
cmp "$TRACETMP/ex_j1.txt" "$TRACETMP/ex_pdes8.txt"
"$TRACETMP/experiments" -quick -q -j 1 -critpath "$TRACETMP/wf1.csv" -trace "$TRACETMP/ct1.json" fig5 faultsweep > "$TRACETMP/crep1.txt"
"$TRACETMP/experiments" -quick -q -j 8 -critpath "$TRACETMP/wf8.csv" -trace "$TRACETMP/ct8.json" fig5 faultsweep > "$TRACETMP/crep8.txt"
"$TRACETMP/experiments" -quick -q -j 8 -pdes-j 8 -critpath "$TRACETMP/wfp8.csv" -trace "$TRACETMP/ctp8.json" fig5 faultsweep > "$TRACETMP/crepp8.txt"
cmp "$TRACETMP/crep1.txt" "$TRACETMP/crep8.txt"
cmp "$TRACETMP/crep1.txt" "$TRACETMP/crepp8.txt"
cmp "$TRACETMP/wf1.csv" "$TRACETMP/wf8.csv"
cmp "$TRACETMP/wf1.csv" "$TRACETMP/wfp8.csv"
cmp "$TRACETMP/ct1.json" "$TRACETMP/ct8.json"
cmp "$TRACETMP/ct1.json" "$TRACETMP/ctp8.json"

echo "== critpath invisibility: recording is observation-only =="
# Recording must not perturb the simulation: dropping the -critpath blame
# sections from a recorded run's report yields byte-for-byte the plain
# run's report — every measured number is identical. (The PR that
# introduced the recorder additionally checked the recorder-off sweep
# against the preserved pre-PR binary via cmp; that binary is not archived
# in-repo, so recorder-off bytes stay pinned by the capacity-invisibility
# stage's cross-worker cmp over `all` plus the golden fixtures.)
awk '/^== [a-z0-9]+-critpath /{skip=1; next} /^== /{skip=0} !skip' "$TRACETMP/crep1.txt" > "$TRACETMP/crep1_filtered.txt"
cmp "$TRACETMP/out1.txt" "$TRACETMP/crep1_filtered.txt"

echo "== zero-alloc gate: tracing/metrics/capacity-off allocation budget =="
# The span-tracer, metrics hooks, and capacity layer must be free when
# disabled: the delta tests scale event/op counts ~100x and require zero
# extra allocations (run without -race; race instrumentation allocates).
go test -run 'ZeroAllocs' -count=1 ./internal/sim/ ./internal/cluster/ ./internal/metrics/ ./internal/capacity/

echo "== bench smoke: go test -run=NONE -bench=. -benchtime=1x ./... =="
# One iteration of every benchmark: catches benchmarks that panic or hang
# without paying measurement time. Full measured runs live in bench.sh.
go test -run=NONE -bench=. -benchtime=1x ./...

echo "verify.sh: all gates passed"
