package wfm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/xfs"
)

// The workflow harness implements the traditional backends' coarse
// coupling with per-pair notify gates. This test validates that coupling
// against the "ground truth" it models: an actual workflow-manager DAG
// chain sim_0 -> analysis_0 -> sim_1 -> ... over the same storage. The
// serialized makespans must agree closely.
func TestCoarseCouplingMatchesDAGChain(t *testing.T) {
	model := models.Model{Name: "TINY", Atoms: 2_000, StepsPerSecond: 10_000, Stride: 50}
	const frames = 24
	freq := model.DefaultFrequency()
	payload := vfs.BytesPayload(make([]byte, model.FrameBytes()))

	// Ground truth: an explicit DAG chain on one node with XFS.
	e := sim.NewEngine(1)
	cl := cluster.New(e, cluster.CoronaProfile(1))
	fs := xfs.New(cl.Node(0), xfs.DefaultParams())
	m := New(e, Params{SubmitLatency: 50 * time.Microsecond})
	var prev *Task
	for f := 0; f < frames; f++ {
		path := fmt.Sprintf("/chain/f%d", f)
		deps := []*Task{}
		if prev != nil {
			deps = append(deps, prev)
		}
		simTask := m.Task(fmt.Sprintf("sim%d", f), func(p *sim.Proc) {
			p.Sleep(freq) // MD compute
			if err := fs.WriteFile(p, path, payload); err != nil {
				t.Errorf("write: %v", err)
			}
		}, deps...)
		prev = m.Task(fmt.Sprintf("an%d", f), func(p *sim.Proc) {
			if _, err := fs.ReadFile(p, path); err != nil {
				t.Errorf("read: %v", err)
			}
			p.Sleep(freq) // analytics
		}, simTask)
	}
	if _, err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	dagMakespan := e.Now()

	// Harness: same workload through the gate-based coarse coupling.
	res, err := core.Run(core.Config{
		Backend: core.XFS, Model: model, Pairs: 1, Frames: frames,
		SingleNode: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	ratio := res.Makespan.Seconds() / dagMakespan.Seconds()
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("harness makespan %v vs DAG-chain makespan %v (ratio %.3f, want ~1)",
			res.Makespan, dagMakespan, ratio)
	}

	// Both must be essentially fully serialized: ~frames * 2 * freq.
	serialized := time.Duration(frames) * 2 * freq
	if dagMakespan < serialized {
		t.Fatalf("DAG makespan %v below the serialized floor %v", dagMakespan, serialized)
	}
}
