// Command experiments regenerates the paper's tables and figures.
//
// Examples:
//
// Flags come before experiment ids (standard library flag parsing stops at
// the first positional argument):
//
//	experiments -list
//	experiments table1 table2
//	experiments -reps 10 -frames 128 fig5
//	experiments -quick all
//	experiments -quick -j 8 all
//	experiments -json fig9
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiment ids and exit")
		reps     = flag.Int("reps", 0, "repetitions per configuration (0 = paper default)")
		frames   = flag.Int("frames", 0, "frames per pair (0 = paper default of 128)")
		seed     = flag.Uint64("seed", 0, "base RNG seed (0 = default)")
		quick    = flag.Bool("quick", false, "reduced sweep for smoke runs")
		workers  = flag.Int("j", 0, "parallel simulation workers (0 = one per core); results are identical for any -j")
		asJSON   = flag.Bool("json", false, "emit reports as JSON instead of text tables")
		asCSV    = flag.Bool("csv", false, "emit report tables as CSV (for plotting)")
		outPath  = flag.String("o", "", "write output to file instead of stdout")
		quiet    = flag.Bool("q", false, "suppress per-experiment progress on stderr")
		memstats = flag.Bool("memstats", false, "report per-experiment host allocation deltas on stderr")
		traceOut = flag.String("trace", "", "record virtual-time span traces: write a Chrome trace-event JSON file here and emit per-experiment time-breakdown reports")
	)
	flag.Parse()

	if *list {
		for _, e := range repro.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: no experiment ids given (try -list, or 'all')")
		os.Exit(2)
	}
	for _, id := range ids {
		if id == "all" {
			ids = ids[:0]
			for _, e := range repro.Experiments() {
				ids = append(ids, e.ID)
			}
			break
		}
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	opts := repro.ExperimentOptions{Reps: *reps, Frames: *frames, Seed: *seed, Quick: *quick, Workers: *workers}
	var collector *repro.TraceCollector
	if *traceOut != "" {
		collector = repro.NewTraceCollector()
		opts.Trace = collector
	}
	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	var reports []*repro.ExperimentReport
	for i, id := range ids {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s (workers=%d) ...", i+1, len(ids), id, effWorkers)
		}
		expStart := time.Now()
		var before runtime.MemStats
		if *memstats {
			runtime.ReadMemStats(&before)
		}
		rep, err := repro.RunExperiment(id, opts)
		if err != nil {
			if !*quiet {
				fmt.Fprintln(os.Stderr)
			}
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, " done in %.2fs\n", time.Since(expStart).Seconds())
		}
		if *memstats {
			reportMemStats(id, &before)
		}
		emit := []*repro.ExperimentReport{rep}
		// With -trace, the experiment's span-derived time breakdown rides
		// along as a second report; without it, output bytes are unchanged.
		if breakdown := collector.Drain(id); breakdown != nil {
			emit = append(emit, breakdown)
		}
		for _, rep := range emit {
			switch {
			case *asJSON:
				reports = append(reports, rep)
			case *asCSV:
				fmt.Fprintf(out, "# %s — %s\n", rep.ID, rep.Title)
				if err := rep.WriteCSV(out); err != nil {
					fatal(err)
				}
				fmt.Fprintln(out)
			default:
				repro.RenderReport(out, rep)
				fmt.Fprintln(out)
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fatal(err)
		}
	}
	if collector != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := repro.WriteChromeTrace(f, collector.Runs); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %d traced run(s) to %s\n", len(collector.Runs), *traceOut)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "%d experiment(s) in %.2fs\n", len(ids), time.Since(start).Seconds())
	}
}

// reportMemStats prints the host-side allocation delta one experiment
// caused, on stderr so machine-readable stdout formats stay clean. The
// deltas are how the allocation-budget claims in DESIGN.md §3c are checked
// end to end (sweeps with RealFrames=false should show near-zero bytes per
// simulated frame).
func reportMemStats(id string, before *runtime.MemStats) {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	fmt.Fprintf(os.Stderr,
		"[memstats] %s: alloc=%.1fMB mallocs=%d gcs=%d heap_inuse=%.1fMB heap_sys=%.1fMB\n",
		id,
		float64(after.TotalAlloc-before.TotalAlloc)/(1<<20),
		after.Mallocs-before.Mallocs,
		after.NumGC-before.NumGC,
		float64(after.HeapInuse)/(1<<20),
		float64(after.HeapSys)/(1<<20))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
