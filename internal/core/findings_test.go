package core

import (
	"testing"
	"testing/quick"
)

// Finding 2: moving DYAD from one node to two (direct network
// communication) barely affects consumption.
func TestFinding2TwoNodeDYADCloseToSingleNode(t *testing.T) {
	m := jac(t)
	run := func(single bool) *Result {
		res, err := Run(Config{
			Backend: DYAD, Model: m, Frames: 32, Pairs: 2,
			SingleNode: single, Seed: 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one, two := run(true), run(false)
	ratio := two.Consumer.Sum().Seconds() / one.Consumer.Sum().Seconds()
	if ratio > 1.5 {
		t.Fatalf("two-node DYAD consumption %.2fx single-node (want ~1x): %v vs %v",
			ratio, two.Consumer.Sum(), one.Consumer.Sum())
	}
}

// Fig 7's stability claim: production time stays roughly flat as the
// ensemble grows (per-pair mean, producers spread over more nodes).
func TestFinding3ProductionFlatWithEnsembleSize(t *testing.T) {
	m := jac(t)
	prod := func(pairs int) float64 {
		res, err := Run(Config{Backend: DYAD, Model: m, Frames: 16, Pairs: pairs, Seed: 19})
		if err != nil {
			t.Fatal(err)
		}
		return res.Producer.Sum().Seconds()
	}
	small, large := prod(8), prod(64)
	if large > small*2 {
		t.Fatalf("DYAD production grew %0.1fx from 8 to 64 pairs (want ~flat)", large/small)
	}
}

// Finding 5 mechanism: traditional consumer idle grows with stride.
func TestFinding5IdleGrowsWithStride(t *testing.T) {
	m := jac(t)
	idle := func(stride int) float64 {
		res, err := Run(Config{Backend: Lustre, Model: m, Frames: 16, Pairs: 2, Stride: stride, Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		return res.Consumer.Idle.Seconds()
	}
	if i1, i50 := idle(1), idle(50); i50 < i1*5 {
		t.Fatalf("Lustre idle did not grow with stride: %.4fs (1) vs %.4fs (50)", i1, i50)
	}
}

// Property: for random small configurations, runs complete, conserve
// frames, and are deterministic in their seed.
func TestRandomConfigProperty(t *testing.T) {
	m := tinyModel()
	f := func(seed uint64, pairsRaw, framesRaw, backendRaw uint8) bool {
		pairs := int(pairsRaw)%4 + 1
		frames := int(framesRaw)%6 + 1
		backend := []Backend{DYAD, Lustre}[int(backendRaw)%2]
		cfg := Config{
			Backend: backend, Model: m, Pairs: pairs, Frames: frames,
			Seed: seed, ComputeJitter: 0.01,
		}
		a, err := Run(cfg)
		if err != nil {
			return false
		}
		b, err := Run(cfg)
		if err != nil {
			return false
		}
		return a.FramesRead == pairs*frames &&
			a.Makespan == b.Makespan &&
			a.Consumer == b.Consumer &&
			a.Producer == b.Producer
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Per-frame decomposition must scale: PerFrame(n) * n == totals.
func TestTotalsPerFrame(t *testing.T) {
	tt := Totals{Movement: 1280, Idle: 2560}
	pf := tt.PerFrame(128)
	if pf.Movement != 10 || pf.Idle != 20 {
		t.Fatalf("per-frame %+v", pf)
	}
	if tt.PerFrame(0) != tt {
		t.Fatal("PerFrame(0) should be identity")
	}
	if tt.Sum() != 3840 {
		t.Fatal("Sum wrong")
	}
}
