// Package vfs defines the POSIX-flavoured filesystem interface shared by
// every simulated storage backend (node-local XFS, Lustre, DYAD's staging
// area), plus a path-tree implementation backends embed.
//
// The workload in the paper is whole-file per frame: a producer serializes
// one frame into one file, a consumer reads that file back. The interface
// therefore offers whole-file operations; payloads are held by reference
// (never copied) so large ensembles stay cheap in host memory.
package vfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Errors returned by filesystem operations.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrCrossed  = errors.New("vfs: operation crosses filesystem reach")
	// ErrClosed marks an operation on a closed handle (including a second
	// Close).
	ErrClosed = errors.New("vfs: handle closed")
	// ErrInvalidRange marks a byte range that is negative, past EOF, or
	// would leave a hole.
	ErrInvalidRange = errors.New("vfs: invalid byte range")
)

// FileInfo describes a stored file.
type FileInfo struct {
	Path string
	Size int64
}

// FS is the storage interface producers and consumers program against.
// Every operation takes the calling simulated process and charges virtual
// time according to the backend's cost model. Content moves as immutable
// Payload handles: a write hands the backend a shared reference and a read
// returns the same reference — no backend copies payload bytes.
type FS interface {
	// Name identifies the backend ("xfs", "lustre", ...).
	Name() string
	// WriteFile creates (or replaces) path with pl.
	WriteFile(p *sim.Proc, path string, pl Payload) error
	// ReadFile returns the payload stored at path.
	ReadFile(p *sim.Proc, path string) (Payload, error)
	// Stat returns metadata for path.
	Stat(p *sim.Proc, path string) (FileInfo, error)
	// Unlink removes path.
	Unlink(p *sim.Proc, path string) error
}

// Clean canonicalizes a path: forward slashes, single separators, leading
// slash, no trailing slash (except root).
func Clean(path string) string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, s := range parts {
		if s != "" && s != "." {
			out = append(out, s)
		}
	}
	return "/" + strings.Join(out, "/")
}

// Tree is an in-memory file table keyed by cleaned path. It holds payload
// handles by value, so storing a file neither copies content nor allocates
// an entry. Backends embed a Tree and wrap it with their cost models.
// Tree itself charges no virtual time.
type Tree struct {
	files map[string]Payload
}

// NewTree returns an empty file table.
func NewTree() *Tree {
	return &Tree{files: make(map[string]Payload)}
}

// Put stores pl at path (replacing any existing file).
func (t *Tree) Put(path string, pl Payload) {
	t.files[Clean(path)] = pl
}

// Get returns the payload at path.
func (t *Tree) Get(path string) (Payload, bool) {
	pl, ok := t.files[Clean(path)]
	return pl, ok
}

// Size returns the stored size at path.
func (t *Tree) Size(path string) (int64, bool) {
	pl, ok := t.files[Clean(path)]
	if !ok {
		return 0, false
	}
	return pl.Size(), true
}

// Remove deletes path, reporting whether it existed.
func (t *Tree) Remove(path string) bool {
	p := Clean(path)
	_, ok := t.files[p]
	delete(t.files, p)
	return ok
}

// Len returns the number of stored files.
func (t *Tree) Len() int { return len(t.files) }

// List returns all paths with the given prefix, sorted.
func (t *Tree) List(prefix string) []string {
	prefix = Clean(prefix)
	var out []string
	for p := range t.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// TotalBytes returns the sum of stored file sizes.
func (t *Tree) TotalBytes() int64 {
	var n int64
	for _, pl := range t.files {
		n += pl.Size()
	}
	return n
}

// PathError decorates an error with the operation and path, in the style
// of os.PathError.
func PathError(op, path string, err error) error {
	return fmt.Errorf("%s %s: %w", op, path, err)
}
