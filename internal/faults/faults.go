// Package faults is the deterministic fault-injection subsystem: it turns a
// stochastic fault specification into a concrete, seed-derived schedule of
// perturbations (device stalls and failures, link degradation and outages,
// DYAD broker crashes, Lustre server outages) that the workflow rig applies
// to a run at fixed virtual times.
//
// Determinism contract: a fault plan is a pure function of the fault Spec,
// the run seed, and the target population — never of wall-clock time or
// host scheduling. Two runs with equal configs produce byte-identical
// timelines regardless of worker count, which is what lets the repository's
// `-j1` vs `-j8` replay tests cover faulted runs too (DESIGN.md §3d).
//
// The package also hosts the shared recovery vocabulary: the `errors.Is`-able
// sentinel errors every backend wraps, the capped-exponential Backoff policy
// clients retry under, and the Metrics record a run reports its recovery
// behavior in.
package faults

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/sim"
)

// Sentinel errors shared by the simulated storage and transport layers.
// Backends wrap these with context (path, node, attempt counts) so call
// sites test failure classes with errors.Is instead of string matching.
var (
	// ErrTimeout marks an RPC or fetch that exceeded its deadline because
	// the serving side was down or unreachable.
	ErrTimeout = errors.New("faults: operation timed out")
	// ErrDeviceFailed marks I/O against a failed storage device.
	ErrDeviceFailed = errors.New("faults: storage device failed")
	// ErrLinkDown marks transport over a failed network link.
	ErrLinkDown = errors.New("faults: network link down")
	// ErrBrokerDown marks a request to a crashed (not yet restarted) broker.
	ErrBrokerDown = errors.New("faults: broker down")
	// ErrExhausted marks a recovery policy that ran out of retries and
	// fallbacks. It always wraps the final underlying cause.
	ErrExhausted = errors.New("faults: recovery exhausted")
)

// Kind is the category of one injected fault event.
type Kind int

// The injectable fault kinds.
const (
	// DeviceStall multiplies one compute node's SSD service times by
	// Factor for the event duration (throttled or failing-slow device).
	DeviceStall Kind = iota
	// DeviceFail makes one compute node's SSD return ErrDeviceFailed for
	// the event duration.
	DeviceFail
	// LinkDegrade multiplies one compute node's NIC wire time by Factor
	// for the event duration (flaky cable, congested uplink).
	LinkDegrade
	// LinkOutage takes one compute node's link down for the event
	// duration; in-flight and new transfers stall until the link returns
	// (InfiniBand-style retransmission, invisible to the application
	// except as lost time).
	LinkOutage
	// BrokerCrash kills the DYAD broker on one node; it restarts after
	// the event duration. The broker's RAM cache is lost, its NVMe
	// staging area survives. Ignored by non-DYAD runs.
	BrokerCrash
	// OSTOutage takes one Lustre object storage target down for the event
	// duration (OSS node failure); clients time out and eventually fail
	// over. Ignored by non-Lustre runs.
	OSTOutage
	// MDSOutage takes the Lustre metadata server down for the event
	// duration. Ignored by non-Lustre runs.
	MDSOutage
)

// String returns the kind name used in traces and reports.
func (k Kind) String() string {
	switch k {
	case DeviceStall:
		return "device-stall"
	case DeviceFail:
		return "device-fail"
	case LinkDegrade:
		return "link-degrade"
	case LinkOutage:
		return "link-outage"
	case BrokerCrash:
		return "broker-crash"
	case OSTOutage:
		return "ost-outage"
	case MDSOutage:
		return "mds-outage"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault: at virtual time At, fault Target (a compute
// node index, or an OST index for OSTOutage) for duration For. Factor is the
// degradation multiplier for stall/degrade kinds.
type Event struct {
	At     time.Duration
	Kind   Kind
	Target int
	For    time.Duration
	Factor float64
}

// String renders the event for traces and plan dumps.
func (e Event) String() string {
	return fmt.Sprintf("%v %s target=%d for=%v factor=%.2g", e.At, e.Kind, e.Target, e.For, e.Factor)
}

// Plan is a concrete fault schedule, ordered by At (ties keep generation
// order). An empty plan injects nothing and costs nothing.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan injects no faults.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// Spec is a stochastic fault model: mean event counts per kind over the
// fault window. The zero Spec is inert. Counts are means of deterministic
// Poisson draws, so fractional values (e.g. 0.5 broker crashes per run)
// express "happens in some repetitions".
type Spec struct {
	// Horizon is the virtual window faults are injected into, starting at
	// t=0. Zero lets the caller (the workflow rig) default it to the run's
	// nominal production span.
	Horizon time.Duration

	// Per-kind mean event counts over the horizon.
	DeviceStalls  float64
	DeviceFails   float64
	LinkDegrades  float64
	LinkOutages   float64
	BrokerCrashes float64
	OSTOutages    float64
	MDSOutages    float64

	// MeanOutage is the mean duration of one fault (exponentially
	// distributed, clamped to at least 1ms). Zero defaults to 400ms.
	MeanOutage time.Duration
	// StallFactor is the service-time multiplier of stall/degrade events.
	// Zero defaults to 8.
	StallFactor float64

	// Events are explicit extra events appended verbatim (tests and
	// targeted studies). They are injected even when every rate is zero.
	Events []Event
}

// Enabled reports whether the spec can produce any fault.
func (s Spec) Enabled() bool {
	return s.DeviceStalls > 0 || s.DeviceFails > 0 || s.LinkDegrades > 0 ||
		s.LinkOutages > 0 || s.BrokerCrashes > 0 || s.OSTOutages > 0 ||
		s.MDSOutages > 0 || len(s.Events) > 0
}

// Validate reports specification errors.
func (s Spec) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"DeviceStalls", s.DeviceStalls}, {"DeviceFails", s.DeviceFails},
		{"LinkDegrades", s.LinkDegrades}, {"LinkOutages", s.LinkOutages},
		{"BrokerCrashes", s.BrokerCrashes}, {"OSTOutages", s.OSTOutages},
		{"MDSOutages", s.MDSOutages},
	} {
		if r.v < 0 || math.IsNaN(r.v) || math.IsInf(r.v, 0) {
			return fmt.Errorf("faults: %s rate %v invalid", r.name, r.v)
		}
	}
	if s.Horizon < 0 {
		return fmt.Errorf("faults: horizon %v < 0", s.Horizon)
	}
	if s.MeanOutage < 0 {
		return fmt.Errorf("faults: mean outage %v < 0", s.MeanOutage)
	}
	if s.StallFactor < 0 || (s.StallFactor > 0 && s.StallFactor < 1) {
		return fmt.Errorf("faults: stall factor %v < 1", s.StallFactor)
	}
	for i, ev := range s.Events {
		if ev.At < 0 || ev.For < 0 {
			return fmt.Errorf("faults: explicit event %d has negative time (%v, %v)", i, ev.At, ev.For)
		}
		if ev.Target < 0 {
			return fmt.Errorf("faults: explicit event %d target %d < 0", i, ev.Target)
		}
	}
	return nil
}

// Scale returns a copy of the spec with every rate multiplied by f — the
// fault-rate axis of sweep experiments.
func (s Spec) Scale(f float64) Spec {
	out := s
	out.DeviceStalls *= f
	out.DeviceFails *= f
	out.LinkDegrades *= f
	out.LinkOutages *= f
	out.BrokerCrashes *= f
	out.OSTOutages *= f
	out.MDSOutages *= f
	return out
}

// Generate derives the concrete fault plan for one run. The plan depends
// only on (spec, seed, nodes, osts): event counts are Poisson draws, times
// are uniform over the horizon, targets uniform over the population, and
// durations exponential around MeanOutage — all from one private RNG stream
// seeded by the run seed, never from the engine's process streams (so
// enabling faults perturbs the workload only through the faults themselves).
func (s Spec) Generate(seed uint64, nodes, osts int) Plan {
	var plan Plan
	plan.Events = append(plan.Events, s.Events...)
	if nodes < 1 {
		nodes = 1
	}
	if osts < 1 {
		osts = 1
	}
	horizon := s.Horizon
	if horizon <= 0 {
		horizon = time.Second
	}
	meanOutage := s.MeanOutage
	if meanOutage <= 0 {
		meanOutage = 400 * time.Millisecond
	}
	factor := s.StallFactor
	if factor < 1 {
		factor = 8
	}
	rng := sim.NewRNG(seed ^ 0xFA017_5EED)
	draw := func(mean float64, kind Kind, targets int) {
		n := poisson(&rng, mean)
		for i := 0; i < n; i++ {
			ev := Event{
				At:     time.Duration(rng.Float64() * float64(horizon)),
				Kind:   kind,
				Target: rng.Intn(targets),
				For:    rng.Exp(meanOutage),
				Factor: factor,
			}
			if ev.For < time.Millisecond {
				ev.For = time.Millisecond
			}
			plan.Events = append(plan.Events, ev)
		}
	}
	// Fixed draw order: changing it would silently reshuffle plans across
	// versions, breaking committed golden fixtures.
	draw(s.DeviceStalls, DeviceStall, nodes)
	draw(s.DeviceFails, DeviceFail, nodes)
	draw(s.LinkDegrades, LinkDegrade, nodes)
	draw(s.LinkOutages, LinkOutage, nodes)
	draw(s.BrokerCrashes, BrokerCrash, nodes)
	draw(s.OSTOutages, OSTOutage, osts)
	draw(s.MDSOutages, MDSOutage, 1)
	sort.SliceStable(plan.Events, func(i, j int) bool {
		return plan.Events[i].At < plan.Events[j].At
	})
	return plan
}

// poisson draws a Poisson-distributed count with the given mean (Knuth's
// algorithm; mean values here are small single digits).
func poisson(rng *sim.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	limit := math.Exp(-mean)
	n := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= limit {
			return n
		}
		n++
		if n > 10_000 { // mean is validated finite; pure safety net
			return n
		}
	}
}

// Backoff is a capped exponential retry policy: attempt k (0-based) waits
// Base<<k, clamped to Cap, and at most Max retries are made before the
// caller falls over to its degradation path.
type Backoff struct {
	Base time.Duration
	Cap  time.Duration
	Max  int
}

// Delay returns the wait before retry attempt k (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	if attempt > 30 { // avoid shift overflow; Cap clamps anyway
		attempt = 30
	}
	d := b.Base << uint(attempt)
	if b.Cap > 0 && d > b.Cap {
		d = b.Cap
	}
	return d
}

// Metrics is the per-run recovery record: what the fault layer injected and
// what it cost the clients to survive it. All durations are virtual time.
type Metrics struct {
	// Injected is the number of fault events applied to the run.
	Injected int64
	// Timeouts counts requests that hit their deadline against a down
	// server, broker, or device.
	Timeouts int64
	// Retries counts backoff retries after timeouts.
	Retries int64
	// Failovers counts Lustre client switches to a failover OSS/MDS.
	Failovers int64
	// BrokerRestarts counts DYAD broker crash/restart cycles.
	BrokerRestarts int64
	// LinkStalls counts transfers that had to wait out a link outage.
	LinkStalls int64
	// DegradedReads counts DYAD consumptions served by the degraded path
	// (direct staging refetch or shared-filesystem fallback).
	DegradedReads int64
	// DegradedBytes is the payload volume moved in degraded mode.
	DegradedBytes int64
	// RecoveryTime is the total virtual time processes spent waiting in
	// timeouts, backoff delays, failovers, and link stalls.
	RecoveryTime time.Duration
}

// Add accumulates o into m.
func (m *Metrics) Add(o Metrics) {
	m.Injected += o.Injected
	m.Timeouts += o.Timeouts
	m.Retries += o.Retries
	m.Failovers += o.Failovers
	m.BrokerRestarts += o.BrokerRestarts
	m.LinkStalls += o.LinkStalls
	m.DegradedReads += o.DegradedReads
	m.DegradedBytes += o.DegradedBytes
	m.RecoveryTime += o.RecoveryTime
}

// Zero reports whether no recovery activity was recorded.
func (m Metrics) Zero() bool { return m == Metrics{} }

// String renders the metrics compactly for reports and golden fixtures.
func (m Metrics) String() string {
	return fmt.Sprintf("injected=%d timeouts=%d retries=%d failovers=%d restarts=%d stalls=%d degraded=%d/%dB recovery=%v",
		m.Injected, m.Timeouts, m.Retries, m.Failovers, m.BrokerRestarts, m.LinkStalls,
		m.DegradedReads, m.DegradedBytes, m.RecoveryTime)
}
