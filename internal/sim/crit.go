package sim

import (
	"repro/internal/critpath"
	"repro/internal/trace"
)

// This file is the kernel's side of the critical-path hook layer
// (internal/critpath). The lifecycle edges — spawn, block, wake, finish —
// are recorded inside the kernel itself (proc.go); everything here is the
// convenience surface instrumentation sites call. Every entry point is a
// single nil check when no recorder is installed, so a run without one
// pays nothing and allocates nothing (TestCritpathZeroAllocs).

// SetCritRecorder installs a critical-path recorder: the kernel records
// spawn/block/wake causality through it and instrumented subsystems add
// labeled regions, data tokens, and provenance hops. A nil recorder (the
// default) disables dependency recording at zero cost.
func (e *Engine) SetCritRecorder(cp *critpath.Recorder) { e.cp = cp }

// CritRecorder returns the installed critical-path recorder, or nil when
// dependency recording is off.
func (e *Engine) CritRecorder() *critpath.Recorder { return e.cp }

// CritBegin opens a labeled region on the process's critical-path
// timeline: time the proc spends (running or blocked) until the matching
// CritEnd is blamed to this label when the critical path passes through
// it. Regions nest; ClassDetail regions inherit the enclosing class.
func (p *Proc) CritBegin(component, name string, class trace.Class) {
	if cp := p.e.cp; cp != nil {
		cp.Begin(p.idx, component, name, class, p.e.now)
	}
}

// CritEnd closes the process's innermost critical-path region.
func (p *Proc) CritEnd() {
	if cp := p.e.cp; cp != nil {
		cp.End(p.idx, p.e.now)
	}
}

// CritProduce registers a data token (a frame path) as produced now.
// Only the first registration per token counts (its durable birth).
func (p *Proc) CritProduce(token string, bytes int64) {
	if cp := p.e.cp; cp != nil {
		cp.Produce(token, p.idx, p.e.now, bytes)
	}
}

// CritDepend records that the process consumed a token now; the recorder
// derives the dependency's slack (age at consumption) from its birth.
func (p *Proc) CritDepend(token, kind string) {
	if cp := p.e.cp; cp != nil {
		cp.Depend(token, kind, p.idx, p.e.now)
	}
}

// CritHop appends one provenance hop [start, now] to the token's lineage.
func (p *Proc) CritHop(key, hop string, start Time, bytes int64) {
	if cp := p.e.cp; cp != nil {
		cp.Hop(key, hop, p.idx, start, p.e.now, bytes)
	}
}

// CritBackground marks the process as background activity: it is never
// chosen as the critical-path root (its completion is not the workflow's).
func (p *Proc) CritBackground() {
	if cp := p.e.cp; cp != nil {
		cp.SetBackground(p.idx)
	}
}
