package capacity

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// evictLog records onEvict callbacks so tests can assert victim order.
type evictLog struct {
	paths []string
	spill bool // value returned to the store (mirror present?)
}

func (l *evictLog) hook(path string, size int64, consumed bool) bool {
	l.paths = append(l.paths, path)
	return l.spill
}

func TestLRUEvictionOrder(t *testing.T) {
	log := &evictLog{spill: true}
	s := NewStore("test/staging", 30, NewEvictor(PolicyLRU), false, nil, log.hook)

	for _, p := range []string{"a", "b", "c"} {
		if err := s.Reserve(nil, p, 10); err != nil {
			t.Fatalf("Reserve(%s): %v", p, err)
		}
	}
	if s.Used() != 30 || s.Len() != 3 {
		t.Fatalf("Used=%d Len=%d, want 30/3", s.Used(), s.Len())
	}

	// Refresh "a": the coldest entry is now "b".
	s.MarkConsumed("a")
	if err := s.Reserve(nil, "d", 10); err != nil {
		t.Fatalf("Reserve(d): %v", err)
	}
	if err := s.Reserve(nil, "e", 10); err != nil {
		t.Fatalf("Reserve(e): %v", err)
	}
	want := []string{"b", "c"}
	if len(log.paths) != len(want) || log.paths[0] != want[0] || log.paths[1] != want[1] {
		t.Fatalf("eviction order %v, want %v", log.paths, want)
	}
	if got := s.State("b"); got != StateSpilled {
		t.Fatalf("State(b) = %v, want spilled", got)
	}
	if got := s.State("a"); got != StateResident {
		t.Fatalf("State(a) = %v, want resident", got)
	}
}

func TestConsumedDropVictims(t *testing.T) {
	log := &evictLog{}
	s := NewStore("test/staging", 30, NewEvictor(PolicyConsumedDrop), false, nil, log.hook)

	for _, p := range []string{"a", "b", "c"} {
		if err := s.Reserve(nil, p, 10); err != nil {
			t.Fatalf("Reserve(%s): %v", p, err)
		}
	}
	// Consume "b" only: the policy must pick it over the older unconsumed "a".
	s.MarkConsumed("b")
	if err := s.Reserve(nil, "d", 10); err != nil {
		t.Fatalf("Reserve(d): %v", err)
	}
	if len(log.paths) != 1 || log.paths[0] != "b" {
		t.Fatalf("victims %v, want [b]", log.paths)
	}
	// No consumed frame left: the non-blocking TryReserve must refuse.
	if s.TryReserve("e", 10) {
		t.Fatal("TryReserve admitted with no consumed victim")
	}
	// Forced eviction (shrink) takes the oldest entry regardless.
	s.Resize(20)
	if len(log.paths) != 2 || log.paths[1] != "a" {
		t.Fatalf("victims after shrink %v, want [b a]", log.paths)
	}
	if s.State("a") != StateDropped {
		t.Fatalf("State(a) = %v, want dropped (no mirror)", s.State("a"))
	}
	if s.met.ForcedEvictions != 1 || s.met.DroppedFrames != 1 {
		t.Fatalf("metrics %+v, want 1 forced / 1 dropped", *s.met)
	}
}

func TestNoSpace(t *testing.T) {
	s := NewStore("node0/staging", 16, NewEvictor(PolicyLRU), false, nil, nil)
	err := s.Reserve(nil, "big", 17)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Reserve over budget: err = %v, want ErrNoSpace", err)
	}
	if !strings.Contains(err.Error(), "node0/staging") || !strings.Contains(err.Error(), "17 B") {
		t.Fatalf("ErrNoSpace message lacks context: %q", err)
	}
	if s.met.NoSpace != 1 {
		t.Fatalf("NoSpace counter = %d, want 1", s.met.NoSpace)
	}
	if s.TryReserve("big", 17) {
		t.Fatal("TryReserve admitted an over-budget frame")
	}
}

func TestOverwriteReleasesOldBytes(t *testing.T) {
	s := NewStore("t", 20, NewEvictor(PolicyLRU), false, nil, nil)
	if err := s.Reserve(nil, "a", 15); err != nil {
		t.Fatal(err)
	}
	// Rewriting the same path must release the old payload first, not evict.
	if err := s.Reserve(nil, "a", 20); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if s.Used() != 20 || s.Len() != 1 || s.met.Evictions != 0 {
		t.Fatalf("Used=%d Len=%d Evictions=%d after overwrite", s.Used(), s.Len(), s.met.Evictions)
	}
}

func TestRemoveAndClear(t *testing.T) {
	log := &evictLog{}
	s := NewStore("t", 20, NewEvictor(PolicyLRU), false, nil, log.hook)
	if err := s.Reserve(nil, "a", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Reserve(nil, "b", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Reserve(nil, "c", 10); err != nil { // evicts "a" -> tombstone
		t.Fatal(err)
	}
	if s.State("a") != StateDropped {
		t.Fatalf("State(a) = %v, want dropped", s.State("a"))
	}
	s.Remove("a") // forget the history
	if s.State("a") != StateUnknown {
		t.Fatalf("State(a) after Remove = %v, want unknown", s.State("a"))
	}
	s.Remove("b")
	if s.Used() != 10 || s.Len() != 1 {
		t.Fatalf("Used=%d Len=%d after Remove(b)", s.Used(), s.Len())
	}
	s.Clear()
	if s.Used() != 0 || s.Len() != 0 || s.State("c") != StateUnknown {
		t.Fatalf("Clear left Used=%d Len=%d State(c)=%v", s.Used(), s.Len(), s.State("c"))
	}
}

func TestResize(t *testing.T) {
	s := NewStore("t", 0, NewEvictor(PolicyLRU), false, nil, nil)
	for _, p := range []string{"a", "b", "c", "d"} {
		if err := s.Reserve(nil, p, 10); err != nil {
			t.Fatal(err)
		}
	}
	// Infinite budget tracked 40 B; shrinking to 25 must force out a and b.
	s.Resize(25)
	if s.Used() != 20 || s.Len() != 2 {
		t.Fatalf("Used=%d Len=%d after shrink, want 20/2", s.Used(), s.Len())
	}
	if s.met.ForcedEvictions != 2 {
		t.Fatalf("ForcedEvictions = %d, want 2", s.met.ForcedEvictions)
	}
	if s.State("a") != StateDropped || s.State("c") != StateResident {
		t.Fatalf("states a=%v c=%v after shrink", s.State("a"), s.State("c"))
	}
	s.Resize(0) // back to infinite
	if s.Cap() != 0 {
		t.Fatalf("Cap = %d after Resize(0)", s.Cap())
	}
}

func TestCacheStoreAccounting(t *testing.T) {
	log := &evictLog{}
	s := NewStore("node1/cache", 20, NewEvictor(PolicyLRU), true, nil, log.hook)
	if !s.TryReserve("a", 10) || !s.TryReserve("b", 10) {
		t.Fatal("TryReserve refused with space available")
	}
	if !s.TryReserve("c", 10) { // evicts "a"
		t.Fatal("TryReserve refused with an evictable victim")
	}
	if s.met.CacheEvictions != 1 || s.met.Evictions != 0 {
		t.Fatalf("metrics %+v, want cache-only eviction", *s.met)
	}
	// Cache stores keep no tombstones: an evicted path reads as unknown.
	if s.State("a") != StateUnknown {
		t.Fatalf("State(a) = %v, want unknown (no cache tombstones)", s.State("a"))
	}
	if s.TryReserve("huge", 21) {
		t.Fatal("TryReserve admitted an over-budget frame")
	}
	if s.met.CacheBypasses != 1 {
		t.Fatalf("CacheBypasses = %d, want 1", s.met.CacheBypasses)
	}
}

// TestBackpressure runs a producer/consumer pair against a consumed-drop
// store inside a real engine: the producer must stall exactly until the
// consumer frees space, with the wait accounted in StallNanos.
func TestBackpressure(t *testing.T) {
	eng := sim.NewEngine(1)
	met := &Metrics{}
	s := NewStore("node0/staging", 20, NewEvictor(PolicyConsumedDrop), false, met, nil)

	var produced []string
	eng.Spawn("producer", func(p *sim.Proc) {
		for _, path := range []string{"f0", "f1", "f2", "f3"} {
			if err := s.Reserve(p, path, 10); err != nil {
				t.Errorf("Reserve(%s): %v", path, err)
				return
			}
			produced = append(produced, path)
			p.Sleep(time.Millisecond)
		}
	})
	eng.Spawn("consumer", func(p *sim.Proc) {
		p.Sleep(50 * time.Millisecond)
		s.MarkConsumed("f0")
		p.Sleep(50 * time.Millisecond)
		s.MarkConsumed("f1")
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(produced) != 4 {
		t.Fatalf("produced %v, want all 4 frames", produced)
	}
	if met.Stalls != 2 {
		t.Fatalf("Stalls = %d, want 2 (f2 and f3 each waited)", met.Stalls)
	}
	// f2 waited from ~1ms to 50ms, f3 from ~51ms to 100ms: ~98ms total.
	if got := met.StallTime(); got < 90*time.Millisecond || got > 110*time.Millisecond {
		t.Fatalf("StallTime = %v, want ~98ms", got)
	}
	if met.Evictions != 2 { // f0 and f1 evicted once consumed
		t.Fatalf("Evictions = %d, want 2", met.Evictions)
	}
}

func TestNilStoreSafe(t *testing.T) {
	var s *Store
	if err := s.Reserve(nil, "a", 1<<40); err != nil {
		t.Fatalf("nil Reserve: %v", err)
	}
	if !s.TryReserve("a", 1<<40) {
		t.Fatal("nil TryReserve refused")
	}
	s.MarkConsumed("a")
	s.Remove("a")
	s.Resize(10)
	s.Clear()
	if s.Name() != "" || s.Cap() != 0 || s.Used() != 0 || s.Len() != 0 {
		t.Fatal("nil getters not zero")
	}
	if s.State("a") != StateUnknown {
		t.Fatal("nil State not unknown")
	}
}

// TestNilStoreZeroAllocs locks in the zero-cost-when-off contract: every
// nil-store operation on the hot path allocates nothing.
func TestNilStoreZeroAllocs(t *testing.T) {
	var s *Store
	allocs := testing.AllocsPerRun(1000, func() {
		_ = s.Reserve(nil, "frame", 4096)
		s.MarkConsumed("frame")
		_ = s.State("frame")
		s.Remove("frame")
	})
	if allocs != 0 {
		t.Fatalf("nil-store ops allocate %v/op, want 0", allocs)
	}
}

func TestSpecEnabledAndValidate(t *testing.T) {
	var nilSpec *Spec
	if nilSpec.Enabled() {
		t.Fatal("nil spec enabled")
	}
	if err := nilSpec.Validate(time.Hour); err != nil {
		t.Fatalf("nil spec invalid: %v", err)
	}
	if (&Spec{}).Enabled() {
		t.Fatal("zero spec enabled")
	}
	if !(&Spec{StagingBytes: 1}).Enabled() || !(&Spec{CacheBytes: 1}).Enabled() {
		t.Fatal("finite budget not enabled")
	}
	if !(&Spec{Plan: []Provision{{At: time.Second}}}).Enabled() {
		t.Fatal("planned spec not enabled")
	}

	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"negative staging", Spec{StagingBytes: -1}, "StagingBytes -1 < 0"},
		{"negative cache", Spec{CacheBytes: -2}, "CacheBytes -2 < 0"},
		{"unknown policy", Spec{Policy: "mru"}, `unknown eviction policy "mru"`},
		{"negative plan time", Spec{Plan: []Provision{{At: -time.Second}}}, "plan event 0 at -1s < 0"},
		{"plan beyond horizon", Spec{Plan: []Provision{{At: 2 * time.Hour}}}, "beyond the run horizon 1h0m0s"},
		{"negative plan budget", Spec{Plan: []Provision{{StagingBytes: -1}}}, "negative budget"},
	}
	for _, c := range cases {
		err := c.spec.Validate(time.Hour)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	ok := Spec{StagingBytes: 1 << 30, CacheBytes: 1 << 20, Policy: PolicyConsumedDrop,
		Plan: []Provision{{At: time.Minute, StagingBytes: 1 << 20}}}
	if err := ok.Validate(time.Hour); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	// Zero horizon skips the bound check (unknown run length).
	if err := ok.Validate(0); err != nil {
		t.Fatalf("valid spec rejected at horizon 0: %v", err)
	}
}

func TestNewEvictorUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEvictor(unknown) did not panic")
		}
	}()
	NewEvictor("fifo")
}

func TestMetricsAddStringZero(t *testing.T) {
	var m Metrics
	if !m.Zero() {
		t.Fatal("zero Metrics not Zero")
	}
	m.Add(Metrics{Evictions: 2, EvictedBytes: 20, SpilledFrames: 1, SpilledBytes: 10,
		Stalls: 3, StallNanos: int64(time.Second), NoSpace: 1})
	if m.Zero() {
		t.Fatal("populated Metrics Zero")
	}
	s := m.String()
	for _, want := range []string{"evicted=2/20B", "spilled=1/10B", "stalls=3/1s", "nospace=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String %q lacks %q", s, want)
		}
	}
}

// BenchmarkCapacityEvict measures the steady-state eviction path: a full LRU
// store where every Reserve evicts exactly one victim.
func BenchmarkCapacityEvict(b *testing.B) {
	const frames = 1024
	s := NewStore("bench", frames*4096, NewEvictor(PolicyLRU), false, nil, nil)
	names := make([]string, frames+1)
	for i := range names {
		names[i] = "frame" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
	}
	for i := 0; i < frames; i++ {
		if err := s.Reserve(nil, names[i], 4096); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Reserve(nil, names[i%len(names)], 4096); err != nil {
			b.Fatal(err)
		}
	}
}
