package dyad

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// BenchmarkProduceConsume measures simulator throughput of full DYAD
// produce+consume round trips (host time per simulated transfer).
func BenchmarkProduceConsume(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine(1)
	cl := cluster.New(e, cluster.CoronaProfile(2))
	sys := New(cl, cl.Node(0), DefaultParams())
	payload := vfs.BytesPayload(make([]byte, 1<<16))
	e.Spawn("prod", func(p *sim.Proc) {
		c := sys.NewClient(cl.Node(0))
		for i := 0; i < b.N; i++ {
			c.Produce(p, nil, fmt.Sprintf("/flow/f%d", i), payload)
		}
	})
	e.Spawn("cons", func(p *sim.Proc) {
		c := sys.NewClient(cl.Node(1))
		for i := 0; i < b.N; i++ {
			c.Consume(p, nil, fmt.Sprintf("/flow/f%d", i))
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
