package cluster

import (
	"math"
	"sort"
	"strings"
	"testing"
	"time"
)

// Every declared parameter must be gettable, settable, and round-trip
// through the SI representation exactly.
func TestSpecParamRoundTrip(t *testing.T) {
	spec := CoronaProfile(2)
	for _, name := range SpecParamNames() {
		v, err := spec.Param(name)
		if err != nil {
			t.Fatalf("Param(%s): %v", name, err)
		}
		want := v * 1.5
		if err := spec.SetParam(name, want); err != nil {
			t.Fatalf("SetParam(%s, %g): %v", name, want, err)
		}
		got, err := spec.Param(name)
		if err != nil {
			t.Fatal(err)
		}
		// Duration-backed params quantize to 1ns; everything else is exact.
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: round-trip %g -> %g", name, want, got)
		}
	}
}

func TestSpecParamNamesSortedAndRecognized(t *testing.T) {
	names := SpecParamNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("SpecParamNames not sorted: %v", names)
	}
	for _, name := range names {
		if !IsSpecParam(name) {
			t.Errorf("IsSpecParam(%s) = false", name)
		}
	}
	if IsSpecParam("ssd.read") || IsSpecParam("") || IsSpecParam("kvs.commit") {
		t.Error("IsSpecParam accepted a non-Spec name")
	}
}

func TestSpecParamRejectsInvalid(t *testing.T) {
	spec := CoronaProfile(1)
	if _, err := spec.Param("no.such"); err == nil {
		t.Error("Param(no.such) succeeded")
	}
	if err := spec.SetParam("no.such", 1); err == nil {
		t.Error("SetParam(no.such) succeeded")
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -1} {
		if err := spec.SetParam(ParamSSDReadBW, v); err == nil {
			t.Errorf("SetParam(ssd.read_bw, %v) succeeded", v)
		}
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), -1e-6} {
		if err := spec.SetParam(ParamNICOverhead, v); err == nil {
			t.Errorf("SetParam(nic.overhead, %v) succeeded", v)
		}
	}
	// Rejected sets must leave the spec untouched.
	if spec != CoronaProfile(1) {
		t.Error("rejected SetParam mutated the spec")
	}
}

func TestEncodeParamsDeterministic(t *testing.T) {
	a := CoronaProfile(4)
	b := CoronaProfile(4)
	ea, eb := a.EncodeParams(), b.EncodeParams()
	if ea != eb {
		t.Fatalf("identical specs encode differently:\n%s\n%s", ea, eb)
	}
	for _, name := range SpecParamNames() {
		if !strings.Contains(ea, name+"=") {
			t.Errorf("encoding missing %s: %s", name, ea)
		}
	}
	if err := b.SetParam(ParamSSDWriteLat, 123*time.Microsecond.Seconds()); err != nil {
		t.Fatal(err)
	}
	if b.EncodeParams() == ea {
		t.Error("encoding did not change after SetParam")
	}
}
