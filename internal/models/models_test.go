package models

import (
	"math"
	"testing"
	"time"
)

func TestRegistryMatchesTableI(t *testing.T) {
	reg := Registry()
	if len(reg) != 4 {
		t.Fatalf("registry has %d models, want 4", len(reg))
	}
	wantAtoms := map[string]int{
		"JAC": 23_558, "ApoA1": 92_224, "F1 ATPase": 327_506, "STMV": 1_066_628,
	}
	wantKiB := map[string]float64{
		"JAC": 644.21, "ApoA1": 2.46 * 1024, "F1 ATPase": 8.75 * 1024, "STMV": 28.48 * 1024,
	}
	for _, m := range reg {
		if m.Atoms != wantAtoms[m.Name] {
			t.Errorf("%s atoms = %d, want %d", m.Name, m.Atoms, wantAtoms[m.Name])
		}
		gotKiB := float64(m.FrameBytes()) / 1024
		if math.Abs(gotKiB-wantKiB[m.Name])/wantKiB[m.Name] > 0.005 {
			t.Errorf("%s frame = %.2f KiB, want ~%.2f", m.Name, gotKiB, wantKiB[m.Name])
		}
	}
}

func TestStrideFrequencyMatchesTableII(t *testing.T) {
	// Table II: every model's default stride yields ~0.82 s between frames.
	// (The paper's own table rounds: 92 strides * 8.64 ms = 0.795 s for
	// F1 ATPase, printed as 0.82 s; allow that slack.)
	for _, m := range Registry() {
		f := m.DefaultFrequency().Seconds()
		if math.Abs(f-0.82) > 0.03 {
			t.Errorf("%s frequency = %.4f s, want ~0.82 s", m.Name, f)
		}
	}
}

func TestMsPerStepMatchesTableII(t *testing.T) {
	want := map[string]float64{
		"JAC": 0.93, "ApoA1": 2.79, "F1 ATPase": 8.64, "STMV": 29.29,
	}
	for _, m := range Registry() {
		if math.Abs(m.MsPerStep()-want[m.Name]) > 0.01 {
			t.Errorf("%s ms/step = %.3f, want %.2f", m.Name, m.MsPerStep(), want[m.Name])
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"JAC", "ApoA1", "F1 ATPase", "STMV", "F1ATPase"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("ubiquitin"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestFrequencyScalesWithStride(t *testing.T) {
	jac, _ := ByName("JAC")
	if jac.Frequency(10) != 10*jac.StepDuration() {
		t.Fatal("frequency != stride * step duration")
	}
	if jac.Frequency(1) >= jac.Frequency(50) {
		t.Fatal("frequency not increasing in stride")
	}
}

func TestStepDurationOrdering(t *testing.T) {
	// Bigger models are slower: step duration increases down Table I.
	reg := Registry()
	for i := 1; i < len(reg); i++ {
		if reg[i].StepDuration() <= reg[i-1].StepDuration() {
			t.Fatalf("%s step (%v) not slower than %s (%v)",
				reg[i].Name, reg[i].StepDuration(), reg[i-1].Name, reg[i-1].StepDuration())
		}
	}
	if reg[0].StepDuration() > time.Millisecond {
		t.Fatalf("JAC step %v implausible", reg[0].StepDuration())
	}
}

func TestCustomModel(t *testing.T) {
	m, err := Custom("LIG", 50_000, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stride != 410 {
		t.Fatalf("derived stride %d, want 410 (0.82s at 500 steps/s)", m.Stride)
	}
	if math.Abs(m.DefaultFrequency().Seconds()-0.82) > 0.01 {
		t.Fatalf("custom frequency %v", m.DefaultFrequency())
	}
	if _, err := Custom("", 10, 1, 0); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := Custom("x", 0, 1, 0); err == nil {
		t.Error("zero atoms accepted")
	}
	if _, err := Custom("x", 10, 0, 0); err == nil {
		t.Error("zero rate accepted")
	}
	explicit, _ := Custom("y", 10, 100, 7)
	if explicit.Stride != 7 {
		t.Fatalf("explicit stride %d", explicit.Stride)
	}
}
