package main

import (
	"fmt"
	"io"
	"time"

	"repro"
)

// runCalibSubcommand handles the calibrate and search subcommands. Fit
// and search reports go to out (stdout or -o) and are byte-identical for
// any -j / -pdes-j; progress goes to stderr and is suppressed by -q.
func runCalibSubcommand(cmd string, rest []string, co repro.CalibOptions, out, stderr io.Writer, quiet bool) int {
	fatal := func(err error) int {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	switch cmd {
	case "calibrate":
		if len(rest) > 0 {
			fmt.Fprintf(stderr, "experiments: calibrate takes no further arguments (got %v)\n", rest)
			return 2
		}
		eff := co.Defaults()
		if !quiet {
			fmt.Fprintf(stderr, "calibrate (reps=%d frames=%d budget=%d quick=%v) ...",
				eff.Reps, eff.Frames, eff.Budget, eff.Quick)
		}
		start := time.Now()
		fit, err := repro.Calibrate(repro.DefaultCalibSpace(), co)
		if err != nil {
			if !quiet {
				fmt.Fprintln(stderr)
			}
			return fatal(err)
		}
		if !quiet {
			fmt.Fprintf(stderr, " done in %.2fs (%d evaluations)\n", time.Since(start).Seconds(), fit.Evals)
		}
		fit.Render(out)
		return 0

	case "search":
		if len(rest) == 0 {
			fmt.Fprintln(stderr, "experiments: search needs a goal id:")
			for _, g := range repro.CalibGoals() {
				fmt.Fprintf(stderr, "  %-18s %s\n", g.ID, g.Title)
			}
			return 2
		}
		for i, id := range rest {
			if !quiet {
				fmt.Fprintf(stderr, "[%d/%d] search %s ...", i+1, len(rest), id)
			}
			start := time.Now()
			rep, err := repro.RunCalibGoal(id, co)
			if err != nil {
				if !quiet {
					fmt.Fprintln(stderr)
				}
				return fatal(err)
			}
			if !quiet {
				fmt.Fprintf(stderr, " done in %.2fs\n", time.Since(start).Seconds())
			}
			repro.RenderReport(out, rep)
			fmt.Fprintln(out)
		}
		return 0
	}
	fmt.Fprintf(stderr, "experiments: unknown subcommand %q\n", cmd)
	return 2
}
