package trace

import (
	"fmt"
	"io"
	"strconv"
	"time"
)

// Run is one traced workflow run: a label (config + repetition), its span
// stream, and optional sampled counter tracks (utilization curves from
// internal/metrics). WriteChrome renders each run as one Chrome trace
// process.
type Run struct {
	Label    string
	Spans    []Span
	Counters []Counter
	// Flows are per-frame provenance arrows (internal/critpath lineages)
	// stitched across proc tracks; empty unless the run recorded a
	// dependency graph.
	Flows []Flow
}

// Flow is one Chrome flow event: the start (ph "s") or a step (ph "f",
// binding point "e") of a named arrow with a shared ID, anchored to a proc
// track at a virtual time.
type Flow struct {
	Name  string
	ID    int64
	Proc  string
	At    time.Duration
	Start bool
}

// Counter is one sampled counter track: a value per virtual sample time.
// Perfetto renders counter tracks as line charts under the span rows.
type Counter struct {
	Name   string
	Times  []time.Duration
	Values []float64
}

// WriteChrome serializes traced runs in the Chrome trace-event JSON format
// (the "JSON Object Format" with a traceEvents array), loadable in
// Perfetto and chrome://tracing. Each run becomes one process (pid = run
// index + 1) named by its label; each simulated proc becomes one thread
// (tid = order of first appearance). Spans are complete events (ph "X")
// with ts/dur in virtual microseconds at nanosecond resolution; zero-length
// spans become instant events (ph "i").
//
// The output is written with a fixed field order and fixed number
// formatting, so a deterministic span stream serializes to deterministic
// bytes — the property the -j1 vs -j8 trace identity check relies on. It is
// a thin loop over ChromeStream, so buffered and streamed exports of the
// same runs are byte-identical by construction.
func WriteChrome(w io.Writer, runs []Run) error {
	cs := NewChromeStream(w)
	for _, run := range runs {
		rec := cs.StartRun(run.Label)
		for _, s := range run.Spans {
			cs.span(rec, s)
		}
		for _, f := range run.Flows {
			cs.flow(rec, f)
		}
		cs.EndRun(rec, run.Counters)
	}
	return cs.Close()
}

// us renders a virtual duration as microseconds at nanosecond resolution:
// an integer when whole, otherwise exactly three fractional digits. Fixed
// formatting keeps the serialized trace byte-stable.
func us(d time.Duration) string {
	ns := int64(d)
	if ns%1000 == 0 {
		return strconv.FormatInt(ns/1000, 10)
	}
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// quote JSON-escapes a string (names and labels are ASCII identifiers, but
// escaping keeps arbitrary attributes safe).
func quote(s string) string { return strconv.Quote(s) }
