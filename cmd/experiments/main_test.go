package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the command and returns (exit code, stdout, stderr). The
// tests below pin the output-routing contract: report bytes (text tables,
// CSV, JSON) go to stdout only; progress, memstats, artifact notes, usage,
// and errors go to stderr only — so shell redirection of either stream
// never mixes the two.
func capture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestStdoutCarriesOnlyReports(t *testing.T) {
	code, out, errOut := capture(t, "table1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.HasPrefix(out, "== table1") {
		t.Fatalf("stdout does not start with the report header: %q", out[:min(len(out), 60)])
	}
	for _, frag := range []string{"[1/1]", "done in", "experiment(s) in"} {
		if strings.Contains(out, frag) {
			t.Fatalf("progress fragment %q leaked onto stdout", frag)
		}
		if !strings.Contains(errOut, frag) {
			t.Fatalf("progress fragment %q missing from stderr", frag)
		}
	}
}

func TestQuietSuppressesStderr(t *testing.T) {
	code, out, errOut := capture(t, "-q", "table1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if errOut != "" {
		t.Fatalf("-q left stderr output: %q", errOut)
	}
	if !strings.Contains(out, "== table1") {
		t.Fatal("report missing from stdout")
	}
}

// TestArtifactFlagsKeepStreamsSeparate drives every output-shaping flag at
// once (-o, -q off, -memstats, -trace, -metrics, -metrics-prom) on a real
// experiment and checks stdout stays empty (routed to -o), the report file
// holds the tables, and every progress/artifact note lands on stderr.
func TestArtifactFlagsKeepStreamsSeparate(t *testing.T) {
	dir := t.TempDir()
	oPath := filepath.Join(dir, "report.txt")
	tPath := filepath.Join(dir, "trace.json")
	mPath := filepath.Join(dir, "metrics.csv")
	pPath := filepath.Join(dir, "metrics.prom")
	code, out, errOut := capture(t, "-quick", "-reps", "1", "-frames", "4",
		"-o", oPath, "-memstats", "-trace", tPath, "-metrics", mPath, "-metrics-prom", pPath, "fig5")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if out != "" {
		t.Fatalf("stdout not empty with -o: %q", out)
	}
	report, err := os.ReadFile(oPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"== fig5 ", "== fig5-trace ", "== fig5-metrics "} {
		if !strings.Contains(string(report), want) {
			t.Errorf("report file missing %q", want)
		}
	}
	for _, want := range []string{"[memstats] fig5:", "traced run(s)", "sampled run(s)", "wrote metrics snapshot"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("stderr missing %q:\n%s", want, errOut)
		}
	}
	for _, path := range []string{tPath, mPath, pPath} {
		if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
			t.Errorf("artifact %s missing or empty (err %v)", path, err)
		}
	}
}

func TestListGoesToStdout(t *testing.T) {
	code, out, errOut := capture(t, "-list")
	if code != 0 || errOut != "" {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "fig5") || !strings.Contains(out, "faultsweep") {
		t.Fatalf("listing incomplete: %q", out)
	}
}

func TestErrorsGoToStderr(t *testing.T) {
	code, out, errOut := capture(t, "no-such-experiment")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if out != "" {
		t.Fatalf("error run wrote to stdout: %q", out)
	}
	if !strings.Contains(errOut, "experiments:") {
		t.Fatalf("error missing from stderr: %q", errOut)
	}

	code, out, errOut = capture(t)
	if code != 2 || out != "" || !strings.Contains(errOut, "no experiment ids") {
		t.Fatalf("no-args: exit %d stdout %q stderr %q", code, out, errOut)
	}

	code, out, errOut = capture(t, "-definitely-not-a-flag")
	if code != 2 || out != "" || !strings.Contains(errOut, "flag") {
		t.Fatalf("bad flag: exit %d stdout %q stderr %q", code, out, errOut)
	}
}

// Nonsense counts are usage errors caught before any simulation: exit 2,
// one line on stderr, nothing on stdout. An explicit -reps 0 is rejected
// (0 only means "paper default" when the flag is omitted).
func TestFlagValidationUpFront(t *testing.T) {
	cases := [][]string{
		{"-reps", "0", "table1"},
		{"-reps", "-3", "table1"},
		{"-frames", "0", "fig5"},
		{"-frames", "-1", "fig5"},
		{"-j", "-2", "table1"},
		{"-pdes-j", "-1", "table1"},
		{"-headstart", "-5ms", "fig5"},
		{"-budget", "-1", "calibrate"},
	}
	for _, args := range cases {
		code, out, errOut := capture(t, args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
		if out != "" {
			t.Errorf("%v: usage error leaked to stdout: %q", args, out)
		}
		if !strings.HasPrefix(errOut, "experiments: ") || strings.Count(errOut, "\n") != 1 {
			t.Errorf("%v: want one 'experiments: ...' line on stderr, got %q", args, errOut)
		}
	}
	// Omitted -reps/-frames still mean the paper defaults.
	if code, _, errOut := capture(t, "-q", "table1"); code != 0 {
		t.Fatalf("defaults rejected: exit %d, stderr %s", code, errOut)
	}
}

func TestCalibrateSmoke(t *testing.T) {
	code, out, errOut := capture(t, "-q", "-quick", "-reps", "1", "-frames", "8", "-budget", "2", "calibrate")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if errOut != "" {
		t.Fatalf("-q left stderr output: %q", errOut)
	}
	for _, want := range []string{"== calibrate", "fitted parameters:", "headstart", "fig5.cons_total.xfs_over_dyad"} {
		if !strings.Contains(out, want) {
			t.Errorf("fit report missing %q:\n%s", want, out)
		}
	}
	// Subcommand misuse is a usage error.
	if code, _, _ := capture(t, "calibrate", "extra"); code != 2 {
		t.Errorf("calibrate with extra args: exit %d, want 2", code)
	}
	if code, _, _ := capture(t, "-json", "calibrate"); code != 2 {
		t.Errorf("-json calibrate: exit %d, want 2", code)
	}
}

func TestSearchSmoke(t *testing.T) {
	code, out, errOut := capture(t, "-q", "-quick", "-reps", "1", "-frames", "8", "-budget", "2", "search", "xfs-beats-dyad")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if errOut != "" {
		t.Fatalf("-q left stderr output: %q", errOut)
	}
	if !strings.Contains(out, "== search:xfs-beats-dyad") {
		t.Fatalf("search report missing header:\n%s", out)
	}
	// No goal: usage error listing the goals on stderr.
	code, out, errOut = capture(t, "search")
	if code != 2 || out != "" {
		t.Fatalf("bare search: exit %d stdout %q", code, out)
	}
	for _, want := range []string{"xfs-beats-dyad", "fault-breaks-10x"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("goal listing missing %q: %s", want, errOut)
		}
	}
	// Unknown goal: runtime error, exit 1, stderr only.
	code, out, errOut = capture(t, "search", "no-such-goal")
	if code != 1 || out != "" || !strings.Contains(errOut, "unknown search goal") {
		t.Fatalf("unknown goal: exit %d stdout %q stderr %q", code, out, errOut)
	}
}

func TestExplainSmoke(t *testing.T) {
	code, out, errOut := capture(t, "-q", "-quick", "-reps", "1", "-frames", "8", "explain", "fig5")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if errOut != "" {
		t.Fatalf("-q left stderr output: %q", errOut)
	}
	for _, want := range []string{"== explain:fig5", "makespan:", "attribution:", "top edge:", "gap_share"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain report missing %q:\n%s", want, out)
		}
	}
	// Subcommand misuse is a usage error: exit 2, one line, stdout clean.
	for _, args := range [][]string{
		{"explain"},
		{"-json", "explain", "fig5"},
		{"-csv", "explain", "fig5"},
	} {
		code, out, errOut := capture(t, args...)
		if code != 2 || out != "" {
			t.Errorf("%v: exit %d stdout %q, want usage error", args, code, out)
		}
		if !strings.HasPrefix(errOut, "experiments: ") || strings.Count(errOut, "\n") != 1 {
			t.Errorf("%v: want one 'experiments: ...' line on stderr, got %q", args, errOut)
		}
	}
	// The bare-explain usage line lists the available targets.
	_, _, errOut = capture(t, "explain")
	for _, want := range []string{"fig5", "fig6"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("target listing missing %q: %s", want, errOut)
		}
	}
	// Unknown target: runtime error, exit 1, stderr only.
	code, out, errOut = capture(t, "explain", "no-such-target")
	if code != 1 || out != "" || !strings.Contains(errOut, "unknown explain target") {
		t.Fatalf("unknown target: exit %d stdout %q stderr %q", code, out, errOut)
	}
}

// TestCritpathStreamsAndArtifacts runs a real experiment with -critpath:
// the blame report joins the other reports on stdout (or -o), the
// waterfall CSV lands in the named file, and the artifact note goes to
// stderr only.
func TestCritpathStreamsAndArtifacts(t *testing.T) {
	dir := t.TempDir()
	wPath := filepath.Join(dir, "waterfall.csv")
	code, out, errOut := capture(t, "-quick", "-reps", "1", "-frames", "4",
		"-critpath", wPath, "fig5")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "== fig5-critpath ") {
		t.Fatalf("stdout missing blame report:\n%s", out)
	}
	if strings.Contains(out, "frame lineage set(s)") {
		t.Fatal("artifact note leaked onto stdout")
	}
	if !strings.Contains(errOut, "frame lineage set(s)") {
		t.Fatalf("stderr missing waterfall note:\n%s", errOut)
	}
	wf, err := os.ReadFile(wPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(wf), "run,frame,hop,proc,start_us,dur_us,bytes\n") {
		t.Fatalf("waterfall header wrong: %q", string(wf[:min(len(wf), 60)]))
	}
	// Mutually exclusive with -trace-stream: flow-event merging needs
	// buffered spans.
	code, out, errOut = capture(t, "-critpath", wPath, "-trace-stream", filepath.Join(dir, "t.json"), "fig5")
	if code != 1 || out != "" || !strings.Contains(errOut, "mutually exclusive") {
		t.Fatalf("-critpath -trace-stream: exit %d stdout %q stderr %q", code, out, errOut)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
