// Package capacity models finite burst-buffer budgets for the node-local
// staging layers (DYAD's NVMe staging area and RAM consumer cache, the XFS
// staging filesystem). The real systems the paper studies stage frames on
// storage that is very much finite — Tessier et al. model DataWarp
// burst-buffer capacity as a first-class provisionable resource — and the
// regime where DYAD's advantage erodes is exactly the one where frames
// overflow node-local storage. This package supplies the bookkeeping:
//
//   - A Store tracks per-node byte budgets. A zero budget means infinite,
//     and a nil *Store is valid and inert (every method is nil-safe at the
//     cost of one nil check), so the capacity-off path keeps the
//     zero-cost-when-off contract of the tracing and metrics layers.
//   - Deterministic eviction policies behind the Evictor interface: "lru"
//     (least-recently-accessed victim) and "consumed-drop" (oldest
//     already-consumed frame; never sacrifices unread data, producing
//     back-pressure instead).
//   - Spill accounting: an evicted-but-unconsumed frame whose deployment
//     has a shared-filesystem mirror (DYAD's LustreFallback write-through)
//     is "spilled" — the mirror copy survives and later fetches degrade to
//     it; without a mirror the frame is dropped and later fetches fail with
//     ErrEvicted.
//   - Producer back-pressure: a write that cannot make space (no evictable
//     victim, but the frame would fit) blocks on a sim.Signal until
//     consumption or eviction frees bytes, accounted as ClassBackpressure
//     span time. A frame larger than the whole budget fails fast with
//     ErrNoSpace — never a hang (runs with finite capacity arm the engine
//     watchdog).
//
// Determinism contract: all Store state is mutated inside serialized event
// execution, victims come from evictor-owned lists (never map iteration),
// and stall wake-ups broadcast in waiter arrival order — a run with finite
// capacity is byte-identical across worker and shard counts.
package capacity

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Sentinel errors of the capacity layer. Backends wrap them with context so
// call sites test failure classes with errors.Is, mirroring the faults
// package vocabulary.
var (
	// ErrNoSpace marks a write that can never fit: the payload alone
	// exceeds the store's whole byte budget. It surfaces instead of a
	// blocked-forever producer.
	ErrNoSpace = errors.New("capacity: no space")
	// ErrEvicted marks a read of a frame that was evicted from its staging
	// store. If the frame was spilled to a shared mirror the caller can
	// degrade to it; otherwise the data is gone.
	ErrEvicted = errors.New("capacity: frame evicted")
)

// State classifies what a store knows about a path.
type State uint8

const (
	// StateUnknown: the store never held the path (or forgot it via Remove).
	StateUnknown State = iota
	// StateResident: the payload is in the store.
	StateResident
	// StateSpilled: evicted, but a shared-mirror copy survives.
	StateSpilled
	// StateDropped: evicted with no surviving copy.
	StateDropped
)

// String returns the state name used in errors and tests.
func (s State) String() string {
	switch s {
	case StateResident:
		return "resident"
	case StateSpilled:
		return "spilled"
	case StateDropped:
		return "dropped"
	}
	return "unknown"
}

// Eviction policy names (Spec.Policy).
const (
	// PolicyLRU evicts the least-recently-accessed frame. Consumption
	// counts as an access, so in a streaming workload the victims are the
	// oldest consumed frames first and, under real pressure, the oldest
	// unconsumed in-flight frames — which spill to the mirror or drop.
	PolicyLRU = "lru"
	// PolicyConsumedDrop evicts the oldest already-consumed frame and never
	// sacrifices unread data: when every resident frame is still unconsumed
	// the writer blocks (back-pressure), bounding the producer/consumer
	// in-flight window by the byte budget.
	PolicyConsumedDrop = "consumed-drop"
)

// Policies returns the known eviction policy names.
func Policies() []string { return []string{PolicyLRU, PolicyConsumedDrop} }

// Entry is one resident frame of a store. The evictor threads entries on an
// intrusive list, so policy bookkeeping allocates nothing beyond the entry.
type Entry struct {
	Path     string
	Size     int64
	Consumed bool

	prev, next *Entry
}

// Evictor is a pluggable, deterministic eviction policy. The store calls
// the hooks on every mutation; Victim picks the next frame to evict (nil
// when the policy refuses — the store then applies back-pressure, or evicts
// unconditionally with forced=true on a shrinking provision).
type Evictor interface {
	// Name returns the policy name (a Spec.Policy value).
	Name() string
	// Reset empties the policy state (broker crash wiping a cache).
	Reset()
	// Added records a newly inserted entry.
	Added(e *Entry)
	// Accessed records a read of a resident entry.
	Accessed(e *Entry)
	// Removed unlinks an entry (eviction, unlink, overwrite).
	Removed(e *Entry)
	// Victim returns the next entry to evict, or nil if the policy has no
	// willing victim. With forced set the policy must return some entry
	// whenever one is resident (capacity shrank below occupancy).
	Victim(forced bool) *Entry
}

// NewEvictor returns a fresh evictor for the named policy; the empty string
// defaults to LRU. Unknown names panic — Spec.Validate rejects them before
// any store is built, so reaching the panic is a programming error.
func NewEvictor(policy string) Evictor {
	switch policy {
	case "", PolicyLRU:
		e := &lruEvictor{}
		e.Reset()
		return e
	case PolicyConsumedDrop:
		e := &consumedDropEvictor{}
		e.Reset()
		return e
	}
	panic(fmt.Sprintf("capacity: unknown eviction policy %q", policy))
}

// entryList is an intrusive doubly-linked list with a sentinel root.
type entryList struct{ root Entry }

func (l *entryList) init() { l.root.prev, l.root.next = &l.root, &l.root }

func (l *entryList) pushBack(e *Entry) {
	e.prev, e.next = l.root.prev, &l.root
	l.root.prev.next = e
	l.root.prev = e
}

func (l *entryList) remove(e *Entry) {
	if e.prev == nil { // not linked (defensive; Removed after Victim unlink)
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (l *entryList) front() *Entry {
	if l.root.next == &l.root {
		return nil
	}
	return l.root.next
}

// lruEvictor keeps entries in access order (front = coldest).
type lruEvictor struct{ l entryList }

func (e *lruEvictor) Name() string { return PolicyLRU }
func (e *lruEvictor) Reset()       { e.l.init() }
func (e *lruEvictor) Added(en *Entry) {
	e.l.pushBack(en)
}
func (e *lruEvictor) Accessed(en *Entry) {
	e.l.remove(en)
	e.l.pushBack(en)
}
func (e *lruEvictor) Removed(en *Entry) { e.l.remove(en) }
func (e *lruEvictor) Victim(forced bool) *Entry {
	return e.l.front()
}

// consumedDropEvictor keeps entries in insertion order and volunteers only
// already-consumed frames (scanning from the oldest). Forced eviction takes
// the oldest entry regardless.
type consumedDropEvictor struct{ l entryList }

func (e *consumedDropEvictor) Name() string        { return PolicyConsumedDrop }
func (e *consumedDropEvictor) Reset()              { e.l.init() }
func (e *consumedDropEvictor) Added(en *Entry)     { e.l.pushBack(en) }
func (e *consumedDropEvictor) Accessed(en *Entry)  {}
func (e *consumedDropEvictor) Removed(en *Entry)   { e.l.remove(en) }
func (e *consumedDropEvictor) Victim(forced bool) *Entry {
	for en := e.l.root.next; en != &e.l.root; en = en.next {
		if en.Consumed {
			return en
		}
	}
	if forced {
		return e.l.front()
	}
	return nil
}

// Store is one finite-capacity staging store (one node's NVMe staging area
// or RAM cache). A nil *Store is valid and inert: every method returns
// immediately after one nil check, so backends instrument their hot paths
// unconditionally and the capacity-off timeline is untouched.
//
// Paths are used as given — backends pass canonical (vfs.Clean-ed) paths,
// matching the keys of the trees they guard.
type Store struct {
	name     string
	cache    bool // cache stores count eviction activity separately and keep no tombstones
	capBytes int64
	used     int64
	entries  map[string]*Entry
	tomb     map[string]State
	ev       Evictor
	// onEvict removes the victim from the backing tree and reports whether
	// a shared-mirror copy survives (the frame "spilled" instead of
	// dropping).
	onEvict func(path string, size int64, consumed bool) bool
	waiters sim.Signal
	met     *Metrics
}

// NewStore builds a store named for errors and traces (e.g.
// "node0/staging"). capBytes <= 0 means infinite (the store still tracks
// occupancy, and a later Resize can make it finite). met may be nil (a
// private record is kept). onEvict may be nil (nothing to remove).
func NewStore(name string, capBytes int64, ev Evictor, cache bool, met *Metrics, onEvict func(path string, size int64, consumed bool) bool) *Store {
	if capBytes < 0 {
		capBytes = 0
	}
	if met == nil {
		met = &Metrics{}
	}
	return &Store{
		name:     name,
		cache:    cache,
		capBytes: capBytes,
		entries:  make(map[string]*Entry),
		tomb:     make(map[string]State),
		ev:       ev,
		onEvict:  onEvict,
		met:      met,
	}
}

// Name returns the store's display name ("" on a nil store).
func (s *Store) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Cap returns the current byte budget (0 = infinite; 0 on a nil store).
func (s *Store) Cap() int64 {
	if s == nil {
		return 0
	}
	return s.capBytes
}

// Used returns the resident byte occupancy (0 on a nil store).
func (s *Store) Used() int64 {
	if s == nil {
		return 0
	}
	return s.used
}

// Len returns the number of resident frames (0 on a nil store).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	return len(s.entries)
}

// Reserve claims n bytes for path before the backend writes it, evicting
// under the policy until the frame fits. When the policy has no victim but
// the frame would fit, the caller blocks (producer back-pressure) until
// consumption, eviction, or a grown provision frees space — the stall is
// accounted as a ClassBackpressure span. A frame larger than the whole
// budget fails with a wrapped ErrNoSpace. Nil-safe no-op when capacity is
// off.
func (s *Store) Reserve(p *sim.Proc, path string, n int64) error {
	if s == nil {
		return nil
	}
	if e, ok := s.entries[path]; ok {
		// Overwrite: the old payload's bytes come back first.
		s.release(e)
	}
	delete(s.tomb, path) // a rewritten path is resident again
	for s.capBytes > 0 && s.used+n > s.capBytes {
		if n > s.capBytes {
			s.met.NoSpace++
			return fmt.Errorf("capacity: %s: %s (%d B) exceeds the %d B budget: %w",
				s.name, path, n, s.capBytes, ErrNoSpace)
		}
		if s.evictOne(p, false) {
			continue
		}
		s.stall(p)
	}
	s.insert(path, n)
	return nil
}

// TryReserve is the non-blocking admission check for cache stores: it
// claims n bytes for path if eviction alone can make room, and reports
// false (a cache bypass — the caller serves its in-flight copy uncached)
// when it cannot. Nil-safe: always admits when capacity is off.
func (s *Store) TryReserve(path string, n int64) bool {
	if s == nil {
		return true
	}
	if e, ok := s.entries[path]; ok {
		s.release(e)
	}
	delete(s.tomb, path)
	for s.capBytes > 0 && s.used+n > s.capBytes {
		if n > s.capBytes || !s.evictOne(nil, false) {
			s.met.CacheBypasses++
			return false
		}
	}
	s.insert(path, n)
	return true
}

// MarkConsumed records that path's frame has been read: the entry counts as
// accessed (LRU refresh) and becomes evictable under consumed-drop; the
// first consumption wakes any back-pressured writer. Nil-safe.
func (s *Store) MarkConsumed(path string) {
	if s == nil {
		return
	}
	e, ok := s.entries[path]
	if !ok {
		return
	}
	s.ev.Accessed(e)
	if !e.Consumed {
		e.Consumed = true
		s.waiters.Broadcast()
	}
}

// State reports what the store knows about path: resident, spilled (mirror
// copy survives), dropped, or unknown. StateUnknown on a nil store.
func (s *Store) State(path string) State {
	if s == nil {
		return StateUnknown
	}
	if _, ok := s.entries[path]; ok {
		return StateResident
	}
	return s.tomb[path]
}

// Remove releases path's reservation and forgets its history (unlink, or a
// rollback after a failed backend write). Freed bytes wake back-pressured
// writers. Nil-safe.
func (s *Store) Remove(path string) {
	if s == nil {
		return
	}
	if e, ok := s.entries[path]; ok {
		s.release(e)
		s.waiters.Broadcast()
	}
	delete(s.tomb, path)
}

// Resize changes the byte budget at virtual runtime (dynamic provisioning).
// Shrinking below the current occupancy forces evictions — consumed frames
// first under any policy, then unconsumed ones (which spill or drop) —
// until the occupancy fits. Growing (or going infinite) wakes
// back-pressured writers. Nil-safe.
func (s *Store) Resize(capBytes int64) {
	if s == nil {
		return
	}
	if capBytes < 0 {
		capBytes = 0
	}
	grew := capBytes == 0 || (s.capBytes > 0 && capBytes > s.capBytes)
	s.capBytes = capBytes
	if capBytes > 0 {
		for s.used > capBytes && s.evictOne(nil, true) {
		}
	}
	if grew {
		s.waiters.Broadcast()
	}
}

// Clear wipes the store (a broker crash losing its RAM cache): every entry
// and tombstone is forgotten, occupancy returns to zero, and any blocked
// writer wakes. Nil-safe.
func (s *Store) Clear() {
	if s == nil {
		return
	}
	s.entries = make(map[string]*Entry)
	s.tomb = make(map[string]State)
	s.used = 0
	s.ev.Reset()
	s.waiters.Broadcast()
}

// insert adds a fresh resident entry.
func (s *Store) insert(path string, n int64) {
	e := &Entry{Path: path, Size: n}
	s.entries[path] = e
	s.used += n
	s.ev.Added(e)
}

// release drops an entry from residency without recording an eviction.
func (s *Store) release(e *Entry) {
	s.used -= e.Size
	s.ev.Removed(e)
	delete(s.entries, e.Path)
}

// evictOne evicts the policy's next victim, removing it from the backing
// tree and recording spill/drop accounting. Returns false when the policy
// refuses (and forced is not set). p, when non-nil, stamps an eviction
// detail span on the caller's timeline (resize-driven evictions have no
// process context and emit none).
func (s *Store) evictOne(p *sim.Proc, forced bool) bool {
	v := s.ev.Victim(forced)
	if v == nil {
		return false
	}
	s.release(v)
	spilled := false
	if s.onEvict != nil {
		spilled = s.onEvict(v.Path, v.Size, v.Consumed)
	}
	if s.cache {
		// Cache evictions lose only a copy — the frame is still in its
		// producer's staging area — so they keep separate counters and no
		// tombstones (a later miss falls back to the in-flight copy).
		s.met.CacheEvictions++
		s.met.CacheEvictedBytes += v.Size
	} else {
		s.met.Evictions++
		s.met.EvictedBytes += v.Size
		if forced {
			s.met.ForcedEvictions++
		}
		st := StateDropped
		if spilled {
			st = StateSpilled
		}
		s.tomb[v.Path] = st
		if !v.Consumed {
			if spilled {
				s.met.SpilledFrames++
				s.met.SpilledBytes += v.Size
			} else {
				s.met.DroppedFrames++
				s.met.DroppedBytes += v.Size
			}
		}
	}
	if p != nil {
		p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "capacity", Name: "evict",
			Class: trace.ClassDetail, Start: p.Now(), Bytes: v.Size, Attr: v.Path})
		hop := "evict"
		if spilled {
			hop = "spill"
		}
		p.CritHop(v.Path, hop, p.Now(), v.Size)
	}
	return true
}

// stall blocks the writer until consumption/eviction/provisioning frees
// space, accounting the wait as back-pressure time.
func (s *Store) stall(p *sim.Proc) {
	start := p.Now()
	s.met.Stalls++
	p.CritBegin("capacity", "backpressure_wait", trace.ClassBackpressure)
	s.waiters.Wait(p)
	p.CritEnd()
	d := p.Now() - start
	s.met.StallNanos += int64(d)
	p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "capacity", Name: "backpressure_wait",
		Class: trace.ClassBackpressure, Start: start, Dur: d, Attr: s.name})
}

// Metrics is the per-run capacity-pressure record, shared by every store of
// a run. All counters are bumped inside serialized event execution, so the
// record is deterministic.
type Metrics struct {
	// Evictions / EvictedBytes count staging-store evictions of any kind.
	Evictions    int64
	EvictedBytes int64
	// SpilledFrames / SpilledBytes count evicted-but-unconsumed frames with
	// a surviving shared-mirror copy (later fetches degrade to the mirror).
	SpilledFrames int64
	SpilledBytes  int64
	// DroppedFrames / DroppedBytes count evicted-but-unconsumed frames with
	// no surviving copy (later fetches fail with ErrEvicted).
	DroppedFrames int64
	DroppedBytes  int64
	// ForcedEvictions counts evictions forced by a shrinking provision.
	ForcedEvictions int64
	// CacheEvictions / CacheEvictedBytes count consumer RAM-cache evictions
	// (harmless: the staging copy survives).
	CacheEvictions    int64
	CacheEvictedBytes int64
	// CacheBypasses counts cache admissions refused for lack of space (the
	// consumer served its in-flight copy uncached).
	CacheBypasses int64
	// Stalls / StallNanos count producer back-pressure waits and the
	// virtual time they cost.
	Stalls     int64
	StallNanos int64
	// NoSpace counts writes rejected with ErrNoSpace.
	NoSpace int64
}

// Add accumulates o into m.
func (m *Metrics) Add(o Metrics) {
	m.Evictions += o.Evictions
	m.EvictedBytes += o.EvictedBytes
	m.SpilledFrames += o.SpilledFrames
	m.SpilledBytes += o.SpilledBytes
	m.DroppedFrames += o.DroppedFrames
	m.DroppedBytes += o.DroppedBytes
	m.ForcedEvictions += o.ForcedEvictions
	m.CacheEvictions += o.CacheEvictions
	m.CacheEvictedBytes += o.CacheEvictedBytes
	m.CacheBypasses += o.CacheBypasses
	m.Stalls += o.Stalls
	m.StallNanos += o.StallNanos
	m.NoSpace += o.NoSpace
}

// Zero reports whether no capacity pressure was recorded.
func (m Metrics) Zero() bool { return m == Metrics{} }

// StallTime returns the accumulated back-pressure wait as a duration.
func (m Metrics) StallTime() time.Duration { return time.Duration(m.StallNanos) }

// String renders the record compactly for reports and golden fixtures.
func (m Metrics) String() string {
	return fmt.Sprintf("evicted=%d/%dB spilled=%d/%dB dropped=%d/%dB forced=%d cache_evicted=%d bypasses=%d stalls=%d/%v nospace=%d",
		m.Evictions, m.EvictedBytes, m.SpilledFrames, m.SpilledBytes,
		m.DroppedFrames, m.DroppedBytes, m.ForcedEvictions,
		m.CacheEvictions, m.CacheBypasses, m.Stalls, m.StallTime(), m.NoSpace)
}

// Spec configures finite burst-buffer capacity for a run (Config.Capacity).
// The zero value (and a nil pointer) keeps every budget infinite and
// changes nothing: the capacity-off timeline is byte-identical to a build
// without this package.
type Spec struct {
	// StagingBytes is the per-node staging budget (DYAD NVMe staging area,
	// or the XFS filesystem). 0 = infinite.
	StagingBytes int64
	// CacheBytes is the per-node DYAD consumer RAM-cache budget.
	// 0 = infinite. DYAD-only.
	CacheBytes int64
	// Policy selects the eviction policy: "lru" (default when empty) or
	// "consumed-drop".
	Policy string
	// Plan schedules dynamic provisioning: at each event's virtual time the
	// budgets are reset to its values (0 = infinite), shrinking below
	// occupancy forcing evictions. Events are applied in slice order.
	Plan []Provision
}

// Provision is one scheduled reprovisioning of the burst-buffer allocation.
type Provision struct {
	// At is the virtual time the new budgets take effect.
	At time.Duration
	// StagingBytes / CacheBytes are the new per-node budgets (0 = infinite).
	StagingBytes int64
	CacheBytes   int64
}

// Enabled reports whether the spec constrains anything (nil-safe): a
// finite budget now, or a provisioning plan that could impose one later.
func (s *Spec) Enabled() bool {
	return s != nil && (s.StagingBytes > 0 || s.CacheBytes > 0 || len(s.Plan) > 0)
}

// Validate reports specification errors. horizon, when > 0, is the run's
// nominal production span; plan events scheduled beyond it can never affect
// production and are rejected.
func (s *Spec) Validate(horizon time.Duration) error {
	if s == nil {
		return nil
	}
	if s.StagingBytes < 0 {
		return fmt.Errorf("capacity: StagingBytes %d < 0", s.StagingBytes)
	}
	if s.CacheBytes < 0 {
		return fmt.Errorf("capacity: CacheBytes %d < 0", s.CacheBytes)
	}
	switch s.Policy {
	case "", PolicyLRU, PolicyConsumedDrop:
	default:
		return fmt.Errorf("capacity: unknown eviction policy %q (want %q or %q)",
			s.Policy, PolicyLRU, PolicyConsumedDrop)
	}
	for i, ev := range s.Plan {
		if ev.At < 0 {
			return fmt.Errorf("capacity: plan event %d at %v < 0", i, ev.At)
		}
		if horizon > 0 && ev.At > horizon {
			return fmt.Errorf("capacity: plan event %d at %v beyond the run horizon %v", i, ev.At, horizon)
		}
		if ev.StagingBytes < 0 || ev.CacheBytes < 0 {
			return fmt.Errorf("capacity: plan event %d has negative budget (%d, %d)",
				i, ev.StagingBytes, ev.CacheBytes)
		}
	}
	return nil
}
