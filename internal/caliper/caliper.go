// Package caliper provides hierarchical region instrumentation in the
// spirit of LLNL's Caliper: processes annotate Begin/End regions and the
// annotator accumulates an inclusive-time call-path profile. Profiles feed
// the thicket package, which performs the cross-run analysis the paper
// uses to split producer/consumer time into data movement and idle time.
//
// Annotators are clock-agnostic: the simulation passes the process's
// virtual clock, real-time pipelines pass a wall clock.
//
// Instrumentation can always run unconditionally: a nil *Annotator and the
// zero-value Annotator are both inert — Begin/End/Region no-op and Profile
// returns an empty profile — so code paths that sometimes run without
// instrumentation never need nil checks.
package caliper

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Clock yields the current time as elapsed duration since an arbitrary
// per-run origin.
type Clock func() time.Duration

// Annotator records one process's region activity. The zero value and the
// nil pointer are inert: every method is safe and free on them (Begin, End,
// and Region are no-ops, and Profile returns an empty profile), so
// instrumented code never needs nil checks. Only annotators created with
// New record anything; an inert annotator never starts recording.
type Annotator struct {
	proc  string
	clock Clock
	root  *Node
	stack []*Node
	open  []time.Duration // entry times matching stack
}

// Node is one call-path node of a profile.
type Node struct {
	Name     string        `json:"name"`
	Visits   int64         `json:"visits"`
	Total    time.Duration `json:"total"` // inclusive time
	Children []*Node       `json:"children,omitempty"`
}

// New creates an annotator for the named process using the given clock.
func New(proc string, clock Clock) *Annotator {
	root := &Node{Name: proc}
	return &Annotator{proc: proc, clock: clock, root: root}
}

// Begin opens a region. Regions nest: Begin("a"); Begin("b") attributes
// b's time inside a.
func (a *Annotator) Begin(name string) {
	if a == nil || a.root == nil {
		return // nil or zero-value annotator: inert by contract
	}
	parent := a.root
	if len(a.stack) > 0 {
		parent = a.stack[len(a.stack)-1]
	}
	node := parent.child(name)
	node.Visits++
	a.stack = append(a.stack, node)
	a.open = append(a.open, a.clock())
}

// End closes the innermost region, which must be name (mismatches panic:
// they are instrumentation bugs).
func (a *Annotator) End(name string) {
	if a == nil || a.root == nil {
		return // inert annotators opened no region, so there is none to close
	}
	if len(a.stack) == 0 {
		panic(fmt.Sprintf("caliper: End(%q) with no open region", name))
	}
	top := a.stack[len(a.stack)-1]
	if top.Name != name {
		panic(fmt.Sprintf("caliper: End(%q) but innermost region is %q", name, top.Name))
	}
	top.Total += a.clock() - a.open[len(a.open)-1]
	a.stack = a.stack[:len(a.stack)-1]
	a.open = a.open[:len(a.open)-1]
}

// Region opens name and returns a closure that closes it; use with defer.
func (a *Annotator) Region(name string) func() {
	a.Begin(name)
	return func() { a.End(name) }
}

// Profile snapshots the annotator into an immutable profile. Open regions
// are a bug and panic.
func (a *Annotator) Profile() *Profile {
	if a == nil || a.root == nil {
		return &Profile{Proc: "", Root: &Node{}}
	}
	if len(a.stack) != 0 {
		panic(fmt.Sprintf("caliper: profile with %d open regions (innermost %q)", len(a.stack), a.stack[len(a.stack)-1].Name))
	}
	return &Profile{Proc: a.proc, Root: a.root.clone()}
}

func (n *Node) child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	c := &Node{Name: name}
	n.Children = append(n.Children, c)
	return c
}

func (n *Node) clone() *Node {
	c := &Node{Name: n.Name, Visits: n.Visits, Total: n.Total}
	for _, ch := range n.Children {
		c.Children = append(c.Children, ch.clone())
	}
	return c
}

// Exclusive returns the node's time not attributed to children.
func (n *Node) Exclusive() time.Duration {
	t := n.Total
	for _, c := range n.Children {
		t -= c.Total
	}
	return t
}

// Find returns the first descendant (depth-first) named name, or nil.
func (n *Node) Find(name string) *Node {
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Walk visits n and every descendant with its slash-joined call path.
func (n *Node) Walk(fn func(path string, node *Node)) {
	n.walk("", fn)
}

func (n *Node) walk(prefix string, fn func(string, *Node)) {
	path := prefix + "/" + n.Name
	fn(path, n)
	for _, c := range n.Children {
		c.walk(path, fn)
	}
}

// Profile is a finished per-process call-path profile.
type Profile struct {
	Proc string `json:"proc"`
	Root *Node  `json:"root"`
}

// TotalOf sums inclusive time over the outermost nodes named name: once a
// node matches, its subtree is not searched further. A same-named region
// nested inside a matching one is already included in the ancestor's
// inclusive total, so counting it again would double-bill that time;
// matches on disjoint call paths (different parents) still all contribute.
func (p *Profile) TotalOf(name string) time.Duration {
	return totalOf(p.Root, name)
}

func totalOf(n *Node, name string) time.Duration {
	if n.Name == name {
		return n.Total
	}
	var t time.Duration
	for _, c := range n.Children {
		t += totalOf(c, name)
	}
	return t
}

// WriteJSON serializes the profile.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadJSON deserializes a profile written by WriteJSON.
func ReadJSON(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("caliper: decode profile: %w", err)
	}
	if p.Root == nil {
		return nil, fmt.Errorf("caliper: profile has no root")
	}
	return &p, nil
}

// Render pretty-prints the call tree with inclusive times, largest
// children first (matching how the paper presents Thicket trees).
func (p *Profile) Render(w io.Writer) {
	renderNode(w, p.Root, 0)
}

func renderNode(w io.Writer, n *Node, depth int) {
	fmt.Fprintf(w, "%s%s  total=%v visits=%d\n", strings.Repeat("  ", depth), n.Name, n.Total, n.Visits)
	kids := append([]*Node(nil), n.Children...)
	// Stable sort: children with equal totals keep their call-path
	// (first-visit) order, so renders are deterministic run to run.
	sort.SliceStable(kids, func(i, j int) bool { return kids[i].Total > kids[j].Total })
	for _, c := range kids {
		renderNode(w, c, depth+1)
	}
}
