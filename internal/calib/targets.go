package calib

// Target is one published paper number the objective pulls toward,
// joined to a measurement by name (experiments.MeasureCalibration emits
// the measured side under the same names).
type Target struct {
	Name  string
	Paper float64
	// Weight scales this target's share of the objective. The table
	// derivations are workload bookkeeping (they cannot move under a
	// hardware tune, but anchor the objective against a fit that breaks
	// the workload); the figure ratios are the numbers the paper is about.
	Weight float64
}

// Targets returns the paper-number fixture: Table I frame sizes (KiB),
// Table II generation frequencies (seconds), and the Fig 5–6 headline
// ratios; full adds Fig 7. Values are transcribed from the paper
// (§IV, Tables I–II, Figures 5–7).
func Targets(full bool) []Target {
	t := []Target{
		{"table1.frame_kib.JAC", 644.21, 0.25},
		{"table1.frame_kib.ApoA1", 2.46 * 1024, 0.25},
		{"table1.frame_kib.F1 ATPase", 8.75 * 1024, 0.25},
		{"table1.frame_kib.STMV", 28.48 * 1024, 0.25},
		{"table2.freq_s.JAC", 0.82, 0.25},
		{"table2.freq_s.ApoA1", 0.82, 0.25},
		{"table2.freq_s.F1 ATPase", 0.82, 0.25},
		{"table2.freq_s.STMV", 0.82, 0.25},
		{"fig5.prod_total.dyad_over_xfs", 1.4, 1},
		{"fig5.cons_move.dyad_over_xfs", 1.4, 1},
		{"fig5.cons_total.xfs_over_dyad", 192.9, 1},
		{"fig6.prod_move.lustre_over_dyad", 7.5, 1},
		{"fig6.cons_move.lustre_over_dyad", 6.9, 1},
		{"fig6.cons_total.lustre_over_dyad", 197.4, 1},
	}
	if full {
		t = append(t,
			Target{"fig7.prod_move.lustre_over_dyad", 5.3, 1},
			Target{"fig7.cons_move.lustre_over_dyad", 5.8, 1},
			Target{"fig7.cons_total.lustre_over_dyad", 192.0, 1},
		)
	}
	return t
}
