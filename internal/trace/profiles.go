package trace

import (
	"repro/internal/caliper"
)

// Profiles folds a run's span stream into per-process caliper call-path
// profiles with paths <proc>/<class>/<name>: the top-level children of each
// profile are the breakdown classes (movement, idle, compute, recovery) and
// beneath each class sit the operation names that contributed to it.
// ClassDetail spans are omitted — they nest inside workflow spans and would
// double-count (Aggregate covers them instead).
//
// The resulting profiles feed the same thicket ensemble analysis the paper
// applies to Caliper data, which is how the -trace breakdown report
// reproduces the Fig. 4-7 movement-vs-idle methodology from spans.
// Processes appear in order of first emission; class and name nodes in
// first-contribution order — all deterministic for a deterministic stream.
func Profiles(spans []Span) []*caliper.Profile {
	type procTree struct {
		proc string
		root *caliper.Node
	}
	var procs []procTree
	idx := make(map[string]int)
	for _, s := range spans {
		if s.Class == ClassDetail {
			continue
		}
		i, ok := idx[s.Proc]
		if !ok {
			i = len(procs)
			idx[s.Proc] = i
			procs = append(procs, procTree{proc: s.Proc, root: &caliper.Node{Name: s.Proc, Visits: 1}})
		}
		class := childNode(procs[i].root, s.Class.String())
		class.Visits++
		class.Total += s.Dur
		op := childNode(class, s.Name)
		op.Visits++
		op.Total += s.Dur
	}
	out := make([]*caliper.Profile, len(procs))
	for i, pt := range procs {
		out[i] = &caliper.Profile{Proc: pt.proc, Root: pt.root}
	}
	return out
}

// childNode finds or appends the named child, preserving insertion order
// (the same structure caliper.Annotator builds).
func childNode(n *caliper.Node, name string) *caliper.Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	c := &caliper.Node{Name: name}
	n.Children = append(n.Children, c)
	return c
}
