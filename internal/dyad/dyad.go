// Package dyad implements the Dynamic and Asynchronous Data Streamliner
// middleware the paper studies (flux-framework/dyad), on top of the
// simulated cluster. It reproduces DYAD's three defining mechanisms:
//
//  1. Node-local storage accelerators: producers stage frames on their
//     node's NVMe; recently staged data is served from the page cache and
//     the consumer side keeps a RAM-backed cache (burst-buffer style).
//  2. Multi-protocol automatic synchronization: the first consumption of a
//     not-yet-produced file blocks on a key-value-store watch (loosely
//     coupled: the producer never waits), while subsequent consumptions —
//     when data is already available because producer and consumer overlap
//     — use a cheap lookup plus file-lock protocol.
//  3. RDMA-enabled transfer: a consumer on another node pulls the staged
//     file directly from the owner's broker over the fabric at near-wire
//     bandwidth, stores it in its node-local cache, and reads it locally.
//
// Region names follow the real DYAD's Caliper annotations so the Thicket
// analyses of the paper's Figures 9 and 10 can be regenerated:
// dyad_produce, dyad_commit, dyad_consume, dyad_fetch, dyad_get_data,
// dyad_cons_store, read_single_buf.
package dyad

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/caliper"
	"repro/internal/capacity"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/kvs"
	"repro/internal/locks"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/xfs"
)

// Params is the DYAD cost model.
type Params struct {
	// Staging is the cost model of the node-local staging writes
	// (durable path: journal + NVMe data write, like the node-local FS).
	Staging xfs.Params
	// BrokerService is the broker's per-request processing overhead.
	BrokerService time.Duration
	// ClientOverhead is the client-library cost per consume: POSIX
	// interception, path resolution, and cache management. It is part of
	// DYAD's data-movement overhead versus a raw filesystem read.
	ClientOverhead time.Duration
	// PageCacheBandwidth/Latency model reads of recently staged files
	// (always hot in this workload: data is consumed moments after being
	// produced).
	PageCacheBandwidth float64
	PageCacheLatency   time.Duration
	// CacheWriteBandwidth models the consumer-side RAM cache store.
	CacheWriteBandwidth float64
	// Locks is the file-lock cost model for the fast-path synchronization.
	Locks locks.Params
	// KVS is the metadata store cost model. Commits carry DYAD's global
	// namespace registration, the production-side overhead the paper
	// measures against raw XFS.
	KVS kvs.Params

	// FetchTimeout is the client's deadline on a fetch request to a remote
	// broker; requests against a crashed broker come back empty after this
	// long. Zero defaults to 200ms.
	FetchTimeout time.Duration
	// FetchRetry is the capped-exponential backoff policy applied after
	// fetch timeouts; once its retries are exhausted the client degrades to
	// a direct read of the producer's staging area (DESIGN.md §3d). A zero
	// policy defaults to {Base: 50ms, Cap: 800ms, Max: 3}.
	FetchRetry faults.Backoff

	// Ablation switches (all false in the real system). They disable, one
	// by one, the three mechanisms Figure 2 of the paper credits for
	// DYAD's performance, so their contribution can be measured.

	// NoAdaptiveSync makes every consumption use the loosely-coupled KVS
	// watch protocol instead of switching to the cheap lookup+lock fast
	// path once the flow is established.
	NoAdaptiveSync bool
	// NoBurstBuffer removes the node-local storage accelerators: broker
	// reads come from the NVMe device instead of the page cache, and the
	// consumer cache store writes through to the NVMe staging area.
	NoBurstBuffer bool
	// NoDirectTransfer removes RDMA-style producer->consumer pulls:
	// remote data is staged through the KVS/management node
	// (store-and-forward), as coarse workflow systems relay through
	// shared services.
	NoDirectTransfer bool
}

// DefaultParams returns the calibrated DYAD model.
func DefaultParams() Params {
	k := kvs.DefaultParams()
	k.CommitService = 140 * time.Microsecond
	return Params{
		Staging:             xfs.DefaultParams(),
		BrokerService:       25 * time.Microsecond,
		ClientOverhead:      300 * time.Microsecond,
		PageCacheBandwidth:  12e9,
		PageCacheLatency:    20 * time.Microsecond,
		CacheWriteBandwidth: 8e9,
		Locks:               locks.DefaultParams(),
		KVS:                 k,
		FetchTimeout:        200 * time.Millisecond,
		FetchRetry:          faults.Backoff{Base: 50 * time.Millisecond, Cap: 800 * time.Millisecond, Max: 3},
	}
}

// System is one DYAD deployment: a KVS for global metadata plus one broker
// per participating node.
type System struct {
	cl       *cluster.Cluster
	params   Params
	kvs      *kvs.Store
	brokers  map[int]*Broker
	fallback func(*cluster.Node) vfs.FS

	// Finite burst-buffer capacity (SetCapacity). capSpec nil or disabled
	// means infinite budgets: no broker gets a capacity store and every
	// capacity hook stays one nil check.
	capSpec *capacity.Spec
	capMet  *capacity.Metrics

	// Produced counts frames published; Fetched counts remote transfers.
	Produced int64
	Fetched  int64

	// Sampled-metrics counters (cheap unconditional increments; observed
	// only when a registry samples them). CacheHits/CacheMisses split
	// consumer-side RAM-cache lookups; StagingReads counts reads served
	// from a producer's NVMe staging area (local consumes, remote broker
	// reads, and degraded direct reads); InflightFetches is the number of
	// remote fetches currently in flight; FetchIdleNanos integrates
	// consumer time blocked in metadata synchronization (dyad_fetch).
	CacheHits       int64
	CacheMisses     int64
	StagingReads    int64
	InflightFetches int64
	FetchIdleNanos  int64

	// produceLat/fetchLat are sampled latency histograms (nil when no
	// metrics registry is attached — Observe on nil is free).
	produceLat *metrics.Histogram
	fetchLat   *metrics.Histogram

	// Recovery accumulates the run's fault-recovery activity (timeouts,
	// retries, degraded reads); all zero on healthy runs.
	Recovery faults.Metrics
}

// Broker is the per-node DYAD service: it owns the node's staging area,
// serves remote fetch requests, and manages the node's consumer cache.
type Broker struct {
	sys     *System
	node    *cluster.Node
	staging *xfs.FS
	cache   *vfs.Tree // RAM-backed consumer-side cache
	srv     *sim.Resource
	locks   *locks.Manager

	// stagingCap/cacheCap are the node's finite byte budgets; nil when
	// capacity is off. stagingCap is also attached to the staging xfs.FS so
	// Produce's WriteFile reserves (evicts, stalls) through it.
	stagingCap *capacity.Store
	cacheCap   *capacity.Store

	// downUntil marks the broker crashed until the given virtual time
	// (fault injection; zero means it has never crashed).
	downUntil sim.Time
}

// meta is the KVS metadata record for a produced file.
type meta struct {
	owner int
	size  int64
}

func encodeMeta(m meta) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf[0:], uint64(m.owner))
	binary.LittleEndian.PutUint64(buf[8:], uint64(m.size))
	return buf
}

func decodeMeta(b []byte) meta {
	return meta{
		owner: int(binary.LittleEndian.Uint64(b[0:])),
		size:  int64(binary.LittleEndian.Uint64(b[8:])),
	}
}

// New deploys DYAD over the cluster with its KVS hosted on kvsNode.
func New(cl *cluster.Cluster, kvsNode *cluster.Node, params Params) *System {
	// Recovery knobs only matter when a fault actually lands, so defaulting
	// them here cannot change healthy-run timelines.
	if params.FetchTimeout <= 0 {
		params.FetchTimeout = 200 * time.Millisecond
	}
	if params.FetchRetry == (faults.Backoff{}) {
		params.FetchRetry = faults.Backoff{Base: 50 * time.Millisecond, Cap: 800 * time.Millisecond, Max: 3}
	}
	return &System{
		cl:      cl,
		params:  params,
		kvs:     kvs.New(cl, kvsNode, params.KVS),
		brokers: make(map[int]*Broker),
	}
}

// KVS exposes the metadata store (for stats and tests).
func (s *System) KVS() *kvs.Store { return s.kvs }

// SetFallback installs a shared-filesystem mirror (Lustre in the paper's
// deployments): Produce writes a second copy there, and a consumer that can
// reach neither the owner's broker nor its staging device reads the mirror
// instead of failing. The mount function returns the shared filesystem as
// seen from one node, so each client pays its own network path to it. Nil
// (the default) disables mirroring.
func (s *System) SetFallback(mount func(*cluster.Node) vfs.FS) { s.fallback = mount }

// HasFallback reports whether a shared-filesystem mirror is installed.
func (s *System) HasFallback() bool { return s.fallback != nil }

// SetCapacity imposes finite burst-buffer budgets on every broker: spec's
// StagingBytes bounds each node's NVMe staging area and CacheBytes its
// consumer RAM cache (0 = infinite). Evicted-but-unconsumed staging frames
// spill when a fallback mirror is installed (SetFallback) — later fetches
// degrade to the mirror — and drop otherwise, failing later fetches with a
// wrapped capacity.ErrEvicted. met accumulates the run's pressure record
// (a private record is kept when nil). Call before any client traffic; a
// nil or disabled spec leaves capacity off.
func (s *System) SetCapacity(spec *capacity.Spec, met *capacity.Metrics) {
	if !spec.Enabled() {
		return
	}
	if met == nil {
		met = &capacity.Metrics{}
	}
	cp := *spec // private copy: Provision mutates the budgets at runtime
	s.capSpec = &cp
	s.capMet = met
	for id := 0; id < s.cl.Nodes(); id++ { // deterministic order, never map order
		if b, ok := s.brokers[id]; ok {
			b.buildCapacity()
		}
	}
}

// Provision resizes every broker's budgets at virtual runtime (dynamic
// burst-buffer provisioning; 0 = infinite). Shrinking below occupancy
// forces evictions; growing wakes back-pressured producers. No-op when
// capacity is off.
func (s *System) Provision(stagingBytes, cacheBytes int64) {
	if s.capSpec == nil {
		return
	}
	s.capSpec.StagingBytes = stagingBytes
	s.capSpec.CacheBytes = cacheBytes
	for id := 0; id < s.cl.Nodes(); id++ { // deterministic order, never map order
		if b, ok := s.brokers[id]; ok {
			b.stagingCap.Resize(stagingBytes)
			b.cacheCap.Resize(cacheBytes)
		}
	}
}

// StagingOccupancy returns node nodeID's staging-store occupancy in bytes
// (0 when capacity is off or the node has no broker yet).
func (s *System) StagingOccupancy(nodeID int) int64 {
	if b, ok := s.brokers[nodeID]; ok {
		return b.stagingCap.Used()
	}
	return 0
}

// CacheOccupancy returns node nodeID's consumer-cache occupancy in bytes
// (0 when capacity is off or the node has no broker yet).
func (s *System) CacheOccupancy(nodeID int) int64 {
	if b, ok := s.brokers[nodeID]; ok {
		return b.cacheCap.Used()
	}
	return 0
}

// Broker returns (creating on first use) the broker on node.
func (s *System) Broker(node *cluster.Node) *Broker {
	b, ok := s.brokers[node.ID]
	if !ok {
		b = &Broker{
			sys:     s,
			node:    node,
			staging: xfs.New(node, s.params.Staging),
			cache:   vfs.NewTree(),
			srv:     sim.NewResource(s.cl.Engine(), node.Name()+"/dyad-broker", 1),
			locks:   locks.NewManager(s.params.Locks),
		}
		if s.capSpec != nil {
			b.buildCapacity()
		}
		s.brokers[node.ID] = b
	}
	return b
}

// buildCapacity attaches the system's capacity budgets to the broker.
func (b *Broker) buildCapacity() {
	spec, met := b.sys.capSpec, b.sys.capMet
	ev := capacity.NewEvictor(spec.Policy)
	b.stagingCap = capacity.NewStore(b.node.Name()+"/staging", spec.StagingBytes, ev, false, met,
		func(path string, size int64, consumed bool) bool {
			b.staging.Tree().Remove(path)
			// The frame spills iff the deployment mirrors every produce to
			// the shared filesystem — degraded reads find it there.
			return b.sys.fallback != nil
		})
	b.staging.SetCapacity(b.stagingCap)
	b.cacheCap = capacity.NewStore(b.node.Name()+"/cache", spec.CacheBytes, capacity.NewEvictor(spec.Policy), true, met,
		func(path string, size int64, consumed bool) bool {
			b.cache.Remove(path)
			return false // only a copy is lost; the staging original survives
		})
}

// stagingGet is a tombstone-aware staging lookup. A frame evicted while its
// write is still in flight lands in the tree after the victim scan ran, so
// the tree can briefly disagree with the byte budget; the budget wins —
// evicted frames read as gone even when the bytes raced in.
func (b *Broker) stagingGet(path string) (vfs.Payload, bool) {
	got, ok := b.staging.Tree().Get(path)
	if ok && b.stagingCap != nil {
		switch b.stagingCap.State(path) {
		case capacity.StateSpilled, capacity.StateDropped:
			b.staging.Tree().Remove(path)
			return vfs.Payload{}, false
		}
	}
	return got, ok
}

// Staging exposes a node's staging filesystem (tests and invariants).
func (b *Broker) Staging() *xfs.FS { return b.staging }

// Cache exposes a node's consumer-side cache (tests and invariants).
func (b *Broker) Cache() *vfs.Tree { return b.cache }

// StagingCap exposes the node's staging capacity store (nil when capacity
// is off; tests and metrics).
func (b *Broker) StagingCap() *capacity.Store { return b.stagingCap }

// CacheCap exposes the node's consumer-cache capacity store (nil when
// capacity is off; tests and metrics).
func (b *Broker) CacheCap() *capacity.Store { return b.cacheCap }

// Crash kills the broker for d of virtual time: its RAM cache is lost and
// fetch requests against it time out until the restart. The NVMe staging
// area survives the crash — which is what makes the degraded direct-staging
// read possible.
func (b *Broker) Crash(d time.Duration) {
	if until := b.sys.cl.Engine().Now() + d; until > b.downUntil {
		b.downUntil = until
	}
	b.cache = vfs.NewTree()
	b.cacheCap.Clear() // the lost cache frees its budget (nil-safe)
	b.sys.Recovery.BrokerRestarts++
}

// Down reports whether the broker is currently crashed.
func (b *Broker) Down() bool { return b.sys.cl.Engine().Now() < b.downUntil }

// cachedRead charges a page-cache read of n bytes (or an NVMe read when
// the burst-buffer ablation is active — the only way it can fail).
func (b *Broker) cachedRead(p *sim.Proc, n int64) error {
	if b.sys.params.NoBurstBuffer {
		_, err := b.node.SSD.Read(p, n)
		return err
	}
	p.Sleep(b.sys.params.PageCacheLatency + cost(n, b.sys.params.PageCacheBandwidth))
	return nil
}

// cacheStore charges a RAM cache write of n bytes (or a full journaled
// NVMe write when the burst-buffer ablation is active).
func (b *Broker) cacheStore(p *sim.Proc, n int64) error {
	if b.sys.params.NoBurstBuffer {
		_, err := b.node.SSD.Write(p, n)
		return err
	}
	p.Sleep(b.sys.params.PageCacheLatency + cost(n, b.sys.params.CacheWriteBandwidth))
	return nil
}

func cost(n int64, bw float64) time.Duration {
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// Client is a process-side DYAD handle bound to one node. The same type
// serves producers and consumers, mirroring the real DYAD client library.
type Client struct {
	sys    *System
	broker *Broker
	// flowSynced records flows this client has synchronized at least once
	// via the blocking KVS watch; later consumptions in the same flow
	// switch to the cheap lookup + file-lock protocol.
	flowSynced map[string]bool
	// fallback is the client's lazily mounted view of the shared mirror.
	fallback vfs.FS
}

// fallbackFS returns the client's mount of the shared mirror, or nil when
// no fallback is installed.
func (c *Client) fallbackFS() vfs.FS {
	if c.fallback == nil && c.sys.fallback != nil {
		c.fallback = c.sys.fallback(c.broker.node)
	}
	return c.fallback
}

// NewClient creates a client for processes on node.
func (s *System) NewClient(node *cluster.Node) *Client {
	return &Client{
		sys:        s,
		broker:     s.Broker(node),
		flowSynced: make(map[string]bool),
	}
}

// Node returns the client's node.
func (c *Client) Node() *cluster.Node { return c.broker.node }

// Produce stages the payload under path in the node-local staging area and
// publishes its metadata globally. The producer never blocks on any
// consumer. Annotations: dyad_produce{dyad_prod_write, dyad_commit}.
//
// A failed staging write (the node's device died under fault injection)
// surfaces as an error wrapping faults.ErrDeviceFailed; the frame is then
// not committed, so consumers never see metadata for data that was lost.
func (c *Client) Produce(p *sim.Proc, ann *caliper.Annotator, path string, pl vfs.Payload) error {
	path = vfs.Clean(path)
	pStart := p.Now()
	defer ann.Region("dyad_produce")()
	p.CritBegin("dyad", "dyad_produce", trace.ClassMovement)
	defer p.CritEnd()
	// The whole produce call is data movement in the paper's decomposition
	// (the producer never waits on consumers), so one Movement span covers
	// it; component detail (ssd, kvs, net) nests inside.
	if rec := p.Rec(); rec != nil {
		start := p.Now()
		defer func() {
			rec.Emit(trace.Span{Proc: p.Name(), Component: "dyad", Name: "dyad_produce",
				Class: trace.ClassMovement, Start: start, Dur: p.Now() - start, Bytes: pl.Size(), Attr: path})
		}()
	}

	ann.Begin("dyad_prod_write")
	var werr error
	c.broker.locks.WithExclusive(p, path, func() {
		werr = c.broker.staging.WriteFile(p, path, pl)
	})
	ann.End("dyad_prod_write")
	if werr != nil {
		return fmt.Errorf("dyad: produce %s: %w", path, werr)
	}

	if fb := c.fallbackFS(); fb != nil {
		// Shared-filesystem mirror for degraded consumers (opt-in; adds the
		// mirror's full write cost to the production path).
		if err := fb.WriteFile(p, path, pl); err != nil {
			return fmt.Errorf("dyad: produce mirror %s: %w", path, err)
		}
	}

	// Global metadata management: the extra production-side cost the paper
	// measures as DYAD's ~1.4x production overhead versus raw XFS.
	ann.Begin("dyad_commit")
	c.sys.kvs.Commit(p, c.broker.node, path, encodeMeta(meta{owner: c.broker.node.ID, size: pl.Size()}))
	c.sys.Produced++
	ann.End("dyad_commit")
	c.sys.produceLat.Observe(p.Now() - pStart)
	return nil
}

// Consume returns the payload published under path, blocking until it has
// been produced. The returned handle aliases the producer's buffer — every
// hop (staging, broker, cache, consumer) shares one copy. Synchronization
// is adaptive:
//
//   - First touch of a flow: loosely-coupled KVS watch (consumer waits,
//     producer unaffected) — region dyad_fetch.
//   - Flow already synced: cheap KVS lookup plus file-lock check — still
//     dyad_fetch, but microseconds.
//
// Remote data moves via dyad_get_data (broker page-cache read + fabric
// transfer) into the local RAM cache (dyad_cons_store) and is then read
// back (read_single_buf).
//
// Under fault injection the remote path survives broker crashes: fetch
// requests time out (FetchTimeout), are retried under FetchRetry, and then
// degrade to a direct read of the producer's staging area or the shared
// fallback mirror. An error is returned only when every path is exhausted;
// it wraps faults.ErrExhausted plus the final cause.
func (c *Client) Consume(p *sim.Proc, ann *caliper.Annotator, path string) (vfs.Payload, error) {
	path = vfs.Clean(path)
	defer ann.Region("dyad_consume")()

	flow := flowOf(path)

	// --- Synchronization (dyad_fetch) ---
	fetchStart := p.Now()
	ann.Begin("dyad_fetch")
	p.CritBegin("dyad", "dyad_fetch", trace.ClassIdle)
	var m meta
	if c.sys.params.NoAdaptiveSync {
		// Ablation: always use the loosely-coupled watch protocol.
		ann.Begin("dyad_kvs_wait")
		m = decodeMeta(c.sys.kvs.WatchWait(p, c.broker.node, path))
		ann.End("dyad_kvs_wait")
	} else if !c.flowSynced[flow] {
		// Loose first-touch synchronization: the blocking KVS watch gets
		// its own region so analyses can split the one-time pipeline-fill
		// wait from steady-state KVS load.
		ann.Begin("dyad_kvs_wait")
		m = decodeMeta(c.sys.kvs.WaitFor(p, c.broker.node, path))
		ann.End("dyad_kvs_wait")
		c.flowSynced[flow] = true
	} else {
		raw, err := c.sys.kvs.Lookup(p, c.broker.node, path)
		if err != nil {
			// Producer fell behind the overlap: fall back to the loose
			// protocol for this file.
			ann.Begin("dyad_kvs_wait")
			raw = c.sys.kvs.WaitFor(p, c.broker.node, path)
			ann.End("dyad_kvs_wait")
		}
		m = decodeMeta(raw)
	}
	ann.End("dyad_fetch")
	p.CritEnd()
	p.CritHop(path, "sync_wait", fetchStart, 0)
	p.CritDepend(path, "fetch")
	p.CritBegin("dyad", "dyad_xfer", trace.ClassMovement)
	defer p.CritEnd()
	c.sys.FetchIdleNanos += int64(p.Now() - fetchStart)
	c.sys.fetchLat.Observe(p.Now() - fetchStart)
	// Paper decomposition (SplitConsumer): the metadata fetch is idle time,
	// everything after it — client overhead, remote pull, cache store, local
	// read — is data movement. Two disjoint workflow spans mirror that.
	if rec := p.Rec(); rec != nil {
		rec.Emit(trace.Span{Proc: p.Name(), Component: "dyad", Name: "dyad_fetch",
			Class: trace.ClassIdle, Start: fetchStart, Dur: p.Now() - fetchStart, Attr: path})
		xferStart := p.Now()
		defer func() {
			rec.Emit(trace.Span{Proc: p.Name(), Component: "dyad", Name: "dyad_xfer",
				Class: trace.ClassMovement, Start: xferStart, Dur: p.Now() - xferStart, Attr: path})
		}()
	}

	// Client-library path resolution and cache management (movement
	// overhead of the middleware versus a raw filesystem call).
	p.Sleep(c.sys.params.ClientOverhead)

	local := m.owner == c.broker.node.ID

	var data vfs.Payload
	if !local {
		// --- Remote transfer (dyad_get_data) ---
		ann.Begin("dyad_get_data")
		owner := c.sys.brokers[m.owner]
		if owner == nil {
			ann.End("dyad_get_data")
			return vfs.Payload{}, fmt.Errorf("dyad: consume %s: no broker on node %d", path, m.owner)
		}
		got, err := c.fetchRemote(p, owner, path)
		if err != nil {
			ann.End("dyad_get_data")
			return vfs.Payload{}, err
		}
		data = got
		c.sys.Fetched++
		ann.End("dyad_get_data")

		// --- Local cache store (dyad_cons_store) ---
		ann.Begin("dyad_cons_store")
		sStart := p.Now()
		stored := false
		var serr error
		if c.broker.cacheCap.TryReserve(path, data.Size()) {
			// Admission check first (true when capacity is off): a refused
			// frame skips the store cost entirely and the read below serves
			// the in-flight copy uncached (a counted cache bypass).
			c.broker.locks.WithExclusive(p, path, func() {
				serr = c.broker.cacheStore(p, data.Size())
				if serr == nil {
					c.broker.cache.Put(path, data)
					if cc := c.broker.cacheCap; cc != nil && cc.State(path) != capacity.StateResident {
						// A concurrent admission evicted this entry during the
						// store's device wait; keep the cache and the budget
						// agreeing on what is resident.
						c.broker.cache.Remove(path)
					}
				} else if c.broker.cacheCap != nil {
					c.broker.cacheCap.Remove(path) // roll back the admission
				}
			})
			stored = serr == nil
		}
		ann.End("dyad_cons_store")
		if stored {
			p.CritHop(path, "cache_store", sStart, data.Size())
		}
		if serr != nil {
			// Cache store failed (device gone under the burst-buffer
			// ablation): keep going with the in-flight copy; the read
			// below serves it without a local store.
			c.sys.Recovery.DegradedReads++
			c.sys.Recovery.DegradedBytes += data.Size()
			return data, nil
		}
	}

	// --- POSIX read from the node-local copy (read_single_buf) ---
	rStart := p.Now()
	ann.Begin("read_single_buf")
	var rerr error
	c.broker.locks.WithShared(p, path, func() {
		var got vfs.Payload
		var ok bool
		if local {
			got, ok = c.broker.stagingGet(path)
			if ok {
				c.sys.StagingReads++
			} else if c.broker.stagingCap.State(path) != capacity.StateUnknown {
				// Produced, then evicted under capacity pressure before this
				// consumer got to it: spilled frames degrade to the mirror
				// below, dropped ones are gone.
				rerr = vfs.PathError("dyad read", path, capacity.ErrEvicted)
				return
			}
		} else {
			got, ok = c.broker.cache.Get(path)
			if ok {
				c.sys.CacheHits++
				c.broker.cacheCap.MarkConsumed(path)
			} else {
				// The local broker crashed between store and read and lost
				// its RAM cache (or admission was refused); serve the
				// in-flight copy.
				c.sys.CacheMisses++
				got, ok = data, true
			}
		}
		if !ok {
			rerr = vfs.PathError("dyad read", path, vfs.ErrNotExist)
			return
		}
		if err := c.broker.cachedRead(p, got.Size()); err != nil {
			rerr = err
			return
		}
		if local {
			c.broker.stagingCap.MarkConsumed(path)
		}
		data = got
	})
	ann.End("read_single_buf")
	if rerr != nil {
		if fb := c.fallbackFS(); fb != nil && (errors.Is(rerr, faults.ErrDeviceFailed) || errors.Is(rerr, capacity.ErrEvicted)) {
			// Local copy unreadable (device failed) or evicted-but-spilled:
			// degrade to the shared mirror.
			got, ferr := fb.ReadFile(p, path)
			if ferr == nil {
				c.sys.Recovery.DegradedReads++
				c.sys.Recovery.DegradedBytes += got.Size()
				return got, nil
			}
			rerr = fmt.Errorf("%w (fallback: %v)", rerr, ferr)
		}
		return vfs.Payload{}, fmt.Errorf("dyad: consume %s: %w: %w", path, faults.ErrExhausted, rerr)
	}
	p.CritHop(path, "read", rStart, data.Size())
	return data, nil
}

// fetchRemote pulls path from the owner's broker, surviving broker crashes.
// Requests against a down broker cost the fetch timeout and are retried
// under the backoff policy; exhausted retries degrade to fetchDegraded.
func (c *Client) fetchRemote(p *sim.Proc, owner *Broker, path string) (vfs.Payload, error) {
	params := &c.sys.params
	c.sys.InflightFetches++
	defer func() { c.sys.InflightFetches-- }()
	for attempt := 0; ; attempt++ {
		// Request message to the owner broker.
		c.sys.cl.Transfer(p, c.broker.node, owner.node, 192)
		if !owner.Down() {
			break
		}
		c.sys.Recovery.Timeouts++
		c.sys.Recovery.RecoveryTime += params.FetchTimeout
		p.Sleep(params.FetchTimeout)
		p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "dyad", Name: "fetch_timeout",
			Class: trace.ClassRecovery, Start: p.Now() - params.FetchTimeout, Dur: params.FetchTimeout, Attr: path})
		if attempt >= params.FetchRetry.Max {
			cause := fmt.Errorf("dyad: broker %s: %w: %w", owner.node.Name(), faults.ErrTimeout, faults.ErrBrokerDown)
			return c.fetchDegraded(p, owner, path, cause)
		}
		c.sys.Recovery.Retries++
		delay := params.FetchRetry.Delay(attempt)
		c.sys.Recovery.RecoveryTime += delay
		p.Sleep(delay)
		p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "dyad", Name: "fetch_backoff",
			Class: trace.ClassRecovery, Start: p.Now() - delay, Dur: delay, Attr: path})
	}

	// Broker-side read under a shared lock, then an RDMA-style pull back
	// over the fabric (or the store-and-forward relay under the ablation).
	var data vfs.Payload
	var rerr error
	owner.srv.Use(p, params.BrokerService)
	owner.locks.WithShared(p, path, func() {
		got, ok := owner.stagingGet(path)
		if !ok {
			if owner.stagingCap.State(path) != capacity.StateUnknown {
				// Evicted under capacity pressure on the producer's node.
				rerr = vfs.PathError("dyad fetch", path, capacity.ErrEvicted)
				return
			}
			rerr = vfs.PathError("dyad fetch", path, vfs.ErrNotExist)
			return
		}
		c.sys.StagingReads++
		rerr = owner.cachedRead(p, got.Size())
		if rerr == nil {
			owner.stagingCap.MarkConsumed(path)
		}
		data = got
	})
	if rerr != nil {
		if errors.Is(rerr, faults.ErrDeviceFailed) || errors.Is(rerr, capacity.ErrEvicted) {
			// Broker answered but its device is gone (the staging copy is
			// unreadable too) or the frame was evicted: straight to the
			// shared mirror.
			return c.fetchDegraded(p, owner, path, rerr)
		}
		return vfs.Payload{}, fmt.Errorf("dyad: fetch %s: %w", path, rerr)
	}
	tStart := p.Now()
	if params.NoDirectTransfer {
		// Ablation: store-and-forward through the management node
		// instead of a direct producer->consumer pull.
		relay := c.sys.kvs.Node()
		c.sys.cl.Transfer(p, owner.node, relay, data.Size())
		c.sys.cl.Transfer(p, relay, c.broker.node, data.Size())
	} else {
		c.sys.cl.Transfer(p, owner.node, c.broker.node, data.Size())
	}
	p.CritHop(path, "transfer", tStart, data.Size())
	return data, nil
}

// fetchDegraded is the graceful-degradation path: the owner's broker is
// unreachable (or its data unreadable through it), so pull the file straight
// from the producer's staging area — the NVMe survives broker crashes — and
// fall back to the shared-filesystem mirror when the device itself is gone.
func (c *Client) fetchDegraded(p *sim.Proc, owner *Broker, path string, cause error) (vfs.Payload, error) {
	if got, ok := owner.stagingGet(path); ok && !errors.Is(cause, faults.ErrDeviceFailed) {
		start := p.Now()
		if _, err := owner.node.SSD.Read(p, got.Size()); err == nil {
			owner.stagingCap.MarkConsumed(path)
			c.sys.cl.Transfer(p, owner.node, c.broker.node, got.Size())
			c.sys.StagingReads++
			c.sys.Recovery.DegradedReads++
			c.sys.Recovery.DegradedBytes += got.Size()
			p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "dyad", Name: "degraded_read",
				Class: trace.ClassRecovery, Start: start, Dur: p.Now() - start, Bytes: got.Size(), Attr: path})
			return got, nil
		}
	}
	if fb := c.fallbackFS(); fb != nil {
		start := p.Now()
		got, err := fb.ReadFile(p, path)
		if err == nil {
			c.sys.Recovery.DegradedReads++
			c.sys.Recovery.DegradedBytes += got.Size()
			p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "dyad", Name: "degraded_read",
				Class: trace.ClassRecovery, Start: start, Dur: p.Now() - start, Bytes: got.Size(), Attr: "mirror"})
			return got, nil
		}
		cause = fmt.Errorf("%w (fallback: %v)", cause, err)
	}
	return vfs.Payload{}, fmt.Errorf("dyad: fetch %s: %w: %w", path, faults.ErrExhausted, cause)
}

// flowOf groups per-frame paths into a producer flow so the sync protocol
// switch is per producer-consumer pair, not per file: /dir/frame17.pb and
// /dir/frame18.pb belong to flow /dir.
func flowOf(path string) string {
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}
