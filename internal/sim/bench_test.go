package sim

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkSleepEvents measures kernel throughput: one process sleeping
// b.N times (schedule + heap + baton passing per event).
func BenchmarkSleepEvents(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkManyProcs measures baton passing across 100 interleaved procs.
func BenchmarkManyProcs(b *testing.B) {
	e := NewEngine(1)
	const procs = 100
	steps := b.N/procs + 1
	for i := 0; i < procs; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for s := 0; s < steps; s++ {
				p.Sleep(time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceContention measures queued grants under contention.
func BenchmarkResourceContention(b *testing.B) {
	e := NewEngine(1)
	r := NewResource(e, "dev", 1)
	const procs = 16
	steps := b.N/procs + 1
	for i := 0; i < procs; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for s := 0; s < steps; s++ {
				r.Use(p, 100*time.Nanosecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRNG measures the deterministic random stream.
func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
