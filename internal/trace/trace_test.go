package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Emit(Span{Proc: "p", Name: "op", Dur: time.Millisecond})
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Len() != 0 {
		t.Fatalf("nil recorder Len = %d", r.Len())
	}
	if r.Spans() != nil {
		t.Fatal("nil recorder returned spans")
	}
}

func TestRecorderKeepsEmissionOrder(t *testing.T) {
	r := NewRecorder()
	if !r.Enabled() {
		t.Fatal("live recorder reports disabled")
	}
	for i := 0; i < 5; i++ {
		r.Emit(Span{Proc: "p", Name: "op", Start: time.Duration(i)})
	}
	spans := r.Spans()
	if len(spans) != 5 || r.Len() != 5 {
		t.Fatalf("recorded %d spans, want 5", len(spans))
	}
	for i, s := range spans {
		if s.Start != time.Duration(i) {
			t.Fatalf("span %d has start %v: emission order not preserved", i, s.Start)
		}
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		ClassDetail: "detail", ClassMovement: "movement", ClassIdle: "idle",
		ClassCompute: "compute", ClassRecovery: "recovery",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("Class(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestAggregate(t *testing.T) {
	spans := []Span{
		{Proc: "p0", Component: "ssd", Name: "write", Dur: 3 * time.Microsecond, Bytes: 100},
		{Proc: "p0", Component: "net", Name: "rpc", Dur: 10 * time.Microsecond},
		{Proc: "p1", Component: "ssd", Name: "write", Dur: 5 * time.Microsecond, Bytes: 200},
		{Proc: "p1", Component: "ssd", Name: "read", Dur: time.Microsecond, Bytes: 50},
	}
	stats := Aggregate(spans)
	if len(stats) != 3 {
		t.Fatalf("got %d op stats, want 3: %+v", len(stats), stats)
	}
	// Sorted by (component, name): net/rpc, ssd/read, ssd/write.
	if stats[0].Component != "net" || stats[1].Name != "read" || stats[2].Name != "write" {
		t.Fatalf("unexpected order: %+v", stats)
	}
	w := stats[2]
	if w.Count != 2 || w.Bytes != 300 || w.Total != 8*time.Microsecond {
		t.Fatalf("ssd/write stats wrong: %+v", w)
	}
	if w.Min != 3*time.Microsecond || w.Max != 5*time.Microsecond {
		t.Fatalf("ssd/write min/max wrong: %+v", w)
	}
}

func TestHistBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0}, // < 1µs
		{time.Microsecond, 1},      // [1µs, 4µs)
		{3 * time.Microsecond, 1},
		{4 * time.Microsecond, 2},           // [4µs, 16µs)
		{time.Millisecond, 5},               // 1000µs -> 4^5=1024 ceiling
		{10 * time.Second, HistBuckets - 1}, // clamped to last bucket
	}
	for _, c := range cases {
		if got := HistBucket(c.d); got != c.want {
			t.Fatalf("HistBucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestProfilesBuildClassTrees(t *testing.T) {
	spans := []Span{
		{Proc: "producer0", Name: "md_compute", Class: ClassCompute, Dur: 10 * time.Millisecond},
		{Proc: "producer0", Component: "ssd", Name: "write", Class: ClassDetail, Dur: time.Millisecond},
		{Proc: "producer0", Name: "write_buf", Class: ClassMovement, Dur: 2 * time.Millisecond},
		{Proc: "consumer0", Name: "fetch", Class: ClassIdle, Dur: 5 * time.Millisecond},
		{Proc: "producer0", Name: "write_buf", Class: ClassMovement, Dur: 2 * time.Millisecond},
	}
	profs := Profiles(spans)
	if len(profs) != 2 {
		t.Fatalf("got %d profiles, want 2", len(profs))
	}
	// First-emission order: producer0 first.
	if profs[0].Proc != "producer0" || profs[1].Proc != "consumer0" {
		t.Fatalf("profile order %q, %q", profs[0].Proc, profs[1].Proc)
	}
	p := profs[0]
	if got := p.TotalOf("movement"); got != 4*time.Millisecond {
		t.Fatalf("movement total %v, want 4ms", got)
	}
	if got := p.TotalOf("compute"); got != 10*time.Millisecond {
		t.Fatalf("compute total %v, want 10ms", got)
	}
	// ClassDetail spans must not appear anywhere in the class trees.
	if n := p.Root.Find("write"); n != nil {
		t.Fatal("detail span leaked into breakdown profile")
	}
	wb := p.Root.Find("write_buf")
	if wb == nil || wb.Visits != 2 {
		t.Fatalf("op node under class missing or wrong visits: %+v", wb)
	}
}

func buildTestRuns() []Run {
	return []Run{
		{Label: "run A", Spans: []Span{
			{Proc: "producer0", Component: "workflow", Name: "md_compute", Class: ClassCompute, Start: 0, Dur: 1500 * time.Nanosecond},
			{Proc: "producer0", Component: "ssd", Name: "write", Start: 1500 * time.Nanosecond, Dur: 2 * time.Microsecond, Bytes: 4096, Attr: "node0/ssd"},
			{Proc: "consumer0", Component: "workflow", Name: "frame_consumed", Start: 4 * time.Microsecond}, // instant
		}},
		{Label: "run \"B\"", Spans: []Span{
			{Proc: "consumer0", Component: "lustre", Name: "ost_rpc", Class: ClassRecovery, Start: time.Millisecond, Dur: 30 * time.Millisecond},
		}},
	}
}

func TestWriteChromeShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, buildTestRuns()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Name string          `json:"name"`
			Cat  string          `json:"cat"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteChrome emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	var meta, complete, instant int
	pids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		pids[e.Pid] = true
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
		case "i":
			instant++
		}
	}
	// 2 process_name + 3 thread_name metadata records.
	if meta != 5 || complete != 3 || instant != 1 {
		t.Fatalf("event mix meta=%d complete=%d instant=%d, want 5/3/1", meta, complete, instant)
	}
	if !pids[1] || !pids[2] || len(pids) != 2 {
		t.Fatalf("pids %v, want {1, 2}", pids)
	}
	// 1500ns must render as fractional microseconds, not truncate to 1µs.
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "md_compute" && e.Dur != 1.5 {
			t.Fatalf("md_compute dur %v µs, want 1.5", e.Dur)
		}
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	runs := buildTestRuns()
	var a, b bytes.Buffer
	if err := WriteChrome(&a, runs); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, runs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two serializations of the same runs differ")
	}
}
