package core

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

func critCfg(b Backend) Config {
	return Config{Backend: b, Model: tinyModel(), Frames: 6, Pairs: 2,
		SingleNode: b != Lustre, Seed: 7, CritPath: true}
}

// Recording is observation-only: every measured number of a recorded run
// must be byte-identical to the same run unrecorded.
func TestCritPathObservationOnly(t *testing.T) {
	for _, b := range []Backend{DYAD, XFS, Lustre} {
		cfg := critCfg(b)
		rec, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		cfg.CritPath = false
		plain, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if rec.Makespan != plain.Makespan || rec.Producer != plain.Producer || rec.Consumer != plain.Consumer {
			t.Errorf("%s: recording changed measurements: %+v vs %+v", b, rec.Makespan, plain.Makespan)
		}
		if rec.Crit == nil || plain.Crit != nil {
			t.Errorf("%s: Crit presence wrong (rec=%v plain=%v)", b, rec.Crit != nil, plain.Crit != nil)
		}
	}
}

// The graph — and everything derived from it — is byte-identical at any
// intra-run shard count and across pooled engine reuse.
func TestCritPathDeterministicAcrossShardWorkers(t *testing.T) {
	for _, b := range []Backend{DYAD, XFS, Lustre} {
		cfg := critCfg(b)
		serial, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		cfg.ShardWorkers = 4
		sharded, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if !reflect.DeepEqual(serial.Crit.Path, sharded.Crit.Path) {
			t.Errorf("%s: critical path differs across shard workers", b)
		}
		if !reflect.DeepEqual(serial.Crit.Frames, sharded.Crit.Frames) {
			t.Errorf("%s: frame lineages differ across shard workers", b)
		}
	}
}

// Pooled engine reuse (RunMany recycling) must not leak one run's recorder
// into the next: only the recording repetition carries a summary, and its
// measurements match the rest of the batch.
func TestCritPathPooledReuseInvisible(t *testing.T) {
	cfgs := RepeatConfigs(critCfg(DYAD), 3)
	cfgs[1].CritPath = false
	cfgs[2].CritPath = false
	results, err := RunMany(cfgs, 1) // one worker: reps 2,3 reuse rep 1's engine
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Crit == nil || results[1].Crit != nil || results[2].Crit != nil {
		t.Fatalf("Crit placement wrong: %v %v %v",
			results[0].Crit != nil, results[1].Crit != nil, results[2].Crit != nil)
	}
	if results[0].Makespan != results[1].Makespan {
		// Reps share a seed schedule shifted per rep; compare rep 1's
		// recorded measurements against an unpooled unrecorded run instead.
		cfg := cfgs[0]
		cfg.CritPath = false
		plain, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Makespan != plain.Makespan {
			t.Errorf("recorded pooled rep diverges from plain run: %v vs %v", results[0].Makespan, plain.Makespan)
		}
	}
}

func TestValidateRejectsCritPathWithTraceStream(t *testing.T) {
	cfg := critCfg(DYAD)
	cfg.TraceStream = trace.NewChromeStream(discard{})
	if err := cfg.Validate(); err == nil {
		t.Fatal("CritPath+TraceStream validated, want rejection")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Size-only sweeps (RealFrames=false, the default) must record full
// provenance without touching payload bytes; RealFrames runs agree on the
// lineage shape.
func TestCritPathSizeOnlyAndRealFramesLineages(t *testing.T) {
	cfg := critCfg(DYAD)
	sizeOnly, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RealFrames = true
	real, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Pairs * cfg.Frames
	if len(sizeOnly.Crit.Frames) != want || len(real.Crit.Frames) != want {
		t.Fatalf("lineages: size-only %d, real %d, want %d",
			len(sizeOnly.Crit.Frames), len(real.Crit.Frames), want)
	}
	for i, fl := range sizeOnly.Crit.Frames {
		if len(fl.Hops) == 0 {
			t.Fatalf("frame %s has no hops", fl.Key)
		}
		if got, want := len(fl.Hops), len(real.Crit.Frames[i].Hops); got != want {
			t.Errorf("frame %s: %d hops size-only vs %d real", fl.Key, got, want)
		}
	}
	// Every frame's critical invariant: the consume hop is last and every
	// hop's interval is well-formed.
	for _, fl := range sizeOnly.Crit.Frames {
		last := fl.Hops[len(fl.Hops)-1]
		if last.Name != "consume" {
			t.Errorf("frame %s: last hop %q, want consume", fl.Key, last.Name)
		}
		for _, h := range fl.Hops {
			if h.End < h.Start {
				t.Errorf("frame %s hop %s: End %v < Start %v", fl.Key, h.Name, h.End, h.Start)
			}
		}
	}
}

// The extracted path must tile the makespan on every backend, healthy or
// degraded: Attributed + Untracked == Makespan is the invariant the diff
// report's attribution guarantee rests on.
func TestCritPathTilesMakespan(t *testing.T) {
	for _, b := range []Backend{DYAD, XFS, Lustre} {
		res, err := Run(critCfg(b))
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		p := res.Crit.Path
		if p.Attributed+p.Untracked != p.Makespan {
			t.Errorf("%s: tiling broken: %v + %v != %v", b, p.Attributed, p.Untracked, p.Makespan)
		}
		if p.Makespan != res.Makespan {
			t.Errorf("%s: path makespan %v != run makespan %v", b, p.Makespan, res.Makespan)
		}
	}
}
