package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/stats"
)

// freqStrides are the output strides of the frequency-scaling study (§IV-F).
var freqStrides = []int{1, 5, 10, 50}

// freqScaling runs the §IV-F sweep for one model and reports the series.
func freqScaling(id, title string, model models.Model, paperProd, paperOverallLo, paperOverallHi float64, o Options) (*Report, error) {
	o = o.Defaults()
	r := &Report{
		ID:      id,
		Title:   title,
		Columns: append([]string{"backend", "stride", "freq"}, stdCols...),
	}
	type agg2 struct{ dy, lu core.Aggregate }
	byStride := map[int]*agg2{}
	for _, stride := range freqStrides {
		a2 := &agg2{}
		byStride[stride] = a2
		for bi, b := range []core.Backend{core.DYAD, core.Lustre} {
			agg, err := runAgg(core.Config{
				Backend: b, Model: model, Pairs: fig8Pairs, Stride: stride,
			}, o)
			if err != nil {
				return nil, err
			}
			freq := model.Frequency(stride)
			r.Rows = append(r.Rows, append(
				[]string{b.String(), fmt.Sprintf("%d", stride), fmtDur(freq)},
				aggRow(agg)...))
			if bi == 0 {
				a2.dy = agg
			} else {
				a2.lu = agg
			}
		}
	}
	lo, hi := byStride[freqStrides[0]], byStride[freqStrides[len(freqStrides)-1]]
	r.Notes = append(r.Notes,
		ratioNote("Lustre/DYAD production (stride 50)", paperProd,
			stats.Ratio(hi.lu.ProdTotalMean(), hi.dy.ProdTotalMean())))
	loRatio := stats.Ratio(lo.lu.ConsTotalMean(), lo.dy.ConsTotalMean())
	hiRatio := stats.Ratio(hi.lu.ConsTotalMean(), hi.dy.ConsTotalMean())
	if paperOverallLo > 0 {
		r.Notes = append(r.Notes,
			ratioNote("Lustre/DYAD overall consumption (stride 1)", paperOverallLo, loRatio),
			ratioNote("Lustre/DYAD overall consumption (stride 50)", paperOverallHi, hiRatio))
	} else {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"Lustre/DYAD overall consumption widens with stride: %.1fx (stride 1) -> %.1fx (stride 50) (paper: gap widens, unquantified)",
			loRatio, hiRatio))
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("idle growth with stride — DYAD: %s -> %s, Lustre: %s -> %s (paper: idle increases with stride for both)",
			stats.FormatSeconds(lo.dy.ConsIdle.Mean), stats.FormatSeconds(hi.dy.ConsIdle.Mean),
			stats.FormatSeconds(lo.lu.ConsIdle.Mean), stats.FormatSeconds(hi.lu.ConsIdle.Mean)))
	return r, nil
}

// Fig11 reproduces Figure 11: frequency scaling with JAC across strides
// 1/5/10/50 on two node groups with 16 pairs. Paper headlines: DYAD ~4.8x
// faster production; consumption gap widens with stride.
func Fig11(o Options) (*Report, error) {
	return freqScaling("fig11",
		"Frequency scaling, JAC (strides 1/5/10/50, 16 pairs)",
		mustModel("JAC"), 4.8, 0, 0, o)
}

// Fig12 reproduces Figure 12: frequency scaling with STMV. Paper
// headlines: DYAD ~2.0x faster production; overall consumption 13.0x
// (stride 1) to 192.2x (stride 50) faster.
func Fig12(o Options) (*Report, error) {
	return freqScaling("fig12",
		"Frequency scaling, STMV (strides 1/5/10/50, 16 pairs)",
		mustModel("STMV"), 2.0, 13.0, 192.2, o)
}
