// Package stats provides the small statistical helpers the experiment
// harness uses to summarize repeated runs: mean, standard deviation,
// min/max, percentiles, and ratio formatting.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	// N counts the observations summarized; NaN inputs are excluded.
	N int
	// NaNs counts NaN inputs dropped from the sample. A nonzero count
	// means an upstream computation produced undefined values (e.g. a
	// ratio over zero) — the summary describes only the defined ones.
	NaNs   int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. An empty sample yields zeros. NaN
// inputs are filtered out and counted in Summary.NaNs rather than silently
// poisoning every statistic (one NaN used to turn Mean, Std, and — through
// sort's undefined NaN ordering — Min/Max/Median into garbage).
func Summarize(xs []float64) Summary {
	nans := 0
	for _, x := range xs {
		if math.IsNaN(x) {
			nans++
		}
	}
	if nans == 0 {
		return summarizeDefined(xs)
	}
	valid := make([]float64, 0, len(xs)-nans)
	for _, x := range xs {
		if !math.IsNaN(x) {
			valid = append(valid, x)
		}
	}
	s := summarizeDefined(valid)
	s.NaNs = nans
	return s
}

// summarizeDefined summarizes a NaN-free sample.
func summarizeDefined(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = Percentile(sorted, 50)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Percentile returns the p-th percentile (0-100) of an ascending-sorted
// sample using linear interpolation. The sample must be NaN-free (NaN has
// no rank; Summarize filters NaNs before sorting) — a NaN p returns NaN.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SummarizeDurations is Summarize over durations, in seconds.
func SummarizeDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return Summarize(xs)
}

// MeanDuration returns the mean of ds.
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Ratio returns a/b, or NaN when b == 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}

// FormatRatio renders a speedup ratio as the paper does ("5.3x").
func FormatRatio(r float64) string { return FormatRatioPrec(r, 1) }

// FormatRatioPrec renders a ratio with prec decimal places. Undefined
// ratios — NaN or ±Inf, as produced by dividing through a zero or
// fault-killed baseline — render as "n/a" instead of leaking "NaNx" or
// "+Infx" into reports.
func FormatRatioPrec(r float64, prec int) string {
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return "n/a"
	}
	return fmt.Sprintf("%.*fx", prec, r)
}

// FormatSeconds renders a duration in engineering units matching the
// magnitude (µs, ms, s).
func FormatSeconds(sec float64) string {
	switch {
	case sec == 0:
		return "0"
	case sec < 1e-3:
		return fmt.Sprintf("%.1fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.3fs", sec)
	}
}
