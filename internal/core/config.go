// Package core implements the paper's primary contribution: the
// point-to-point MD-inspired producer/consumer workflow (§IV-C) and its
// measurement methodology, which decomposes production and consumption time
// into data-movement time and idle (synchronization) time across three data
// management solutions: DYAD, node-local XFS, and Lustre.
//
// A workflow is an ensemble of producer-consumer pairs. Each producer
// emulates an MD simulation: it sleeps for one stride of MD steps,
// serializes a frame, and writes it through the configured backend. Each
// consumer reads the frame back, deserializes it, and sleeps for the
// analytics duration (set to the nominal frame-generation frequency, as in
// the paper).
//
// Synchronization semantics (the crux of the study):
//
//   - DYAD: fully pipelined. The producer never waits for the consumer; the
//     consumer's first touch blocks on the KVS (loose coupling), after which
//     data is always ready and the cheap lock protocol is used.
//   - XFS / Lustre: coarse-grained manual synchronization, which the paper
//     (§III) describes as serializing producer and consumer tasks ("not
//     overlapping producer and consumer tasks"): the producer's next
//     simulation task is launched only after the consumer has read the
//     previous frame — the workflow-manager-style coupling real traditional
//     workflows use. The consumer's per-frame explicit_sync wait therefore
//     spans the producer's full compute+write period, while the producer's
//     own wait is task-launch serialization, not measured production time.
package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/capacity"
	"repro/internal/cluster"
	"repro/internal/dyad"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/trace"
)

// Backend selects the data management solution under test.
type Backend int

// The three data management solutions of the study.
const (
	DYAD Backend = iota
	XFS
	Lustre
)

// String returns the backend name as the paper spells it.
func (b Backend) String() string {
	switch b {
	case DYAD:
		return "DYAD"
	case XFS:
		return "XFS"
	case Lustre:
		return "Lustre"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend parses a backend name (case-sensitive, as printed).
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "DYAD", "dyad":
		return DYAD, nil
	case "XFS", "xfs":
		return XFS, nil
	case "Lustre", "lustre":
		return Lustre, nil
	}
	return 0, fmt.Errorf("core: unknown backend %q (want DYAD, XFS, or Lustre)", s)
}

// MaxProcsPerNode mirrors the paper's placement rule: at most 8 processes
// per node (one per GPU on Corona).
const MaxProcsPerNode = 8

// Config describes one workflow run.
type Config struct {
	// Backend is the data management solution.
	Backend Backend
	// Model is the molecular model (Table I).
	Model models.Model
	// Stride overrides the model's default output stride when > 0.
	Stride int
	// Frames is the number of frames each producer emits (paper: 128).
	Frames int
	// Pairs is the number of producer-consumer pairs in the ensemble.
	Pairs int
	// SingleNode collocates all processes on one node (the paper's
	// DYAD/XFS single-node configuration). Otherwise producers occupy the
	// first half of the compute nodes and consumers the second half.
	SingleNode bool
	// Seed drives all stochastic elements (compute jitter, noise).
	Seed uint64
	// ComputeJitter is the relative standard deviation of per-frame MD
	// compute time (run-to-run variability). Zero disables jitter.
	ComputeJitter float64
	// LustreNoise enables background interference on the Lustre OSTs.
	LustreNoise bool
	// RealFrames makes producers encode genuine frame payloads and
	// consumers decode and verify them. Costly in host time; meant for
	// correctness tests and examples, not parameter sweeps.
	RealFrames bool
	// KeepProfiles retains per-process Caliper profiles on the Result for
	// Thicket analysis (Figures 9 and 10).
	KeepProfiles bool
	// DYADOverride optionally replaces the DYAD cost model — used by the
	// ablation study to disable individual DYAD mechanisms. Ignored for
	// other backends.
	DYADOverride *dyad.Params
	// ConsumerHeadStart delays every consumer process's start by this much
	// virtual time — the producer job's head start over the consumer job.
	// Real coarse-grained workflows routinely launch the producer first, so
	// the consumer's first-frame pipeline-fill wait (one production period
	// for DYAD's loose coupling) shrinks by the head start. The calibration
	// harness (internal/calib) fits this value against the paper's Figure
	// 5–7 consumption ratios. The delay is job-launch scheduling, not
	// measured production or consumption time: it appears as a detail span
	// (job_start_delay) and in no movement/idle column. Zero (the default)
	// is byte-identical to a build without the knob.
	ConsumerHeadStart time.Duration
	// SpecTune, when non-nil, adjusts the hardware profile after the
	// placement-derived CoronaProfile is built and before any device is
	// constructed — the calibration hook for perturbing cost-model
	// parameters (cluster.Spec.SetParam) without forking profiles. It must
	// be deterministic (a pure function of the spec) and cheap; it runs once
	// per run. Nil (the default) leaves the profile untouched.
	SpecTune func(*cluster.Spec)
	// ForceCoarseSync applies the traditional backends' coarse-grained,
	// serialized producer/consumer coupling to DYAD runs too. It isolates
	// the value of DYAD's loose coupling: with it set, DYAD keeps its fast
	// transport but loses the producer/consumer overlap.
	ForceCoarseSync bool
	// StragglerFactor, when > 1, degrades the SSD of compute node 0 (a
	// producer node) by that factor — fault injection for straggler
	// studies.
	StragglerFactor float64
	// Faults, when non-nil and enabled, derives a deterministic fault plan
	// from the spec and the run seed and injects it at scheduled virtual
	// times: device stalls/failures, link degradation/outages, DYAD broker
	// crashes, Lustre server outages (DESIGN.md §3d). Nil or a disabled
	// spec adds zero cost.
	Faults *faults.Spec
	// LustreFallback deploys a shared Lustre mirror next to a DYAD run:
	// producers write a second copy there and degraded consumers read it
	// when a producer's broker and staging device are both unreachable.
	// DYAD-only; adds the mirror's write cost to the production path.
	LustreFallback bool
	// Capacity, when non-nil and enabled, imposes finite burst-buffer
	// budgets on the node-local staging layers (DYAD NVMe staging + RAM
	// cache, or the XFS filesystem; Lustre has no node-local layer to
	// bound): frames are evicted under the spec's policy, spill to the
	// LustreFallback mirror when one is deployed, and producers feel
	// back-pressure when eviction cannot make room (DESIGN.md §3i). Nil or
	// a disabled spec (the default) keeps every budget infinite and the
	// timeline byte-identical to a build without the capacity layer.
	Capacity *capacity.Spec
	// MaxEvents / MaxVirtualTime arm the engine watchdog. Zero means
	// unlimited on healthy runs; fault-injected runs get generous defaults
	// so a livelocked recovery loop aborts instead of hanging the batch.
	MaxEvents      int64
	MaxVirtualTime time.Duration
	// Trace, when non-nil, receives one line per workflow event
	// (frame produced/consumed) with virtual timestamps — an execution
	// timeline for debugging runs.
	Trace io.Writer
	// RecordSpans enables the virtual-time span tracer: every modeled
	// operation (SSD I/O, transfers, RPCs, KVS ops, journal commits,
	// recovery waits) emits a span, surfaced on Result.Spans/SpanStats.
	// Spans are observations only — recording never touches the virtual
	// timeline or any RNG stream, so a traced run's measurements are
	// byte-identical to the same run untraced. Off (the default) costs one
	// nil check per operation and zero allocations.
	RecordSpans bool
	// CritPath enables the causal dependency-graph recorder: the sim kernel
	// records proc spawn/wake/block edges, the backends record write→read
	// tokens and per-frame provenance hops, and collect extracts the run's
	// critical path and frame lineages onto Result.Crit (DESIGN.md §3k).
	// Recording is observation-only — it never touches the virtual timeline
	// or any RNG stream, so a recorded run's measurements are byte-identical
	// to the same run unrecorded. Off (the default) costs one nil check per
	// hook site and zero allocations. Mutually exclusive with TraceStream
	// (flow-event merging needs buffered spans).
	CritPath bool
	// ShardWorkers selects the intra-run engine mode: values > 1 shard the
	// event queue across that many concurrently-maintained partitions
	// (processes grouped by compute node, lookahead bounded by the cluster's
	// minimum link latency — DESIGN.md §3g). The virtual timeline and every
	// measurement are byte-identical at any value; only host wall-clock
	// behavior changes. 0 or 1 (the default) is the serial engine.
	ShardWorkers int
	// MetricsInterval, when > 0, attaches a virtual-time metrics registry
	// sampling every resource series at this fixed interval, surfaced on
	// Result.Metrics. Sampling is observation-only — probes read state
	// without scheduling events or drawing randomness, so a sampled run's
	// measurements are byte-identical to the same run unsampled and
	// independent of the worker count. Zero (the default) costs one nil
	// check per event and per instrumented operation.
	MetricsInterval time.Duration
	// TraceStream, when non-nil, streams the run's spans straight into a
	// shared Chrome trace writer instead of retaining them: each span is
	// serialized the moment it is emitted, Result.Spans stays nil, and
	// Result.SpanStats comes from an incremental fold — recorder memory is
	// O(live procs + operation kinds) regardless of run length. The bytes
	// written are identical to buffered RecordSpans export of the same run
	// (WriteChrome is a loop over the same stream). Mutually exclusive with
	// RecordSpans. The stream is not safe for concurrent runs: at most one
	// run per RunMany batch may set it (the experiments layer streams only
	// the first repetition, matching buffered tracing).
	TraceStream *trace.ChromeStream
	// MetricsSink, when non-nil, streams each metrics sample as one CSV row
	// the moment the sampler fires instead of buffering sample vectors:
	// Result.Metrics stays nil and registry memory is O(series count)
	// regardless of run length, with bytes identical to buffered WriteCSV.
	// Requires MetricsInterval > 0. Like TraceStream, at most one run per
	// batch may set it. Because the samples are not retained, streaming
	// runs cannot feed the Prometheus/dashboard exporters.
	MetricsSink *metrics.CSVSink
	// MetricsRunLabel overrides the CSV run header label for MetricsSink
	// (the experiments layer scopes it as "<figure> <config>"). Empty means
	// Label().
	MetricsRunLabel string
}

// EffectiveStride returns the configured stride, or the model's default.
func (c Config) EffectiveStride() int {
	if c.Stride > 0 {
		return c.Stride
	}
	return c.Model.Stride
}

// Frequency returns the nominal frame-generation period for this config.
func (c Config) Frequency() time.Duration {
	return c.Model.Frequency(c.EffectiveStride())
}

// ComputeNodes returns the number of compute nodes the placement needs.
func (c Config) ComputeNodes() int {
	if c.SingleNode {
		return 1
	}
	// Producers on one half, consumers on the other, 8 per node.
	perSide := (c.Pairs + MaxProcsPerNode - 1) / MaxProcsPerNode
	if perSide < 1 {
		perSide = 1
	}
	return 2 * perSide
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Pairs < 1 {
		return fmt.Errorf("core: pairs %d < 1", c.Pairs)
	}
	if c.Frames < 1 {
		return fmt.Errorf("core: frames %d < 1", c.Frames)
	}
	if c.Model.Atoms <= 0 || c.Model.StepsPerSecond <= 0 {
		return fmt.Errorf("core: model %q not initialized", c.Model.Name)
	}
	if c.Stride < 0 {
		return fmt.Errorf("core: stride %d < 0", c.Stride)
	}
	if c.SingleNode {
		if c.Backend == Lustre {
			return fmt.Errorf("core: Lustre is not a single-node configuration in this study")
		}
		if 2*c.Pairs > MaxProcsPerNode {
			return fmt.Errorf("core: %d pairs need %d processes, above the %d-per-node limit", c.Pairs, 2*c.Pairs, MaxProcsPerNode)
		}
	} else {
		if c.Backend == XFS {
			return fmt.Errorf("core: XFS cannot move data between nodes (paper §III-B); use SingleNode")
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if c.LustreFallback && c.Backend != DYAD {
		return fmt.Errorf("core: LustreFallback is a DYAD degraded-mode option; backend is %s", c.Backend)
	}
	if c.Capacity != nil {
		horizon := c.Frequency() * time.Duration(c.Frames)
		if err := c.Capacity.Validate(horizon); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if c.Capacity.Enabled() {
			if c.Backend == Lustre {
				return fmt.Errorf("core: Capacity bounds node-local staging; Lustre has none")
			}
			if c.Backend == XFS && c.Capacity.CacheBytes > 0 {
				return fmt.Errorf("core: Capacity.CacheBytes is a DYAD consumer-cache budget; backend is %s", c.Backend)
			}
		}
	}
	if c.ConsumerHeadStart < 0 {
		return fmt.Errorf("core: ConsumerHeadStart %v < 0", c.ConsumerHeadStart)
	}
	if c.MaxEvents < 0 {
		return fmt.Errorf("core: MaxEvents %d < 0", c.MaxEvents)
	}
	if c.MaxVirtualTime < 0 {
		return fmt.Errorf("core: MaxVirtualTime %v < 0", c.MaxVirtualTime)
	}
	if c.MetricsInterval < 0 {
		return fmt.Errorf("core: MetricsInterval %v < 0", c.MetricsInterval)
	}
	if c.ShardWorkers < 0 {
		return fmt.Errorf("core: ShardWorkers %d < 0", c.ShardWorkers)
	}
	if c.TraceStream != nil && c.RecordSpans {
		return fmt.Errorf("core: TraceStream and RecordSpans are mutually exclusive (streamed spans are not retained)")
	}
	if c.CritPath && c.TraceStream != nil {
		return fmt.Errorf("core: CritPath and TraceStream are mutually exclusive (flow-event merging needs buffered spans)")
	}
	if c.MetricsSink != nil && c.MetricsInterval <= 0 {
		return fmt.Errorf("core: MetricsSink requires MetricsInterval > 0")
	}
	return nil
}

// Label renders a short configuration descriptor for reports.
func (c Config) Label() string {
	placement := "multi-node"
	if c.SingleNode {
		placement = "single-node"
	}
	return fmt.Sprintf("%s/%s pairs=%d stride=%d frames=%d %s",
		c.Backend, c.Model.Name, c.Pairs, c.EffectiveStride(), c.Frames, placement)
}
