// Package repro is the public API of this reproduction of "Empirical Study
// of Molecular Dynamics Workflow Data Movement: DYAD vs. Traditional I/O
// Systems" (IPPS 2024).
//
// It exposes three layers:
//
//   - Workflow runs: configure and execute one MD-inspired
//     producer/consumer workflow over a simulated HPC cluster with the
//     DYAD, XFS, or Lustre data-management backend, and obtain the paper's
//     time decomposition (data movement vs idle) for producers and
//     consumers. Independent runs and repetitions fan out across a worker
//     pool with deterministic (worker-count-independent) results. See Run,
//     Repeat, RunMany, and Aggregated.
//
//   - Paper experiments: regenerate any table or figure of the paper's
//     evaluation with Experiments / RunExperiment.
//
//   - Workload building blocks: the Table I/II molecular model registry
//     (Models, ModelByName) and the frame wire format, for composing
//     custom studies.
//
// The runnable programs in cmd/ and examples/ are thin wrappers over this
// package.
package repro

import (
	"io"

	"repro/internal/calib"
	"repro/internal/capacity"
	"repro/internal/core"
	"repro/internal/critpath"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/trace"
)

// Backend selects the data management solution of a workflow run.
type Backend = core.Backend

// The three data management solutions of the study.
const (
	DYAD   = core.DYAD
	XFS    = core.XFS
	Lustre = core.Lustre
)

// ParseBackend parses "DYAD", "XFS", or "Lustre".
func ParseBackend(s string) (Backend, error) { return core.ParseBackend(s) }

// Config describes one workflow run; see core.Config for field semantics.
type Config = core.Config

// Result is the measurement of one workflow run.
type Result = core.Result

// Totals is a movement/idle time decomposition.
type Totals = core.Totals

// Aggregate summarizes repeated runs.
type Aggregate = core.Aggregate

// Model describes a molecular model (Table I).
type Model = models.Model

// FaultSpec configures deterministic fault injection for a run; attach one
// to Config.Faults. See faults.Spec for field semantics.
type FaultSpec = faults.Spec

// FaultEvent is one explicit injected fault (Config.Faults.Events).
type FaultEvent = faults.Event

// RecoveryMetrics counts injected faults and the recovery work they
// caused; every Result carries one (Result.Recovery).
type RecoveryMetrics = faults.Metrics

// Fault sentinels: errors surfaced by injected failures are errors.Is-able
// against these.
var (
	ErrDeviceFailed = faults.ErrDeviceFailed
	ErrTimeout      = faults.ErrTimeout
	ErrBrokerDown   = faults.ErrBrokerDown
	ErrLinkDown     = faults.ErrLinkDown
	ErrExhausted    = faults.ErrExhausted
)

// CapacitySpec bounds the burst buffer for a run; attach one to
// Config.Capacity. The zero value (or a nil pointer) means infinite
// capacity and leaves every timeline byte-identical to a build without the
// capacity layer. See capacity.Spec for field semantics.
type CapacitySpec = capacity.Spec

// CapacityProvision is one scheduled capacity change (CapacitySpec.Plan).
type CapacityProvision = capacity.Provision

// CapacityMetrics counts evictions, spills, drops, and back-pressure
// stalls; every Result carries one (Result.Capacity).
type CapacityMetrics = capacity.Metrics

// Eviction policy names for CapacitySpec.Policy.
const (
	PolicyLRU          = capacity.PolicyLRU
	PolicyConsumedDrop = capacity.PolicyConsumedDrop
)

// Capacity sentinels: a write that cannot fit even after evicting returns
// an error chain wrapping ErrNoSpace; a read of an evicted-and-unspilled
// frame wraps ErrEvicted (possibly via ErrExhausted after the degraded-read
// ladder).
var (
	ErrNoSpace = capacity.ErrNoSpace
	ErrEvicted = capacity.ErrEvicted
)

// Run executes one workflow run.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// Repeat runs cfg reps times with distinct seeds, in parallel across one
// worker per available core. Results are deterministic: identical to
// serial execution for any worker count.
func Repeat(cfg Config, reps int) ([]*Result, error) { return core.Repeat(cfg, reps) }

// RepeatWorkers is Repeat with an explicit worker count (<= 0 means one
// per available core).
func RepeatWorkers(cfg Config, reps, workers int) ([]*Result, error) {
	return core.RepeatWorkers(cfg, reps, workers)
}

// RunMany executes independent workflow runs across a worker pool,
// preserving input order and collecting every run's error instead of
// aborting the batch on the first. See core.RunMany.
func RunMany(cfgs []Config, workers int) ([]*Result, error) { return core.RunMany(cfgs, workers) }

// Aggregated summarizes repeated results of one configuration.
func Aggregated(results []*Result) Aggregate { return core.Aggregated(results) }

// Models returns the paper's molecular model registry (Table I order).
func Models() []Model { return models.Registry() }

// ModelByName looks up a model ("JAC", "ApoA1", "F1 ATPase", "STMV").
func ModelByName(name string) (Model, error) { return models.ByName(name) }

// CustomModel builds a user-defined molecular model. A zero stride derives
// one matching the paper's ~0.82 s frame-generation frequency.
func CustomModel(name string, atoms int, stepsPerSecond float64, stride int) (Model, error) {
	return models.Custom(name, atoms, stepsPerSecond, stride)
}

// TraceSpan is one virtual-time span of a traced run (Result.Spans when
// Config.RecordSpans is set). See trace.Span for field semantics.
type TraceSpan = trace.Span

// TraceOpStat is one operation's aggregated counters (Result.SpanStats).
type TraceOpStat = trace.OpStat

// TraceRun pairs a label with one run's span stream for Chrome export.
type TraceRun = trace.Run

// WriteChromeTrace serializes traced runs as a Chrome trace-event JSON
// document (loadable in Perfetto / chrome://tracing). Output is
// byte-deterministic for deterministic span streams.
func WriteChromeTrace(w io.Writer, runs []TraceRun) error { return trace.WriteChrome(w, runs) }

// TraceCollector accumulates traced runs and paper-style time-breakdown
// rows across experiments; attach one via ExperimentOptions.Trace.
type TraceCollector = experiments.Collector

// NewTraceCollector returns an empty trace collector.
func NewTraceCollector() *TraceCollector { return experiments.NewCollector() }

// ChromeTraceStream is an incremental Chrome trace writer: runs attached to
// it (Config.TraceStream, ExperimentOptions.TraceStream) serialize each
// span the moment it is emitted instead of retaining it, keeping tracing
// memory bounded on arbitrarily long runs. Bytes are identical to buffered
// collection followed by WriteChromeTrace. Close finishes the document.
type ChromeTraceStream = trace.ChromeStream

// NewChromeTraceStream starts a Chrome trace-event JSON document on w.
func NewChromeTraceStream(w io.Writer) *ChromeTraceStream { return trace.NewChromeStream(w) }

// MetricsRegistry is a run's sampled virtual-time metrics (Result.Metrics
// when Config.MetricsInterval is set). See metrics.Registry.
type MetricsRegistry = metrics.Registry

// MetricsRun pairs a label with one run's sampled registry for export.
type MetricsRun = metrics.Run

// WriteMetricsCSV serializes sampled runs as time-series CSV (one block
// per run, registration-order columns). Byte-deterministic.
func WriteMetricsCSV(w io.Writer, runs []MetricsRun) error { return metrics.WriteCSV(w, runs) }

// WriteMetricsProm serializes an end-of-run snapshot of sampled runs in
// Prometheus text exposition format. Byte-deterministic.
func WriteMetricsProm(w io.Writer, runs []MetricsRun) error { return metrics.WriteProm(w, runs) }

// MetricsCollector accumulates sampled runs and utilization-dashboard rows
// across experiments; attach one via ExperimentOptions.Metrics.
type MetricsCollector = experiments.MetricsCollector

// NewMetricsCollector returns an empty metrics collector.
func NewMetricsCollector() *MetricsCollector { return experiments.NewMetricsCollector() }

// MetricsCSVSink is an incremental metrics CSV writer: runs attached to it
// (Config.MetricsSink) write each sample as one CSV row the moment the
// sampler fires instead of buffering sample vectors, keeping metering
// memory bounded on arbitrarily long runs. Bytes are identical to buffered
// collection followed by WriteMetricsCSV. Flush before closing the file.
type MetricsCSVSink = metrics.CSVSink

// NewMetricsCSVSink starts a metrics time-series CSV document on w.
func NewMetricsCSVSink(w io.Writer) *MetricsCSVSink { return metrics.NewCSVSink(w) }

// MetricsStreamer streams each experiment's metered repetition into a
// MetricsCSVSink; attach one via ExperimentOptions.MetricsStream.
type MetricsStreamer = experiments.MetricsStream

// CritPath is one run's extracted critical path: the gating chain's blame
// totals per labeled region and class, the synchronization waits it flowed
// through, and near-critical slack statistics (Result.Crit.Path when
// Config.CritPath is set). See critpath.CritPath.
type CritPath = critpath.CritPath

// FrameLineage is one frame's provenance record: every hop the payload
// took from production to consumption (Result.Crit.Frames).
type FrameLineage = critpath.FrameLineage

// CritSummary bundles a run's critical path and frame lineages
// (Result.Crit when Config.CritPath is set).
type CritSummary = critpath.Summary

// ExplainDiff is an edge-by-edge differential of two runs' critical paths:
// every makespan-gap contribution attributed to a named graph edge.
type ExplainDiff = critpath.ExplainDiff

// DiffCritPaths diffs two extracted critical paths edge-by-edge.
func DiffCritPaths(labelA string, a *CritPath, labelB string, b *CritPath) *ExplainDiff {
	return critpath.Diff(labelA, a, labelB, b)
}

// WriteWaterfallCSV writes frame lineages as a long-format waterfall CSV
// (one row per provenance hop). Byte-deterministic.
func WriteWaterfallCSV(w io.Writer, label string, frames []FrameLineage) error {
	return critpath.WriteWaterfall(w, []critpath.LineageSet{{Label: label, Frames: frames}})
}

// CritPathCollector accumulates critical-path summaries and blame rows
// across experiments; attach one via ExperimentOptions.CritPath.
type CritPathCollector = experiments.CritCollector

// NewCritPathCollector returns an empty critical-path collector.
func NewCritPathCollector() *CritPathCollector { return experiments.NewCritCollector() }

// ExplainBackends runs one explain workload ("fig5": DYAD vs XFS
// single-node, "fig6": DYAD vs Lustre two-node) with critical-path
// recording on both sides and returns the differential blame report.
func ExplainBackends(target string, o ExperimentOptions) (*ExperimentReport, error) {
	return experiments.Explain(target, o)
}

// ExplainWorkload is one workload ExplainBackends can diff.
type ExplainWorkload = experiments.ExplainTarget

// ExplainWorkloads lists the available explain workloads.
func ExplainWorkloads() []ExplainWorkload { return experiments.ExplainTargets() }

// ExperimentOptions tune paper-experiment execution.
type ExperimentOptions = experiments.Options

// ExperimentReport is a rendered experiment.
type ExperimentReport = experiments.Report

// Experiments lists the reproducible paper artifacts in paper order.
func Experiments() []experiments.Experiment { return experiments.All() }

// RunExperiment regenerates one paper table or figure by id ("table1",
// "table2", "fig5" ... "fig12").
func RunExperiment(id string, o ExperimentOptions) (*ExperimentReport, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(o)
}

// RenderReport writes a report as an aligned text table.
func RenderReport(w io.Writer, r *ExperimentReport) { r.Render(w) }

// CalibSpace is the set of cost-model parameters a calibration may move;
// CalibParam is one bounded dimension of it. See calib.Space.
type (
	CalibSpace = calib.Space
	CalibParam = calib.Param
)

// CalibOptions tune a calibration or scenario-search run.
type CalibOptions = calib.Options

// CalibFit is a completed calibration: fitted parameters, objective, and
// the measurements backing them. Render writes the deterministic fit
// report (byte-identical at any worker count).
type CalibFit = calib.Fit

// CalibTarget is one published paper number the objective fits toward.
type CalibTarget = calib.Target

// CalibGoal is one scenario-search predicate.
type CalibGoal = calib.Goal

// Names of the calibration dimensions that live outside the hardware
// spec: DYAD's KVS commit cost and the consumer head start.
const (
	CalibParamKVSCommit = calib.ParamKVSCommit
	CalibParamHeadStart = calib.ParamHeadStart
)

// DefaultCalibSpace brackets every tunable cost-model parameter around
// its current default.
func DefaultCalibSpace() CalibSpace { return calib.DefaultSpace() }

// Calibrate fits space against the paper's Tables I–II and Figs 5–7
// headline numbers; deterministic for any worker count.
func Calibrate(space CalibSpace, o CalibOptions) (*CalibFit, error) {
	return calib.Calibrate(space, o)
}

// CalibTargets returns the paper-number fixture the objective fits
// against (full adds Fig 7).
func CalibTargets(full bool) []CalibTarget { return calib.Targets(full) }

// CalibGoals lists the scenario-search predicates.
func CalibGoals() []CalibGoal { return calib.Goals() }

// RunCalibGoal runs one scenario search by goal id and returns its
// report.
func RunCalibGoal(id string, o CalibOptions) (*ExperimentReport, error) {
	return calib.RunGoal(id, o)
}
