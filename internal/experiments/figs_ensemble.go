package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// Fig5 reproduces Figure 5: single-node ensemble size scaling of DYAD vs
// XFS with JAC (stride 880), pairs 1/2/4. Paper headlines: DYAD production
// ~1.4x slower than XFS (metadata management), DYAD overall consumption
// ~192.9x faster (idle time gap).
func Fig5(o Options) (*Report, error) {
	o = o.Defaults()
	jac := mustModel("JAC")
	r := &Report{
		ID:      "fig5",
		Title:   "Single-node ensemble scaling, DYAD vs XFS (JAC, stride 880)",
		Columns: append([]string{"backend", "pairs"}, stdCols...),
	}
	var last [2]core.Aggregate // [dyad, xfs] at the largest ensemble
	for _, pairs := range []int{1, 2, 4} {
		for bi, b := range []core.Backend{core.DYAD, core.XFS} {
			agg, err := runAgg(core.Config{
				Backend: b, Model: jac, Pairs: pairs, SingleNode: true,
			}, o)
			if err != nil {
				return nil, err
			}
			r.Rows = append(r.Rows, append([]string{b.String(), fmt.Sprintf("%d", pairs)}, aggRow(agg)...))
			last[bi] = agg
		}
	}
	dy, xf := last[0], last[1]
	r.Notes = append(r.Notes,
		ratioNote("DYAD/XFS production time (4 pairs)", 1.4,
			stats.Ratio(dy.ProdTotalMean(), xf.ProdTotalMean())),
		ratioNote("DYAD/XFS consumption data movement (4 pairs)", 1.4,
			stats.Ratio(dy.ConsMovement.Mean, xf.ConsMovement.Mean)),
		ratioNote("XFS/DYAD overall consumption (4 pairs)", 192.9,
			stats.Ratio(xf.ConsTotalMean(), dy.ConsTotalMean())),
	)
	return r, nil
}

// Fig6 reproduces Figure 6: two-node (producers|consumers) ensemble size
// scaling of DYAD vs Lustre with JAC, pairs 1/2/4/8. Paper headlines:
// DYAD producer movement ~7.5x faster, consumer movement ~6.9x faster,
// overall consumption ~197.4x faster.
func Fig6(o Options) (*Report, error) {
	o = o.Defaults()
	jac := mustModel("JAC")
	r := &Report{
		ID:      "fig6",
		Title:   "Two-node ensemble scaling, DYAD vs Lustre (JAC, stride 880)",
		Columns: append([]string{"backend", "pairs"}, stdCols...),
	}
	var last [2]core.Aggregate
	for _, pairs := range []int{1, 2, 4, 8} {
		for bi, b := range []core.Backend{core.DYAD, core.Lustre} {
			agg, err := runAgg(core.Config{Backend: b, Model: jac, Pairs: pairs}, o)
			if err != nil {
				return nil, err
			}
			r.Rows = append(r.Rows, append([]string{b.String(), fmt.Sprintf("%d", pairs)}, aggRow(agg)...))
			last[bi] = agg
		}
	}
	dy, lu := last[0], last[1]
	r.Notes = append(r.Notes,
		ratioNote("Lustre/DYAD producer data movement (8 pairs)", 7.5,
			stats.Ratio(lu.ProdMovement.Mean, dy.ProdMovement.Mean)),
		ratioNote("Lustre/DYAD consumer data movement (8 pairs)", 6.9,
			stats.Ratio(lu.ConsMovement.Mean, dy.ConsMovement.Mean)),
		ratioNote("Lustre/DYAD overall consumption (8 pairs)", 197.4,
			stats.Ratio(lu.ConsTotalMean(), dy.ConsTotalMean())),
	)
	return r, nil
}

// Fig7 reproduces Figure 7: multi-node ensemble size scaling of DYAD vs
// Lustre with JAC, 8 producers per node, 8..256 pairs over 2..64 nodes.
// Paper headlines: stable production across ensemble sizes; DYAD ~5.3x
// faster producer movement, ~5.8x consumer movement, ~192.0x overall.
func Fig7(o Options) (*Report, error) {
	o = o.Defaults()
	jac := mustModel("JAC")
	sizes := []int{8, 16, 32, 64, 128, 256}
	if o.Quick {
		sizes = []int{8, 16, 32, 64}
	}
	r := &Report{
		ID:      "fig7",
		Title:   "Multi-node ensemble scaling, DYAD vs Lustre (JAC, stride 880)",
		Columns: append([]string{"backend", "pairs", "nodes"}, stdCols...),
	}
	var last [2]core.Aggregate
	for _, pairs := range sizes {
		for bi, b := range []core.Backend{core.DYAD, core.Lustre} {
			cfg := core.Config{Backend: b, Model: jac, Pairs: pairs}
			agg, err := runAgg(cfg, o)
			if err != nil {
				return nil, err
			}
			r.Rows = append(r.Rows, append(
				[]string{b.String(), fmt.Sprintf("%d", pairs), fmt.Sprintf("%d", cfg.ComputeNodes())},
				aggRow(agg)...))
			last[bi] = agg
		}
	}
	dy, lu := last[0], last[1]
	r.Notes = append(r.Notes,
		ratioNote("Lustre/DYAD producer data movement (largest ensemble)", 5.3,
			stats.Ratio(lu.ProdMovement.Mean, dy.ProdMovement.Mean)),
		ratioNote("Lustre/DYAD consumer data movement (largest ensemble)", 5.8,
			stats.Ratio(lu.ConsMovement.Mean, dy.ConsMovement.Mean)),
		ratioNote("Lustre/DYAD overall consumption (largest ensemble)", 192.0,
			stats.Ratio(lu.ConsTotalMean(), dy.ConsTotalMean())),
	)
	return r, nil
}
