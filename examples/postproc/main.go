// Postproc contrasts the two analysis strategies the paper's §II-B
// motivates, on the simulated cluster:
//
//   - post-processing: the producer appends every frame to a trajectory
//     file on Lustre; analysis starts only after the simulation finishes,
//     reading the whole trajectory back.
//   - in situ: frames stream through DYAD to a concurrently running
//     consumer that analyzes them as they are produced.
//
// The comparison prints time-to-first-insight (when the first frame's
// analysis completes) and time-to-last-insight for both strategies —
// the quantities that make in situ analytics compelling at scale.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/dyad"
	"repro/internal/frame"
	"repro/internal/lustre"
	"repro/internal/models"
	"repro/internal/sim"
	"repro/internal/trajectory"
	"repro/internal/vfs"
)

const frames = 32

func main() {
	model, err := models.ByName("ApoA1")
	if err != nil {
		log.Fatal(err)
	}
	freq := model.DefaultFrequency()
	payload := frame.NewSynthetic(model.Name, 0, model.Atoms, 7)

	fmt.Printf("workload: %s, %d frames, one every %v (%d bytes/frame)\n\n",
		model.Name, frames, freq, model.FrameBytes())

	postFirst, postLast := runPostProcessing(model, payload)
	situFirst, situLast := runInSitu(model, payload)

	fmt.Printf("%-18s %-22s %-22s\n", "strategy", "first insight", "last insight")
	fmt.Printf("%-18s %-22v %-22v\n", "post-processing", postFirst, postLast)
	fmt.Printf("%-18s %-22v %-22v\n", "in situ (DYAD)", situFirst, situLast)
	fmt.Printf("\nin situ delivers the first insight %.1fx sooner and finishes %.1fx sooner;\n",
		postFirst.Seconds()/situFirst.Seconds(), postLast.Seconds()/situLast.Seconds())
	fmt.Println("with in situ, analysis is done moments after the simulation's last frame (§II-B).")
}

// runPostProcessing: simulate, write a Lustre trajectory, then analyze.
func runPostProcessing(model models.Model, payload *frame.Frame) (first, last time.Duration) {
	e := sim.NewEngine(1)
	// 2 compute nodes + 1 MDS + 2 OSTs.
	cl := cluster.New(e, cluster.CoronaProfile(5))
	params := lustre.DefaultParams()
	params.BackgroundLoad = 0
	lfs := lustre.New(cl, cl.Node(2), []*cluster.Node{cl.Node(3), cl.Node(4)}, params)

	simDone := &sim.Latch{}
	e.Spawn("producer", func(p *sim.Proc) {
		w, err := trajectory.Create(p, lfs.Client(cl.Node(0)), "/traj", model.Name, model.Atoms)
		if err != nil {
			panic(err)
		}
		for f := 0; f < frames; f++ {
			p.Sleep(model.DefaultFrequency()) // MD compute
			payload.Step = int64(f)
			if err := w.AppendFrame(p, payload); err != nil {
				panic(err)
			}
		}
		if err := w.Close(p); err != nil {
			panic(err)
		}
		simDone.Fire()
	})
	e.Spawn("analyst", func(p *sim.Proc) {
		simDone.Wait(p) // post-processing starts after the run
		r, err := trajectory.Open(p, lfs.Client(cl.Node(1)), "/traj")
		if err != nil {
			panic(err)
		}
		for i := 0; i < r.Len(); i++ {
			if _, err := r.Frame(p, i); err != nil {
				panic(err)
			}
			p.Sleep(analysisTime(model))
			if i == 0 {
				first = p.Now()
			}
		}
		last = p.Now()
	})
	if err := e.Run(); err != nil {
		log.Fatal(err)
	}
	return first, last
}

// runInSitu: stream frames through DYAD to a concurrent analyst.
func runInSitu(model models.Model, payload *frame.Frame) (first, last time.Duration) {
	e := sim.NewEngine(1)
	cl := cluster.New(e, cluster.CoronaProfile(2))
	sys := dyad.New(cl, cl.Node(0), dyad.DefaultParams())
	enc := vfs.BytesPayload(payload.Encode())

	e.Spawn("producer", func(p *sim.Proc) {
		c := sys.NewClient(cl.Node(0))
		for f := 0; f < frames; f++ {
			p.Sleep(model.DefaultFrequency())
			c.Produce(p, nil, fmt.Sprintf("/flow/f%d", f), enc)
		}
	})
	e.Spawn("analyst", func(p *sim.Proc) {
		c := sys.NewClient(cl.Node(1))
		for f := 0; f < frames; f++ {
			c.Consume(p, nil, fmt.Sprintf("/flow/f%d", f))
			p.Sleep(analysisTime(model))
			if f == 0 {
				first = p.Now()
			}
		}
		last = p.Now()
	})
	if err := e.Run(); err != nil {
		log.Fatal(err)
	}
	return first, last
}

// analysisTime models per-frame analytics compute (half a frame period, so
// the analyst keeps up in the streaming case).
func analysisTime(model models.Model) time.Duration {
	return model.DefaultFrequency() / 2
}
