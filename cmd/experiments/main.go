// Command experiments regenerates the paper's tables and figures.
//
// Examples:
//
// Flags come before experiment ids (standard library flag parsing stops at
// the first positional argument):
//
//	experiments -list
//	experiments table1 table2
//	experiments -reps 10 -frames 128 fig5
//	experiments -quick all
//	experiments -quick -j 8 all
//	experiments -json fig9
//	experiments -metrics util.csv -metrics-prom util.prom fig5
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command. Reports, JSON, and CSV go to stdout; progress,
// memstats, artifact notes, and errors go to stderr — the two streams never
// interleave, so `experiments ... > report.txt` always captures exactly the
// report bytes.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list       = fs.Bool("list", false, "list available experiment ids and exit")
		reps       = fs.Int("reps", 0, "repetitions per configuration (0 = paper default)")
		frames     = fs.Int("frames", 0, "frames per pair (0 = paper default of 128)")
		seed       = fs.Uint64("seed", 0, "base RNG seed (0 = default)")
		quick      = fs.Bool("quick", false, "reduced sweep for smoke runs")
		workers    = fs.Int("j", 0, "parallel simulation workers (0 = one per core); results are identical for any -j")
		pdesJ      = fs.Int("pdes-j", 0, "intra-run event-queue shards (parallel discrete-event engine; 0 or 1 = serial); output is byte-identical for any -pdes-j")
		headstart  = fs.Duration("headstart", 0, "producer job head start over each consumer (paper launch protocol; 0 = none, byte-identical to builds without the knob; 'calibrate' fits it)")
		budget     = fs.Int("budget", 0, "calibrate/search evaluation budget (0 = default)")
		asJSON     = fs.Bool("json", false, "emit reports as JSON instead of text tables")
		asCSV      = fs.Bool("csv", false, "emit report tables as CSV (for plotting)")
		outPath    = fs.String("o", "", "write output to file instead of stdout")
		quiet      = fs.Bool("q", false, "suppress per-experiment progress on stderr")
		memstats   = fs.Bool("memstats", false, "report per-experiment host allocation deltas on stderr")
		traceOut   = fs.String("trace", "", "record virtual-time span traces: write a Chrome trace-event JSON file here and emit per-experiment time-breakdown reports")
		traceStrm  = fs.String("trace-stream", "", "like -trace but bounded-memory: stream spans into the Chrome trace file as they are emitted (same bytes; no breakdown reports)")
		metricsOut = fs.String("metrics", "", "sample virtual-time resource metrics: write a time-series CSV file here and emit per-experiment utilization dashboards")
		promOut    = fs.String("metrics-prom", "", "with metrics sampling, also write an end-of-run Prometheus text-format snapshot here")
		metricsStm = fs.String("metrics-stream", "", "like -metrics but bounded-memory: stream samples into the CSV file as they are taken (same bytes; no dashboards or -metrics-prom)")
		metricsInt = fs.Duration("metrics-interval", 0, "virtual-time sampling period for -metrics/-metrics-prom/-metrics-stream (0 = 250ms)")
		critOut    = fs.String("critpath", "", "record causal dependency graphs: write a frame-provenance waterfall CSV file here and emit per-experiment critical-path blame reports")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	fatal := func(err error) int {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}

	// Up-front flag validation: a nonsensical count is a usage error (exit
	// 2, one line, stderr only) before any simulation starts. `-reps 0`
	// must be distinguished from an omitted -reps (0 = paper default), so
	// explicit zeros are detected via Visit.
	explicitZero := map[string]bool{}
	fs.Visit(func(f *flag.Flag) {
		if (f.Name == "reps" || f.Name == "frames") && f.Value.String() == "0" {
			explicitZero[f.Name] = true
		}
	})
	usage := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "experiments: "+format+"\n", args...)
		return 2
	}
	switch {
	case *reps < 0 || explicitZero["reps"]:
		return usage("-reps must be a positive integer (got %d); omit the flag for the paper default", *reps)
	case *frames < 0 || explicitZero["frames"]:
		return usage("-frames must be a positive integer (got %d); omit the flag for the paper default", *frames)
	case *workers < 0:
		return usage("-j must be >= 0 (got %d); 0 means one worker per core", *workers)
	case *pdesJ < 0:
		return usage("-pdes-j must be >= 0 (got %d); 0 or 1 means the serial engine", *pdesJ)
	case *headstart < 0:
		return usage("-headstart must be >= 0 (got %v)", *headstart)
	case *budget < 0:
		return usage("-budget must be >= 0 (got %d); 0 means the default budget", *budget)
	}

	if *list {
		for _, e := range repro.Experiments() {
			fmt.Fprintf(stdout, "%-8s %s\n", e.ID, e.Title)
		}
		return 0
	}

	ids := fs.Args()
	if len(ids) == 0 {
		fmt.Fprintln(stderr, "experiments: no experiment ids given (try -list, or 'all')")
		return 2
	}

	// calibrate/search/explain are subcommands, not experiments: they never
	// join the append-only experiment list, so `all` output stays a stable
	// prefix across builds.
	if ids[0] == "explain" {
		if *asJSON || *asCSV {
			return usage("explain emits a text report only; -json/-csv are not supported")
		}
		if len(ids) < 2 {
			return usage("explain needs a target (have %s)", explainTargetIDs())
		}
		out := stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return fatal(err)
			}
			defer f.Close()
			out = f
		}
		opts := repro.ExperimentOptions{
			Reps: *reps, Frames: *frames, Seed: *seed, Quick: *quick,
			Workers: *workers, ShardWorkers: *pdesJ, ConsumerHeadStart: *headstart,
		}
		for _, target := range ids[1:] {
			rep, err := repro.ExplainBackends(target, opts)
			if err != nil {
				return fatal(err)
			}
			repro.RenderReport(out, rep)
			fmt.Fprintln(out)
		}
		return 0
	}
	if ids[0] == "calibrate" || ids[0] == "search" {
		if *asJSON || *asCSV {
			return usage("%s emits a text report only; -json/-csv are not supported", ids[0])
		}
		out := stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return fatal(err)
			}
			defer f.Close()
			out = f
		}
		co := repro.CalibOptions{
			Reps: *reps, Frames: *frames, Seed: *seed, Quick: *quick,
			Workers: *workers, ShardWorkers: *pdesJ, Budget: *budget,
		}
		return runCalibSubcommand(ids[0], ids[1:], co, out, stderr, *quiet)
	}

	for _, id := range ids {
		if id == "all" {
			ids = ids[:0]
			for _, e := range repro.Experiments() {
				ids = append(ids, e.ID)
			}
			break
		}
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fatal(err)
		}
		defer f.Close()
		out = f
	}

	opts := repro.ExperimentOptions{Reps: *reps, Frames: *frames, Seed: *seed, Quick: *quick, Workers: *workers, ShardWorkers: *pdesJ, ConsumerHeadStart: *headstart}
	if *traceOut != "" && *traceStrm != "" {
		return fatal(errors.New("-trace and -trace-stream are mutually exclusive"))
	}
	if *metricsStm != "" && (*metricsOut != "" || *promOut != "") {
		return fatal(errors.New("-metrics-stream cannot be combined with -metrics or -metrics-prom (streamed samples are not retained for dashboards or snapshots)"))
	}
	if *critOut != "" && *traceStrm != "" {
		return fatal(errors.New("-critpath and -trace-stream are mutually exclusive (flow-event merging needs buffered spans)"))
	}
	var collector *repro.TraceCollector
	if *traceOut != "" {
		collector = repro.NewTraceCollector()
		opts.Trace = collector
	}
	var traceFile *os.File
	if *traceStrm != "" {
		f, err := os.Create(*traceStrm)
		if err != nil {
			return fatal(err)
		}
		traceFile = f
		opts.TraceStream = repro.NewChromeTraceStream(f)
	}
	var mcollector *repro.MetricsCollector
	if *metricsOut != "" || *promOut != "" {
		mcollector = repro.NewMetricsCollector()
		mcollector.Interval = *metricsInt
		opts.Metrics = mcollector
	}
	var ccollector *repro.CritPathCollector
	if *critOut != "" {
		ccollector = repro.NewCritPathCollector()
		opts.CritPath = ccollector
	}
	var mstream *repro.MetricsStreamer
	var metricsFile *os.File
	if *metricsStm != "" {
		f, err := os.Create(*metricsStm)
		if err != nil {
			return fatal(err)
		}
		metricsFile = f
		mstream = &repro.MetricsStreamer{Sink: repro.NewMetricsCSVSink(f), Interval: *metricsInt}
		opts.MetricsStream = mstream
	}
	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	var reports []*repro.ExperimentReport
	for i, id := range ids {
		if !*quiet {
			fmt.Fprintf(stderr, "[%d/%d] %s (workers=%d) ...", i+1, len(ids), id, effWorkers)
		}
		expStart := time.Now()
		var before runtime.MemStats
		if *memstats {
			runtime.ReadMemStats(&before)
		}
		// Run labels repeat across experiments (fig6/fig7 sweep overlapping
		// ensembles); the scope keeps exported series distinguishable.
		mcollector.SetScope(id)
		mstream.SetScope(id)
		rep, err := repro.RunExperiment(id, opts)
		if err != nil {
			if !*quiet {
				fmt.Fprintln(stderr)
			}
			return fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(stderr, " done in %.2fs\n", time.Since(expStart).Seconds())
		}
		if *memstats {
			reportMemStats(stderr, id, &before)
		}
		emit := []*repro.ExperimentReport{rep}
		// With -trace, the experiment's span-derived time breakdown rides
		// along as a second report; with -metrics, the sampled utilization
		// dashboard follows. Without either flag, output bytes are unchanged.
		if breakdown := collector.Drain(id); breakdown != nil {
			emit = append(emit, breakdown)
		}
		if dash := mcollector.Drain(id); dash != nil {
			emit = append(emit, dash)
		}
		if blame := ccollector.Drain(id); blame != nil {
			emit = append(emit, blame)
		}
		for _, rep := range emit {
			switch {
			case *asJSON:
				reports = append(reports, rep)
			case *asCSV:
				fmt.Fprintf(out, "# %s — %s\n", rep.ID, rep.Title)
				if err := rep.WriteCSV(out); err != nil {
					return fatal(err)
				}
				fmt.Fprintln(out)
			default:
				repro.RenderReport(out, rep)
				fmt.Fprintln(out)
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return fatal(err)
		}
	}
	if collector != nil {
		if err := writeFile(*traceOut, func(f io.Writer) error {
			return repro.WriteChromeTrace(f, collector.Runs)
		}); err != nil {
			return fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(stderr, "wrote %d traced run(s) to %s\n", len(collector.Runs), *traceOut)
		}
	}
	if mcollector != nil && *metricsOut != "" {
		if err := writeFile(*metricsOut, func(f io.Writer) error {
			return repro.WriteMetricsCSV(f, mcollector.Runs)
		}); err != nil {
			return fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(stderr, "wrote %d sampled run(s) to %s\n", len(mcollector.Runs), *metricsOut)
		}
	}
	if traceFile != nil {
		if err := opts.TraceStream.Close(); err != nil {
			return fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			return fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(stderr, "streamed traces to %s\n", *traceStrm)
		}
	}
	if metricsFile != nil {
		if err := mstream.Sink.Flush(); err != nil {
			return fatal(err)
		}
		if err := metricsFile.Close(); err != nil {
			return fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(stderr, "streamed metrics to %s\n", *metricsStm)
		}
	}
	if ccollector != nil {
		if err := writeFile(*critOut, func(f io.Writer) error {
			return ccollector.WriteWaterfall(f)
		}); err != nil {
			return fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(stderr, "wrote %d frame lineage set(s) to %s\n", len(ccollector.Lineages), *critOut)
		}
	}
	if mcollector != nil && *promOut != "" {
		if err := writeFile(*promOut, func(f io.Writer) error {
			return repro.WriteMetricsProm(f, mcollector.Runs)
		}); err != nil {
			return fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(stderr, "wrote metrics snapshot to %s\n", *promOut)
		}
	}
	if !*quiet {
		fmt.Fprintf(stderr, "%d experiment(s) in %.2fs\n", len(ids), time.Since(start).Seconds())
	}
	return 0
}

// explainTargetIDs renders the explain subcommand's available target ids
// for usage messages.
func explainTargetIDs() string {
	var ids []string
	for _, t := range repro.ExplainWorkloads() {
		ids = append(ids, t.ID)
	}
	return strings.Join(ids, ", ")
}

// writeFile creates path, streams write into it, and surfaces the first
// error (including Close, which matters for buffered filesystems).
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// reportMemStats prints the host-side allocation delta one experiment
// caused, on stderr so machine-readable stdout formats stay clean. The
// deltas are how the allocation-budget claims in DESIGN.md §3c are checked
// end to end (sweeps with RealFrames=false should show near-zero bytes per
// simulated frame).
func reportMemStats(stderr io.Writer, id string, before *runtime.MemStats) {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	fmt.Fprintf(stderr,
		"[memstats] %s: alloc=%.1fMB mallocs=%d gcs=%d heap_inuse=%.1fMB heap_sys=%.1fMB\n",
		id,
		float64(after.TotalAlloc-before.TotalAlloc)/(1<<20),
		after.Mallocs-before.Mallocs,
		after.NumGC-before.NumGC,
		float64(after.HeapInuse)/(1<<20),
		float64(after.HeapSys)/(1<<20))
}
