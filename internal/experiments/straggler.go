package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// Straggler is a fault-injection extension: it degrades one producer
// node's SSD by 8x and measures how each data-management solution's
// consumption reacts, per pair. Loosely coupled DYAD confines the damage
// to the straggler node's own pairs (the paper's Finding 1 mechanism,
// under failure); Lustre adds the slow writes on top of its serialized
// coupling for those pairs.
func Straggler(o Options) (*Report, error) {
	o = o.Defaults()
	jac := mustModel("JAC")
	const pairs = 16 // producers on two nodes; node 0 is the straggler
	const factor = 8.0

	r := &Report{
		ID:      "straggler",
		Title:   "Extension: straggler fault injection (JAC, 16 pairs, node 0 SSD+NIC 8x slower)",
		Columns: []string{"backend", "injected", "cons_total mean", "cons_total worst pair", "worst/mean"},
	}

	type key struct {
		b        core.Backend
		injected bool
	}
	// All four runs are independent: batch them through the worker pool.
	var keys []key
	var cfgs []core.Config
	for _, b := range []core.Backend{core.DYAD, core.Lustre} {
		for _, injected := range []bool{false, true} {
			cfg := core.Config{
				Backend: b, Model: jac, Pairs: pairs,
				Frames: o.Frames, Seed: o.Seed, ComputeJitter: 0.004,
				ShardWorkers:      o.ShardWorkers,
				ConsumerHeadStart: o.ConsumerHeadStart,
				KeepProfiles:      true,
			}
			if b == core.Lustre {
				cfg.LustreNoise = true
			}
			if injected {
				cfg.StragglerFactor = factor
			}
			if o.Trace != nil {
				// All four runs are distinct configurations; trace each so
				// the straggler's recovery-free skew is visible per process.
				cfg.RecordSpans = true
			}
			keys = append(keys, key{b, injected})
			cfgs = append(cfgs, cfg)
		}
	}
	runs, err := core.RunMany(cfgs, o.Workers)
	if err != nil {
		return nil, err
	}
	if o.Trace != nil {
		for i, res := range runs {
			o.Trace.Add(fmt.Sprintf("straggler %s injected=%v", keys[i].b, keys[i].injected), []*core.Result{res})
		}
	}
	results := map[key][2]float64{} // mean, worst (seconds)
	for i, res := range runs {
		k := keys[i]
		var sum, worst float64
		for _, prof := range res.ConsumerProfiles {
			t := core.SplitConsumer(k.b, prof).Sum().Seconds()
			sum += t
			if t > worst {
				worst = t
			}
		}
		mean := sum / float64(pairs)
		results[k] = [2]float64{mean, worst}
		r.Rows = append(r.Rows, []string{
			k.b.String(), fmt.Sprintf("%v", k.injected),
			stats.FormatSeconds(mean), stats.FormatSeconds(worst),
			stats.FormatRatio(stats.Ratio(worst, mean)),
		})
	}

	dyHealthy, dyBad := results[key{core.DYAD, false}], results[key{core.DYAD, true}]
	luHealthy, luBad := results[key{core.Lustre, false}], results[key{core.Lustre, true}]
	r.Notes = append(r.Notes,
		fmt.Sprintf("relative worst-pair inflation — DYAD: %s, Lustre: %s; absolute worst-pair slowdown — DYAD: +%s, Lustre: +%s",
			stats.FormatRatioPrec(stats.Ratio(dyBad[1], dyHealthy[1]), 2),
			stats.FormatRatioPrec(stats.Ratio(luBad[1], luHealthy[1]), 2),
			stats.FormatSeconds(dyBad[1]-dyHealthy[1]), stats.FormatSeconds(luBad[1]-luHealthy[1])),
		fmt.Sprintf("mean inflation — DYAD: %s, Lustre: %s",
			stats.FormatRatioPrec(stats.Ratio(dyBad[0], dyHealthy[0]), 2),
			stats.FormatRatioPrec(stats.Ratio(luBad[0], luHealthy[0]), 2)),
		"DYAD feels the straggler (it actually uses the degraded node-local device) but stays ~100x faster overall; Lustre hides it inside synchronization idle that is already two orders of magnitude larger",
		"extends the paper: fault injection; not a paper figure",
	)
	return r, nil
}
