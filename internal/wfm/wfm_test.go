package wfm

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func run(t *testing.T, build func(m *Manager)) (*sim.Engine, *Manager) {
	t.Helper()
	e := sim.NewEngine(1)
	m := New(e, Params{SubmitLatency: time.Millisecond})
	build(m)
	if _, err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e, m
}

func TestLinearChainSerializes(t *testing.T) {
	var order []string
	_, m := run(t, func(m *Manager) {
		a := m.Task("a", func(p *sim.Proc) {
			p.Sleep(10 * time.Millisecond)
			order = append(order, "a")
		})
		b := m.Task("b", func(p *sim.Proc) {
			p.Sleep(5 * time.Millisecond)
			order = append(order, "b")
		}, a)
		m.Task("c", func(p *sim.Proc) {
			order = append(order, "c")
		}, b)
	})
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order %v", order)
	}
	tasks := m.Tasks()
	// b started after a finished plus submit latency.
	if tasks[1].StartedAt != tasks[0].FinishedAt+time.Millisecond {
		t.Fatalf("b started %v, a finished %v", tasks[1].StartedAt, tasks[0].FinishedAt)
	}
}

func TestIndependentTasksOverlap(t *testing.T) {
	e, _ := run(t, func(m *Manager) {
		for i := 0; i < 4; i++ {
			m.Task("t", func(p *sim.Proc) { p.Sleep(10 * time.Millisecond) })
		}
	})
	if e.Now() > 12*time.Millisecond {
		t.Fatalf("independent tasks serialized: end %v", e.Now())
	}
}

func TestDiamondDependency(t *testing.T) {
	var endA, endB, startD sim.Time
	_, _ = run(t, func(m *Manager) {
		root := m.Task("root", func(p *sim.Proc) { p.Sleep(time.Millisecond) })
		a := m.Task("a", func(p *sim.Proc) { p.Sleep(5 * time.Millisecond); endA = p.Now() }, root)
		b := m.Task("b", func(p *sim.Proc) { p.Sleep(9 * time.Millisecond); endB = p.Now() }, root)
		m.Task("d", func(p *sim.Proc) { startD = p.Now() }, a, b)
	})
	if startD < endA || startD < endB {
		t.Fatalf("join started at %v before branches ended (%v, %v)", startD, endA, endB)
	}
}

func TestCycleDetected(t *testing.T) {
	e := sim.NewEngine(1)
	m := New(e, DefaultParams())
	a := m.Task("a", func(p *sim.Proc) {})
	b := m.Task("b", func(p *sim.Proc) {}, a)
	a.deps = append(a.deps, b) // forge a cycle
	if _, err := m.Start(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestForeignDependencyRejected(t *testing.T) {
	e := sim.NewEngine(1)
	other := New(e, DefaultParams())
	foreign := other.Task("x", func(p *sim.Proc) {})
	m := New(e, DefaultParams())
	m.Task("a", func(p *sim.Proc) {}, foreign)
	if _, err := m.Start(); err == nil {
		t.Fatal("foreign dependency not detected")
	}
}

func TestChainHelperAndAwait(t *testing.T) {
	e := sim.NewEngine(1)
	m := New(e, Params{SubmitLatency: 0})
	ticks := 0
	chain := m.Chain("step", 5, func(i int, p *sim.Proc) {
		p.Sleep(time.Millisecond)
		ticks++
	})
	var awaitedAt sim.Time
	e.Spawn("observer", func(p *sim.Proc) {
		chain[len(chain)-1].Await(p)
		awaitedAt = p.Now()
	})
	done, err := m.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 || !done.Fired() {
		t.Fatalf("chain ran %d/5 tasks, done=%v", ticks, done.Fired())
	}
	if awaitedAt != 5*time.Millisecond {
		t.Fatalf("observer resumed at %v, want 5ms", awaitedAt)
	}
}

func TestEmptyWorkflowCompletesImmediately(t *testing.T) {
	e := sim.NewEngine(1)
	m := New(e, DefaultParams())
	done, err := m.Start()
	if err != nil {
		t.Fatal(err)
	}
	if !done.Fired() {
		t.Fatal("empty workflow should fire immediately")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
