package stream

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newFSStore(t *testing.T) *FSStore {
	t.Helper()
	s, err := NewFSStore(t.TempDir()+"/staging", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFSStoreRoundTrip(t *testing.T) {
	s := newFSStore(t)
	if err := s.Produce("/flow/f0", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Consume(context.Background(), "/flow/f0")
	if err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("consume = %q, %v", got, err)
	}
}

func TestFSStoreConsumeBlocksUntilPublish(t *testing.T) {
	s := newFSStore(t)
	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	var err error
	go func() {
		defer wg.Done()
		got, err = s.Consume(context.Background(), "/late")
	}()
	time.Sleep(20 * time.Millisecond)
	if err2 := s.Produce("/late", []byte("v")); err2 != nil {
		t.Fatal(err2)
	}
	wg.Wait()
	if err != nil || string(got) != "v" {
		t.Fatalf("consume = %q, %v", got, err)
	}
}

func TestFSStoreContextCancel(t *testing.T) {
	s := newFSStore(t)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	if _, err := s.Consume(ctx, "/never"); err == nil {
		t.Fatal("consume returned without publish")
	}
}

func TestFSStoreTryConsumeAndDiscard(t *testing.T) {
	s := newFSStore(t)
	if _, ok := s.TryConsume("/x"); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Produce("/x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.TryConsume("/x"); !ok || string(got) != "v" {
		t.Fatalf("TryConsume %q %v", got, ok)
	}
	if err := s.Discard("/x"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.TryConsume("/x"); ok {
		t.Fatal("hit after discard")
	}
	if err := s.Discard("/x"); err != nil {
		t.Fatal("double discard should be a no-op")
	}
}

func TestFSStorePathTraversalConfined(t *testing.T) {
	s := newFSStore(t)
	if err := s.Produce("/../../escape", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// The file must land inside the staging root, not above it.
	if _, ok := s.TryConsume("/escape"); !ok {
		t.Fatal("confined path not readable back under the root")
	}
}

func TestFSStoreConcurrentPairs(t *testing.T) {
	s := newFSStore(t)
	const pairs, frames = 4, 20
	var wg sync.WaitGroup
	errs := make(chan error, pairs)
	for p := 0; p < pairs; p++ {
		p := p
		wg.Add(2)
		go func() {
			defer wg.Done()
			for f := 0; f < frames; f++ {
				if err := s.Produce(fmt.Sprintf("/p%d/f%d", p, f), []byte{byte(p), byte(f)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for f := 0; f < frames; f++ {
				got, err := s.Consume(context.Background(), fmt.Sprintf("/p%d/f%d", p, f))
				if err != nil || got[0] != byte(p) || got[1] != byte(f) {
					errs <- fmt.Errorf("pair %d frame %d: %v %v", p, f, got, err)
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	for p := 0; p < pairs; p++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
