package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// resultScalars compares the measurement-bearing fields of two results.
func resultScalars(t *testing.T, what string, got, want *Result) {
	t.Helper()
	if got.Producer != want.Producer || got.Consumer != want.Consumer ||
		got.Makespan != want.Makespan || got.FramesRead != want.FramesRead ||
		got.BytesRead != want.BytesRead || got.Recovery != want.Recovery {
		t.Errorf("%s: pooled result diverged:\n got  %+v %+v %v\n want %+v %+v %v",
			what, got.Producer, got.Consumer, got.Makespan,
			want.Producer, want.Consumer, want.Makespan)
	}
}

// Pooled reuse must actually reuse (same engine and cluster pointers come
// back from the pool) and must be observationally invisible: every
// measurement of a pooled repetition equals the same config run fresh.
func TestPooledReuseIsInvisible(t *testing.T) {
	for _, backend := range []Backend{DYAD, XFS, Lustre} {
		cfg := Config{Backend: backend, Model: tinyModel(), Frames: 6, Pairs: 2,
			SingleNode: backend != Lustre, Seed: 7}
		if backend == Lustre {
			cfg.LustreNoise = true
		}
		pool := &runPool{}
		first, err := runPooled(cfg, pool)
		if err != nil {
			t.Fatalf("%s: first pooled run: %v", backend, err)
		}
		if pool.eng == nil || pool.cl == nil {
			t.Fatalf("%s: pool empty after successful run", backend)
		}
		eng, cl := pool.eng, pool.cl

		cfg2 := cfg
		cfg2.Seed = cfg.Seed + 0x9e3779b9
		second, err := runPooled(cfg2, pool)
		if err != nil {
			t.Fatalf("%s: second pooled run: %v", backend, err)
		}
		if pool.eng != eng {
			t.Errorf("%s: engine not reused (pool holds a different engine)", backend)
		}
		if pool.cl != cl {
			t.Errorf("%s: cluster not reused (pool holds a different cluster)", backend)
		}

		// The same configs run fresh (nil pool) must measure identically.
		fresh1, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: fresh run: %v", backend, err)
		}
		fresh2, err := Run(cfg2)
		if err != nil {
			t.Fatalf("%s: fresh run 2: %v", backend, err)
		}
		resultScalars(t, backend.String()+" rep1", first, fresh1)
		resultScalars(t, backend.String()+" rep2", second, fresh2)
	}
}

// A spec change mid-batch (different node count) must fall back to a fresh
// cluster without disturbing results, and a shard-shape change must fall
// back to a fresh engine.
func TestPoolShapeMismatchFallsBack(t *testing.T) {
	pool := &runPool{}
	single := Config{Backend: DYAD, Model: tinyModel(), Frames: 4, Pairs: 2, SingleNode: true, Seed: 3}
	multi := Config{Backend: DYAD, Model: tinyModel(), Frames: 4, Pairs: 2, Seed: 3}
	if _, err := runPooled(single, pool); err != nil {
		t.Fatal(err)
	}
	eng := pool.eng
	got, err := runPooled(multi, pool)
	if err != nil {
		t.Fatal(err)
	}
	if pool.eng != eng {
		t.Error("engine should survive a cluster-spec change")
	}
	want, err := Run(multi)
	if err != nil {
		t.Fatal(err)
	}
	resultScalars(t, "spec change", got, want)

	sharded := multi
	sharded.ShardWorkers = 4
	got, err = runPooled(sharded, pool)
	if err != nil {
		t.Fatal(err)
	}
	if pool.eng == eng {
		t.Error("serial engine must not be reused for a sharded run")
	}
	want, err = Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	resultScalars(t, "shard change", got, want)
}

// The pooling payoff (DESIGN.md §3h): after the first repetition warms the
// pool, wiring the next repetition's rig allocates O(1) — the engine (event
// queue, proc table, RNG streams), the cluster (nodes, device resources,
// queue arrays), and, for streaming runs, the metrics registry all come
// back from the pool instead of being rebuilt. Measured on the rig
// construction path itself so the bound is independent of how much the
// workflow body allocates.
func TestPooledRigConstructionAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation budget checked without -race")
	}
	var buf bytes.Buffer
	sink := metrics.NewCSVSink(&buf)
	for _, tc := range []struct {
		name    string
		metered bool
		maxFrac float64
	}{
		{"plain", false, 0.6},
		{"metered", true, 0.7}, // series/histogram handles are recycled; probe closures re-allocate
	} {
		cfg := Config{Backend: DYAD, Model: tinyModel(), Frames: 2, Pairs: 16, Seed: 11}
		if tc.metered {
			cfg.MetricsInterval = 2 * time.Millisecond
			cfg.MetricsSink = sink
		}
		fresh := testing.AllocsPerRun(10, func() { _ = newRig(cfg, nil) })
		pool := &runPool{}
		if _, err := runPooled(cfg, pool); err != nil {
			t.Fatal(err)
		}
		pooled := testing.AllocsPerRun(10, func() {
			r := newRig(cfg, pool)
			r.eng.Reset(cfg.Seed) // drop the wiring so retire hands back a clean engine
			pool.retire(r)
		})
		if pooled >= fresh*tc.maxFrac {
			t.Errorf("%s: pooled rig wiring allocates %.0f objects, want < %.0f%% of fresh %.0f",
				tc.name, pooled, 100*tc.maxFrac, fresh)
		}
	}
}

// Streaming a run's spans into a ChromeStream must produce byte-for-byte
// the document that buffered recording plus WriteChrome produces.
func TestTraceStreamMatchesBuffered(t *testing.T) {
	cfg := Config{Backend: DYAD, Model: tinyModel(), Frames: 5, Pairs: 2, SingleNode: true, Seed: 21}

	buffered := cfg
	buffered.RecordSpans = true
	res, err := Run(buffered)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := trace.WriteChrome(&want, []trace.Run{{Label: cfg.Label(), Spans: res.Spans}}); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	stream := trace.NewChromeStream(&got)
	streamed := cfg
	streamed.TraceStream = stream
	sres, err := Run(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("streamed Chrome trace diverged from buffered export (%d vs %d bytes)", got.Len(), want.Len())
	}
	if sres.Spans != nil {
		t.Errorf("streaming run retained %d spans, want none", len(sres.Spans))
	}
	// The incremental statistics must equal the buffered aggregation.
	if len(sres.SpanStats) != len(res.SpanStats) {
		t.Fatalf("streaming SpanStats has %d ops, buffered %d", len(sres.SpanStats), len(res.SpanStats))
	}
	for i := range sres.SpanStats {
		if sres.SpanStats[i] != res.SpanStats[i] {
			t.Errorf("SpanStats[%d] diverged: %+v vs %+v", i, sres.SpanStats[i], res.SpanStats[i])
		}
	}
	resultScalars(t, "trace stream", sres, res)
}

// Streaming sampled metrics into a CSVSink — across a pooled batch, so the
// registry itself is recycled between repetitions — must produce byte-for-
// byte the CSV that buffered sampling plus WriteCSV produces.
func TestMetricsSinkMatchesBuffered(t *testing.T) {
	base := Config{Backend: DYAD, Model: tinyModel(), Frames: 5, Pairs: 2, SingleNode: true, Seed: 33}
	const reps = 3
	interval := 2 * time.Millisecond

	// Buffered reference: each rep retains its registry.
	cfgs := RepeatConfigs(base, reps)
	for i := range cfgs {
		cfgs[i].MetricsInterval = interval
	}
	results, err := RunMany(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	var runs []metrics.Run
	for _, res := range results {
		if res.Metrics == nil || res.Metrics.Len() == 0 {
			t.Fatal("buffered rep missing metrics")
		}
		runs = append(runs, metrics.Run{Label: base.Label(), Reg: res.Metrics})
	}
	var want bytes.Buffer
	if err := metrics.WriteCSV(&want, runs); err != nil {
		t.Fatal(err)
	}

	// Streamed: all reps share one sink on one serial worker, so the second
	// and third rep run on a pool-recycled registry.
	var got bytes.Buffer
	sink := metrics.NewCSVSink(&got)
	cfgs = RepeatConfigs(base, reps)
	for i := range cfgs {
		cfgs[i].MetricsInterval = interval
		cfgs[i].MetricsSink = sink
	}
	sresults, err := RunMany(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("streamed metrics CSV diverged from buffered export:\n got:\n%s\nwant:\n%s", got.String(), want.String())
	}
	for i, res := range sresults {
		if res.Metrics != nil {
			t.Errorf("streaming rep %d retained its registry", i)
		}
		resultScalars(t, "metrics sink", res, results[i])
	}
}

// A failed run must retire nothing: the pool stays empty (or keeps its
// previous clean state) so the next run cannot inherit half-mutated state.
func TestFailedRunRetiresNothing(t *testing.T) {
	pool := &runPool{}
	bad := Config{Backend: DYAD, Model: tinyModel(), Frames: 1000, Pairs: 1, SingleNode: true,
		Seed: 5, MaxEvents: 50} // watchdog kills the run almost immediately
	if _, err := runPooled(bad, pool); err == nil {
		t.Fatal("watchdog-limited run unexpectedly succeeded")
	}
	if pool.eng != nil || pool.cl != nil || pool.reg != nil {
		t.Error("failed run leaked state into the pool")
	}
}
