package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Spawn("p", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 10*time.Millisecond {
		t.Fatalf("woke at %v, want 10ms", at)
	}
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("engine now %v, want 10ms", e.Now())
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine(7)
		var order []string
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("p%d", i)
			e.Spawn(name, func(p *Proc) {
				p.Sleep(time.Millisecond) // all wake at the same instant
				order = append(order, p.Name())
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic order: %v vs %v", a, b)
		}
	}
	// Same-instant events fire in schedule order.
	for i, name := range a {
		if name != fmt.Sprintf("p%d", i) {
			t.Fatalf("order %v not FIFO at same instant", a)
		}
	}
}

func TestZeroSleepYields(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestSignalBroadcastWakesAllWaiters(t *testing.T) {
	e := NewEngine(1)
	var sig Signal
	woke := make(map[string]Time)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		e.Spawn(name, func(p *Proc) {
			sig.Wait(p)
			woke[p.Name()] = p.Now()
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		if sig.Pending() != 3 {
			t.Errorf("pending %d, want 3", sig.Pending())
		}
		sig.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for name, at := range woke {
		if at != 5*time.Millisecond {
			t.Fatalf("%s woke at %v, want 5ms", name, at)
		}
	}
}

func TestLatchWaitAfterFireReturnsImmediately(t *testing.T) {
	e := NewEngine(1)
	var l Latch
	var lateWake Time
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		l.Fire()
		l.Fire() // idempotent
	})
	e.Spawn("late", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		l.Wait(p) // already fired: no block
		lateWake = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if lateWake != 10*time.Millisecond {
		t.Fatalf("late waiter resumed at %v, want 10ms", lateWake)
	}
	if !l.Fired() {
		t.Fatal("latch should report fired")
	}
}

func TestStrandedProcessesReported(t *testing.T) {
	e := NewEngine(1)
	var sig Signal
	e.Spawn("stuck", func(p *Proc) {
		sig.Wait(p) // never broadcast
		t.Error("stranded process resumed normally")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("want ErrStranded, got nil")
	}
}

func TestProcessPanicSurfacesAsError(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("bad", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("boom")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("want panic error, got nil")
	}
}

func TestResourceFIFOAndContention(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "dev", 1)
	var finish []string
	spawnUser := func(name string, startDelay, service time.Duration) {
		e.Spawn(name, func(p *Proc) {
			p.Sleep(startDelay)
			r.Use(p, service)
			finish = append(finish, p.Name())
		})
	}
	// a starts first and holds for 10ms; b and c queue in arrival order.
	spawnUser("a", 0, 10*time.Millisecond)
	spawnUser("b", 1*time.Millisecond, 1*time.Millisecond)
	spawnUser("c", 2*time.Millisecond, 1*time.Millisecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish order %v, want %v (FIFO)", finish, want)
		}
	}
	if e.Now() != 12*time.Millisecond {
		t.Fatalf("end time %v, want 12ms (serialized)", e.Now())
	}
}

func TestResourceCapacityAllowsParallelGrants(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "dev", 2)
	done := 0
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			done++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("end %v, want 10ms (parallel grants)", e.Now())
	}
	if done != 2 {
		t.Fatalf("done %d, want 2", done)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "dev", 1)
	e.Spawn("u", func(p *Proc) {
		r.Use(p, 5*time.Millisecond)
		p.Sleep(5 * time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	u := r.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization %v, want ~0.5", u)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEngine(1)
	var childAt Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		p.Engine().Spawn("child", func(c *Proc) {
			c.Sleep(2 * time.Millisecond)
			childAt = c.Now()
		})
		p.Sleep(10 * time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 5*time.Millisecond {
		t.Fatalf("child finished at %v, want 5ms", childAt)
	}
}

// Property: for any random workload of sleeps, the per-process observed
// clock is monotonically non-decreasing and the engine terminates cleanly.
func TestClockMonotonicityProperty(t *testing.T) {
	f := func(seed uint64, nProcsRaw, nStepsRaw uint8) bool {
		nProcs := int(nProcsRaw)%8 + 1
		nSteps := int(nStepsRaw)%20 + 1
		e := NewEngine(seed)
		ok := true
		for i := 0; i < nProcs; i++ {
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				last := p.Now()
				for s := 0; s < nSteps; s++ {
					p.Sleep(time.Duration(p.Rand().Intn(1000)) * time.Microsecond)
					if p.Now() < last {
						ok = false
					}
					last = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a capacity-1 resource under random contention serializes total
// service: end time >= sum of service times.
func TestResourceSerializationProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%10 + 1
		e := NewEngine(seed)
		r := NewResource(e, "dev", 1)
		var total time.Duration
		for i := 0; i < n; i++ {
			service := time.Duration((i+1)*37) * time.Microsecond
			total += service
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(time.Duration(p.Rand().Intn(100)) * time.Microsecond)
				r.Use(p, service)
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return e.Now() >= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterministicPerSeed(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestJitterMeanRoughlyPreserved(t *testing.T) {
	r := NewRNG(7)
	base := time.Millisecond
	var sum time.Duration
	n := 20000
	for i := 0; i < n; i++ {
		sum += r.Jitter(base, 0.05)
	}
	mean := sum / time.Duration(n)
	if mean < 990*time.Microsecond || mean > 1010*time.Microsecond {
		t.Fatalf("jitter mean %v, want ~1ms", mean)
	}
}

func TestAfterCallbackRuns(t *testing.T) {
	e := NewEngine(1)
	var fired Time
	e.After(4*time.Millisecond, func() { fired = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 4*time.Millisecond {
		t.Fatalf("callback at %v, want 4ms", fired)
	}
}

func TestResourceUseN(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "dev", 4)
	var order []string
	// Holder takes all 4 units for 10ms; a 2-unit user must wait.
	e.Spawn("big", func(p *Proc) {
		r.UseN(p, 4, 10*time.Millisecond)
		order = append(order, "big")
	})
	e.Spawn("small", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.UseN(p, 2, time.Millisecond)
		order = append(order, "small")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("order %v", order)
	}
	if e.Now() != 11*time.Millisecond {
		t.Fatalf("end %v, want 11ms", e.Now())
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("bad", func(p *Proc) {
		p.Sleep(-time.Second)
	})
	if err := e.Run(); err == nil {
		t.Fatal("negative sleep did not surface as an error")
	}
}

// Regression: the post-abort drain loop must stop at the first failure,
// exactly like the main loop. A panic raised while running a stranded
// process's cleanup events used to leave the drain executing every
// subsequent event against the now-inconsistent engine state.
func TestDrainStopsOnCleanupFailure(t *testing.T) {
	e := NewEngine(1)
	var sig Signal
	ranAfter := false
	e.Spawn("stranded", func(p *Proc) {
		defer func() {
			// Abort-time cleanup: schedule follow-up work. The first
			// cleanup process panics; the second must then never run.
			eng := p.Engine()
			eng.Spawn("bad-cleanup", func(c *Proc) { panic("cleanup boom") })
			eng.Spawn("after-cleanup", func(c *Proc) { ranAfter = true })
		}()
		sig.Wait(p) // never broadcast: stranded, aborted at end of run
	})
	err := e.Run()
	if err == nil {
		t.Fatal("want cleanup panic error, got nil")
	}
	if !strings.Contains(err.Error(), "cleanup boom") {
		t.Fatalf("error %q does not surface the cleanup panic", err)
	}
	if ranAfter {
		t.Fatal("drain kept executing events after a cleanup failure")
	}
}
