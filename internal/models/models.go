// Package models holds the molecular model registry of the paper's
// Tables I and II: the four molecular structures (JAC, ApoA1, F1 ATPase,
// STMV), their atom counts, frame sizes, simulation rates, and the stride
// arithmetic that equalizes frame-generation frequency across models.
package models

import (
	"fmt"
	"time"

	"repro/internal/frame"
)

// Model describes one molecular structure in an MD workflow.
type Model struct {
	// Name is the structure's common name ("JAC", "STMV", ...).
	Name string
	// Atoms is the atom count of the molecular system.
	Atoms int
	// StepsPerSecond is the MD engine's simulation rate for this model
	// (derived, as in the paper, from published NAMD ns/day benchmarks).
	StepsPerSecond float64
	// Stride is the default output stride (Table II): the number of MD
	// steps between emitted frames, chosen so every model generates one
	// frame per ~0.82 s.
	Stride int
}

// Registry returns the paper's four models in Table I order.
func Registry() []Model {
	return []Model{
		{Name: "JAC", Atoms: 23_558, StepsPerSecond: 1072.92, Stride: 880},
		{Name: "ApoA1", Atoms: 92_224, StepsPerSecond: 358.22, Stride: 294},
		{Name: "F1 ATPase", Atoms: 327_506, StepsPerSecond: 115.74, Stride: 92},
		{Name: "STMV", Atoms: 1_066_628, StepsPerSecond: 34.14, Stride: 28},
	}
}

// ByName looks a model up case-sensitively by name (also accepting the
// space-free spelling "F1ATPase").
func ByName(name string) (Model, error) {
	for _, m := range Registry() {
		if m.Name == name {
			return m, nil
		}
	}
	if name == "F1ATPase" || name == "F1-ATPase" {
		return Registry()[2], nil
	}
	return Model{}, fmt.Errorf("models: unknown molecular model %q", name)
}

// Custom builds a user-defined model for studies beyond the paper's four
// structures. Stride, when zero, is derived to hit the paper's ~0.82 s
// frame-generation frequency.
func Custom(name string, atoms int, stepsPerSecond float64, stride int) (Model, error) {
	if name == "" || atoms <= 0 || stepsPerSecond <= 0 {
		return Model{}, fmt.Errorf("models: custom model needs a name, atoms > 0, steps/s > 0 (got %q, %d, %v)",
			name, atoms, stepsPerSecond)
	}
	if stride <= 0 {
		stride = int(0.82*stepsPerSecond + 0.5)
		if stride < 1 {
			stride = 1
		}
	}
	return Model{Name: name, Atoms: atoms, StepsPerSecond: stepsPerSecond, Stride: stride}, nil
}

// MsPerStep returns the wall-clock milliseconds one MD step takes
// (Table II's ms/step column).
func (m Model) MsPerStep() float64 { return 1000 / m.StepsPerSecond }

// StepDuration returns one MD step as a duration.
func (m Model) StepDuration() time.Duration {
	return time.Duration(float64(time.Second) / m.StepsPerSecond)
}

// FrameBytes returns the serialized frame size for this model, matching
// Table I (~28 bytes per atom plus a fixed header).
func (m Model) FrameBytes() int64 { return frame.EncodedSize(m.Name, m.Atoms) }

// Frequency returns the frame-generation period for a given stride:
// stride * step duration (Table II's Frequency column for the default
// strides, ~0.82 s for every model).
func (m Model) Frequency(stride int) time.Duration {
	if stride < 1 {
		panic(fmt.Sprintf("models: stride %d < 1", stride))
	}
	return time.Duration(stride) * m.StepDuration()
}

// DefaultFrequency returns Frequency(m.Stride).
func (m Model) DefaultFrequency() time.Duration { return m.Frequency(m.Stride) }

// String renders the Table I row.
func (m Model) String() string {
	return fmt.Sprintf("%s: %d atoms, %.2f KiB/frame, %.2f steps/s",
		m.Name, m.Atoms, float64(m.FrameBytes())/1024, m.StepsPerSecond)
}
