// Package stream is a real-time, in-process implementation of DYAD's
// producer/consumer contract: a staged store with automatic
// synchronization. Producers publish named payloads and never block on
// consumers; consumers block until the named payload exists. It is the
// wall-clock counterpart of internal/dyad (which runs in simulated time)
// and powers the runnable examples that pipe a real MD engine into real
// in situ analytics.
package stream

import (
	"context"
	"fmt"
	"sync"
)

// Store is a concurrency-safe staged payload store. The zero value is not
// usable; create one with NewStore.
type Store struct {
	mu      sync.Mutex
	files   map[string][]byte
	arrived map[string]chan struct{}

	produced int64
	consumed int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		files:   make(map[string][]byte),
		arrived: make(map[string]chan struct{}),
	}
}

// Produce publishes data under path, waking any waiting consumers.
// Publishing the same path twice replaces the payload (a second wake is
// unnecessary: the channel is already closed).
func (s *Store) Produce(path string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[path] = data
	s.produced++
	if ch, ok := s.arrived[path]; ok {
		select {
		case <-ch:
			// already closed
		default:
			close(ch)
		}
	} else {
		ch := make(chan struct{})
		close(ch)
		s.arrived[path] = ch
	}
}

// Consume blocks until path has been produced, then returns its payload.
// The context bounds the wait.
func (s *Store) Consume(ctx context.Context, path string) ([]byte, error) {
	s.mu.Lock()
	ch, ok := s.arrived[path]
	if !ok {
		ch = make(chan struct{})
		s.arrived[path] = ch
	}
	s.mu.Unlock()

	select {
	case <-ch:
	case <-ctx.Done():
		return nil, fmt.Errorf("stream: consume %s: %w", path, ctx.Err())
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("stream: consume %s: payload retracted", path)
	}
	s.consumed++
	return data, nil
}

// TryConsume returns the payload if already produced, without blocking.
func (s *Store) TryConsume(path string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.files[path]
	if ok {
		s.consumed++
	}
	return data, ok
}

// Discard removes a consumed payload to bound memory in long pipelines.
func (s *Store) Discard(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.files, path)
}

// Stats reports produced and consumed counts.
func (s *Store) Stats() (produced, consumed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.produced, s.consumed
}

// Len returns the number of staged payloads.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}
