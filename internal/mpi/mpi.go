// Package mpi models the message-passing primitives the paper's workflow
// uses for manual synchronization on XFS and Lustre: point-to-point sends
// and the per-pair MPI_Barrier whose wait time the study reports as idle
// time ("explicit_sync").
package mpi

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// msgBytes is the size of a barrier/control message on the wire.
const msgBytes = 64

// Comm is a communicator over a fixed set of ranks, each pinned to a node.
type Comm struct {
	cl    *cluster.Cluster
	nodes []*cluster.Node

	arrived int
	release *sim.Latch

	Barriers int64
}

// NewComm builds a communicator whose rank i lives on nodes[i].
func NewComm(cl *cluster.Cluster, nodes []*cluster.Node) *Comm {
	if len(nodes) < 1 {
		panic("mpi: communicator needs at least one rank")
	}
	return &Comm{cl: cl, nodes: nodes, release: &sim.Latch{}}
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.nodes) }

func (c *Comm) checkRank(rank int) {
	if rank < 0 || rank >= len(c.nodes) {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, len(c.nodes)))
	}
}

// Send transmits n payload bytes from rank src to rank dst (eager protocol:
// the sender pays the wire time and returns).
func (c *Comm) Send(p *sim.Proc, src, dst int, n int64) {
	c.checkRank(src)
	c.checkRank(dst)
	c.cl.Transfer(p, c.nodes[src], c.nodes[dst], msgBytes+n)
}

// Barrier blocks rank until every rank has entered the barrier, then
// returns. It returns the time the caller spent inside (the paper's idle
// time for the traditional backends). Implementation is the classic
// centralized gather-at-rank-0 + broadcast release.
func (c *Comm) Barrier(p *sim.Proc, rank int) time.Duration {
	c.checkRank(rank)
	start := p.Now()
	// Arrival message to rank 0 (free if we are rank 0).
	if rank != 0 {
		c.cl.Transfer(p, c.nodes[rank], c.nodes[0], msgBytes)
	}
	c.arrived++
	if c.arrived == len(c.nodes) {
		// Last arriver releases everyone and resets for the next round.
		c.arrived = 0
		c.Barriers++
		l := c.release
		c.release = &sim.Latch{}
		l.Fire()
	} else {
		c.release.Wait(p)
	}
	// Release broadcast from rank 0 back to this rank.
	if rank != 0 {
		c.cl.Transfer(p, c.nodes[0], c.nodes[rank], msgBytes)
	}
	return p.Now() - start
}

// Notify is a one-way doorbell from src to dst: the sender pays one small
// message, the receiver observes it via its own Waiter. It underpins the
// "producer posts, consumer polls/waits" coupling of the coarse-grained
// synchronization scheme.
type Notify struct {
	cl       *cluster.Cluster
	src, dst *cluster.Node
	posted   int
	waiters  []*waiter
}

type waiter struct {
	p     *sim.Proc
	seqno int
}

// NewNotify creates a doorbell from src to dst.
func NewNotify(cl *cluster.Cluster, src, dst *cluster.Node) *Notify {
	return &Notify{cl: cl, src: src, dst: dst}
}

// Post rings the doorbell (the k-th post unblocks waiters of seqno <= k).
func (n *Notify) Post(p *sim.Proc) {
	n.cl.Transfer(p, n.src, n.dst, msgBytes)
	n.posted++
	rest := n.waiters[:0]
	for _, w := range n.waiters {
		if w.seqno <= n.posted {
			w.p.Wake()
		} else {
			rest = append(rest, w)
		}
	}
	n.waiters = rest
}

// WaitSeq blocks until at least seqno posts have occurred and returns the
// time spent waiting.
func (n *Notify) WaitSeq(p *sim.Proc, seqno int) time.Duration {
	start := p.Now()
	if n.posted < seqno {
		n.waiters = append(n.waiters, &waiter{p: p, seqno: seqno})
		p.Block()
	}
	return p.Now() - start
}
