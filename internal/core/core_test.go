package core

import (
	"testing"
	"time"

	"repro/internal/models"
)

// tinyModel is a fast synthetic model for correctness tests: small frames,
// quick steps.
func tinyModel() models.Model {
	return models.Model{Name: "TINY", Atoms: 2_000, StepsPerSecond: 10_000, Stride: 50}
}

func jac(t *testing.T) models.Model {
	t.Helper()
	m, err := models.ByName("JAC")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	m := tinyModel()
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid dyad single", Config{Backend: DYAD, Model: m, Frames: 1, Pairs: 1, SingleNode: true}, true},
		{"valid lustre multi", Config{Backend: Lustre, Model: m, Frames: 1, Pairs: 1}, true},
		{"zero pairs", Config{Backend: DYAD, Model: m, Frames: 1, Pairs: 0, SingleNode: true}, false},
		{"zero frames", Config{Backend: DYAD, Model: m, Frames: 0, Pairs: 1, SingleNode: true}, false},
		{"lustre single-node", Config{Backend: Lustre, Model: m, Frames: 1, Pairs: 1, SingleNode: true}, false},
		{"xfs multi-node", Config{Backend: XFS, Model: m, Frames: 1, Pairs: 1}, false},
		{"too many pairs on one node", Config{Backend: XFS, Model: m, Frames: 1, Pairs: 5, SingleNode: true}, false},
		{"empty model", Config{Backend: DYAD, Frames: 1, Pairs: 1, SingleNode: true}, false},
		{"negative stride", Config{Backend: DYAD, Model: m, Frames: 1, Pairs: 1, SingleNode: true, Stride: -1}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestComputeNodesPlacement(t *testing.T) {
	m := tinyModel()
	cases := []struct {
		pairs int
		want  int
	}{
		{1, 2}, {8, 2}, {9, 4}, {16, 4}, {64, 16}, {256, 64},
	}
	for _, c := range cases {
		cfg := Config{Backend: Lustre, Model: m, Frames: 1, Pairs: c.pairs}
		if got := cfg.ComputeNodes(); got != c.want {
			t.Errorf("pairs=%d: nodes=%d, want %d", c.pairs, got, c.want)
		}
	}
	single := Config{Backend: DYAD, Model: m, Frames: 1, Pairs: 4, SingleNode: true}
	if single.ComputeNodes() != 1 {
		t.Error("single-node config must use 1 node")
	}
}

func TestRunAllBackendsConserveFrames(t *testing.T) {
	m := tinyModel()
	for _, cfg := range []Config{
		{Backend: DYAD, Model: m, Frames: 12, Pairs: 2, SingleNode: true, Seed: 1},
		{Backend: XFS, Model: m, Frames: 12, Pairs: 2, SingleNode: true, Seed: 1},
		{Backend: DYAD, Model: m, Frames: 12, Pairs: 4, Seed: 1},
		{Backend: Lustre, Model: m, Frames: 12, Pairs: 4, Seed: 1},
	} {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Label(), err)
		}
		if res.FramesRead != cfg.Frames*cfg.Pairs {
			t.Errorf("%s: frames %d, want %d", cfg.Label(), res.FramesRead, cfg.Frames*cfg.Pairs)
		}
		if res.BytesRead != int64(cfg.Frames*cfg.Pairs)*m.FrameBytes() {
			t.Errorf("%s: bytes %d", cfg.Label(), res.BytesRead)
		}
		if res.Makespan <= 0 {
			t.Errorf("%s: makespan %v", cfg.Label(), res.Makespan)
		}
	}
}

func TestRealFramesVerified(t *testing.T) {
	m := tinyModel()
	cfg := Config{Backend: DYAD, Model: m, Frames: 5, Pairs: 2, Seed: 3, RealFrames: true}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("real-frame run failed verification: %v", err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	m := tinyModel()
	cfg := Config{Backend: DYAD, Model: m, Frames: 10, Pairs: 3, Seed: 42, ComputeJitter: 0.01}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Producer != b.Producer || a.Consumer != b.Consumer || a.Makespan != b.Makespan {
		t.Fatalf("same seed differs:\n%+v\n%+v", a, b)
	}
}

func TestJitterVariesAcrossSeeds(t *testing.T) {
	m := tinyModel()
	base := Config{Backend: DYAD, Model: m, Frames: 10, Pairs: 1, SingleNode: true, ComputeJitter: 0.05}
	base.Seed = 1
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Seed = 2
	b, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan == b.Makespan {
		t.Fatal("jittered runs with different seeds are identical")
	}
}

// The paper's Finding 1 mechanism: DYAD production costs more than XFS
// (metadata), but overall consumption is orders of magnitude cheaper
// (adaptive vs coarse-grained synchronization).
func TestSingleNodeDYADvsXFSShape(t *testing.T) {
	m := jac(t)
	run := func(b Backend) *Result {
		res, err := Run(Config{Backend: b, Model: m, Frames: 32, Pairs: 2, SingleNode: true, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dy, xf := run(DYAD), run(XFS)

	prodRatio := dy.Producer.Sum().Seconds() / xf.Producer.Sum().Seconds()
	if prodRatio <= 1.0 || prodRatio > 2.5 {
		t.Errorf("DYAD/XFS production ratio %.2f, want in (1.0, 2.5] (paper: 1.4)", prodRatio)
	}
	consRatio := xf.Consumer.Sum().Seconds() / dy.Consumer.Sum().Seconds()
	if consRatio < 10 {
		t.Errorf("XFS/DYAD consumption ratio %.1f, want >> 10 (paper: 192.9)", consRatio)
	}
	if xf.Consumer.Idle < xf.Consumer.Movement*10 {
		t.Errorf("XFS consumption should be idle-dominated: %v", xf.Consumer)
	}
	if dy.Producer.Idle != 0 {
		t.Errorf("DYAD producer idle %v, want 0 (never blocks)", dy.Producer.Idle)
	}
}

// The paper's Findings 2/3 mechanism: cross-node DYAD beats Lustre in both
// movement and idle.
func TestTwoNodeDYADvsLustreShape(t *testing.T) {
	m := jac(t)
	run := func(b Backend) *Result {
		res, err := Run(Config{Backend: b, Model: m, Frames: 32, Pairs: 4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dy, lu := run(DYAD), run(Lustre)

	prodMv := lu.Producer.Movement.Seconds() / dy.Producer.Movement.Seconds()
	if prodMv < 3 || prodMv > 15 {
		t.Errorf("Lustre/DYAD producer movement %.1f, want ~7.5 (3..15)", prodMv)
	}
	consMv := lu.Consumer.Movement.Seconds() / dy.Consumer.Movement.Seconds()
	if consMv < 3 || consMv > 15 {
		t.Errorf("Lustre/DYAD consumer movement %.1f, want ~6.9 (3..15)", consMv)
	}
	overall := lu.Consumer.Sum().Seconds() / dy.Consumer.Sum().Seconds()
	if overall < 10 {
		t.Errorf("Lustre/DYAD overall consumption %.1f, want >> 10 (paper: 197.4)", overall)
	}
}

// Consumption can never finish before production starts: the consumer idle
// plus movement must place total consumer activity within the makespan.
func TestTimesWithinMakespan(t *testing.T) {
	m := tinyModel()
	for _, b := range []Backend{DYAD, Lustre} {
		res, err := Run(Config{Backend: b, Model: m, Frames: 16, Pairs: 2, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if res.Consumer.Sum() > res.Makespan || res.Producer.Sum() > res.Makespan {
			t.Errorf("%s: component times exceed makespan %v: prod=%v cons=%v",
				b, res.Makespan, res.Producer.Sum(), res.Consumer.Sum())
		}
	}
}

// Traditional backends serialize producer and consumer: consumer idle per
// frame is about one full production period.
func TestTraditionalIdleTracksFrequency(t *testing.T) {
	m := tinyModel()
	res, err := Run(Config{Backend: Lustre, Model: m, Frames: 20, Pairs: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Backend: Lustre, Model: m, Frames: 20, Pairs: 1}
	perFrameIdle := res.Consumer.Idle / time.Duration(20)
	freq := cfg.Frequency()
	if perFrameIdle < freq || perFrameIdle > freq*3 {
		t.Errorf("consumer idle/frame %v, want ~frequency %v", perFrameIdle, freq)
	}
}

// DYAD's adaptive sync: consumer idle is dominated by the first frame;
// doubling the frame count must not double the idle.
func TestDYADIdleFirstTouchOnly(t *testing.T) {
	m := tinyModel()
	run := func(frames int) time.Duration {
		res, err := Run(Config{Backend: DYAD, Model: m, Frames: frames, Pairs: 1, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		return res.Consumer.Idle
	}
	i20, i40 := run(20), run(40)
	if i40 > i20*3/2 {
		t.Errorf("DYAD idle grows with frames: %v (20f) -> %v (40f)", i20, i40)
	}
}

func TestKeepProfiles(t *testing.T) {
	m := tinyModel()
	res, err := Run(Config{Backend: DYAD, Model: m, Frames: 4, Pairs: 2, Seed: 1, KeepProfiles: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ProducerProfiles) != 2 || len(res.ConsumerProfiles) != 2 {
		t.Fatalf("profiles %d/%d, want 2/2", len(res.ProducerProfiles), len(res.ConsumerProfiles))
	}
	if res.ConsumerProfiles[0].Root.Find("dyad_consume") == nil {
		t.Fatal("consumer profile missing dyad_consume")
	}
	// Without the flag, profiles are dropped.
	res2, err := Run(Config{Backend: DYAD, Model: m, Frames: 4, Pairs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ProducerProfiles != nil {
		t.Fatal("profiles kept without KeepProfiles")
	}
}

func TestRepeatAndAggregate(t *testing.T) {
	m := tinyModel()
	cfg := Config{Backend: DYAD, Model: m, Frames: 8, Pairs: 2, Seed: 100, ComputeJitter: 0.02}
	results, err := Repeat(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	agg := Aggregated(results)
	if agg.Reps != 4 {
		t.Fatalf("agg reps %d", agg.Reps)
	}
	if agg.ProdMovement.Mean <= 0 || agg.Makespan.Mean <= 0 {
		t.Fatalf("aggregate means not positive: %+v", agg)
	}
	if agg.Makespan.Std == 0 {
		t.Error("jittered reps should show variance in makespan")
	}
	if agg.ConsTotalMean() != agg.ConsMovement.Mean+agg.ConsIdle.Mean {
		t.Error("ConsTotalMean mismatch")
	}
}

func TestBackendParsing(t *testing.T) {
	for _, s := range []string{"DYAD", "XFS", "Lustre", "dyad", "xfs", "lustre"} {
		if _, err := ParseBackend(s); err != nil {
			t.Errorf("ParseBackend(%q): %v", s, err)
		}
	}
	if _, err := ParseBackend("gpfs"); err == nil {
		t.Error("unknown backend accepted")
	}
	if DYAD.String() != "DYAD" || XFS.String() != "XFS" || Lustre.String() != "Lustre" {
		t.Error("backend names wrong")
	}
}

func TestLustreNoiseAddsVariability(t *testing.T) {
	m := tinyModel()
	cfg := Config{Backend: Lustre, Model: m, Frames: 16, Pairs: 2, LustreNoise: true, ComputeJitter: 0.01}
	cfg.Seed = 21
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 22
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Producer.Movement == b.Producer.Movement {
		t.Error("noisy runs identical across seeds")
	}
}
