package cluster

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func testSpec(nodes int) Spec {
	return Spec{
		Nodes: nodes,
		SSD: SSDSpec{
			ReadBandwidth:  1e9,
			WriteBandwidth: 1e9,
			ReadLatency:    10 * time.Microsecond,
			WriteLatency:   10 * time.Microsecond,
			Channels:       1,
		},
		NIC:    NICSpec{Bandwidth: 1e9, Overhead: time.Microsecond},
		Fabric: FabricSpec{HopLatency: time.Microsecond},
	}
}

func TestSSDWriteTiming(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, testSpec(1))
	var took time.Duration
	e.Spawn("w", func(p *sim.Proc) {
		took, _ = c.Node(0).SSD.Write(p, 1_000_000) // 1 MB at 1 GB/s = 1 ms
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Millisecond + 10*time.Microsecond
	if took != want {
		t.Fatalf("write took %v, want %v", took, want)
	}
	if c.Node(0).SSD.BytesWritten != 1_000_000 {
		t.Fatalf("accounted %d bytes", c.Node(0).SSD.BytesWritten)
	}
}

func TestSSDContentionSerializes(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, testSpec(1))
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			c.Node(0).SSD.Write(p, 1_000_000)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 writers on one channel: ~4x a single write.
	want := 4 * (time.Millisecond + 10*time.Microsecond)
	if e.Now() != want {
		t.Fatalf("4 contended writes ended at %v, want %v", e.Now(), want)
	}
}

func TestTransferCrossNodeTiming(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, testSpec(2))
	var took time.Duration
	e.Spawn("tx", func(p *sim.Proc) {
		took = c.Transfer(p, c.Node(0), c.Node(1), 1_000_000)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 MB at 1 GB/s = 1ms + overhead 1us + hop 1us.
	want := time.Millisecond + 2*time.Microsecond
	if took != want {
		t.Fatalf("transfer took %v, want %v", took, want)
	}
	if c.BytesOnWire != 1_000_000 {
		t.Fatalf("wire bytes %d", c.BytesOnWire)
	}
}

func TestTransferSameNodeIsCheapAndOffWire(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, testSpec(2))
	var local, remote time.Duration
	e.Spawn("tx", func(p *sim.Proc) {
		local = c.Transfer(p, c.Node(0), c.Node(0), 1_000_000)
		remote = c.Transfer(p, c.Node(0), c.Node(1), 1_000_000)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if local >= remote {
		t.Fatalf("loopback (%v) should be cheaper than cross-node (%v)", local, remote)
	}
	if c.BytesOnWire != 1_000_000 {
		t.Fatalf("loopback must not count on-wire bytes, got %d", c.BytesOnWire)
	}
}

func TestFanOutContentionOnSharedSenderNIC(t *testing.T) {
	// 4 concurrent transfers out of node 0 to distinct nodes share one NIC:
	// total time ~4x one transfer.
	e := sim.NewEngine(1)
	c := New(e, testSpec(5))
	for i := 1; i <= 4; i++ {
		dst := c.Node(i)
		e.Spawn(fmt.Sprintf("tx%d", i), func(p *sim.Proc) {
			c.Transfer(p, c.Node(0), dst, 1_000_000)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() < 4*time.Millisecond {
		t.Fatalf("fan-out finished at %v, want >= 4ms (serialized on sender NIC)", e.Now())
	}
}

func TestRPCRoundTrip(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, testSpec(2))
	server := sim.NewResource(e, "svc", 1)
	var took time.Duration
	e.Spawn("rpc", func(p *sim.Proc) {
		took = c.RPC(p, c.Node(0), c.Node(1), 128, 128, server, 100*time.Microsecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if took < 100*time.Microsecond {
		t.Fatalf("rpc %v cannot be below service time", took)
	}
	if took > time.Millisecond {
		t.Fatalf("rpc %v implausibly slow for 128-byte messages", took)
	}
}

func TestCoronaProfileSanity(t *testing.T) {
	s := CoronaProfile(64)
	if s.Nodes != 64 {
		t.Fatalf("nodes %d", s.Nodes)
	}
	if s.SSD.WriteBandwidth <= 0 || s.SSD.ReadBandwidth < s.SSD.WriteBandwidth {
		t.Fatal("NVMe read bandwidth should be >= write bandwidth > 0")
	}
	if s.NIC.Bandwidth <= 0 || s.Fabric.HopLatency <= 0 {
		t.Fatal("fabric parameters must be positive")
	}
}

// Property: transfer time is monotone non-decreasing in size.
func TestTransferMonotoneInSize(t *testing.T) {
	f := func(a, b uint32) bool {
		small, big := int64(a%1_000_000), int64(b%1_000_000)
		if small > big {
			small, big = big, small
		}
		e := sim.NewEngine(1)
		c := New(e, testSpec(2))
		var ts, tb time.Duration
		e.Spawn("tx", func(p *sim.Proc) {
			ts = c.Transfer(p, c.Node(0), c.Node(1), small)
			tb = c.Transfer(p, c.Node(0), c.Node(1), big)
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ts <= tb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSSDDegradeSlowsService(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, testSpec(1))
	var healthy, degraded time.Duration
	e.Spawn("w", func(p *sim.Proc) {
		healthy, _ = c.Node(0).SSD.Write(p, 1_000_000)
		c.Node(0).SSD.Degrade(4)
		degraded, _ = c.Node(0).SSD.Write(p, 1_000_000)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if degraded != 4*healthy {
		t.Fatalf("degraded write %v, want 4x healthy %v", degraded, healthy)
	}
}

func TestNICDegradeSlowsTransfers(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, testSpec(2))
	var healthy, degraded time.Duration
	e.Spawn("tx", func(p *sim.Proc) {
		healthy = c.Transfer(p, c.Node(0), c.Node(1), 1_000_000)
		c.Node(0).DegradeNIC(4)
		degraded = c.Transfer(p, c.Node(0), c.Node(1), 1_000_000)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if degraded <= healthy*3 {
		t.Fatalf("degraded transfer %v, want ~4x healthy %v", degraded, healthy)
	}
}

func TestDegradeRejectsSpeedup(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, testSpec(1))
	defer func() {
		if recover() == nil {
			t.Fatal("factor < 1 accepted")
		}
	}()
	c.Node(0).SSD.Degrade(0.5)
}
