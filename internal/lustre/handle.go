package lustre

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// handle is a byte-range view of a striped Lustre file through one client.
type handle struct {
	c      *Client
	path   string
	closed bool
}

// Open implements vfs.HandleFS: one MDS lookup, then range I/O.
func (c *Client) Open(p *sim.Proc, path string) (vfs.Handle, error) {
	path = vfs.Clean(path)
	c.fs.mdsRPC(p, c.node)
	if _, ok := c.fs.tree.Get(path); !ok {
		return nil, vfs.PathError("open", path, vfs.ErrNotExist)
	}
	return &handle{c: c, path: path}, nil
}

// CreateFile implements vfs.HandleFS: MDS create with layout allocation.
func (c *Client) CreateFile(p *sim.Proc, path string) (vfs.Handle, error) {
	path = vfs.Clean(path)
	f := c.fs
	f.mdsRPC(p, c.node)
	if _, ok := f.layout[path]; !ok {
		f.layout[path] = f.nextOST
		f.nextOST = (f.nextOST + 1) % len(f.osts)
	}
	f.tree.Put(path, vfs.Payload{})
	return &handle{c: c, path: path}, nil
}

func (h *handle) Path() string { return h.path }

func (h *handle) Size() int64 {
	sz, _ := h.c.fs.tree.Size(h.path)
	return sz
}

// rangeChunks invokes fn for each stripe chunk a byte range covers, with
// the chunk index and the byte count of the range inside that chunk.
func (h *handle) rangeChunks(off, n int64, fn func(chunk int, bytes int64)) {
	stripe := h.c.fs.params.StripeSize
	for covered := int64(0); covered < n; {
		chunk := int((off + covered) / stripe)
		inChunk := stripe - (off+covered)%stripe
		if rest := n - covered; inChunk > rest {
			inChunk = rest
		}
		fn(chunk, inChunk)
		covered += inChunk
	}
}

// ReadAt issues RPCs only to the OSTs whose stripes the range covers.
func (h *handle) ReadAt(p *sim.Proc, off, n int64) ([]byte, error) {
	if h.closed {
		return nil, vfs.PathError("read", h.path, vfs.ErrClosed)
	}
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("lustre: %s: negative range (%d, %d): %w", h.path, off, n, vfs.ErrInvalidRange)
	}
	f := h.c.fs
	pl, ok := f.tree.Get(h.path)
	if !ok {
		return nil, vfs.PathError("read", h.path, vfs.ErrNotExist)
	}
	if off+n > pl.Size() {
		return nil, fmt.Errorf("lustre: %s: read [%d,%d) past EOF %d: %w", h.path, off, off+n, pl.Size(), vfs.ErrInvalidRange)
	}
	if !pl.HasBytes() {
		return nil, vfs.PathError("read", h.path, vfs.ErrSizeOnly)
	}
	first := f.layout[h.path]
	firstRPC := true
	h.rangeChunks(off, n, func(chunk int, bytes int64) {
		o := f.ostFor(first, chunk%f.params.StripeCount)
		service := f.params.OSTService + bwTime(bytes, f.params.OSTReadBandwidth)
		if firstRPC {
			service += f.params.PerFileReadOverhead
			firstRPC = false
		}
		f.ostRPC(p, h.c.node, o, 256, bytes, service)
	})
	return pl.Bytes()[off : off+n], nil
}

// WriteAt pushes only the covered stripes' OSTs.
func (h *handle) WriteAt(p *sim.Proc, off int64, data []byte) error {
	if h.closed {
		return vfs.PathError("write", h.path, vfs.ErrClosed)
	}
	f := h.c.fs
	cur, ok := f.tree.Get(h.path)
	if !ok {
		return vfs.PathError("write", h.path, vfs.ErrNotExist)
	}
	if off < 0 || off > cur.Size() {
		return fmt.Errorf("lustre: %s: write at %d would leave a hole (size %d): %w", h.path, off, cur.Size(), vfs.ErrInvalidRange)
	}
	first := f.layout[h.path]
	firstRPC := true
	h.rangeChunks(off, int64(len(data)), func(chunk int, bytes int64) {
		o := f.ostFor(first, chunk%f.params.StripeCount)
		service := f.params.OSTService + bwTime(bytes, f.params.OSTWriteBandwidth)
		if firstRPC {
			service += f.params.PerFileWriteOverhead
			firstRPC = false
		}
		f.ostRPC(p, h.c.node, o, bytes, 64, service)
	})
	f.tree.Put(h.path, vfs.SplicePayload(cur, off, vfs.BytesPayload(data)))
	return nil
}

// Append adds data at EOF.
func (h *handle) Append(p *sim.Proc, data []byte) error {
	return h.WriteAt(p, h.Size(), data)
}

// Close updates size/attributes at the MDS.
func (h *handle) Close(p *sim.Proc) error {
	if h.closed {
		return vfs.PathError("close", h.path, vfs.ErrClosed)
	}
	h.c.fs.mdsRPC(p, h.c.node)
	h.closed = true
	return nil
}

var _ vfs.HandleFS = (*Client)(nil)
