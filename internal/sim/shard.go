package sim

// This file is the sharded parallel discrete-event engine (PDES) —
// conservative synchronization with a deterministic merge.
//
// Architecture (DESIGN.md §3g):
//
//   - The pending-event set is partitioned across shardWorkers shards, each
//     owning a private adaptive event queue (queue.go: 4-ary heap below ~1k
//     pending, ladder above) plus an unsorted inbox. Process idx is
//     owned by the shard SetShardAssign chooses (node-group assignment when
//     the harness wires one from cluster placement; idx mod shards
//     otherwise); callback events belong to shard 0.
//   - The run advances in conservative windows. At each window barrier every
//     shard's worker goroutine concurrently folds its inbox into its heap
//     and reports its head; the kernel takes T = min over shard heads and
//     opens the window [T, T+lookahead], where lookahead is derived from the
//     minimum cross-shard link latency (cluster.Spec.MinLinkLatency). Each
//     worker then concurrently extracts its window-eligible events (at <=
//     windowEnd) in heap order.
//   - The kernel merges the extracted runs into one window heap and fires
//     them strictly in (at, seq) order — the exact order the serial engine
//     pops, so the virtual timeline is byte-identical at any worker count.
//     Events created while the window executes are routed by time: inside
//     the open window they join the merge heap directly (they must fire this
//     window — this is what makes the lookahead bound a batching choice, not
//     a causality gamble); beyond it they are appended to the owning shard's
//     inbox for a later window.
//
// Only heap maintenance (inbox folding, sift-downs, window extraction) runs
// concurrently; event execution itself stays serialized on the kernel
// goroutine, because simulated processes share model state freely. Phases
// are separated by channel barriers, so every shard structure has a single
// owner at any instant and the engine is race-detector-clean. Events,
// seq numbers, sampler boundaries, and watchdog accounting are all
// identical to serial execution — verify.sh enforces byte-identical output
// across -pdes-j 1/2/8 for clean and faulted seeds.

// shard is one partition of the pending-event set.
type shard struct {
	pq      eventq  // private adaptive queue; owned by the worker during phases
	inbox   []event // events routed here while the kernel fires a window
	staged  []event // window extraction output, ascending (at, seq)
	head    event   // minimum pending event after a drain phase
	hasHead bool

	cmd chan shardOp
}

// shardOp is a phase command the kernel broadcasts to shard workers.
type shardOp uint8

const (
	// opDrain folds the shard's inbox into its heap and reports its head.
	opDrain shardOp = iota
	// opExtract pops every event with at <= windowEnd into staged.
	opExtract
	// opQuit retires the worker goroutine.
	opQuit
)

// SetShardWorkers selects the execution mode for subsequent Runs: n > 1
// shards the event queue across n concurrently-maintained partitions;
// n <= 1 (the default) keeps the serial engine, bit-for-bit. The virtual
// timeline is byte-identical either way — sharding only changes host
// wall-clock behavior. Call before Run; n must not change between the Runs
// of one engine once processes have been assigned.
func (e *Engine) SetShardWorkers(n int) {
	if n < 0 {
		panic("sim: negative shard worker count")
	}
	if e.shards != nil && n != len(e.shards) {
		panic("sim: shard worker count changed after sharded structures were built")
	}
	e.shardWorkers = n
}

// ShardWorkers returns the configured shard worker count (0 or 1 = serial).
func (e *Engine) ShardWorkers() int { return e.shardWorkers }

// SetLookahead sets the conservative window width of sharded runs: each
// window fires every pending event in [T, T+d] where T is the earliest
// pending time. Harnesses derive d from the minimum cross-shard link
// latency of the modeled hardware (cluster.Spec.MinLinkLatency). The value
// only batches work per barrier — correctness and the timeline never depend
// on it, because events created inside an open window join it directly.
// Zero (the default) degenerates to one-instant windows.
func (e *Engine) SetLookahead(d Time) {
	if d < 0 {
		panic("sim: negative lookahead")
	}
	e.lookahead = d
}

// SetShardAssign installs the process-to-shard assignment used by sharded
// runs: fn maps a process (index and name, in spawn order) to a shard, taken
// modulo the shard count. The assignment must be deterministic; it affects
// only which worker maintains the process's events, never their order. Nil
// (the default) assigns proc idx to shard idx mod shards. Call before Run.
func (e *Engine) SetShardAssign(fn func(proc int32, name string) int) { e.assign = fn }

// route places ev while sharded routing is active: events inside the open
// fire window join the kernel's merge heap (they must fire this window);
// everything else is appended, unsorted, to the owning shard's inbox — the
// shard's worker folds its inbox into its heap at the next window barrier.
// route runs only on the kernel goroutine (event execution is serialized),
// so inboxes need no locks; the phase barriers order them with the workers.
func (e *Engine) route(ev event) {
	if ev.at <= e.windowEnd {
		e.fireq.push(ev)
		return
	}
	s := &e.shards[e.shardIndex(ev.proc)]
	s.inbox = append(s.inbox, ev)
}

// shardIndex resolves (and caches) the shard owning events of proc idx.
// Callback events (idx < 0) belong to shard 0.
func (e *Engine) shardIndex(idx int32) int32 {
	if idx < 0 {
		return 0
	}
	for int(idx) >= len(e.shardOf) {
		e.shardOf = append(e.shardOf, -1)
	}
	if s := e.shardOf[idx]; s >= 0 {
		return s
	}
	n := len(e.shards)
	s := int(idx) % n
	if e.assign != nil {
		s = e.assign(idx, e.procs[idx].name) % n
		if s < 0 {
			s += n
		}
	}
	e.shardOf[idx] = int32(s)
	return int32(s)
}

// runSharded is the sharded counterpart of runSerial: windows of events are
// extracted concurrently per shard and fired in globally merged (at, seq)
// order through the same step function the serial loop uses.
func (e *Engine) runSharded() {
	if e.shards == nil {
		e.shards = make([]shard, e.shardWorkers)
		e.ack = make(chan struct{})
		// Spread the Prealloc churn-depth hint across the sharded paths so
		// steady-state windows never re-grow shard queues or inboxes.
		hint := e.evHint / e.shardWorkers
		for i := range e.shards {
			s := &e.shards[i]
			s.cmd = make(chan shardOp)
			if hint > 0 {
				s.pq.grow(hint)
				s.inbox = make([]event, 0, hint)
				s.staged = make([]event, 0, hint)
			}
		}
		if e.evHint > 0 {
			e.fireq.grow(e.evHint)
		}
	}
	e.sharded = true
	e.windowEnd = -1
	// Seed the shards with everything scheduled before Run (and anything a
	// previous Run on this engine left pending). Routing order is
	// irrelevant — shards sort — so drain in pop order.
	for e.pq.len() > 0 {
		e.route(e.pq.pop())
	}

	for i := range e.shards {
		go e.shardWorker(&e.shards[i])
	}

	for e.failure == nil {
		// Barrier 1: every shard folds its inbox and reports its head.
		e.broadcast(opDrain)
		lo := -1
		for i := range e.shards {
			s := &e.shards[i]
			if s.hasHead && (lo < 0 || s.head.before(&e.shards[lo].head)) {
				lo = i
			}
		}
		if lo < 0 {
			break // every queue is empty: the run is complete
		}
		e.windowEnd = e.shards[lo].head.at + e.lookahead
		// Barrier 2: every shard extracts its window-eligible events.
		e.broadcast(opExtract)
		for i := range e.shards {
			s := &e.shards[i]
			for _, ev := range s.staged {
				e.fireq.push(ev)
			}
			for j := range s.staged {
				s.staged[j] = event{}
			}
			s.staged = s.staged[:0]
		}
		// Fire the merged window in global (at, seq) order — exactly the
		// order the serial engine pops these events.
		for e.fireq.len() > 0 {
			ev := e.fireq.pop()
			if !e.step(&ev) {
				break
			}
		}
		e.windowEnd = -1
	}

	e.broadcast(opQuit)
	e.collapse()
}

// broadcast issues one phase command to every shard worker and waits for
// all acknowledgements — a full barrier. The channel handshakes also carry
// the happens-before edges that hand shard structures between the kernel
// and the workers, which is what keeps the engine race-free.
func (e *Engine) broadcast(op shardOp) {
	for i := range e.shards {
		e.shards[i].cmd <- op
	}
	for range e.shards {
		<-e.ack
	}
}

// shardWorker maintains one shard's heap across phase commands. It touches
// only its own shard (plus the read-only window bound), so workers never
// contend.
func (e *Engine) shardWorker(s *shard) {
	for op := range s.cmd {
		switch op {
		case opDrain:
			for _, ev := range s.inbox {
				s.pq.push(ev)
			}
			for i := range s.inbox {
				s.inbox[i] = event{}
			}
			s.inbox = s.inbox[:0]
			s.hasHead = s.pq.len() > 0
			if s.hasHead {
				s.head = s.pq.peek()
			}
		case opExtract:
			end := e.windowEnd
			for s.pq.len() > 0 && s.pq.peek().at <= end {
				s.staged = append(s.staged, s.pq.pop())
			}
		case opQuit:
			e.ack <- struct{}{}
			return
		}
		e.ack <- struct{}{}
	}
}

// collapse folds every still-pending sharded event back into the serial
// queue and deactivates sharded routing, so finish() — stranded-process
// unwinding and the post-failure drain — sees exactly the serial engine's
// state. Aborted runs leave events behind; completed runs collapse nothing.
func (e *Engine) collapse() {
	e.sharded = false
	e.windowEnd = -1
	for e.fireq.len() > 0 {
		e.pq.push(e.fireq.pop())
	}
	for i := range e.shards {
		s := &e.shards[i]
		for s.pq.len() > 0 {
			e.pq.push(s.pq.pop())
		}
		for _, ev := range s.inbox {
			e.pq.push(ev)
		}
		for j := range s.inbox {
			s.inbox[j] = event{}
		}
		s.inbox = s.inbox[:0]
		s.hasHead = false
	}
}
