// Modelsweep scales the molecular model from JAC (23.5k atoms) to STMV
// (1.07M atoms) at a fixed frame-generation frequency — the paper's
// Figure 8 shape — and prints how the DYAD/Lustre gap evolves with frame
// size for both production and consumption.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/stats"
)

func main() {
	const pairs, frames, reps = 16, 48, 2

	fmt.Printf("molecular model size scaling, %d pairs, Table II strides (Figure 8 shape)\n", pairs)
	fmt.Printf("%-10s %-11s %-13s %-13s %-9s %-13s %-13s %-9s\n",
		"model", "frame", "DYAD prod", "Lustre prod", "ratio", "DYAD cons", "Lustre cons", "overall")

	for _, model := range repro.Models() {
		var agg [2]repro.Aggregate
		for i, backend := range []repro.Backend{repro.DYAD, repro.Lustre} {
			results, err := repro.Repeat(repro.Config{
				Backend:       backend,
				Model:         model,
				Pairs:         pairs,
				Frames:        frames,
				Seed:          23,
				ComputeJitter: 0.004,
				LustreNoise:   backend == repro.Lustre,
			}, reps)
			if err != nil {
				log.Fatal(err)
			}
			agg[i] = repro.Aggregated(results)
		}
		fmt.Printf("%-10s %-11s %-13s %-13s %-9s %-13s %-13s %-9s\n",
			model.Name,
			fmt.Sprintf("%.1fMiB", float64(model.FrameBytes())/(1<<20)),
			stats.FormatSeconds(agg[0].ProdMovement.Mean),
			stats.FormatSeconds(agg[1].ProdMovement.Mean),
			stats.FormatRatio(agg[1].ProdMovement.Mean/agg[0].ProdMovement.Mean),
			stats.FormatSeconds(agg[0].ConsTotalMean()),
			stats.FormatSeconds(agg[1].ConsTotalMean()),
			stats.FormatRatio(agg[1].ConsTotalMean()/agg[0].ConsTotalMean()))
	}
	fmt.Println("\nDYAD's ~7x movement advantage holds from 0.6 MiB to 28.5 MiB frames — node-local")
	fmt.Println("storage and RDMA-style transfer keep pace while every Lustre byte crosses shared servers (Finding 4).")
}
