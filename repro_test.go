package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeRunAndAggregate(t *testing.T) {
	jac, err := ModelByName("JAC")
	if err != nil {
		t.Fatal(err)
	}
	results, err := Repeat(Config{Backend: DYAD, Model: jac, Pairs: 2, Frames: 8, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	agg := Aggregated(results)
	if agg.Reps != 2 || agg.ConsTotalMean() <= 0 {
		t.Fatalf("aggregate %+v", agg)
	}
}

func TestFacadeModels(t *testing.T) {
	if len(Models()) != 4 {
		t.Fatalf("models %d", len(Models()))
	}
	if _, err := ModelByName("STMV"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseBackend("Lustre"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCritPath(t *testing.T) {
	jac, err := ModelByName("JAC")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Backend: DYAD, Model: jac, Pairs: 2, Frames: 8, Seed: 1, CritPath: true, SingleNode: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crit == nil || res.Crit.Path.Makespan != res.Makespan {
		t.Fatalf("Crit summary missing or inconsistent: %+v", res.Crit)
	}
	if len(res.Crit.Frames) != cfg.Pairs*cfg.Frames {
		t.Fatalf("lineages %d, want %d", len(res.Crit.Frames), cfg.Pairs*cfg.Frames)
	}

	// Size-only sweeps (RealFrames=false above) degrade gracefully: full
	// provenance, no payload synthesis, no panic. Diff the DYAD path
	// against an XFS run of the same workload through the facade types.
	xcfg := cfg
	xcfg.Backend = XFS
	xres, err := Run(xcfg)
	if err != nil {
		t.Fatal(err)
	}
	d := DiffCritPaths("dyad", res.Crit.Path, "xfs", xres.Crit.Path)
	if d.Gap <= 0 {
		t.Fatalf("XFS should be slower: gap %v", d.Gap)
	}
	if pct := d.AttributionPct(); pct < 95 {
		t.Fatalf("attribution %.1f%%, want >= 95%%", pct)
	}

	var wf bytes.Buffer
	if err := WriteWaterfallCSV(&wf, "dyad", res.Crit.Frames); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(wf.String(), "run,frame,hop,proc,start_us,dur_us,bytes\n") {
		t.Fatalf("waterfall header: %q", wf.String()[:min(len(wf.String()), 60)])
	}

	// CritPath+TraceStream is rejected up front, not at run time.
	bad := cfg
	bad.TraceStream = NewChromeTraceStream(&bytes.Buffer{})
	if err := bad.Validate(); err == nil {
		t.Fatal("CritPath+TraceStream validated, want rejection")
	}
}

func TestFacadeExplainWorkloads(t *testing.T) {
	ids := map[string]bool{}
	for _, w := range ExplainWorkloads() {
		ids[w.ID] = true
	}
	for _, want := range []string{"fig5", "fig6"} {
		if !ids[want] {
			t.Errorf("explain workload %s missing", want)
		}
	}
	rep, err := ExplainBackends("fig5", ExperimentOptions{Quick: true, Reps: 1, Frames: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderReport(&buf, rep)
	for _, want := range []string{"explain:fig5", "attribution:", "gap_share"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("explain report missing %q", want)
		}
	}
	if _, err := ExplainBackends("nope", ExperimentOptions{}); err == nil {
		t.Fatal("unknown explain target accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestFacadeExperiments(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"} {
		if !ids[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
	rep, err := RunExperiment("table1", ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderReport(&buf, rep)
	if !strings.Contains(buf.String(), "JAC") {
		t.Fatal("rendered table1 missing JAC")
	}
	if _, err := RunExperiment("nope", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
