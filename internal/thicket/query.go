package thicket

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Query runs a call-path query against the ensemble and returns matching
// nodes. The language is a small Hatchet-style path grammar:
//
//	/a/b          — node b whose parent is a, rooted at the tree top
//	//b           — node b at any depth
//	//a/*/c       — c exactly two levels under any a, with any name between
//	//x[mean>1ms] — metric predicate: metric in {mean, std, max, min,
//	                visits}, operator in {>, >=, <, <=, ==}, durations
//	                accept ns/us/µs/ms/s suffixes
//
// Every segment may carry a predicate. A leading // makes the first
// segment match at any depth; deeper segments are parent-child steps.
func (e *Ensemble) Query(q string) ([]*Node, error) {
	segs, anywhere, err := parseQuery(q)
	if err != nil {
		return nil, err
	}
	var out []*Node
	seen := make(map[*Node]bool)
	var starts []*Node
	if anywhere {
		e.root.Walk(func(n *Node) {
			if n != e.root && segs[0].matches(n) {
				starts = append(starts, n)
			}
		})
	} else {
		for _, c := range e.root.Children {
			if segs[0].matches(c) {
				starts = append(starts, c)
			}
		}
	}
	for _, s := range starts {
		collectMatches(s, segs[1:], seen, &out)
	}
	return out, nil
}

// MustQuery is Query that panics on a malformed query (for tooling where
// the query is a literal).
func (e *Ensemble) MustQuery(q string) []*Node {
	out, err := e.Query(q)
	if err != nil {
		panic(err)
	}
	return out
}

func collectMatches(n *Node, rest []segment, seen map[*Node]bool, out *[]*Node) {
	if len(rest) == 0 {
		if !seen[n] {
			seen[n] = true
			*out = append(*out, n)
		}
		return
	}
	for _, c := range n.Children {
		if rest[0].matches(c) {
			collectMatches(c, rest[1:], seen, out)
		}
	}
}

// segment is one path step with an optional predicate.
type segment struct {
	name string // "*" matches any
	pred *predicate
}

type predicate struct {
	metric string
	op     string
	value  float64
}

func (s segment) matches(n *Node) bool {
	if s.name != "*" && s.name != n.Name {
		return false
	}
	if s.pred == nil {
		return true
	}
	var v float64
	switch s.pred.metric {
	case "mean":
		v = n.Total.Mean
	case "std":
		v = n.Total.Std
	case "max":
		v = n.Total.Max
	case "min":
		v = n.Total.Min
	case "visits":
		v = n.Visits.Mean
	default:
		return false
	}
	switch s.pred.op {
	case ">":
		return v > s.pred.value
	case ">=":
		return v >= s.pred.value
	case "<":
		return v < s.pred.value
	case "<=":
		return v <= s.pred.value
	case "==":
		return v == s.pred.value
	}
	return false
}

func parseQuery(q string) (segs []segment, anywhere bool, err error) {
	q = strings.TrimSpace(q)
	if q == "" {
		return nil, false, fmt.Errorf("thicket: empty query")
	}
	if strings.HasPrefix(q, "//") {
		anywhere = true
		q = q[2:]
	} else if strings.HasPrefix(q, "/") {
		q = q[1:]
	} else {
		return nil, false, fmt.Errorf("thicket: query must start with / or //")
	}
	if q == "" {
		return nil, false, fmt.Errorf("thicket: query has no segments")
	}
	for _, part := range strings.Split(q, "/") {
		if part == "" {
			return nil, false, fmt.Errorf("thicket: empty segment in %q", q)
		}
		seg, err := parseSegment(part)
		if err != nil {
			return nil, false, err
		}
		segs = append(segs, seg)
	}
	return segs, anywhere, nil
}

func parseSegment(s string) (segment, error) {
	name := s
	var pred *predicate
	if i := strings.IndexByte(s, '['); i >= 0 {
		if !strings.HasSuffix(s, "]") {
			return segment{}, fmt.Errorf("thicket: unterminated predicate in %q", s)
		}
		name = s[:i]
		p, err := parsePredicate(s[i+1 : len(s)-1])
		if err != nil {
			return segment{}, err
		}
		pred = p
	}
	if name == "" {
		return segment{}, fmt.Errorf("thicket: segment %q has no name", s)
	}
	return segment{name: name, pred: pred}, nil
}

func parsePredicate(s string) (*predicate, error) {
	for _, op := range []string{">=", "<=", "==", ">", "<"} {
		if i := strings.Index(s, op); i > 0 {
			metric := strings.TrimSpace(s[:i])
			valStr := strings.TrimSpace(s[i+len(op):])
			val, err := parseMetricValue(metric, valStr)
			if err != nil {
				return nil, err
			}
			switch metric {
			case "mean", "std", "max", "min", "visits":
			default:
				return nil, fmt.Errorf("thicket: unknown metric %q", metric)
			}
			return &predicate{metric: metric, op: op, value: val}, nil
		}
	}
	return nil, fmt.Errorf("thicket: cannot parse predicate %q", s)
}

// parseMetricValue parses either a plain float (visits) or a duration with
// unit suffix, returned in seconds (time metrics).
func parseMetricValue(metric, s string) (float64, error) {
	if metric == "visits" {
		return strconv.ParseFloat(s, 64)
	}
	if d, err := time.ParseDuration(s); err == nil {
		return d.Seconds(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("thicket: bad value %q: %w", s, err)
	}
	return v, nil
}
