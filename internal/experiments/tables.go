package experiments

import (
	"fmt"

	"repro/internal/models"
)

// Table1 regenerates Table I: the molecular model characteristics.
func Table1(o Options) (*Report, error) {
	r := &Report{
		ID:      "table1",
		Title:   "Targeted molecular models",
		Columns: []string{"Name", "Num Atoms", "Frame size", "Steps/second"},
	}
	for _, m := range models.Registry() {
		r.Rows = append(r.Rows, []string{
			m.Name,
			fmt.Sprintf("%d", m.Atoms),
			humanSize(m.FrameBytes()),
			fmt.Sprintf("%.2f", m.StepsPerSecond),
		})
	}
	r.Notes = append(r.Notes,
		"frame sizes derive from the 28-byte/atom wire format; paper values: 644.21 KiB, 2.46 MiB, 8.75 MiB, 28.48 MiB")
	return r, nil
}

// Table2 regenerates Table II: strides equalizing generation frequency.
func Table2(o Options) (*Report, error) {
	r := &Report{
		ID:      "table2",
		Title:   "Stride for each molecular model",
		Columns: []string{"Name", "Steps/second", "ms/step", "Stride", "Frequency (s)"},
	}
	for _, m := range models.Registry() {
		r.Rows = append(r.Rows, []string{
			m.Name,
			fmt.Sprintf("%.2f", m.StepsPerSecond),
			fmt.Sprintf("%.2f", m.MsPerStep()),
			fmt.Sprintf("%d", m.Stride),
			fmt.Sprintf("%.2f", m.DefaultFrequency().Seconds()),
		})
	}
	r.Notes = append(r.Notes, "paper frequency column: 0.82 s for every model")
	return r, nil
}

// humanSize renders bytes in KiB/MiB as the paper does.
func humanSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
