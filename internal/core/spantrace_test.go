package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

// tracedBatch is a small mixed-backend batch with span recording on: the
// trace contract tests and the Chrome golden fixture all run it.
func tracedBatch() []Config {
	cfgs := mixedBatch()[:3] // DYAD, XFS, Lustre — one of each
	for i := range cfgs {
		cfgs[i].RecordSpans = true
	}
	return cfgs
}

// chromeOf runs the batch and serializes every traced result.
func chromeOf(t *testing.T, cfgs []Config, workers int) []byte {
	t.Helper()
	results, err := RunMany(cfgs, workers)
	if err != nil {
		t.Fatal(err)
	}
	var runs []trace.Run
	for _, res := range results {
		if len(res.Spans) == 0 {
			t.Fatalf("traced run %s recorded no spans", res.Cfg.Label())
		}
		runs = append(runs, trace.Run{Label: res.Cfg.Label(), Spans: res.Spans})
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, runs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Recording spans must not move a single measurement: the tracer observes
// the virtual timeline, it never participates in it.
func TestTracedRunMatchesUntraced(t *testing.T) {
	plain := mixedBatch()
	traced := make([]Config, len(plain))
	copy(traced, plain)
	for i := range traced {
		traced[i].RecordSpans = true
	}
	a, err := RunMany(plain, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMany(traced, 4)
	if err != nil {
		t.Fatal(err)
	}
	if canonical(a) != canonical(b) {
		t.Fatalf("tracing changed measurements:\n--- untraced ---\n%s--- traced ---\n%s", canonical(a), canonical(b))
	}
	for i, res := range a {
		if res.Spans != nil || res.SpanStats != nil {
			t.Fatalf("untraced run %d carries spans", i)
		}
		if len(b[i].Spans) == 0 || len(b[i].SpanStats) == 0 {
			t.Fatalf("traced run %d carries no spans/stats", i)
		}
	}
}

// The span stream — and therefore the serialized Chrome trace — must be
// byte-identical for any worker count.
func TestTracedParallelMatchesSerial(t *testing.T) {
	serial := chromeOf(t, tracedBatch(), 1)
	parallel := chromeOf(t, tracedBatch(), 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("traced -j1 and -j8 produced different Chrome traces")
	}
}

// Same contract under fault injection: recovery spans (timeouts, backoff,
// failover, degraded reads) come from the same deterministic plans as the
// recovery metrics, so a faulted trace is worker-count-independent too.
func TestFaultedTracedParallelMatchesSerial(t *testing.T) {
	faulted := faultedBatch()
	for i := range faulted {
		faulted[i].RecordSpans = true
	}
	serial := chromeOf(t, faulted, 1)
	parallel := chromeOf(t, faulted, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("faulted traced -j1 and -j8 produced different Chrome traces")
	}
	// The traced faulted runs must actually contain recovery spans, or the
	// determinism check guards nothing interesting.
	results, err := RunMany(faulted, 4)
	if err != nil {
		t.Fatal(err)
	}
	recovery := 0
	for _, res := range results {
		for _, s := range res.Spans {
			if s.Class == trace.ClassRecovery {
				recovery++
			}
		}
	}
	if recovery == 0 {
		t.Fatal("faulted traced batch recorded no recovery spans")
	}
}

// TestChromeTraceGolden locks the serialized Chrome trace of a small mixed
// batch against a committed fixture: span emission points, classes, and the
// serialization format are observable output, and drift must be deliberate.
// Regenerate with: go test ./internal/core -run ChromeTraceGolden -update
func TestChromeTraceGolden(t *testing.T) {
	got := chromeOf(t, tracedBatch(), 4)
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Chrome trace drifted from golden fixture (%d vs %d bytes); rerun with -update if deliberate", len(got), len(want))
	}
}

// Spans must cover the component layers the tentpole instruments, and the
// derived OpStats must be consistent with the raw stream.
func TestSpanCoverageAndStats(t *testing.T) {
	results, err := RunMany(tracedBatch(), 4)
	if err != nil {
		t.Fatal(err)
	}
	components := map[string]bool{}
	for _, res := range results {
		for _, s := range res.Spans {
			components[s.Component] = true
		}
		var spanCount int64
		for _, st := range res.SpanStats {
			spanCount += st.Count
		}
		if spanCount != int64(len(res.Spans)) {
			t.Fatalf("%s: SpanStats cover %d spans, stream has %d", res.Cfg.Label(), spanCount, len(res.Spans))
		}
	}
	for _, want := range []string{"workflow", "ssd", "net", "kvs", "xfs", "lustre"} {
		if !components[want] {
			t.Fatalf("no spans from component %q in mixed batch (have %v)", want, components)
		}
	}
}
