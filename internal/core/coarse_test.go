package core

import (
	"testing"
)

// ForceCoarseSync layers the traditional serialized coupling over DYAD
// transport; it must blow up consumer idle to traditional levels while
// leaving DYAD's movement costs unchanged.
func TestForceCoarseSyncIsolatesCoupling(t *testing.T) {
	m := tinyModel()
	base := Config{Backend: DYAD, Model: m, Frames: 16, Pairs: 2, Seed: 3}
	free, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	coarse := base
	coarse.ForceCoarseSync = true
	gated, err := Run(coarse)
	if err != nil {
		t.Fatal(err)
	}
	if gated.Consumer.Idle < free.Consumer.Idle*3 {
		t.Fatalf("coarse-sync idle %v not ≫ pipelined idle %v", gated.Consumer.Idle, free.Consumer.Idle)
	}
	// Transport unchanged: movement within 2x (some queueing shift is fine).
	if gated.Consumer.Movement > free.Consumer.Movement*2 {
		t.Fatalf("coarse-sync changed movement: %v vs %v", gated.Consumer.Movement, free.Consumer.Movement)
	}
	if gated.FramesRead != free.FramesRead {
		t.Fatal("frame conservation broken under coarse sync")
	}
}

// Ablation params must degrade, never improve, DYAD.
func TestDYADOverrideAblations(t *testing.T) {
	m := tinyModel()
	run := func(mut func(*Config)) *Result {
		cfg := Config{Backend: DYAD, Model: m, Frames: 16, Pairs: 2, Seed: 5}
		if mut != nil {
			mut(&cfg)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(nil)

	noBB := run(func(c *Config) {
		p := defaultDyadParams()
		p.NoBurstBuffer = true
		c.DYADOverride = &p
	})
	if noBB.Consumer.Movement <= full.Consumer.Movement {
		t.Fatalf("disabling the burst buffer should slow consumer movement: %v vs %v",
			noBB.Consumer.Movement, full.Consumer.Movement)
	}

	noDirect := run(func(c *Config) {
		p := defaultDyadParams()
		p.NoDirectTransfer = true
		c.DYADOverride = &p
	})
	if noDirect.Consumer.Movement <= full.Consumer.Movement {
		t.Fatalf("relaying transfers should slow consumer movement: %v vs %v",
			noDirect.Consumer.Movement, full.Consumer.Movement)
	}

	noSync := run(func(c *Config) {
		p := defaultDyadParams()
		p.NoAdaptiveSync = true
		c.DYADOverride = &p
	})
	if noSync.Consumer.Idle <= full.Consumer.Idle {
		t.Fatalf("always-watch sync should raise idle: %v vs %v",
			noSync.Consumer.Idle, full.Consumer.Idle)
	}
}
