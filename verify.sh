#!/bin/sh
# verify.sh — the repo's full verification gate.
#
# Runs the tier-1 gate (build + tests) plus static vetting and the
# race-enabled suite that locks in the parallel runner's no-shared-state
# guarantee (see DESIGN.md §3b). Referenced from ROADMAP.md.
set -eu

cd "$(dirname "$0")"

echo "== tier-1: go build ./... =="
go build ./...

echo "== tier-1: go test ./... =="
go test ./...

echo "== go vet ./... =="
go vet ./...

echo "== go test -race ./... =="
go test -race ./...

echo "== fault-matrix smoke: experiments faultsweep -quick (race) =="
# The injected-failure matrix must complete — every run either recovers or
# dies with a wrapped sentinel; no panics, hangs, or data races.
go run -race ./cmd/experiments -quick -q faultsweep

echo "== bench smoke: go test -run=NONE -bench=. -benchtime=1x ./... =="
# One iteration of every benchmark: catches benchmarks that panic or hang
# without paying measurement time. Full measured runs live in bench.sh.
go test -run=NONE -bench=. -benchtime=1x ./...

echo "verify.sh: all gates passed"
