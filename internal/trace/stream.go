package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// ChromeStream is the incremental Chrome trace-event writer: the streaming
// counterpart of WriteChrome for runs too large to retain their span vector
// in memory. The document is written front to back — header at creation,
// one process block per StartRun, spans as they are emitted, footer at
// Close — so writer memory stays O(buffer), independent of run length.
//
// WriteChrome is itself built on ChromeStream, so the streamed bytes of a
// run are identical to the buffered export of the same span sequence by
// construction — the property verify.sh's streaming gate checks end to end.
//
// A stream serializes one run at a time: StartRun opens the next Chrome
// process and returns a streaming Recorder bound to it; the caller must
// finish emitting through that recorder (and call EndRun) before starting
// the next run. Concurrently executing traced runs must not share a stream.
type ChromeStream struct {
	bw    *bufio.Writer
	first bool // no event line emitted yet (comma placement)
	runs  int  // runs started; pid = run index + 1, as in WriteChrome
}

// NewChromeStream starts a Chrome trace-event JSON document on w.
func NewChromeStream(w io.Writer) *ChromeStream {
	cs := &ChromeStream{bw: bufio.NewWriter(w), first: true}
	cs.bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	return cs
}

// emit writes one event line with the document's comma discipline.
func (cs *ChromeStream) emit(line string) {
	if !cs.first {
		cs.bw.WriteString(",\n")
	}
	cs.first = false
	cs.bw.WriteString(line)
}

// StartRun opens the next run as a Chrome process named by label and
// returns a streaming recorder for it: every span emitted through the
// recorder is serialized immediately instead of retained, and per-operation
// statistics (Recorder.Stats) are folded incrementally.
func (cs *ChromeStream) StartRun(label string) *Recorder {
	cs.runs++
	cs.emit(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":%s}}",
		cs.runs, quote(label)))
	return &Recorder{stream: cs, pid: cs.runs, tids: make(map[string]int)}
}

// span serializes one span of rec's run, emitting the proc's thread-name
// metadata on first appearance — the exact event sequence WriteChrome
// produces for a buffered run.
func (cs *ChromeStream) span(rec *Recorder, s Span) {
	tid, ok := rec.tids[s.Proc]
	if !ok {
		tid = len(rec.tids) + 1
		rec.tids[s.Proc] = tid
		cs.emit(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}",
			rec.pid, tid, quote(s.Proc)))
	}
	args := ""
	if s.Bytes != 0 {
		args = fmt.Sprintf(",\"args\":{\"bytes\":%d}", s.Bytes)
	}
	if s.Attr != "" {
		if args == "" {
			args = fmt.Sprintf(",\"args\":{\"attr\":%s}", quote(s.Attr))
		} else {
			args = fmt.Sprintf(",\"args\":{\"bytes\":%d,\"attr\":%s}", s.Bytes, quote(s.Attr))
		}
	}
	if s.Dur == 0 {
		cs.emit(fmt.Sprintf("{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"s\":\"t\",\"name\":%s,\"cat\":%s%s}",
			rec.pid, tid, us(s.Start), quote(s.Name), quote(s.Component+","+s.Class.String()), args))
		return
	}
	cs.emit(fmt.Sprintf("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":%s,\"cat\":%s%s}",
		rec.pid, tid, us(s.Start), us(s.Dur), quote(s.Name), quote(s.Component+","+s.Class.String()), args))
}

// flow serializes one flow event of rec's run, reusing the run's thread
// table (a flow anchored to a proc that never emitted a span still gets
// its thread-name metadata first, exactly like span does).
func (cs *ChromeStream) flow(rec *Recorder, f Flow) {
	tid, ok := rec.tids[f.Proc]
	if !ok {
		tid = len(rec.tids) + 1
		rec.tids[f.Proc] = tid
		cs.emit(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}",
			rec.pid, tid, quote(f.Proc)))
	}
	if f.Start {
		cs.emit(fmt.Sprintf("{\"ph\":\"s\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"id\":%d,\"name\":%s,\"cat\":\"provenance\"}",
			rec.pid, tid, us(f.At), f.ID, quote(f.Name)))
		return
	}
	cs.emit(fmt.Sprintf("{\"ph\":\"f\",\"bp\":\"e\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"id\":%d,\"name\":%s,\"cat\":\"provenance\"}",
		rec.pid, tid, us(f.At), f.ID, quote(f.Name)))
}

// EndRun closes rec's run, emitting its sampled counter tracks (nil for
// none). Runs aborted before EndRun leave a valid document — their partial
// span stream shows the timeline up to the failure.
func (cs *ChromeStream) EndRun(rec *Recorder, counters []Counter) {
	for _, c := range counters {
		for i, t := range c.Times {
			cs.emit(fmt.Sprintf("{\"ph\":\"C\",\"pid\":%d,\"tid\":0,\"ts\":%s,\"name\":%s,\"args\":{\"value\":%s}}",
				rec.pid, us(t), quote(c.Name), strconv.FormatFloat(c.Values[i], 'g', -1, 64)))
		}
	}
}

// Close terminates the JSON document and flushes the buffer. The stream
// must not be used afterwards.
func (cs *ChromeStream) Close() error {
	cs.bw.WriteString("\n]}\n")
	return cs.bw.Flush()
}
