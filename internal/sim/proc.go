package sim

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// Proc is a simulated process: a goroutine that runs user code and yields to
// the kernel whenever it sleeps or blocks. Exactly one Proc executes at a
// time, so user code never needs locks for simulation state.
type Proc struct {
	e       *Engine
	name    string
	idx     int32 // index in Engine.procs; identifies the proc in events
	resume  chan struct{}
	done    bool
	waiting bool // blocked on a signal/resource (not a timed event)
	aborted bool
	rng     RNG
}

// procAbort is panicked inside a stranded process to unwind it at the end
// of a run. It is recovered by the spawn wrapper and never escapes.
type procAbort struct{}

// Spawn creates a process named name running fn, starting at the current
// virtual time. It may be called before Run or from within another process.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		e:      e,
		name:   name,
		idx:    int32(len(e.procs)),
		resume: make(chan struct{}),
		rng:    NewRNG(e.seed ^ hash64(name) ^ uint64(len(e.procs)+1)*0x9e3779b97f4a7c15),
	}
	e.procs = append(e.procs, p)
	e.live++
	go func() {
		<-p.resume // wait for first delivery
		defer func() {
			if r := recover(); r != nil {
				if _, isAbort := r.(procAbort); !isAbort && e.failure == nil {
					if err, ok := r.(error); ok {
						// Processes abort by panicking with an error value;
						// keep the chain so callers can errors.Is against
						// the wrapped sentinel (faults.ErrDeviceFailed, ...).
						e.failure = fmt.Errorf("sim: process %q failed: %w", p.name, err)
					} else {
						e.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
					}
				}
			}
			if cp := e.cp; cp != nil && !p.aborted {
				cp.EndProc(p.idx, e.now)
			}
			p.done = true
			e.live--
			e.kernelCh <- struct{}{} // final baton back to the kernel
		}()
		if !p.aborted { // aborted before first delivery: never run user code
			fn(p)
		}
	}()
	if cp := e.cp; cp != nil {
		cp.StartProc(p.idx, name, e.curProc, e.now)
	}
	e.scheduleDeliver(e.now, p.idx)
	return p
}

// deliver hands the baton to p and blocks until p yields it back (by
// sleeping, blocking, or finishing).
func (e *Engine) deliver(p *Proc) {
	if p.done {
		panic(fmt.Sprintf("sim: wake of finished process %q", p.name))
	}
	p.waiting = false
	// curProc lets Wake and Spawn hooks attribute releases to the proc
	// that caused them; the kernel goroutine is parked in kernelCh while
	// p runs, so the field is stable for p's whole turn.
	e.curProc = p.idx
	p.resume <- struct{}{}
	<-e.kernelCh
	e.curProc = noProc
}

// yield hands the baton back to the kernel and blocks until re-delivered.
func (p *Proc) yield() {
	p.e.kernelCh <- struct{}{}
	<-p.resume
	if p.aborted {
		panic(procAbort{})
	}
}

// abort unwinds a stranded (blocked) process so its goroutine exits.
// Called by the kernel only, for procs with waiting==true.
func (p *Proc) abort() {
	p.aborted = true
	p.e.curProc = p.idx
	p.resume <- struct{}{}
	<-p.e.kernelCh
	p.e.curProc = noProc
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Rand returns the process's deterministic random stream.
func (p *Proc) Rand() *RNG { return &p.rng }

// Rec returns the engine's span recorder, nil when span tracing is off.
// Instrumentation sites call p.Rec().Emit(...) unconditionally (Emit is
// nil-safe) or guard extra work with p.Rec().Enabled().
func (p *Proc) Rec() *trace.Recorder { return p.e.rec }

// Sleep advances the process by d of virtual time. Negative d panics;
// zero d still yields (other events at the same instant run first).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: process %q sleeping negative duration %v", p.name, d))
	}
	p.e.scheduleDeliver(p.e.now+d, p.idx)
	p.yield()
}

// Block parks the calling process until another process calls Wake on it.
// It is the building block for external synchronization primitives
// (signals, resources, lock managers, key-value watches). A process that is
// never woken is reported as stranded by Run.
func (p *Proc) Block() {
	if cp := p.e.cp; cp != nil {
		cp.BeginWait(p.idx, p.e.now)
	}
	p.waiting = true
	p.yield()
	if cp := p.e.cp; cp != nil {
		cp.EndWait(p.idx, p.e.now)
	}
}

// Wake schedules delivery of a process parked in Block at the current
// virtual time. Calling Wake on a process that is not blocked (or waking it
// twice) is a programming error and will panic inside the kernel.
func (p *Proc) Wake() {
	if cp := p.e.cp; cp != nil {
		cp.Release(p.e.curProc, p.idx, p.e.now)
	}
	p.e.scheduleDeliver(p.e.now, p.idx)
}

// Tracef emits a trace line through the engine's tracer, if one is set.
func (p *Proc) Tracef(format string, args ...any) {
	if p.e.tracer != nil {
		p.e.tracer(p.e.now, p.name, fmt.Sprintf(format, args...))
	}
}

// hash64 is FNV-1a, used to derive per-process RNG streams from names.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
