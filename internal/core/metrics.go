package core

import (
	"time"

	"repro/internal/metrics"
)

// registerMetrics wires the run's metrics registry: workflow-level series
// first (frame rates, per-role idle fraction — the paper's pathology
// signal), then the cluster hardware, then the active backend. Registration
// order fixes the CSV column order and dashboard row order, so it must stay
// deterministic — no map iteration, backends in the switch order of newRig.
func (r *rig) registerMetrics() {
	reg := r.reg

	reg.Rate("core/frames_produced", func() float64 { return float64(r.framesProduced) }).OnDashboard()
	reg.Rate("core/frames_consumed", func() float64 { return float64(r.framesRead) }).OnDashboard()
	// Idle fractions normalize the per-role wait integrals over the whole
	// ensemble: 1 means every producer (consumer) spent the full interval
	// blocked on synchronization. DYAD consumers idle in the metadata fetch
	// (System.FetchIdleNanos); gated backends idle in explicit_sync.
	pairs := r.cfg.Pairs
	reg.Util("core/producer_idle_frac", pairs, func() float64 {
		return float64(r.prodIdleNanos)
	}).OnDashboard()
	dy := r.dy
	reg.Util("core/consumer_idle_frac", pairs, func() float64 {
		idle := r.consIdleNanos
		if dy != nil {
			idle += dy.FetchIdleNanos
		}
		return float64(idle)
	}).OnDashboard()

	r.cl.RegisterMetrics(reg)

	switch {
	case r.dy != nil:
		r.dy.RegisterMetrics(reg)
	case r.xf != nil:
		r.xf.RegisterMetrics(reg, "xfs")
	}
	// Lustre serves as primary backend or as DYAD's fallback mirror; either
	// way its servers are sampled. (DYAD staging filesystems are created
	// lazily inside running processes and are not registered; their device
	// traffic is visible through the cluster SSD series.)
	if r.lfs != nil {
		r.lfs.RegisterMetrics(reg)
	}

	// Finite burst-buffer capacity series, last so every capacity-off CSV
	// keeps its exact pre-capacity column set. The dashboard trio shows the
	// collapse onset: occupancy saturates, evictions start, producers stall.
	if capMet := r.capMet; capMet != nil {
		dy := r.dy
		xf := r.xf
		reg.Gauge("capacity/staging_occupancy_mb", func() float64 {
			if xf != nil {
				return float64(xf.Capacity().Used()) / 1e6
			}
			var used int64
			for id := 0; id < r.cfg.ComputeNodes(); id++ {
				used += dy.StagingOccupancy(id)
			}
			return float64(used) / 1e6
		}).OnDashboard()
		reg.Counter("capacity/evictions", func() float64 {
			return float64(capMet.Evictions + capMet.CacheEvictions)
		}).OnDashboard()
		reg.Counter("capacity/spilled_mb", func() float64 {
			return float64(capMet.SpilledBytes) / 1e6
		}).OnDashboard()
		reg.Util("capacity/backpressure_frac", pairs, func() float64 {
			return float64(capMet.StallNanos)
		}).OnDashboard()
		reg.Counter("capacity/dropped_frames", func() float64 { return float64(capMet.DroppedFrames) })
		reg.Counter("capacity/cache_bypasses", func() float64 { return float64(capMet.CacheBypasses) })
		if dy != nil {
			// Per-node staging occupancy (CSV only): where the pressure lands.
			// Compute nodes only — Lustre server nodes never host brokers.
			for id := 0; id < r.cfg.ComputeNodes(); id++ {
				id := id
				reg.Gauge("capacity/"+r.cl.Node(id).Name()+"_staging_mb", func() float64 {
					return float64(dy.StagingOccupancy(id)) / 1e6
				})
			}
		}
	}

	// Provenance series, registered last so every critpath-off CSV keeps its
	// exact pre-PR column set. Histograms observe through the recorder's
	// callbacks; the hop list is fixed so the column order never depends on
	// which hops a particular run happens to record.
	if cp := r.cp; cp != nil {
		age := reg.Histogram("critpath/frame_age")
		hopLat := make(map[string]*metrics.Histogram, len(critHopNames))
		for _, name := range critHopNames {
			hopLat[name] = reg.Histogram("critpath/hop_" + name + "_lat")
		}
		cp.OnDep = func(kind string, slack time.Duration) { age.Observe(slack) }
		cp.OnHop = func(hop string, d time.Duration) { hopLat[hop].Observe(d) }
	}
}

// critHopNames is the closed set of provenance hop names the backends
// record, in registration order for the metrics CSV header.
var critHopNames = []string{
	"write", "kvs_commit", "sync_wait", "transfer",
	"cache_store", "read", "evict", "spill", "consume",
}
