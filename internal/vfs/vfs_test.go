package vfs

import (
	"testing"
	"testing/quick"
)

func TestCleanPaths(t *testing.T) {
	cases := map[string]string{
		"a/b":        "/a/b",
		"/a/b":       "/a/b",
		"//a///b/":   "/a/b",
		"./a/./b":    "/a/b",
		"":           "/",
		"/":          "/",
		"a":          "/a",
		"/dyad/f.pb": "/dyad/f.pb",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTreePutGetRemove(t *testing.T) {
	tr := NewTree()
	if _, ok := tr.Get("/x"); ok {
		t.Fatal("empty tree should miss")
	}
	tr.Put("/a/b", BytesPayload([]byte("hello")))
	got, ok := tr.Get("a/b") // equivalent path spelling
	if !ok || string(got.Bytes()) != "hello" {
		t.Fatalf("Get = %q, %v", got.Bytes(), ok)
	}
	if sz, ok := tr.Size("/a/b"); !ok || sz != 5 {
		t.Fatalf("Size = %d, %v", sz, ok)
	}
	tr.Put("/a/b", BytesPayload([]byte("replaced")))
	got, _ = tr.Get("/a/b")
	if string(got.Bytes()) != "replaced" {
		t.Fatalf("replace failed: %q", got.Bytes())
	}
	if !tr.Remove("/a/b") {
		t.Fatal("remove existing returned false")
	}
	if tr.Remove("/a/b") {
		t.Fatal("remove missing returned true")
	}
}

func TestTreeListAndTotals(t *testing.T) {
	tr := NewTree()
	tr.Put("/d/1", SizeOnly(10))
	tr.Put("/d/2", BytesPayload(make([]byte, 20)))
	tr.Put("/e/3", SizeOnly(30))
	got := tr.List("/d")
	if len(got) != 2 || got[0] != "/d/1" || got[1] != "/d/2" {
		t.Fatalf("List(/d) = %v", got)
	}
	if tr.TotalBytes() != 60 {
		t.Fatalf("TotalBytes = %d", tr.TotalBytes())
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

// Property: whatever bytes are Put are Get back unchanged (same backing
// buffer — zero-copy), and Size agrees.
func TestTreeRoundTripProperty(t *testing.T) {
	f := func(path string, data []byte) bool {
		tr := NewTree()
		tr.Put(path, BytesPayload(data))
		got, ok := tr.Get(path)
		if !ok || got.Size() != int64(len(data)) {
			return false
		}
		b := got.Bytes()
		for i := range data {
			if b[i] != data[i] {
				return false
			}
		}
		if len(data) > 0 && &b[0] != &data[0] {
			return false // payload must alias, not copy
		}
		sz, ok := tr.Size(path)
		return ok && sz == int64(len(data))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Clean is idempotent.
func TestCleanIdempotentProperty(t *testing.T) {
	f := func(p string) bool {
		c := Clean(p)
		return Clean(c) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
