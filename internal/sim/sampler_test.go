package sim

import (
	"errors"
	"testing"
	"time"
)

// TestSamplerBoundaries checks the sampler contract: one callback per
// elapsed interval boundary, in order, up to and including the last event's
// time, with the engine clock parked on the boundary during the callback.
func TestSamplerBoundaries(t *testing.T) {
	e := NewEngine(1)
	var at []Time
	e.SetSampler(100*time.Millisecond, func(ts Time) {
		if e.Now() != ts {
			t.Errorf("clock %v not parked on boundary %v", e.Now(), ts)
		}
		at = append(at, ts)
	})
	e.Spawn("p", func(p *Proc) {
		p.Sleep(250 * time.Millisecond)
		p.Sleep(150 * time.Millisecond) // ends exactly on the 400ms boundary
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond, 400 * time.Millisecond}
	if len(at) != len(want) {
		t.Fatalf("sampled %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("sampled %v, want %v", at, want)
		}
	}
	if e.Now() != 400*time.Millisecond {
		t.Fatalf("final time %v, want 400ms", e.Now())
	}
}

// TestSamplerDoesNotExtendRun pins that the sampler is a hook, not an
// event source: it cannot keep the queue alive past the last real event,
// and boundaries beyond it never fire.
func TestSamplerDoesNotExtendRun(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.SetSampler(time.Second, func(Time) { n++ })
	e.Spawn("p", func(p *Proc) { p.Sleep(2500 * time.Millisecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("sampled %d boundaries, want 2 (2.5s of events, 1s interval)", n)
	}
	if e.Now() != 2500*time.Millisecond {
		t.Fatalf("final time %v, want 2.5s", e.Now())
	}
}

// TestSamplerObservationOnly runs the same workload with and without a
// sampler and checks the event timeline is untouched: same final time,
// same fired-event count, same per-process random draws.
func TestSamplerObservationOnly(t *testing.T) {
	workload := func(e *Engine) (finals []Time) {
		res := NewResource(e, "dev", 2)
		for i := 0; i < 4; i++ {
			e.Spawn("p", func(p *Proc) {
				for j := 0; j < 8; j++ {
					res.Use(p, Time(p.Rand().Intn(int(3*time.Millisecond))))
					p.Sleep(Time(p.Rand().Intn(int(2 * time.Millisecond))))
				}
				finals = append(finals, p.Now())
			})
		}
		return
	}

	plain := NewEngine(7)
	pf := workload(plain)
	if err := plain.Run(); err != nil {
		t.Fatal(err)
	}

	sampled := NewEngine(7)
	samples := 0
	sampled.SetSampler(time.Millisecond, func(Time) {
		samples++ // observation only: read state, schedule nothing
	})
	sf := workload(sampled)
	if err := sampled.Run(); err != nil {
		t.Fatal(err)
	}

	if samples == 0 {
		t.Fatal("sampler never fired")
	}
	if plain.Now() != sampled.Now() {
		t.Fatalf("final time changed: %v vs %v", plain.Now(), sampled.Now())
	}
	if plain.Events() != sampled.Events() {
		t.Fatalf("fired-event count changed: %d vs %d", plain.Events(), sampled.Events())
	}
	if len(pf) != len(sf) {
		t.Fatalf("finish counts differ: %d vs %d", len(pf), len(sf))
	}
	for i := range pf {
		if pf[i] != sf[i] {
			t.Fatalf("proc %d finish time changed: %v vs %v", i, pf[i], sf[i])
		}
	}
}

// TestSamplerBusyIntegralExact verifies the clock-parking property end to
// end: a resource busy from t=0 to t=150ms must show exactly 100ms of busy
// integral at the 100ms boundary — not 150ms — because account() runs with
// Now() on the boundary.
func TestSamplerBusyIntegralExact(t *testing.T) {
	e := NewEngine(1)
	res := NewResource(e, "dev", 1)
	var got []int64
	e.SetSampler(100*time.Millisecond, func(Time) {
		got = append(got, res.BusyUnitNanos())
	})
	e.Spawn("p", func(p *Proc) { res.Use(p, 150*time.Millisecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != int64(100*time.Millisecond) {
		t.Fatalf("busy integral at 100ms boundary = %v, want [100ms in nanos]", got)
	}
}

// TestSamplerStopsAtWatchdog pins the watchdog/sampler ordering: an event
// the watchdog rejects fires no sample, even when boundaries lie between
// the last fired event and the rejected one. Hand-computed sequence:
// events at 120/240/360ms against a 300ms limit and a 100ms interval
// sample exactly [100ms, 200ms] — never 300ms, because the 360ms event is
// aborted before any of its boundaries are visited.
func TestSamplerStopsAtWatchdog(t *testing.T) {
	e := NewEngine(1)
	var at []Time
	e.SetSampler(100*time.Millisecond, func(ts Time) { at = append(at, ts) })
	e.SetWatchdog(0, 300*time.Millisecond)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(120 * time.Millisecond)
		}
	})
	if err := e.Run(); !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
	want := []Time{100 * time.Millisecond, 200 * time.Millisecond}
	if len(at) != len(want) {
		t.Fatalf("sampled %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("sampled %v, want %v", at, want)
		}
	}
}

// TestSamplerRearmMidRun pins the re-arm contract: installing a sampler
// while the clock is mid-run starts at the first boundary strictly AFTER
// the current time — never at a boundary already passed (which would park
// the clock backwards) and never at the current instant twice. A proc
// re-arms at t=250ms and at the exact boundary t=400ms; hand-computed
// boundaries from there are [300, 400] then [500].
func TestSamplerRearmMidRun(t *testing.T) {
	e := NewEngine(1)
	var first, second []Time
	e.Spawn("p", func(p *Proc) {
		p.Sleep(250 * time.Millisecond)
		e.SetSampler(100*time.Millisecond, func(ts Time) { first = append(first, ts) })
		p.Sleep(150 * time.Millisecond) // lands exactly on the 400ms boundary
		e.SetSampler(100*time.Millisecond, func(ts Time) { second = append(second, ts) })
		p.Sleep(100 * time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	wantFirst := []Time{300 * time.Millisecond, 400 * time.Millisecond}
	wantSecond := []Time{500 * time.Millisecond}
	check := func(name string, got, want []Time) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s sampled %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s sampled %v, want %v", name, got, want)
			}
		}
	}
	check("first sampler", first, wantFirst)
	check("second sampler", second, wantSecond)
}

// TestSamplerClearMidRun: SetSampler(_, nil) detaches the hook without
// arithmetic on the interval (the nil path must not divide by zero when
// the interval is also zeroed).
func TestSamplerClearMidRun(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.SetSampler(100*time.Millisecond, func(Time) { n++ })
	e.Spawn("p", func(p *Proc) {
		p.Sleep(250 * time.Millisecond)
		e.SetSampler(100*time.Millisecond, nil)
		p.Sleep(300 * time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("sampled %d boundaries, want 2 (detached at 250ms)", n)
	}
}

func TestSetSamplerRejectsNonpositiveInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetSampler(0, fn) did not panic")
		}
	}()
	NewEngine(1).SetSampler(0, func(Time) {})
}
