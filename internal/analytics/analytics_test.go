package analytics

import (
	"math"
	"testing"

	"repro/internal/frame"
)

// frameOf builds a frame from explicit coordinates.
func frameOf(pos ...[3]float64) *frame.Frame {
	f := &frame.Frame{Model: "T", IDs: make([]uint32, len(pos)), Pos: make([]float64, 3*len(pos))}
	for i, p := range pos {
		f.IDs[i] = uint32(i)
		f.Pos[3*i], f.Pos[3*i+1], f.Pos[3*i+2] = p[0], p[1], p[2]
	}
	return f
}

func TestCentroidAndRg(t *testing.T) {
	f := frameOf([3]float64{0, 0, 0}, [3]float64{2, 0, 0})
	c := Centroid(f)
	if c != [3]float64{1, 0, 0} {
		t.Fatalf("centroid %v", c)
	}
	// Two atoms at distance 1 from centroid: Rg = 1.
	if rg := RadiusOfGyration(f); math.Abs(rg-1) > 1e-12 {
		t.Fatalf("Rg = %v, want 1", rg)
	}
	if RadiusOfGyration(frameOf()) != 0 {
		t.Fatal("empty frame Rg should be 0")
	}
}

func TestRMSD(t *testing.T) {
	a := frameOf([3]float64{0, 0, 0}, [3]float64{1, 0, 0})
	b := frameOf([3]float64{0, 0, 0}, [3]float64{1, 0, 0})
	if d, err := RMSD(a, b); err != nil || d != 0 {
		t.Fatalf("identical RMSD = %v, %v", d, err)
	}
	c := frameOf([3]float64{0, 0, 3}, [3]float64{1, 0, 3})
	d, err := RMSD(a, c)
	if err != nil || math.Abs(d-3) > 1e-12 {
		t.Fatalf("shifted RMSD = %v, want 3 (%v)", d, err)
	}
	if _, err := RMSD(a, frameOf([3]float64{0, 0, 0})); err == nil {
		t.Fatal("mismatched atom counts accepted")
	}
}

func TestEigenvalues3Diagonal(t *testing.T) {
	ev := Eigenvalues3([3][3]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	want := [3]float64{3, 2, 1}
	for i := range ev {
		if math.Abs(ev[i]-want[i]) > 1e-12 {
			t.Fatalf("eigenvalues %v, want %v", ev, want)
		}
	}
}

func TestEigenvalues3Symmetric(t *testing.T) {
	// [[2,1,0],[1,2,0],[0,0,5]] has eigenvalues 5, 3, 1.
	ev := Eigenvalues3([3][3]float64{{2, 1, 0}, {1, 2, 0}, {0, 0, 5}})
	want := [3]float64{5, 3, 1}
	for i := range ev {
		if math.Abs(ev[i]-want[i]) > 1e-9 {
			t.Fatalf("eigenvalues %v, want %v", ev, want)
		}
	}
}

func TestGyrationTensorTraceMatchesRg(t *testing.T) {
	f := frameOf([3]float64{0, 0, 0}, [3]float64{1, 2, 3}, [3]float64{4, 0, 1}, [3]float64{2, 2, 2})
	g := GyrationTensor(f, nil)
	trace := g[0][0] + g[1][1] + g[2][2]
	rg := RadiusOfGyration(f)
	if math.Abs(trace-rg*rg) > 1e-12 {
		t.Fatalf("trace %v != Rg^2 %v", trace, rg*rg)
	}
}

func TestLargestEigenvalueTracksElongation(t *testing.T) {
	compact := frameOf([3]float64{0, 0, 0}, [3]float64{1, 0, 0}, [3]float64{0, 1, 0}, [3]float64{0, 0, 1})
	elongated := frameOf([3]float64{0, 0, 0}, [3]float64{5, 0, 0}, [3]float64{10, 0, 0}, [3]float64{15, 0, 0})
	if LargestEigenvalue(elongated, nil) <= LargestEigenvalue(compact, nil) {
		t.Fatal("elongated structure should have larger dominant eigenvalue")
	}
}

func TestSubsetSelection(t *testing.T) {
	f := frameOf([3]float64{0, 0, 0}, [3]float64{1, 0, 0}, [3]float64{100, 100, 100})
	all := LargestEigenvalue(f, nil)
	sub := LargestEigenvalue(f, []int{0, 1})
	if sub >= all {
		t.Fatalf("subset eigenvalue %v should be far below full %v", sub, all)
	}
}

func TestPowerIterationKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] dominant eigenvalue 3.
	m := [][]float64{{2, 1}, {1, 2}}
	got := PowerIteration(m, 200, 1e-12)
	if math.Abs(got-3) > 1e-6 {
		t.Fatalf("dominant eigenvalue %v, want 3", got)
	}
	if PowerIteration(nil, 10, 1e-6) != 0 {
		t.Fatal("empty matrix should yield 0")
	}
}

func TestDistanceMatrixSymmetric(t *testing.T) {
	f := frameOf([3]float64{0, 0, 0}, [3]float64{3, 4, 0}, [3]float64{0, 0, 5})
	m := DistanceMatrix(f, []int{0, 1, 2})
	if m[0][1] != 5 || m[1][0] != 5 {
		t.Fatalf("d(0,1) = %v, want 5", m[0][1])
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Fatal("diagonal must be zero")
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Fatal("matrix not symmetric")
			}
		}
	}
}

func TestChangeDetectorFlagsJump(t *testing.T) {
	cd := &ChangeDetector{Threshold: 4, MinSample: 10}
	vals := []float64{10, 10.1, 9.9, 10.05, 9.95, 10.02, 9.98, 10.01, 10, 10.03, 9.97, 10.02}
	for _, v := range vals {
		if cd.Observe(v) {
			t.Fatalf("false positive on steady series at %v", v)
		}
	}
	if !cd.Observe(25) {
		t.Fatalf("jump to 25 not detected (z=%v)", cd.ZScore())
	}
	if cd.Count() != len(vals)+1 {
		t.Fatalf("count %d", cd.Count())
	}
}

func TestChangeDetectorWarmup(t *testing.T) {
	cd := &ChangeDetector{Threshold: 3, MinSample: 5}
	// Before MinSample, even wild values must not trigger.
	for _, v := range []float64{1, 100, -50, 3} {
		if cd.Observe(v) {
			t.Fatal("detection fired during warmup")
		}
	}
}

// Regression: a jump after a perfectly constant history used to slip
// through undetected — std is zero, so the z-score branch never ran and
// ZScore kept its previous (stale) value. A departure from a zero-variance
// series is the most unambiguous change there is: it must be detected, with
// a +Inf z-score.
func TestChangeDetectorZeroVarianceJump(t *testing.T) {
	cd := &ChangeDetector{Threshold: 3, MinSample: 3}
	for i := 0; i < 5; i++ {
		if cd.Observe(5) {
			t.Fatal("constant series flagged as change")
		}
		if cd.ZScore() != 0 {
			t.Fatalf("constant series z-score %v, want 0", cd.ZScore())
		}
	}
	if !cd.Observe(9) {
		t.Fatalf("departure from zero-variance series not detected (z=%v)", cd.ZScore())
	}
	if !math.IsInf(cd.ZScore(), 1) {
		t.Fatalf("z-score %v, want +Inf", cd.ZScore())
	}
}

// Regression: ZScore is defined per observation. During warmup it must
// read 0 — not whatever a hypothetical earlier check left behind — and a
// post-warmup in-range value must overwrite a detection's large z-score.
func TestChangeDetectorZScorePerObservation(t *testing.T) {
	cd := &ChangeDetector{Threshold: 4, MinSample: 4}
	for _, v := range []float64{10, 200, -70, 10} {
		cd.Observe(v)
		if cd.ZScore() != 0 {
			t.Fatalf("warmup z-score %v, want 0", cd.ZScore())
		}
	}
	cd.Observe(10) // active: finite z computed against the noisy history
	z1 := cd.ZScore()
	if math.IsInf(z1, 0) || math.IsNaN(z1) {
		t.Fatalf("active z-score %v, want finite", z1)
	}
	cd.Observe(37.5)
	cd.Observe(37.5)
	if cd.ZScore() == z1 && z1 != 0 {
		t.Fatal("z-score not refreshed per observation")
	}
}
