package critpath

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/trace"
)

// benchGraph builds a pairs-wide coarse-sync graph with frames release
// edges per pair — the shape Extract walks on real runs.
func benchGraph(pairs, frames int) *Graph {
	r := NewRecorder()
	period := time.Millisecond
	for pair := 0; pair < pairs; pair++ {
		prod, cons := int32(2*pair), int32(2*pair+1)
		r.StartProc(prod, fmt.Sprintf("producer%03d", pair), -1, 0)
		r.StartProc(cons, fmt.Sprintf("consumer%03d", pair), -1, 0)
		r.Begin(cons, "workflow", "explicit_sync", trace.ClassIdle, 0)
		t := Time(0)
		for f := 0; f < frames; f++ {
			r.Begin(prod, "workflow", "md_compute", trace.ClassCompute, t)
			r.BeginWait(cons, t)
			t += period
			r.End(prod, t)
			r.Release(prod, cons, t)
			r.EndWait(cons, t)
			r.Begin(cons, "workflow", "analytics", trace.ClassCompute, t)
			r.End(cons, t+period/2)
			r.BeginWait(cons, t+period/2)
		}
		r.EndWait(cons, t+period)
		r.EndProc(prod, t)
		r.EndProc(cons, t+period)
	}
	return r.Finish(Time(frames+1) * period)
}

// BenchmarkCritpathExtract measures the backward walk plus blame fold over
// a 4-pair, 128-frame coarse-sync graph (the fig5 paper shape).
func BenchmarkCritpathExtract(b *testing.B) {
	g := benchGraph(4, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := Extract(g)
		if cp.Makespan == 0 {
			b.Fatal("empty extraction")
		}
	}
}

// BenchmarkProvenanceRecord measures the enabled-path recording cost of
// one frame's full lineage (produce + 4 hops + dep), the per-frame work a
// recording run adds on top of the simulation.
func BenchmarkProvenanceRecord(b *testing.B) {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("/ensemble/pair%03d/frame%05d.pb", i%8, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRecorder()
		r.StartProc(0, "producer000", -1, 0)
		r.StartProc(1, "consumer000", -1, 0)
		for j, key := range keys {
			at := Time(j) * time.Millisecond
			r.Produce(key, 0, at, 659655)
			r.Hop(key, "write", 0, at, at+time.Microsecond, 659655)
			r.Hop(key, "kvs_commit", 0, at, at+time.Microsecond, 16)
			r.Hop(key, "transfer", 1, at, at+time.Microsecond, 659655)
			r.Hop(key, "read", 1, at, at+time.Microsecond, 659655)
			r.Depend(key, "consume", 1, at+2*time.Microsecond)
		}
	}
}
