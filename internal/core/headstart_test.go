package core

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/models"
	"repro/internal/trace"
)

func headstartConfig(b Backend, head time.Duration) Config {
	jac, err := models.ByName("JAC")
	if err != nil {
		panic(err)
	}
	return Config{
		Backend: b, Model: jac, Pairs: 2, Frames: 8, SingleNode: true,
		Seed: 7, ConsumerHeadStart: head,
	}
}

// A DYAD consumer's first touch blocks on the producer's first commit. With
// a producer head start the consumer arrives later but unblocks at the same
// instant, so the head start must come out of the idle column exactly —
// one-for-one — while movement, the producer, and the makespan stay
// byte-identical. This pins the §IV-C breakdown consistency the knob
// promises: job-launch delay is not measured time.
func TestConsumerHeadStartShrinksDYADIdleExactly(t *testing.T) {
	const head = 300 * time.Millisecond
	base, err := Run(headstartConfig(DYAD, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(headstartConfig(DYAD, head))
	if err != nil {
		t.Fatal(err)
	}
	if d := base.Consumer.Idle - got.Consumer.Idle; d != head {
		t.Errorf("consumer idle shrank by %v, want exactly %v", d, head)
	}
	if base.Consumer.Movement != got.Consumer.Movement {
		t.Errorf("consumer movement changed: %v -> %v", base.Consumer.Movement, got.Consumer.Movement)
	}
	if base.Producer != got.Producer {
		t.Errorf("producer decomposition changed: %v -> %v", base.Producer, got.Producer)
	}
	if base.Makespan != got.Makespan {
		t.Errorf("makespan changed: %v -> %v", base.Makespan, got.Makespan)
	}
}

// Under the coarse-grained backends the head start shifts the whole
// serialized pipeline: every measured total is unchanged and only the
// makespan grows by the delay.
func TestConsumerHeadStartShiftsCoarsePipeline(t *testing.T) {
	const head = 250 * time.Millisecond
	base, err := Run(headstartConfig(XFS, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(headstartConfig(XFS, head))
	if err != nil {
		t.Fatal(err)
	}
	if base.Producer != got.Producer || base.Consumer != got.Consumer {
		t.Errorf("coarse totals changed: prod %v -> %v, cons %v -> %v",
			base.Producer, got.Producer, base.Consumer, got.Consumer)
	}
	if d := got.Makespan - base.Makespan; d != head {
		t.Errorf("makespan grew by %v, want exactly %v", d, head)
	}
}

// The delay must be visible only as a detail span (job_start_delay), never
// as a caliper region: the movement/idle split sums caliper regions, so a
// leaked region would corrupt the breakdown columns.
func TestConsumerHeadStartIsDetailSpanOnly(t *testing.T) {
	cfg := headstartConfig(DYAD, 100*time.Millisecond)
	cfg.RecordSpans = true
	cfg.KeepProfiles = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	delays := 0
	for _, sp := range res.Spans {
		if sp.Name == "job_start_delay" {
			if sp.Class != trace.ClassDetail {
				t.Errorf("job_start_delay class = %v, want detail", sp.Class)
			}
			delays++
		}
	}
	if delays != cfg.Pairs {
		t.Errorf("job_start_delay spans = %d, want %d (one per consumer)", delays, cfg.Pairs)
	}
	for _, prof := range res.ConsumerProfiles {
		if d := prof.TotalOf("job_start_delay"); d != 0 {
			t.Errorf("job_start_delay leaked into a caliper region: %v", d)
		}
	}

	// Zero head start emits nothing.
	cfg = headstartConfig(DYAD, 0)
	cfg.RecordSpans = true
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range res.Spans {
		if sp.Name == "job_start_delay" {
			t.Fatal("job_start_delay span emitted with head start off")
		}
	}
}

func TestConsumerHeadStartValidation(t *testing.T) {
	cfg := headstartConfig(DYAD, -time.Millisecond)
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative ConsumerHeadStart validated")
	}
}

// SpecTune must change the hardware the run sees, and a pooled batch that
// alternates tuned and untuned configs must match standalone runs — the
// pool compares the tuned spec, so a tuned run can never inherit an
// untuned cluster (or vice versa).
func TestSpecTunePooledBatchMatchesStandalone(t *testing.T) {
	slowRead := func(sp *cluster.Spec) {
		if err := sp.SetParam(cluster.ParamSSDReadLat, 600e-6); err != nil {
			panic(err)
		}
	}
	tuned := headstartConfig(XFS, 0)
	tuned.SpecTune = slowRead
	untuned := headstartConfig(XFS, 0)

	wantTuned, err := Run(tuned)
	if err != nil {
		t.Fatal(err)
	}
	wantUntuned, err := Run(untuned)
	if err != nil {
		t.Fatal(err)
	}
	if wantTuned.Consumer == wantUntuned.Consumer {
		t.Fatal("SpecTune had no observable effect")
	}

	batch, err := RunMany([]Config{tuned, untuned, tuned, untuned}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range batch {
		want := wantUntuned
		if i%2 == 0 {
			want = wantTuned
		}
		if res.Consumer != want.Consumer || res.Producer != want.Producer || res.Makespan != want.Makespan {
			t.Errorf("pooled run %d drifted from standalone result", i)
		}
	}
}
