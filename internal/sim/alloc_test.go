package sim

import (
	"testing"
	"time"
)

// steadyAllocs measures the total heap allocations of one engine lifetime
// delivering `events` sleep events, with the given shard worker count
// (<= 1 serial).
func steadyAllocs(t *testing.T, events, shards int) float64 {
	t.Helper()
	return testing.AllocsPerRun(5, func() {
		e := NewEngine(1)
		if shards > 1 {
			e.SetShardWorkers(shards)
			e.SetLookahead(4 * time.Microsecond)
		}
		e.Spawn("p", func(p *Proc) {
			for i := 0; i < events; i++ {
				p.Sleep(time.Microsecond)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// The kernel's steady state is allocation-free (DESIGN.md §3c), and the
// span-tracer hooks must keep it that way when tracing is off: scaling the
// event count 100x must not add a single allocation — everything measured
// belongs to engine setup. This is the tracing-off half of the tentpole's
// zero-cost contract; the instrumented components pay one nil check per
// operation and nothing else.
func TestSteadyStateZeroAllocsWithTracingOff(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation budget checked without -race")
	}
	base := steadyAllocs(t, 200, 1)
	long := steadyAllocs(t, 20_000, 1)
	if delta := long - base; delta > 0 {
		t.Fatalf("steady state allocates: %0.f allocs over 19800 extra events (base %.0f, long %.0f)", delta, base, long)
	}
}

// The sharded engine inherits the same budget: once the per-shard heaps,
// inboxes, and window merge heap have grown to the workload's high-water
// mark, windows recycle them — 100x more events, zero extra allocations
// (DESIGN.md §3g overhead budget).
func TestShardedSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation budget checked without -race")
	}
	base := steadyAllocs(t, 200, 8)
	long := steadyAllocs(t, 20_000, 8)
	if delta := long - base; delta > 0 {
		t.Fatalf("sharded steady state allocates: %0.f allocs over 19800 extra events (base %.0f, long %.0f)", delta, base, long)
	}
}

// pingPongAllocs measures the total heap allocations of one engine
// lifetime driving a Block/Wake-heavy workload: a waiter parked in a
// Signal and a peer that broadcasts every microsecond — one release edge
// per round, exercising exactly the kernel paths the critical-path
// recorder hooks (Block, Wake, Spawn, deliver).
func pingPongAllocs(t *testing.T, rounds int) float64 {
	t.Helper()
	return testing.AllocsPerRun(5, func() {
		e := NewEngine(1)
		var sig Signal
		e.Spawn("waiter", func(p *Proc) {
			for i := 0; i < rounds; i++ {
				sig.Wait(p)
			}
		})
		e.Spawn("waker", func(p *Proc) {
			for i := 0; i < rounds; i++ {
				p.Sleep(time.Microsecond)
				sig.Broadcast()
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// The critical-path recorder hooks must be invisible when no recorder is
// installed: 100x more Block/Wake edges, zero extra allocations. This is
// the disabled-path half of the §3k zero-cost contract (the enabled path
// is bounded by the graph size, not the event count; the off path costs
// one nil check per hook site).
func TestCritpathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation budget checked without -race")
	}
	base := pingPongAllocs(t, 200)
	long := pingPongAllocs(t, 20_000)
	if delta := long - base; delta > 0 {
		t.Fatalf("recorder-off Block/Wake path allocates: %.0f allocs over 19800 extra rounds (base %.0f, long %.0f)", delta, base, long)
	}
}
