package md

import "testing"

// BenchmarkStep512 measures one velocity-Verlet step of a 512-atom LJ
// fluid with cell lists.
func BenchmarkStep512(b *testing.B) {
	b.ReportAllocs()
	s := NewLattice(512, 0.8, 1.0, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkStep4096 measures a 4,096-atom step (cell-list scaling).
func BenchmarkStep4096(b *testing.B) {
	b.ReportAllocs()
	s := NewLattice(4096, 0.8, 1.0, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
