package xfs

import (
	"errors"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// XFS has no redundancy below it: a failed device surfaces every operation
// as a wrapped faults.ErrDeviceFailed, and service resumes after repair.
func TestDeviceFailureSurfacesSentinel(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFS(e)
	e.Spawn("io", func(p *sim.Proc) {
		if err := f.WriteFile(p, "/f0", vfs.SizeOnly(4096)); err != nil {
			t.Errorf("healthy write: %v", err)
		}
		f.Node().SSD.Fail()
		if err := f.WriteFile(p, "/f1", vfs.SizeOnly(4096)); !errors.Is(err, faults.ErrDeviceFailed) {
			t.Errorf("write on failed device: err = %v, want ErrDeviceFailed", err)
		}
		if _, err := f.ReadFile(p, "/f0"); !errors.Is(err, faults.ErrDeviceFailed) {
			t.Errorf("read on failed device: err = %v, want ErrDeviceFailed", err)
		}
		if err := f.Unlink(p, "/f0"); !errors.Is(err, faults.ErrDeviceFailed) {
			t.Errorf("unlink on failed device: err = %v, want ErrDeviceFailed", err)
		}
		f.Node().SSD.Repair()
		if err := f.WriteFile(p, "/f2", vfs.SizeOnly(4096)); err != nil {
			t.Errorf("post-repair write: %v", err)
		}
		if _, err := f.ReadFile(p, "/f0"); err != nil {
			t.Errorf("post-repair read: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The failed write must not have registered the file.
	if _, ok := f.Tree().Get("/f1"); ok {
		t.Fatal("file table contains a frame whose write failed")
	}
}

// A failed data write never half-registers state: the journal entry and
// file-table update are atomic with the successful device write.
func TestFailedWriteLeavesNoPartialState(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFS(e)
	e.Spawn("io", func(p *sim.Proc) {
		f.Node().SSD.Fail()
		f.WriteFile(p, "/f0", vfs.SizeOnly(1<<20))
		f.Node().SSD.Repair()
		if _, err := f.ReadFile(p, "/f0"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("read of never-written file: err = %v, want ErrNotExist", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
