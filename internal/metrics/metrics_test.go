package metrics

import (
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	g := r.Gauge("g", func() float64 { return 1 })
	c := r.Counter("c", func() float64 { return 1 })
	ra := r.Rate("ra", func() float64 { return 1 })
	u := r.Util("u", 4, func() float64 { return 1 })
	rt := r.Ratio("rt", func() float64 { return 1 }, func() float64 { return 2 })
	h := r.Histogram("h")
	for _, s := range []*Series{g, c, ra, u, rt} {
		if s != nil {
			t.Fatalf("nil registry returned non-nil series %v", s)
		}
	}
	if h != nil {
		t.Fatal("nil registry returned non-nil histogram")
	}
	// All of these must be no-ops, not panics.
	g.OnDashboard()
	h.Observe(time.Millisecond)
	if got := h.Percentile(50); got != 0 {
		t.Fatalf("nil histogram percentile = %v, want 0", got)
	}
	r.Sample(time.Second)
	if r.Len() != 0 || r.Interval() != 0 || r.Times() != nil || r.Series() != nil || r.Histograms() != nil {
		t.Fatal("nil registry accessors not inert")
	}
	if got := CounterTracks(r); got != nil {
		t.Fatalf("CounterTracks(nil) = %v, want nil", got)
	}
}

func TestNewRejectsNonpositiveInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// TestSampleKinds drives one series of each kind through three boundaries
// with a hand-built cumulative state and checks each sample against the
// kind's documented semantic.
func TestSampleKinds(t *testing.T) {
	r := New(time.Second)
	var total, busy, hits, accesses, inFlight float64
	r.Gauge("gauge", func() float64 { return inFlight })
	r.Counter("counter", func() float64 { return total })
	r.Rate("rate", func() float64 { return total })
	r.Util("util", 2, func() float64 { return busy })
	r.Ratio("ratio", func() float64 { return hits }, func() float64 { return accesses })

	step := func(dTotal, dBusy, dHits, dAccesses, gaugeNow float64, at time.Duration) {
		total += dTotal
		busy += dBusy
		hits += dHits
		accesses += dAccesses
		inFlight = gaugeNow
		r.Sample(at)
	}
	// Interval 1: 10 ops, busy 0.5 unit-second of 2 capacity-units, 3/4 hits.
	step(10, 0.5e9, 3, 4, 7, time.Second)
	// Interval 2: nothing moves.
	step(0, 0, 0, 0, 2, 2*time.Second)
	// Interval 3: 5 ops, fully busy, 1/1 hits.
	step(5, 2e9, 1, 1, 0, 3*time.Second)

	want := map[string][]float64{
		"gauge":   {7, 2, 0},
		"counter": {10, 10, 15},
		"rate":    {10, 0, 5},
		"util":    {0.25, 0, 1},
		"ratio":   {0.75, 0, 1}, // denominator stalled in interval 2 -> 0
	}
	for _, s := range r.Series() {
		w := want[s.Name]
		if len(s.Samples) != len(w) {
			t.Fatalf("%s: %d samples, want %d", s.Name, len(s.Samples), len(w))
		}
		for i, v := range s.Samples {
			if v != w[i] {
				t.Errorf("%s sample %d = %v, want %v", s.Name, i, v, w[i])
			}
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
}

func TestHistogramObserve(t *testing.T) {
	h := New(time.Second).Histogram("lat")
	durs := []time.Duration{500 * time.Nanosecond, 3 * time.Microsecond, 3 * time.Microsecond, 100 * time.Millisecond}
	var sum time.Duration
	for _, d := range durs {
		h.Observe(d)
		sum += d
	}
	if h.Count != 4 || h.Sum != sum {
		t.Fatalf("count=%d sum=%v, want 4/%v", h.Count, h.Sum, sum)
	}
	if h.Min != 500*time.Nanosecond || h.Max != 100*time.Millisecond {
		t.Fatalf("min=%v max=%v", h.Min, h.Max)
	}
	if h.Buckets[0] != 1 || h.Buckets[trace.HistBucket(3*time.Microsecond)] != 2 {
		t.Fatalf("bucket counts wrong: %v", h.Buckets)
	}
	if p := h.P50(); p < h.Min || p > h.Max {
		t.Fatalf("P50 %v outside [min,max]", p)
	}
	if p50, p99 := h.P50(), h.P99(); p99 < p50 {
		t.Fatalf("P99 %v < P50 %v", p99, p50)
	}
}

// TestHistogramPercentileMatchesMetricsHistogram pins the satellite
// requirement that metrics histograms reuse the trace estimator verbatim:
// identical observations must yield identical percentile estimates.
func TestHistogramPercentileMatchesTrace(t *testing.T) {
	h := New(time.Second).Histogram("lat")
	var op trace.OpStat
	op.Min = time.Duration(1<<63 - 1)
	durs := []time.Duration{2 * time.Microsecond, 17 * time.Microsecond, 900 * time.Microsecond, 5 * time.Millisecond, 5 * time.Millisecond}
	for _, d := range durs {
		h.Observe(d)
		op.Count++
		if d < op.Min {
			op.Min = d
		}
		if d > op.Max {
			op.Max = d
		}
		op.Hist[trace.HistBucket(d)]++
	}
	for _, p := range []float64{0, 25, 50, 75, 99, 100} {
		if got, want := h.Percentile(p), op.Percentile(p); got != want {
			t.Errorf("p%v: metrics %v != trace %v", p, got, want)
		}
	}
}

func TestWriteCSVDeterministicShape(t *testing.T) {
	mk := func() Run {
		r := New(time.Second)
		var n float64
		r.Counter("a/total", func() float64 { return n })
		r.Gauge("b/now", func() float64 { return n / 2 })
		n = 4
		r.Sample(time.Second)
		n = 6
		r.Sample(2 * time.Second)
		return Run{Label: "run one", Reg: r}
	}
	var b1, b2 strings.Builder
	if err := WriteCSV(&b1, []Run{mk(), mk()}); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b2, []Run{mk(), mk()}); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("WriteCSV not deterministic")
	}
	want := "# run one\ntime_s,a/total,b/now\n1,4,2\n2,6,3\n\n# run one\ntime_s,a/total,b/now\n1,4,2\n2,6,3\n"
	if b1.String() != want {
		t.Fatalf("CSV:\n%s\nwant:\n%s", b1.String(), want)
	}
}

func TestWritePromSnapshot(t *testing.T) {
	r := New(time.Second)
	var n, busy float64
	r.Counter("ops", func() float64 { return n })
	r.Util("dev/util", 1, func() float64 { return busy })
	h := r.Histogram("op/lat")
	n, busy = 8, 0.5e9
	h.Observe(2 * time.Microsecond)
	r.Sample(time.Second)
	n, busy = 8, 0.5e9
	r.Sample(2 * time.Second)

	var b strings.Builder
	if err := WriteProm(&b, []Run{{Label: `q"x`, Reg: r}}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE repro_ops_total counter\n",
		"repro_ops_total{run=\"q\\\"x\"} 8\n",
		"# TYPE repro_dev_util gauge\n",
		"repro_dev_util{run=\"q\\\"x\"} 0.25\n", // mean of 0.5 and 0
		"# TYPE repro_op_lat_seconds histogram\n",
		`le="+Inf"} 1`,
		"repro_op_lat_seconds_count{run=\"q\\\"x\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	// Snapshot purity: exporting twice must give identical bytes (no probe
	// calls, no state mutation at export time).
	var b2 strings.Builder
	if err := WriteProm(&b2, []Run{{Label: `q"x`, Reg: r}}); err != nil {
		t.Fatal(err)
	}
	if out != b2.String() {
		t.Fatal("WriteProm is not idempotent")
	}
}

// TestExportersEscapeHostileLabel is the full golden for a label carrying
// every character the exporters must neutralize: backslashes (including a
// trailing one), double quotes, and line breaks. Prometheus output follows
// the text exposition format escaping (\\ then \" then \n, in that order);
// the CSV "# label" comment keeps the label on one line so a hostile label
// cannot inject data rows.
func TestExportersEscapeHostileLabel(t *testing.T) {
	hostile := "bad\"run\\name\nwith=\"x\\n\"\r tail\\"
	r := New(time.Second)
	n := 0.0
	r.Counter("ops", func() float64 { return n })
	n = 3
	r.Sample(time.Second)
	runs := []Run{{Label: hostile, Reg: r}}

	var prom strings.Builder
	if err := WriteProm(&prom, runs); err != nil {
		t.Fatal(err)
	}
	wantProm := "# TYPE repro_ops_total counter\n" +
		"repro_ops_total{run=\"bad\\\"run\\\\name\\nwith=\\\"x\\\\n\\\"\r tail\\\\\"} 3\n"
	if prom.String() != wantProm {
		t.Fatalf("prom golden mismatch:\ngot:  %q\nwant: %q", prom.String(), wantProm)
	}
	// The value line must parse as exactly one sample: one unescaped quote
	// pair around the label, no raw newline inside it.
	lines := strings.Split(strings.TrimSuffix(prom.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("prom output has %d lines, want 2 (TYPE + sample):\n%q", len(lines), prom.String())
	}

	var csvb strings.Builder
	if err := WriteCSV(&csvb, runs); err != nil {
		t.Fatal(err)
	}
	wantCSV := "# bad\"run\\\\name\\nwith=\"x\\\\n\"\\r tail\\\\\ntime_s,ops\n1,3\n"
	if csvb.String() != wantCSV {
		t.Fatalf("csv golden mismatch:\ngot:  %q\nwant: %q", csvb.String(), wantCSV)
	}
}

// TestWritePromGroupsTypeLines pins the exposition-format invariant that a
// metric name appearing in several runs gets exactly one # TYPE line.
func TestWritePromGroupsTypeLines(t *testing.T) {
	mk := func(label string) Run {
		r := New(time.Second)
		var n float64
		r.Counter("shared", func() float64 { return n })
		n = 1
		r.Sample(time.Second)
		return Run{Label: label, Reg: r}
	}
	var b strings.Builder
	if err := WriteProm(&b, []Run{mk("r1"), mk("r2")}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "# TYPE repro_shared_total"); got != 1 {
		t.Fatalf("%d TYPE lines for shared metric, want 1:\n%s", got, b.String())
	}
}

func TestCounterTracksDashOnly(t *testing.T) {
	r := New(time.Second)
	var n float64
	r.Counter("quiet", func() float64 { return n })
	r.Gauge("loud", func() float64 { return n }).OnDashboard()
	n = 3
	r.Sample(time.Second)
	tracks := CounterTracks(r)
	if len(tracks) != 1 || tracks[0].Name != "loud" {
		t.Fatalf("tracks = %+v, want just loud", tracks)
	}
	if len(tracks[0].Times) != 1 || tracks[0].Values[0] != 3 {
		t.Fatalf("track samples wrong: %+v", tracks[0])
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 24); got != "" {
		t.Fatalf("empty series sparkline %q", got)
	}
	if got := Sparkline([]float64{0, 0, 0}, 24); got != "   " {
		t.Fatalf("flat zero series = %q, want three floor glyphs", got)
	}
	got := Sparkline([]float64{0, 1, 2, 4, 8}, 5)
	if len(got) != 5 {
		t.Fatalf("width = %d, want 5", len(got))
	}
	if got[0] != ' ' || got[4] != '@' {
		t.Fatalf("scaling wrong: %q", got)
	}
	// Non-increasing glyph density must follow non-increasing values.
	if got != " .:=@" {
		t.Fatalf("sparkline = %q, want \" .:=@\"", got)
	}
	// A positive-floor series still scales from zero.
	warm := Sparkline([]float64{5, 5, 5, 5}, 4)
	if warm != "@@@@" {
		t.Fatalf("positive flat series = %q, want all-peak", warm)
	}
}

// TestObserveZeroAllocs pins the zero-cost contract of the hot observation
// path: Observe on both a real and a nil histogram must not allocate.
func TestObserveZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation budget checked without -race")
	}
	h := New(time.Second).Histogram("lat")
	if n := testing.AllocsPerRun(100, func() { h.Observe(3 * time.Microsecond) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.0f/op", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(100, func() { nilH.Observe(3 * time.Microsecond) }); n != 0 {
		t.Fatalf("nil Histogram.Observe allocates %.0f/op", n)
	}
}
