package experiments

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
)

// FaultSweep is a robustness extension: it subjects each data-management
// solution to a deterministic fault schedule of increasing intensity and
// measures what survival costs. DYAD runs face link degradation/outages,
// broker crashes, and device stalls, and recover through timeouts, capped
// backoff, and degraded reads (direct staging refetch, then the shared
// Lustre mirror deployed by LustreFallback). Lustre runs face OST/MDS
// outages and link faults, and recover through RPC retries and failover.
// XFS runs face device stalls and outright device failures — with no
// redundancy below it, a failed device kills the run, which the sweep
// counts instead of aborting (the error chain wraps faults.ErrDeviceFailed).
//
// The fault plan is a pure function of (spec, seed), so every cell of this
// table is byte-identical for any worker count.
func FaultSweep(o Options) (*Report, error) {
	o = o.Defaults()
	jac := mustModel("JAC")
	rates := []float64{0, 1, 2, 4}
	pairsMulti, pairsXFS := 8, 4
	if o.Quick {
		pairsMulti, pairsXFS = 4, 2
	}

	type setup struct {
		backend core.Backend
		pairs   int
		single  bool
		spec    faults.Spec
	}
	// Base (rate 1x) fault mix per backend, mean events per run. The mixes
	// target each backend's distinct failure surface; rates scale them.
	setups := []setup{
		{core.DYAD, pairsMulti, false, faults.Spec{DeviceStalls: 1, LinkDegrades: 2, LinkOutages: 1, BrokerCrashes: 1}},
		{core.XFS, pairsXFS, true, faults.Spec{DeviceStalls: 2, DeviceFails: 0.5}},
		// Lustre outages run longer than the client's full retry budget
		// (~1.2s) often enough that the failover path shows up in the table.
		{core.Lustre, pairsMulti, false, faults.Spec{LinkDegrades: 1, LinkOutages: 1, OSTOutages: 2, MDSOutages: 0.5,
			MeanOutage: 1500 * time.Millisecond}},
	}

	// One flat batch over (backend, rate, rep): every run is independent, so
	// the whole sweep fans across the worker pool at once. Seeds follow the
	// RepeatWorkers schedule so a cell's reps match a standalone Repeat.
	type key struct{ setup, rate int }
	var keys []key
	var cfgs []core.Config
	var traceLabels []string
	for si, s := range setups {
		for ri, rate := range rates {
			spec := s.spec.Scale(rate)
			for rep := 0; rep < o.Reps; rep++ {
				cfg := core.Config{
					Backend: s.backend, Model: jac, Pairs: s.pairs,
					SingleNode: s.single, Frames: o.Frames,
					Seed:              o.Seed + uint64(rep)*0x9e3779b9,
					ComputeJitter:     0.004,
					ShardWorkers:      o.ShardWorkers,
					ConsumerHeadStart: o.ConsumerHeadStart,
					Faults:            &spec,
				}
				switch s.backend {
				case core.Lustre:
					cfg.LustreNoise = true
				case core.DYAD:
					cfg.LustreFallback = true
				}
				label := ""
				if rep == 0 && (o.Trace != nil || o.Metrics != nil || o.CritPath != nil) {
					// One traced/metered/recorded rep per (backend, rate)
					// cell: the fault plan is seed-deterministic, so the
					// traced rep's recovery spans line up with the cell's
					// rep-0 metrics exactly.
					label = fmt.Sprintf("faults %s %gx", s.backend, rate)
					if o.Trace != nil {
						cfg.RecordSpans = true
					}
					if o.Metrics != nil {
						cfg.MetricsInterval = o.Metrics.SampleInterval()
					}
					if o.CritPath != nil {
						cfg.CritPath = true
					}
				}
				keys = append(keys, key{si, ri})
				cfgs = append(cfgs, cfg)
				traceLabels = append(traceLabels, label)
			}
		}
	}
	results, err := core.RunMany(cfgs, o.Workers)
	if err := tolerateFaultKills(err); err != nil {
		return nil, err
	}
	for i, label := range traceLabels {
		if label == "" {
			continue
		}
		if o.Trace != nil {
			o.Trace.Add(label, results[i:i+1])
		}
		if o.Metrics != nil {
			o.Metrics.Add(label, results[i:i+1])
		}
		if o.CritPath != nil {
			o.CritPath.Add(label, results[i:i+1])
		}
	}

	r := &Report{
		ID:    "faultsweep",
		Title: "Extension: fault injection and recovery sweep (JAC, rates scale the per-backend fault mix)",
		Columns: []string{"backend", "rate", "makespan", "cons_total", "timeouts",
			"retries", "failovers", "degraded_mb", "recovery_s", "failed"},
	}

	type cell struct {
		ok, failed                                              int
		makespan, cons                                          float64
		timeouts, retries, failovers, degradedMB, recovery, inj float64
	}
	cells := map[key]*cell{}
	for i, res := range results {
		c := cells[keys[i]]
		if c == nil {
			c = &cell{}
			cells[keys[i]] = c
		}
		if res == nil {
			c.failed++
			continue
		}
		c.ok++
		c.makespan += res.Makespan.Seconds()
		c.cons += res.Consumer.Sum().Seconds()
		c.timeouts += float64(res.Recovery.Timeouts)
		c.retries += float64(res.Recovery.Retries)
		c.failovers += float64(res.Recovery.Failovers)
		c.degradedMB += float64(res.Recovery.DegradedBytes) / (1 << 20)
		c.recovery += res.Recovery.RecoveryTime.Seconds()
		c.inj += float64(res.Recovery.Injected)
	}
	// meanMakespan is the per-cell mean over surviving reps (NaN if none —
	// a cell with no survivors has no defined makespan, and downstream
	// ratios over it must render "n/a", not divide-by-zero garbage).
	meanMakespan := func(c *cell) float64 {
		if c.ok == 0 {
			return math.NaN()
		}
		return c.makespan / float64(c.ok)
	}
	for si, s := range setups {
		for ri, rate := range rates {
			c := cells[key{si, ri}]
			row := []string{s.backend.String(), fmt.Sprintf("%gx", rate)}
			if c.ok == 0 {
				row = append(row, "-", "-", "-", "-", "-", "-", "-")
			} else {
				n := float64(c.ok)
				row = append(row,
					stats.FormatSeconds(c.makespan/n),
					stats.FormatSeconds(c.cons/n),
					fmt.Sprintf("%.1f", c.timeouts/n),
					fmt.Sprintf("%.1f", c.retries/n),
					fmt.Sprintf("%.1f", c.failovers/n),
					fmt.Sprintf("%.2f", c.degradedMB/n),
					stats.FormatSeconds(c.recovery/n),
				)
			}
			row = append(row, fmt.Sprintf("%d/%d", c.failed, o.Reps))
			r.Rows = append(r.Rows, row)
		}
	}

	// The headline is always emitted: a backend whose every rep died at
	// some rate reports "n/a" for its inflation instead of vanishing.
	last := len(rates) - 1
	dy0, dy4 := cells[key{0, 0}], cells[key{0, last}]
	lu0, lu4 := cells[key{2, 0}], cells[key{2, last}]
	r.Notes = append(r.Notes, fmt.Sprintf(
		"makespan inflation at %gx faults — DYAD: %s, Lustre: %s",
		rates[last],
		stats.FormatRatioPrec(stats.Ratio(meanMakespan(dy4), meanMakespan(dy0)), 2),
		stats.FormatRatioPrec(stats.Ratio(meanMakespan(lu4), meanMakespan(lu0)), 2)))
	xfsFailed := 0
	for ri := range rates {
		xfsFailed += cells[key{1, ri}].failed
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("XFS runs killed by device failure: %d of %d (no redundancy below node-local XFS; errors wrap faults.ErrDeviceFailed)", xfsFailed, len(rates)*o.Reps),
		"DYAD survives broker crashes via timeout+backoff, then degraded reads (staging refetch or Lustre mirror); Lustre survives OST/MDS outages via RPC retry and failover",
		"fault plans are pure functions of (spec, seed): this table is byte-identical for any -j",
		"extends the paper: fault injection; not a paper figure",
	)
	return r, nil
}

// tolerateFaultKills filters a RunMany batch error: runs killed by an
// injected fault (their chains wrap the faults package sentinels) are
// expected sweep outcomes; anything else is a real failure and aborts.
func tolerateFaultKills(err error) error {
	if err == nil {
		return nil
	}
	errs := []error{err}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		errs = joined.Unwrap()
	}
	for _, e := range errs {
		if !errors.Is(e, faults.ErrDeviceFailed) && !errors.Is(e, faults.ErrExhausted) {
			return e
		}
	}
	return nil
}
