package thicket

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Comparison relates the same call paths across two ensembles — the
// operation behind the paper's Figures 9 and 10, which set a JAC tree and
// an STMV tree side by side and reason about per-region ratios.
type Comparison struct {
	// Rows are aligned by call path, ordered by the left ensemble's mean.
	Rows []ComparisonRow
}

// ComparisonRow is one call path's cross-ensemble relation.
type ComparisonRow struct {
	Path  string
	Name  string
	Left  stats.Summary // inclusive seconds in ensemble A
	Right stats.Summary // inclusive seconds in ensemble B
	// Ratio is Right.Mean / Left.Mean (NaN when the left mean is zero).
	Ratio float64
}

// Compare aligns two ensembles by call path. Paths present in only one
// ensemble appear with a zero summary on the other side.
func Compare(a, b *Ensemble) *Comparison {
	type cell struct {
		name        string
		left, right stats.Summary
		hasL, hasR  bool
	}
	cells := map[string]*cell{}
	collect := func(e *Ensemble, right bool) {
		var walk func(n *Node, prefix string)
		walk = func(n *Node, prefix string) {
			path := prefix + "/" + n.Name
			c, ok := cells[path]
			if !ok {
				c = &cell{name: n.Name}
				cells[path] = c
			}
			if right {
				c.right, c.hasR = n.Total, true
			} else {
				c.left, c.hasL = n.Total, true
			}
			for _, ch := range n.Children {
				walk(ch, path)
			}
		}
		for _, ch := range e.root.Children {
			walk(ch, "")
		}
	}
	collect(a, false)
	collect(b, true)

	cmp := &Comparison{}
	for path, c := range cells {
		cmp.Rows = append(cmp.Rows, ComparisonRow{
			Path:  path,
			Name:  c.name,
			Left:  c.left,
			Right: c.right,
			Ratio: stats.Ratio(c.right.Mean, c.left.Mean),
		})
	}
	sort.Slice(cmp.Rows, func(i, j int) bool {
		if cmp.Rows[i].Left.Mean != cmp.Rows[j].Left.Mean {
			return cmp.Rows[i].Left.Mean > cmp.Rows[j].Left.Mean
		}
		return cmp.Rows[i].Path < cmp.Rows[j].Path
	})
	return cmp
}

// Row returns the first row whose node name matches, or nil.
func (c *Comparison) Row(name string) *ComparisonRow {
	for i := range c.Rows {
		if c.Rows[i].Name == name {
			return &c.Rows[i]
		}
	}
	return nil
}

// Render writes the aligned comparison table.
func (c *Comparison) Render(w io.Writer, leftLabel, rightLabel string) {
	fmt.Fprintf(w, "%-34s %-14s %-14s %s\n", "call path", leftLabel, rightLabel, "ratio")
	for _, r := range c.Rows {
		depth := strings.Count(r.Path, "/") - 1
		fmt.Fprintf(w, "%-34s %-14s %-14s %s\n",
			strings.Repeat("  ", depth)+r.Name,
			stats.FormatSeconds(r.Left.Mean),
			stats.FormatSeconds(r.Right.Mean),
			stats.FormatRatio(r.Ratio))
	}
}
