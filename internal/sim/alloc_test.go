package sim

import (
	"testing"
	"time"
)

// steadyAllocs measures the total heap allocations of one engine lifetime
// delivering `events` sleep events, with the given shard worker count
// (<= 1 serial).
func steadyAllocs(t *testing.T, events, shards int) float64 {
	t.Helper()
	return testing.AllocsPerRun(5, func() {
		e := NewEngine(1)
		if shards > 1 {
			e.SetShardWorkers(shards)
			e.SetLookahead(4 * time.Microsecond)
		}
		e.Spawn("p", func(p *Proc) {
			for i := 0; i < events; i++ {
				p.Sleep(time.Microsecond)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// The kernel's steady state is allocation-free (DESIGN.md §3c), and the
// span-tracer hooks must keep it that way when tracing is off: scaling the
// event count 100x must not add a single allocation — everything measured
// belongs to engine setup. This is the tracing-off half of the tentpole's
// zero-cost contract; the instrumented components pay one nil check per
// operation and nothing else.
func TestSteadyStateZeroAllocsWithTracingOff(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation budget checked without -race")
	}
	base := steadyAllocs(t, 200, 1)
	long := steadyAllocs(t, 20_000, 1)
	if delta := long - base; delta > 0 {
		t.Fatalf("steady state allocates: %0.f allocs over 19800 extra events (base %.0f, long %.0f)", delta, base, long)
	}
}

// The sharded engine inherits the same budget: once the per-shard heaps,
// inboxes, and window merge heap have grown to the workload's high-water
// mark, windows recycle them — 100x more events, zero extra allocations
// (DESIGN.md §3g overhead budget).
func TestShardedSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation budget checked without -race")
	}
	base := steadyAllocs(t, 200, 8)
	long := steadyAllocs(t, 20_000, 8)
	if delta := long - base; delta > 0 {
		t.Fatalf("sharded steady state allocates: %0.f allocs over 19800 extra events (base %.0f, long %.0f)", delta, base, long)
	}
}
