package analytics

import (
	"testing"

	"repro/internal/frame"
)

// BenchmarkRadiusOfGyration measures Rg over a JAC-sized frame.
func BenchmarkRadiusOfGyration(b *testing.B) {
	b.ReportAllocs()
	f := frame.NewSynthetic("JAC", 1, 23_558, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RadiusOfGyration(f)
	}
}

// BenchmarkLargestEigenvalue measures the gyration-tensor analysis.
func BenchmarkLargestEigenvalue(b *testing.B) {
	b.ReportAllocs()
	f := frame.NewSynthetic("JAC", 1, 23_558, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LargestEigenvalue(f, nil)
	}
}

// BenchmarkPowerIteration measures the dominant eigenvalue of a 256x256
// distance matrix.
func BenchmarkPowerIteration(b *testing.B) {
	b.ReportAllocs()
	f := frame.NewSynthetic("JAC", 1, 512, 7)
	subset := make([]int, 256)
	for i := range subset {
		subset[i] = i
	}
	m := DistanceMatrix(f, subset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PowerIteration(m, 50, 1e-9)
	}
}
