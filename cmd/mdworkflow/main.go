// Command mdworkflow runs one MD-inspired producer/consumer workflow
// configuration (§IV-C of the paper) on the simulated cluster and prints
// the production/consumption time decomposition.
//
// Examples:
//
//	mdworkflow -backend DYAD -model JAC -pairs 4 -single-node
//	mdworkflow -backend Lustre -model STMV -pairs 16 -stride 10 -reps 5
//	mdworkflow -backend DYAD -model JAC -pairs 8 -profiles
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/caliper"
	"repro/internal/stats"
	"repro/internal/thicket"
)

func main() {
	var (
		backendName = flag.String("backend", "DYAD", "data management solution: DYAD, XFS, or Lustre")
		modelName   = flag.String("model", "JAC", "molecular model: JAC, ApoA1, 'F1 ATPase', or STMV")
		atoms       = flag.Int("atoms", 0, "custom model: atom count (overrides -model)")
		stepsPerSec = flag.Float64("steps-per-sec", 0, "custom model: MD steps per second")
		pairs       = flag.Int("pairs", 1, "number of producer-consumer pairs")
		frames      = flag.Int("frames", 128, "frames per pair")
		stride      = flag.Int("stride", 0, "output stride in MD steps (0 = model default)")
		singleNode  = flag.Bool("single-node", false, "collocate producers and consumers on one node")
		reps        = flag.Int("reps", 1, "repetitions (distinct seeds)")
		workers     = flag.Int("j", 0, "parallel workers for repetitions (0 = one per core); results are identical for any -j")
		pdesJ       = flag.Int("pdes-j", 0, "intra-run event-queue shards (parallel discrete-event engine; 0 or 1 = serial); results are identical for any -pdes-j")
		seed        = flag.Uint64("seed", 1, "base RNG seed")
		jitter      = flag.Float64("jitter", 0.004, "relative std of per-frame MD compute time")
		noise       = flag.Bool("lustre-noise", true, "background interference on Lustre OSTs")
		real        = flag.Bool("real-frames", false, "encode/verify genuine frame payloads")
		profiles    = flag.Bool("profiles", false, "print the ensembled Thicket call trees")
		saveDir     = flag.String("save-profiles", "", "write per-process Caliper profiles (JSON) into this directory for cmd/thicketql")
		tracePath   = flag.String("trace", "", "write a per-event execution timeline to this file")
	)
	flag.Parse()

	backend, err := repro.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	var model repro.Model
	if *atoms > 0 || *stepsPerSec > 0 {
		model, err = repro.CustomModel(fmt.Sprintf("custom-%d", *atoms), *atoms, *stepsPerSec, *stride)
	} else {
		model, err = repro.ModelByName(*modelName)
	}
	if err != nil {
		fatal(err)
	}
	cfg := repro.Config{
		Backend:       backend,
		Model:         model,
		Pairs:         *pairs,
		Frames:        *frames,
		Stride:        *stride,
		SingleNode:    *singleNode,
		Seed:          *seed,
		ComputeJitter: *jitter,
		LustreNoise:   *noise,
		RealFrames:    *real,
		ShardWorkers:  *pdesJ,
		KeepProfiles:  *profiles || *saveDir != "",
	}
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer tf.Close()
		cfg.Trace = tf
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	fmt.Printf("config: %s\n", cfg.Label())
	fmt.Printf("frame size: %d bytes, frequency: %v, nodes: %d\n",
		model.FrameBytes(), cfg.Frequency(), cfg.ComputeNodes())

	start := time.Now()
	results, err := repro.RepeatWorkers(cfg, *reps, *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ran %d repetition(s) in %.2fs\n", *reps, time.Since(start).Seconds())
	agg := repro.Aggregated(results)
	fmt.Printf("\n%-24s %-14s %-14s\n", "", "mean", "std")
	printLine := func(name string, s stats.Summary) {
		fmt.Printf("%-24s %-14s %-14s\n", name, stats.FormatSeconds(s.Mean), stats.FormatSeconds(s.Std))
	}
	printLine("producer data movement", agg.ProdMovement)
	printLine("producer idle", agg.ProdIdle)
	printLine("consumer data movement", agg.ConsMovement)
	printLine("consumer idle", agg.ConsIdle)
	printLine("makespan", agg.Makespan)
	fmt.Printf("\nproduction total: %s   consumption total: %s\n",
		stats.FormatSeconds(agg.ProdTotalMean()), stats.FormatSeconds(agg.ConsTotalMean()))

	if *profiles {
		fmt.Println("\n--- producer call tree (ensembled) ---")
		thicket.FromProfiles(results[len(results)-1].ProducerProfiles).Render(os.Stdout)
		fmt.Println("\n--- consumer call tree (ensembled) ---")
		thicket.FromProfiles(results[len(results)-1].ConsumerProfiles).Render(os.Stdout)
	}

	if *saveDir != "" {
		if err := saveProfiles(*saveDir, results); err != nil {
			fatal(err)
		}
		fmt.Printf("\nprofiles written to %s (analyze with cmd/thicketql)\n", *saveDir)
	}
}

// saveProfiles writes every repetition's per-process profiles as JSON
// files named rep<k>-<proc>.json.
func saveProfiles(dir string, results []*repro.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for rep, res := range results {
		all := append(append([]*caliper.Profile(nil), res.ProducerProfiles...), res.ConsumerProfiles...)
		for _, prof := range all {
			f, err := os.Create(fmt.Sprintf("%s/rep%d-%s.json", dir, rep, prof.Proc))
			if err != nil {
				return err
			}
			err = prof.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdworkflow:", err)
	os.Exit(1)
}
