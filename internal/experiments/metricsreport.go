package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// MetricsCollector gathers the sampled metrics registries of metered
// repetitions across an experiment sweep. It keeps every sampled run
// verbatim for the CSV / Prometheus exporters and folds each run's
// dashboard-marked series into the end-of-run ASCII utilization dashboard:
// one row per resource with a sparkline of its activity over virtual time,
// mean/peak/p99 columns, and a regime-shift column driven by
// analytics.ChangeDetector — the virtual time at which the resource's
// utilization regime changed, i.e. when the paper's idle-time pathology
// begins.
//
// Pass one through Options.Metrics to enable sampling: each experiment
// meters one repetition per configuration (sampling is observation-only,
// so measurements are unchanged) and the driver drains the dashboard rows
// into a report after each experiment.
type MetricsCollector struct {
	// Interval is the virtual sampling period (0 = 250ms default).
	Interval time.Duration
	// Runs holds every sampled run in collection order, ready for
	// metrics.WriteCSV / metrics.WriteProm.
	Runs []metrics.Run

	scope string
	rows  [][]string
}

// NewMetricsCollector returns an empty collector with the default interval.
func NewMetricsCollector() *MetricsCollector { return &MetricsCollector{} }

// SampleInterval returns the virtual sampling period runs should use.
func (c *MetricsCollector) SampleInterval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 250 * time.Millisecond
}

// SetScope prefixes subsequently added run labels with an experiment id.
// Different experiments can produce identical configuration labels (fig6
// and fig7 sweep overlapping ensembles), and the Prometheus snapshot keys
// series by run label — the scope keeps those label sets distinct.
// Nil-safe, like Drain, so drivers can call it unconditionally.
func (c *MetricsCollector) SetScope(id string) {
	if c != nil {
		c.scope = id
	}
}

// dashboardCols is the column set of the drained utilization dashboard.
// activity is a virtual-time sparkline (left = run start, right = run end);
// shift@ is the virtual time of the first detected utilization regime
// shift, or "-" when the series stays in one regime.
var dashboardCols = []string{"config", "resource", "activity", "mean", "peak", "p99", "shift@"}

// Add records every result in the batch that carries sampled metrics: one
// exporter run each, plus one dashboard row per dashboard-marked series.
// Results without samples (unmetered repetitions, runs killed by an
// injected fault) are skipped.
func (c *MetricsCollector) Add(label string, results []*core.Result) {
	if c.scope != "" {
		label = c.scope + " " + label
	}
	for _, res := range results {
		if res == nil || res.Metrics.Len() == 0 {
			continue
		}
		c.Runs = append(c.Runs, metrics.Run{Label: label, Reg: res.Metrics})
		times := res.Metrics.Times()
		for _, s := range res.Metrics.Series() {
			if s.Dash {
				c.rows = append(c.rows, dashboardRow(label, s, times))
			}
		}
	}
}

// dashboardRow renders one resource's sampled series as a dashboard row.
func dashboardRow(label string, s *metrics.Series, times []time.Duration) []string {
	sum := stats.Summarize(s.Samples)
	sorted := append([]float64(nil), s.Samples...)
	sort.Float64s(sorted)
	p99 := stats.Percentile(sorted, 99)

	// Regime-shift detection over the sampled series: the first sample
	// whose value departs the running distribution by more than 3 standard
	// deviations (or any departure from a zero-variance history) marks the
	// virtual time the resource's utilization regime changed.
	shift := "-"
	det := analytics.ChangeDetector{Threshold: 3, MinSample: 8}
	for i, v := range s.Samples {
		if det.Observe(v) {
			shift = stats.FormatSeconds(times[i].Seconds())
			break
		}
	}

	return []string{
		label, s.Name, metrics.Sparkline(s.Samples, 24),
		fmtG(sum.Mean), fmtG(sum.Max), fmtG(p99), shift,
	}
}

// fmtG renders a dashboard value compactly with fixed precision.
func fmtG(v float64) string { return fmt.Sprintf("%.3g", v) }

// MetricsStream is the bounded-memory counterpart of MetricsCollector:
// instead of retaining every sampled registry for end-of-sweep export, each
// metered repetition streams its samples straight into Sink as CSV rows the
// moment the sampler fires. The bytes written are identical to buffered
// collection followed by metrics.WriteCSV over the same runs; what is lost
// is everything that needs the retained sample vectors (the utilization
// dashboard, the Prometheus snapshot). Use it for large-N sweeps where
// holding every sample vector would dominate host memory.
//
// Pass one through Options.MetricsStream (mutually exclusive with
// Options.Metrics); the driver sets the experiment scope before each
// experiment so run labels match buffered collection.
type MetricsStream struct {
	// Sink receives one CSV block per metered run.
	Sink *metrics.CSVSink
	// Interval is the virtual sampling period (0 = 250ms default).
	Interval time.Duration

	scope string
}

// SampleInterval returns the virtual sampling period runs should use.
func (c *MetricsStream) SampleInterval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 250 * time.Millisecond
}

// SetScope prefixes subsequent run labels with an experiment id, mirroring
// MetricsCollector.SetScope. Nil-safe.
func (c *MetricsStream) SetScope(id string) {
	if c != nil {
		c.scope = id
	}
}

// runLabel renders the scoped run label a metered run writes in its CSV
// header — identical to the label MetricsCollector.Add would record.
func (c *MetricsStream) runLabel(label string) string {
	if c.scope != "" {
		return c.scope + " " + label
	}
	return label
}

// Drain returns the dashboard rows accumulated since the last call as a
// report, or nil if no sampled run contributed. The pending rows are
// cleared; the exporter runs are kept.
func (c *MetricsCollector) Drain(id string) *Report {
	if c == nil || len(c.rows) == 0 {
		return nil
	}
	r := &Report{
		ID:      id + "-metrics",
		Title:   "sampled resource utilization (virtual-time dashboard, regime shifts via change detection)",
		Columns: dashboardCols,
		Rows:    c.rows,
	}
	c.rows = nil
	return r
}
