package vfs

import "fmt"

// Payload is an immutable handle on file content. It is the unit of data
// movement across the simulated stack: producers hand one to WriteFile,
// backends store it, brokers forward it, and consumers get the same handle
// back — one underlying buffer shared by reference at every hop, never
// copied.
//
// Ownership rules (see DESIGN.md §3c): the creator must not mutate the
// byte slice after wrapping it, and readers must treat Bytes as read-only.
// Range updates go through SplicePayload, which is copy-on-write, so
// aliased readers are always safe.
//
// A payload may also be size-only: it models content of a given size
// without backing bytes, which is how parameter sweeps (RealFrames=false)
// move "frames" through the full data path while the host allocates
// nothing per frame. Cost models depend only on Size, so a size-only run
// is virtual-time-identical to a byte-backed one.
type Payload struct {
	data     []byte
	size     int64
	sizeOnly bool
}

// BytesPayload wraps b (which may be nil for an empty file) as an immutable
// payload. The caller gives up write access to b.
func BytesPayload(b []byte) Payload {
	return Payload{data: b, size: int64(len(b))}
}

// SizeOnly returns a payload descriptor of n bytes with no backing buffer.
func SizeOnly(n int64) Payload {
	if n < 0 {
		panic(fmt.Sprintf("vfs: negative payload size %d", n))
	}
	return Payload{size: n, sizeOnly: true}
}

// Size returns the content size in bytes.
func (pl Payload) Size() int64 { return pl.size }

// HasBytes reports whether the payload carries real content (as opposed to
// a size-only descriptor).
func (pl Payload) HasBytes() bool { return !pl.sizeOnly }

// Bytes returns the shared underlying buffer (nil for size-only payloads).
// Callers must not mutate it; every holder of this payload aliases it.
func (pl Payload) Bytes() []byte { return pl.data }

// SplicePayload is the shared copy-on-write range-update helper backends
// use to implement WriteAt without mutating aliased payloads: it returns a
// new payload with data spliced over [off, off+data.Size()). If either
// side is size-only the result is size-only (content cannot be
// reconstructed), preserving only the resulting size.
func SplicePayload(cur Payload, off int64, data Payload) Payload {
	end := off + data.Size()
	if cur.Size() > end {
		end = cur.Size()
	}
	if !cur.HasBytes() || !data.HasBytes() {
		return SizeOnly(end)
	}
	out := make([]byte, end)
	copy(out, cur.Bytes())
	copy(out[off:], data.Bytes())
	return BytesPayload(out)
}
