// Ensemble sweeps the ensemble size (producer-consumer pairs) for DYAD and
// Lustre on a growing simulated cluster — the shape of the paper's
// Figure 7 — from the public API, and prints the scaling series with the
// consumption speedup per size.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/stats"
)

func main() {
	jac, err := repro.ModelByName("JAC")
	if err != nil {
		log.Fatal(err)
	}
	const frames, reps = 64, 3

	fmt.Println("ensemble-size scaling, JAC, stride 880 (Figure 7 shape)")
	fmt.Printf("%-6s %-6s %-14s %-14s %-14s %-14s %-10s\n",
		"pairs", "nodes", "DYAD prod", "Lustre prod", "DYAD cons", "Lustre cons", "speedup")

	for _, pairs := range []int{8, 16, 32, 64} {
		var agg [2]repro.Aggregate
		for i, backend := range []repro.Backend{repro.DYAD, repro.Lustre} {
			cfg := repro.Config{
				Backend:       backend,
				Model:         jac,
				Pairs:         pairs,
				Frames:        frames,
				Seed:          11,
				ComputeJitter: 0.004,
				LustreNoise:   backend == repro.Lustre,
			}
			results, err := repro.Repeat(cfg, reps)
			if err != nil {
				log.Fatal(err)
			}
			agg[i] = repro.Aggregated(results)
		}
		cfg := repro.Config{Backend: repro.Lustre, Model: jac, Pairs: pairs, Frames: frames}
		fmt.Printf("%-6d %-6d %-14s %-14s %-14s %-14s %-10s\n",
			pairs, cfg.ComputeNodes(),
			stats.FormatSeconds(agg[0].ProdTotalMean()),
			stats.FormatSeconds(agg[1].ProdTotalMean()),
			stats.FormatSeconds(agg[0].ConsTotalMean()),
			stats.FormatSeconds(agg[1].ConsTotalMean()),
			stats.FormatRatio(agg[1].ConsTotalMean()/agg[0].ConsTotalMean()))
	}
	fmt.Println("\nproduction stays flat with ensemble size for both systems;")
	fmt.Println("DYAD's consumption advantage holds across the sweep (Finding 3).")
}
