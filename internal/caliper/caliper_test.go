package caliper

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic tests.
type fakeClock struct{ now time.Duration }

func (f *fakeClock) tick(d time.Duration) { f.now += d }
func (f *fakeClock) clock() time.Duration { return f.now }

func TestNestedRegionsAccumulate(t *testing.T) {
	fc := &fakeClock{}
	a := New("p0", fc.clock)
	a.Begin("outer")
	fc.tick(10 * time.Millisecond)
	a.Begin("inner")
	fc.tick(5 * time.Millisecond)
	a.End("inner")
	fc.tick(1 * time.Millisecond)
	a.End("outer")

	p := a.Profile()
	outer := p.Root.Find("outer")
	inner := p.Root.Find("inner")
	if outer == nil || inner == nil {
		t.Fatal("regions missing from profile")
	}
	if outer.Total != 16*time.Millisecond {
		t.Fatalf("outer total %v, want 16ms", outer.Total)
	}
	if inner.Total != 5*time.Millisecond {
		t.Fatalf("inner total %v, want 5ms", inner.Total)
	}
	if outer.Exclusive() != 11*time.Millisecond {
		t.Fatalf("outer exclusive %v, want 11ms", outer.Exclusive())
	}
}

func TestRepeatVisitsMerge(t *testing.T) {
	fc := &fakeClock{}
	a := New("p0", fc.clock)
	for i := 0; i < 3; i++ {
		a.Begin("r")
		fc.tick(2 * time.Millisecond)
		a.End("r")
	}
	p := a.Profile()
	r := p.Root.Find("r")
	if r.Visits != 3 {
		t.Fatalf("visits %d, want 3", r.Visits)
	}
	if r.Total != 6*time.Millisecond {
		t.Fatalf("total %v, want 6ms", r.Total)
	}
}

func TestSiblingsKeptSeparate(t *testing.T) {
	fc := &fakeClock{}
	a := New("p0", fc.clock)
	a.Begin("parent")
	a.Begin("x")
	fc.tick(time.Millisecond)
	a.End("x")
	a.Begin("y")
	fc.tick(2 * time.Millisecond)
	a.End("y")
	a.End("parent")
	p := a.Profile()
	parent := p.Root.Find("parent")
	if len(parent.Children) != 2 {
		t.Fatalf("children %d, want 2", len(parent.Children))
	}
	if p.Root.Find("x").Total != time.Millisecond || p.Root.Find("y").Total != 2*time.Millisecond {
		t.Fatal("sibling totals wrong")
	}
}

func TestMismatchedEndPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched End did not panic")
		}
	}()
	fc := &fakeClock{}
	a := New("p0", fc.clock)
	a.Begin("a")
	a.End("b")
}

func TestProfileWithOpenRegionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Profile with open region did not panic")
		}
	}()
	fc := &fakeClock{}
	a := New("p0", fc.clock)
	a.Begin("a")
	a.Profile()
}

func TestNilAnnotatorIsInert(t *testing.T) {
	var a *Annotator
	a.Begin("x")
	a.End("x")
	done := a.Region("y")
	done()
	p := a.Profile()
	if p == nil || p.Root == nil {
		t.Fatal("nil annotator must still produce an empty profile")
	}
}

func TestTotalOfSumsAcrossPaths(t *testing.T) {
	fc := &fakeClock{}
	a := New("p0", fc.clock)
	a.Begin("a")
	a.Begin("io")
	fc.tick(time.Millisecond)
	a.End("io")
	a.End("a")
	a.Begin("b")
	a.Begin("io")
	fc.tick(3 * time.Millisecond)
	a.End("io")
	a.End("b")
	p := a.Profile()
	if got := p.TotalOf("io"); got != 4*time.Millisecond {
		t.Fatalf("TotalOf(io) = %v, want 4ms", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	fc := &fakeClock{}
	a := New("p0", fc.clock)
	done := a.Region("r")
	fc.tick(7 * time.Millisecond)
	done()
	p := a.Profile()

	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Proc != "p0" || got.Root.Find("r").Total != 7*time.Millisecond {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestRenderShowsTree(t *testing.T) {
	fc := &fakeClock{}
	a := New("p0", fc.clock)
	a.Begin("dyad_consume")
	a.Begin("dyad_fetch")
	fc.tick(time.Millisecond)
	a.End("dyad_fetch")
	a.End("dyad_consume")
	var buf bytes.Buffer
	a.Profile().Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "dyad_consume") || !strings.Contains(out, "dyad_fetch") {
		t.Fatalf("render missing regions:\n%s", out)
	}
}

func TestWalkPaths(t *testing.T) {
	fc := &fakeClock{}
	a := New("p0", fc.clock)
	a.Begin("a")
	a.Begin("b")
	a.End("b")
	a.End("a")
	var paths []string
	a.Profile().Root.Walk(func(path string, _ *Node) { paths = append(paths, path) })
	want := map[string]bool{"/p0": true, "/p0/a": true, "/p0/a/b": true}
	for _, p := range paths {
		if !want[p] {
			t.Fatalf("unexpected path %q in %v", p, paths)
		}
	}
	if len(paths) != 3 {
		t.Fatalf("paths %v", paths)
	}
}

// Regression: the package contract promises the zero value is as inert as
// the nil pointer. (&Annotator{}).Begin used to nil-deref on the nil root.
func TestZeroValueAnnotatorInert(t *testing.T) {
	var a Annotator
	a.Begin("x")
	a.End("x")
	a.End("unopened") // inert: no open-region bookkeeping to violate
	done := a.Region("y")
	done()
	p := a.Profile()
	if p == nil || p.Root == nil {
		t.Fatal("zero-value annotator must still produce an empty profile")
	}
	if len(p.Root.Children) != 0 {
		t.Fatalf("zero-value annotator recorded regions: %+v", p.Root.Children)
	}
	if got := p.TotalOf("x"); got != 0 {
		t.Fatalf("zero-value annotator accumulated time: %v", got)
	}
}

// Regression: TotalOf must not double-count a same-named region nested
// inside another — the inner visit's time is already part of the outer
// node's inclusive total. A retry loop that re-enters "io" inside "io"
// used to inflate TotalOf("io") by the inner time.
func TestTotalOfCountsOutermostOnly(t *testing.T) {
	fc := &fakeClock{}
	a := New("p0", fc.clock)
	a.Begin("io")
	fc.tick(2 * time.Millisecond)
	a.Begin("io") // nested same-named region (e.g. a retry)
	fc.tick(4 * time.Millisecond)
	a.End("io")
	fc.tick(1 * time.Millisecond)
	a.End("io")
	p := a.Profile()
	// Outer inclusive total is 7ms and already contains the nested 4ms.
	if got := p.TotalOf("io"); got != 7*time.Millisecond {
		t.Fatalf("TotalOf(io) = %v, want 7ms (outermost only, no double count)", got)
	}
	// Disjoint occurrences under different parents must still both count.
	a2 := New("p1", fc.clock)
	for _, parent := range []string{"a", "b"} {
		a2.Begin(parent)
		a2.Begin("io")
		fc.tick(3 * time.Millisecond)
		a2.End("io")
		a2.End(parent)
	}
	if got := a2.Profile().TotalOf("io"); got != 6*time.Millisecond {
		t.Fatalf("TotalOf(io) across paths = %v, want 6ms", got)
	}
}

// Regression: Render must be deterministic when children tie on total.
// renderNode used to use sort.Slice, whose pdqsort reorders equal elements
// once a child list is big enough, so two renders of identical profiles
// could disagree. Ties must keep first-visit order.
func TestRenderStableOnTies(t *testing.T) {
	fc := &fakeClock{}
	a := New("p0", fc.clock)
	a.Begin("parent")
	// Interleave two tied groups (2ms "hi", 1ms "lo") so the sort has real
	// work to do; a non-stable sort scrambles within each tied group.
	var hi, lo []string
	for i := 0; i < 16; i++ {
		for _, g := range []struct {
			prefix string
			cost   time.Duration
		}{{"hi", 2 * time.Millisecond}, {"lo", time.Millisecond}} {
			name := fmt.Sprintf("%s%02d", g.prefix, i)
			a.Begin(name)
			fc.tick(g.cost)
			a.End(name)
		}
		hi = append(hi, fmt.Sprintf("hi%02d", i))
		lo = append(lo, fmt.Sprintf("lo%02d", i))
	}
	want := append(append([]string(nil), hi...), lo...)
	a.End("parent")
	var buf bytes.Buffer
	a.Profile().Render(&buf)
	var got []string
	for _, line := range strings.Split(buf.String(), "\n") {
		f := strings.Fields(line)
		if len(f) > 0 && (strings.HasPrefix(f[0], "hi") || strings.HasPrefix(f[0], "lo")) {
			got = append(got, f[0])
		}
	}
	if len(got) != len(want) {
		t.Fatalf("rendered %d tied children, want %d:\n%s", len(got), len(want), buf.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tied children reordered: position %d is %s, want %s (full order %v)", i, got[i], want[i], got)
		}
	}
}
