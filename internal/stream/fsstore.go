package stream

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// FSStore is the on-disk counterpart of Store: producers write payloads as
// real files in a staging directory (atomic rename publish), and consumers
// block until the file appears. It is the degenerate-but-real deployment
// of the DYAD contract on a shared filesystem — the same pattern
// traditional workflows implement by hand with filesystem polling (§III
// of the paper), packaged behind the Store API so pipelines can switch
// between in-memory and on-disk staging without code changes.
type FSStore struct {
	dir  string
	poll time.Duration
}

// NewFSStore creates a store rooted at dir (created if missing). poll is
// the consumer's polling interval; <= 0 selects 2 ms.
func NewFSStore(dir string, poll time.Duration) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stream: fsstore root: %w", err)
	}
	if poll <= 0 {
		poll = 2 * time.Millisecond
	}
	return &FSStore{dir: dir, poll: poll}, nil
}

// Dir returns the staging root.
func (s *FSStore) Dir() string { return s.dir }

// realPath maps a logical path ("/flow/f0") to a file under the root.
func (s *FSStore) realPath(path string) string {
	clean := strings.TrimLeft(filepath.Clean("/"+path), "/")
	return filepath.Join(s.dir, filepath.FromSlash(clean))
}

// Produce atomically publishes data under path: write to a temporary name
// in the same directory, then rename. Consumers never observe partial
// payloads.
func (s *FSStore) Produce(path string, data []byte) error {
	dst := s.realPath(path)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("stream: produce %s: %w", path, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".staging-*")
	if err != nil {
		return fmt.Errorf("stream: produce %s: %w", path, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("stream: produce %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("stream: produce %s: %w", path, err)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("stream: produce %s: %w", path, err)
	}
	return nil
}

// Consume blocks (by polling) until path has been published, then returns
// its contents. The context bounds the wait.
func (s *FSStore) Consume(ctx context.Context, path string) ([]byte, error) {
	dst := s.realPath(path)
	ticker := time.NewTicker(s.poll)
	defer ticker.Stop()
	for {
		data, err := os.ReadFile(dst)
		if err == nil {
			return data, nil
		}
		if !os.IsNotExist(err) {
			return nil, fmt.Errorf("stream: consume %s: %w", path, err)
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return nil, fmt.Errorf("stream: consume %s: %w", path, ctx.Err())
		}
	}
}

// TryConsume returns the payload if already published.
func (s *FSStore) TryConsume(path string) ([]byte, bool) {
	data, err := os.ReadFile(s.realPath(path))
	return data, err == nil
}

// Discard removes a consumed payload.
func (s *FSStore) Discard(path string) error {
	err := os.Remove(s.realPath(path))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("stream: discard %s: %w", path, err)
	}
	return nil
}
