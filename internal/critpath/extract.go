package critpath

import (
	"sort"

	"repro/internal/trace"
)

// BlameRow is one blame bucket on the critical path: total gating time
// attributed to a labeled region, split by whether the path was executing
// (run) or sitting in an externally-released wait under that label.
type BlameRow struct {
	Class     trace.Class
	Component string
	Name      string
	Kind      string // "run" or "wait"
	Total     Time
	Steps     int
}

// WaitRow is the gated-time view: how long the critical path sat inside
// waits of this label before a proc-sourced release redirected the walk to
// the releaser. The releaser's work carries the blame (BlameRow); the wait
// row names the synchronization point it flowed through.
type WaitRow struct {
	Class     trace.Class
	Component string
	Name      string
	Gated     Time
	Count     int
}

// CritPath is the extracted critical path of one run.
type CritPath struct {
	// Makespan is the completion time of the last non-background proc —
	// the workflow makespan the path explains. Attributed + Untracked
	// always equals Makespan: the walk tiles [0, Makespan] exactly.
	Makespan   Time
	Attributed Time
	Untracked  Time
	Rows       []BlameRow // sorted by Total descending
	Waits      []WaitRow  // sorted by Gated descending
	ByClass    map[trace.Class]Time
	Edges      int // proc-sourced release edges traversed
	Steps      int // total walk steps

	// Near-critical slack over recorded data dependencies: how close each
	// produced token came to gating its consumer (0 slack = the consumer
	// was waiting when the token appeared).
	SlackCount int64
	SlackHist  [trace.HistBuckets]int64
	SlackMin   Time
	SlackMax   Time
}

type blameKey struct {
	label int32
	kind  Kind
}

// findSeg returns the index of the segment the proc occupied just before
// time t: the last segment with Start < t. Strictly before — a proc that
// woke another and then blocked at the same timestamp has a wait segment
// starting exactly at t whose own release lies in the future; landing on
// it would move the walk forward in time. Returns -1 when the timeline
// starts at or after t (or is empty).
func findSeg(segs []Segment, t Time) int {
	lo, hi := 0, len(segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if segs[mid].Start < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// Extract walks the graph backward from run completion and returns the
// gating chain's blame totals. The walk starts at the last-ending segment
// of any non-background proc and repeatedly asks "what was this proc doing
// just before t, and if it was waiting, who released it?" — attributing
// every instant of [0, makespan] to exactly one bucket.
func Extract(g *Graph) *CritPath {
	cp := &CritPath{ByClass: make(map[trace.Class]Time)}
	for _, d := range g.Deps {
		slack := d.ConsumedAt - d.ProducedAt
		cp.SlackHist[trace.HistBucket(slack)]++
		if cp.SlackCount == 0 || slack < cp.SlackMin {
			cp.SlackMin = slack
		}
		if slack > cp.SlackMax {
			cp.SlackMax = slack
		}
		cp.SlackCount++
	}

	// Root: the non-background proc whose timeline ends last (first proc
	// index on ties, which the deterministic proc order fixes).
	proc, si := -1, -1
	var rootEnd Time
	totalSegs := 0
	for i := range g.Procs {
		pt := &g.Procs[i]
		totalSegs += len(pt.Segments)
		if pt.Background || len(pt.Segments) == 0 {
			continue
		}
		if end := pt.Segments[len(pt.Segments)-1].End; proc < 0 || end > rootEnd {
			proc, si, rootEnd = i, len(pt.Segments)-1, end
		}
	}
	if proc < 0 {
		return cp
	}
	cp.Makespan = rootEnd

	blame := make(map[blameKey]*BlameRow)
	gated := make(map[int32]*WaitRow)
	addBlame := func(label int32, kind Kind, d Time) {
		if d <= 0 {
			return
		}
		if label < 0 {
			cp.Untracked += d
			return
		}
		k := blameKey{label, kind}
		row := blame[k]
		if row == nil {
			l := g.Labels[label]
			row = &BlameRow{Class: l.Class, Component: l.Component, Name: l.Name, Kind: kind.String()}
			blame[k] = row
		}
		row.Total += d
		row.Steps++
		cp.Attributed += d
		cp.ByClass[row.Class] += d
	}

	t := rootEnd
	guard := totalSegs + len(g.Edges) + 16
	for steps := 0; steps < guard && t > 0; steps++ {
		cp.Steps++
		seg := g.Procs[proc].Segments[si]
		if seg.End < t {
			// Gap between consecutive timeline entries (never happens for
			// tiled recordings; defensive for hand-built graphs).
			cp.Untracked += t - seg.End
			t = seg.End
			if t <= 0 {
				break
			}
		}
		if seg.Kind == Wait && seg.Edge >= 0 && g.Edges[seg.Edge].From >= 0 && g.Edges[seg.Edge].At <= t {
			// The monotonicity guard (At <= t) keeps the walk moving backward
			// if it ever enters a wait's interior before its release fired;
			// such a wait is blamed like a run segment below.
			e := g.Edges[seg.Edge]
			// Wake-to-resume latency stays on the wait's label; the time
			// before the release is the releaser's to explain.
			addBlame(seg.Label, Wait, t-e.At)
			if seg.Label >= 0 {
				w := gated[seg.Label]
				if w == nil {
					l := g.Labels[seg.Label]
					w = &WaitRow{Class: l.Class, Component: l.Component, Name: l.Name}
					gated[seg.Label] = w
				}
				w.Gated += t - seg.Start
				w.Count++
			}
			cp.Edges++
			t = e.At
			proc = int(e.From)
			si = findSeg(g.Procs[proc].Segments, t)
			if si < 0 {
				cp.Untracked += t
				t = 0
			}
			continue
		}
		// Run segment, or a wait released by a timer: the proc's own
		// interval [Start, t] is the gating activity.
		addBlame(seg.Label, seg.Kind, t-seg.Start)
		t = seg.Start
		si--
		if si >= 0 || t <= 0 {
			continue
		}
		// Walked off the proc's first segment: follow the spawn edge.
		parent := g.Procs[proc].Parent
		if parent < 0 {
			cp.Untracked += t
			t = 0
			continue
		}
		proc = int(parent)
		si = findSeg(g.Procs[proc].Segments, t)
		if si < 0 {
			cp.Untracked += t
			t = 0
		}
	}
	cp.Untracked += t // guard-exhausted remainder, 0 on normal walks

	for _, row := range blame {
		cp.Rows = append(cp.Rows, *row)
	}
	// The tie-break covers the full unique key (class, component, name,
	// kind): rows come out of a map, so a partial order would leak map
	// iteration order into the report.
	sort.Slice(cp.Rows, func(i, j int) bool {
		a, b := cp.Rows[i], cp.Rows[j]
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Kind < b.Kind
	})
	for _, w := range gated {
		cp.Waits = append(cp.Waits, *w)
	}
	sort.Slice(cp.Waits, func(i, j int) bool {
		a, b := cp.Waits[i], cp.Waits[j]
		if a.Gated != b.Gated {
			return a.Gated > b.Gated
		}
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Class < b.Class
	})
	return cp
}
