package xfs

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// handle is a byte-range view of one XFS file.
type handle struct {
	fs     *FS
	path   string
	closed bool
}

// Open implements vfs.HandleFS.
func (f *FS) Open(p *sim.Proc, path string) (vfs.Handle, error) {
	p.Sleep(f.params.MetaLatency)
	path = vfs.Clean(path)
	if _, ok := f.tree.Get(path); !ok {
		return nil, vfs.PathError("open", path, vfs.ErrNotExist)
	}
	return &handle{fs: f, path: path}, nil
}

// CreateFile implements vfs.HandleFS: creates/truncates path.
func (f *FS) CreateFile(p *sim.Proc, path string) (vfs.Handle, error) {
	p.Sleep(f.params.MetaLatency)
	// Inode create/truncate journal.
	if _, err := f.node.SSD.Write(p, f.params.JournalBytes); err != nil {
		return nil, vfs.PathError("create", path, err)
	}
	path = vfs.Clean(path)
	f.tree.Put(path, vfs.Payload{})
	return &handle{fs: f, path: path}, nil
}

func (h *handle) Path() string { return h.path }

func (h *handle) Size() int64 {
	sz, _ := h.fs.tree.Size(h.path)
	return sz
}

func (h *handle) check(p *sim.Proc) error {
	if h.closed {
		return vfs.PathError("xfs", h.path, vfs.ErrClosed)
	}
	p.Sleep(h.fs.params.MetaLatency)
	return nil
}

// ReadAt charges the device for the range only.
func (h *handle) ReadAt(p *sim.Proc, off, n int64) ([]byte, error) {
	if err := h.check(p); err != nil {
		return nil, err
	}
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("xfs: %s: negative range (%d, %d): %w", h.path, off, n, vfs.ErrInvalidRange)
	}
	pl, ok := h.fs.tree.Get(h.path)
	if !ok {
		return nil, vfs.PathError("read", h.path, vfs.ErrNotExist)
	}
	if off+n > pl.Size() {
		return nil, fmt.Errorf("xfs: %s: read [%d,%d) past EOF %d: %w", h.path, off, off+n, pl.Size(), vfs.ErrInvalidRange)
	}
	if !pl.HasBytes() {
		return nil, vfs.PathError("read", h.path, vfs.ErrSizeOnly)
	}
	if _, err := h.fs.node.SSD.Read(p, n); err != nil {
		return nil, vfs.PathError("read", h.path, err)
	}
	return pl.Bytes()[off : off+n], nil
}

// WriteAt charges the device for the range plus a journal commit.
func (h *handle) WriteAt(p *sim.Proc, off int64, data []byte) error {
	if err := h.check(p); err != nil {
		return err
	}
	cur, ok := h.fs.tree.Get(h.path)
	if !ok {
		return vfs.PathError("write", h.path, vfs.ErrNotExist)
	}
	if off < 0 || off > cur.Size() {
		return fmt.Errorf("xfs: %s: write at %d would leave a hole (size %d): %w", h.path, off, cur.Size(), vfs.ErrInvalidRange)
	}
	if _, err := h.fs.node.SSD.Write(p, h.fs.params.JournalBytes); err != nil {
		return vfs.PathError("write", h.path, err)
	}
	if _, err := h.fs.node.SSD.Write(p, int64(len(data))); err != nil {
		return vfs.PathError("write", h.path, err)
	}
	h.fs.tree.Put(h.path, vfs.SplicePayload(cur, off, vfs.BytesPayload(data)))
	return nil
}

// Append adds data at EOF.
func (h *handle) Append(p *sim.Proc, data []byte) error {
	return h.WriteAt(p, h.Size(), data)
}

// Close releases the handle (metadata cost only).
func (h *handle) Close(p *sim.Proc) error {
	if h.closed {
		return vfs.PathError("close", h.path, vfs.ErrClosed)
	}
	p.Sleep(h.fs.params.MetaLatency)
	h.closed = true
	return nil
}

var _ vfs.HandleFS = (*FS)(nil)
