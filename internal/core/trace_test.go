package core

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// The execution trace must show, for every pair and frame, consumption
// strictly after production — the fundamental causality invariant of the
// data-movement study — on every backend.
func TestTraceOrderingInvariant(t *testing.T) {
	m := tinyModel()
	for _, b := range []Backend{DYAD, XFS, Lustre} {
		cfg := Config{Backend: b, Model: m, Frames: 8, Pairs: 2, Seed: 7}
		if b == XFS {
			cfg.SingleNode = true
		}
		var buf bytes.Buffer
		cfg.Trace = &buf
		if _, err := Run(cfg); err != nil {
			t.Fatalf("%s: %v", b, err)
		}

		produced := map[string]float64{} // "pair/frame" -> time
		sc := bufio.NewScanner(&buf)
		lines := 0
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) < 5 {
				continue
			}
			lines++
			ts, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				t.Fatalf("%s: bad trace timestamp %q", b, fields[0])
			}
			proc, verb, frameNo := fields[1], fields[2], fields[4]
			pair := strings.TrimPrefix(strings.TrimPrefix(proc, "producer"), "consumer")
			key := pair + "/" + frameNo
			switch verb {
			case "produced":
				produced[key] = ts
			case "consumed":
				pt, ok := produced[key]
				if !ok {
					t.Fatalf("%s: frame %s consumed with no production event", b, key)
				}
				if ts <= pt {
					t.Fatalf("%s: frame %s consumed at %v, produced at %v", b, key, ts, pt)
				}
			}
		}
		wantLines := 2 * cfg.Pairs * cfg.Frames
		if lines != wantLines {
			t.Fatalf("%s: %d trace lines, want %d", b, lines, wantLines)
		}
	}
}

// Trace output is keyed per frame; spot-check the format so external
// consumers can rely on it.
func TestTraceFormat(t *testing.T) {
	m := tinyModel()
	var buf bytes.Buffer
	cfg := Config{Backend: DYAD, Model: m, Frames: 1, Pairs: 1, Seed: 1, Trace: &buf}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"producer000", "consumer000", "produced frame 0", "consumed frame 0",
		fmt.Sprintf("(%d bytes)", m.FrameBytes())} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}
