//go:build !race

package core

// raceEnabled reports whether the race detector is active; allocation-count
// assertions are skipped under it (instrumentation allocates).
const raceEnabled = false
