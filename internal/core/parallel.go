package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel execution layer for workflow runs. Every run is
// a fully self-contained single-threaded simulation — it owns its engine,
// cluster, backend, and RNG streams — so independent runs can execute on
// separate OS threads without any coordination, and a parallel batch is
// byte-identical to a serial one. The paper's evaluation is an ensemble
// study (10 repetitions x many configurations), which makes fanning runs
// across cores the dominant wall-clock win for regenerating it.

// DefaultWorkers is the worker count RunMany uses when workers <= 0: the
// number of OS threads available to the process.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// RunMany executes every configuration through Run, fanning the independent
// runs across workers goroutines (workers <= 0 means DefaultWorkers).
//
// The output slice preserves input order: results[i] is cfgs[i]'s result,
// or nil if that run failed. Unlike a serial loop, a failing run does not
// abort the batch — every run executes, and the returned error joins every
// per-run error (each prefixed with its batch index). Results are
// deterministic: each run owns its engine and RNG streams, so the worker
// count affects only wall-clock time, never measurements.
func RunMany(cfgs []Config, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	if workers <= 1 {
		for i, cfg := range cfgs {
			results[i], errs[i] = runIndexed(i, cfg)
		}
		return results, errors.Join(errs...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				results[i], errs[i] = runIndexed(i, cfgs[i])
			}
		}()
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// runIndexed runs one batch entry, tagging errors with the batch index and
// converting panics into errors so one broken run cannot take down the
// workers of an otherwise healthy batch.
func runIndexed(i int, cfg Config) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("core: run %d (%s): panic: %v", i, cfg.Label(), r)
		}
	}()
	res, err = Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: run %d: %w", i, err)
	}
	return res, nil
}

// RepeatConfigs expands cfg into reps copies with the repetition seed
// schedule (seed + i*golden-ratio increment) — the same schedule Repeat and
// RepeatWorkers use. Callers that need to adjust individual repetitions
// (e.g. enable span tracing on one) can edit the slice before RunMany.
func RepeatConfigs(cfg Config, reps int) []Config {
	cfgs := make([]Config, reps)
	for i := range cfgs {
		cfgs[i] = cfg
		cfgs[i].Seed = cfg.Seed + uint64(i)*0x9e3779b9
	}
	return cfgs
}

// RepeatWorkers runs cfg reps times with distinct seeds, fanning the
// repetitions across workers goroutines (workers <= 0 means
// DefaultWorkers). Seeds and therefore results are identical to serial
// execution for any worker count.
func RepeatWorkers(cfg Config, reps, workers int) ([]*Result, error) {
	if reps < 1 {
		return nil, fmt.Errorf("core: reps %d < 1", reps)
	}
	return RunMany(RepeatConfigs(cfg, reps), workers)
}
