// Package thicket performs the cross-run performance analysis the paper
// does with LLNL's Thicket: it ensembles Caliper call-path profiles from
// many processes and repetitions into a single statistical call tree, and
// offers a small Hatchet-style query language for locating regions
// (e.g. the dyad_fetch / dyad_get_data / explicit_sync analyses of
// Figures 9 and 10).
package thicket

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/caliper"
	"repro/internal/stats"
)

// Node is one call-path node of the ensembled tree, carrying the
// distribution of inclusive time and visit counts across members.
type Node struct {
	Name     string
	Children []*Node

	// Total is the distribution of inclusive seconds across members
	// (members missing the node contribute zero).
	Total stats.Summary
	// Visits is the distribution of visit counts across members.
	Visits stats.Summary

	totals []float64
	visits []float64
}

// MeanDuration returns the node's mean inclusive time.
func (n *Node) MeanDuration() time.Duration {
	return time.Duration(n.Total.Mean * float64(time.Second))
}

// Find returns the first descendant (depth-first, self included) with the
// given name, or nil.
func (n *Node) Find(name string) *Node {
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Walk visits the node and all descendants depth-first.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

func (n *Node) child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	c := &Node{Name: name}
	n.Children = append(n.Children, c)
	return c
}

// Ensemble is a set of profiles merged by call path.
type Ensemble struct {
	root    *Node
	members int
}

// FromProfiles builds an ensemble. Each profile is one member; the
// profiles' own root names (process names) are discarded so that
// same-role processes and repetitions align on call paths.
func FromProfiles(profiles []*caliper.Profile) *Ensemble {
	e := &Ensemble{root: &Node{Name: "workflow"}, members: len(profiles)}
	for idx, p := range profiles {
		for _, top := range p.Root.Children {
			mergeInto(e.root, top, idx)
		}
	}
	// Pad members that never touched a node with zeros, then summarize.
	e.root.Walk(func(n *Node) {
		for len(n.totals) < e.members {
			n.totals = append(n.totals, 0)
			n.visits = append(n.visits, 0)
		}
		n.Total = stats.Summarize(n.totals)
		n.Visits = stats.Summarize(n.visits)
	})
	return e
}

// mergeInto adds caliper node src (and descendants) under dst for member
// idx.
func mergeInto(dst *Node, src *caliper.Node, idx int) {
	n := dst.child(src.Name)
	// Grow the per-member slices up to idx, then accumulate (a member may
	// hit the same path via multiple parents of the same name).
	for len(n.totals) <= idx {
		n.totals = append(n.totals, 0)
		n.visits = append(n.visits, 0)
	}
	n.totals[idx] += src.Total.Seconds()
	n.visits[idx] += float64(src.Visits)
	for _, c := range src.Children {
		mergeInto(n, c, idx)
	}
}

// Members returns the number of profiles ensembled.
func (e *Ensemble) Members() int { return e.members }

// Tree returns the ensembled root.
func (e *Ensemble) Tree() *Node { return e.root }

// Find locates the first node with the given name anywhere in the tree.
func (e *Ensemble) Find(name string) *Node { return e.root.Find(name) }

// MeanOf returns the mean inclusive time of all nodes named name (summed
// per member first, so nested duplicates are not double counted beyond
// their actual occurrence).
func (e *Ensemble) MeanOf(name string) time.Duration {
	var sum float64
	var found bool
	e.root.Walk(func(n *Node) {
		if n.Name == name {
			sum += n.Total.Mean
			found = true
		}
	})
	if !found {
		return 0
	}
	return time.Duration(sum * float64(time.Second))
}

// Render pretty-prints the statistical call tree, heaviest children first,
// in the style the paper shows Thicket trees (mean ± std, visits).
func (e *Ensemble) Render(w io.Writer) {
	renderNode(w, e.root, 0)
}

func renderNode(w io.Writer, n *Node, depth int) {
	fmt.Fprintf(w, "%s%-28s mean=%-12s std=%-12s visits=%.0f\n",
		strings.Repeat("  ", depth), n.Name,
		stats.FormatSeconds(n.Total.Mean), stats.FormatSeconds(n.Total.Std), n.Visits.Mean)
	kids := append([]*Node(nil), n.Children...)
	// Stable sort: ties on mean total keep merge (first-contribution)
	// order — same determinism contract as caliper's renderNode.
	sort.SliceStable(kids, func(i, j int) bool { return kids[i].Total.Mean > kids[j].Total.Mean })
	for _, c := range kids {
		renderNode(w, c, depth+1)
	}
}
