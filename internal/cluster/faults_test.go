package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
)

func TestSSDFailReturnsSentinelAndRepairs(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, testSpec(1))
	ssd := c.Node(0).SSD
	var failErr, repairedErr error
	var failTook time.Duration
	e.Spawn("io", func(p *sim.Proc) {
		ssd.Fail()
		if !ssd.Failed() {
			t.Error("Fail did not mark the device failed")
		}
		t0 := p.Now()
		_, failErr = ssd.Write(p, 1_000_000)
		failTook = p.Now() - t0
		if _, err := ssd.Read(p, 1_000); !errors.Is(err, faults.ErrDeviceFailed) {
			t.Errorf("read on failed device: %v", err)
		}
		ssd.Repair()
		_, repairedErr = ssd.Write(p, 1_000_000)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(failErr, faults.ErrDeviceFailed) {
		t.Fatalf("failed write err = %v, want ErrDeviceFailed", failErr)
	}
	if repairedErr != nil {
		t.Fatalf("repaired device still failing: %v", repairedErr)
	}
	// A failed request costs the fixed latency (the EIO round trip), not the
	// full transfer service.
	if failTook != 10*time.Microsecond {
		t.Fatalf("failed write took %v, want the 10µs latency", failTook)
	}
	if ssd.FailedOps != 2 {
		t.Fatalf("FailedOps = %d, want 2", ssd.FailedOps)
	}
	// Failed operations must not pollute throughput accounting.
	if ssd.Writes != 1 || ssd.BytesWritten != 1_000_000 {
		t.Fatalf("accounting writes=%d bytes=%d, want 1/1000000", ssd.Writes, ssd.BytesWritten)
	}
}

func TestLinkOutageStallsTransfer(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, testSpec(2))
	down := 40 * time.Millisecond
	c.Node(1).FailLinkUntil(down)
	var took time.Duration
	e.Spawn("xfer", func(p *sim.Proc) {
		took = c.Transfer(p, c.Node(0), c.Node(1), 1_000)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if took < down {
		t.Fatalf("transfer took %v, want >= %v (stalled behind the outage)", took, down)
	}
	if c.LinkStalls != 1 {
		t.Fatalf("LinkStalls = %d, want 1", c.LinkStalls)
	}
	if c.LinkStallTime != down {
		t.Fatalf("LinkStallTime = %v, want %v", c.LinkStallTime, down)
	}
}

func TestLinkOutageOverTransfersAreFree(t *testing.T) {
	// After the outage window, transfers must pay nothing extra: the healthy
	// path is a comparison, not a wait.
	e := sim.NewEngine(1)
	c := New(e, testSpec(2))
	c.Node(1).FailLinkUntil(10 * time.Millisecond)
	var during, after time.Duration
	e.Spawn("xfer", func(p *sim.Proc) {
		during = c.Transfer(p, c.Node(0), c.Node(1), 1_000)
		after = c.Transfer(p, c.Node(0), c.Node(1), 1_000)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if after >= during {
		t.Fatalf("post-outage transfer (%v) not faster than stalled one (%v)", after, during)
	}
	if c.LinkStalls != 1 {
		t.Fatalf("LinkStalls = %d, want 1 (only the stalled transfer)", c.LinkStalls)
	}
}

func TestFailLinkUntilExtendsNotShrinks(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, testSpec(2))
	n := c.Node(0)
	n.FailLinkUntil(50 * time.Millisecond)
	n.FailLinkUntil(20 * time.Millisecond) // overlapping shorter outage
	if n.linkDownUntil != 50*time.Millisecond {
		t.Fatalf("linkDownUntil = %v, want 50ms (max of overlapping outages)", n.linkDownUntil)
	}
	n.FailLinkUntil(80 * time.Millisecond)
	if n.linkDownUntil != 80*time.Millisecond {
		t.Fatalf("linkDownUntil = %v, want 80ms", n.linkDownUntil)
	}
}

func TestDegradeNICSlowsWire(t *testing.T) {
	timeTransfer := func(factor float64) time.Duration {
		e := sim.NewEngine(1)
		c := New(e, testSpec(2))
		if factor > 1 {
			c.Node(0).DegradeNIC(factor)
		}
		var took time.Duration
		e.Spawn("xfer", func(p *sim.Proc) {
			took = c.Transfer(p, c.Node(0), c.Node(1), 10_000_000)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return took
	}
	healthy := timeTransfer(1)
	slowed := timeTransfer(4)
	if slowed < 3*healthy {
		t.Fatalf("4x NIC degrade: %v vs healthy %v, want >= 3x", slowed, healthy)
	}
	if got := timeTransfer(1); got != healthy {
		t.Fatalf("healthy transfer not reproducible: %v vs %v", got, healthy)
	}
}

func TestSSDDegradeComposesWithFailWindows(t *testing.T) {
	// The fault injector layers stalls on top of a configured straggler
	// degrade by multiplying and dividing back; verify factors compose.
	e := sim.NewEngine(1)
	c := New(e, testSpec(1))
	ssd := c.Node(0).SSD
	ssd.Degrade(2)                       // straggler study baseline
	ssd.Degrade(ssd.DegradeFactor() * 8) // injected stall
	if ssd.DegradeFactor() != 16 {
		t.Fatalf("composed factor %v, want 16", ssd.DegradeFactor())
	}
	next := ssd.DegradeFactor() / 8 // stall repair
	if next < 1 {
		next = 1
	}
	ssd.Degrade(next)
	if ssd.DegradeFactor() != 2 {
		t.Fatalf("repair left factor %v, want the straggler's 2", ssd.DegradeFactor())
	}
	var slow, fast time.Duration
	e.Spawn("io", func(p *sim.Proc) {
		slow, _ = ssd.Write(p, 1_000_000)
		ssd.Degrade(1)
		fast, _ = ssd.Write(p, 1_000_000)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if slow < 2*fast-time.Microsecond {
		t.Fatalf("2x-degraded write %v vs healthy %v", slow, fast)
	}
}
