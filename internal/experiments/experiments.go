// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV). Each experiment runs the corresponding workflow
// configurations through internal/core, repeats them, and renders the same
// rows/series the paper reports, together with the headline ratios so that
// paper-vs-measured comparisons are mechanical.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options tune experiment execution.
type Options struct {
	// Reps is the number of repetitions per configuration (paper: 10).
	Reps int
	// Frames per producer-consumer pair (paper: 128).
	Frames int
	// Seed is the base RNG seed.
	Seed uint64
	// Quick shrinks the sweep (fewer frames, reps, and smaller maximum
	// ensembles) for benchmarks and smoke tests.
	Quick bool
	// Workers is the number of goroutines runs fan across (<= 0 means one
	// per available core). Results are identical for any worker count; only
	// wall-clock time changes.
	Workers int
	// ShardWorkers shards each run's event queue across this many
	// concurrently-maintained partitions (core.Config.ShardWorkers, the
	// -pdes-j flag). Like Workers, it never changes results — output is
	// byte-identical at any value; 0 or 1 is the serial engine.
	ShardWorkers int
	// ConsumerHeadStart gives every producer job this much head start over
	// its consumer (core.Config.ConsumerHeadStart, the -headstart flag).
	// The paper's protocol launches producers first; calibration fits this
	// delay. Zero — the default — is byte-identical to builds without the
	// knob.
	ConsumerHeadStart time.Duration
	// Trace, when non-nil, enables span tracing on one repetition of each
	// configuration and collects the traces for Chrome export plus
	// per-experiment breakdown reports. Recording is observation-only:
	// every measured number is byte-identical with or without it.
	Trace *Collector
	// Metrics, when non-nil, enables virtual-time metrics sampling on one
	// repetition of each configuration and collects the registries for CSV
	// and Prometheus export plus per-experiment utilization dashboards.
	// Sampling is observation-only, like tracing.
	Metrics *MetricsCollector
	// TraceStream, when non-nil, traces one repetition of each configuration
	// like Trace but serializes spans into the shared Chrome stream as they
	// are emitted instead of retaining them — bounded-memory tracing for
	// large-N sweeps, with bytes identical to buffered collection followed
	// by trace.WriteChrome. Mutually exclusive with Trace (breakdown
	// reports need retained spans and are skipped when streaming).
	TraceStream *trace.ChromeStream
	// MetricsStream, when non-nil, meters one repetition of each
	// configuration like Metrics but streams samples into a CSV sink as
	// they are taken — bounded-memory metering, bytes identical to buffered
	// collection followed by metrics.WriteCSV. Mutually exclusive with
	// Metrics (the dashboard and Prometheus exporters need retained
	// samples and are unavailable when streaming).
	MetricsStream *MetricsStream
	// CritPath, when non-nil, records the causal dependency graph on one
	// repetition of each configuration and collects the extracted critical
	// paths for per-experiment blame reports plus frame-provenance waterfall
	// export. Recording is observation-only, like tracing. A repetition that
	// is both traced and recorded gets its frame lineages merged into the
	// Chrome trace as flow events. Mutually exclusive with TraceStream.
	CritPath *CritCollector
}

// Defaults fills unset options with paper-faithful values.
func (o Options) Defaults() Options {
	if o.Reps == 0 {
		if o.Quick {
			o.Reps = 3
		} else {
			o.Reps = 10
		}
	}
	if o.Frames == 0 {
		if o.Quick {
			o.Frames = 32
		} else {
			o.Frames = 128
		}
	}
	if o.Seed == 0 {
		o.Seed = 0xD1AD
	}
	return o
}

// Report is a rendered experiment: a table plus headline comparisons.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carry the paper-vs-measured headline ratios and free-form
	// observations.
	Notes []string
	// Trees holds rendered Thicket call trees (fig9/fig10).
	Trees []string
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Report, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I: targeted molecular models", Table1},
		{"table2", "Table II: stride for each molecular model", Table2},
		{"fig5", "Fig 5: single-node ensemble scaling, DYAD vs XFS (JAC)", Fig5},
		{"fig6", "Fig 6: two-node ensemble scaling, DYAD vs Lustre (JAC)", Fig6},
		{"fig7", "Fig 7: multi-node ensemble scaling to 256 pairs, DYAD vs Lustre (JAC)", Fig7},
		{"fig8", "Fig 8: molecular model size scaling, DYAD vs Lustre", Fig8},
		{"fig9", "Fig 9: Thicket call-tree analysis of DYAD (JAC vs STMV)", Fig9},
		{"fig10", "Fig 10: Thicket call-tree analysis of Lustre (JAC vs STMV)", Fig10},
		{"fig11", "Fig 11: frame generation frequency scaling, JAC", Fig11},
		{"fig12", "Fig 12: frame generation frequency scaling, STMV", Fig12},
		{"ablation", "Extension: per-mechanism DYAD ablation study", Ablation},
		{"straggler", "Extension: straggler fault injection", Straggler},
		// Extensions append here, never reorder: `all` output up to each
		// older build's last experiment must remain a byte-identical prefix
		// of newer builds' output.
		{"faultsweep", "Extension: fault injection and recovery sweep", FaultSweep},
		{"capsweep", "Extension: finite burst-buffer capacity sweep", CapSweep},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids, ", "))
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			// Rows wider than Columns have no computed width; render the
			// extra cells at their natural width instead of panicking.
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			fmt.Fprintf(w, "%-*s", width+2, c)
		}
		fmt.Fprintln(w)
	}
	writeRow(r.Columns)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, tree := range r.Trees {
		fmt.Fprintln(w)
		fmt.Fprintln(w, tree)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// WriteCSV emits the report's table as CSV (one header row, then data).
// Notes and trees are omitted: CSV output is for plotting pipelines.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Columns); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// --- shared helpers ---

func mustModel(name string) models.Model {
	m, err := models.ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

// runAgg runs a config Reps times and aggregates.
func runAgg(cfg core.Config, o Options) (core.Aggregate, error) {
	cfg.Frames = o.Frames
	cfg.Seed = o.Seed
	cfg.ShardWorkers = o.ShardWorkers
	if cfg.ConsumerHeadStart == 0 {
		// Option-level default only: a calibration tune hook that already
		// set the per-config head start wins over the -headstart flag.
		cfg.ConsumerHeadStart = o.ConsumerHeadStart
	}
	cfg.ComputeJitter = 0.004
	if cfg.Backend == core.Lustre {
		cfg.LustreNoise = true
	}
	cfgs := core.RepeatConfigs(cfg, o.Reps)
	if o.Trace != nil {
		// Trace the first repetition only: one representative timeline per
		// configuration keeps trace volume linear in the sweep, and the
		// schedule keeps every rep's seed identical to the untraced run.
		cfgs[0].RecordSpans = true
	} else if o.TraceStream != nil {
		// Streaming variant of the same policy. Only the first repetition
		// writes to the stream and configuration batches run sequentially,
		// so the shared stream has one writer at a time and its run order
		// matches buffered collection order.
		cfgs[0].TraceStream = o.TraceStream
	}
	if o.CritPath != nil {
		// Record the dependency graph on the first repetition only,
		// mirroring the trace policy: one representative gating chain per
		// configuration, with every rep's seed identical to the unrecorded
		// run.
		cfgs[0].CritPath = true
	}
	if o.Metrics != nil {
		// Sample the first repetition only, mirroring the trace policy; a
		// rep that is both traced and sampled gets its counter tracks merged
		// into the Chrome trace.
		cfgs[0].MetricsInterval = o.Metrics.SampleInterval()
	} else if o.MetricsStream != nil {
		cfgs[0].MetricsInterval = o.MetricsStream.SampleInterval()
		cfgs[0].MetricsSink = o.MetricsStream.Sink
		cfgs[0].MetricsRunLabel = o.MetricsStream.runLabel(cfg.Label())
	}
	results, err := core.RunMany(cfgs, o.Workers)
	if err != nil {
		return core.Aggregate{}, err
	}
	if o.Trace != nil {
		o.Trace.Add(cfg.Label(), results)
	}
	if o.Metrics != nil {
		o.Metrics.Add(cfg.Label(), results)
	}
	if o.CritPath != nil {
		o.CritPath.Add(cfg.Label(), results)
	}
	return core.Aggregated(results), nil
}

// fmtMS renders a seconds summary as mean±std.
func fmtMS(s stats.Summary) string {
	return fmt.Sprintf("%s±%s", stats.FormatSeconds(s.Mean), stats.FormatSeconds(s.Std))
}

func fmtDur(d time.Duration) string { return stats.FormatSeconds(d.Seconds()) }

// ratioNote formats a paper-vs-measured headline comparison. An undefined
// measured ratio (zero or fault-killed baseline) renders as "n/a".
func ratioNote(what string, paper float64, measured float64) string {
	return fmt.Sprintf("%s: paper %.1fx, measured %s", what, paper, stats.FormatRatioPrec(measured, 1))
}

// aggRow renders one aggregate as a standard row tail:
// prod movement, prod idle, cons movement, cons idle, cons total.
func aggRow(a core.Aggregate) []string {
	return []string{
		fmtMS(a.ProdMovement),
		fmtMS(a.ProdIdle),
		fmtMS(a.ConsMovement),
		fmtMS(a.ConsIdle),
		stats.FormatSeconds(a.ConsTotalMean()),
	}
}

var stdCols = []string{"prod_move", "prod_idle", "cons_move", "cons_idle", "cons_total"}
