package metrics

import (
	"bytes"
	"testing"
	"time"
)

// registerSinkSeries wires one series of every kind plus a histogram onto
// r, driven by the shared cumulative state.
func registerSinkSeries(r *Registry, total, busy, inFlight *float64) *Histogram {
	r.Gauge("gauge", func() float64 { return *inFlight })
	r.Counter("counter", func() float64 { return *total })
	r.Rate("rate", func() float64 { return *total }).OnDashboard()
	r.Util("util", 2, func() float64 { return *busy })
	r.Ratio("ratio", func() float64 { return *busy }, func() float64 { return *total })
	return r.Histogram("lat")
}

// drive samples n boundaries with evolving state.
func drive(r *Registry, h *Histogram, total, busy, inFlight *float64, n int) {
	for i := 1; i <= n; i++ {
		*total += float64(i) * 3
		*busy += float64(i) * 0.4e9
		*inFlight = float64(i % 4)
		h.Observe(time.Duration(i) * 37 * time.Microsecond)
		r.Sample(time.Duration(i) * time.Second)
	}
}

// A sink-attached registry must write byte-for-byte the CSV that buffered
// sampling plus WriteCSV produces for the same probe history — across
// multiple runs on one sink, including a Registry.Reset recycle in between.
func TestCSVSinkMatchesWriteCSV(t *testing.T) {
	const boundaries = 5

	// Buffered reference: two runs, fresh registries.
	var runs []Run
	for run := 0; run < 2; run++ {
		r := New(time.Second)
		var total, busy, inFlight float64
		h := registerSinkSeries(r, &total, &busy, &inFlight)
		drive(r, h, &total, &busy, &inFlight, boundaries)
		runs = append(runs, Run{Label: "sinkrun", Reg: r})
	}
	var want bytes.Buffer
	if err := WriteCSV(&want, runs); err != nil {
		t.Fatal(err)
	}

	// Streamed: one registry recycled through Reset between the two runs.
	var got bytes.Buffer
	sink := NewCSVSink(&got)
	r := New(time.Second)
	for run := 0; run < 2; run++ {
		if run > 0 {
			r.Reset(time.Second)
		}
		var total, busy, inFlight float64
		h := registerSinkSeries(r, &total, &busy, &inFlight)
		sink.StartRun("sinkrun", r)
		drive(r, h, &total, &busy, &inFlight, boundaries)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("sink CSV diverged from WriteCSV:\n got:\n%s\nwant:\n%s", got.String(), want.String())
	}
	// A sink-attached registry retains no sample vectors.
	if r.Len() != 0 {
		t.Errorf("sink-attached registry buffered %d sample rows", r.Len())
	}
	for _, s := range r.Series() {
		if len(s.Samples) != 0 {
			t.Errorf("series %q buffered %d samples in sink mode", s.Name, len(s.Samples))
		}
	}
}

// Reset must recycle series and histogram storage: re-registering the same
// layout after a Reset hands back the same handles (by registration order)
// with their sample capacity intact, and the rebuilt registry samples
// exactly like a fresh one.
func TestRegistryResetRecyclesSeries(t *testing.T) {
	r := New(time.Second)
	var total, busy, inFlight float64
	h1 := registerSinkSeries(r, &total, &busy, &inFlight)
	first := append([]*Series(nil), r.Series()...)
	drive(r, h1, &total, &busy, &inFlight, 3)

	r.Reset(2 * time.Second)
	if r.Interval() != 2*time.Second {
		t.Errorf("Reset interval = %v, want 2s", r.Interval())
	}
	if r.Len() != 0 || len(r.Series()) != 0 || len(r.Histograms()) != 0 {
		t.Error("Reset left series or samples behind")
	}
	h2 := registerSinkSeries(r, &total, &busy, &inFlight)
	second := r.Series()
	if len(second) != len(first) {
		t.Fatalf("re-registration built %d series, want %d", len(second), len(first))
	}
	for i := range second {
		if second[i] != first[i] {
			t.Errorf("series %d not recycled (got %p, want %p)", i, second[i], first[i])
		}
		if len(second[i].Samples) != 0 {
			t.Errorf("recycled series %q kept %d samples", second[i].Name, len(second[i].Samples))
		}
	}
	if h2 != h1 {
		t.Errorf("histogram not recycled")
	}
	if h2.Count != 0 {
		t.Errorf("recycled histogram kept %d observations", h2.Count)
	}
}
