package core

import (
	"time"

	"repro/internal/capacity"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/trace"
)

// scheduleFaults derives the run's concrete fault plan from Config.Faults
// and the run seed, and schedules each event's injection at its virtual
// time. Called once from newRig, before Run, only when faults are enabled —
// healthy runs never reach this code, keeping the empty-plan timeline
// byte-identical to a build without fault injection.
func (r *rig) scheduleFaults() {
	spec := *r.cfg.Faults
	if spec.Horizon <= 0 {
		// Default window: the nominal production span of the run.
		spec.Horizon = r.cfg.frequency * time.Duration(r.cfg.Frames)
	}
	osts := 1
	if r.lfs != nil {
		osts = r.lfs.OSTs()
	}
	plan := spec.Generate(r.cfg.Seed, r.cfg.ComputeNodes(), osts)
	if plan.Empty() {
		return
	}
	r.failDepth = make(map[*cluster.SSD]int)
	for _, ev := range plan.Events {
		ev := ev
		r.eng.After(ev.At, func() { r.applyFault(ev) })
	}
}

// computeNode maps a fault target onto the run's compute nodes.
func (r *rig) computeNode(target int) *cluster.Node {
	return r.cl.Node(target % r.cfg.ComputeNodes())
}

// applyFault injects one fault event, scheduling its repair where the kind
// has one. Events whose kind does not apply to the run's backend (a broker
// crash in an XFS run) are dropped without counting as injected.
func (r *rig) applyFault(ev faults.Event) {
	switch ev.Kind {
	case faults.DeviceStall:
		ssd := r.computeNode(ev.Target).SSD
		ssd.Degrade(ssd.DegradeFactor() * ev.Factor)
		r.eng.After(ev.For, func() {
			// Divide the event's factor back out so overlapping stalls and a
			// configured StragglerFactor survive the repair.
			next := ssd.DegradeFactor() / ev.Factor
			if next < 1 {
				next = 1
			}
			ssd.Degrade(next)
		})
	case faults.DeviceFail:
		ssd := r.computeNode(ev.Target).SSD
		r.failDepth[ssd]++
		ssd.Fail()
		r.eng.After(ev.For, func() {
			// Overlapping failure windows: repair only when the last ends.
			r.failDepth[ssd]--
			if r.failDepth[ssd] == 0 {
				ssd.Repair()
			}
		})
	case faults.LinkDegrade:
		n := r.computeNode(ev.Target)
		n.DegradeNIC(n.NICDegradeFactor() * ev.Factor)
		r.eng.After(ev.For, func() {
			next := n.NICDegradeFactor() / ev.Factor
			if next < 1 {
				next = 1
			}
			n.DegradeNIC(next)
		})
	case faults.LinkOutage:
		r.computeNode(ev.Target).FailLinkUntil(r.eng.Now() + ev.For)
	case faults.BrokerCrash:
		if r.dy == nil {
			return
		}
		r.dy.Broker(r.computeNode(ev.Target)).Crash(ev.For)
	case faults.OSTOutage:
		if r.lfs == nil {
			return
		}
		r.lfs.FailOST(ev.Target, ev.For)
	case faults.MDSOutage:
		if r.lfs == nil {
			return
		}
		r.lfs.FailMDS(ev.For)
	default:
		return
	}
	r.recovery.Injected++
	// Mark the injection on the trace timeline: one span per applied event,
	// spanning the fault window, on a synthetic injector track.
	if r.rec != nil {
		r.rec.Emit(trace.Span{Proc: "fault-injector", Component: "fault", Name: ev.Kind.String(),
			Start: r.eng.Now(), Dur: ev.For, Attr: "target=" + itoa(ev.Target)})
	}
}

// applyProvision executes one scheduled burst-buffer reprovisioning
// (Config.Capacity.Plan): every node's budgets are reset to the event's
// values, shrinking below occupancy forcing evictions and growing waking
// back-pressured producers. Scheduled from newRig only when capacity is
// enabled.
func (r *rig) applyProvision(ev capacity.Provision) {
	switch {
	case r.dy != nil:
		r.dy.Provision(ev.StagingBytes, ev.CacheBytes)
	case r.xf != nil:
		r.xf.Capacity().Resize(ev.StagingBytes)
	}
	// Mark the reprovisioning on the trace timeline, like fault injections.
	if r.rec != nil {
		r.rec.Emit(trace.Span{Proc: "provisioner", Component: "capacity", Name: "provision",
			Start: r.eng.Now(), Bytes: ev.StagingBytes,
			Attr: "staging=" + itoa(int(ev.StagingBytes)) + " cache=" + itoa(int(ev.CacheBytes))})
	}
}

// itoa is a minimal non-negative integer formatter (fault targets are small
// indices; avoids pulling strconv into the hot import path for one call).
func itoa(n int) string {
	if n < 0 {
		n = -n
	}
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
