package calib

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
)

// Options tune a calibration run.
type Options struct {
	// Reps is repetitions per configuration inside the objective
	// (default 3; quick 2).
	Reps int
	// Frames per pair. Defaults to the paper's 128 even under Quick: the
	// fitted head start is a fixed per-run delay whose optimum scales with
	// the run length, so fitting at a reduced frame count would fit a
	// parameter that breaks the full-scale protocol. Quick shrinks reps
	// and the target set instead.
	Frames int
	// Seed is the base RNG seed (default 0xD1AD), shared by the runs and
	// the optimizer's probe generator.
	Seed uint64
	// Quick fits against the Fig 5–6 targets only (full adds Fig 7's
	// 64-pair ensembles) with fewer reps and a smaller budget.
	Quick bool
	// Workers / ShardWorkers fan runs out exactly like the experiment
	// harness flags -j / -pdes-j; neither changes a single fitted byte.
	Workers      int
	ShardWorkers int
	// Budget caps fresh objective evaluations (default 96; quick 48).
	// Memoized re-evaluations are free.
	Budget int
}

// Defaults fills unset options.
func (o Options) Defaults() Options {
	if o.Reps == 0 {
		if o.Quick {
			o.Reps = 2
		} else {
			o.Reps = 3
		}
	}
	if o.Frames == 0 {
		o.Frames = 128
	}
	if o.Seed == 0 {
		o.Seed = 0xD1AD
	}
	if o.Budget == 0 {
		if o.Quick {
			o.Budget = 48
		} else {
			o.Budget = 96
		}
	}
	return o
}

// Fit is a completed calibration: the best point found, its objective
// value, and the measurements backing it.
type Fit struct {
	Space   Space
	Opts    Options
	Targets []Target
	// Best holds the fitted value of each Space parameter, same order.
	Best []float64
	// Err is the objective at Best: the weighted mean |ln(measured/paper)|
	// over the targets (0 = every headline exactly reproduced).
	Err float64
	// Evals counts fresh objective evaluations (simulations); CacheHits
	// counts memoized re-visits the optimizer got for free.
	Evals, CacheHits int
	// Measurements are the measured values at Best, in protocol order.
	Measurements []experiments.CalibMeasurement
}

// Param returns the fitted value of the named parameter.
func (f *Fit) Param(name string) (float64, bool) {
	for i, p := range f.Space.Params {
		if p.Name == name {
			return f.Best[i], true
		}
	}
	return 0, false
}

// HeadStart returns the fitted consumer head start (zero if the space
// does not tune one).
func (f *Fit) HeadStart() time.Duration {
	v, ok := f.Param(ParamHeadStart)
	if !ok {
		return 0
	}
	return time.Duration(math.Round(v * float64(time.Second)))
}

// objective scores measurements against targets: the weighted mean of
// |ln(measured/paper)| per target, so "half the paper ratio" and "twice
// the paper ratio" cost the same. An undefined or non-positive
// measurement costs a flat 5.0 (≈ e^5 ≈ 150x off), and every NaN
// observation dropped upstream adds 0.1 — a fit must not buy accuracy by
// killing runs.
func objective(ms []experiments.CalibMeasurement, targets []Target) float64 {
	byName := make(map[string]experiments.CalibMeasurement, len(ms))
	for _, m := range ms {
		byName[m.Name] = m
	}
	var sum, sumW float64
	for _, t := range targets {
		m, ok := byName[t.Name]
		e := 5.0
		if ok && !math.IsNaN(m.Value) && m.Value > 0 {
			e = math.Abs(math.Log(m.Value / t.Paper))
		}
		e += 0.1 * float64(m.NaNs)
		sum += t.Weight * e
		sumW += t.Weight
	}
	if sumW == 0 {
		return 0
	}
	return sum / sumW
}

// fitter carries one Calibrate invocation's state.
type fitter struct {
	space   Space
	o       Options
	eo      experiments.Options
	targets []Target
	full    bool

	memo   map[string]float64
	evals  int
	hits   int
	nextID int

	best    []float64
	bestErr float64
	bestMs  []experiments.CalibMeasurement

	simErr error
	// log keeps every distinct evaluated point with its insertion id, the
	// deterministic tie-break for simplex seeding and ordering.
	log []evalRec
}

type evalRec struct {
	pt  []float64
	err float64
	id  int
}

// key quantizes a point onto a 1e-4-of-range lattice so float noise from
// different arithmetic paths to the same point shares one memo entry.
func (f *fitter) key(pt []float64) string {
	var sb strings.Builder
	for i, p := range f.space.Params {
		step := (p.Hi - p.Lo) * 1e-4
		fmt.Fprintf(&sb, "%d|", int64(math.Round((pt[i]-p.Lo)/step)))
	}
	return sb.String()
}

// eval scores pt, memoized. ok is false once the budget is exhausted or a
// simulation failed — the optimizer stops asking.
func (f *fitter) eval(pt []float64) (v float64, ok bool) {
	pt = f.space.clampPoint(append([]float64(nil), pt...))
	k := f.key(pt)
	if v, hit := f.memo[k]; hit {
		f.hits++
		return v, true
	}
	if f.simErr != nil || f.evals >= f.o.Budget {
		return 0, false
	}
	f.evals++
	ms, err := experiments.MeasureCalibration(f.eo, f.space.Tune(pt), f.full)
	if err != nil {
		f.simErr = err
		return 0, false
	}
	v = objective(ms, f.targets)
	f.memo[k] = v
	f.log = append(f.log, evalRec{pt: pt, err: v, id: f.nextID})
	f.nextID++
	if f.best == nil || v < f.bestErr {
		f.best = pt
		f.bestErr = v
		f.bestMs = ms
	}
	return v, true
}

// Calibrate fits space against the paper targets: a seeded coarse pass
// (the defaults point, an axial scan per parameter, and six pseudo-random
// probes) followed by bounds-clamped Nelder–Mead refinement seeded from
// the best coarse points. Deterministic: same (space, options) in, same
// fit out, at any Workers/ShardWorkers.
func Calibrate(space Space, o Options) (*Fit, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	o = o.Defaults()
	f := &fitter{
		space: space, o: o,
		eo: experiments.Options{
			Reps: o.Reps, Frames: o.Frames, Seed: o.Seed, Quick: o.Quick,
			Workers: o.Workers, ShardWorkers: o.ShardWorkers,
		},
		targets: Targets(!o.Quick),
		full:    !o.Quick,
		memo:    map[string]float64{},
	}

	// Coarse pass: center.
	center := space.defaults()
	f.eval(center)
	// Axial scan: each parameter alone across its levels.
	for i, p := range space.Params {
		n := p.levels()
		for j := 0; j < n; j++ {
			pt := append([]float64(nil), center...)
			if n == 1 {
				pt[i] = (p.Lo + p.Hi) / 2
			} else {
				pt[i] = p.Lo + (p.Hi-p.Lo)*float64(j)/float64(n-1)
			}
			if _, ok := f.eval(pt); !ok {
				break
			}
		}
	}
	// Pseudo-random probes: a seeded LCG, independent of everything else.
	rng := o.Seed*2862933555777941757 + 3037000493
	next := func() float64 {
		rng = rng*2862933555777941757 + 3037000493
		return float64(rng>>11) / float64(1<<53)
	}
	for k := 0; k < 6; k++ {
		pt := make([]float64, len(space.Params))
		for i, p := range space.Params {
			pt[i] = p.Lo + (p.Hi-p.Lo)*next()
		}
		if _, ok := f.eval(pt); !ok {
			break
		}
	}

	f.nelderMead()

	if f.simErr != nil {
		return nil, f.simErr
	}
	if f.best == nil {
		return nil, fmt.Errorf("calib: budget %d too small for a single evaluation", o.Budget)
	}
	return &Fit{
		Space: space, Opts: o, Targets: f.targets,
		Best: f.best, Err: f.bestErr,
		Evals: f.evals, CacheHits: f.hits,
		Measurements: f.bestMs,
	}, nil
}

// nelderMead refines from the best coarse points until the budget runs
// out or the simplex collapses. Ordering ties break on insertion id, so
// the walk is reproducible.
func (f *fitter) nelderMead() {
	n := len(f.space.Params)
	if len(f.log) < n+1 {
		return
	}
	simplex := append([]evalRec(nil), f.log...)
	sortRecs(simplex)
	simplex = simplex[:n+1]

	const alpha, gamma, rho, sigma = 1.0, 2.0, 0.5, 0.5
	for iter := 0; iter < 10*f.o.Budget; iter++ {
		sortRecs(simplex)
		if simplex[n].err-simplex[0].err < 1e-4 {
			return // converged: the simplex is flat
		}
		// Centroid of all but the worst.
		centroid := make([]float64, n)
		for _, r := range simplex[:n] {
			for i, v := range r.pt {
				centroid[i] += v / float64(n)
			}
		}
		worst := simplex[n]
		mix := func(a float64) []float64 {
			pt := make([]float64, n)
			for i := range pt {
				pt[i] = centroid[i] + a*(centroid[i]-worst.pt[i])
			}
			return f.space.clampPoint(pt)
		}
		accept := func(pt []float64, err float64) {
			simplex[n] = evalRec{pt: pt, err: err, id: f.nextID}
			f.nextID++
		}
		refl := mix(alpha)
		fr, ok := f.eval(refl)
		if !ok {
			return
		}
		switch {
		case fr < simplex[0].err:
			exp := mix(gamma)
			fe, ok := f.eval(exp)
			if !ok {
				return
			}
			if fe < fr {
				accept(exp, fe)
			} else {
				accept(refl, fr)
			}
		case fr < simplex[n-1].err:
			accept(refl, fr)
		default:
			con := mix(-rho)
			fc, ok := f.eval(con)
			if !ok {
				return
			}
			if fc < worst.err {
				accept(con, fc)
			} else {
				// Shrink toward the best vertex.
				for j := 1; j <= n; j++ {
					pt := make([]float64, n)
					for i := range pt {
						pt[i] = simplex[0].pt[i] + sigma*(simplex[j].pt[i]-simplex[0].pt[i])
					}
					pt = f.space.clampPoint(pt)
					fv, ok := f.eval(pt)
					if !ok {
						return
					}
					simplex[j] = evalRec{pt: pt, err: fv, id: f.nextID}
					f.nextID++
				}
			}
		}
	}
}

func sortRecs(recs []evalRec) {
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].err != recs[j].err {
			return recs[i].err < recs[j].err
		}
		return recs[i].id < recs[j].id
	})
}

// fmtParam renders a fitted value in its natural unit: second-valued
// parameters in engineering notation, bandwidths in GB/s.
func fmtParam(name string, v float64) string {
	if strings.Contains(name, "bw") || strings.Contains(name, "bandwidth") {
		return fmt.Sprintf("%.3g GB/s", v/1e9)
	}
	switch {
	case v == 0:
		return "0s"
	case v < 1e-3:
		return fmt.Sprintf("%.4gµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.4gms", v*1e3)
	default:
		return fmt.Sprintf("%.4gs", v)
	}
}

// Render writes the fit report: the fitted parameters, then every target
// with its measured value and relative error. Byte-identical for any
// worker count — verify.sh cmps -j 1 against -j 8.
func (f *Fit) Render(w io.Writer) {
	mode := "full"
	if f.Opts.Quick {
		mode = "quick"
	}
	fmt.Fprintf(w, "== calibrate — deterministic cost-model fit (%s) ==\n", mode)
	fmt.Fprintf(w, "protocol: reps=%d frames=%d seed=%#x budget=%d\n",
		f.Opts.Reps, f.Opts.Frames, f.Opts.Seed, f.Opts.Budget)
	fmt.Fprintf(w, "objective: %.6f (weighted mean |ln(measured/paper)|) after %d evaluations (%d memoized)\n",
		f.Err, f.Evals, f.CacheHits)
	fmt.Fprintln(w, "fitted parameters:")
	for i, p := range f.Space.Params {
		fmt.Fprintf(w, "  %-16s %-12s (bounds [%s, %s])\n",
			p.Name, fmtParam(p.Name, f.Best[i]), fmtParam(p.Name, p.Lo), fmtParam(p.Name, p.Hi))
	}
	byName := make(map[string]experiments.CalibMeasurement, len(f.Measurements))
	for _, m := range f.Measurements {
		byName[m.Name] = m
	}
	fmt.Fprintln(w, "targets:")
	for _, t := range f.Targets {
		m, ok := byName[t.Name]
		if !ok || math.IsNaN(m.Value) {
			fmt.Fprintf(w, "  %-32s paper %-10.4g measured n/a\n", t.Name, t.Paper)
			continue
		}
		fmt.Fprintf(w, "  %-32s paper %-10.4g measured %-10.4g rel %+0.1f%%\n",
			t.Name, t.Paper, m.Value, 100*(m.Value/t.Paper-1))
	}
}
