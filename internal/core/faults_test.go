package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
)

// faultedBatch is a mixed-backend batch under non-empty fault plans: DYAD
// with broker crashes and link faults (plus the Lustre fallback mirror),
// XFS with device stalls, Lustre with server outages. Every run recovers.
func faultedBatch() []Config {
	m := tinyModel()
	return []Config{
		{Backend: DYAD, Model: m, Frames: 8, Pairs: 2, Seed: 101, ComputeJitter: 0.01,
			Faults: &faults.Spec{BrokerCrashes: 1, LinkOutages: 1, LinkDegrades: 1}},
		{Backend: XFS, Model: m, Frames: 8, Pairs: 2, SingleNode: true, Seed: 202, ComputeJitter: 0.01,
			Faults: &faults.Spec{DeviceStalls: 2}},
		{Backend: Lustre, Model: m, Frames: 8, Pairs: 2, Seed: 303, LustreNoise: true,
			Faults: &faults.Spec{OSTOutages: 2, MDSOutages: 1, LinkOutages: 1}},
		{Backend: DYAD, Model: m, Frames: 6, Pairs: 2, Seed: 404, LustreFallback: true,
			Faults: &faults.Spec{BrokerCrashes: 2, DeviceStalls: 1, MeanOutage: 2 * time.Second}},
	}
}

// The PR's determinism contract: fault plans derive from the run seed alone,
// so a faulted batch is byte-identical between -j1 and -j8.
func TestFaultedRunManyParallelMatchesSerial(t *testing.T) {
	cfgs := faultedBatch()
	serial, err := RunMany(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunMany(cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, b := canonical(serial), canonical(parallel)
	if a != b {
		t.Fatalf("faulted workers=1 vs workers=8 differ:\n--- serial ---\n%s--- parallel ---\n%s", a, b)
	}
	// The faults must actually have fired, or this test guards nothing.
	injected := int64(0)
	for _, r := range serial {
		injected += r.Recovery.Injected
	}
	if injected == 0 {
		t.Fatal("faulted batch injected nothing; plans degenerate")
	}
}

// Determinism must hold when a faulted run dies too: the same run fails with
// the same error either way, and survivors are unperturbed.
func TestFaultedBatchWithFatalRunStaysDeterministic(t *testing.T) {
	m := tinyModel()
	kill := faults.Spec{Events: []faults.Event{
		{At: time.Millisecond, Kind: faults.DeviceFail, Target: 0, For: time.Hour},
	}}
	cfgs := []Config{
		{Backend: DYAD, Model: m, Frames: 6, Pairs: 1, SingleNode: true, Seed: 1},
		{Backend: XFS, Model: m, Frames: 6, Pairs: 1, SingleNode: true, Seed: 2, Faults: &kill},
		{Backend: XFS, Model: m, Frames: 6, Pairs: 1, SingleNode: true, Seed: 3},
	}
	serial, serr := RunMany(cfgs, 1)
	parallel, perr := RunMany(cfgs, 8)
	if serr == nil || perr == nil {
		t.Fatal("batch with a device-killed run returned nil error")
	}
	if !errors.Is(serr, faults.ErrDeviceFailed) || !errors.Is(perr, faults.ErrDeviceFailed) {
		t.Fatalf("batch errors missing ErrDeviceFailed: serial=%v parallel=%v", serr, perr)
	}
	if serr.Error() != perr.Error() {
		t.Fatalf("failure text differs between worker counts:\n%v\n%v", serr, perr)
	}
	if serial[1] != nil || parallel[1] != nil {
		t.Fatal("killed run produced a result")
	}
	if canonical(serial) != canonical(parallel) {
		t.Fatal("survivors differ between worker counts")
	}
}

// TestFaultedMixedRunGolden locks the faulted timelines and recovery metrics
// against a committed fixture: recovery behavior (timeout costs, backoff
// schedules, failover points) is part of the simulation's observable output
// and must not drift silently.
// Regenerate deliberately with: go test ./internal/core -run FaultedMixedRunGolden -update
func TestFaultedMixedRunGolden(t *testing.T) {
	results, err := RunMany(faultedBatch(), 4)
	if err != nil {
		t.Fatal(err)
	}
	got := canonical(results)
	golden := filepath.Join("testdata", "faulted_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden fixture (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("faulted-run report drifted from golden fixture:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// An explicit broker-crash window mid-run: the DYAD workflow must finish
// with every frame accounted and the recovery visible in the Result.
func TestDYADRunSurvivesBrokerCrash(t *testing.T) {
	cfg := Config{
		Backend: DYAD, Model: tinyModel(), Frames: 8, Pairs: 2, Seed: 9,
		Faults: &faults.Spec{Events: []faults.Event{
			{At: 10 * time.Millisecond, Kind: faults.BrokerCrash, Target: 0, For: 400 * time.Millisecond},
		}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesRead != cfg.Pairs*cfg.Frames {
		t.Fatalf("read %d frames, want %d", res.FramesRead, cfg.Pairs*cfg.Frames)
	}
	rec := res.Recovery
	if rec.Injected != 1 || rec.BrokerRestarts != 1 {
		t.Fatalf("recovery %+v: want one injected crash, one restart", rec)
	}
	if rec.Timeouts == 0 || rec.RecoveryTime == 0 {
		t.Fatalf("recovery %+v: crash invisible to consumers", rec)
	}
	// The same config without faults must be strictly faster and clean.
	healthy := cfg
	healthy.Faults = nil
	href, err := Run(healthy)
	if err != nil {
		t.Fatal(err)
	}
	if !href.Recovery.Zero() {
		t.Fatalf("healthy run recorded recovery: %+v", href.Recovery)
	}
	if res.Makespan <= href.Makespan {
		t.Fatalf("faulted makespan %v not above healthy %v", res.Makespan, href.Makespan)
	}
}

// A device failure under XFS is fatal by design: the run returns a wrapped
// sentinel (never hangs, never panics through Run).
func TestXFSRunDeviceFailureIsCleanError(t *testing.T) {
	cfg := Config{
		Backend: XFS, Model: tinyModel(), Frames: 8, Pairs: 2, SingleNode: true, Seed: 5,
		Faults: &faults.Spec{Events: []faults.Event{
			{At: 2 * time.Millisecond, Kind: faults.DeviceFail, Target: 0, For: time.Hour},
		}},
	}
	res, err := Run(cfg)
	if err == nil {
		t.Fatal("run on a dead device succeeded")
	}
	if res != nil {
		t.Fatal("failed run returned a result")
	}
	if !errors.Is(err, faults.ErrDeviceFailed) {
		t.Fatalf("err = %v, want chain wrapping ErrDeviceFailed", err)
	}
}

// Config.MaxEvents arms the engine watchdog even on fault-free runs.
func TestConfigWatchdogAbortsRun(t *testing.T) {
	cfg := Config{
		Backend: XFS, Model: tinyModel(), Frames: 64, Pairs: 2, SingleNode: true, Seed: 5,
		MaxEvents: 500,
	}
	_, err := Run(cfg)
	if !errors.Is(err, sim.ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
	cfg.MaxEvents = 0
	cfg.MaxVirtualTime = 10 * time.Millisecond
	_, err = Run(cfg)
	if !errors.Is(err, sim.ErrWatchdog) {
		t.Fatalf("virtual-time watchdog: err = %v, want ErrWatchdog", err)
	}
}

// A disabled (zero) fault spec must be indistinguishable from a nil one:
// the empty plan costs nothing and perturbs nothing.
func TestDisabledFaultSpecIsByteIdentical(t *testing.T) {
	base := Config{Backend: Lustre, Model: tinyModel(), Frames: 8, Pairs: 2, Seed: 77,
		ComputeJitter: 0.02, LustreNoise: true, KeepProfiles: true}
	withNil, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	spec := base
	spec.Faults = &faults.Spec{}
	withZero, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	a := canonical([]*Result{withNil})
	b := canonical([]*Result{withZero})
	if a != b {
		t.Fatalf("disabled spec perturbed the run:\n--- nil ---\n%s--- zero spec ---\n%s", a, b)
	}
}

// StragglerFactor covers the throttled-device path the straggler experiment
// uses: a degraded node slows its own pairs' consumption.
func TestStragglerFactorSlowsRun(t *testing.T) {
	base := Config{Backend: XFS, Model: tinyModel(), Frames: 6, Pairs: 2, SingleNode: true, Seed: 3}
	healthy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	throttled := base
	throttled.StragglerFactor = 8
	slow, err := Run(throttled)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Consumer.Movement <= healthy.Consumer.Movement {
		t.Fatalf("8x-throttled device: cons movement %v vs healthy %v", slow.Consumer.Movement, healthy.Consumer.Movement)
	}
	if slow.Makespan <= healthy.Makespan {
		t.Fatalf("throttled makespan %v not above healthy %v", slow.Makespan, healthy.Makespan)
	}
	if !slow.Recovery.Zero() {
		t.Fatalf("straggler study is not fault recovery; got %+v", slow.Recovery)
	}
}

// LustreFallback must deploy the mirror alongside DYAD and reject other
// backends at validation.
func TestLustreFallbackConfig(t *testing.T) {
	m := tinyModel()
	bad := Config{Backend: XFS, Model: m, Frames: 4, Pairs: 1, SingleNode: true}
	bad.LustreFallback = true
	if err := bad.Validate(); err == nil {
		t.Fatal("LustreFallback accepted on XFS")
	}
	good := Config{Backend: DYAD, Model: m, Frames: 4, Pairs: 2, Seed: 8, LustreFallback: true}
	res, err := Run(good)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesRead != good.Pairs*good.Frames {
		t.Fatalf("mirror-enabled run read %d frames", res.FramesRead)
	}
	// The mirror's write cost makes production strictly more expensive.
	plain := good
	plain.LustreFallback = false
	pres, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if res.Producer.Movement <= pres.Producer.Movement {
		t.Fatalf("mirror writes free: %v vs %v", res.Producer.Movement, pres.Producer.Movement)
	}
}
