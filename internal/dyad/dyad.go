// Package dyad implements the Dynamic and Asynchronous Data Streamliner
// middleware the paper studies (flux-framework/dyad), on top of the
// simulated cluster. It reproduces DYAD's three defining mechanisms:
//
//  1. Node-local storage accelerators: producers stage frames on their
//     node's NVMe; recently staged data is served from the page cache and
//     the consumer side keeps a RAM-backed cache (burst-buffer style).
//  2. Multi-protocol automatic synchronization: the first consumption of a
//     not-yet-produced file blocks on a key-value-store watch (loosely
//     coupled: the producer never waits), while subsequent consumptions —
//     when data is already available because producer and consumer overlap
//     — use a cheap lookup plus file-lock protocol.
//  3. RDMA-enabled transfer: a consumer on another node pulls the staged
//     file directly from the owner's broker over the fabric at near-wire
//     bandwidth, stores it in its node-local cache, and reads it locally.
//
// Region names follow the real DYAD's Caliper annotations so the Thicket
// analyses of the paper's Figures 9 and 10 can be regenerated:
// dyad_produce, dyad_commit, dyad_consume, dyad_fetch, dyad_get_data,
// dyad_cons_store, read_single_buf.
package dyad

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/caliper"
	"repro/internal/cluster"
	"repro/internal/kvs"
	"repro/internal/locks"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/xfs"
)

// Params is the DYAD cost model.
type Params struct {
	// Staging is the cost model of the node-local staging writes
	// (durable path: journal + NVMe data write, like the node-local FS).
	Staging xfs.Params
	// BrokerService is the broker's per-request processing overhead.
	BrokerService time.Duration
	// ClientOverhead is the client-library cost per consume: POSIX
	// interception, path resolution, and cache management. It is part of
	// DYAD's data-movement overhead versus a raw filesystem read.
	ClientOverhead time.Duration
	// PageCacheBandwidth/Latency model reads of recently staged files
	// (always hot in this workload: data is consumed moments after being
	// produced).
	PageCacheBandwidth float64
	PageCacheLatency   time.Duration
	// CacheWriteBandwidth models the consumer-side RAM cache store.
	CacheWriteBandwidth float64
	// Locks is the file-lock cost model for the fast-path synchronization.
	Locks locks.Params
	// KVS is the metadata store cost model. Commits carry DYAD's global
	// namespace registration, the production-side overhead the paper
	// measures against raw XFS.
	KVS kvs.Params

	// Ablation switches (all false in the real system). They disable, one
	// by one, the three mechanisms Figure 2 of the paper credits for
	// DYAD's performance, so their contribution can be measured.

	// NoAdaptiveSync makes every consumption use the loosely-coupled KVS
	// watch protocol instead of switching to the cheap lookup+lock fast
	// path once the flow is established.
	NoAdaptiveSync bool
	// NoBurstBuffer removes the node-local storage accelerators: broker
	// reads come from the NVMe device instead of the page cache, and the
	// consumer cache store writes through to the NVMe staging area.
	NoBurstBuffer bool
	// NoDirectTransfer removes RDMA-style producer->consumer pulls:
	// remote data is staged through the KVS/management node
	// (store-and-forward), as coarse workflow systems relay through
	// shared services.
	NoDirectTransfer bool
}

// DefaultParams returns the calibrated DYAD model.
func DefaultParams() Params {
	k := kvs.DefaultParams()
	k.CommitService = 140 * time.Microsecond
	return Params{
		Staging:             xfs.DefaultParams(),
		BrokerService:       25 * time.Microsecond,
		ClientOverhead:      300 * time.Microsecond,
		PageCacheBandwidth:  12e9,
		PageCacheLatency:    20 * time.Microsecond,
		CacheWriteBandwidth: 8e9,
		Locks:               locks.DefaultParams(),
		KVS:                 k,
	}
}

// System is one DYAD deployment: a KVS for global metadata plus one broker
// per participating node.
type System struct {
	cl      *cluster.Cluster
	params  Params
	kvs     *kvs.Store
	brokers map[int]*Broker

	// Produced counts frames published; Fetched counts remote transfers.
	Produced int64
	Fetched  int64
}

// Broker is the per-node DYAD service: it owns the node's staging area,
// serves remote fetch requests, and manages the node's consumer cache.
type Broker struct {
	sys     *System
	node    *cluster.Node
	staging *xfs.FS
	cache   *vfs.Tree // RAM-backed consumer-side cache
	srv     *sim.Resource
	locks   *locks.Manager
}

// meta is the KVS metadata record for a produced file.
type meta struct {
	owner int
	size  int64
}

func encodeMeta(m meta) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf[0:], uint64(m.owner))
	binary.LittleEndian.PutUint64(buf[8:], uint64(m.size))
	return buf
}

func decodeMeta(b []byte) meta {
	return meta{
		owner: int(binary.LittleEndian.Uint64(b[0:])),
		size:  int64(binary.LittleEndian.Uint64(b[8:])),
	}
}

// New deploys DYAD over the cluster with its KVS hosted on kvsNode.
func New(cl *cluster.Cluster, kvsNode *cluster.Node, params Params) *System {
	return &System{
		cl:      cl,
		params:  params,
		kvs:     kvs.New(cl, kvsNode, params.KVS),
		brokers: make(map[int]*Broker),
	}
}

// KVS exposes the metadata store (for stats and tests).
func (s *System) KVS() *kvs.Store { return s.kvs }

// Broker returns (creating on first use) the broker on node.
func (s *System) Broker(node *cluster.Node) *Broker {
	b, ok := s.brokers[node.ID]
	if !ok {
		b = &Broker{
			sys:     s,
			node:    node,
			staging: xfs.New(node, s.params.Staging),
			cache:   vfs.NewTree(),
			srv:     sim.NewResource(s.cl.Engine(), node.Name()+"/dyad-broker", 1),
			locks:   locks.NewManager(s.params.Locks),
		}
		s.brokers[node.ID] = b
	}
	return b
}

// Staging exposes a node's staging filesystem (tests and invariants).
func (b *Broker) Staging() *xfs.FS { return b.staging }

// Cache exposes a node's consumer-side cache (tests and invariants).
func (b *Broker) Cache() *vfs.Tree { return b.cache }

// cachedRead charges a page-cache read of n bytes (or an NVMe read when
// the burst-buffer ablation is active).
func (b *Broker) cachedRead(p *sim.Proc, n int64) {
	if b.sys.params.NoBurstBuffer {
		b.node.SSD.Read(p, n)
		return
	}
	p.Sleep(b.sys.params.PageCacheLatency + cost(n, b.sys.params.PageCacheBandwidth))
}

// cacheStore charges a RAM cache write of n bytes (or a full journaled
// NVMe write when the burst-buffer ablation is active).
func (b *Broker) cacheStore(p *sim.Proc, n int64) {
	if b.sys.params.NoBurstBuffer {
		b.node.SSD.Write(p, n)
		return
	}
	p.Sleep(b.sys.params.PageCacheLatency + cost(n, b.sys.params.CacheWriteBandwidth))
}

func cost(n int64, bw float64) time.Duration {
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// Client is a process-side DYAD handle bound to one node. The same type
// serves producers and consumers, mirroring the real DYAD client library.
type Client struct {
	sys    *System
	broker *Broker
	// flowSynced records flows this client has synchronized at least once
	// via the blocking KVS watch; later consumptions in the same flow
	// switch to the cheap lookup + file-lock protocol.
	flowSynced map[string]bool
}

// NewClient creates a client for processes on node.
func (s *System) NewClient(node *cluster.Node) *Client {
	return &Client{
		sys:        s,
		broker:     s.Broker(node),
		flowSynced: make(map[string]bool),
	}
}

// Node returns the client's node.
func (c *Client) Node() *cluster.Node { return c.broker.node }

// Produce stages the payload under path in the node-local staging area and
// publishes its metadata globally. The producer never blocks on any
// consumer. Annotations: dyad_produce{dyad_prod_write, dyad_commit}.
func (c *Client) Produce(p *sim.Proc, ann *caliper.Annotator, path string, pl vfs.Payload) {
	path = vfs.Clean(path)
	defer ann.Region("dyad_produce")()

	ann.Begin("dyad_prod_write")
	c.broker.locks.WithExclusive(p, path, func() {
		if err := c.broker.staging.WriteFile(p, path, pl); err != nil {
			panic(fmt.Sprintf("dyad: staging write %s: %v", path, err))
		}
	})
	ann.End("dyad_prod_write")

	// Global metadata management: the extra production-side cost the paper
	// measures as DYAD's ~1.4x production overhead versus raw XFS.
	ann.Begin("dyad_commit")
	c.sys.kvs.Commit(p, c.broker.node, path, encodeMeta(meta{owner: c.broker.node.ID, size: pl.Size()}))
	c.sys.Produced++
	ann.End("dyad_commit")
}

// Consume returns the payload published under path, blocking until it has
// been produced. The returned handle aliases the producer's buffer — every
// hop (staging, broker, cache, consumer) shares one copy. Synchronization
// is adaptive:
//
//   - First touch of a flow: loosely-coupled KVS watch (consumer waits,
//     producer unaffected) — region dyad_fetch.
//   - Flow already synced: cheap KVS lookup plus file-lock check — still
//     dyad_fetch, but microseconds.
//
// Remote data moves via dyad_get_data (broker page-cache read + fabric
// transfer) into the local RAM cache (dyad_cons_store) and is then read
// back (read_single_buf).
func (c *Client) Consume(p *sim.Proc, ann *caliper.Annotator, path string) vfs.Payload {
	path = vfs.Clean(path)
	defer ann.Region("dyad_consume")()

	flow := flowOf(path)

	// --- Synchronization (dyad_fetch) ---
	ann.Begin("dyad_fetch")
	var m meta
	if c.sys.params.NoAdaptiveSync {
		// Ablation: always use the loosely-coupled watch protocol.
		ann.Begin("dyad_kvs_wait")
		m = decodeMeta(c.sys.kvs.WatchWait(p, c.broker.node, path))
		ann.End("dyad_kvs_wait")
	} else if !c.flowSynced[flow] {
		// Loose first-touch synchronization: the blocking KVS watch gets
		// its own region so analyses can split the one-time pipeline-fill
		// wait from steady-state KVS load.
		ann.Begin("dyad_kvs_wait")
		m = decodeMeta(c.sys.kvs.WaitFor(p, c.broker.node, path))
		ann.End("dyad_kvs_wait")
		c.flowSynced[flow] = true
	} else {
		raw, ok := c.sys.kvs.Lookup(p, c.broker.node, path)
		if !ok {
			// Producer fell behind the overlap: fall back to the loose
			// protocol for this file.
			ann.Begin("dyad_kvs_wait")
			raw = c.sys.kvs.WaitFor(p, c.broker.node, path)
			ann.End("dyad_kvs_wait")
		}
		m = decodeMeta(raw)
	}
	ann.End("dyad_fetch")

	// Client-library path resolution and cache management (movement
	// overhead of the middleware versus a raw filesystem call).
	p.Sleep(c.sys.params.ClientOverhead)

	local := m.owner == c.broker.node.ID

	var data vfs.Payload
	if !local {
		// --- Remote transfer (dyad_get_data) ---
		ann.Begin("dyad_get_data")
		owner := c.sys.brokers[m.owner]
		if owner == nil {
			panic(fmt.Sprintf("dyad: no broker on node %d for %s", m.owner, path))
		}
		// Request to the owner broker, broker-side page-cache read under a
		// shared lock, then an RDMA-style pull back over the fabric.
		c.sys.cl.Transfer(p, c.broker.node, owner.node, 192)
		owner.srv.Use(p, c.sys.params.BrokerService)
		owner.locks.WithShared(p, path, func() {
			got, ok := owner.staging.Tree().Get(path)
			if !ok {
				panic(fmt.Sprintf("dyad: broker missing staged file %s", path))
			}
			owner.cachedRead(p, got.Size())
			data = got
		})
		if c.sys.params.NoDirectTransfer {
			// Ablation: store-and-forward through the management node
			// instead of a direct producer->consumer pull.
			relay := c.sys.kvs.Node()
			c.sys.cl.Transfer(p, owner.node, relay, data.Size())
			c.sys.cl.Transfer(p, relay, c.broker.node, data.Size())
		} else {
			c.sys.cl.Transfer(p, owner.node, c.broker.node, data.Size())
		}
		c.sys.Fetched++
		ann.End("dyad_get_data")

		// --- Local cache store (dyad_cons_store) ---
		ann.Begin("dyad_cons_store")
		c.broker.locks.WithExclusive(p, path, func() {
			c.broker.cacheStore(p, data.Size())
			c.broker.cache.Put(path, data)
		})
		ann.End("dyad_cons_store")
	}

	// --- POSIX read from the node-local copy (read_single_buf) ---
	ann.Begin("read_single_buf")
	c.broker.locks.WithShared(p, path, func() {
		var got vfs.Payload
		var ok bool
		if local {
			got, ok = c.broker.staging.Tree().Get(path)
		} else {
			got, ok = c.broker.cache.Get(path)
		}
		if !ok {
			panic(fmt.Sprintf("dyad: local copy of %s vanished", path))
		}
		c.broker.cachedRead(p, got.Size())
		data = got
	})
	ann.End("read_single_buf")
	return data
}

// flowOf groups per-frame paths into a producer flow so the sync protocol
// switch is per producer-consumer pair, not per file: /dir/frame17.pb and
// /dir/frame18.pb belong to flow /dir.
func flowOf(path string) string {
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}
