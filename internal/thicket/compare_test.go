package thicket

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/caliper"
)

func TestCompareAlignsByPath(t *testing.T) {
	jac := FromProfiles([]*caliper.Profile{
		consumeProfile("c0", 10*time.Millisecond, 20*time.Millisecond, 5*time.Millisecond),
	})
	stmv := FromProfiles([]*caliper.Profile{
		consumeProfile("c0", 5*time.Millisecond, 200*time.Millisecond, 50*time.Millisecond),
	})
	cmp := Compare(jac, stmv)
	get := cmp.Row("dyad_get_data")
	if get == nil {
		t.Fatal("dyad_get_data missing")
	}
	if math.Abs(get.Ratio-10) > 1e-9 {
		t.Fatalf("get_data ratio %v, want 10", get.Ratio)
	}
	fetch := cmp.Row("dyad_fetch")
	if math.Abs(fetch.Ratio-0.5) > 1e-9 {
		t.Fatalf("fetch ratio %v, want 0.5", fetch.Ratio)
	}
	// Rows sorted by left mean descending: dyad_consume first.
	if cmp.Rows[0].Name != "dyad_consume" {
		t.Fatalf("first row %q", cmp.Rows[0].Name)
	}
}

func TestCompareHandlesMissingPaths(t *testing.T) {
	withGet := FromProfiles([]*caliper.Profile{
		consumeProfile("c0", time.Millisecond, 2*time.Millisecond, time.Millisecond),
	})
	withoutGet := FromProfiles([]*caliper.Profile{
		profileOf("c1", func(a *caliper.Annotator, c *clk) {
			a.Begin("dyad_consume")
			c.now += 4 * time.Millisecond
			a.End("dyad_consume")
		}),
	})
	cmp := Compare(withGet, withoutGet)
	get := cmp.Row("dyad_get_data")
	if get == nil {
		t.Fatal("path present in only one ensemble dropped")
	}
	if get.Right.Mean != 0 {
		t.Fatalf("missing side mean %v, want 0", get.Right.Mean)
	}
	if get.Ratio != 0 {
		t.Fatalf("ratio %v, want 0", get.Ratio)
	}
}

func TestCompareRender(t *testing.T) {
	a := FromProfiles([]*caliper.Profile{consumeProfile("c0", time.Millisecond, time.Millisecond, time.Millisecond)})
	b := FromProfiles([]*caliper.Profile{consumeProfile("c0", 2*time.Millisecond, 2*time.Millisecond, 2*time.Millisecond)})
	var buf bytes.Buffer
	Compare(a, b).Render(&buf, "JAC", "STMV")
	out := buf.String()
	for _, want := range []string{"JAC", "STMV", "dyad_consume", "2.0x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
