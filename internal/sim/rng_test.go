package sim

import (
	"math"
	"testing"
	"time"
)

// TestRNGStreamPinned pins the exact output of every RNG method against
// constants generated before the clamp fixes landed. If any of these
// change, every seeded timeline this repo has ever published shifts — do
// not "fix" the constants; fix the code. (This is also why Intn keeps its
// negligible modulo bias: an unbiased reduction draws a data-dependent
// number of values. See the Intn doc comment.)
func TestRNGStreamPinned(t *testing.T) {
	r := NewRNG(42)
	for i, want := range []uint64{
		0xbdd732262feb6e95, 0x28efe333b266f103, 0x47526757130f9f52,
		0x581ce1ff0e4ae394, 0x09bc585a244823f2, 0xde4431fa3c80db06,
	} {
		if got := r.Uint64(); got != want {
			t.Fatalf("Uint64 draw %d = %#016x, want %#016x", i, got, want)
		}
	}

	r = NewRNG(42)
	for i, want := range []float64{
		0.74156487877182331, 0.1599103928769201, 0.27860113025513866, 0.34419071652363753,
	} {
		if got := r.Float64(); got != want {
			t.Fatalf("Float64 draw %d = %.17g, want %.17g", i, got, want)
		}
	}

	r = NewRNG(42)
	for i, want := range []int{791898, 164266, 771887, 217601, 918603, 755473} {
		if got := r.Intn(1000003); got != want {
			t.Fatalf("Intn draw %d = %d, want %d", i, got, want)
		}
	}

	r = NewRNG(42)
	for i, want := range []float64{
		0.4147197504315307, -0.89188621362775622, 1.7295930879374024, 0.54562043618286471,
	} {
		if got := r.Norm(); got != want {
			t.Fatalf("Norm draw %d = %.17g, want %.17g", i, got, want)
		}
	}

	// Jitter at the workload's parameters (820ms frames, 0.4% relative std —
	// the paper sweep's exact call pattern).
	r = NewRNG(42)
	for i, want := range []time.Duration{821354838, 817073288, 825686129, 821785015} {
		if got := r.Jitter(820*time.Millisecond, 0.004); got != want {
			t.Fatalf("Jitter draw %d = %d, want %d", i, int64(got), int64(want))
		}
	}

	r = NewRNG(42)
	for i, want := range []time.Duration{1494963, 9165708, 6389870, 5332796} {
		if got := r.Exp(5 * time.Millisecond); got != want {
			t.Fatalf("Exp draw %d = %d, want %d", i, int64(got), int64(want))
		}
	}

	// The zero seed maps to the documented non-zero state.
	z := NewRNG(0)
	if got := z.Uint64(); got != 0x6e789e6aa1b965f4 {
		t.Fatalf("zero-seed first draw = %#016x, want 0x6e789e6aa1b965f4", got)
	}
}

// TestRNGEdgeCasesConsumeNothing pins which calls consume the stream:
// degenerate Jitter and Exp inputs return early WITHOUT drawing, so
// interleaving them never shifts subsequent samples. The trailing values
// only come out right if exactly the expected draws happened before them.
//
// Exp(mean <= 0) previously drew once and returned 0 via -0·log(u); no
// caller in the repo can pass a nonpositive mean (faults floors MeanOutage
// at 400ms, lustre noise requires BackgroundLoad in (0,1)), so making the
// degenerate case draw-free shifts no existing timeline.
func TestRNGEdgeCasesConsumeNothing(t *testing.T) {
	r := NewRNG(7)
	if got := r.Jitter(time.Second, 0); got != time.Second {
		t.Fatalf("Jitter(1s, 0) = %v, want 1s unchanged", got)
	}
	if got := r.Jitter(-time.Second, 0.25); got != -time.Second {
		t.Fatalf("Jitter(-1s, 0.25) = %v, want -1s unchanged", got)
	}
	if got := r.Exp(0); got != 0 {
		t.Fatalf("Exp(0) = %v, want 0", got)
	}
	if got := r.Exp(-time.Minute); got != 0 {
		t.Fatalf("Exp(-1m) = %v, want 0", got)
	}
	if got, want := r.Intn(97), 19; got != want {
		t.Fatalf("Intn after edge cases = %d, want %d (edge cases consumed draws)", got, want)
	}
	if got, want := r.Jitter(time.Second, 0.25), time.Duration(1731530462); got != want {
		t.Fatalf("Jitter after edge cases = %d, want %d", int64(got), int64(want))
	}
	if got, want := r.Exp(time.Millisecond), time.Duration(539687); got != want {
		t.Fatalf("Exp after edge cases = %d, want %d", int64(got), int64(want))
	}
	if got, want := r.Uint64(), uint64(0x73d33b666a1e21da); got != want {
		t.Fatalf("Uint64 after edge cases = %#016x, want %#016x", got, want)
	}
}

// TestRNGClampSaturates checks overflow saturates at MaxInt64 instead of
// wrapping to a negative duration the kernel would reject. The clamp is
// applied after the draw, so it can never move an in-range sample.
func TestRNGClampSaturates(t *testing.T) {
	const huge = time.Duration(math.MaxInt64)
	r := NewRNG(1)
	for i := 0; i < 64; i++ {
		if got := r.Jitter(huge, 3); got < 0 {
			t.Fatalf("Jitter(max, 3) draw %d went negative: %d", i, int64(got))
		}
	}
	for i := 0; i < 64; i++ {
		if got := r.Exp(huge); got < 0 {
			t.Fatalf("Exp(max) draw %d went negative: %d", i, int64(got))
		}
	}
	// A factor above 1 on the max duration must hit the ceiling exactly.
	sawCeil := false
	for i := 0; i < 256 && !sawCeil; i++ {
		sawCeil = r.Jitter(huge, 3) == huge
	}
	if !sawCeil {
		t.Fatal("Jitter(max, 3) never saturated at MaxInt64 in 256 draws")
	}
	if clampDuration(math.NaN()) != 0 {
		t.Fatal("clampDuration(NaN) != 0")
	}
	if clampDuration(math.Inf(1)) != huge {
		t.Fatal("clampDuration(+Inf) != MaxInt64")
	}
	if clampDuration(-1) != 0 {
		t.Fatal("clampDuration(-1) != 0")
	}
}

// TestIntnPanicsOnNonpositive pins the documented contract.
func TestIntnPanicsOnNonpositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			r := NewRNG(1)
			r.Intn(n)
		}()
	}
}
