// Package calib closes the loop between the simulator and the paper: it
// fits the cost-model parameters (SSD latency/bandwidth, NIC overhead,
// fabric hop latency, KVS commit cost, and the consumer head start the
// paper's job-launch protocol implies) against the published Table I–II
// derivations and Fig 5–7 headline ratios, and searches scenario space for
// qualitative predicates ("find a configuration where XFS beats DYAD",
// "the minimum fault rate that breaks the 10x win").
//
// Everything here is deterministic: the coarse grid, the pseudo-random
// probes, and the Nelder–Mead refinement are pure functions of (space,
// options), and every simulation underneath is byte-identical at any
// worker count — so a fit report is byte-identical between -j 1 and -j 8.
package calib

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dyad"
)

// Names of the tunable dimensions that live outside cluster.Spec.
const (
	// ParamKVSCommit is DYAD's KVS commit service time in seconds
	// (dyad.Params.KVS.CommitService) — the metadata-registration cost
	// behind the paper's 1.4x production-overhead headline.
	ParamKVSCommit = "kvs.commit"
	// ParamHeadStart is the producer job's head start over its consumer in
	// seconds (core.Config.ConsumerHeadStart) — the launch-protocol delay
	// behind the Fig 5–7 consumption-ratio headlines.
	ParamHeadStart = "headstart"
)

// Param is one tunable dimension of a Space.
type Param struct {
	// Name is a cluster spec parameter (cluster.SpecParamNames),
	// ParamKVSCommit, or ParamHeadStart.
	Name string
	// Lo and Hi bound the search, inclusive, in the parameter's SI unit.
	Lo, Hi float64
	// Levels is the number of coarse-grid points along this axis
	// (0 defaults to 3).
	Levels int
}

// levels returns the effective grid resolution.
func (p Param) levels() int {
	if p.Levels == 0 {
		return 3
	}
	return p.Levels
}

// Space is the set of parameters a calibration run may move.
type Space struct {
	Params []Param
}

// DefaultSpace brackets every tunable around its current default with
// generous room on both sides. The head start gets the finest grid: it is
// the axis the Fig 5 gap lives on.
func DefaultSpace() Space {
	return Space{Params: []Param{
		{Name: cluster.ParamSSDReadBW, Lo: 1.5e9, Hi: 6e9},
		{Name: cluster.ParamSSDWriteBW, Lo: 1e9, Hi: 4e9},
		{Name: cluster.ParamSSDReadLat, Lo: 20e-6, Hi: 240e-6},
		{Name: cluster.ParamSSDWriteLat, Lo: 20e-6, Hi: 320e-6},
		{Name: cluster.ParamNICOverhead, Lo: 1e-6, Hi: 12e-6},
		{Name: cluster.ParamFabricHopLat, Lo: 0.3e-6, Hi: 4.8e-6},
		{Name: ParamKVSCommit, Lo: 35e-6, Hi: 560e-6},
		{Name: ParamHeadStart, Lo: 0, Hi: 1.0, Levels: 9},
	}}
}

// Validate rejects spaces the optimizer cannot search: unknown or
// duplicate names, inverted/NaN/Inf bounds, negative grid resolution.
func (s Space) Validate() error {
	if len(s.Params) == 0 {
		return fmt.Errorf("calib: empty space")
	}
	seen := map[string]bool{}
	for _, p := range s.Params {
		if !cluster.IsSpecParam(p.Name) && p.Name != ParamKVSCommit && p.Name != ParamHeadStart {
			known := append(cluster.SpecParamNames(), ParamKVSCommit, ParamHeadStart)
			sort.Strings(known)
			return fmt.Errorf("calib: unknown parameter %q (have %v)", p.Name, known)
		}
		if seen[p.Name] {
			return fmt.Errorf("calib: duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
		if math.IsNaN(p.Lo) || math.IsNaN(p.Hi) || math.IsInf(p.Lo, 0) || math.IsInf(p.Hi, 0) {
			return fmt.Errorf("calib: %s: bounds must be finite, got [%g, %g]", p.Name, p.Lo, p.Hi)
		}
		if p.Lo >= p.Hi {
			return fmt.Errorf("calib: %s: inverted or empty bounds [%g, %g]", p.Name, p.Lo, p.Hi)
		}
		if p.Levels < 0 {
			return fmt.Errorf("calib: %s: negative grid levels %d", p.Name, p.Levels)
		}
	}
	return nil
}

// defaults returns the space's center point: each parameter's current
// simulator default, clamped into bounds.
func (s Space) defaults() []float64 {
	spec := cluster.CoronaProfile(1)
	dy := dyad.DefaultParams()
	pt := make([]float64, len(s.Params))
	for i, p := range s.Params {
		var v float64
		switch p.Name {
		case ParamKVSCommit:
			v = dy.KVS.CommitService.Seconds()
		case ParamHeadStart:
			v = 0
		default:
			var err error
			if v, err = spec.Param(p.Name); err != nil {
				panic(err) // unreachable: Validate vetted the name
			}
		}
		pt[i] = clamp(v, p.Lo, p.Hi)
	}
	return pt
}

func clamp(v, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, v))
}

// clampPoint bounds every coordinate of pt in place and returns it.
func (s Space) clampPoint(pt []float64) []float64 {
	for i, p := range s.Params {
		pt[i] = clamp(pt[i], p.Lo, p.Hi)
	}
	return pt
}

// Tune compiles a point into the hook MeasureCalibration threads through
// every run: spec parameters go through Config.SpecTune, the KVS commit
// cost through a DYADOverride, and the head start through
// Config.ConsumerHeadStart. A point equal to defaults() with zero head
// start leaves configs byte-identical to an untuned run.
func (s Space) Tune(pt []float64) func(core.Config) core.Config {
	if len(pt) != len(s.Params) {
		panic(fmt.Sprintf("calib: point has %d coordinates, space has %d", len(pt), len(s.Params)))
	}
	var specNames []string
	var specVals []float64
	commit, head := math.NaN(), math.NaN()
	for i, p := range s.Params {
		switch p.Name {
		case ParamKVSCommit:
			commit = pt[i]
		case ParamHeadStart:
			head = pt[i]
		default:
			specNames = append(specNames, p.Name)
			specVals = append(specVals, pt[i])
		}
	}
	return func(c core.Config) core.Config {
		if len(specNames) > 0 {
			c.SpecTune = func(sp *cluster.Spec) {
				for i, name := range specNames {
					if err := sp.SetParam(name, specVals[i]); err != nil {
						panic(err) // unreachable: bounds are validated positive finite
					}
				}
			}
		}
		if !math.IsNaN(commit) {
			params := dyad.DefaultParams()
			if c.DYADOverride != nil {
				params = *c.DYADOverride
			}
			params.KVS.CommitService = time.Duration(math.Round(commit * float64(time.Second)))
			c.DYADOverride = &params
		}
		if !math.IsNaN(head) {
			c.ConsumerHeadStart = time.Duration(math.Round(head * float64(time.Second)))
		}
		return c
	}
}
