package sim

import (
	"testing"
	"time"
)

// steadyAllocs measures the total heap allocations of one engine lifetime
// delivering `events` sleep events.
func steadyAllocs(t *testing.T, events int) float64 {
	t.Helper()
	return testing.AllocsPerRun(5, func() {
		e := NewEngine(1)
		e.Spawn("p", func(p *Proc) {
			for i := 0; i < events; i++ {
				p.Sleep(time.Microsecond)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// The kernel's steady state is allocation-free (DESIGN.md §3c), and the
// span-tracer hooks must keep it that way when tracing is off: scaling the
// event count 100x must not add a single allocation — everything measured
// belongs to engine setup. This is the tracing-off half of the tentpole's
// zero-cost contract; the instrumented components pay one nil check per
// operation and nothing else.
func TestSteadyStateZeroAllocsWithTracingOff(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation budget checked without -race")
	}
	base := steadyAllocs(t, 200)
	long := steadyAllocs(t, 20_000)
	if delta := long - base; delta > 0 {
		t.Fatalf("steady state allocates: %0.f allocs over 19800 extra events (base %.0f, long %.0f)", delta, base, long)
	}
}
