package dyad

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/xfs"
)

// A short broker crash: the consumer's fetch times out, backs off, and the
// retry lands after the restart — no degraded read needed.
func TestBrokerCrashRecoversViaRetry(t *testing.T) {
	e := sim.NewEngine(1)
	cl, sys := rig(e, 2)
	payload := []byte("frame-under-crash")
	sys.Broker(cl.Node(0)).Crash(100 * time.Millisecond)
	var got vfs.Payload
	e.Spawn("prod", func(p *sim.Proc) {
		if err := sys.NewClient(cl.Node(0)).Produce(p, nil, "/flow/f0", vfs.BytesPayload(payload)); err != nil {
			t.Errorf("produce: %v", err)
		}
	})
	e.Spawn("cons", func(p *sim.Proc) {
		var err error
		got, err = sys.NewClient(cl.Node(1)).Consume(p, nil, "/flow/f0")
		if err != nil {
			t.Errorf("consume: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("consumed %q, want %q", got.Bytes(), payload)
	}
	rec := sys.Recovery
	if rec.Timeouts < 1 || rec.Retries < 1 {
		t.Fatalf("recovery %+v: want at least one timeout and one retry", rec)
	}
	if rec.BrokerRestarts != 1 {
		t.Fatalf("BrokerRestarts = %d, want 1", rec.BrokerRestarts)
	}
	if rec.DegradedReads != 0 {
		t.Fatalf("short crash should not degrade; recovery %+v", rec)
	}
	if rec.RecoveryTime == 0 {
		t.Fatal("recovery time not accounted")
	}
	if sys.Fetched != 1 {
		t.Fatalf("Fetched = %d, want 1 (normal serve after restart)", sys.Fetched)
	}
}

// A crash longer than the whole retry budget: the consumer exhausts its
// retries and degrades to a direct read of the producer's staging NVMe,
// which survives broker crashes.
func TestBrokerCrashDegradesToStagingRead(t *testing.T) {
	e := sim.NewEngine(1)
	cl, sys := rig(e, 2)
	payload := bytes.Repeat([]byte("y"), 1<<18)
	sys.Broker(cl.Node(0)).Crash(time.Hour)
	var got vfs.Payload
	e.Spawn("prod", func(p *sim.Proc) {
		sys.NewClient(cl.Node(0)).Produce(p, nil, "/flow/f0", vfs.BytesPayload(payload))
	})
	e.Spawn("cons", func(p *sim.Proc) {
		var err error
		got, err = sys.NewClient(cl.Node(1)).Consume(p, nil, "/flow/f0")
		if err != nil {
			t.Errorf("consume: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("degraded payload mismatch")
	}
	rec := sys.Recovery
	wantTimeouts := int64(sys.params.FetchRetry.Max) + 1
	if rec.Timeouts != wantTimeouts || rec.Retries != int64(sys.params.FetchRetry.Max) {
		t.Fatalf("recovery %+v: want %d timeouts, %d retries", rec, wantTimeouts, sys.params.FetchRetry.Max)
	}
	if rec.DegradedReads != 1 || rec.DegradedBytes != int64(len(payload)) {
		t.Fatalf("recovery %+v: want one degraded read of %d bytes", rec, len(payload))
	}
}

// Broker down and its staging device dead too: the consumer falls over to
// the shared-filesystem mirror installed with SetFallback.
func TestBrokerAndDeviceDeadFallsBackToMirror(t *testing.T) {
	e := sim.NewEngine(1)
	cl, sys := rig(e, 3)
	mirror := xfs.New(cl.Node(2), xfs.DefaultParams())
	sys.SetFallback(func(*cluster.Node) vfs.FS { return mirror })
	payload := bytes.Repeat([]byte("z"), 1<<16)
	e.Spawn("prod", func(p *sim.Proc) {
		if err := sys.NewClient(cl.Node(0)).Produce(p, nil, "/flow/f0", vfs.BytesPayload(payload)); err != nil {
			t.Errorf("produce: %v", err)
		}
		// After production, the producer node dies entirely.
		sys.Broker(cl.Node(0)).Crash(time.Hour)
		cl.Node(0).SSD.Fail()
	})
	var got vfs.Payload
	e.Spawn("cons", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond) // let the producer finish and die
		var err error
		got, err = sys.NewClient(cl.Node(1)).Consume(p, nil, "/flow/f0")
		if err != nil {
			t.Errorf("consume: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("mirror payload mismatch")
	}
	if sys.Recovery.DegradedReads != 1 {
		t.Fatalf("recovery %+v: want one degraded (mirror) read", sys.Recovery)
	}
}

// Same total failure with no mirror: Consume must return — not hang — with
// a chain naming every cause: recovery exhausted, fetch timeout, broker
// down.
func TestExhaustedRecoveryReturnsWrappedSentinels(t *testing.T) {
	e := sim.NewEngine(1)
	cl, sys := rig(e, 2)
	var consumeErr error
	e.Spawn("prod", func(p *sim.Proc) {
		sys.NewClient(cl.Node(0)).Produce(p, nil, "/flow/f0", vfs.SizeOnly(1<<16))
		sys.Broker(cl.Node(0)).Crash(time.Hour)
		cl.Node(0).SSD.Fail()
	})
	e.Spawn("cons", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		_, consumeErr = sys.NewClient(cl.Node(1)).Consume(p, nil, "/flow/f0")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if consumeErr == nil {
		t.Fatal("consume against a fully dead producer succeeded")
	}
	for _, sentinel := range []error{faults.ErrExhausted, faults.ErrTimeout, faults.ErrBrokerDown} {
		if !errors.Is(consumeErr, sentinel) {
			t.Errorf("error %v missing sentinel %v", consumeErr, sentinel)
		}
	}
}

// A crash wipes the broker's RAM cache but not its staging area.
func TestCrashLosesCacheKeepsStaging(t *testing.T) {
	e := sim.NewEngine(1)
	cl, sys := rig(e, 2)
	e.Spawn("prod", func(p *sim.Proc) {
		sys.NewClient(cl.Node(0)).Produce(p, nil, "/flow/f0", vfs.SizeOnly(4096))
	})
	e.Spawn("cons", func(p *sim.Proc) {
		sys.NewClient(cl.Node(1)).Consume(p, nil, "/flow/f0")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	b := sys.Broker(cl.Node(1))
	if _, ok := b.Cache().Get("/flow/f0"); !ok {
		t.Fatal("consumer-side cache copy missing before crash")
	}
	b.Crash(time.Second)
	if _, ok := b.Cache().Get("/flow/f0"); ok {
		t.Fatal("RAM cache survived the crash")
	}
	owner := sys.Broker(cl.Node(0))
	owner.Crash(time.Second)
	if _, ok := owner.Staging().Tree().Get("/flow/f0"); !ok {
		t.Fatal("staging area lost in crash (NVMe must survive)")
	}
}

// Producing onto a failed device surfaces the sentinel and never publishes
// metadata for the lost frame.
func TestProduceOnFailedDeviceErrorsWithoutCommit(t *testing.T) {
	e := sim.NewEngine(1)
	cl, sys := rig(e, 1)
	cl.Node(0).SSD.Fail()
	var produceErr error
	e.Spawn("prod", func(p *sim.Proc) {
		produceErr = sys.NewClient(cl.Node(0)).Produce(p, nil, "/flow/f0", vfs.SizeOnly(1<<16))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(produceErr, faults.ErrDeviceFailed) {
		t.Fatalf("produce err = %v, want ErrDeviceFailed", produceErr)
	}
	if sys.Produced != 0 {
		t.Fatalf("Produced = %d after a failed staging write", sys.Produced)
	}
	if sys.KVS().Len() != 0 {
		t.Fatal("metadata committed for a frame that was never staged")
	}
}

// Fault-free runs must record zero recovery activity — the metrics are a
// cheap proxy for "the healthy path did not change".
func TestHealthyRunRecordsNoRecovery(t *testing.T) {
	e := sim.NewEngine(1)
	cl, sys := rig(e, 2)
	e.Spawn("prod", func(p *sim.Proc) {
		sys.NewClient(cl.Node(0)).Produce(p, nil, "/flow/f0", vfs.SizeOnly(1<<20))
	})
	e.Spawn("cons", func(p *sim.Proc) {
		sys.NewClient(cl.Node(1)).Consume(p, nil, "/flow/f0")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sys.Recovery.Zero() {
		t.Fatalf("healthy run recorded recovery activity: %+v", sys.Recovery)
	}
}
