package core

import (
	"fmt"
	"strings"
	"testing"
)

// mixedBatch is a heterogeneous DYAD/XFS/Lustre config batch exercising
// every backend, both placements, jitter, and Lustre noise.
func mixedBatch() []Config {
	m := tinyModel()
	return []Config{
		{Backend: DYAD, Model: m, Frames: 8, Pairs: 2, SingleNode: true, Seed: 1, ComputeJitter: 0.01},
		{Backend: XFS, Model: m, Frames: 8, Pairs: 2, SingleNode: true, Seed: 2, ComputeJitter: 0.01},
		{Backend: Lustre, Model: m, Frames: 8, Pairs: 4, Seed: 3, ComputeJitter: 0.01, LustreNoise: true},
		{Backend: DYAD, Model: m, Frames: 8, Pairs: 4, Seed: 4, ComputeJitter: 0.02},
		{Backend: Lustre, Model: m, Frames: 6, Pairs: 2, Seed: 5},
		{Backend: DYAD, Model: m, Frames: 6, Pairs: 1, SingleNode: true, Seed: 6, KeepProfiles: true},
	}
}

// canonical renders every measurement a Result carries (including profile
// trees when kept) so byte-equality of the strings is byte-equality of the
// results.
func canonical(results []*Result) string {
	var sb strings.Builder
	for i, r := range results {
		if r == nil {
			fmt.Fprintf(&sb, "[%d] <nil>\n", i)
			continue
		}
		fmt.Fprintf(&sb, "[%d] %s prod=%v cons=%v makespan=%v frames=%d bytes=%d recovery=%v\n",
			i, r.Cfg.Label(), r.Producer, r.Consumer, r.Makespan, r.FramesRead, r.BytesRead, r.Recovery)
		if !r.Capacity.Zero() {
			// Only pressured runs print the capacity record, so pre-capacity
			// golden fixtures stay byte-identical.
			fmt.Fprintf(&sb, "    capacity=%v\n", r.Capacity)
		}
		for _, p := range r.ProducerProfiles {
			p.Render(&sb)
		}
		for _, p := range r.ConsumerProfiles {
			p.Render(&sb)
		}
	}
	return sb.String()
}

func TestRunManyPreservesOrder(t *testing.T) {
	cfgs := mixedBatch()
	results, err := RunMany(cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cfgs) {
		t.Fatalf("got %d results, want %d", len(results), len(cfgs))
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("result %d is nil", i)
		}
		if r.Cfg.Label() != cfgs[i].Label() {
			t.Errorf("result %d is %s, want %s (order not preserved)", i, r.Cfg.Label(), cfgs[i].Label())
		}
	}
}

// The tentpole guarantee: the worker count affects only wall-clock time,
// never measurements. A parallel batch must be byte-identical to a serial
// one for a mixed DYAD/XFS/Lustre batch.
func TestRunManyParallelMatchesSerial(t *testing.T) {
	cfgs := mixedBatch()
	serial, err := RunMany(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunMany(cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, b := canonical(serial), canonical(parallel)
	if a != b {
		t.Fatalf("workers=1 vs workers=8 differ:\n--- serial ---\n%s--- parallel ---\n%s", a, b)
	}
}

// Same Config + seed run twice yields identical measurements.
func TestRunManyDeterministicAcrossInvocations(t *testing.T) {
	cfgs := mixedBatch()
	first, err := RunMany(cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunMany(cfgs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if canonical(first) != canonical(second) {
		t.Fatal("two RunMany invocations of the same batch differ")
	}
}

func TestRunManyCollectsAllErrors(t *testing.T) {
	m := tinyModel()
	good := Config{Backend: DYAD, Model: m, Frames: 4, Pairs: 1, SingleNode: true, Seed: 1}
	badPairs := good
	badPairs.Pairs = 0
	badFrames := good
	badFrames.Frames = 0
	cfgs := []Config{good, badPairs, good, badFrames, good}
	results, err := RunMany(cfgs, 4)
	if err == nil {
		t.Fatal("batch with invalid configs returned nil error")
	}
	for _, want := range []string{"run 1", "run 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q (errors not collected)", err, want)
		}
	}
	for _, i := range []int{0, 2, 4} {
		if results[i] == nil {
			t.Errorf("valid run %d aborted by sibling failure", i)
		}
	}
	for _, i := range []int{1, 3} {
		if results[i] != nil {
			t.Errorf("failed run %d has a result", i)
		}
	}
}

func TestRunManyEmptyBatch(t *testing.T) {
	results, err := RunMany(nil, 8)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: results=%v err=%v", results, err)
	}
}

// RepeatWorkers with workers=1 and workers=8 must aggregate identically:
// the seed schedule is fixed per repetition index, not per worker.
func TestRepeatWorkersDeterministicAggregates(t *testing.T) {
	m := tinyModel()
	cfg := Config{Backend: Lustre, Model: m, Frames: 8, Pairs: 2, Seed: 77, ComputeJitter: 0.02, LustreNoise: true}
	serial, err := RepeatWorkers(cfg, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RepeatWorkers(cfg, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if canonical(serial) != canonical(parallel) {
		t.Fatal("RepeatWorkers results differ between workers=1 and workers=8")
	}
	// Aggregate embeds Config, which carries func-typed hooks (SpecTune) and
	// is not comparable; compare the summaries field by field.
	sa, pa := Aggregated(serial), Aggregated(parallel)
	if sa.Reps != pa.Reps || sa.ProdMovement != pa.ProdMovement || sa.ProdIdle != pa.ProdIdle ||
		sa.ConsMovement != pa.ConsMovement || sa.ConsIdle != pa.ConsIdle || sa.Makespan != pa.Makespan {
		t.Fatalf("aggregates differ:\n%+v\n%+v", sa, pa)
	}
	if sa.Makespan.Std == 0 {
		t.Error("jittered reps should vary across seeds")
	}
}

func TestRepeatWorkersRejectsZeroReps(t *testing.T) {
	if _, err := RepeatWorkers(Config{}, 0, 2); err == nil {
		t.Fatal("reps=0 accepted")
	}
}
