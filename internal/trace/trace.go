// Package trace is the deterministic virtual-time span tracer of the
// simulation substrate. Every modeled operation — an SSD read, a network
// transfer, an RPC, a KVS lookup, a journal commit, a recovery wait —
// can emit one Span stamped from the virtual clock. Because spans carry
// only virtual timestamps and are appended in event-execution order,
// a run's span stream is a pure function of (config, seed): byte-identical
// across worker counts and across hosts.
//
// Tracing is a zero-cost abstraction when disabled: the Recorder is used
// through a nil pointer, Emit on a nil Recorder returns immediately, and
// Span values passed by value never escape to the heap. The steady-state
// allocation budget of DESIGN.md §3c is unchanged with tracing off.
//
// Span classes implement the paper's time-decomposition methodology
// (Figs. 4-7): ClassMovement/ClassIdle/ClassCompute spans are emitted at
// workflow level and are disjoint in time, so summing them per class
// reproduces the caliper/thicket movement-vs-idle split. ClassRecovery
// spans mark fault-recovery waits (timeouts, backoff, failover, link
// stalls); they nest inside workflow spans and are reported as a separate
// overlapping column, mirroring faults.Metrics.RecoveryTime. ClassDetail
// spans are fine-grained component operations for the Chrome timeline and
// the per-operation counters; they are excluded from the breakdown sums.
package trace

import (
	"sort"
	"time"
)

// Class tags how a span participates in the paper-style time breakdown.
type Class uint8

const (
	// ClassDetail marks fine-grained component operations (SSD I/O, wire
	// transfers, RPC legs, journal commits). Detail spans nest inside
	// workflow spans and are excluded from breakdown sums.
	ClassDetail Class = iota
	// ClassMovement marks workflow-level data-movement time (the paper's
	// "data movement": write/read/produce/consume call time).
	ClassMovement
	// ClassIdle marks workflow-level synchronization idle time (explicit
	// sync waits, DYAD metadata fetch waits).
	ClassIdle
	// ClassCompute marks modeled application compute (MD step time,
	// serialization, analytics).
	ClassCompute
	// ClassRecovery marks fault-recovery waits (RPC timeouts, retry
	// backoff, failover, link stalls, degraded reads). Recovery spans
	// overlap movement/idle spans and are reported as their own column.
	ClassRecovery
	// ClassBackpressure marks producer stalls against a full finite-capacity
	// staging store (internal/capacity): the writer blocked until
	// consumption or eviction freed space. Like recovery, back-pressure
	// spans overlap movement spans and get their own breakdown column.
	ClassBackpressure
)

// String returns the class name used in call paths and trace categories.
func (c Class) String() string {
	switch c {
	case ClassMovement:
		return "movement"
	case ClassIdle:
		return "idle"
	case ClassCompute:
		return "compute"
	case ClassRecovery:
		return "recovery"
	case ClassBackpressure:
		return "backpressure"
	default:
		return "detail"
	}
}

// Span is one modeled operation on the virtual timeline. Start is virtual
// time since the beginning of the run; Dur is the operation's virtual
// duration (zero for instantaneous markers). Bytes is the payload moved,
// when the operation moves data. Attr is an optional free-form attribute
// (a device name, a file path, a fault target).
type Span struct {
	Proc      string
	Component string
	Name      string
	Class     Class
	Start     time.Duration
	Dur       time.Duration
	Bytes     int64
	Attr      string
}

// Recorder accumulates the spans of one run. The zero value is ready to
// use. A nil *Recorder is valid and inert: every method is nil-safe, so
// instrumentation sites call Emit unconditionally and pay only a nil check
// when tracing is off.
//
// A recorder returned by ChromeStream.StartRun runs in streaming mode:
// spans are serialized the moment they are emitted and never retained, and
// per-operation statistics are folded incrementally (Stats). Streaming
// recorder memory is O(distinct procs + operation kinds) regardless of run
// length — the bounded-memory mode for million-event runs.
type Recorder struct {
	spans []Span

	// Streaming mode (ChromeStream.StartRun); nil for buffered recorders.
	stream *ChromeStream
	pid    int
	tids   map[string]int // proc -> Chrome tid, in first-appearance order
	agg    Aggregator
}

// NewRecorder returns an empty buffered recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit records one span: appended in buffered mode, serialized to the
// Chrome stream (and folded into the incremental statistics) in streaming
// mode. On a nil recorder it is a no-op; the span value stays on the
// caller's stack, so disabled tracing allocates nothing.
func (r *Recorder) Emit(s Span) {
	if r == nil {
		return
	}
	if r.stream != nil {
		r.stream.span(r, s)
		r.agg.Observe(s)
		return
	}
	r.spans = append(r.spans, s)
}

// Streaming reports whether the recorder serializes spans on emission
// instead of retaining them (false on a nil recorder).
func (r *Recorder) Streaming() bool { return r != nil && r.stream != nil }

// Stats returns the run's per-operation statistics: the incrementally
// folded aggregates of a streaming recorder, or Aggregate over the retained
// spans of a buffered one. Nil on a nil recorder.
func (r *Recorder) Stats() []OpStat {
	if r == nil {
		return nil
	}
	if r.stream != nil {
		return r.agg.Stats()
	}
	return Aggregate(r.spans)
}

// Enabled reports whether spans are being recorded. Sites that must build
// an attribute string or capture a start time guard on it so disabled
// tracing skips the work entirely.
func (r *Recorder) Enabled() bool { return r != nil }

// Len returns the number of recorded spans (0 on a nil recorder).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Spans returns the recorded spans in emission order (event-execution
// order, deterministic). The slice is owned by the recorder.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// OpStat aggregates every span of one (component, name) operation:
// invocation count, bytes moved, total/min/max duration, and a coarse
// log-scale duration histogram.
type OpStat struct {
	Component string
	Name      string
	Class     Class
	Count     int64
	Bytes     int64
	Total     time.Duration
	Min       time.Duration
	Max       time.Duration
	// Hist buckets span durations by power-of-four microseconds:
	// bucket i counts durations d with 4^(i-1)µs <= d < 4^i µs (bucket 0
	// is d < 1µs, the last bucket is unbounded).
	Hist [HistBuckets]int64
}

// HistBuckets is the number of duration histogram buckets in OpStat.
const HistBuckets = 9

// HistBucket maps a duration to its log-scale histogram bucket. The
// bucketing is shared with metrics.Histogram so one percentile estimator
// serves both.
func HistBucket(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 0 && b < HistBuckets-1 {
		us >>= 2
		b++
	}
	return b
}

// histBucketLo returns bucket b's inclusive lower duration bound.
func histBucketLo(b int) time.Duration {
	if b <= 0 {
		return 0
	}
	return time.Duration(int64(1)<<(2*uint(b-1))) * time.Microsecond // 4^(b-1)µs
}

// histBucketHi returns bucket b's exclusive upper duration bound, or max
// for the unbounded last bucket.
func histBucketHi(b int, max time.Duration) time.Duration {
	if b >= HistBuckets-1 {
		return max
	}
	return time.Duration(int64(1)<<(2*uint(b))) * time.Microsecond // 4^b µs
}

// HistogramPercentile estimates the p-th percentile (0-100) of a log-scale
// duration histogram with the given observation count and observed min/max.
// It walks the buckets to the one containing the fractional target rank and
// interpolates linearly inside it, with the bucket's bounds tightened to
// [min, max]. Accuracy is bounded by bucket width (a factor of 4), exact
// when all observations share one bucket clamped by min==max. Deterministic:
// pure integer/float arithmetic over the counts.
func HistogramPercentile(hist *[HistBuckets]int64, count int64, min, max time.Duration, p float64) time.Duration {
	if count <= 0 {
		return 0
	}
	if p <= 0 {
		return min
	}
	if p >= 100 {
		return max
	}
	target := p / 100 * float64(count)
	var cum int64
	for b := 0; b < HistBuckets; b++ {
		n := hist[b]
		if n == 0 {
			continue
		}
		if float64(cum+n) < target {
			cum += n
			continue
		}
		lo, hi := histBucketLo(b), histBucketHi(b, max)
		if lo < min {
			lo = min
		}
		if hi > max {
			hi = max
		}
		if hi < lo {
			hi = lo
		}
		frac := (target - float64(cum)) / float64(n)
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return max
}

// Percentile estimates the p-th percentile (0-100) of the operation's span
// durations from its log-scale histogram.
func (st *OpStat) Percentile(p float64) time.Duration {
	return HistogramPercentile(&st.Hist, st.Count, st.Min, st.Max, p)
}

// P50 estimates the operation's median duration.
func (st *OpStat) P50() time.Duration { return st.Percentile(50) }

// P99 estimates the operation's 99th-percentile duration.
func (st *OpStat) P99() time.Duration { return st.Percentile(99) }

// Aggregator folds spans into per-operation statistics one at a time — the
// incremental core of Aggregate, and what streaming recorders use so
// SpanStats survive without the span vector. The zero value is ready.
type Aggregator struct {
	idx   map[[2]string]int
	stats []OpStat
}

// Observe folds one span into its (component, name) operation.
func (a *Aggregator) Observe(s Span) {
	if a.idx == nil {
		a.idx = make(map[[2]string]int)
	}
	key := [2]string{s.Component, s.Name}
	i, ok := a.idx[key]
	if !ok {
		i = len(a.stats)
		a.idx[key] = i
		a.stats = append(a.stats, OpStat{
			Component: s.Component, Name: s.Name, Class: s.Class,
			Min: s.Dur, Max: s.Dur,
		})
	}
	st := &a.stats[i]
	st.Count++
	st.Bytes += s.Bytes
	st.Total += s.Dur
	if s.Dur < st.Min {
		st.Min = s.Dur
	}
	if s.Dur > st.Max {
		st.Max = s.Dur
	}
	st.Hist[HistBucket(s.Dur)]++
}

// Stats returns a copy of the folded statistics sorted by (component,
// name); the aggregator can keep observing afterwards.
func (a *Aggregator) Stats() []OpStat {
	stats := append([]OpStat(nil), a.stats...)
	sort.SliceStable(stats, func(i, j int) bool {
		if stats[i].Component != stats[j].Component {
			return stats[i].Component < stats[j].Component
		}
		return stats[i].Name < stats[j].Name
	})
	return stats
}

// Aggregate folds a span stream into per-operation statistics, sorted by
// (component, name). The result is deterministic for a deterministic span
// stream.
func Aggregate(spans []Span) []OpStat {
	var a Aggregator
	for _, s := range spans {
		a.Observe(s)
	}
	return a.Stats()
}
