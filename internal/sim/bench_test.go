package sim

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkSleepEvents measures kernel throughput: one process sleeping
// b.N times (schedule + heap + baton passing per event). The steady-state
// allocation budget is zero: deliver events carry a proc index, not a
// closure, and the heap slice is reused.
func BenchmarkSleepEvents(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkManyProcs measures baton passing across 100 interleaved procs.
func BenchmarkManyProcs(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	const procs = 100
	steps := b.N/procs + 1
	e.Prealloc(procs, procs+1)
	for i := 0; i < procs; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for s := 0; s < steps; s++ {
				p.Sleep(time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSharded measures the sharded engine's per-event cost against the
// serial loop on the same workload (100 procs, interleaved sleeps), at 1
// (serial), 2, and 8 shards. On a single-core host the delta IS the PDES
// overhead budget: window barriers plus merge-heap churn, with no cores to
// win the heap maintenance back. DESIGN.md §3g records the measurements.
func BenchmarkSharded(b *testing.B) {
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("shards=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			e := NewEngine(1)
			if workers > 1 {
				e.SetShardWorkers(workers)
				e.SetLookahead(4 * time.Microsecond)
			}
			const procs = 100
			steps := b.N/procs + 1
			e.Prealloc(procs, procs+1)
			for i := 0; i < procs; i++ {
				e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
					for s := 0; s < steps; s++ {
						p.Sleep(time.Duration(1+i%7) * time.Microsecond)
					}
				})
			}
			b.ResetTimer()
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkResourceContention measures queued grants under contention.
func BenchmarkResourceContention(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	r := NewResource(e, "dev", 1)
	const procs = 16
	steps := b.N/procs + 1
	for i := 0; i < procs; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for s := 0; s < steps; s++ {
				r.Use(p, 100*time.Nanosecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWakeBlock measures the Block/Wake baton-passing fast path: two
// processes handing control back and forth with no timer events involved.
func BenchmarkWakeBlock(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	var pa, pb *Proc
	rounds := b.N/2 + 1
	pa = e.Spawn("a", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			p.Block()
			pb.Wake()
		}
	})
	pb = e.Spawn("b", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			pa.Wake()
			p.Block()
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHeapChurn10k measures push/pop throughput with 10k+ events
// resident in the queue: every proc keeps one pending timer, so each Sleep
// sifts through a deep heap. This is the paper-scale regime (thousands of
// concurrent producer/consumer/server processes).
func BenchmarkHeapChurn10k(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	const procs = 10_000
	steps := b.N/procs + 1
	e.Prealloc(procs, procs+1)
	for i := 0; i < procs; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for s := 0; s < steps; s++ {
				// Spread wakeups so the heap stays full and ordering work
				// is non-trivial (random keys, not FIFO).
				p.Sleep(time.Duration(1+p.Rand().Intn(1000)) * time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRNG measures the deterministic random stream.
func BenchmarkRNG(b *testing.B) {
	b.ReportAllocs()
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
