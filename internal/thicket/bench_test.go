package thicket

import (
	"testing"
	"time"

	"repro/internal/caliper"
)

// BenchmarkEnsemble measures merging 64 profiles of a consume-shaped tree.
func BenchmarkEnsemble(b *testing.B) {
	b.ReportAllocs()
	profiles := make([]*caliper.Profile, 64)
	for i := range profiles {
		profiles[i] = consumeProfile("c", time.Duration(i)*time.Millisecond, time.Millisecond, time.Millisecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FromProfiles(profiles)
	}
}

// BenchmarkQuery measures a predicate query against an ensembled tree.
func BenchmarkQuery(b *testing.B) {
	b.ReportAllocs()
	profiles := make([]*caliper.Profile, 16)
	for i := range profiles {
		profiles[i] = consumeProfile("c", time.Millisecond, time.Millisecond, time.Millisecond)
	}
	e := FromProfiles(profiles)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query("//dyad_consume/*[mean>0.5ms]"); err != nil {
			b.Fatal(err)
		}
	}
}
