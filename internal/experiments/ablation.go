package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dyad"
	"repro/internal/stats"
)

// Ablation quantifies the contribution of each DYAD mechanism the paper's
// Figure 2 credits — node-local storage accelerators, multi-protocol
// adaptive synchronization, and direct (RDMA) producer->consumer transfer —
// by disabling them one at a time on the two-node JAC workload and
// comparing against full DYAD and Lustre. This extends the paper's
// evaluation (which only compares whole systems) with a per-mechanism
// breakdown.
func Ablation(o Options) (*Report, error) {
	o = o.Defaults()
	jac := mustModel("JAC")
	r := &Report{
		ID:      "ablation",
		Title:   "DYAD mechanism ablation (JAC, 8 pairs, two node groups)",
		Columns: append([]string{"variant"}, stdCols...),
	}

	type variant struct {
		name   string
		params *dyad.Params
	}
	full := dyad.DefaultParams()
	noSync := full
	noSync.NoAdaptiveSync = true
	noBB := full
	noBB.NoBurstBuffer = true
	noDirect := full
	noDirect.NoDirectTransfer = true
	noAll := full
	noAll.NoAdaptiveSync = true
	noAll.NoBurstBuffer = true
	noAll.NoDirectTransfer = true

	variants := []variant{
		{"DYAD (full)", &full},
		{"DYAD -adaptive-sync", &noSync},
		{"DYAD -burst-buffer", &noBB},
		{"DYAD -direct-transfer", &noDirect},
		{"DYAD -all-three", &noAll},
	}

	var fullAgg core.Aggregate
	aggs := make(map[string]core.Aggregate, len(variants)+2)
	for _, v := range variants {
		agg, err := runAgg(core.Config{
			Backend: core.DYAD, Model: jac, Pairs: 8, DYADOverride: v.params,
		}, o)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.name, err)
		}
		aggs[v.name] = agg
		if v.name == "DYAD (full)" {
			fullAgg = agg
		}
		r.Rows = append(r.Rows, append([]string{v.name}, aggRow(agg)...))
	}
	// The decisive ablation: keep DYAD's transport but serialize producer
	// and consumer with the traditional coarse-grained coupling. This
	// isolates the loose coupling itself — the mechanism behind the
	// paper's Finding 1.
	coarse, err := runAgg(core.Config{
		Backend: core.DYAD, Model: jac, Pairs: 8, ForceCoarseSync: true,
	}, o)
	if err != nil {
		return nil, err
	}
	aggs["DYAD +coarse-sync"] = coarse
	r.Rows = append(r.Rows, append([]string{"DYAD +coarse-sync"}, aggRow(coarse)...))
	lustreAgg, err := runAgg(core.Config{Backend: core.Lustre, Model: jac, Pairs: 8}, o)
	if err != nil {
		return nil, err
	}
	aggs["Lustre"] = lustreAgg
	r.Rows = append(r.Rows, append([]string{"Lustre"}, aggRow(lustreAgg)...))

	slowdown := func(name string) float64 {
		return stats.Ratio(aggs[name].ConsTotalMean(), fullAgg.ConsTotalMean())
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("consumption slowdown vs full DYAD — -adaptive-sync: %s, -burst-buffer: %s, -direct-transfer: %s, -all-three: %s, +coarse-sync: %s, Lustre: %s",
			stats.FormatRatioPrec(slowdown("DYAD -adaptive-sync"), 2),
			stats.FormatRatioPrec(slowdown("DYAD -burst-buffer"), 2),
			stats.FormatRatioPrec(slowdown("DYAD -direct-transfer"), 2),
			stats.FormatRatioPrec(slowdown("DYAD -all-three"), 2),
			stats.FormatRatioPrec(slowdown("DYAD +coarse-sync"), 1),
			stats.FormatRatioPrec(slowdown("Lustre"), 1)),
		"the transport mechanisms matter at the percent level; losing the loose coupling (+coarse-sync) costs orders of magnitude — the synchronization model, not the transport, drives the paper's headline gaps",
	)
	return r, nil
}
