package critpath

import (
	"sort"

	"repro/internal/trace"
)

// DiffRow is one blame bucket compared across two runs. Delta = B - A; a
// positive delta is time run B spent on this edge that run A did not.
type DiffRow struct {
	Class     trace.Class
	Component string
	Name      string
	Kind      string
	A         Time
	B         Time
	Delta     Time
}

// ExplainDiff is the differential critical-path report between two runs of
// the same workload on different backends. Because each side's blame rows
// tile its makespan exactly, the row deltas sum to the makespan gap minus
// the (normally zero) untracked delta — so the table mechanically
// attributes the gap to named graph edges.
type ExplainDiff struct {
	LabelA     string
	LabelB     string
	MakespanA  Time
	MakespanB  Time
	Gap        Time // MakespanB - MakespanA
	Rows       []DiffRow
	Named      Time // sum of row deltas
	UntrackedA Time
	UntrackedB Time
}

// AttributionPct is the share of the makespan gap the named rows explain,
// in percent. 100 means every nanosecond of the gap lands on a named edge.
func (d *ExplainDiff) AttributionPct() float64 {
	if d.Gap == 0 {
		return 100
	}
	return 100 * float64(d.Named) / float64(d.Gap)
}

type diffKey struct {
	class     trace.Class
	component string
	name      string
	kind      string
}

// Diff compares two extracted critical paths edge-by-edge. Rows are sorted
// by descending delta (run B's excesses first), with a deterministic
// component/name tie-break.
func Diff(labelA string, a *CritPath, labelB string, b *CritPath) *ExplainDiff {
	d := &ExplainDiff{
		LabelA: labelA, LabelB: labelB,
		MakespanA: a.Makespan, MakespanB: b.Makespan,
		Gap:        b.Makespan - a.Makespan,
		UntrackedA: a.Untracked, UntrackedB: b.Untracked,
	}
	rows := make(map[diffKey]*DiffRow)
	at := func(r BlameRow) *DiffRow {
		k := diffKey{r.Class, r.Component, r.Name, r.Kind}
		row := rows[k]
		if row == nil {
			row = &DiffRow{Class: r.Class, Component: r.Component, Name: r.Name, Kind: r.Kind}
			rows[k] = row
		}
		return row
	}
	for _, r := range a.Rows {
		at(r).A += r.Total
	}
	for _, r := range b.Rows {
		at(r).B += r.Total
	}
	for _, row := range rows {
		row.Delta = row.B - row.A
		d.Named += row.Delta
		d.Rows = append(d.Rows, *row)
	}
	sort.Slice(d.Rows, func(i, j int) bool {
		x, y := d.Rows[i], d.Rows[j]
		if x.Delta != y.Delta {
			return x.Delta > y.Delta
		}
		if x.Component != y.Component {
			return x.Component < y.Component
		}
		if x.Name != y.Name {
			return x.Name < y.Name
		}
		if x.Class != y.Class {
			return x.Class < y.Class
		}
		return x.Kind < y.Kind
	})
	return d
}
