package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/capacity"
	"repro/internal/faults"
)

// TestCapacityValidation covers the new Config.Validate rules.
func TestCapacityValidation(t *testing.T) {
	m := tinyModel()
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"lustre with capacity",
			Config{Backend: Lustre, Model: m, Frames: 1, Pairs: 1,
				Capacity: &capacity.Spec{StagingBytes: 1 << 20}}, false},
		{"xfs with cache budget",
			Config{Backend: XFS, Model: m, Frames: 1, Pairs: 1, SingleNode: true,
				Capacity: &capacity.Spec{CacheBytes: 1 << 20}}, false},
		{"negative staging",
			Config{Backend: DYAD, Model: m, Frames: 1, Pairs: 1, SingleNode: true,
				Capacity: &capacity.Spec{StagingBytes: -1}}, false},
		{"unknown policy",
			Config{Backend: DYAD, Model: m, Frames: 1, Pairs: 1, SingleNode: true,
				Capacity: &capacity.Spec{StagingBytes: 1 << 20, Policy: "mru"}}, false},
		{"plan beyond horizon",
			Config{Backend: DYAD, Model: m, Frames: 4, Pairs: 1, SingleNode: true,
				Capacity: &capacity.Spec{Plan: []capacity.Provision{{At: time.Hour}}}}, false},
		{"valid dyad capacity",
			Config{Backend: DYAD, Model: m, Frames: 4, Pairs: 1, SingleNode: true,
				Capacity: &capacity.Spec{StagingBytes: 1 << 20, CacheBytes: 1 << 20,
					Policy: capacity.PolicyConsumedDrop}}, true},
		{"valid xfs capacity",
			Config{Backend: XFS, Model: m, Frames: 4, Pairs: 1, SingleNode: true,
				Capacity: &capacity.Spec{StagingBytes: 1 << 20}}, true},
		{"disabled spec on lustre",
			Config{Backend: Lustre, Model: m, Frames: 1, Pairs: 1,
				Capacity: &capacity.Spec{}}, true},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
		}
	}
}

// A disabled or never-pressured capacity spec must be invisible: Reserve
// and MarkConsumed add no virtual time, so the run's measurements are
// byte-identical to a capacity-free run.
func TestUnpressuredCapacityIsByteIdentical(t *testing.T) {
	base := Config{Backend: DYAD, Model: tinyModel(), Frames: 8, Pairs: 2, Seed: 42,
		ComputeJitter: 0.02, KeepProfiles: true}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	disabled := base
	disabled.Capacity = &capacity.Spec{}
	dres, err := Run(disabled)
	if err != nil {
		t.Fatal(err)
	}
	huge := base
	huge.Capacity = &capacity.Spec{StagingBytes: 1 << 40, CacheBytes: 1 << 40}
	hres, err := Run(huge)
	if err != nil {
		t.Fatal(err)
	}
	a := canonical([]*Result{plain})
	if b := canonical([]*Result{dres}); a != b {
		t.Fatalf("disabled spec perturbed the run:\n--- nil ---\n%s--- disabled ---\n%s", a, b)
	}
	if c := canonical([]*Result{hres}); a != c {
		t.Fatalf("unpressured finite spec perturbed the run:\n--- nil ---\n%s--- finite ---\n%s", a, c)
	}
	if !hres.Capacity.Zero() {
		t.Fatalf("unpressured run recorded capacity activity: %v", hres.Capacity)
	}
}

// XFS under consumed-drop with a one-frame budget: the policy never drops
// unread data, so producers feel back-pressure and every frame survives to
// its consumer — the run completes, slower, with stalls on the record.
func TestXFSConsumedDropBackpressure(t *testing.T) {
	m := tinyModel()
	base := Config{Backend: XFS, Model: m, Frames: 8, Pairs: 2, SingleNode: true, Seed: 7}
	healthy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	tight := base
	tight.Capacity = &capacity.Spec{StagingBytes: m.FrameBytes(), Policy: capacity.PolicyConsumedDrop}
	res, err := Run(tight)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesRead != base.Pairs*base.Frames {
		t.Fatalf("read %d frames, want %d", res.FramesRead, base.Pairs*base.Frames)
	}
	if res.Capacity.Stalls == 0 || res.Capacity.StallNanos == 0 {
		t.Fatalf("one-frame budget produced no back-pressure: %v", res.Capacity)
	}
	if res.Capacity.DroppedFrames != 0 || res.Capacity.SpilledFrames != 0 {
		t.Fatalf("consumed-drop sacrificed unread data: %v", res.Capacity)
	}
	if res.Capacity.Evictions == 0 {
		t.Fatalf("no evictions under a one-frame budget: %v", res.Capacity)
	}
	if res.Makespan <= healthy.Makespan {
		t.Fatalf("back-pressured makespan %v not above unconstrained %v", res.Makespan, healthy.Makespan)
	}
}

// A frame larger than the whole budget must fail fast with a wrapped
// ErrNoSpace — never a hang or a panic through Run.
func TestXFSCapacityNoSpaceIsCleanError(t *testing.T) {
	m := tinyModel()
	cfg := Config{Backend: XFS, Model: m, Frames: 4, Pairs: 1, SingleNode: true, Seed: 3,
		Capacity: &capacity.Spec{StagingBytes: m.FrameBytes() - 1}}
	res, err := Run(cfg)
	if err == nil {
		t.Fatal("over-budget write succeeded")
	}
	if res != nil {
		t.Fatal("failed run returned a result")
	}
	if !errors.Is(err, capacity.ErrNoSpace) {
		t.Fatalf("err = %v, want chain wrapping capacity.ErrNoSpace", err)
	}
}

// DYAD with the Lustre mirror and a slow consumer: the producer's in-flight
// window overflows a tight staging budget, unconsumed frames spill to the
// mirror, and the consumer finishes every frame through degraded reads.
func TestDYADCapacitySpillsToMirror(t *testing.T) {
	m := tinyModel()
	params := defaultDyadParams()
	params.ClientOverhead = 25 * time.Millisecond // consumer lags ~5x the frame period
	cfg := Config{Backend: DYAD, Model: m, Frames: 8, Pairs: 1, Seed: 5,
		LustreFallback: true, DYADOverride: &params,
		Capacity: &capacity.Spec{StagingBytes: 2 * m.FrameBytes()}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesRead != cfg.Pairs*cfg.Frames {
		t.Fatalf("read %d frames, want %d", res.FramesRead, cfg.Pairs*cfg.Frames)
	}
	if res.Capacity.SpilledFrames == 0 {
		t.Fatalf("lagging consumer spilled nothing: %v", res.Capacity)
	}
	if res.Capacity.DroppedFrames != 0 {
		t.Fatalf("mirror deployed but frames dropped: %v", res.Capacity)
	}
	if res.Recovery.DegradedReads == 0 {
		t.Fatalf("spilled frames never read degraded: %v", res.Recovery)
	}
}

// The same overflow without a mirror is unrecoverable — but it must die
// with the full errors.Is-able chain (ErrExhausted wrapping ErrEvicted),
// never hang or panic through Run.
func TestDYADCapacityDropIsExhaustedError(t *testing.T) {
	m := tinyModel()
	params := defaultDyadParams()
	params.ClientOverhead = 25 * time.Millisecond
	cfg := Config{Backend: DYAD, Model: m, Frames: 8, Pairs: 1, Seed: 5,
		DYADOverride: &params,
		Capacity: &capacity.Spec{StagingBytes: 2 * m.FrameBytes()}}
	res, err := Run(cfg)
	if err == nil {
		t.Fatal("dropped-frame run succeeded")
	}
	if res != nil {
		t.Fatal("failed run returned a result")
	}
	if !errors.Is(err, capacity.ErrEvicted) {
		t.Fatalf("err = %v, want chain wrapping capacity.ErrEvicted", err)
	}
	if !errors.Is(err, faults.ErrExhausted) {
		t.Fatalf("err = %v, want chain wrapping faults.ErrExhausted", err)
	}
}

// Dynamic provisioning: a scheduled shrink below occupancy forces evictions
// at its virtual time; growing back releases the pressure. The run keeps
// its accounting and completes.
func TestCapacityProvisioningPlan(t *testing.T) {
	m := tinyModel()
	horizon := m.Frequency(m.Stride) * 8
	cfg := Config{Backend: XFS, Model: m, Frames: 8, Pairs: 2, SingleNode: true, Seed: 11,
		Capacity: &capacity.Spec{Plan: []capacity.Provision{
			// Shrink below occupancy but keep one frame per pair, so the
			// forced evictions only take already-consumed frames.
			{At: horizon / 2, StagingBytes: 2 * m.FrameBytes()},
			{At: horizon * 3 / 4, StagingBytes: 0 /* infinite */},
		}}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesRead != cfg.Pairs*cfg.Frames {
		t.Fatalf("read %d frames, want %d", res.FramesRead, cfg.Pairs*cfg.Frames)
	}
	if res.Capacity.ForcedEvictions == 0 {
		t.Fatalf("shrink below occupancy forced nothing: %v", res.Capacity)
	}
}

// pressuredBatch is the capacity determinism workload: back-pressured XFS,
// spilling DYAD, a provisioning plan, and capacity layered over fault
// injection — every run survives.
func pressuredBatch() []Config {
	m := tinyModel()
	slow := defaultDyadParams()
	slow.ClientOverhead = 25 * time.Millisecond
	horizon := m.Frequency(m.Stride) * 8
	return []Config{
		{Backend: XFS, Model: m, Frames: 8, Pairs: 2, SingleNode: true, Seed: 7,
			Capacity: &capacity.Spec{StagingBytes: m.FrameBytes(), Policy: capacity.PolicyConsumedDrop}},
		{Backend: DYAD, Model: m, Frames: 8, Pairs: 1, Seed: 5, LustreFallback: true,
			DYADOverride: &slow,
			Capacity:     &capacity.Spec{StagingBytes: 2 * m.FrameBytes()}},
		{Backend: XFS, Model: m, Frames: 8, Pairs: 2, SingleNode: true, Seed: 11,
			Capacity: &capacity.Spec{Plan: []capacity.Provision{
				{At: horizon / 2, StagingBytes: 2 * m.FrameBytes()},
				{At: horizon * 3 / 4},
			}}},
		{Backend: DYAD, Model: m, Frames: 8, Pairs: 2, Seed: 101, ComputeJitter: 0.01,
			LustreFallback: true,
			Faults:         &faults.Spec{BrokerCrashes: 1, LinkDegrades: 1},
			Capacity:       &capacity.Spec{StagingBytes: 4 * m.FrameBytes(), CacheBytes: 2 * m.FrameBytes()}},
	}
}

// Determinism under pressure: evict/spill ordering, stall accounting, and
// provisioning are all event-serialized state, so a pressured batch is
// byte-identical between -j1 and -j8 and at any PDES shard count.
func TestCapacityPressureDeterminism(t *testing.T) {
	cfgs := pressuredBatch()
	serial, err := RunMany(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunMany(cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, b := canonical(serial), canonical(parallel)
	if a != b {
		t.Fatalf("pressured workers=1 vs workers=8 differ:\n--- serial ---\n%s--- parallel ---\n%s", a, b)
	}
	sharded := make([]Config, len(cfgs))
	copy(sharded, cfgs)
	for i := range sharded {
		sharded[i].ShardWorkers = 8
	}
	shardRes, err := RunMany(sharded, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range shardRes {
		shardRes[i].Cfg.ShardWorkers = 0 // same label as serial for comparison
	}
	if c := canonical(shardRes); a != c {
		t.Fatalf("pressured serial vs pdes-j8 differ:\n--- serial ---\n%s--- sharded ---\n%s", a, c)
	}
	// The pressure must actually exist, or this test guards nothing.
	var stalls, spills int64
	for _, r := range serial {
		stalls += r.Capacity.Stalls
		spills += r.Capacity.SpilledFrames
	}
	if stalls == 0 || spills == 0 {
		t.Fatalf("pressured batch degenerate: stalls=%d spills=%d", stalls, spills)
	}
}

// TestCapacityStarvedGolden locks a capacity-starved (and partly faulted)
// batch's timelines, capacity records, and recovery metrics against a
// committed fixture, pinning evict/spill/stall behavior byte-for-byte.
// Regenerate deliberately with:
// go test ./internal/core -run CapacityStarvedGolden -update
func TestCapacityStarvedGolden(t *testing.T) {
	results, err := RunMany(pressuredBatch(), 4)
	if err != nil {
		t.Fatal(err)
	}
	got := canonical(results)
	golden := filepath.Join("testdata", "capacity_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden fixture (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("capacity-starved report drifted from golden fixture:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
