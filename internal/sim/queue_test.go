package sim

import (
	"container/heap"
	"fmt"
	"testing"
	"time"
)

// TestQueueEquivalenceRandom is the queue-equivalence property test: the
// adaptive queue — in heap mode, in forced ladder mode, and crossing the
// migration threshold mid-workload — must pop in exactly the reference
// container/heap's (at, seq) order under randomized push/pop interleavings
// with heavy at collisions. Two workload shapes are driven: "arbitrary"
// pushes times in any order (stronger than the engine needs), and
// "advancing" mimics the engine's hold model, where pushes never go behind
// the last popped time. Runs in the -race suite (no alloc assertions here).
func TestQueueEquivalenceRandom(t *testing.T) {
	modes := []struct {
		name   string
		thresh int
	}{
		{"adaptive", 0},
		{"ladder", 1},
		{"heap", 1 << 30},
		{"migrating", 100},
	}
	shapes := []string{"arbitrary", "advancing"}
	for _, mode := range modes {
		for _, shape := range shapes {
			for seed := uint64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%s/%s/seed=%d", mode.name, shape, seed)
				t.Run(name, func(t *testing.T) {
					rng := NewRNG(seed * 0x9e3779b97f4a7c15)
					q := eventq{thresh: mode.thresh}
					ref := &refHeap{}
					var seq int64
					var now Time
					const ops = 30_000
					for i := 0; i < ops; i++ {
						// Push-heavy growth for the first third, drain-heavy
						// afterwards, so the queue crosses its high-water mark
						// and the ladder exercises transfer/spawn/retire.
						pushBias := 4
						if i > ops/3 {
							pushBias = 2
						}
						if rng.Intn(pushBias) != 0 || q.len() == 0 {
							var at Time
							switch shape {
							case "arbitrary":
								// Tie-heavy: 64 distinct times across 30k events.
								at = Time(rng.Intn(64)) * time.Millisecond
							case "advancing":
								at = now + Time(rng.Intn(2000))*time.Microsecond
							}
							ev := event{at: at, seq: seq, proc: noProc}
							seq++
							q.push(ev)
							heap.Push(ref, ev)
						} else {
							got := q.pop()
							want := heap.Pop(ref).(event)
							if got.at != want.at || got.seq != want.seq {
								t.Fatalf("op %d: pop = (at=%v seq=%d), reference = (at=%v seq=%d)",
									i, got.at, got.seq, want.at, want.seq)
							}
							if shape == "advancing" {
								now = got.at
							}
						}
						if q.len() != ref.Len() {
							t.Fatalf("op %d: size %d vs reference %d", i, q.len(), ref.Len())
						}
					}
					for ref.Len() > 0 {
						got := q.pop()
						want := heap.Pop(ref).(event)
						if got.at != want.at || got.seq != want.seq {
							t.Fatalf("drain: pop = (at=%v seq=%d), reference = (at=%v seq=%d)",
								got.at, got.seq, want.at, want.seq)
						}
					}
					if q.len() != 0 {
						t.Fatalf("drained queue still reports %d events", q.len())
					}
				})
			}
		}
	}
}

// TestQueueSpawnCoverageHole is the regression test for the spawn sizing
// bug that lost events at fleet scale: a child rung sized to its bucket's
// observed event span (instead of the bucket's full nominal span) leaves a
// coverage hole at the tail of the bucket. A push into the hole after the
// child's cursor reached its end was admitted by the at >= curStart()
// check, clamped into the child's last — already consumed — bucket, and
// silently discarded when the drained rung was retired. The test builds
// that exact shape deterministically: one coarse transfer bucket dense
// enough to spawn (64 events over a 126 ns spread inside a ~62 µs bucket,
// stretched by one far-future event), drains the spawned child completely,
// then pushes into the tail of the parent bucket's span and demands the
// event pop before the far one.
func TestQueueSpawnCoverageHole(t *testing.T) {
	q := eventq{thresh: 1} // ladder mode from the first push
	var seq int64
	push := func(at Time) {
		q.push(event{at: at, seq: seq, proc: noProc})
		seq++
	}
	const close = 64 // > spawnThreshold, in one transfer-rung bucket
	for i := 0; i < close; i++ {
		push(1000 + Time(2*i))
	}
	push(1_000_000) // stretches the transfer span so bucket 0 is coarse
	for i := 0; i < close; i++ {
		got := q.pop()
		if want := 1000 + Time(2*i); got.at != want {
			t.Fatalf("pop %d: at=%d, want %d", i, got.at, want)
		}
	}
	// The spawned child's cursor is now at its end; 2000 is inside the
	// parent bucket's nominal span but past the last close event.
	push(2000)
	if got := q.pop(); got.at != 2000 {
		t.Fatalf("hole event lost: popped at=%d, want 2000", got.at)
	}
	if got := q.pop(); got.at != 1_000_000 {
		t.Fatalf("far event: popped at=%d, want 1000000", got.at)
	}
	if q.len() != 0 {
		t.Fatalf("queue reports %d pending after drain", q.len())
	}
}

// TestQueueHoldModelSteadyState drives the fleet-scale engine pattern in
// which the spawn coverage hole was first seen: a large steady population
// of self-rescheduling timers, each pop pushing a successor at
// popped.at + period + jitter, with exact-tie frame boundaries and
// near-immediate successors mixed in. Every pop is checked against the
// reference heap.
func TestQueueHoldModelSteadyState(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := NewRNG(seed * 0x9e3779b97f4a7c15)
			q := eventq{thresh: 256}
			ref := &refHeap{}
			var seq int64
			push := func(at Time) {
				ev := event{at: at, seq: seq, proc: noProc}
				seq++
				q.push(ev)
				heap.Push(ref, ev)
			}
			const timers = 600
			const period = Time(5 * time.Millisecond)
			for i := 0; i < timers; i++ {
				push(Time(rng.Intn(int(period))))
			}
			for step := 0; step < 120_000; step++ {
				got := q.pop()
				want := heap.Pop(ref).(event)
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("step %d: pop = (at=%v seq=%d), reference = (at=%v seq=%d)",
						step, got.at, got.seq, want.at, want.seq)
				}
				if q.len() != ref.Len() {
					t.Fatalf("step %d: size %d vs reference %d", step, q.len(), ref.Len())
				}
				d := period
				switch rng.Intn(4) {
				case 0:
					d += Time(rng.Intn(3000)) // tight jitter cluster
				case 1:
					d += Time(rng.Intn(300_000)) // loose jitter
				case 2:
					// exact frame tie: a dense single-instant bucket
				case 3:
					d = Time(1 + rng.Intn(100)) // near-immediate successor
				}
				push(got.at + d)
			}
		})
	}
}

// TestQueueWideHorizon spreads events across a huge, sparse time range —
// the regime that stresses rung sizing, bucket clamping, and top-band
// transfers — and checks exact pop order.
func TestQueueWideHorizon(t *testing.T) {
	rng := NewRNG(7)
	q := eventq{thresh: 1}
	ref := &refHeap{}
	var seq int64
	const n = 20_000
	for i := 0; i < n; i++ {
		// Mix three scales: microseconds, seconds, and hours, plus a dense
		// cluster at one instant (an unspreadable bucket).
		var at Time
		switch rng.Intn(4) {
		case 0:
			at = Time(rng.Intn(1000)) * time.Microsecond
		case 1:
			at = Time(rng.Intn(1000)) * time.Second
		case 2:
			at = Time(rng.Intn(10)) * time.Hour
		case 3:
			at = 42 * time.Second
		}
		ev := event{at: at, seq: seq, proc: noProc}
		seq++
		q.push(ev)
		heap.Push(ref, ev)
	}
	for ref.Len() > 0 {
		got := q.pop()
		want := heap.Pop(ref).(event)
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("pop = (at=%v seq=%d), reference = (at=%v seq=%d)",
				got.at, got.seq, want.at, want.seq)
		}
	}
}

// TestQueueResetClearsSlots drains and resets a ladder-mode queue and
// verifies no backing slot still pins a callback — the anti-retention
// invariant TestHeapPopZeroesVacatedSlots checks for heap mode.
func TestQueueResetClearsSlots(t *testing.T) {
	marker := func() {}
	q := eventq{thresh: 1}
	rng := NewRNG(3)
	for i := 0; i < 5000; i++ {
		q.push(event{at: Time(rng.Intn(64)) * time.Millisecond, seq: int64(i), proc: noProc, fn: marker})
	}
	// Consume half (fired events must not be pinned), then reset the rest.
	for i := 0; i < 2500; i++ {
		q.pop()
	}
	q.reset()
	if q.len() != 0 || q.ladder {
		t.Fatalf("reset queue: len=%d ladder=%v, want empty heap mode", q.len(), q.ladder)
	}
	check := func(name string, a []event) {
		for i, ev := range a[:cap(a)] {
			if ev.fn != nil {
				t.Fatalf("%s slot %d still holds a closure reference", name, i)
			}
		}
	}
	check("heap", q.heap)
	check("bottom", q.bottom)
	check("top", q.top)
	for ri := range q.rungs {
		check(fmt.Sprintf("rung %d slab", ri), q.rungs[ri].slab)
	}
}

// TestQueueReuseAfterReset reuses one queue across reset cycles, crossing
// the migration threshold each time, and demands identical pop sequences —
// the invariant pooled engines rely on (Engine.Reset keeps queue arrays).
func TestQueueReuseAfterReset(t *testing.T) {
	var q eventq
	q.thresh = 64
	var first []event
	for cycle := 0; cycle < 3; cycle++ {
		rng := NewRNG(11)
		var got []event
		for i := 0; i < 1000; i++ {
			q.push(event{at: Time(rng.Intn(32)) * time.Millisecond, seq: int64(i), proc: noProc})
		}
		for q.len() > 0 {
			got = append(got, q.pop())
		}
		if cycle == 0 {
			first = got
			continue
		}
		if len(got) != len(first) {
			t.Fatalf("cycle %d popped %d events, first cycle %d", cycle, len(got), len(first))
		}
		for i := range got {
			if got[i].at != first[i].at || got[i].seq != first[i].seq {
				t.Fatalf("cycle %d pop %d = (at=%v seq=%d), first cycle = (at=%v seq=%d)",
					cycle, i, got[i].at, got[i].seq, first[i].at, first[i].seq)
			}
		}
		q.reset()
	}
}

// TestEngineTimelineUnchangedByQueueMode runs one interleaved workload on a
// default engine and on an engine whose queues are forced into ladder mode
// from the first event, and requires the traced virtual timelines to match
// exactly: the queue mode must be invisible to the simulation.
func TestEngineTimelineUnchangedByQueueMode(t *testing.T) {
	workload := func(forceLadder bool) []string {
		e := NewEngine(99)
		if forceLadder {
			e.pq.thresh = 1
		}
		var log []string
		e.SetTracer(func(at Time, proc, msg string) {
			log = append(log, fmt.Sprintf("%v %s %s", at, proc, msg))
		})
		for i := 0; i < 50; i++ {
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for s := 0; s < 40; s++ {
					p.Sleep(time.Duration(1+p.Rand().Intn(500)) * time.Microsecond)
					p.Tracef("step %d", s)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	base := workload(false)
	ladder := workload(true)
	if len(base) != len(ladder) {
		t.Fatalf("ladder timeline has %d entries, heap timeline %d", len(ladder), len(base))
	}
	for i := range base {
		if base[i] != ladder[i] {
			t.Fatalf("timeline diverges at entry %d:\n  heap:   %s\n  ladder: %s", i, base[i], ladder[i])
		}
	}
}
