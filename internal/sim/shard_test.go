package sim

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// shardTrace runs workload on an engine configured with the given shard
// worker count and returns the full trace transcript plus final state.
// Identical transcripts across worker counts are the PDES determinism
// contract: the virtual timeline is a pure function of (seed, workload).
func shardTrace(t *testing.T, workers int, lookahead Time, workload func(e *Engine)) (string, Time, int64, error) {
	t.Helper()
	e := NewEngine(99)
	if workers > 1 {
		e.SetShardWorkers(workers)
		e.SetLookahead(lookahead)
	}
	var b strings.Builder
	e.SetTracer(func(at Time, proc, msg string) {
		fmt.Fprintf(&b, "%v %s %s\n", at, proc, msg)
	})
	workload(e)
	err := e.Run()
	return b.String(), e.Now(), e.Events(), err
}

// contendedWorkload is a mixed workload exercising every cross-shard
// interaction class: timed sleeps, resource contention (FIFO queues),
// signal wake-ups, RNG-jittered service times, and late spawns.
func contendedWorkload(e *Engine) {
	res := NewResource(e, "dev", 2)
	var sig Signal
	for i := 0; i < 9; i++ {
		i := i
		e.Spawn(fmt.Sprintf("worker%d", i), func(p *Proc) {
			for j := 0; j < 6; j++ {
				res.Use(p, Time(p.Rand().Intn(int(700*time.Microsecond))))
				p.Sleep(Time(p.Rand().Intn(int(300 * time.Microsecond))))
				p.Tracef("round %d done", j)
			}
			if i%3 == 0 {
				sig.Wait(p)
				p.Tracef("woken")
			}
		})
	}
	e.Spawn("broadcaster", func(p *Proc) {
		p.Sleep(20 * time.Millisecond)
		// Late spawn from inside a running process: the child must land on
		// a deterministic shard and start at the current instant.
		p.Engine().Spawn("late", func(q *Proc) {
			q.Sleep(time.Millisecond)
			q.Tracef("late done")
		})
		p.Sleep(5 * time.Millisecond)
		sig.Broadcast()
		p.Tracef("broadcast")
	})
}

// TestShardedMatchesSerial locks the tentpole contract: the full trace
// transcript, final virtual time, and fired-event count are identical for
// shard worker counts 1 (serial), 2, and 8, across three lookahead regimes
// (zero, the fabric-latency scale, and absurdly wide windows).
func TestShardedMatchesSerial(t *testing.T) {
	refTrace, refEnd, refEvents, err := shardTrace(t, 1, 0, contendedWorkload)
	if err != nil {
		t.Fatal(err)
	}
	if refEvents == 0 || refTrace == "" {
		t.Fatal("reference run produced no events or trace")
	}
	for _, workers := range []int{2, 8} {
		for _, la := range []Time{0, 4 * time.Microsecond, time.Hour} {
			got, end, events, err := shardTrace(t, workers, la, contendedWorkload)
			if err != nil {
				t.Fatalf("workers=%d lookahead=%v: %v", workers, la, err)
			}
			if got != refTrace {
				t.Fatalf("workers=%d lookahead=%v: trace diverged from serial\nserial:\n%s\nsharded:\n%s",
					workers, la, refTrace, got)
			}
			if end != refEnd || events != refEvents {
				t.Fatalf("workers=%d lookahead=%v: end=%v events=%d, want end=%v events=%d",
					workers, la, end, events, refEnd, refEvents)
			}
		}
	}
}

// TestShardInboxTieBreak pins the merge tie-break: events with colliding
// virtual times routed through different shard inboxes must fire in global
// schedule (seq) order — exactly as if one heap held them all. Processes are
// pinned to distinct shards and all wake at the same instant, twice, with
// the second wave's wakes issued in reverse order.
func TestShardInboxTieBreak(t *testing.T) {
	run := func(workers int) string {
		e := NewEngine(1)
		if workers > 1 {
			e.SetShardWorkers(workers)
			// Pin proc i to shard i so every same-instant delivery crosses a
			// different inbox.
			e.SetShardAssign(func(proc int32, name string) int { return int(proc) })
		}
		var b strings.Builder
		e.SetTracer(func(at Time, proc, msg string) {
			fmt.Fprintf(&b, "%v %s %s\n", at, proc, msg)
		})
		procs := make([]*Proc, 4)
		for i := 0; i < 4; i++ {
			i := i
			procs[i] = e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Tracef("start")
				p.Block()
				p.Tracef("wave1")
				p.Block()
				p.Tracef("wave2")
			})
		}
		e.Spawn("waker", func(p *Proc) {
			p.Sleep(time.Millisecond)
			for i := 0; i < 4; i++ { // wave 1: spawn order
				procs[i].Wake()
			}
			p.Sleep(time.Millisecond)
			for i := 3; i >= 0; i-- { // wave 2: reverse order
				procs[i].Wake()
			}
		})
		if err := e.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return b.String()
	}

	serial := run(1)
	// Wave ordering is decided by seq alone (all four wakes share one
	// instant): wave 1 fires p0..p3, wave 2 fires p3..p0.
	for _, want := range []string{
		"1ms p0 wave1", "1ms p1 wave1", "1ms p2 wave1", "1ms p3 wave1",
		"2ms p3 wave2", "2ms p2 wave2", "2ms p1 wave2", "2ms p0 wave2",
	} {
		if !strings.Contains(serial, want) {
			t.Fatalf("serial transcript missing %q:\n%s", want, serial)
		}
	}
	if idx1, idx2 := strings.Index(serial, "1ms p0 wave1"), strings.Index(serial, "1ms p3 wave1"); idx1 > idx2 {
		t.Fatalf("serial wave 1 out of seq order:\n%s", serial)
	}
	for _, workers := range []int{2, 4} {
		if got := run(workers); got != serial {
			t.Fatalf("workers=%d transcript diverged:\nserial:\n%s\nsharded:\n%s", workers, serial, got)
		}
	}
}

// TestShardedSamplerAndWatchdogParity runs a sampled, watchdog-armed
// workload serially and sharded: sample boundary sequences and the
// watchdog failure (text included) must match byte for byte.
func TestShardedSamplerAndWatchdogParity(t *testing.T) {
	run := func(workers int) ([]Time, string) {
		e := NewEngine(3)
		if workers > 1 {
			e.SetShardWorkers(workers)
			e.SetLookahead(time.Millisecond)
		}
		var samples []Time
		e.SetSampler(10*time.Millisecond, func(ts Time) {
			if e.Now() != ts {
				t.Errorf("workers=%d: clock %v not parked on boundary %v", workers, e.Now(), ts)
			}
			samples = append(samples, ts)
		})
		e.SetWatchdog(0, 95*time.Millisecond)
		for i := 0; i < 4; i++ {
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for {
					p.Sleep(7 * time.Millisecond)
				}
			})
		}
		err := e.Run()
		if !errors.Is(err, ErrWatchdog) {
			t.Fatalf("workers=%d: err = %v, want ErrWatchdog", workers, err)
		}
		return samples, err.Error()
	}

	refSamples, refErr := run(1)
	if len(refSamples) == 0 {
		t.Fatal("reference run took no samples")
	}
	for _, workers := range []int{2, 8} {
		samples, errText := run(workers)
		if len(samples) != len(refSamples) {
			t.Fatalf("workers=%d: %d samples, want %d", workers, len(samples), len(refSamples))
		}
		for i := range samples {
			if samples[i] != refSamples[i] {
				t.Fatalf("workers=%d: sample %d at %v, want %v", workers, i, samples[i], refSamples[i])
			}
		}
		if errText != refErr {
			t.Fatalf("workers=%d: watchdog error %q, want %q", workers, errText, refErr)
		}
	}
}

// TestShardedStrandedParity checks the stranded-process diagnosis (and its
// process list) survives sharding unchanged.
func TestShardedStrandedParity(t *testing.T) {
	run := func(workers int) string {
		e := NewEngine(5)
		if workers > 1 {
			e.SetShardWorkers(workers)
		}
		e.Spawn("finisher", func(p *Proc) { p.Sleep(time.Millisecond) })
		e.Spawn("lost-a", func(p *Proc) { p.Block() })
		e.Spawn("lost-b", func(p *Proc) { p.Block() })
		err := e.Run()
		if !errors.Is(err, ErrStranded) {
			t.Fatalf("workers=%d: err = %v, want ErrStranded", workers, err)
		}
		return err.Error()
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); got != serial {
			t.Fatalf("workers=%d: stranded error %q, want %q", workers, got, serial)
		}
	}
}

// TestShardedProcessFailureParity checks a panicking process aborts a
// sharded run with the identical wrapped error and no goroutine leaks.
func TestShardedProcessFailureParity(t *testing.T) {
	before := runtime.NumGoroutine()
	run := func(workers int) string {
		e := NewEngine(5)
		if workers > 1 {
			e.SetShardWorkers(workers)
		}
		for i := 0; i < 6; i++ {
			e.Spawn(fmt.Sprintf("sleeper%d", i), func(p *Proc) { p.Sleep(time.Hour) })
		}
		e.Spawn("bomb", func(p *Proc) {
			p.Sleep(2 * time.Millisecond)
			panic(errors.New("injected failure"))
		})
		err := e.Run()
		if err == nil {
			t.Fatalf("workers=%d: run succeeded, want failure", workers)
		}
		return err.Error()
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); got != serial {
			t.Fatalf("workers=%d: failure %q, want %q", workers, got, serial)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew from %d to %d: sharded aborts leak", before, after)
	}
}

// TestShardedEngineRunsAgain checks an engine can Run a second sharded
// round: leftover structures are reused and new work is routed correctly.
func TestShardedEngineRunsAgain(t *testing.T) {
	e := NewEngine(7)
	e.SetShardWorkers(4)
	done := 0
	for i := 0; i < 8; i++ {
		e.Spawn(fmt.Sprintf("a%d", i), func(p *Proc) { p.Sleep(time.Millisecond); done++ })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		e.Spawn(fmt.Sprintf("b%d", i), func(p *Proc) { p.Sleep(time.Millisecond); done++ })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 16 {
		t.Fatalf("completed %d procs, want 16", done)
	}
	if e.Now() != 2*time.Millisecond {
		t.Fatalf("final time %v, want 2ms", e.Now())
	}
}

// TestSetShardWorkersValidation pins the API edges: negative counts panic,
// and changing the count after sharded structures exist panics.
func TestSetShardWorkersValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative shard worker count accepted")
			}
		}()
		NewEngine(1).SetShardWorkers(-1)
	}()

	e := NewEngine(1)
	e.SetShardWorkers(2)
	e.Spawn("p", func(p *Proc) { p.Sleep(time.Millisecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shard worker count change after Run accepted")
		}
	}()
	e.SetShardWorkers(4)
}
