package experiments

import (
	"fmt"
	"strings"

	"repro/internal/caliper"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/stats"
	"repro/internal/thicket"
)

// fig8Pairs is the ensemble size of the model-scaling study (paper: 16
// pairs; with the 8-process-per-node placement that spans 4 nodes).
const fig8Pairs = 16

// Fig8 reproduces Figure 8: molecular model size scaling of DYAD vs Lustre
// across JAC, ApoA1, F1 ATPase, and STMV with Table II strides. Paper
// headlines: producer movement gap grows 2.1x -> 6.3x with model size,
// consumer movement 1.6x -> 6.0x, overall consumption 121.0x -> 333.8x.
func Fig8(o Options) (*Report, error) {
	o = o.Defaults()
	r := &Report{
		ID:      "fig8",
		Title:   "Molecular model size scaling, DYAD vs Lustre (16 pairs)",
		Columns: append([]string{"model", "backend"}, stdCols...),
	}
	type pairAgg struct{ dy, lu core.Aggregate }
	byModel := map[string]*pairAgg{}
	for _, m := range models.Registry() {
		pa := &pairAgg{}
		byModel[m.Name] = pa
		for bi, b := range []core.Backend{core.DYAD, core.Lustre} {
			agg, err := runAgg(core.Config{Backend: b, Model: m, Pairs: fig8Pairs}, o)
			if err != nil {
				return nil, err
			}
			r.Rows = append(r.Rows, append([]string{m.Name, b.String()}, aggRow(agg)...))
			if bi == 0 {
				pa.dy = agg
			} else {
				pa.lu = agg
			}
		}
	}
	small, large := byModel["JAC"], byModel["STMV"]
	r.Notes = append(r.Notes,
		ratioNote("Lustre/DYAD producer movement, JAC", 2.1,
			stats.Ratio(small.lu.ProdMovement.Mean, small.dy.ProdMovement.Mean)),
		ratioNote("Lustre/DYAD producer movement, STMV", 6.3,
			stats.Ratio(large.lu.ProdMovement.Mean, large.dy.ProdMovement.Mean)),
		ratioNote("Lustre/DYAD consumer movement, JAC", 1.6,
			stats.Ratio(small.lu.ConsMovement.Mean, small.dy.ConsMovement.Mean)),
		ratioNote("Lustre/DYAD consumer movement, STMV", 6.0,
			stats.Ratio(large.lu.ConsMovement.Mean, large.dy.ConsMovement.Mean)),
		ratioNote("Lustre/DYAD overall consumption, JAC", 121.0,
			stats.Ratio(small.lu.ConsTotalMean(), small.dy.ConsTotalMean())),
		ratioNote("Lustre/DYAD overall consumption, STMV", 333.8,
			stats.Ratio(large.lu.ConsTotalMean(), large.dy.ConsTotalMean())),
	)
	return r, nil
}

// consumerEnsemble runs one fig8-style configuration with profiles kept and
// ensembles the consumer call trees across pairs and repetitions.
func consumerEnsemble(b core.Backend, model models.Model, o Options) (*thicket.Ensemble, error) {
	cfg := core.Config{
		Backend: b, Model: model, Pairs: fig8Pairs,
		Frames: o.Frames, Seed: o.Seed, ComputeJitter: 0.004,
		ShardWorkers: o.ShardWorkers,
		KeepProfiles: true,
	}
	if b == core.Lustre {
		cfg.LustreNoise = true
	}
	var profiles []*caliper.Profile
	reps := o.Reps
	if reps > 3 {
		reps = 3 // trees are stable; keep profile memory bounded
	}
	cfgs := core.RepeatConfigs(cfg, reps)
	if o.Trace != nil {
		cfgs[0].RecordSpans = true
	}
	results, err := core.RunMany(cfgs, o.Workers)
	if err != nil {
		return nil, err
	}
	if o.Trace != nil {
		o.Trace.Add(cfg.Label(), results)
	}
	for _, res := range results {
		profiles = append(profiles, res.ConsumerProfiles...)
	}
	return thicket.FromProfiles(profiles), nil
}

// Fig9 reproduces Figure 9: the Thicket call-tree analysis of DYAD's
// consumer for JAC vs STMV. Paper headlines: 45.3x more bytes (STMV/JAC)
// costs only ~33.6x more data movement, and the KVS synchronization
// (dyad_fetch) is ~2.1x cheaper for STMV due to reduced KVS stress.
func Fig9(o Options) (*Report, error) {
	o = o.Defaults()
	jac, stmv := mustModel("JAC"), mustModel("STMV")
	ensJAC, err := consumerEnsemble(core.DYAD, jac, o)
	if err != nil {
		return nil, err
	}
	ensSTMV, err := consumerEnsemble(core.DYAD, stmv, o)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "fig9",
		Title:   "Thicket call trees: DYAD consumer, JAC vs STMV (16 pairs)",
		Columns: []string{"region", "JAC mean", "STMV mean", "STMV/JAC"},
	}
	regions := []string{"dyad_consume", "dyad_fetch", "dyad_kvs_wait", "dyad_get_data", "dyad_cons_store", "read_single_buf"}
	means := map[string][2]float64{}
	for _, reg := range regions {
		j := ensJAC.MeanOf(reg).Seconds()
		s := ensSTMV.MeanOf(reg).Seconds()
		means[reg] = [2]float64{j, s}
		r.Rows = append(r.Rows, []string{
			reg, stats.FormatSeconds(j), stats.FormatSeconds(s),
			stats.FormatRatio(stats.Ratio(s, j)),
		})
	}
	bytesRatio := float64(stmv.FrameBytes()) / float64(jac.FrameBytes())
	moveJAC := means["dyad_get_data"][0] + means["dyad_cons_store"][0] + means["read_single_buf"][0]
	moveSTMV := means["dyad_get_data"][1] + means["dyad_cons_store"][1] + means["read_single_buf"][1]
	// KVS stress is a steady-state effect: exclude the one-time first-touch
	// pipeline-fill wait (dyad_kvs_wait) from the comparison.
	steadyJAC := means["dyad_fetch"][0] - means["dyad_kvs_wait"][0]
	steadySTMV := means["dyad_fetch"][1] - means["dyad_kvs_wait"][1]
	r.Notes = append(r.Notes,
		fmt.Sprintf("bytes ratio STMV/JAC: %.1fx (paper: 45.3x)", bytesRatio),
		ratioNote("DYAD data movement cost STMV/JAC", 33.6, stats.Ratio(moveSTMV, moveJAC)),
		ratioNote("steady-state KVS sync (dyad_fetch minus first-touch wait) JAC/STMV", 2.1,
			stats.Ratio(steadyJAC, steadySTMV)),
	)
	r.Trees = []string{
		renderTree("DYAD consumer, JAC", ensJAC),
		renderTree("DYAD consumer, STMV", ensSTMV),
		renderComparison("DYAD consumer, JAC vs STMV", ensJAC, ensSTMV),
	}
	return r, nil
}

// Fig10 reproduces Figure 10: the Thicket call-tree analysis of Lustre's
// consumer for JAC vs STMV. Paper headlines: 45.3x more bytes costs ~12.3x
// more movement (read_single_buf) thanks to Lustre's parallelism, while
// explicit_sync stays roughly constant, capping scalability.
func Fig10(o Options) (*Report, error) {
	o = o.Defaults()
	jac, stmv := mustModel("JAC"), mustModel("STMV")
	ensJAC, err := consumerEnsemble(core.Lustre, jac, o)
	if err != nil {
		return nil, err
	}
	ensSTMV, err := consumerEnsemble(core.Lustre, stmv, o)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "fig10",
		Title:   "Thicket call trees: Lustre consumer, JAC vs STMV (16 pairs)",
		Columns: []string{"region", "JAC mean", "STMV mean", "STMV/JAC"},
	}
	var moveJAC, moveSTMV, syncJAC, syncSTMV float64
	for _, reg := range []string{"read_single_buf", "explicit_sync"} {
		j := ensJAC.MeanOf(reg).Seconds()
		s := ensSTMV.MeanOf(reg).Seconds()
		if reg == "read_single_buf" {
			moveJAC, moveSTMV = j, s
		} else {
			syncJAC, syncSTMV = j, s
		}
		r.Rows = append(r.Rows, []string{
			reg, stats.FormatSeconds(j), stats.FormatSeconds(s),
			stats.FormatRatio(stats.Ratio(s, j)),
		})
	}
	r.Notes = append(r.Notes,
		ratioNote("Lustre data movement STMV/JAC", 12.3, stats.Ratio(moveSTMV, moveJAC)),
		fmt.Sprintf("explicit_sync STMV/JAC: measured %.2fx (paper: roughly constant)",
			stats.Ratio(syncSTMV, syncJAC)),
	)
	r.Trees = []string{
		renderTree("Lustre consumer, JAC", ensJAC),
		renderTree("Lustre consumer, STMV", ensSTMV),
		renderComparison("Lustre consumer, JAC vs STMV", ensJAC, ensSTMV),
	}
	return r, nil
}

func renderTree(title string, e *thicket.Ensemble) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s (%d members) ---\n", title, e.Members())
	e.Render(&sb)
	return sb.String()
}

func renderComparison(title string, a, b *thicket.Ensemble) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s ---\n", title)
	thicket.Compare(a, b).Render(&sb, "JAC", "STMV")
	return sb.String()
}
