package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
)

// TestMetricsSamplingObservationOnly pins the sampling determinism
// contract at the workflow level: attaching a metrics registry must not
// change a single measured number, on every backend and under fault
// injection.
func TestMetricsSamplingObservationOnly(t *testing.T) {
	m := tinyModel()
	cfgs := []Config{
		{Backend: DYAD, Model: m, Frames: 16, Pairs: 2, SingleNode: true, Seed: 11},
		{Backend: XFS, Model: m, Frames: 16, Pairs: 2, SingleNode: true, Seed: 11},
		{Backend: Lustre, Model: m, Frames: 16, Pairs: 2, Seed: 11},
		{Backend: DYAD, Model: m, Frames: 16, Pairs: 2, Seed: 11, LustreFallback: true,
			Faults: &faults.Spec{LinkDegrades: 2, BrokerCrashes: 1}},
	}
	for _, cfg := range cfgs {
		plain, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Backend, err)
		}
		mcfg := cfg
		mcfg.MetricsInterval = 50 * time.Millisecond
		sampled, err := Run(mcfg)
		if err != nil {
			t.Fatalf("%v sampled: %v", cfg.Backend, err)
		}
		if plain.Metrics != nil {
			t.Fatalf("%v: unsampled run carries a registry", cfg.Backend)
		}
		if sampled.Metrics == nil || sampled.Metrics.Len() == 0 {
			t.Fatalf("%v: sampled run has no samples", cfg.Backend)
		}
		if plain.Makespan != sampled.Makespan {
			t.Errorf("%v: makespan changed under sampling: %v vs %v", cfg.Backend, plain.Makespan, sampled.Makespan)
		}
		if plain.Producer != sampled.Producer || plain.Consumer != sampled.Consumer {
			t.Errorf("%v: role totals changed under sampling", cfg.Backend)
		}
		if plain.FramesRead != sampled.FramesRead || plain.BytesRead != sampled.BytesRead {
			t.Errorf("%v: conservation counters changed under sampling", cfg.Backend)
		}
		if plain.Recovery != sampled.Recovery {
			t.Errorf("%v: recovery metrics changed under sampling", cfg.Backend)
		}
	}
}

// TestMetricsRegistryCoversSubsystems checks each backend's run registers
// the series the dashboard and exporters are specified over.
func TestMetricsRegistryCoversSubsystems(t *testing.T) {
	m := tinyModel()
	cases := []struct {
		cfg  Config
		want []string
	}{
		{Config{Backend: DYAD, Model: m, Frames: 8, Pairs: 1, SingleNode: true, Seed: 3},
			[]string{"core/frames_produced", "core/consumer_idle_frac", "cluster/ssd/util",
				"dyad/cache_hit_rate", "dyad/staging_reads", "dyad/kvs/inflight"}},
		{Config{Backend: XFS, Model: m, Frames: 8, Pairs: 1, SingleNode: true, Seed: 3},
			[]string{"cluster/ssd/write_bw", "xfs/journal_backlog", "xfs/journal_bw"}},
		{Config{Backend: Lustre, Model: m, Frames: 8, Pairs: 1, Seed: 3},
			[]string{"lustre/mds/inflight", "lustre/ost/bw", "lustre/ost/imbalance", "cluster/nic/util"}},
	}
	for _, c := range cases {
		c.cfg.MetricsInterval = 50 * time.Millisecond
		res, err := Run(c.cfg)
		if err != nil {
			t.Fatalf("%v: %v", c.cfg.Backend, err)
		}
		have := map[string]bool{}
		for _, s := range res.Metrics.Series() {
			have[s.Name] = true
			if len(s.Samples) != res.Metrics.Len() {
				t.Errorf("%v: series %s has %d samples, registry has %d times",
					c.cfg.Backend, s.Name, len(s.Samples), res.Metrics.Len())
			}
		}
		for _, name := range c.want {
			if !have[name] {
				t.Errorf("%v: missing series %s", c.cfg.Backend, name)
			}
		}
		for _, h := range res.Metrics.Histograms() {
			if h.Count < 0 {
				t.Errorf("%v: histogram %s negative count", c.cfg.Backend, h.Name)
			}
		}
	}
}

// TestMetricsDeterministicAcrossRuns: two identically-configured sampled
// runs must export byte-identical CSV and Prometheus documents — the
// property the verify.sh -j1 vs -j8 gate checks end to end.
func TestMetricsDeterministicAcrossRuns(t *testing.T) {
	cfg := Config{Backend: DYAD, Model: tinyModel(), Frames: 16, Pairs: 2, SingleNode: true,
		Seed: 5, MetricsInterval: 25 * time.Millisecond}
	export := func() (string, string) {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var csvB, promB strings.Builder
		runs := []metrics.Run{{Label: "run", Reg: res.Metrics}}
		if err := metrics.WriteCSV(&csvB, runs); err != nil {
			t.Fatal(err)
		}
		if err := metrics.WriteProm(&promB, runs); err != nil {
			t.Fatal(err)
		}
		return csvB.String(), promB.String()
	}
	csv1, prom1 := export()
	csv2, prom2 := export()
	if csv1 != csv2 {
		t.Fatal("metrics CSV differs between identical runs")
	}
	if prom1 != prom2 {
		t.Fatal("metrics Prometheus snapshot differs between identical runs")
	}
}

func TestConfigRejectsNegativeMetricsInterval(t *testing.T) {
	cfg := Config{Backend: DYAD, Model: tinyModel(), Frames: 1, Pairs: 1, SingleNode: true,
		MetricsInterval: -time.Second}
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative MetricsInterval validated")
	}
}
