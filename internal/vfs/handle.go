package vfs

import (
	"errors"

	"repro/internal/sim"
)

// Handle is an open file supporting byte-range I/O — the POSIX-style
// access pattern underneath the whole-file convenience calls. Backends
// charge their cost models per operation; Lustre, for example, only
// touches the OSTs whose stripes a range covers. Range access needs real
// content: operating on a file stored as a size-only Payload is an error.
type Handle interface {
	// Path returns the cleaned path the handle refers to.
	Path() string
	// Size returns the current file size.
	Size() int64
	// ReadAt returns n bytes starting at off. Reading past EOF is an
	// error (the workload never produces short reads).
	ReadAt(p *sim.Proc, off, n int64) ([]byte, error)
	// WriteAt replaces the byte range [off, off+len(data)) — extending
	// the file if it ends there. Creating a hole (off > size) is an error.
	WriteAt(p *sim.Proc, off int64, data []byte) error
	// Append adds data at the end of the file.
	Append(p *sim.Proc, data []byte) error
	// Close releases the handle.
	Close(p *sim.Proc) error
}

// HandleFS is implemented by backends that support byte-range access.
type HandleFS interface {
	FS
	// Open returns a handle on an existing file.
	Open(p *sim.Proc, path string) (Handle, error)
	// Create returns a handle on a new (or truncated) file.
	CreateFile(p *sim.Proc, path string) (Handle, error)
}

// ErrSizeOnly is returned by byte-range operations on files stored as
// size-only payload descriptors: there are no bytes to read or splice.
var ErrSizeOnly = errors.New("vfs: file content is a size-only descriptor")
