package trace

import (
	"math"
	"testing"
	"time"

	"repro/internal/stats"
)

// histOf builds a histogram plus the (count, min, max) sidecar from raw
// observations, the way Aggregate and metrics.Histogram do.
func histOf(durs []time.Duration) (hist [HistBuckets]int64, count int64, min, max time.Duration) {
	for _, d := range durs {
		if count == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
		count++
		hist[HistBucket(d)]++
	}
	return
}

func TestHistogramPercentileEdges(t *testing.T) {
	hist, count, min, max := histOf([]time.Duration{3 * time.Microsecond, 90 * time.Microsecond, 2 * time.Millisecond})
	if got := HistogramPercentile(&hist, 0, 0, 0, 50); got != 0 {
		t.Fatalf("empty histogram percentile = %v, want 0", got)
	}
	if got := HistogramPercentile(&hist, count, min, max, 0); got != min {
		t.Fatalf("P0 = %v, want min %v", got, min)
	}
	if got := HistogramPercentile(&hist, count, min, max, -5); got != min {
		t.Fatalf("P(-5) = %v, want min %v", got, min)
	}
	if got := HistogramPercentile(&hist, count, min, max, 100); got != max {
		t.Fatalf("P100 = %v, want max %v", got, max)
	}
	if got := HistogramPercentile(&hist, count, min, max, 140); got != max {
		t.Fatalf("P140 = %v, want max %v", got, max)
	}
}

// TestHistogramPercentileSingleValueExact pins the exactness guarantee for
// degenerate distributions: when every observation is the same duration,
// min==max clamps the containing bucket to a point and every percentile is
// that duration — matching exact stats.Percentile with zero error.
func TestHistogramPercentileSingleValueExact(t *testing.T) {
	d := 37 * time.Microsecond
	hist, count, min, max := histOf([]time.Duration{d, d, d, d, d})
	exact := []float64{float64(d), float64(d), float64(d), float64(d), float64(d)}
	for _, p := range []float64{1, 25, 50, 75, 99} {
		got := HistogramPercentile(&hist, count, min, max, p)
		want := time.Duration(stats.Percentile(exact, p))
		if got != want {
			t.Errorf("p%v = %v, want exact %v", p, got, want)
		}
	}
}

// TestHistogramPercentileMonotone checks percentile estimates never
// decrease in p and always stay inside [min, max], on a synthetic
// long-tailed distribution spanning several buckets.
func TestHistogramPercentileMonotone(t *testing.T) {
	var durs []time.Duration
	for i := 0; i < 200; i++ {
		durs = append(durs, time.Duration(1+i*i*i)*time.Microsecond/4)
	}
	hist, count, min, max := histOf(durs)
	prev := time.Duration(-1)
	for p := 0.0; p <= 100; p += 0.5 {
		got := HistogramPercentile(&hist, count, min, max, p)
		if got < prev {
			t.Fatalf("p%v = %v < p%v = %v: not monotone", p, got, p-0.5, prev)
		}
		if got < min || got > max {
			t.Fatalf("p%v = %v outside [%v, %v]", p, got, min, max)
		}
		prev = got
	}
}

// TestHistogramPercentileBucketBoundError quantifies the estimator against
// exact stats.Percentile on synthetic uniform data: the estimate must land
// inside the same log-scale bucket span as the exact answer — the factor-of-
// four accuracy bound the bucketing promises.
func TestHistogramPercentileBucketBoundError(t *testing.T) {
	var durs []time.Duration
	var exact []float64
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * 10 * time.Microsecond // uniform 10µs..10ms
		durs = append(durs, d)
		exact = append(exact, float64(d))
	}
	hist, count, min, max := histOf(durs)
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 99} {
		got := HistogramPercentile(&hist, count, min, max, p)
		want := time.Duration(stats.Percentile(exact, p))
		// Same-bucket bound: estimate and exact answer agree to within the
		// exact answer's bucket width (up to 4x below or above).
		lo, hi := want/4, want*4
		if got < lo || got > hi {
			t.Errorf("p%v estimate %v outside factor-4 band of exact %v", p, got, want)
		}
		// And interpolation should do much better than the worst case on
		// uniform data: within 35%% relative error.
		if relErr := math.Abs(float64(got)-float64(want)) / float64(want); relErr > 0.35 {
			t.Errorf("p%v estimate %v vs exact %v: relative error %.2f", p, got, want, relErr)
		}
	}
}

// TestOpStatPercentileFromAggregate exercises the OpStat wrappers over a
// real span stream through Aggregate.
func TestOpStatPercentileFromAggregate(t *testing.T) {
	var spans []Span
	for i := 1; i <= 9; i++ {
		d := time.Duration(i) * time.Microsecond
		spans = append(spans, Span{Component: "dev", Name: "op", Start: 0, Dur: d})
	}
	sts := Aggregate(spans)
	if len(sts) != 1 {
		t.Fatalf("got %d op stats, want 1", len(sts))
	}
	st := sts[0]
	if st.P50() < st.Min || st.P50() > st.Max {
		t.Fatalf("P50 %v outside [%v, %v]", st.P50(), st.Min, st.Max)
	}
	if st.P99() < st.P50() {
		t.Fatalf("P99 %v < P50 %v", st.P99(), st.P50())
	}
	if st.Percentile(0) != st.Min || st.Percentile(100) != st.Max {
		t.Fatalf("P0/P100 = %v/%v, want %v/%v", st.Percentile(0), st.Percentile(100), st.Min, st.Max)
	}
}
