package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// TestShardedRunsByteIdentical is the intra-run counterpart of the -j1/-j8
// contract: a mixed DYAD/Lustre/XFS batch under live fault plans, with span
// tracing AND metrics sampling on, must produce byte-identical results,
// Chrome trace exports, and metrics CSV/Prom exports at ShardWorkers 1, 2,
// and 8 — the engine-level guarantee verify.sh checks end to end through
// cmd/experiments.
func TestShardedRunsByteIdentical(t *testing.T) {
	render := func(shardWorkers int) (string, string, string, string) {
		cfgs := faultedBatch()
		for i := range cfgs {
			cfgs[i].ShardWorkers = shardWorkers
			cfgs[i].RecordSpans = true
			cfgs[i].MetricsInterval = 50 * time.Millisecond
		}
		results, err := RunMany(cfgs, 2)
		if err != nil {
			t.Fatalf("ShardWorkers=%d: %v", shardWorkers, err)
		}
		var traceRuns []trace.Run
		var metricRuns []metrics.Run
		for _, r := range results {
			traceRuns = append(traceRuns, trace.Run{Label: r.Cfg.Label(), Spans: r.Spans})
			metricRuns = append(metricRuns, metrics.Run{Label: r.Cfg.Label(), Reg: r.Metrics})
		}
		var chrome, csv, prom strings.Builder
		if err := trace.WriteChrome(&chrome, traceRuns); err != nil {
			t.Fatal(err)
		}
		if err := metrics.WriteCSV(&csv, metricRuns); err != nil {
			t.Fatal(err)
		}
		if err := metrics.WriteProm(&prom, metricRuns); err != nil {
			t.Fatal(err)
		}
		injected := int64(0)
		for _, r := range results {
			injected += r.Recovery.Injected
		}
		if injected == 0 {
			t.Fatalf("ShardWorkers=%d: faulted batch injected nothing; plans degenerate", shardWorkers)
		}
		return canonical(results), chrome.String(), csv.String(), prom.String()
	}

	refRes, refChrome, refCSV, refProm := render(1)
	for _, workers := range []int{2, 8} {
		res, chrome, csv, prom := render(workers)
		if res != refRes {
			t.Errorf("ShardWorkers=%d: results diverged from serial:\n--- serial ---\n%s--- sharded ---\n%s",
				workers, refRes, res)
		}
		if chrome != refChrome {
			t.Errorf("ShardWorkers=%d: Chrome trace bytes diverged from serial", workers)
		}
		if csv != refCSV {
			t.Errorf("ShardWorkers=%d: metrics CSV bytes diverged from serial", workers)
		}
		if prom != refProm {
			t.Errorf("ShardWorkers=%d: metrics Prom bytes diverged from serial", workers)
		}
	}
}

// TestShardedCleanRunMatchesSerial covers the clean (fault-free) side of
// the same contract on each backend individually, including the stdout
// execution timeline (Config.Trace), which flows through Proc.Tracef.
func TestShardedCleanRunMatchesSerial(t *testing.T) {
	m := tinyModel()
	base := []Config{
		{Backend: DYAD, Model: m, Frames: 8, Pairs: 3, Seed: 9, ComputeJitter: 0.02},
		{Backend: XFS, Model: m, Frames: 8, Pairs: 2, SingleNode: true, Seed: 10, ComputeJitter: 0.02},
		{Backend: Lustre, Model: m, Frames: 8, Pairs: 3, Seed: 11, LustreNoise: true},
	}
	run := func(cfg Config, shardWorkers int) (string, string) {
		var timeline strings.Builder
		cfg.ShardWorkers = shardWorkers
		cfg.Trace = &timeline
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s ShardWorkers=%d: %v", cfg.Label(), shardWorkers, err)
		}
		return canonical([]*Result{res}), timeline.String()
	}
	for _, cfg := range base {
		refRes, refTimeline := run(cfg, 1)
		if refTimeline == "" {
			t.Fatalf("%s: empty execution timeline", cfg.Label())
		}
		for _, workers := range []int{2, 8} {
			res, timeline := run(cfg, workers)
			if res != refRes {
				t.Errorf("%s ShardWorkers=%d: result diverged from serial", cfg.Label(), workers)
			}
			if timeline != refTimeline {
				t.Errorf("%s ShardWorkers=%d: execution timeline diverged from serial", cfg.Label(), workers)
			}
		}
	}
}

func TestConfigRejectsNegativeShardWorkers(t *testing.T) {
	cfg := Config{Backend: DYAD, Model: tinyModel(), Frames: 1, Pairs: 1, ShardWorkers: -1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative ShardWorkers accepted")
	}
}
