package analytics

import (
	"math"
	"testing"
)

// These tests pin ChangeDetector's behavior on the utilization-series
// shapes the metrics dashboard feeds it (experiments.MetricsCollector uses
// Threshold 3, MinSample 8): steady ramps must not alarm, regime steps
// must alarm at the step, and departures from a flat (zero-variance)
// series must alarm with a +Inf z-score.

// TestChangeDetectorRampNoDetection: a linear ramp never departs its own
// running distribution by 3 sigma — the maximum z-score of the next point
// on a ramp tends to sqrt(3) ~ 1.73, well under the dashboard threshold.
func TestChangeDetectorRampNoDetection(t *testing.T) {
	det := ChangeDetector{Threshold: 3, MinSample: 8}
	for i := 0; i < 200; i++ {
		v := float64(i) / 200 // utilization ramping 0 -> 1
		if det.Observe(v) {
			t.Fatalf("ramp flagged at sample %d (z=%.2f)", i, det.ZScore())
		}
	}
	if det.Count() != 200 {
		t.Fatalf("count = %d, want 200", det.Count())
	}
}

// TestChangeDetectorStepDetectsAtStep: a utilization regime shift (idle
// fraction jumping 0.2 -> 0.8, the fig5 consumer pathology shape) must be
// flagged exactly when the step arrives, not before.
func TestChangeDetectorStepDetectsAtStep(t *testing.T) {
	det := ChangeDetector{Threshold: 3, MinSample: 8}
	const step = 50
	for i := 0; i < step; i++ {
		// Alternate a little noise so the pre-step variance is nonzero.
		v := 0.2
		if i%2 == 1 {
			v = 0.22
		}
		if det.Observe(v) {
			t.Fatalf("flagged before the step, at sample %d", i)
		}
	}
	if !det.Observe(0.8) {
		t.Fatalf("step to 0.8 not flagged (z=%.2f)", det.ZScore())
	}
	if z := det.ZScore(); math.IsInf(z, 1) || z <= 3 {
		t.Fatalf("step z-score = %v, want finite > 3", z)
	}
}

// TestChangeDetectorConstantWithNoise: small jitter around a constant
// level stays unflagged for the whole series.
func TestChangeDetectorConstantWithNoise(t *testing.T) {
	det := ChangeDetector{Threshold: 3, MinSample: 8}
	// Deterministic +-1.5%% wiggle around 0.5: max |z| stays ~1 on a
	// two-level series.
	for i := 0; i < 300; i++ {
		v := 0.5 + 0.015*float64(i%2*2-1)
		if det.Observe(v) {
			t.Fatalf("noisy constant flagged at sample %d (z=%.2f)", i, det.ZScore())
		}
	}
}

// TestChangeDetectorZeroVarianceDeparture: a perfectly flat history (the
// common all-zero utilization series of an unused resource) has zero
// variance; any departure is infinitely many standard deviations away and
// must be flagged with a +Inf z-score.
func TestChangeDetectorZeroVarianceDeparture(t *testing.T) {
	det := ChangeDetector{Threshold: 3, MinSample: 8}
	for i := 0; i < 20; i++ {
		if det.Observe(0) {
			t.Fatalf("flat zero series flagged at sample %d", i)
		}
		if det.ZScore() != 0 {
			t.Fatalf("flat zero series z-score = %v at sample %d, want 0", det.ZScore(), i)
		}
	}
	if !det.Observe(0.3) {
		t.Fatal("departure from zero-variance history not flagged")
	}
	if !math.IsInf(det.ZScore(), 1) {
		t.Fatalf("zero-variance departure z-score = %v, want +Inf", det.ZScore())
	}
}

// TestChangeDetectorUtilizationWarmup: no detection can fire before
// MinSample observations, even for wild swings.
func TestChangeDetectorUtilizationWarmup(t *testing.T) {
	det := ChangeDetector{Threshold: 3, MinSample: 8}
	swings := []float64{0, 100, -100, 1000, 0, 5000, -5000, 42}
	for i, v := range swings {
		if det.Observe(v) {
			t.Fatalf("detection during warmup at sample %d", i)
		}
		if det.ZScore() != 0 {
			t.Fatalf("warmup z-score = %v at sample %d, want 0", det.ZScore(), i)
		}
	}
}
