package cluster

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// ioAllocs measures the allocations of one engine lifetime pushing `ops`
// operations through every instrumented component path: SSD reads and
// writes, same-node and cross-node transfers, and RPCs.
func ioAllocs(t *testing.T, ops int) float64 {
	t.Helper()
	return testing.AllocsPerRun(5, func() {
		e := sim.NewEngine(1)
		c := New(e, testSpec(2))
		srv := sim.NewResource(e, "srv", 1)
		e.Spawn("p", func(p *sim.Proc) {
			for i := 0; i < ops; i++ {
				c.Node(0).SSD.Write(p, 4096)
				c.Node(0).SSD.Read(p, 4096)
				c.Transfer(p, c.Node(0), c.Node(0), 4096)
				c.Transfer(p, c.Node(0), c.Node(1), 4096)
				c.RPC(p, c.Node(0), c.Node(1), 128, 128, srv, time.Microsecond)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// With tracing off (no recorder on the engine), the span emission sites in
// the I/O paths must cost nothing: scaling the operation count 50x must
// not add a single allocation. This pins the tentpole's zero-cost contract
// at the component layer, where every hot path got an Emit call.
func TestIOPathsZeroAllocsWithTracingOff(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation budget checked without -race")
	}
	base := ioAllocs(t, 20)
	long := ioAllocs(t, 1_000)
	if delta := long - base; delta > 0 {
		t.Fatalf("I/O paths allocate with tracing off: %.0f allocs over 980 extra iterations (base %.0f, long %.0f)", delta, base, long)
	}
}
