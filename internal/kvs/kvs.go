// Package kvs models the key-value store DYAD uses for global metadata
// management and for its loosely-coupled first-touch synchronization (the
// Flux KVS in the real system). The store runs as a queued service hosted
// on one node; clients on other nodes pay network round trips, and every
// operation queues at the single server — which is exactly the "stress on
// KVS" effect the paper observes in Figure 9 for small, bursty frames.
package kvs

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrNoSuchKey marks a lookup of a key that has not been committed. Callers
// test it with errors.Is; the loose WaitFor path is the blocking alternative.
var ErrNoSuchKey = errors.New("kvs: no such key")

// Params is the KVS cost model.
type Params struct {
	CommitService time.Duration // server time per commit (Put)
	LookupService time.Duration // server time per lookup (Get/Stat)
	WatchService  time.Duration // server time to register a watch
	MsgBytes      int64         // request/response message size
}

// DefaultParams returns a Flux-KVS-like cost model.
func DefaultParams() Params {
	return Params{
		CommitService: 90 * time.Microsecond,
		LookupService: 35 * time.Microsecond,
		WatchService:  45 * time.Microsecond,
		MsgBytes:      256,
	}
}

// Store is the key-value service.
type Store struct {
	cl     *cluster.Cluster
	node   *cluster.Node
	params Params
	server *sim.Resource

	data    map[string][]byte
	watches map[string]*sim.Latch

	Commits int64
	Lookups int64
	Waits   int64

	// commitLat is a sampled latency histogram (nil when no metrics
	// registry is attached — Observe on nil is free).
	commitLat *metrics.Histogram
}

// RegisterMetrics registers the store's sampled series under prefix
// (for example "dyad/kvs"): in-flight requests and server utilization on
// the dashboard, commit/lookup rates, watch-wait counts, and a commit
// latency histogram. Nil-safe on a nil registry.
func (s *Store) RegisterMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Gauge(prefix+"/inflight", func() float64 {
		return float64(s.server.InUse() + s.server.QueueLen())
	}).OnDashboard()
	reg.Util(prefix+"/util", 1, func() float64 { return float64(s.server.BusyUnitNanos()) })
	reg.Rate(prefix+"/commit_rate", func() float64 { return float64(s.Commits) })
	reg.Rate(prefix+"/lookup_rate", func() float64 { return float64(s.Lookups) })
	reg.Counter(prefix+"/watch_waits", func() float64 { return float64(s.Waits) })
	s.commitLat = reg.Histogram(prefix + "/commit_lat")
}

// New creates a store hosted on the given node.
func New(cl *cluster.Cluster, node *cluster.Node, params Params) *Store {
	return &Store{
		cl:      cl,
		node:    node,
		params:  params,
		server:  sim.NewResource(cl.Engine(), node.Name()+"/kvs", 1),
		data:    make(map[string][]byte),
		watches: make(map[string]*sim.Latch),
	}
}

// Node returns the hosting node.
func (s *Store) Node() *cluster.Node { return s.node }

// Server exposes the service queue (for utilization stats).
func (s *Store) Server() *sim.Resource { return s.server }

// Commit publishes value under key, firing any watches. The calling
// process pays the round trip from its node plus queued server time.
func (s *Store) Commit(p *sim.Proc, from *cluster.Node, key string, value []byte) {
	s.Commits++
	start := p.Now()
	p.CritBegin("kvs", "commit", trace.ClassDetail)
	s.cl.RPC(p, from, s.node, s.params.MsgBytes+int64(len(value)), 64, s.server, s.params.CommitService)
	p.CritEnd()
	s.commitLat.Observe(p.Now() - start)
	p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "kvs", Name: "commit",
		Start: start, Dur: p.Now() - start, Bytes: int64(len(value)), Attr: key})
	p.CritHop(key, "kvs_commit", start, int64(len(value)))
	s.data[key] = value
	if l, ok := s.watches[key]; ok {
		l.Fire()
	}
}

// Lookup fetches the value under key. A key that has not been committed
// returns an error wrapping ErrNoSuchKey (the round trip is still paid: the
// server answered "not found").
func (s *Store) Lookup(p *sim.Proc, from *cluster.Node, key string) ([]byte, error) {
	s.Lookups++
	v, ok := s.data[key]
	resp := int64(64)
	if ok {
		resp += int64(len(v))
	}
	start := p.Now()
	p.CritBegin("kvs", "lookup", trace.ClassDetail)
	s.cl.RPC(p, from, s.node, s.params.MsgBytes, resp, s.server, s.params.LookupService)
	p.CritEnd()
	p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "kvs", Name: "lookup",
		Start: start, Dur: p.Now() - start, Attr: key})
	if ok {
		p.CritDepend(key, "kvs_lookup")
	}
	if !ok {
		return nil, fmt.Errorf("kvs: lookup %q: %w", key, ErrNoSuchKey)
	}
	return v, nil
}

// WaitFor blocks until key exists, then returns its value. If the key is
// already present it degenerates to a Lookup. This is DYAD's loose
// first-consumption synchronization: the consumer waits, the producer is
// never involved.
func (s *Store) WaitFor(p *sim.Proc, from *cluster.Node, key string) []byte {
	if v, ok := s.data[key]; ok {
		s.Lookups++
		s.cl.RPC(p, from, s.node, s.params.MsgBytes, 64+int64(len(v)), s.server, s.params.LookupService)
		return v
	}
	s.Waits++
	// Register the watch (one round trip), block until the commit fires it,
	// then receive the notification message. The commit may land while the
	// registration round trip is in flight; the re-check below closes that
	// window (the server replies with the value immediately in that case).
	s.cl.RPC(p, from, s.node, s.params.MsgBytes, 64, s.server, s.params.WatchService)
	if v, ok := s.data[key]; ok {
		return v
	}
	l, ok := s.watches[key]
	if !ok {
		l = &sim.Latch{}
		s.watches[key] = l
	}
	blockStart := p.Now()
	p.CritBegin("kvs", "watch_block", trace.ClassDetail)
	l.Wait(p)
	p.CritEnd()
	p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "kvs", Name: "watch_block",
		Start: blockStart, Dur: p.Now() - blockStart, Attr: key})
	v := s.data[key]
	p.CritDepend(key, "kvs_watch")
	s.cl.Transfer(p, s.node, from, 64+int64(len(v)))
	return v
}

// WatchWait is the non-adaptive variant of WaitFor: it always pays the
// watch-registration round trip, even when the key is already present.
// Used by ablation studies that disable DYAD's protocol switching.
func (s *Store) WatchWait(p *sim.Proc, from *cluster.Node, key string) []byte {
	s.Waits++
	s.cl.RPC(p, from, s.node, s.params.MsgBytes, 64, s.server, s.params.WatchService)
	if v, ok := s.data[key]; ok {
		s.cl.Transfer(p, s.node, from, 64+int64(len(v)))
		return v
	}
	l, ok := s.watches[key]
	if !ok {
		l = &sim.Latch{}
		s.watches[key] = l
	}
	blockStart := p.Now()
	p.CritBegin("kvs", "watch_block", trace.ClassDetail)
	l.Wait(p)
	p.CritEnd()
	p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "kvs", Name: "watch_block",
		Start: blockStart, Dur: p.Now() - blockStart, Attr: key})
	v := s.data[key]
	p.CritDepend(key, "kvs_watch")
	s.cl.Transfer(p, s.node, from, 64+int64(len(v)))
	return v
}

// Len returns the number of committed keys.
func (s *Store) Len() int { return len(s.data) }
