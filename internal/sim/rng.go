package sim

import (
	"math"
	"time"
)

// RNG is a small, fast, deterministic random stream (splitmix64 state
// update feeding an xorshift-star output). Each process owns one, derived
// from the engine seed and the process identity, so simulations are
// reproducible regardless of goroutine scheduling.
type RNG struct {
	state uint64
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed uint64) RNG {
	// Avoid the all-zero state.
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample (Box-Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Jitter returns d scaled by a positive multiplicative noise factor with
// the given relative standard deviation (lognormal-ish; clamped at ±4σ).
// It models per-step compute-time variability.
func (r *RNG) Jitter(d time.Duration, relStd float64) time.Duration {
	if relStd <= 0 || d <= 0 {
		return d
	}
	z := r.Norm()
	if z > 4 {
		z = 4
	} else if z < -4 {
		z = -4
	}
	f := math.Exp(relStd*z - relStd*relStd/2)
	return time.Duration(float64(d) * f)
}

// Exp returns an exponential sample with the given mean.
func (r *RNG) Exp(mean time.Duration) time.Duration {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return time.Duration(-float64(mean) * math.Log(u))
}
