package xfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func newTestFS(e *sim.Engine) *FS {
	cl := cluster.New(e, cluster.CoronaProfile(1))
	return New(cl.Node(0), DefaultParams())
}

func TestWriteReadRoundTrip(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFS(e)
	payload := []byte("frame-bytes")
	e.Spawn("io", func(p *sim.Proc) {
		if err := f.WriteFile(p, "/frames/f0", vfs.BytesPayload(payload)); err != nil {
			t.Errorf("write: %v", err)
		}
		got, err := f.ReadFile(p, "/frames/f0")
		if err != nil {
			t.Errorf("read: %v", err)
		}
		if !bytes.Equal(got.Bytes(), payload) {
			t.Errorf("read %q, want %q", got.Bytes(), payload)
		}
		fi, err := f.Stat(p, "/frames/f0")
		if err != nil || fi.Size != int64(len(payload)) {
			t.Errorf("stat %+v, %v", fi, err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadMissingFile(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFS(e)
	e.Spawn("io", func(p *sim.Proc) {
		if _, err := f.ReadFile(p, "/nope"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("read missing: %v, want ErrNotExist", err)
		}
		if _, err := f.Stat(p, "/nope"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("stat missing: %v, want ErrNotExist", err)
		}
		if err := f.Unlink(p, "/nope"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("unlink missing: %v, want ErrNotExist", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnlinkRemoves(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFS(e)
	e.Spawn("io", func(p *sim.Proc) {
		_ = f.WriteFile(p, "/a", vfs.BytesPayload([]byte("x")))
		if err := f.Unlink(p, "/a"); err != nil {
			t.Errorf("unlink: %v", err)
		}
		if _, err := f.ReadFile(p, "/a"); err == nil {
			t.Error("read after unlink succeeded")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteChargesJournalAndData(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFS(e)
	e.Spawn("io", func(p *sim.Proc) {
		_ = f.WriteFile(p, "/a", vfs.SizeOnly(1<<20))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	ssd := f.Node().SSD
	if ssd.Writes != 2 { // journal + data
		t.Fatalf("device writes %d, want 2", ssd.Writes)
	}
	if ssd.BytesWritten != 4096+1<<20 {
		t.Fatalf("bytes written %d", ssd.BytesWritten)
	}
}

func TestWriteTimeGrowsWithSize(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFS(e)
	var small, large sim.Time
	e.Spawn("io", func(p *sim.Proc) {
		t0 := p.Now()
		_ = f.WriteFile(p, "/s", vfs.SizeOnly(1<<10))
		small = p.Now() - t0
		t1 := p.Now()
		_ = f.WriteFile(p, "/l", vfs.SizeOnly(1<<24))
		large = p.Now() - t1
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Fatalf("16 MiB write (%v) should exceed 1 KiB write (%v)", large, small)
	}
}

// Property: any sequence of writes is readable back byte-identical.
func TestRoundTripProperty(t *testing.T) {
	fn := func(blobs [][]byte) bool {
		e := sim.NewEngine(1)
		f := newTestFS(e)
		ok := true
		e.Spawn("io", func(p *sim.Proc) {
			for i, b := range blobs {
				path := vfs.Clean(string(rune('a'+i%26)) + "/f")
				if err := f.WriteFile(p, path, vfs.BytesPayload(b)); err != nil {
					ok = false
					return
				}
				got, err := f.ReadFile(p, path)
				if err != nil || !bytes.Equal(got.Bytes(), b) {
					ok = false
					return
				}
			}
		})
		return e.Run() == nil && ok
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
