// Quickstart: run one producer-consumer pair moving JAC frames through
// DYAD and through Lustre on a simulated two-node cluster, and print the
// paper's time decomposition side by side.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/stats"
)

func main() {
	jac, err := repro.ModelByName("JAC")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("quickstart: 1 producer-consumer pair, JAC, 64 frames, two nodes")
	fmt.Printf("frame size %d bytes, one frame every %v\n\n", jac.FrameBytes(), jac.DefaultFrequency())

	for _, backend := range []repro.Backend{repro.DYAD, repro.Lustre} {
		res, err := repro.Run(repro.Config{
			Backend: backend,
			Model:   jac,
			Pairs:   1,
			Frames:  64,
			Seed:    7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s production: movement=%-10s idle=%-10s | consumption: movement=%-10s idle=%-10s\n",
			backend,
			stats.FormatSeconds(res.Producer.Movement.Seconds()),
			stats.FormatSeconds(res.Producer.Idle.Seconds()),
			stats.FormatSeconds(res.Consumer.Movement.Seconds()),
			stats.FormatSeconds(res.Consumer.Idle.Seconds()))
	}

	fmt.Println("\nDYAD's consumer idles only while the pipeline fills (first frame);")
	fmt.Println("Lustre's consumer pays the coarse-grained explicit synchronization on every frame.")
}
