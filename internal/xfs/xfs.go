// Package xfs models a node-local journaled filesystem (XFS in the paper)
// over a node's NVMe SSD. It is the fastest local storage option in the
// study: every byte goes to the local device, writes additionally pay a
// journal commit, and there is no way to reach another node's files —
// which is exactly why the paper's XFS configuration is restricted to
// single-node workflows.
package xfs

import (
	"time"

	"repro/internal/capacity"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Params is the XFS cost model.
type Params struct {
	// JournalBytes is charged to the device per metadata-mutating
	// operation (create, unlink), modelling the log write.
	JournalBytes int64
	// MetaLatency is the in-memory bookkeeping cost per operation.
	MetaLatency time.Duration
}

// DefaultParams returns a realistic cost model for XFS on NVMe.
func DefaultParams() Params {
	return Params{
		JournalBytes: 4096,
		MetaLatency:  2 * time.Microsecond,
	}
}

// FS is one node-local XFS instance. It satisfies vfs.FS. Processes on
// other nodes must not use it (the real filesystem is simply not visible
// there); reaching across is a programming error the workflow layer guards.
type FS struct {
	node   *cluster.Node
	params Params
	tree   *vfs.Tree

	// Sampled-metrics state (cheap unconditional updates): journalPending
	// is the number of journal commits currently waiting on the device —
	// the journal backlog; journalBytes/journalOps accumulate log traffic.
	journalPending int64
	journalBytes   int64
	journalOps     int64
	// journalLat is a sampled commit latency histogram (nil when no
	// metrics registry is attached — Observe on nil is free).
	journalLat *metrics.Histogram

	// cap is the filesystem's finite byte budget; nil when capacity is off
	// (the default), keeping every capacity hook behind one nil check so
	// the unconstrained timeline is untouched.
	cap *capacity.Store
}

// RegisterMetrics registers the filesystem's sampled series under prefix
// (for example "xfs"): the journal backlog on the dashboard, plus journal
// bandwidth, commit rate, and a file-write commit latency histogram.
// Nil-safe on a nil registry.
func (f *FS) RegisterMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Gauge(prefix+"/journal_backlog", func() float64 { return float64(f.journalPending) }).OnDashboard()
	reg.Rate(prefix+"/journal_bw", func() float64 { return float64(f.journalBytes) })
	reg.Rate(prefix+"/journal_commits", func() float64 { return float64(f.journalOps) })
	f.journalLat = reg.Histogram(prefix + "/journal_lat")
}

// New mounts an XFS instance on the given node's SSD.
func New(node *cluster.Node, params Params) *FS {
	return &FS{node: node, params: params, tree: vfs.NewTree()}
}

// SetCapacity attaches a finite byte budget to the filesystem. Evicted
// frames are removed from the file table; XFS has no shared mirror, so an
// eviction always drops the data and later reads fail with
// capacity.ErrEvicted. Pass nil to return to infinite capacity.
func (f *FS) SetCapacity(s *capacity.Store) { f.cap = s }

// Capacity returns the attached capacity store (nil when capacity is off).
func (f *FS) Capacity() *capacity.Store { return f.cap }

// Name implements vfs.FS.
func (f *FS) Name() string { return "xfs" }

// Node returns the node the filesystem is local to.
func (f *FS) Node() *cluster.Node { return f.node }

// Tree exposes the file table (for invariant checks in tests).
func (f *FS) Tree() *vfs.Tree { return f.tree }

// WriteFile implements vfs.FS: journal commit + data write on the local SSD.
// The payload is stored by reference, never copied.
func (f *FS) WriteFile(p *sim.Proc, path string, pl vfs.Payload) error {
	wStart := p.Now()
	p.CritBegin("xfs", "write", trace.ClassDetail)
	defer p.CritEnd()
	p.Sleep(f.params.MetaLatency)
	if f.cap != nil {
		// Claim the bytes before paying any device cost: eviction or
		// back-pressure happens here, and ErrNoSpace fails the write fast.
		if err := f.cap.Reserve(p, vfs.Clean(path), pl.Size()); err != nil {
			return vfs.PathError("write", path, err)
		}
	}
	jStart := p.Now()
	f.journalPending++
	f.journalOps++
	f.journalBytes += f.params.JournalBytes
	if _, err := f.node.SSD.Write(p, f.params.JournalBytes); err != nil {
		f.journalPending--
		if f.cap != nil {
			f.cap.Remove(vfs.Clean(path)) // roll back the reservation
		}
		return vfs.PathError("write", path, err)
	}
	f.journalPending--
	f.journalLat.Observe(p.Now() - jStart)
	p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "xfs", Name: "journal_commit",
		Start: jStart, Dur: p.Now() - jStart, Bytes: f.params.JournalBytes, Attr: path})
	if _, err := f.node.SSD.Write(p, pl.Size()); err != nil {
		if f.cap != nil {
			f.cap.Remove(vfs.Clean(path))
		}
		return vfs.PathError("write", path, err)
	}
	f.tree.Put(path, pl)
	p.CritProduce(vfs.Clean(path), pl.Size())
	p.CritHop(vfs.Clean(path), "write", wStart, pl.Size())
	return nil
}

// ReadFile implements vfs.FS: data read from the local SSD.
func (f *FS) ReadFile(p *sim.Proc, path string) (vfs.Payload, error) {
	rStart := p.Now()
	p.CritBegin("xfs", "read", trace.ClassDetail)
	defer p.CritEnd()
	p.Sleep(f.params.MetaLatency)
	pl, ok := f.tree.Get(path)
	if !ok {
		if f.cap != nil && f.cap.State(vfs.Clean(path)) != capacity.StateUnknown {
			// The frame existed and was evicted: XFS has no mirror, so the
			// data is gone for good.
			return vfs.Payload{}, vfs.PathError("read", path, capacity.ErrEvicted)
		}
		return vfs.Payload{}, vfs.PathError("read", path, vfs.ErrNotExist)
	}
	if f.cap != nil {
		switch f.cap.State(vfs.Clean(path)) {
		case capacity.StateSpilled, capacity.StateDropped:
			// An eviction raced this frame's in-flight write: the victim scan
			// ran between our reservation and the journal commit landing the
			// entry in the tree. The budget already reclaimed the bytes, so
			// reads must honor the tombstone.
			f.tree.Remove(path)
			return vfs.Payload{}, vfs.PathError("read", path, capacity.ErrEvicted)
		}
	}
	if _, err := f.node.SSD.Read(p, pl.Size()); err != nil {
		return vfs.Payload{}, vfs.PathError("read", path, err)
	}
	if f.cap != nil {
		f.cap.MarkConsumed(vfs.Clean(path))
	}
	p.CritDepend(vfs.Clean(path), "read")
	p.CritHop(vfs.Clean(path), "read", rStart, pl.Size())
	return pl, nil
}

// Stat implements vfs.FS: metadata only, no data transfer.
func (f *FS) Stat(p *sim.Proc, path string) (vfs.FileInfo, error) {
	p.Sleep(f.params.MetaLatency)
	sz, ok := f.tree.Size(path)
	if !ok {
		return vfs.FileInfo{}, vfs.PathError("stat", path, vfs.ErrNotExist)
	}
	return vfs.FileInfo{Path: vfs.Clean(path), Size: sz}, nil
}

// Unlink implements vfs.FS: journal commit, entry removal.
func (f *FS) Unlink(p *sim.Proc, path string) error {
	p.Sleep(f.params.MetaLatency)
	f.journalPending++
	f.journalOps++
	f.journalBytes += f.params.JournalBytes
	_, err := f.node.SSD.Write(p, f.params.JournalBytes)
	f.journalPending--
	if err != nil {
		return vfs.PathError("unlink", path, err)
	}
	if !f.tree.Remove(path) {
		return vfs.PathError("unlink", path, vfs.ErrNotExist)
	}
	if f.cap != nil {
		f.cap.Remove(vfs.Clean(path))
	}
	return nil
}

var _ vfs.FS = (*FS)(nil)
