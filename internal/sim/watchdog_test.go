package sim

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// A process that re-schedules itself forever at the same instant is the
// canonical livelock: the queue never drains and virtual time never moves.
// The event watchdog must convert it into ErrWatchdog instead of spinning.
func TestWatchdogAbortsEventLivelock(t *testing.T) {
	e := NewEngine(1)
	e.SetWatchdog(10_000, 0)
	e.Spawn("livelock", func(p *Proc) {
		for {
			p.Sleep(0)
		}
	})
	err := e.Run()
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
}

// A retry loop that always re-arms a future timer livelocks in virtual time
// instead of event count. The time watchdog must catch it.
func TestWatchdogAbortsVirtualTimeRunaway(t *testing.T) {
	e := NewEngine(1)
	e.SetWatchdog(0, 50*time.Millisecond)
	e.Spawn("retry-forever", func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
		}
	})
	err := e.Run()
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
	if e.Now() > 60*time.Millisecond {
		t.Fatalf("run advanced to %v, well past the %v limit", e.Now(), 50*time.Millisecond)
	}
}

// A watchdog abort strands well-behaved sleeping processes: their delivery
// events die with the queue. They must be unwound so no goroutines leak.
func TestWatchdogAbortLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		e := NewEngine(uint64(i))
		e.SetWatchdog(1_000, 0)
		for j := 0; j < 8; j++ {
			e.Spawn("sleeper", func(p *Proc) {
				p.Sleep(time.Hour)
			})
		}
		e.Spawn("livelock", func(p *Proc) {
			for {
				p.Sleep(0)
			}
		})
		if err := e.Run(); !errors.Is(err, ErrWatchdog) {
			t.Fatalf("iteration %d: err = %v, want ErrWatchdog", i, err)
		}
	}
	// Aborted procs unwind synchronously in Run, but give the runtime a
	// moment to retire them before counting.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew from %d to %d: aborted runs leak", before, after)
	}
}

// Below its limits the watchdog must be invisible: same timeline, no error.
func TestWatchdogInertUnderLimits(t *testing.T) {
	run := func(armed bool) (Time, error) {
		e := NewEngine(7)
		if armed {
			e.SetWatchdog(1_000_000, time.Hour)
		}
		e.Spawn("worker", func(p *Proc) {
			for i := 0; i < 100; i++ {
				p.Sleep(time.Millisecond)
			}
		})
		err := e.Run()
		return e.Now(), err
	}
	plainEnd, err := run(false)
	if err != nil {
		t.Fatal(err)
	}
	armedEnd, err := run(true)
	if err != nil {
		t.Fatalf("armed run failed: %v", err)
	}
	if plainEnd != armedEnd {
		t.Fatalf("armed watchdog changed the timeline: %v vs %v", armedEnd, plainEnd)
	}
}

func TestSetWatchdogRejectsNegativeLimits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative watchdog limit accepted")
		}
	}()
	NewEngine(1).SetWatchdog(-1, 0)
}
