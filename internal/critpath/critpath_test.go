package critpath

import (
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

const ms = time.Millisecond

// chain builds the canonical two-proc coarse-sync shape: proc 1 (consumer)
// waits from 0 to 10ms, released at 8ms by proc 0 (producer) which computed
// [0,8) and then ran to 10ms; the consumer then computes [10,20).
func chain() *Graph {
	r := NewRecorder()
	r.StartProc(0, "producer", -1, 0)
	r.Begin(0, "workflow", "md_compute", trace.ClassCompute, 0)
	r.StartProc(1, "consumer", -1, 0)
	r.Begin(1, "workflow", "explicit_sync", trace.ClassIdle, 0)
	r.BeginWait(1, 0)
	r.Release(0, 1, 8*ms)
	r.End(0, 8*ms)
	r.EndWait(1, 10*ms)
	r.End(1, 10*ms)
	r.Begin(1, "workflow", "analytics", trace.ClassCompute, 10*ms)
	r.EndProc(0, 10*ms)
	r.End(1, 20*ms)
	r.EndProc(1, 20*ms)
	return r.Finish(20 * ms)
}

func TestExtractWalksReleaseEdge(t *testing.T) {
	cp := Extract(chain())
	if cp.Makespan != 20*ms {
		t.Fatalf("makespan %v, want 20ms", cp.Makespan)
	}
	// [10,20) analytics on consumer, wake latency [8,10) on the wait label,
	// [0,8) md_compute on producer: tiles the makespan exactly.
	if cp.Attributed+cp.Untracked != cp.Makespan {
		t.Fatalf("tiling broken: attributed %v + untracked %v != %v", cp.Attributed, cp.Untracked, cp.Makespan)
	}
	if cp.Untracked != 0 {
		t.Fatalf("untracked %v, want 0", cp.Untracked)
	}
	if cp.Edges != 1 {
		t.Fatalf("edges %d, want 1", cp.Edges)
	}
	want := map[string]Time{"md_compute": 8 * ms, "analytics": 10 * ms, "explicit_sync": 2 * ms}
	for _, row := range cp.Rows {
		if want[row.Name] != row.Total {
			t.Errorf("row %s: total %v, want %v", row.Name, row.Total, want[row.Name])
		}
		delete(want, row.Name)
	}
	if len(want) != 0 {
		t.Errorf("missing rows: %v", want)
	}
	if cp.ByClass[trace.ClassCompute] != 18*ms || cp.ByClass[trace.ClassIdle] != 2*ms {
		t.Errorf("class split: %v", cp.ByClass)
	}
	// The gated table names the sync point with the full wait interval.
	if len(cp.Waits) != 1 || cp.Waits[0].Name != "explicit_sync" || cp.Waits[0].Gated != 10*ms {
		t.Errorf("waits: %+v", cp.Waits)
	}
}

func TestExtractSkipsBackgroundRoots(t *testing.T) {
	r := NewRecorder()
	r.StartProc(0, "worker", -1, 0)
	r.Begin(0, "workflow", "compute", trace.ClassCompute, 0)
	r.End(0, 10*ms)
	r.EndProc(0, 10*ms)
	// Noise proc outlives the workflow; it must not become the walk root.
	r.StartProc(1, "noise", -1, 0)
	r.SetBackground(1)
	r.Begin(1, "lustre", "background_noise", trace.ClassDetail, 0)
	r.End(1, 50*ms)
	r.EndProc(1, 50*ms)
	cp := Extract(r.Finish(50 * ms))
	if cp.Makespan != 10*ms {
		t.Fatalf("makespan %v, want the non-background proc's 10ms", cp.Makespan)
	}
	if len(cp.Rows) != 1 || cp.Rows[0].Name != "compute" {
		t.Fatalf("rows: %+v", cp.Rows)
	}
}

// A proc that wakes a peer and blocks at the same instant must not bounce
// the walk forward in time (the strict findSeg contract).
func TestExtractWakeThenBlockSameInstant(t *testing.T) {
	r := NewRecorder()
	r.StartProc(0, "a", -1, 0)
	r.Begin(0, "w", "run_a", trace.ClassCompute, 0)
	r.StartProc(1, "b", -1, 0)
	r.Begin(1, "w", "wait_b", trace.ClassIdle, 0)
	r.BeginWait(1, 0)
	// a wakes b at 5ms and immediately blocks; b later wakes a at 9ms.
	r.Release(0, 1, 5*ms)
	r.BeginWait(0, 5*ms)
	r.EndWait(1, 5*ms)
	r.End(1, 5*ms)
	r.Begin(1, "w", "run_b", trace.ClassCompute, 5*ms)
	r.Release(1, 0, 9*ms)
	r.EndWait(0, 9*ms)
	r.EndProc(1, 9*ms)
	r.EndProc(0, 12*ms)
	cp := Extract(r.Finish(12 * ms))
	if cp.Attributed+cp.Untracked != cp.Makespan {
		t.Fatalf("tiling broken: %v + %v != %v", cp.Attributed, cp.Untracked, cp.Makespan)
	}
	if cp.Untracked != 0 {
		t.Fatalf("untracked %v, want 0 (walk: a [9,12) -> b [5,9) -> a [0,5))", cp.Untracked)
	}
}

func TestFindSegStrictlyBefore(t *testing.T) {
	segs := []Segment{
		{Start: 0, End: 5 * ms},
		{Start: 5 * ms, End: 5 * ms}, // zero-length wait
		{Start: 5 * ms, End: 9 * ms},
	}
	if got := findSeg(segs, 5*ms); got != 0 {
		t.Errorf("findSeg(5ms) = %d, want 0 (segment occupied just before t)", got)
	}
	if got := findSeg(segs, 6*ms); got != 2 {
		t.Errorf("findSeg(6ms) = %d, want 2", got)
	}
	if got := findSeg(segs, 0); got != -1 {
		t.Errorf("findSeg(0) = %d, want -1", got)
	}
}

func TestProduceFirstWinsAndDepSlack(t *testing.T) {
	r := NewRecorder()
	r.StartProc(0, "p", -1, 0)
	r.StartProc(1, "c", -1, 0)
	var slacks []Time
	r.OnDep = func(kind string, slack Time) { slacks = append(slacks, slack) }
	r.Produce("/f0", 0, 2*ms, 100)
	r.Produce("/f0", 0, 7*ms, 999) // mirror copy: ignored
	r.Depend("/f0", "read", 1, 5*ms)
	r.Depend("/missing", "read", 1, 5*ms) // unknown token: ignored
	g := r.Finish(10 * ms)
	if len(g.Deps) != 1 {
		t.Fatalf("deps: %+v", g.Deps)
	}
	d := g.Deps[0]
	if d.ProducedAt != 2*ms || d.ConsumedAt != 5*ms || d.Bytes != 100 {
		t.Errorf("dep: %+v", d)
	}
	if len(slacks) != 1 || slacks[0] != 3*ms {
		t.Errorf("OnDep slacks: %v", slacks)
	}
	cp := Extract(g)
	if cp.SlackCount != 1 || cp.SlackMin != 3*ms || cp.SlackMax != 3*ms {
		t.Errorf("slack stats: count=%d min=%v max=%v", cp.SlackCount, cp.SlackMin, cp.SlackMax)
	}
}

func TestDiffAttributesGap(t *testing.T) {
	a := Extract(chain())
	// Run B: same shape, consumer wait stretched by 30ms (release at 38ms).
	r := NewRecorder()
	r.StartProc(0, "producer", -1, 0)
	r.Begin(0, "workflow", "md_compute", trace.ClassCompute, 0)
	r.StartProc(1, "consumer", -1, 0)
	r.Begin(1, "workflow", "explicit_sync", trace.ClassIdle, 0)
	r.BeginWait(1, 0)
	r.Release(0, 1, 38*ms)
	r.End(0, 38*ms)
	r.EndWait(1, 40*ms)
	r.End(1, 40*ms)
	r.Begin(1, "workflow", "analytics", trace.ClassCompute, 40*ms)
	r.EndProc(0, 40*ms)
	r.End(1, 50*ms)
	r.EndProc(1, 50*ms)
	b := Extract(r.Finish(50 * ms))

	d := Diff("A", a, "B", b)
	if d.Gap != 30*ms {
		t.Fatalf("gap %v, want 30ms", d.Gap)
	}
	if pct := d.AttributionPct(); pct < 99.9 || pct > 100.1 {
		t.Fatalf("attribution %.1f%%, want 100%%", pct)
	}
	// Biggest delta first: the producer compute stretch.
	if d.Rows[0].Name != "md_compute" || d.Rows[0].Delta != 30*ms {
		t.Fatalf("top row: %+v", d.Rows[0])
	}
}

func TestWaterfallAndFlows(t *testing.T) {
	r := NewRecorder()
	r.StartProc(0, "producer000", -1, 0)
	r.StartProc(1, "consumer000", -1, 0)
	r.Hop("/f0", "write", 0, ms, 2*ms, 64)
	r.Hop("/f0", "read", 1, 3*ms, 4*ms, 64)
	r.Hop("/f1", "write", 0, 5*ms, 6*ms, 32)
	g := r.Finish(10 * ms)

	var sb strings.Builder
	if err := WriteWaterfall(&sb, []LineageSet{{Label: "run1", Frames: g.Lineages}}); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "run,frame,hop,proc,start_us,dur_us,bytes\n" +
		"run1,/f0,write,producer000,1000,1000,64\n" +
		"run1,/f0,read,consumer000,3000,1000,64\n" +
		"run1,/f1,write,producer000,5000,1000,32\n"
	if got != want {
		t.Errorf("waterfall:\n%s\nwant:\n%s", got, want)
	}

	flows := FlowEvents(g.Lineages)
	// /f0 has two proc-bound hops -> one flow (start + finish); /f1 has one
	// hop -> no flow.
	if len(flows) != 2 {
		t.Fatalf("flows: %+v", flows)
	}
	if !flows[0].Start || flows[0].Proc != "producer000" || flows[0].At != 2*ms {
		t.Errorf("flow start: %+v", flows[0])
	}
	if flows[1].Start || flows[1].Proc != "consumer000" || flows[1].At != 3*ms {
		t.Errorf("flow finish: %+v", flows[1])
	}
	if flows[0].ID != flows[1].ID {
		t.Errorf("flow ids differ: %d vs %d", flows[0].ID, flows[1].ID)
	}
}

// Two identical recording sequences must produce identical graphs and
// byte-identical reports — the package's determinism contract reduced to
// its core: no map iteration anywhere on the output path.
func TestDeterministicExtraction(t *testing.T) {
	a, b := Extract(chain()), Extract(chain())
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Errorf("row %d: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
	for i := range a.Waits {
		if a.Waits[i] != b.Waits[i] {
			t.Errorf("wait %d: %+v vs %+v", i, a.Waits[i], b.Waits[i])
		}
	}
}

func TestFinishStrandedWaiter(t *testing.T) {
	r := NewRecorder()
	r.StartProc(0, "stuck", -1, 0)
	r.Begin(0, "w", "wait", trace.ClassIdle, 0)
	r.BeginWait(0, 2*ms)
	g := r.Finish(10 * ms)
	segs := g.Procs[0].Segments
	if len(segs) != 2 {
		t.Fatalf("segments: %+v", segs)
	}
	last := segs[len(segs)-1]
	if last.Kind != Wait || last.End != 10*ms {
		t.Errorf("stranded wait not closed at finish: %+v", last)
	}
}
