// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock over a priority queue of events and
// runs simulated processes as goroutine coroutines: at any instant at most
// one process goroutine executes, and control passes between the kernel and
// the running process through unbuffered channels ("baton passing"). Given
// the same seed and the same spawn order, a simulation is fully
// deterministic and independent of wall-clock scheduling.
//
// The kernel is the substrate for every simulated subsystem in this
// repository: storage devices, network fabrics, filesystems, the Lustre and
// DYAD services, and the MD workflow processes themselves. Millions of
// events flow through it per experiment sweep, so the hot path (sleep,
// block, wake, deliver) is allocation-free in steady state; see DESIGN.md
// §3c for the kernel performance model.
package sim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/critpath"
	"repro/internal/trace"
)

// Time is a point in virtual time, expressed as the elapsed duration since
// the start of the simulation (t=0).
type Time = time.Duration

// event is a scheduled occurrence. The dominant kind — delivering the baton
// to a sleeping or woken process — is encoded as the process's index, so
// scheduling it allocates nothing; the general kind carries a callback.
// Events with equal time fire in schedule order (seq), which makes runs
// deterministic.
type event struct {
	at   Time
	seq  int64
	proc int32 // index into Engine.procs, or noProc for callback events
	fn   func()
}

// noProc marks an event that runs fn instead of delivering to a process.
const noProc = int32(-1)

// before reports whether a fires before b: earlier time first, schedule
// order breaking ties.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// ErrStranded is reported by Run when the event queue drains while one or
// more processes are still blocked on a signal or resource that can never
// be granted. Stranded processes are aborted so no goroutines leak.
var ErrStranded = errors.New("sim: processes stranded at end of run")

// ErrWatchdog is reported by Run when a watchdog limit set with SetWatchdog
// is exceeded: the run executed more events or advanced further in virtual
// time than the configured budget. It converts a livelocked simulation (for
// example a retry loop that never stops re-scheduling itself) into a
// descriptive error instead of an endless spin.
var ErrWatchdog = errors.New("sim: watchdog limit exceeded")

// Engine is a discrete-event simulation instance. Create one with NewEngine,
// spawn processes with Spawn, then call Run. Engines are not safe for use
// from multiple OS threads; all interaction must happen either before Run or
// from within simulated processes.
type Engine struct {
	now Time
	seq int64
	// pq holds the pending events by (at, seq): an adaptive queue that is
	// the inlined 4-ary min-heap for paper-sized runs and migrates to an
	// amortized-O(1) ladder queue past ~1k pending events (queue.go).
	pq       eventq
	evHint   int           // Prealloc events hint; sizes sharded queues too
	kernelCh chan struct{} // procs hand the baton back on this channel
	procs    []*Proc
	live     int // procs spawned and not yet finished
	blocked  int // procs blocked on signals/resources (not timed events)
	seed     uint64
	failure  error
	tracer   func(t Time, procName, msg string)
	rec      *trace.Recorder
	cp       *critpath.Recorder
	curProc  int32 // proc currently holding the baton, noProc in the kernel

	// Watchdog limits (0 = unlimited); see SetWatchdog.
	maxEvents int64
	maxTime   Time
	fired     int64 // events fired so far

	// Sampler hook (nil = off); see SetSampler.
	sampleEvery Time
	sampleNext  Time
	sampleFn    func(t Time)

	// Sharded parallel (PDES) mode; see shard.go. shardWorkers <= 1 keeps
	// the serial engine: the exact code path above this comment, untouched.
	shardWorkers int
	lookahead    Time
	assign       func(proc int32, name string) int
	shards       []shard
	shardOf      []int32 // proc index -> owning shard, resolved lazily
	sharded      bool    // sharded routing active (inside runSharded)
	windowEnd    Time    // current fire window end (-1 between windows)
	fireq        eventq  // current window's merge queue, kernel-owned
	ack          chan struct{}
}

// NewEngine returns an engine with its virtual clock at zero. The seed
// drives every per-process random stream; two engines with equal seeds and
// equal workloads produce identical event timelines.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		kernelCh: make(chan struct{}),
		seed:     seed,
		curProc:  noProc,
	}
}

// Prealloc reserves capacity for an expected workload: procs processes and
// events simultaneously pending events. Harnesses that know their ensemble
// size call it once per run so repetition sweeps never re-grow the process
// table or the event heap. Undersized (or unset) hints only cost the usual
// amortized growth; they never limit the run.
func (e *Engine) Prealloc(procs, events int) {
	if procs > cap(e.procs) {
		grown := make([]*Proc, len(e.procs), procs)
		copy(grown, e.procs)
		e.procs = grown
	}
	e.pq.grow(events)
	if events > e.evHint {
		e.evHint = events
	}
}

// Reset returns the engine to its initial state under a new seed, keeping
// every backing array — the event queue, the process table, and (when the
// engine ran sharded) the shard structures — so harnesses can reuse one
// engine across repetitions instead of reallocating the rig per rep
// (core's pooled RunMany; DESIGN.md §3h). A reset engine is observationally
// identical to NewEngine(seed): every run-visible field is cleared, and
// per-process random streams derive only from the seed and the spawn order.
// The shard worker count is structural and survives the reset (it cannot
// change once shard structures exist); call between Runs only.
func (e *Engine) Reset(seed uint64) {
	if e.live > 0 {
		panic("sim: Reset while processes are live")
	}
	e.now = 0
	e.seq = 0
	e.fired = 0
	for i := range e.procs {
		e.procs[i] = nil
	}
	e.procs = e.procs[:0]
	e.blocked = 0
	e.seed = seed
	e.failure = nil
	e.tracer = nil
	e.rec = nil
	e.cp = nil
	e.curProc = noProc
	e.maxEvents, e.maxTime = 0, 0
	e.sampleEvery, e.sampleNext, e.sampleFn = 0, 0, nil
	e.pq.reset()
	e.fireq.reset()
	for i := range e.shards {
		e.shards[i].pq.reset()
	}
	e.lookahead = 0
	e.assign = nil
	e.shardOf = e.shardOf[:0]
	e.windowEnd = 0
	e.sharded = false
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() uint64 { return e.seed }

// SetTracer installs a callback invoked by Proc.Tracef. A nil tracer (the
// default) makes tracing free.
func (e *Engine) SetTracer(fn func(t Time, procName, msg string)) { e.tracer = fn }

// SetRecorder installs a span recorder: modeled operations emit virtual-time
// spans through it (see Proc.Rec and package trace). A nil recorder (the
// default) disables span tracing at zero cost — emission sites pay one nil
// check and never allocate.
func (e *Engine) SetRecorder(r *trace.Recorder) { e.rec = r }

// Recorder returns the installed span recorder, or nil when span tracing
// is off.
func (e *Engine) Recorder() *trace.Recorder { return e.rec }

// SetWatchdog arms run limits: Run aborts with an error wrapping ErrWatchdog
// once it has fired more than maxEvents events or virtual time passes
// maxTime. Zero disables the respective limit (the default). The watchdog is
// the backstop that keeps a livelocked workload — a recovery policy retrying
// forever, processes ping-ponging wakes at one instant — from hanging a
// batch; aborted runs unwind cleanly like any other failed run.
func (e *Engine) SetWatchdog(maxEvents int64, maxTime Time) {
	if maxEvents < 0 || maxTime < 0 {
		panic("sim: negative watchdog limit")
	}
	e.maxEvents = maxEvents
	e.maxTime = maxTime
}

// Events returns the number of events fired so far.
func (e *Engine) Events() int64 { return e.fired }

// SetSampler installs a fixed-interval virtual-time sampler: before each
// event fires, fn runs once for every elapsed boundary t = every, 2*every,
// ... up to and including the event's time, with Now() set to the boundary.
// The hook is not an event — it keeps nothing alive in the queue, does not
// count toward the watchdog's event budget, and stops with the last real
// event, so installing a sampler cannot change the event timeline. fn must
// only observe state (no scheduling, no RNG draws). A nil fn (the default)
// disables sampling; the run loop then pays one nil check per event.
//
// Two boundary rules keep sampled series well-formed:
//
//   - The first boundary is the first multiple of every strictly after the
//     current clock. Re-arming a sampler mid-run therefore never replays
//     past boundaries (which would run fn with the clock parked before
//     Now()) and never double-samples a boundary the previous sampler
//     already took when the run horizon landed exactly on it.
//   - Boundaries fire only for events that actually execute. An event that
//     trips the watchdog aborts the run before any of the boundaries it
//     would have carried the timeline across, so an ErrWatchdog unwind
//     takes no samples past the last healthy event.
func (e *Engine) SetSampler(every Time, fn func(t Time)) {
	if fn != nil && every <= 0 {
		panic("sim: nonpositive sample interval")
	}
	e.sampleEvery = every
	e.sampleFn = fn
	e.sampleNext = 0
	if fn != nil {
		e.sampleNext = (e.now/every + 1) * every
	}
}

// heapPush inserts ev into the inlined 4-ary min-heap pq (ordered by
// (at, seq)) and returns the updated slice. The heap is the small-N mode of
// eventq (queue.go), which serves the serial queue, the per-shard queues,
// and the window merge queue alike, so the ordering contract cannot drift
// between serial and sharded execution.
func heapPush(pq []event, ev event) []event {
	pq = append(pq, ev)
	i := len(pq) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !pq[i].before(&pq[parent]) {
			break
		}
		pq[i], pq[parent] = pq[parent], pq[i]
		i = parent
	}
	return pq
}

// heapPop removes and returns the earliest event of pq.
func heapPop(pq []event) (event, []event) {
	top := pq[0]
	n := len(pq) - 1
	last := pq[n]
	pq[n] = event{} // clear the vacated slot so callbacks are not pinned
	pq = pq[:n]
	if n == 0 {
		return top, pq
	}
	// Sift last down from the root.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		min := c
		for j := c + 1; j < end; j++ {
			if pq[j].before(&pq[min]) {
				min = j
			}
		}
		if !pq[min].before(&last) {
			break
		}
		pq[i] = pq[min]
		i = min
	}
	pq[i] = last
	return top, pq
}

// push inserts ev into the pending-event structure: the serial queue, or —
// while a sharded run is active — the owning shard's inbox / the current
// window's merge queue (see route in shard.go).
func (e *Engine) push(ev event) {
	if e.sharded {
		e.route(ev)
		return
	}
	e.pq.push(ev)
}

// pop removes and returns the earliest event of the serial queue.
func (e *Engine) pop() event {
	return e.pq.pop()
}

// schedule enqueues fn to run at absolute virtual time at. Scheduling in
// the past is a programming error.
func (e *Engine) schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	e.push(event{at: at, seq: e.seq, proc: noProc, fn: fn})
}

// scheduleDeliver enqueues baton delivery to the process at index idx —
// the steady-state event kind behind Sleep, Wake, and Spawn. Unlike
// schedule it captures no closure, so it allocates nothing.
func (e *Engine) scheduleDeliver(at Time, idx int32) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	e.push(event{at: at, seq: e.seq, proc: idx})
}

// fire executes one popped event.
func (e *Engine) fire(ev *event) {
	if ev.proc >= 0 {
		e.deliver(e.procs[ev.proc])
		return
	}
	ev.fn()
}

// After schedules fn to run d from now. It may be called before Run or from
// within a process.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.schedule(e.now+d, fn)
}

// Run executes events until the queue is empty or a process panics.
// It returns the first process failure, or ErrStranded if processes remain
// blocked with no pending events (a lost-signal deadlock). All stranded
// processes are aborted before Run returns, so no goroutines leak.
//
// With SetShardWorkers(n > 1) the run executes on the sharded parallel
// engine (see shard.go); the virtual timeline, every measurement, and every
// observation stream are byte-identical to the serial engine's.
func (e *Engine) Run() error {
	if e.shardWorkers > 1 {
		e.runSharded()
	} else {
		e.runSerial()
	}
	return e.finish()
}

// runSerial is the classic engine loop: pop and execute events in (at, seq)
// order from the single queue.
func (e *Engine) runSerial() {
	for e.pq.len() > 0 {
		ev := e.pop()
		if !e.step(&ev) {
			break
		}
	}
}

// step advances the run by one popped event: it checks the watchdog, fires
// the sampler for every boundary the event carries the timeline across, and
// executes the event. It returns false when the run must stop (watchdog
// trip or process failure). Both the serial loop and the sharded window
// loop drive the run exclusively through step, so the two modes cannot
// diverge in sampling, watchdog, or failure semantics.
func (e *Engine) step(ev *event) bool {
	// The watchdog is checked before the sampler so an aborting run takes
	// no samples for boundaries its final, never-executed event would have
	// crossed (see SetSampler).
	if (e.maxEvents > 0 && e.fired+1 > e.maxEvents) || (e.maxTime > 0 && ev.at > e.maxTime) {
		e.now = ev.at
		e.fired++
		e.failure = fmt.Errorf("%w: %d events fired, virtual time %v (limits: %d events, %v)",
			ErrWatchdog, e.fired, e.now, e.maxEvents, e.maxTime)
		return false
	}
	if e.sampleFn != nil {
		// Fire every sample boundary the timeline is about to cross,
		// with the clock parked on the boundary so time-integrated
		// probes (Resource.BusyUnitNanos) integrate exactly to it.
		// Boundaries at the event's own instant sample before it fires.
		for e.sampleNext <= ev.at {
			e.now = e.sampleNext
			e.sampleFn(e.sampleNext)
			e.sampleNext += e.sampleEvery
		}
	}
	e.now = ev.at
	e.fired++
	e.fire(ev)
	return e.failure == nil
}

// finish unwinds the run: stranded and orphaned processes are aborted,
// cleanup events are drained, and the first failure (or strandedness) is
// reported. Sharded runs collapse back to the serial heap before finish, so
// there is exactly one unwinding path.
func (e *Engine) finish() error {
	var stranded []string
	for _, p := range e.procs {
		switch {
		case p.done:
		case p.waiting:
			stranded = append(stranded, p.name)
			p.abort()
		case e.failure != nil:
			// An aborted run (process failure or watchdog) can strand
			// processes that are merely sleeping — their delivery events
			// die with the queue. Unwind them too so no goroutines leak.
			p.abort()
		}
	}
	// Drain any events scheduled by aborting procs (there should be none,
	// but be safe against user cleanup code). Like the main loop, stop at
	// the first failure: a panic during cleanup must not keep executing
	// subsequent events against now-inconsistent state.
	for e.pq.len() > 0 && e.failure == nil {
		ev := e.pop()
		e.now = ev.at
		e.fire(&ev)
	}
	// Keep the backing arrays for engines that run again; clear residual
	// events (present only after a failure) so their callbacks are freed.
	e.pq.reset()
	if e.failure != nil {
		return e.failure
	}
	if len(stranded) > 0 {
		return fmt.Errorf("%w: %v", ErrStranded, stranded)
	}
	return nil
}
