// Package trajectory implements the multi-frame trajectory container MD
// workflows write to disk — the "sequence of molecular conformations
// written to disk" of §II-A — on top of the byte-range filesystem API, so
// it works against any simulated backend (XFS, Lustre). It supports
// incremental appends during a run and indexed random access afterwards,
// which is what the traditional post-processing analysis path needs.
//
// Wire format: a fixed header (magic, version, model name, atom count)
// followed by length-prefixed encoded frames.
package trajectory

import (
	"encoding/binary"
	"fmt"

	"repro/internal/frame"
	"repro/internal/sim"
	"repro/internal/vfs"
)

const (
	magic      = 0x4d445452 // "MDTR"
	version    = 1
	lenPrefix  = 8
	headerBase = 4 + 4 + 4 + 8 // magic, version, name length, atom count
)

// Writer appends frames to a trajectory file.
type Writer struct {
	h      vfs.Handle
	model  string
	atoms  int
	frames int
}

// Create starts a new trajectory at path on fs.
func Create(p *sim.Proc, fs vfs.HandleFS, path, model string, atoms int) (*Writer, error) {
	h, err := fs.CreateFile(p, path)
	if err != nil {
		return nil, fmt.Errorf("trajectory: create: %w", err)
	}
	hdr := make([]byte, headerBase+len(model))
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(model)))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(atoms))
	copy(hdr[headerBase:], model)
	if err := h.Append(p, hdr); err != nil {
		return nil, fmt.Errorf("trajectory: header: %w", err)
	}
	return &Writer{h: h, model: model, atoms: atoms}, nil
}

// AppendFrame adds one frame; its model and atom count must match the
// trajectory header.
func (w *Writer) AppendFrame(p *sim.Proc, f *frame.Frame) error {
	if f.Model != w.model || f.Atoms() != w.atoms {
		return fmt.Errorf("trajectory: frame %s/%d atoms does not match header %s/%d",
			f.Model, f.Atoms(), w.model, w.atoms)
	}
	enc := f.Encode()
	rec := make([]byte, lenPrefix+len(enc))
	binary.LittleEndian.PutUint64(rec, uint64(len(enc)))
	copy(rec[lenPrefix:], enc)
	if err := w.h.Append(p, rec); err != nil {
		return fmt.Errorf("trajectory: append frame: %w", err)
	}
	w.frames++
	return nil
}

// Frames returns the number of appended frames.
func (w *Writer) Frames() int { return w.frames }

// Close finishes the trajectory.
func (w *Writer) Close(p *sim.Proc) error { return w.h.Close(p) }

// Reader provides indexed access to a finished trajectory.
type Reader struct {
	h     vfs.Handle
	Model string
	Atoms int
	// offsets[i] is the byte offset of frame i's payload; sizes[i] its length.
	offsets []int64
	sizes   []int64
}

// Open reads the header and builds the frame index by scanning only the
// length prefixes (cheap range reads, not the payloads).
func Open(p *sim.Proc, fs vfs.HandleFS, path string) (*Reader, error) {
	h, err := fs.Open(p, path)
	if err != nil {
		return nil, fmt.Errorf("trajectory: open: %w", err)
	}
	hdr, err := h.ReadAt(p, 0, headerBase)
	if err != nil {
		return nil, fmt.Errorf("trajectory: header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr) != magic {
		return nil, fmt.Errorf("trajectory: %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return nil, fmt.Errorf("trajectory: %s: unsupported version %d", path, v)
	}
	nameLen := int64(binary.LittleEndian.Uint32(hdr[8:]))
	atoms := int(binary.LittleEndian.Uint64(hdr[12:]))
	name, err := h.ReadAt(p, headerBase, nameLen)
	if err != nil {
		return nil, fmt.Errorf("trajectory: model name: %w", err)
	}
	r := &Reader{h: h, Model: string(name), Atoms: atoms}
	off := int64(headerBase) + nameLen
	size := h.Size()
	for off < size {
		lp, err := h.ReadAt(p, off, lenPrefix)
		if err != nil {
			return nil, fmt.Errorf("trajectory: index scan at %d: %w", off, err)
		}
		n := int64(binary.LittleEndian.Uint64(lp))
		if n <= 0 || off+lenPrefix+n > size {
			return nil, fmt.Errorf("trajectory: corrupt record at %d (len %d, file %d)", off, n, size)
		}
		r.offsets = append(r.offsets, off+lenPrefix)
		r.sizes = append(r.sizes, n)
		off += lenPrefix + n
	}
	return r, nil
}

// Len returns the number of frames.
func (r *Reader) Len() int { return len(r.offsets) }

// Frame reads and decodes frame i.
func (r *Reader) Frame(p *sim.Proc, i int) (*frame.Frame, error) {
	if i < 0 || i >= len(r.offsets) {
		return nil, fmt.Errorf("trajectory: frame %d out of range [0,%d)", i, len(r.offsets))
	}
	buf, err := r.h.ReadAt(p, r.offsets[i], r.sizes[i])
	if err != nil {
		return nil, fmt.Errorf("trajectory: frame %d: %w", i, err)
	}
	f, err := frame.Decode(buf)
	if err != nil {
		return nil, fmt.Errorf("trajectory: frame %d: %w", i, err)
	}
	return f, nil
}

// Close releases the reader.
func (r *Reader) Close(p *sim.Proc) error { return r.h.Close(p) }
