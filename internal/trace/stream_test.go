package trace

import (
	"bytes"
	"io"
	"runtime"
	"testing"
	"time"
)

// synthSpans builds a deterministic span stream exercising every serializer
// branch: whole and fractional timestamps, zero-duration instants, bytes,
// attributes, classes, and multiple procs.
func synthSpans(n int) []Span {
	procs := []string{"producer000", "consumer000", "broker"}
	spans := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		s := Span{
			Proc:      procs[i%len(procs)],
			Component: "ssd",
			Name:      "write",
			Class:     Class(i % 5),
			Start:     time.Duration(i) * 123456 * time.Nanosecond,
			Dur:       time.Duration(i%7) * 1500 * time.Nanosecond,
		}
		if i%3 == 0 {
			s.Bytes = int64(i) * 4096
		}
		if i%5 == 0 {
			s.Attr = "node0/ssd"
		}
		spans = append(spans, s)
	}
	return spans
}

// Driving a ChromeStream span by span must produce byte-for-byte the
// document WriteChrome renders from the buffered runs — the identity that
// makes streamed traces drop-in replacements for buffered ones.
func TestChromeStreamMatchesWriteChrome(t *testing.T) {
	runs := []Run{
		{Label: "run one", Spans: synthSpans(100)},
		{Label: "run two", Spans: synthSpans(37), Counters: []Counter{{
			Name:   "core/frames_produced",
			Times:  []time.Duration{250 * time.Millisecond, 500 * time.Millisecond},
			Values: []float64{0, 4.5},
		}}},
		{Label: "empty run"},
	}
	var want bytes.Buffer
	if err := WriteChrome(&want, runs); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	cs := NewChromeStream(&got)
	for _, run := range runs {
		rec := cs.StartRun(run.Label)
		for _, s := range run.Spans {
			rec.Emit(s)
		}
		cs.EndRun(rec, run.Counters)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("streamed document diverged from WriteChrome:\n got %d bytes\nwant %d bytes", got.Len(), want.Len())
	}
}

// A streaming recorder's incremental statistics must equal the buffered
// aggregation of the same span stream.
func TestStreamingStatsMatchAggregate(t *testing.T) {
	spans := synthSpans(500)
	cs := NewChromeStream(io.Discard)
	rec := cs.StartRun("stats")
	for _, s := range spans {
		rec.Emit(s)
	}
	if !rec.Streaming() {
		t.Fatal("recorder not in streaming mode")
	}
	if rec.Len() != 0 {
		t.Fatalf("streaming recorder retained %d spans", rec.Len())
	}
	got, want := rec.Stats(), Aggregate(spans)
	if len(got) != len(want) {
		t.Fatalf("stats length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("stats[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// The bounded-memory contract: a million-span run through a streaming
// recorder must not grow the heap with the span count — spans serialize and
// die. A buffered recorder would retain ~96 MB of spans for the same run;
// the streaming recorder's live state is the tid map and the per-operation
// aggregates.
func TestStreamingRecorderBoundedMemory(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews heap accounting")
	}
	cs := NewChromeStream(io.Discard)
	rec := cs.StartRun("big")

	emit := func(n int) {
		for i := 0; i < n; i++ {
			rec.Emit(Span{
				Proc: "p", Component: "ssd", Name: "write",
				Start: time.Duration(i) * time.Microsecond, Dur: 1500 * time.Nanosecond,
				Bytes: 4096,
			})
		}
	}
	emit(10_000) // warm the stream buffer, tid map, and aggregator

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	emit(1_000_000)
	runtime.GC()
	runtime.ReadMemStats(&after)

	if rec.Len() != 0 {
		t.Fatalf("streaming recorder retained %d spans", rec.Len())
	}
	// One million retained spans would be ~96 MB; allow a generous 4 MB of
	// incidental churn.
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > 4<<20 {
		t.Errorf("heap grew %d bytes across 1M streamed spans, want bounded", growth)
	}
	st := rec.Stats()
	if len(st) != 1 || st[0].Count != 1_010_000 {
		t.Errorf("stats = %+v, want one op with 1010000 spans", st)
	}
}
