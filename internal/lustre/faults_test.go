package lustre

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// An OST outage shorter than the retry budget: the client's RPCs time out,
// resend under backoff, and succeed when the OSS returns — no failover.
func TestOSTOutageRecoversViaResend(t *testing.T) {
	e := sim.NewEngine(1)
	cl, fs := testRig(e, 1, 2)
	fs.FailOST(0, 300*time.Millisecond)
	payload := vfs.BytesPayload(bytes.Repeat([]byte("a"), 1<<20))
	var took time.Duration
	e.Spawn("w", func(p *sim.Proc) {
		t0 := p.Now()
		if err := fs.Client(cl.Node(0)).WriteFile(p, "/f0", payload); err != nil {
			t.Errorf("write: %v", err)
		}
		took = p.Now() - t0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec := fs.Recovery
	if rec.Timeouts < 1 || rec.Retries < 1 {
		t.Fatalf("recovery %+v: want timeouts and retries", rec)
	}
	if rec.Failovers != 0 {
		t.Fatalf("short outage must not fail over: %+v", rec)
	}
	if took < 300*time.Millisecond {
		t.Fatalf("write took %v, did not wait out the outage", took)
	}
	if got, ok := fs.Tree().Get("/f0"); !ok || got.Size() != payload.Size() {
		t.Fatal("file not written after recovery")
	}
}

// An outage longer than the whole retry budget forces failover: the client
// pays FailoverDelay once and the standby serves every later RPC at normal
// cost.
func TestOSTOutageFailsOverOnce(t *testing.T) {
	e := sim.NewEngine(1)
	cl, fs := testRig(e, 1, 1)
	fs.FailOST(0, time.Hour)
	payload := vfs.BytesPayload(bytes.Repeat([]byte("b"), 1<<18))
	var first, second time.Duration
	e.Spawn("w", func(p *sim.Proc) {
		c := fs.Client(cl.Node(0))
		t0 := p.Now()
		if err := c.WriteFile(p, "/f0", payload); err != nil {
			t.Errorf("first write: %v", err)
		}
		first = p.Now() - t0
		t1 := p.Now()
		if err := c.WriteFile(p, "/f1", payload); err != nil {
			t.Errorf("second write: %v", err)
		}
		second = p.Now() - t1
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec := fs.Recovery
	if rec.Failovers != 1 {
		t.Fatalf("Failovers = %d, want exactly 1", rec.Failovers)
	}
	p := fs.Params()
	budget := time.Duration(p.Retry.Max+1)*p.RPCTimeout + p.FailoverDelay
	if first < budget {
		t.Fatalf("first write took %v, below the retry+failover budget %v", first, budget)
	}
	// The standby serves the second write with no recovery cost at all.
	if second > first/4 {
		t.Fatalf("post-failover write took %v (first: %v): standby not at normal cost", second, first)
	}
}

// An MDS outage recovers the same way; metadata ops resume afterwards.
func TestMDSOutageRecovers(t *testing.T) {
	e := sim.NewEngine(1)
	cl, fs := testRig(e, 1, 1)
	fs.FailMDS(250 * time.Millisecond)
	var took time.Duration
	e.Spawn("w", func(p *sim.Proc) {
		t0 := p.Now()
		if err := fs.Client(cl.Node(0)).WriteFile(p, "/f0", vfs.SizeOnly(4096)); err != nil {
			t.Errorf("write: %v", err)
		}
		took = p.Now() - t0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.Recovery.Timeouts < 1 {
		t.Fatalf("recovery %+v: MDS outage invisible", fs.Recovery)
	}
	if took < 250*time.Millisecond {
		t.Fatalf("write took %v, did not wait out the MDS outage", took)
	}
}

// Reads during an OST outage stall and recover like writes.
func TestReadDuringOSTOutage(t *testing.T) {
	e := sim.NewEngine(1)
	cl, fs := testRig(e, 2, 1)
	payload := vfs.BytesPayload(bytes.Repeat([]byte("c"), 1<<20))
	e.Spawn("w", func(p *sim.Proc) {
		if err := fs.Client(cl.Node(0)).WriteFile(p, "/f0", payload); err != nil {
			t.Errorf("write: %v", err)
		}
		fs.FailOST(0, 300*time.Millisecond)
	})
	var got vfs.Payload
	e.Spawn("r", func(p *sim.Proc) {
		p.Sleep(50 * time.Millisecond) // inside the outage window
		var err error
		got, err = fs.Client(cl.Node(1)).ReadFile(p, "/f0")
		if err != nil {
			t.Errorf("read: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), payload.Bytes()) {
		t.Fatal("payload mismatch after outage recovery")
	}
	if fs.Recovery.Timeouts < 1 {
		t.Fatalf("recovery %+v: read outage invisible", fs.Recovery)
	}
}

// Overlapping outages extend the window instead of shrinking it, and
// FailOST wraps its index so the fault injector can target any OST count.
func TestFailOSTExtendsAndWraps(t *testing.T) {
	e := sim.NewEngine(1)
	_, fs := testRig(e, 1, 2)
	fs.FailOST(0, 50*time.Millisecond)
	fs.FailOST(0, 20*time.Millisecond)
	if fs.osts[0].downUntil != 50*time.Millisecond {
		t.Fatalf("downUntil = %v, want 50ms", fs.osts[0].downUntil)
	}
	fs.FailOST(2, 80*time.Millisecond) // index 2 wraps onto OST 0
	if fs.osts[0].downUntil != 80*time.Millisecond {
		t.Fatalf("wrapped FailOST: downUntil = %v, want 80ms", fs.osts[0].downUntil)
	}
	if fs.osts[1].downUntil != 0 {
		t.Fatal("outage leaked onto OST 1")
	}
}

// Healthy runs must record zero recovery activity.
func TestHealthyLustreRecordsNoRecovery(t *testing.T) {
	e := sim.NewEngine(1)
	cl, fs := testRig(e, 1, 2)
	e.Spawn("w", func(p *sim.Proc) {
		c := fs.Client(cl.Node(0))
		c.WriteFile(p, "/f0", vfs.SizeOnly(1<<20))
		c.ReadFile(p, "/f0")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fs.Recovery.Zero() {
		t.Fatalf("healthy run recorded recovery: %+v", fs.Recovery)
	}
}
