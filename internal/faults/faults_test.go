package faults

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"
)

func sweepSpec() Spec {
	return Spec{
		Horizon:       10 * time.Second,
		DeviceStalls:  2,
		DeviceFails:   1,
		LinkDegrades:  2,
		LinkOutages:   1,
		BrokerCrashes: 1,
		OSTOutages:    2,
		MDSOutages:    0.5,
	}
}

func TestGenerateIsPureFunctionOfSeed(t *testing.T) {
	spec := sweepSpec()
	a := spec.Generate(42, 8, 4)
	b := spec.Generate(42, 8, 4)
	if fmt.Sprint(a.Events) != fmt.Sprint(b.Events) {
		t.Fatal("same (spec, seed, population) produced different plans")
	}
	c := spec.Generate(43, 8, 4)
	if fmt.Sprint(a.Events) == fmt.Sprint(c.Events) {
		t.Fatal("different seeds produced identical plans (seed unused?)")
	}
}

func TestGeneratePlanShape(t *testing.T) {
	spec := sweepSpec()
	nodes, osts := 6, 3
	plan := spec.Generate(7, nodes, osts)
	if plan.Empty() {
		t.Fatal("a spec with ~9.5 mean events generated nothing")
	}
	if !sort.SliceIsSorted(plan.Events, func(i, j int) bool {
		return plan.Events[i].At < plan.Events[j].At
	}) {
		t.Fatal("plan not sorted by At")
	}
	for _, ev := range plan.Events {
		if ev.At < 0 || ev.At > spec.Horizon {
			t.Errorf("%v outside horizon %v", ev, spec.Horizon)
		}
		if ev.For < time.Millisecond {
			t.Errorf("%v duration below the 1ms clamp", ev)
		}
		targets := nodes
		switch ev.Kind {
		case OSTOutage:
			targets = osts
		case MDSOutage:
			targets = 1
		}
		if ev.Target < 0 || ev.Target >= targets {
			t.Errorf("%v target outside [0,%d)", ev, targets)
		}
	}
}

func TestGenerateMeanEventCount(t *testing.T) {
	// Poisson draws with mean 4 over many seeds must average near 4.
	spec := Spec{Horizon: time.Second, LinkOutages: 4}
	total := 0
	const seeds = 400
	for s := 0; s < seeds; s++ {
		total += len(spec.Generate(uint64(s), 4, 1).Events)
	}
	mean := float64(total) / seeds
	if mean < 3.5 || mean > 4.5 {
		t.Fatalf("mean event count %.2f over %d seeds, want ~4", mean, seeds)
	}
}

func TestGenerateKeepsExplicitEvents(t *testing.T) {
	want := Event{At: time.Second, Kind: BrokerCrash, Target: 2, For: 5 * time.Second}
	spec := Spec{Events: []Event{want}}
	if !spec.Enabled() {
		t.Fatal("spec with explicit events reports disabled")
	}
	plan := spec.Generate(1, 4, 1)
	if len(plan.Events) != 1 || plan.Events[0] != want {
		t.Fatalf("plan %v, want exactly %v", plan.Events, want)
	}
}

func TestZeroSpecInert(t *testing.T) {
	var spec Spec
	if spec.Enabled() {
		t.Fatal("zero spec reports enabled")
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("zero spec invalid: %v", err)
	}
	if plan := spec.Generate(1, 4, 2); !plan.Empty() {
		t.Fatalf("zero spec generated %v", plan.Events)
	}
}

func TestScaleMultipliesEveryRate(t *testing.T) {
	s := sweepSpec().Scale(2)
	if s.DeviceStalls != 4 || s.DeviceFails != 2 || s.LinkDegrades != 4 ||
		s.LinkOutages != 2 || s.BrokerCrashes != 2 || s.OSTOutages != 4 || s.MDSOutages != 1 {
		t.Fatalf("Scale(2) = %+v", s)
	}
	if z := sweepSpec().Scale(0); z.Enabled() {
		t.Fatal("Scale(0) still enabled")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []Spec{
		{DeviceStalls: -1},
		{Horizon: -time.Second},
		{MeanOutage: -time.Second},
		{StallFactor: 0.5},
		{Events: []Event{{At: -time.Second}}},
		{Events: []Event{{Target: -1}}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d (%+v) accepted", i, s)
		}
	}
	if err := sweepSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestBackoffDelayCapsAndClamps(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Max: 5}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond,
	}
	for k, w := range want {
		if got := b.Delay(k); got != w {
			t.Errorf("Delay(%d) = %v, want %v", k, got, w)
		}
	}
	if got := b.Delay(-3); got != 10*time.Millisecond {
		t.Errorf("Delay(-3) = %v, want base", got)
	}
	// Huge attempts must not overflow the shift; the cap bounds the result.
	if got := b.Delay(500); got != 80*time.Millisecond {
		t.Errorf("Delay(500) = %v, want cap", got)
	}
	// With no cap the delay still saturates instead of going negative.
	if got := (Backoff{Base: time.Millisecond}).Delay(500); got <= 0 {
		t.Errorf("uncapped Delay(500) = %v, overflowed", got)
	}
}

func TestMetricsAddAndZero(t *testing.T) {
	var m Metrics
	if !m.Zero() {
		t.Fatal("fresh metrics not zero")
	}
	m.Add(Metrics{Injected: 1, Timeouts: 2, Retries: 3, Failovers: 4,
		BrokerRestarts: 5, LinkStalls: 6, DegradedReads: 7, DegradedBytes: 8,
		RecoveryTime: 9 * time.Second})
	m.Add(Metrics{Injected: 1, RecoveryTime: time.Second})
	if m.Injected != 2 || m.Timeouts != 2 || m.RecoveryTime != 10*time.Second {
		t.Fatalf("accumulated %+v", m)
	}
	if m.Zero() {
		t.Fatal("non-empty metrics report zero")
	}
}

func TestSentinelsAreDistinct(t *testing.T) {
	sentinels := []error{ErrTimeout, ErrDeviceFailed, ErrLinkDown, ErrBrokerDown, ErrExhausted}
	for i, a := range sentinels {
		wrapped := fmt.Errorf("ctx: %w", a)
		if !errors.Is(wrapped, a) {
			t.Errorf("sentinel %d not Is-able through wrapping", i)
		}
		for j, b := range sentinels {
			if i != j && errors.Is(a, b) {
				t.Errorf("sentinels %d and %d alias", i, j)
			}
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := DeviceStall; k <= MDSOutage; k++ {
		if s := k.String(); s == "" || s == fmt.Sprintf("Kind(%d)", int(k)) {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}
