// Package md is a small but genuine molecular dynamics engine: a
// Lennard-Jones fluid integrated with velocity Verlet under periodic
// boundary conditions, with cell-list neighbor search and a Berendsen
// thermostat. The examples use it to drive the producer side of the
// workflow with real frames (the measured experiments, like the paper's,
// emulate MD compute with fixed-duration sleeps instead).
//
// Units are reduced LJ units (sigma = epsilon = mass = 1).
package md

import (
	"fmt"
	"math"

	"repro/internal/frame"
)

// Params configures the potential and neighbor search.
type Params struct {
	// Epsilon and Sigma are the LJ well depth and diameter.
	Epsilon, Sigma float64
	// Cutoff is the interaction cutoff radius.
	Cutoff float64
	// Dt is the integration timestep.
	Dt float64
}

// DefaultParams returns standard reduced-unit LJ settings.
func DefaultParams() Params {
	return Params{Epsilon: 1, Sigma: 1, Cutoff: 2.5, Dt: 0.005}
}

// System is one simulation instance.
type System struct {
	N      int
	Box    float64 // cubic box edge
	Pos    []float64
	Vel    []float64
	Force  []float64
	params Params

	step int64

	// virial accumulates sum(r_ij . f_ij) over the last force evaluation,
	// for the pressure calculation.
	virial float64

	// cell list scratch
	cells     [][]int32
	cellsDim  int
	neighbors [][3]int

	rng uint64
}

// NewLattice builds a system of n particles on a cubic lattice at the
// given number density, with Maxwell-Boltzmann velocities at temperature
// temp. n is rounded up to the next perfect cube.
func NewLattice(n int, density, temp float64, seed uint64) *System {
	if n < 1 || density <= 0 {
		panic(fmt.Sprintf("md: bad lattice n=%d density=%v", n, density))
	}
	side := int(math.Ceil(math.Cbrt(float64(n))))
	n = side * side * side
	box := math.Cbrt(float64(n) / density)
	s := &System{
		N:      n,
		Box:    box,
		Pos:    make([]float64, 3*n),
		Vel:    make([]float64, 3*n),
		Force:  make([]float64, 3*n),
		params: DefaultParams(),
		rng:    seed | 1,
	}
	spacing := box / float64(side)
	i := 0
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			for z := 0; z < side; z++ {
				s.Pos[3*i] = (float64(x) + 0.5) * spacing
				s.Pos[3*i+1] = (float64(y) + 0.5) * spacing
				s.Pos[3*i+2] = (float64(z) + 0.5) * spacing
				i++
			}
		}
	}
	s.thermalize(temp)
	s.buildCells()
	s.computeForces()
	return s
}

// Params returns the active parameters.
func (s *System) Params() Params { return s.params }

// SetParams replaces the parameters (before running).
func (s *System) SetParams(p Params) {
	if p.Cutoff <= 0 || p.Dt <= 0 {
		panic("md: cutoff and dt must be positive")
	}
	s.params = p
}

// Step returns the number of completed integration steps.
func (s *System) StepCount() int64 { return s.step }

func (s *System) rand() float64 {
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return float64(s.rng%(1<<52)) / (1 << 52)
}

// thermalize draws Maxwell-Boltzmann velocities at temp and removes the
// center-of-mass drift.
func (s *System) thermalize(temp float64) {
	var cm [3]float64
	for i := 0; i < s.N; i++ {
		for d := 0; d < 3; d++ {
			// Box-Muller.
			u1 := s.rand()
			for u1 == 0 {
				u1 = s.rand()
			}
			u2 := s.rand()
			v := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2) * math.Sqrt(temp)
			s.Vel[3*i+d] = v
			cm[d] += v
		}
	}
	for i := 0; i < s.N; i++ {
		for d := 0; d < 3; d++ {
			s.Vel[3*i+d] -= cm[d] / float64(s.N)
		}
	}
}

// buildCells sizes the cell grid from the cutoff.
func (s *System) buildCells() {
	dim := int(s.Box / s.params.Cutoff)
	if dim < 1 {
		dim = 1
	}
	if dim != s.cellsDim {
		s.cellsDim = dim
		s.cells = make([][]int32, dim*dim*dim)
		s.neighbors = s.neighbors[:0]
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					s.neighbors = append(s.neighbors, [3]int{dx, dy, dz})
				}
			}
		}
	}
	for i := range s.cells {
		s.cells[i] = s.cells[i][:0]
	}
	for i := 0; i < s.N; i++ {
		s.cells[s.cellOf(i)] = append(s.cells[s.cellOf(i)], int32(i))
	}
}

func (s *System) cellOf(i int) int {
	d := s.cellsDim
	cw := s.Box / float64(d)
	cx := int(s.Pos[3*i] / cw)
	cy := int(s.Pos[3*i+1] / cw)
	cz := int(s.Pos[3*i+2] / cw)
	if cx >= d {
		cx = d - 1
	}
	if cy >= d {
		cy = d - 1
	}
	if cz >= d {
		cz = d - 1
	}
	return (cx*d+cy)*d + cz
}

// minImage applies the minimum-image convention to a displacement.
func (s *System) minImage(dx float64) float64 {
	if dx > s.Box/2 {
		dx -= s.Box
	} else if dx < -s.Box/2 {
		dx += s.Box
	}
	return dx
}

// computeForces fills Force and returns the potential energy.
func (s *System) computeForces() float64 {
	for i := range s.Force {
		s.Force[i] = 0
	}
	s.virial = 0
	eps, sig, rc := s.params.Epsilon, s.params.Sigma, s.params.Cutoff
	rc2 := rc * rc
	sig2 := sig * sig
	var pot float64
	d := s.cellsDim
	if d < 3 {
		// Too few cells for the 27-stencil to be distinct: wrapped offsets
		// would visit the same cell pair twice and double-count forces.
		// Fall back to all-pairs with minimum image.
		for i := 0; i < s.N; i++ {
			for j := i + 1; j < s.N; j++ {
				pot += s.pairForce(i, j, eps, sig2, rc2)
			}
		}
		return pot
	}
	for cx := 0; cx < d; cx++ {
		for cy := 0; cy < d; cy++ {
			for cz := 0; cz < d; cz++ {
				cell := s.cells[(cx*d+cy)*d+cz]
				for _, nb := range s.neighbors {
					nx, ny, nz := (cx+nb[0]+d)%d, (cy+nb[1]+d)%d, (cz+nb[2]+d)%d
					other := s.cells[(nx*d+ny)*d+nz]
					for _, ia := range cell {
						for _, ib := range other {
							if ib <= ia {
								continue
							}
							pot += s.pairForce(int(ia), int(ib), eps, sig2, rc2)
						}
					}
				}
			}
		}
	}
	return pot
}

// pairForce accumulates the LJ interaction of pair (i, j), returning its
// potential contribution.
func (s *System) pairForce(i, j int, eps, sig2, rc2 float64) float64 {
	dx := s.minImage(s.Pos[3*i] - s.Pos[3*j])
	dy := s.minImage(s.Pos[3*i+1] - s.Pos[3*j+1])
	dz := s.minImage(s.Pos[3*i+2] - s.Pos[3*j+2])
	r2 := dx*dx + dy*dy + dz*dz
	if r2 >= rc2 || r2 == 0 {
		return 0
	}
	sr2 := sig2 / r2
	sr6 := sr2 * sr2 * sr2
	sr12 := sr6 * sr6
	f := 24 * eps * (2*sr12 - sr6) / r2
	s.virial += f * r2 // r_ij . f_ij for the pressure virial
	s.Force[3*i] += f * dx
	s.Force[3*i+1] += f * dy
	s.Force[3*i+2] += f * dz
	s.Force[3*j] -= f * dx
	s.Force[3*j+1] -= f * dy
	s.Force[3*j+2] -= f * dz
	return 4 * eps * (sr12 - sr6)
}

// Step advances the system one velocity-Verlet step.
func (s *System) Step() {
	dt := s.params.Dt
	for i := 0; i < s.N; i++ {
		for d := 0; d < 3; d++ {
			s.Vel[3*i+d] += 0.5 * dt * s.Force[3*i+d]
			p := s.Pos[3*i+d] + dt*s.Vel[3*i+d]
			// Wrap into the box.
			p = math.Mod(p, s.Box)
			if p < 0 {
				p += s.Box
			}
			s.Pos[3*i+d] = p
		}
	}
	s.buildCells()
	s.computeForces()
	for i := range s.Vel {
		s.Vel[i] += 0.5 * dt * s.Force[i]
	}
	s.step++
}

// Run advances n steps.
func (s *System) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Berendsen rescales velocities toward temp with coupling tau (in steps).
func (s *System) Berendsen(temp float64, tau float64) {
	cur := s.Temperature()
	if cur <= 0 {
		return
	}
	lambda := math.Sqrt(1 + (temp/cur-1)/tau)
	for i := range s.Vel {
		s.Vel[i] *= lambda
	}
}

// KineticEnergy returns the total kinetic energy.
func (s *System) KineticEnergy() float64 {
	var ke float64
	for _, v := range s.Vel {
		ke += v * v
	}
	return ke / 2
}

// PotentialEnergy recomputes and returns the potential energy.
func (s *System) PotentialEnergy() float64 { return s.computeForces() }

// TotalEnergy returns kinetic + potential energy.
func (s *System) TotalEnergy() float64 { return s.KineticEnergy() + s.PotentialEnergy() }

// Temperature returns the instantaneous kinetic temperature.
func (s *System) Temperature() float64 {
	dof := float64(3*s.N - 3)
	return 2 * s.KineticEnergy() / dof
}

// Pressure returns the instantaneous virial pressure
// P = (N*k_B*T + W/3) / V with k_B = 1 in reduced units, using the virial
// W from the most recent force evaluation.
func (s *System) Pressure() float64 {
	volume := s.Box * s.Box * s.Box
	return (float64(s.N)*s.Temperature() + s.virial/3) / volume
}

// Momentum returns the total momentum vector.
func (s *System) Momentum() [3]float64 {
	var m [3]float64
	for i := 0; i < s.N; i++ {
		m[0] += s.Vel[3*i]
		m[1] += s.Vel[3*i+1]
		m[2] += s.Vel[3*i+2]
	}
	return m
}

// Frame exports the current positions as a serializable MD frame.
func (s *System) Frame(model string) *frame.Frame {
	f := &frame.Frame{
		Model: model,
		Step:  s.step,
		IDs:   make([]uint32, s.N),
		Pos:   append([]float64(nil), s.Pos...),
	}
	for i := range f.IDs {
		f.IDs[i] = uint32(i)
	}
	return f
}
