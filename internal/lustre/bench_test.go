package lustre

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// BenchmarkWrite1MiB measures simulator throughput of striped Lustre
// writes (host time per simulated 1 MiB file write).
func BenchmarkWrite1MiB(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine(1)
	cl, fs := testRig(e, 1, 4)
	c := fs.Client(cl.Node(0))
	payload := vfs.BytesPayload(make([]byte, 1<<20))
	e.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if err := c.WriteFile(p, fmt.Sprintf("/f%d", i), payload); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
