package repro

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

// Each benchmark regenerates one paper artifact end to end (reduced sweep:
// Quick options shrink frames/reps so a -bench run stays minutes-scale;
// cmd/experiments runs the full paper-faithful sweeps). The reported
// ns/op is the wall time to reproduce the artifact once.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	opts := experiments.Options{Quick: true, Reps: 2, Frames: 24}
	for i := 0; i < b.N; i++ {
		exp, err := experiments.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := exp.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		rep.Render(io.Discard)
	}
}

// BenchmarkTable1 regenerates Table I (molecular model characteristics).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates Table II (strides and frequencies).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig5 regenerates Figure 5 (single-node DYAD vs XFS, JAC).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6 (two-node DYAD vs Lustre, JAC).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7 (multi-node ensemble scaling).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8 (molecular model size scaling).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (Thicket call-tree analysis, DYAD).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10 (Thicket call-tree analysis, Lustre).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11 (frequency scaling, JAC).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12 (frequency scaling, STMV).
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkAblation regenerates the extension ablation study (per-DYAD-
// mechanism contribution).
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkWorkflowDYAD measures one raw DYAD workflow run (8 pairs, JAC)
// — the simulator's own throughput, useful when tuning the kernel.
func BenchmarkWorkflowDYAD(b *testing.B) {
	b.ReportAllocs()
	jac, err := ModelByName("JAC")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Backend: DYAD, Model: jac, Pairs: 8, Frames: 32, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkflowLustre measures one raw Lustre workflow run.
func BenchmarkWorkflowLustre(b *testing.B) {
	b.ReportAllocs()
	jac, err := ModelByName("JAC")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Backend: Lustre, Model: jac, Pairs: 8, Frames: 32, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkflowLargePairs measures a fleet-scale DYAD run: 1024
// producer-consumer pairs (2048 processes, 256 compute nodes), enough
// pending events to push the kernel's event queue past its ladder
// threshold. This is the end-to-end view of the queue-scaling work: the
// macro benchmark behind the micro-level BenchmarkScaleEvents ladder.
func BenchmarkWorkflowLargePairs(b *testing.B) {
	b.ReportAllocs()
	jac, err := ModelByName("JAC")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Backend: DYAD, Model: jac, Pairs: 1024, Frames: 2, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepeatPooled measures RunMany over 8 repetitions on one worker —
// the pooled-reuse hot path: after the first repetition, engine, cluster,
// and event-queue state recycle across reps instead of being rebuilt.
func BenchmarkRepeatPooled(b *testing.B) {
	b.ReportAllocs()
	jac, err := ModelByName("JAC")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Backend: DYAD, Model: jac, Pairs: 8, Frames: 16, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := RepeatWorkers(cfg, 8, 1); err != nil {
			b.Fatal(err)
		}
	}
}
