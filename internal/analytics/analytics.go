// Package analytics implements the in situ analysis kernels the paper's
// workflow feeds with MD frames: structural metrics (radius of gyration,
// RMSD), the gyration-tensor eigenvalue analysis used to track secondary
// structures (the Helix 1-2 / Helix 1-3 example of Figure 1), and a
// change detector that flags sudden conformational events at runtime.
package analytics

import (
	"fmt"
	"math"

	"repro/internal/frame"
)

// Centroid returns the mean position of the frame's atoms.
func Centroid(f *frame.Frame) [3]float64 {
	var c [3]float64
	n := f.Atoms()
	if n == 0 {
		return c
	}
	for i := 0; i < n; i++ {
		c[0] += f.Pos[3*i]
		c[1] += f.Pos[3*i+1]
		c[2] += f.Pos[3*i+2]
	}
	for d := range c {
		c[d] /= float64(n)
	}
	return c
}

// RadiusOfGyration returns the frame's radius of gyration.
func RadiusOfGyration(f *frame.Frame) float64 {
	n := f.Atoms()
	if n == 0 {
		return 0
	}
	c := Centroid(f)
	var sum float64
	for i := 0; i < n; i++ {
		dx := f.Pos[3*i] - c[0]
		dy := f.Pos[3*i+1] - c[1]
		dz := f.Pos[3*i+2] - c[2]
		sum += dx*dx + dy*dy + dz*dz
	}
	return math.Sqrt(sum / float64(n))
}

// RMSD returns the root-mean-square deviation between two frames with the
// same atom count (no superposition; frames share a reference frame).
func RMSD(a, b *frame.Frame) (float64, error) {
	if a.Atoms() != b.Atoms() {
		return 0, fmt.Errorf("analytics: RMSD over %d vs %d atoms", a.Atoms(), b.Atoms())
	}
	if a.Atoms() == 0 {
		return 0, nil
	}
	var sum float64
	for i := range a.Pos {
		d := a.Pos[i] - b.Pos[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(a.Atoms())), nil
}

// GyrationTensor computes the 3x3 gyration tensor of a subset of atoms
// (nil subset = all atoms).
func GyrationTensor(f *frame.Frame, subset []int) [3][3]float64 {
	idx := subset
	if idx == nil {
		idx = make([]int, f.Atoms())
		for i := range idx {
			idx[i] = i
		}
	}
	var t [3][3]float64
	if len(idx) == 0 {
		return t
	}
	var c [3]float64
	for _, i := range idx {
		c[0] += f.Pos[3*i]
		c[1] += f.Pos[3*i+1]
		c[2] += f.Pos[3*i+2]
	}
	for d := range c {
		c[d] /= float64(len(idx))
	}
	for _, i := range idx {
		r := [3]float64{f.Pos[3*i] - c[0], f.Pos[3*i+1] - c[1], f.Pos[3*i+2] - c[2]}
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				t[a][b] += r[a] * r[b]
			}
		}
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			t[a][b] /= float64(len(idx))
		}
	}
	return t
}

// Eigenvalues3 returns the eigenvalues of a symmetric 3x3 matrix in
// descending order (analytic solution via the characteristic polynomial).
func Eigenvalues3(m [3][3]float64) [3]float64 {
	p1 := m[0][1]*m[0][1] + m[0][2]*m[0][2] + m[1][2]*m[1][2]
	if p1 == 0 {
		// Diagonal.
		ev := [3]float64{m[0][0], m[1][1], m[2][2]}
		sortDesc(&ev)
		return ev
	}
	q := (m[0][0] + m[1][1] + m[2][2]) / 3
	p2 := (m[0][0]-q)*(m[0][0]-q) + (m[1][1]-q)*(m[1][1]-q) + (m[2][2]-q)*(m[2][2]-q) + 2*p1
	p := math.Sqrt(p2 / 6)
	var b [3][3]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			b[i][j] = m[i][j]
			if i == j {
				b[i][j] -= q
			}
			b[i][j] /= p
		}
	}
	r := det3(b) / 2
	if r < -1 {
		r = -1
	} else if r > 1 {
		r = 1
	}
	phi := math.Acos(r) / 3
	e1 := q + 2*p*math.Cos(phi)
	e3 := q + 2*p*math.Cos(phi+2*math.Pi/3)
	e2 := 3*q - e1 - e3
	ev := [3]float64{e1, e2, e3}
	sortDesc(&ev)
	return ev
}

func det3(m [3][3]float64) float64 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}

func sortDesc(ev *[3]float64) {
	if ev[0] < ev[1] {
		ev[0], ev[1] = ev[1], ev[0]
	}
	if ev[1] < ev[2] {
		ev[1], ev[2] = ev[2], ev[1]
	}
	if ev[0] < ev[1] {
		ev[0], ev[1] = ev[1], ev[0]
	}
}

// LargestEigenvalue returns the dominant eigenvalue of the gyration tensor
// of a subset — the quantity the paper's Figure 1 analytics track per
// helix over time.
func LargestEigenvalue(f *frame.Frame, subset []int) float64 {
	return Eigenvalues3(GyrationTensor(f, subset))[0]
}

// PowerIteration returns the dominant eigenvalue of a dense symmetric
// matrix, for pairwise-distance analyses over atom subsets.
func PowerIteration(m [][]float64, iters int, tol float64) float64 {
	n := len(m)
	if n == 0 {
		return 0
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
	}
	next := make([]float64, n)
	var lambda float64
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			var s float64
			row := m[i]
			for j := 0; j < n; j++ {
				s += row[j] * v[j]
			}
			next[i] = s
		}
		var norm float64
		for _, x := range next {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		for i := range next {
			next[i] /= norm
		}
		newLambda := norm
		v, next = next, v
		if math.Abs(newLambda-lambda) < tol*math.Abs(newLambda) {
			return newLambda
		}
		lambda = newLambda
	}
	return lambda
}

// DistanceMatrix builds the pairwise distance matrix of a subset of atoms.
func DistanceMatrix(f *frame.Frame, subset []int) [][]float64 {
	n := len(subset)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			i, j := subset[a], subset[b]
			dx := f.Pos[3*i] - f.Pos[3*j]
			dy := f.Pos[3*i+1] - f.Pos[3*j+1]
			dz := f.Pos[3*i+2] - f.Pos[3*j+2]
			d := math.Sqrt(dx*dx + dy*dy + dz*dz)
			m[a][b] = d
			m[b][a] = d
		}
	}
	return m
}

// ChangeDetector tracks a scalar time series online and flags points whose
// deviation from the running mean exceeds Threshold standard deviations —
// the "sudden changes in the molecular model" trigger of Figure 1.
type ChangeDetector struct {
	Threshold float64 // z-score threshold (e.g. 3)
	MinSample int     // observations before detection activates

	n          int
	mean, m2   float64
	lastZScore float64
}

// Observe feeds one value, reporting whether it is a sudden change.
func (c *ChangeDetector) Observe(x float64) bool {
	detected := false
	// The z-score is defined per observation: recompute it on every call so
	// ZScore never reports a stale value from an earlier check (it used to
	// survive warmup and zero-variance observations unchanged).
	c.lastZScore = 0
	if c.n >= c.MinSample && c.n > 1 {
		std := math.Sqrt(c.m2 / float64(c.n-1))
		switch {
		case std > 0:
			c.lastZScore = math.Abs(x-c.mean) / std
			detected = c.lastZScore > c.Threshold
		case x != c.mean:
			// Zero-variance history: any departure from the constant series
			// is infinitely many standard deviations away. Flag it.
			c.lastZScore = math.Inf(1)
			detected = true
		}
	}
	// Welford update.
	c.n++
	delta := x - c.mean
	c.mean += delta / float64(c.n)
	c.m2 += delta * (x - c.mean)
	return detected
}

// ZScore returns the z-score of the most recent observation's detection
// check: 0 during warmup (fewer than MinSample prior observations) and for
// a value matching a zero-variance history, +Inf for a value departing a
// zero-variance history.
func (c *ChangeDetector) ZScore() float64 { return c.lastZScore }

// Count returns the number of observations so far.
func (c *ChangeDetector) Count() int { return c.n }
