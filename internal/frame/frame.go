// Package frame defines the MD frame — the atom list and 3-D positions a
// simulation emits every stride — and its binary wire format. The encoded
// size is ~28 bytes per atom (a 32-bit atom id plus three float64
// coordinates), which reproduces the paper's Table I frame sizes
// (e.g. JAC: 23,558 atoms -> 644.21 KiB).
package frame

import (
	"encoding/binary"
	"fmt"
	"math"
)

// magic identifies the frame wire format.
const magic = 0x4d444652 // "MDFR"

// headerFixed is the fixed part of the header: magic, version, step,
// atom count, model-name length.
const headerFixed = 4 + 4 + 8 + 8 + 4

// bytesPerAtom is the per-atom record: uint32 id + 3*float64 position.
const bytesPerAtom = 4 + 3*8

// Frame is one simulation snapshot.
type Frame struct {
	Model string
	Step  int64
	IDs   []uint32
	// Pos holds xyz triplets; len(Pos) == 3*len(IDs).
	Pos []float64
}

// NewSynthetic builds a deterministic frame with the given atom count,
// suitable for workload generation: positions are a seeded pseudo-random
// cloud in a cube, ids are sequential.
func NewSynthetic(model string, step int64, atoms int, seed uint64) *Frame {
	f := &Frame{
		Model: model,
		Step:  step,
		IDs:   make([]uint32, atoms),
		Pos:   make([]float64, 3*atoms),
	}
	state := seed | 1
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%1_000_000) / 1_000_000 * 100 // 100 Å box
	}
	for i := 0; i < atoms; i++ {
		f.IDs[i] = uint32(i)
		f.Pos[3*i] = next()
		f.Pos[3*i+1] = next()
		f.Pos[3*i+2] = next()
	}
	return f
}

// Atoms returns the atom count.
func (f *Frame) Atoms() int { return len(f.IDs) }

// EncodedSize returns the exact wire size for a model name and atom count.
func EncodedSize(model string, atoms int) int64 {
	return int64(headerFixed + len(model) + atoms*bytesPerAtom)
}

// Encode serializes the frame.
func (f *Frame) Encode() []byte {
	if len(f.Pos) != 3*len(f.IDs) {
		panic(fmt.Sprintf("frame: %d ids but %d coordinates", len(f.IDs), len(f.Pos)))
	}
	buf := make([]byte, EncodedSize(f.Model, len(f.IDs)))
	o := 0
	put32 := func(v uint32) { binary.LittleEndian.PutUint32(buf[o:], v); o += 4 }
	put64 := func(v uint64) { binary.LittleEndian.PutUint64(buf[o:], v); o += 8 }
	put32(magic)
	put32(1) // version
	put64(uint64(f.Step))
	put64(uint64(len(f.IDs)))
	put32(uint32(len(f.Model)))
	copy(buf[o:], f.Model)
	o += len(f.Model)
	for i := range f.IDs {
		put32(f.IDs[i])
		put64(math.Float64bits(f.Pos[3*i]))
		put64(math.Float64bits(f.Pos[3*i+1]))
		put64(math.Float64bits(f.Pos[3*i+2]))
	}
	return buf
}

// Decode parses a frame encoded by Encode.
func Decode(buf []byte) (*Frame, error) {
	if len(buf) < headerFixed {
		return nil, fmt.Errorf("frame: %d bytes shorter than header", len(buf))
	}
	o := 0
	get32 := func() uint32 { v := binary.LittleEndian.Uint32(buf[o:]); o += 4; return v }
	get64 := func() uint64 { v := binary.LittleEndian.Uint64(buf[o:]); o += 8; return v }
	if m := get32(); m != magic {
		return nil, fmt.Errorf("frame: bad magic %#x", m)
	}
	if v := get32(); v != 1 {
		return nil, fmt.Errorf("frame: unsupported version %d", v)
	}
	step := int64(get64())
	atoms64 := get64()
	nameLen := int(get32())
	if atoms64 > uint64(1<<31) {
		return nil, fmt.Errorf("frame: implausible atom count %d", atoms64)
	}
	atoms := int(atoms64)
	want := EncodedSize(string(make([]byte, nameLen)), atoms)
	if int64(len(buf)) != want {
		return nil, fmt.Errorf("frame: size %d, want %d for %d atoms", len(buf), want, atoms)
	}
	f := &Frame{
		Step:  step,
		Model: string(buf[o : o+nameLen]),
		IDs:   make([]uint32, atoms),
		Pos:   make([]float64, 3*atoms),
	}
	o += nameLen
	for i := 0; i < atoms; i++ {
		f.IDs[i] = get32()
		f.Pos[3*i] = math.Float64frombits(get64())
		f.Pos[3*i+1] = math.Float64frombits(get64())
		f.Pos[3*i+2] = math.Float64frombits(get64())
	}
	return f, nil
}

// Equal reports whether two frames are identical.
func (f *Frame) Equal(g *Frame) bool {
	if f.Model != g.Model || f.Step != g.Step || len(f.IDs) != len(g.IDs) {
		return false
	}
	for i := range f.IDs {
		if f.IDs[i] != g.IDs[i] {
			return false
		}
	}
	for i := range f.Pos {
		if f.Pos[i] != g.Pos[i] && !(math.IsNaN(f.Pos[i]) && math.IsNaN(g.Pos[i])) {
			return false
		}
	}
	return true
}
