package core

import (
	"fmt"
	"time"

	"repro/internal/caliper"
	"repro/internal/capacity"
	"repro/internal/cluster"
	"repro/internal/critpath"
	"repro/internal/dyad"
	"repro/internal/faults"
	"repro/internal/frame"
	"repro/internal/lustre"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/xfs"
)

// lustreServers is the paper-scale Lustre deployment used for every run:
// one MDS plus eight OSTs on dedicated server nodes.
const lustreServers = 9

// Run executes one workflow run and returns its measurements.
func Run(cfg Config) (*Result, error) {
	return runPooled(cfg, nil)
}

// rig wires one run: engine, cluster, backend, processes, measurements.
type rig struct {
	cfg cfgResolved
	eng *sim.Engine
	cl  *cluster.Cluster

	// Exactly one backend set is active per run.
	dy  *dyad.System
	xf  *xfs.FS
	lfs *lustre.FS

	payload vfs.Payload // shared synthetic frame payload (size-exact)

	prodProfiles []*caliper.Profile
	consProfiles []*caliper.Profile
	framesRead   int
	bytesRead    int64
	decodeErrs   []error

	consumersDone int

	// rec records virtual-time spans when Config.RecordSpans is set; nil
	// otherwise (tracing disabled at zero cost).
	rec *trace.Recorder

	// cp records the causal dependency graph when Config.CritPath is set;
	// nil otherwise (every hook is one nil check, zero allocations).
	cp *critpath.Recorder

	// reg samples resource metrics when Config.MetricsInterval is set; nil
	// otherwise (sampling disabled at zero cost). framesProduced and the
	// idle integrals feed its workflow-level series.
	reg            *metrics.Registry
	framesProduced int64
	prodIdleNanos  int64
	consIdleNanos  int64

	// recovery counts injected fault events (backends record their own
	// recovery activity; collect merges everything into Result.Recovery).
	recovery faults.Metrics
	// failDepth tracks overlapping DeviceFail windows per device.
	failDepth map[*cluster.SSD]int

	// capMet accumulates capacity-pressure activity (evictions, spills,
	// stalls) when Config.Capacity is enabled; nil otherwise.
	capMet *capacity.Metrics
}

// cfgResolved caches derived quantities next to the user config.
type cfgResolved struct {
	Config
	stride    int
	frequency time.Duration
	frameSize int64
}

// newRig wires one run, drawing recyclable state (engine, cluster, metrics
// registry) from pool when compatible state is available — nil pool or no
// match builds everything fresh. Reuse is observationally invisible: the
// Reset contracts restore exact just-built state, so a pooled run is
// byte-identical to an unpooled one.
func newRig(cfg Config, pool *runPool) *rig {
	rc := cfgResolved{
		Config:    cfg,
		stride:    cfg.EffectiveStride(),
		frequency: cfg.Frequency(),
		frameSize: cfg.Model.FrameBytes(),
	}
	nodes := cfg.ComputeNodes()
	if cfg.Backend == Lustre || cfg.LustreFallback {
		nodes += lustreServers
	}
	spec := cluster.CoronaProfile(nodes)
	// Worst-case queue depth per device: every process on a node blocked on
	// the same resource.
	spec.QueueHint = 2 * MaxProcsPerNode
	if cfg.SpecTune != nil {
		// Calibration hook. Must run before pool.take: the pool hands out a
		// recycled cluster only when the (already tuned) spec matches by
		// value, so a tuned run can never inherit an untuned cluster.
		cfg.SpecTune(&spec)
	}
	eng, cl, reg := pool.take(cfg, spec)
	if eng == nil {
		eng = sim.NewEngine(cfg.Seed)
	}
	// Pre-size the kernel for the run's known process population (one
	// producer + one consumer per pair, plus Lustre noise processes) and a
	// comfortable event-queue floor, so steady state never grows a slice.
	// Idempotent on a reused engine (its arrays are already at least this
	// large).
	procs := 2 * cfg.Pairs
	if cfg.Backend == Lustre && cfg.LustreNoise {
		procs += lustreServers - 1 // one noise process per OST
	}
	eng.Prealloc(procs, procs+8)
	if cl == nil {
		cl = cluster.New(eng, spec)
	}
	r := &rig{cfg: rc, eng: eng, cl: cl, reg: reg}

	if cfg.ShardWorkers > 1 {
		// Sharded intra-run engine (DESIGN.md §3g): processes are grouped by
		// the compute node the placement puts them on, and the conservative
		// window width is the hardware's cross-node latency floor. Both
		// choices affect only which worker maintains which events — the
		// timeline is byte-identical to the serial engine at any count.
		workers := cfg.ShardWorkers
		eng.SetShardWorkers(workers)
		eng.SetLookahead(sim.Time(spec.MinLinkLatency()))
		shardByName := make(map[string]int, 2*cfg.Pairs)
		for pair := 0; pair < cfg.Pairs; pair++ {
			shardByName[fmt.Sprintf("producer%03d", pair)] = cluster.ShardForNode(r.producerNode(pair).ID, workers)
			shardByName[fmt.Sprintf("consumer%03d", pair)] = cluster.ShardForNode(r.consumerNode(pair).ID, workers)
		}
		eng.SetShardAssign(func(proc int32, name string) int {
			if s, ok := shardByName[name]; ok {
				return s
			}
			// Backend helpers (Lustre noise, broker callbacks) stripe by
			// spawn order.
			return cluster.ShardForNode(int(proc), workers)
		})
	}

	if cfg.Trace != nil {
		eng.SetTracer(func(t time.Duration, proc, msg string) {
			fmt.Fprintf(cfg.Trace, "%12.6f %-14s %s\n", t.Seconds(), proc, msg)
		})
	}
	if cfg.RecordSpans {
		r.rec = trace.NewRecorder()
		eng.SetRecorder(r.rec)
	} else if cfg.TraceStream != nil {
		// Streaming tracer: spans serialize on emission into the shared
		// Chrome stream; the recorder holds only proc tids and incremental
		// per-operation statistics.
		r.rec = cfg.TraceStream.StartRun(rc.Label())
		eng.SetRecorder(r.rec)
	}
	if cfg.CritPath {
		// Install before any backend construction so every spawn (including
		// Lustre noise processes) lands in the graph.
		r.cp = critpath.NewRecorder()
		eng.SetCritRecorder(r.cp)
	}

	buildLustre := func() {
		params := lustre.DefaultParams()
		if !cfg.LustreNoise {
			params.BackgroundLoad = 0
		}
		compute := cfg.ComputeNodes()
		mds := cl.Node(compute)
		var osts []*cluster.Node
		for i := compute + 1; i < compute+lustreServers; i++ {
			osts = append(osts, cl.Node(i))
		}
		r.lfs = lustre.New(cl, mds, osts, params)
		r.lfs.StartNoise()
	}

	switch cfg.Backend {
	case DYAD:
		params := dyad.DefaultParams()
		if cfg.DYADOverride != nil {
			params = *cfg.DYADOverride
		}
		r.dy = dyad.New(cl, cl.Node(0), params)
		if cfg.LustreFallback {
			// Deploy the shared mirror next to DYAD; degraded consumers read
			// it when a producer's broker and staging device are both gone.
			buildLustre()
			lfs := r.lfs
			r.dy.SetFallback(func(n *cluster.Node) vfs.FS { return lfs.Client(n) })
		}
	case XFS:
		r.xf = xfs.New(cl.Node(0), xfs.DefaultParams())
	case Lustre:
		buildLustre()
	}

	// Finite burst-buffer capacity (DESIGN.md §3i). Disabled specs never
	// reach this code: the backends keep nil capacity stores and the
	// timeline is byte-identical to a build without the capacity layer.
	capOn := cfg.Capacity.Enabled()
	if capOn {
		r.capMet = &capacity.Metrics{}
		switch cfg.Backend {
		case DYAD:
			r.dy.SetCapacity(cfg.Capacity, r.capMet)
		case XFS:
			xf := r.xf
			store := capacity.NewStore(cl.Node(0).Name()+"/xfs", cfg.Capacity.StagingBytes,
				capacity.NewEvictor(cfg.Capacity.Policy), false, r.capMet,
				func(path string, size int64, consumed bool) bool {
					xf.Tree().Remove(path)
					return false // XFS has no shared mirror: evictions drop data
				})
			xf.SetCapacity(store)
		}
		for _, ev := range cfg.Capacity.Plan {
			ev := ev
			eng.After(ev.At, func() { r.applyProvision(ev) })
		}
	}

	if cfg.MetricsInterval > 0 {
		if r.reg != nil {
			// Pooled registry (streaming runs only): retire the old series
			// into its free pools and rebuild, reusing sample storage.
			r.reg.Reset(cfg.MetricsInterval)
		} else {
			r.reg = metrics.New(cfg.MetricsInterval)
		}
		r.registerMetrics()
		if cfg.MetricsSink != nil {
			// Streaming sink: every series is registered by now, so the run's
			// CSV header is complete; subsequent samples write one row each.
			label := cfg.MetricsRunLabel
			if label == "" {
				label = rc.Label()
			}
			cfg.MetricsSink.StartRun(label, r.reg)
		}
		reg := r.reg
		eng.SetSampler(cfg.MetricsInterval, func(t sim.Time) { reg.Sample(t) })
	}

	if cfg.StragglerFactor > 1 {
		// Degrade both the device and the link so the injection reaches
		// every backend's data path (Lustre never touches compute-node
		// SSDs; DYAD never leaves without the NIC).
		cl.Node(0).SSD.Degrade(cfg.StragglerFactor)
		cl.Node(0).DegradeNIC(cfg.StragglerFactor)
	}

	if !cfg.RealFrames {
		// One shared size-only descriptor of the exact frame size for all
		// pairs. Cost models depend only on the size, so sweeps move
		// "frames" through the full data path with zero bytes allocated.
		r.payload = vfs.SizeOnly(rc.frameSize)
	}

	// Watchdog: unlimited on healthy runs unless configured; fault-injected
	// and capacity-constrained runs get generous defaults so a livelocked
	// recovery loop or an unsatisfiable back-pressure stall aborts with
	// sim.ErrWatchdog instead of hanging the batch.
	faultsOn := cfg.Faults != nil && cfg.Faults.Enabled()
	maxEvents, maxTime := cfg.MaxEvents, sim.Time(cfg.MaxVirtualTime)
	if faultsOn || capOn {
		if maxEvents == 0 {
			maxEvents = int64(cfg.Pairs)*int64(cfg.Frames)*100_000 + 10_000_000
		}
		if maxTime == 0 {
			maxTime = 4*rc.frequency*time.Duration(cfg.Frames) + 10*time.Minute
		}
	}
	eng.SetWatchdog(maxEvents, maxTime)
	if faultsOn {
		r.scheduleFaults()
	}
	return r
}

// producerNode / consumerNode implement the paper's placement: collocated
// on node 0 for single-node runs; producers on the first half of the
// compute nodes and consumers on the second half otherwise, 8 per node.
func (r *rig) producerNode(pair int) *cluster.Node {
	if r.cfg.SingleNode {
		return r.cl.Node(0)
	}
	return r.cl.Node(pair / MaxProcsPerNode)
}

func (r *rig) consumerNode(pair int) *cluster.Node {
	if r.cfg.SingleNode {
		return r.cl.Node(0)
	}
	return r.cl.Node(r.cfg.ComputeNodes()/2 + pair/MaxProcsPerNode)
}

// pairPath names frame f of a pair's flow.
func pairPath(pair, f int) string {
	return fmt.Sprintf("/ensemble/pair%03d/frame%05d.pb", pair, f)
}

// spawnAll creates all producer and consumer processes.
func (r *rig) spawnAll() {
	r.prodProfiles = make([]*caliper.Profile, r.cfg.Pairs)
	r.consProfiles = make([]*caliper.Profile, r.cfg.Pairs)
	for pair := 0; pair < r.cfg.Pairs; pair++ {
		pair := pair
		var gate *pairGate
		if r.cfg.Backend != DYAD || r.cfg.ForceCoarseSync {
			gate = newPairGate(r.cl, r.producerNode(pair), r.consumerNode(pair))
		}
		r.eng.Spawn(fmt.Sprintf("producer%03d", pair), func(p *sim.Proc) {
			r.runProducer(p, pair, gate)
		})
		r.eng.Spawn(fmt.Sprintf("consumer%03d", pair), func(p *sim.Proc) {
			r.runConsumer(p, pair, gate)
		})
	}
}

// pairGate is the coarse-grained coupling of the traditional backends:
// the workflow manager launches the producer's next simulation task only
// after the consumer has retrieved the previous frame (§III: serialized,
// non-overlapping task execution), and notifies the consumer when a frame
// has been written.
type pairGate struct {
	request *mpi.Notify // consumer -> producer: "ready for frame k"
	post    *mpi.Notify // producer -> consumer: "frame k written"
}

func newPairGate(cl *cluster.Cluster, prodNode, consNode *cluster.Node) *pairGate {
	return &pairGate{
		request: mpi.NewNotify(cl, consNode, prodNode),
		post:    mpi.NewNotify(cl, prodNode, consNode),
	}
}

// runProducer emulates the MD simulation side of one pair.
func (r *rig) runProducer(p *sim.Proc, pair int, gate *pairGate) {
	ann := caliper.New(p.Name(), func() time.Duration { return p.Now() })
	var client *dyad.Client
	var fs vfs.FS
	switch r.cfg.Backend {
	case DYAD:
		client = r.dy.NewClient(r.producerNode(pair))
	case XFS:
		fs = r.xf
	case Lustre:
		fs = r.lfs.Client(r.producerNode(pair))
	}

	for f := 0; f < r.cfg.Frames; f++ {
		if gate != nil {
			// Task-launch serialization: wait until the consumer has
			// consumed the previous frame. Not part of production time —
			// in a real coarse-grained workflow this producer task has not
			// been scheduled yet (hence a detail span, not idle).
			ann.Begin("task_launch_wait")
			p.CritBegin("workflow", "task_launch_wait", trace.ClassDetail)
			start := p.Now()
			gate.request.WaitSeq(p, f+1)
			emitSpan(p, "task_launch_wait", trace.ClassDetail, start)
			p.CritEnd()
			ann.End("task_launch_wait")
		}

		// MD compute: one stride of steps (jittered as a block).
		ann.Begin("md_compute")
		p.CritBegin("workflow", "md_compute", trace.ClassCompute)
		start := p.Now()
		p.Sleep(p.Rand().Jitter(r.cfg.frequency, r.cfg.ComputeJitter))
		emitSpan(p, "md_compute", trace.ClassCompute, start)
		p.CritEnd()
		ann.End("md_compute")

		// Serialize the frame (CPU cost proportional to size).
		ann.Begin("serialize")
		p.CritBegin("workflow", "serialize", trace.ClassCompute)
		start = p.Now()
		data := r.framePayload(pair, f)
		p.Sleep(cpuTime(data.Size(), 2.5e9))
		emitSpan(p, "serialize", trace.ClassCompute, start)
		p.CritEnd()
		ann.End("serialize")

		path := pairPath(pair, f)
		switch r.cfg.Backend {
		case DYAD:
			if err := client.Produce(p, ann, path, data); err != nil {
				// Panicking with the error value aborts the run; the kernel
				// wraps it with %w so RunMany callers can errors.Is against
				// the underlying sentinel (faults.ErrDeviceFailed, ...).
				panic(fmt.Errorf("core: producer %s: %w", path, err))
			}
		default:
			ann.Begin("write_single_buf")
			p.CritBegin("workflow", "write_single_buf", trace.ClassMovement)
			start = p.Now()
			if err := fs.WriteFile(p, path, data); err != nil {
				panic(fmt.Errorf("core: producer write %s: %w", path, err))
			}
			emitSpan(p, "write_single_buf", trace.ClassMovement, start)
			p.CritEnd()
			ann.End("write_single_buf")
		}
		if gate != nil {
			ann.Begin("explicit_sync")
			p.CritBegin("workflow", "explicit_sync", trace.ClassIdle)
			start = p.Now()
			gate.post.Post(p)
			emitSpan(p, "explicit_sync", trace.ClassIdle, start)
			p.CritEnd()
			ann.End("explicit_sync")
			r.prodIdleNanos += int64(p.Now() - start)
		}
		r.framesProduced++
		p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "workflow", Name: "frame_produced",
			Start: p.Now(), Bytes: data.Size(), Attr: path})
		p.Tracef("produced frame %d (%d bytes)", f, data.Size())
	}
	r.prodProfiles[pair] = ann.Profile()
}

// runConsumer emulates the in situ analytics side of one pair.
func (r *rig) runConsumer(p *sim.Proc, pair int, gate *pairGate) {
	ann := caliper.New(p.Name(), func() time.Duration { return p.Now() })
	var client *dyad.Client
	var fs vfs.FS
	switch r.cfg.Backend {
	case DYAD:
		client = r.dy.NewClient(r.consumerNode(pair))
	case XFS:
		fs = r.xf
	case Lustre:
		fs = r.lfs.Client(r.consumerNode(pair))
	}

	if r.cfg.ConsumerHeadStart > 0 {
		// Producer job head start: the workflow manager launched this
		// consumer job ConsumerHeadStart after the producers. Job-launch
		// scheduling, not consumption — no caliper region, so it lands in
		// neither the movement nor the idle column of the §IV-C split.
		p.CritBegin("workflow", "job_start_delay", trace.ClassDetail)
		start := p.Now()
		p.Sleep(r.cfg.ConsumerHeadStart)
		emitSpan(p, "job_start_delay", trace.ClassDetail, start)
		p.CritEnd()
	}

	for f := 0; f < r.cfg.Frames; f++ {
		if gate != nil {
			// Ask the workflow manager for the next frame's producer task,
			// then wait for the data: the explicit synchronization whose
			// cost the paper reports as consumer idle time.
			gate.request.Post(p)
			ann.Begin("explicit_sync")
			p.CritBegin("workflow", "explicit_sync", trace.ClassIdle)
			start := p.Now()
			gate.post.WaitSeq(p, f+1)
			emitSpan(p, "explicit_sync", trace.ClassIdle, start)
			p.CritEnd()
			ann.End("explicit_sync")
			r.consIdleNanos += int64(p.Now() - start)
		}
		readStart := p.Now()
		var data vfs.Payload
		switch r.cfg.Backend {
		case DYAD:
			got, err := client.Consume(p, ann, pairPath(pair, f))
			if err != nil {
				panic(fmt.Errorf("core: consumer %s: %w", pairPath(pair, f), err))
			}
			data = got
		default:
			ann.Begin("read_single_buf")
			p.CritBegin("workflow", "read_single_buf", trace.ClassMovement)
			start := p.Now()
			got, err := fs.ReadFile(p, pairPath(pair, f))
			if err != nil {
				panic(fmt.Errorf("core: consumer read %s: %w", pairPath(pair, f), err))
			}
			emitSpan(p, "read_single_buf", trace.ClassMovement, start)
			p.CritEnd()
			ann.End("read_single_buf")
			data = got
		}
		p.CritDepend(pairPath(pair, f), "consume")
		p.CritHop(pairPath(pair, f), "consume", readStart, data.Size())
		p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "workflow", Name: "frame_consumed",
			Start: p.Now(), Bytes: data.Size()})
		p.Tracef("consumed frame %d (%d bytes)", f, data.Size())
		r.framesRead++
		r.bytesRead += data.Size()
		if r.cfg.RealFrames {
			if err := r.verifyFrame(pair, f, data.Bytes()); err != nil {
				r.decodeErrs = append(r.decodeErrs, err)
			}
		}

		// Deserialize, then emulate the analytics computation for one
		// frame period (paper §IV-C).
		ann.Begin("deserialize")
		p.CritBegin("workflow", "deserialize", trace.ClassCompute)
		start := p.Now()
		p.Sleep(cpuTime(data.Size(), 3.0e9))
		emitSpan(p, "deserialize", trace.ClassCompute, start)
		p.CritEnd()
		ann.End("deserialize")
		ann.Begin("analytics")
		p.CritBegin("workflow", "analytics", trace.ClassCompute)
		start = p.Now()
		p.Sleep(r.cfg.frequency)
		emitSpan(p, "analytics", trace.ClassCompute, start)
		p.CritEnd()
		ann.End("analytics")
	}
	r.consProfiles[pair] = ann.Profile()

	r.consumersDone++
	if r.consumersDone == r.cfg.Pairs && r.lfs != nil {
		r.lfs.StopNoise()
	}
}

// framePayload returns the payload the producer writes for frame f: the
// shared size-only descriptor for sweeps, or a freshly encoded frame when
// the run verifies content end to end.
func (r *rig) framePayload(pair, f int) vfs.Payload {
	if !r.cfg.RealFrames {
		return r.payload
	}
	return vfs.BytesPayload(frame.NewSynthetic(r.cfg.Model.Name, int64(f), r.cfg.Model.Atoms, r.cfg.Seed^uint64(pair)<<20^uint64(f)).Encode())
}

// verifyFrame checks a consumed real frame decodes and matches its
// producer's payload.
func (r *rig) verifyFrame(pair, f int, data []byte) error {
	fr, err := frame.Decode(data)
	if err != nil {
		return fmt.Errorf("pair %d frame %d: %w", pair, f, err)
	}
	if fr.Step != int64(f) || fr.Model != r.cfg.Model.Name || fr.Atoms() != r.cfg.Model.Atoms {
		return fmt.Errorf("pair %d frame %d: header mismatch (step=%d model=%q atoms=%d)",
			pair, f, fr.Step, fr.Model, fr.Atoms())
	}
	return nil
}

// cpuTime converts a byte count at a processing rate into compute time.
func cpuTime(n int64, bytesPerSec float64) time.Duration {
	return time.Duration(float64(n) / bytesPerSec * float64(time.Second))
}

// emitSpan records one workflow-level span covering [start, now). A no-op
// (one nil check, zero allocations) when span tracing is off.
func emitSpan(p *sim.Proc, name string, class trace.Class, start sim.Time) {
	p.Rec().Emit(trace.Span{Proc: p.Name(), Component: "workflow", Name: name,
		Class: class, Start: start, Dur: p.Now() - start})
}

// defaultDyadParams re-exports dyad.DefaultParams for ablation tests and
// callers composing overrides.
func defaultDyadParams() dyad.Params { return dyad.DefaultParams() }
