package thicket

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/caliper"
)

// buildProfile makes a profile with the region sequence name->durations.
type clk struct{ now time.Duration }

func profileOf(proc string, build func(a *caliper.Annotator, c *clk)) *caliper.Profile {
	c := &clk{}
	a := caliper.New(proc, func() time.Duration { return c.now })
	build(a, c)
	return a.Profile()
}

func consumeProfile(proc string, fetch, get, read time.Duration) *caliper.Profile {
	return profileOf(proc, func(a *caliper.Annotator, c *clk) {
		a.Begin("dyad_consume")
		a.Begin("dyad_fetch")
		c.now += fetch
		a.End("dyad_fetch")
		a.Begin("dyad_get_data")
		c.now += get
		a.End("dyad_get_data")
		a.Begin("read_single_buf")
		c.now += read
		a.End("read_single_buf")
		a.End("dyad_consume")
	})
}

func TestEnsembleMergesByPath(t *testing.T) {
	profiles := []*caliper.Profile{
		consumeProfile("c0", 10*time.Millisecond, 20*time.Millisecond, 5*time.Millisecond),
		consumeProfile("c1", 30*time.Millisecond, 40*time.Millisecond, 15*time.Millisecond),
	}
	e := FromProfiles(profiles)
	if e.Members() != 2 {
		t.Fatalf("members %d", e.Members())
	}
	fetch := e.Find("dyad_fetch")
	if fetch == nil {
		t.Fatal("dyad_fetch missing")
	}
	if math.Abs(fetch.Total.Mean-0.020) > 1e-9 {
		t.Fatalf("fetch mean %v, want 0.020", fetch.Total.Mean)
	}
	if fetch.Total.Min != 0.010 || fetch.Total.Max != 0.030 {
		t.Fatalf("fetch min/max %v/%v", fetch.Total.Min, fetch.Total.Max)
	}
	consume := e.Find("dyad_consume")
	if math.Abs(consume.Total.Mean-0.060) > 1e-9 {
		t.Fatalf("consume mean %v, want 0.060", consume.Total.Mean)
	}
}

func TestMemberMissingNodeCountsZero(t *testing.T) {
	withGet := consumeProfile("c0", 0, 10*time.Millisecond, 0)
	withoutGet := profileOf("c1", func(a *caliper.Annotator, c *clk) {
		a.Begin("dyad_consume")
		a.Begin("read_single_buf")
		c.now += 4 * time.Millisecond
		a.End("read_single_buf")
		a.End("dyad_consume")
	})
	e := FromProfiles([]*caliper.Profile{withGet, withoutGet})
	get := e.Find("dyad_get_data")
	if get.Total.N != 2 {
		t.Fatalf("get N=%d, want 2 (zero-padded)", get.Total.N)
	}
	if math.Abs(get.Total.Mean-0.005) > 1e-9 {
		t.Fatalf("get mean %v, want 0.005", get.Total.Mean)
	}
}

func TestQueryRootedAndAnywhere(t *testing.T) {
	e := FromProfiles([]*caliper.Profile{consumeProfile("c0", time.Millisecond, time.Millisecond, time.Millisecond)})
	rooted, err := e.Query("/dyad_consume/dyad_fetch")
	if err != nil {
		t.Fatal(err)
	}
	if len(rooted) != 1 || rooted[0].Name != "dyad_fetch" {
		t.Fatalf("rooted query got %v", rooted)
	}
	anywhere, err := e.Query("//dyad_fetch")
	if err != nil {
		t.Fatal(err)
	}
	if len(anywhere) != 1 {
		t.Fatalf("anywhere query got %d nodes", len(anywhere))
	}
	// A rooted query for a non-top-level node finds nothing.
	none, err := e.Query("/dyad_fetch")
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("rooted non-top query got %d nodes", len(none))
	}
}

func TestQueryWildcardAndPredicate(t *testing.T) {
	e := FromProfiles([]*caliper.Profile{consumeProfile("c0", 10*time.Millisecond, 30*time.Millisecond, time.Millisecond)})
	all, err := e.Query("/dyad_consume/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("wildcard matched %d children, want 3", len(all))
	}
	heavy, err := e.Query("/dyad_consume/*[mean>5ms]")
	if err != nil {
		t.Fatal(err)
	}
	if len(heavy) != 2 {
		t.Fatalf("predicate matched %d, want 2 (fetch, get_data)", len(heavy))
	}
	visits, err := e.Query("//dyad_fetch[visits>=1]")
	if err != nil {
		t.Fatal(err)
	}
	if len(visits) != 1 {
		t.Fatalf("visits predicate matched %d", len(visits))
	}
}

func TestQueryErrors(t *testing.T) {
	e := FromProfiles(nil)
	for _, q := range []string{"", "noslash", "//", "/a//b", "//a[mean!5]", "//a[bogus>1]", "/a[mean>xyz]"} {
		if _, err := e.Query(q); err == nil {
			t.Errorf("query %q accepted", q)
		}
	}
}

func TestMeanOfAndRender(t *testing.T) {
	e := FromProfiles([]*caliper.Profile{
		consumeProfile("c0", 10*time.Millisecond, 0, 0),
		consumeProfile("c1", 20*time.Millisecond, 0, 0),
	})
	if got := e.MeanOf("dyad_fetch"); got != 15*time.Millisecond {
		t.Fatalf("MeanOf = %v, want 15ms", got)
	}
	if got := e.MeanOf("nonexistent"); got != 0 {
		t.Fatalf("MeanOf missing = %v, want 0", got)
	}
	var buf bytes.Buffer
	e.Render(&buf)
	for _, want := range []string{"workflow", "dyad_consume", "dyad_fetch", "mean="} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("render missing %q:\n%s", want, buf.String())
		}
	}
}

func TestDurationUnitsInPredicates(t *testing.T) {
	e := FromProfiles([]*caliper.Profile{consumeProfile("c0", 1500*time.Microsecond, 0, 0)})
	hits, err := e.Query("//dyad_fetch[mean>1ms]")
	if err != nil || len(hits) != 1 {
		t.Fatalf("ms predicate: %v, %d hits", err, len(hits))
	}
	hits, err = e.Query("//dyad_fetch[mean<2000us]")
	if err != nil || len(hits) != 1 {
		t.Fatalf("us predicate: %v, %d hits", err, len(hits))
	}
	hits, err = e.Query("//dyad_fetch[mean>1s]")
	if err != nil || len(hits) != 0 {
		t.Fatalf("s predicate: %v, %d hits", err, len(hits))
	}
}
