package lustre

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// testRig builds a cluster with `compute` compute nodes, 1 MDS node, and
// `osts` OST nodes, and a Lustre FS without background noise.
func testRig(e *sim.Engine, compute, osts int) (*cluster.Cluster, *FS) {
	cl := cluster.New(e, cluster.CoronaProfile(compute+1+osts))
	params := DefaultParams()
	params.BackgroundLoad = 0
	var ostNodes []*cluster.Node
	for i := 0; i < osts; i++ {
		ostNodes = append(ostNodes, cl.Node(compute+1+i))
	}
	return cl, New(cl, cl.Node(compute), ostNodes, params)
}

func TestWriteReadRoundTripAcrossNodes(t *testing.T) {
	e := sim.NewEngine(1)
	cl, fs := testRig(e, 2, 4)
	writer := fs.Client(cl.Node(0))
	reader := fs.Client(cl.Node(1))
	payload := vfs.BytesPayload(bytes.Repeat([]byte("x"), 3<<20)) // 3 MiB: multiple stripes
	e.Spawn("w", func(p *sim.Proc) {
		if err := writer.WriteFile(p, "/frames/f0", payload); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	e.Spawn("r", func(p *sim.Proc) {
		p.Sleep(time.Second) // well after the write
		got, err := reader.ReadFile(p, "/frames/f0")
		if err != nil {
			t.Errorf("read: %v", err)
		}
		if !bytes.Equal(got.Bytes(), payload.Bytes()) {
			t.Error("cross-node read mismatch")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMissingFileErrors(t *testing.T) {
	e := sim.NewEngine(1)
	cl, fs := testRig(e, 1, 1)
	c := fs.Client(cl.Node(0))
	e.Spawn("r", func(p *sim.Proc) {
		if _, err := c.ReadFile(p, "/none"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("read: %v", err)
		}
		if _, err := c.Stat(p, "/none"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("stat: %v", err)
		}
		if err := c.Unlink(p, "/none"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("unlink: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChunking(t *testing.T) {
	e := sim.NewEngine(1)
	_, fs := testRig(e, 1, 2)
	cases := []struct {
		n    int64
		want int
	}{
		{0, 1}, {1, 1}, {1 << 20, 1}, {1<<20 + 1, 2}, {3 << 20, 3},
	}
	for _, c := range cases {
		if got := len(fs.chunks(c.n)); got != c.want {
			t.Errorf("chunks(%d) = %d pieces, want %d", c.n, got, c.want)
		}
	}
}

func TestWriteSlowerThanNodeLocal(t *testing.T) {
	// A 1 MiB Lustre write must cost far more than the raw wire time:
	// MDS RPC + OST service + OST device.
	e := sim.NewEngine(1)
	cl, fs := testRig(e, 1, 1)
	c := fs.Client(cl.Node(0))
	var took time.Duration
	e.Spawn("w", func(p *sim.Proc) {
		t0 := p.Now()
		_ = c.WriteFile(p, "/f", vfs.SizeOnly(1<<20))
		took = p.Now() - t0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if took < time.Millisecond {
		t.Fatalf("1 MiB Lustre write took only %v", took)
	}
	if fs.MDSOps != 2 || fs.OSTOps != 1 { // open + close, one data RPC
		t.Fatalf("mds=%d ost=%d ops", fs.MDSOps, fs.OSTOps)
	}
}

func TestMDSSerializesMetadataStorm(t *testing.T) {
	e := sim.NewEngine(1)
	cl, fs := testRig(e, 1, 2)
	c := fs.Client(cl.Node(0))
	n := 32
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/f%d", i)
		e.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			_ = c.WriteFile(p, path, vfs.BytesPayload([]byte("tiny")))
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	min := time.Duration(n) * fs.Params().MDSService
	if e.Now() < min {
		t.Fatalf("metadata storm finished in %v, want >= %v", e.Now(), min)
	}
}

func TestStripingSpreadsFilesOverOSTs(t *testing.T) {
	e := sim.NewEngine(1)
	cl, fs := testRig(e, 1, 4)
	c := fs.Client(cl.Node(0))
	e.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			_ = c.WriteFile(p, fmt.Sprintf("/f%d", i), vfs.SizeOnly(1<<10))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, first := range fs.layout {
		seen[first] = true
	}
	if len(seen) != 4 {
		t.Fatalf("round-robin used %d of 4 OSTs", len(seen))
	}
}

func TestNoiseAddsInterferenceAndStops(t *testing.T) {
	e := sim.NewEngine(7)
	cl := cluster.New(e, cluster.CoronaProfile(3))
	params := DefaultParams()
	params.BackgroundLoad = 0.5
	fs := New(cl, cl.Node(1), []*cluster.Node{cl.Node(2)}, params)
	fs.StartNoise()
	c := fs.Client(cl.Node(0))
	var took time.Duration
	e.Spawn("w", func(p *sim.Proc) {
		t0 := p.Now()
		for i := 0; i < 20; i++ {
			_ = c.WriteFile(p, fmt.Sprintf("/f%d", i), vfs.SizeOnly(1<<20))
		}
		took = p.Now() - t0
		fs.StopNoise()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	// Same workload without noise must be faster.
	e2 := sim.NewEngine(7)
	cl2 := cluster.New(e2, cluster.CoronaProfile(3))
	params.BackgroundLoad = 0
	fs2 := New(cl2, cl2.Node(1), []*cluster.Node{cl2.Node(2)}, params)
	c2 := fs2.Client(cl2.Node(0))
	var quiet time.Duration
	e2.Spawn("w", func(p *sim.Proc) {
		t0 := p.Now()
		for i := 0; i < 20; i++ {
			_ = c2.WriteFile(p, fmt.Sprintf("/f%d", i), vfs.SizeOnly(1<<20))
		}
		quiet = p.Now() - t0
	})
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if took <= quiet {
		t.Fatalf("noisy run (%v) not slower than quiet run (%v)", took, quiet)
	}
}

// Property: reassembled read equals written payload for any size (striping
// never loses or reorders bytes).
func TestStripeReassemblyProperty(t *testing.T) {
	f := func(sizeRaw uint32, ostsRaw, stripeRaw uint8) bool {
		size := int(sizeRaw % (8 << 20))
		osts := int(ostsRaw)%4 + 1
		stripeCount := int(stripeRaw)%osts + 1
		e := sim.NewEngine(1)
		cl := cluster.New(e, cluster.CoronaProfile(1+1+osts))
		params := DefaultParams()
		params.BackgroundLoad = 0
		params.StripeCount = stripeCount
		var ostNodes []*cluster.Node
		for i := 0; i < osts; i++ {
			ostNodes = append(ostNodes, cl.Node(2+i))
		}
		fs := New(cl, cl.Node(1), ostNodes, params)
		c := fs.Client(cl.Node(0))
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i)
		}
		ok := true
		e.Spawn("rw", func(p *sim.Proc) {
			if err := c.WriteFile(p, "/f", vfs.BytesPayload(payload)); err != nil {
				ok = false
				return
			}
			got, err := c.ReadFile(p, "/f")
			ok = err == nil && bytes.Equal(got.Bytes(), payload)
		})
		return e.Run() == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
