package sim

import (
	"container/heap"
	"testing"
	"time"
)

// refHeap is a container/heap reference implementation with the kernel's
// exact ordering contract: ascending (at, seq).
type refHeap []event

func (h refHeap) Len() int      { return len(h) }
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h refHeap) Less(i, j int) bool {
	return h[i].before(&h[j])
}
func (h *refHeap) Push(x any) { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// TestHeapMatchesContainerHeap drives the inlined 4-ary heap and a
// container/heap reference with the same randomized push/pop interleaving
// and demands identical pop order — including the seq tie-break on
// heavily duplicated timestamps.
func TestHeapMatchesContainerHeap(t *testing.T) {
	rng := NewRNG(42)
	e := NewEngine(0)
	ref := &refHeap{}
	seq := int64(0)

	const ops = 20_000
	for i := 0; i < ops; i++ {
		if rng.Intn(3) != 0 || e.pq.len() == 0 {
			// Tie-heavy times: only 64 distinct timestamps across 20k
			// events, so ordering is usually decided by seq alone.
			at := Time(rng.Intn(64)) * time.Millisecond
			ev := event{at: at, seq: seq, proc: noProc}
			seq++
			e.push(ev)
			heap.Push(ref, ev)
		} else {
			got := e.pop()
			want := heap.Pop(ref).(event)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("op %d: pop = (at=%v seq=%d), reference = (at=%v seq=%d)",
					i, got.at, got.seq, want.at, want.seq)
			}
		}
		if e.pq.len() != ref.Len() {
			t.Fatalf("op %d: size %d vs reference %d", i, e.pq.len(), ref.Len())
		}
	}
	// Drain: the tail must come out in exactly reference order too.
	for ref.Len() > 0 {
		got := e.pop()
		want := heap.Pop(ref).(event)
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("drain: pop = (at=%v seq=%d), reference = (at=%v seq=%d)",
				got.at, got.seq, want.at, want.seq)
		}
	}
	if e.pq.len() != 0 {
		t.Fatalf("drained heap still holds %d events", e.pq.len())
	}
}

// TestHeapPopZeroesVacatedSlots checks the anti-retention invariant: slots
// past the live heap must be zeroed so popped events don't pin closures.
func TestHeapPopZeroesVacatedSlots(t *testing.T) {
	e := NewEngine(0)
	marker := func() {}
	for i := 0; i < 32; i++ {
		e.push(event{at: Time(i), seq: int64(i), proc: noProc, fn: marker})
	}
	for i := 0; i < 32; i++ {
		e.pop()
	}
	for i, ev := range e.pq.heap[:cap(e.pq.heap)] {
		if ev.fn != nil {
			t.Fatalf("vacated slot %d still holds a closure reference", i)
		}
	}
}
